// Package ssos is a Go reproduction of "Toward Self-Stabilizing
// Operating Systems" (Dolev & Yagel): a simulated Pentium-real-mode
// machine with the paper's proposed recovery hardware (self-stabilizing
// watchdog, NMI counter, ROM-anchored handlers), an assembler for its
// guest code, the paper's three stabilizer designs (periodic reinstall,
// executable refresh with predicate monitoring, and the tailored
// Section 5 schedulers), deterministic fault injection, and the
// experiment harness that reproduces the paper's claims.
//
// Start at internal/core for the system builders, DESIGN.md for the
// architecture and experiment index, and examples/quickstart for a
// guided run. The root-level benchmarks (bench_test.go) regenerate a
// quick version of every experiment; cmd/ssos-bench produces the full
// tables recorded in EXPERIMENTS.md.
package ssos
