// Command ssos-bench regenerates every reproduction experiment (E1-E15
// and figures F1-F8 from DESIGN.md) and prints the tables and ASCII
// figures. With -markdown it emits the experiment section consumed by
// EXPERIMENTS.md; with -csv DIR it additionally writes each figure's
// data as CSV and as machine-readable JSON alongside.
//
// Usage:
//
//	ssos-bench [-quick] [-trials N] [-seed S] [-markdown] [-csv DIR] [-only E5] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"ssos/internal/expt"
	"ssos/internal/pool"
)

func main() {
	quick := flag.Bool("quick", false, "smaller trial counts and horizons")
	trials := flag.Int("trials", 0, "override trials per experiment cell")
	seed := flag.Int64("seed", 1, "base random seed")
	markdown := flag.Bool("markdown", false, "emit markdown tables instead of ASCII")
	csvDir := flag.String("csv", "", "directory to write figure CSV (and JSON) data into")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E5)")
	workers := flag.Int("workers", 0, "worker pool size override (0 = GOMAXPROCS); results are identical for any setting")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()
	pool.Workers = *workers

	if *cpuprofile != "" {
		stop, err := startCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssos-bench:", err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	o := expt.Options{Quick: *quick, Trials: *trials, Seed: *seed}

	var report *expt.Report
	if *only == "" {
		report = expt.All(o)
	} else {
		report = runOne(strings.ToUpper(*only), o)
		if report == nil {
			fmt.Fprintf(os.Stderr, "ssos-bench: unknown experiment %q\n", *only)
			os.Exit(2)
		}
	}

	for _, t := range report.Tables {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Render())
		}
	}
	for _, s := range report.Series {
		fmt.Println(s.Render())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ssos-bench:", err)
			os.Exit(1)
		}
		for _, s := range report.Series {
			path := filepath.Join(*csvDir, s.ID+".csv")
			if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ssos-bench:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "wrote", path)
			j, err := s.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "ssos-bench:", err)
				os.Exit(1)
			}
			jpath := filepath.Join(*csvDir, s.ID+".json")
			if err := os.WriteFile(jpath, j, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ssos-bench:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "wrote", jpath)
		}
	}
}

// startCPUProfile begins CPU profiling into path and returns the stop
// function. Note the error exits elsewhere in main bypass deferred
// stops; profiles are complete only for successful runs.
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile records the live-heap profile at exit.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-bench:", err)
		return
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile reflects live objects
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "ssos-bench:", err)
	}
}

func runOne(id string, o expt.Options) *expt.Report {
	r := &expt.Report{}
	switch id {
	case "E1":
		r.Tables = append(r.Tables, expt.E1RAMCorruption(o))
	case "E2", "F1":
		t, f := expt.E2ArbitraryState(o)
		r.Tables = append(r.Tables, t)
		r.Series = append(r.Series, f)
	case "E3", "F2":
		t, f := expt.E3FaultRateComparison(o)
		r.Tables = append(r.Tables, t)
		r.Series = append(r.Series, f)
	case "E4":
		r.Tables = append(r.Tables, expt.E4MonitorRepair(o))
	case "E5", "F3":
		t, f := expt.E5PeriodSweep(o)
		r.Tables = append(r.Tables, t)
		r.Series = append(r.Series, f)
	case "E6":
		r.Tables = append(r.Tables, expt.E6Primitive(o))
		r.Series = append(r.Series, expt.E6FairnessFigure(o))
	case "F4":
		r.Series = append(r.Series, expt.E6FairnessFigure(o))
	case "E7":
		r.Tables = append(r.Tables, expt.E7Scheduler(o))
	case "E8", "F5":
		t, f := expt.E8Overhead(o)
		r.Tables = append(r.Tables, t)
		r.Series = append(r.Series, f)
	case "E9", "F6":
		t, f := expt.E9Checkpoint(o)
		r.Tables = append(r.Tables, t)
		r.Series = append(r.Series, f)
	case "E10":
		r.Tables = append(r.Tables, expt.E10TokenRing(o))
	case "E11":
		r.Tables = append(r.Tables, expt.E11Protection(o))
	case "E12":
		r.Tables = append(r.Tables, expt.E12AdaptiveWatchdog(o))
	case "E13":
		r.Tables = append(r.Tables, expt.E13TickfulSilentFaults(o))
	case "E14", "F7", "F7B":
		t, f, fb := expt.E14ClusterAvailability(o)
		r.Tables = append(r.Tables, t)
		r.Series = append(r.Series, f, fb)
	case "E15", "F8":
		t, f := expt.E15LayeredRings(o)
		r.Tables = append(r.Tables, t)
		r.Series = append(r.Series, f)
	default:
		return nil
	}
	return r
}
