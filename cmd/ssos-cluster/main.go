// Command ssos-cluster runs a replicated self-stabilizing fleet: N
// core.System replicas in lockstep epochs on a worker pool, a majority
// voter over their per-epoch outputs (heartbeat legality plus a digest
// of console output and OS-state RAM), and a reconfigurator that
// evicts divergent or halted replicas, reinstalls them from the ROM
// image and rejoins them to the quorum by state transfer — the paper's
// Section-3 remedy applied at replica rather than process level.
//
// Usage:
//
//	ssos-cluster -replicas 5 -approach reinstall -faults os-blast -epochs 30 -seed 1
//
// Approaches: baseline, reinstall, continue, monitor. Faults: none,
// bitflip, os-blast, cpu-blast, blast. By default every third epoch
// strikes a random minority of replicas mid-epoch; -strike-prob
// switches to independent per-replica strikes with that probability.
// The run prints per-epoch vote tallies, every eviction/rejoin event,
// and a final cluster-availability summary; output is byte-identical
// for a fixed flag set, regardless of how many cores execute it.
// -trace N attaches a per-replica flight recorder and dumps an evicted
// replica's last N steps; -events-out/-metrics-out write the
// structured event stream (JSONL) and the stabilization metrics (JSON)
// described in README "Observability".
//
// -ring kstate|dijkstra3|ghosh4 switches to the distributed token-ring
// mode: one mailbox ring node per replica, connected only by the relay
// shim. The fleet converges, every replica is scrambled at the layer
// selected by -ring-scramble (ring|os|joint), and the run reports the
// fleet-level steps-to-legal of the recovery.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssos/internal/cluster"
	"ssos/internal/core"
	"ssos/internal/guest"
	"ssos/internal/obs"
	"ssos/internal/pool"
)

var approaches = map[string]core.Approach{
	"baseline":  core.ApproachBaseline,
	"reinstall": core.ApproachReinstall,
	"continue":  core.ApproachContinue,
	"monitor":   core.ApproachMonitor,
}

func main() {
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "fleet size N (voting quorum is N/2+1)")
	approach := flag.String("approach", "reinstall", "per-replica system design: baseline|reinstall|continue|monitor")
	faults := flag.String("faults", "none", "strike fault class: none|bitflip|os-blast|cpu-blast|blast")
	epochs := flag.Int("epochs", 30, "number of voting epochs to run")
	seed := flag.Int64("seed", 1, "seed for the strike schedule and all replica injectors")
	epochSteps := flag.Int("epoch-steps", cluster.DefaultEpochSteps, "machine steps per epoch")
	strikeEvery := flag.Int("strike-every", cluster.DefaultStrikeEvery, "strike a random minority every k-th epoch")
	strikeProb := flag.Float64("strike-prob", 0, "strike each replica with this probability per epoch (overrides -strike-every)")
	ringVariant := flag.String("ring", "", "ring-fleet mode: run this token-ring protocol (kstate|dijkstra3|ghosh4) one node per replica instead of the voting cluster")
	ringScramble := flag.String("ring-scramble", "joint", "ring-fleet scramble class applied after initial convergence: ring|os|joint")
	traceN := flag.Int("trace", 0, "keep a flight recorder of each replica's last N steps; dump it on eviction")
	eventsOut := flag.String("events-out", "", "write the structured event stream as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the stabilization metrics as JSON to this file")
	traceSpansOut := flag.String("trace-spans-out", "", "write the recovery-episode span tree as Chrome trace_event JSON (Perfetto-loadable) to this file")
	workers := flag.Int("workers", 0, "worker pool size override (0 = GOMAXPROCS); results are identical for any setting")
	flag.Parse()
	pool.Workers = *workers

	if *ringVariant != "" {
		runRingFleet(*ringVariant, *ringScramble, *replicas, *seed,
			*eventsOut, *metricsOut, *traceSpansOut)
		return
	}

	a, ok := approaches[*approach]
	if !ok {
		fmt.Fprintf(os.Stderr, "ssos-cluster: unknown approach %q\n", *approach)
		os.Exit(2)
	}
	mode, err := cluster.ParseFaultMode(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-cluster:", err)
		os.Exit(2)
	}

	var col *obs.Collector
	if *eventsOut != "" || *metricsOut != "" || *traceSpansOut != "" {
		col = obs.NewCollector()
	}
	c, err := cluster.New(cluster.Config{
		Replicas:    *replicas,
		Approach:    a,
		EpochSteps:  *epochSteps,
		Seed:        *seed,
		Faults:      mode,
		StrikeEvery: *strikeEvery,
		StrikeProb:  *strikeProb,
		Collector:   col,
		TraceN:      *traceN,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-cluster:", err)
		os.Exit(1)
	}

	fmt.Printf("cluster: %d x %v replicas, quorum %d, epoch %d steps, faults %v, seed %d\n",
		c.Summary().Replicas, a, c.Quorum(), *epochSteps, mode, *seed)
	c.Run(*epochs)
	fmt.Print(c.RenderLog())
	if col != nil {
		c.FinishObservability()
		eps := obs.FoldEpisodes(col.Events())
		obs.RecordEpisodes(col.Metrics, eps)
		if *eventsOut != "" {
			writeOut(*eventsOut, col.WriteJSONL)
		}
		if *metricsOut != "" {
			writeOut(*metricsOut, col.Metrics.WriteJSON)
		}
		if *traceSpansOut != "" {
			horizon := uint64(*epochs) * uint64(*epochSteps)
			writeOut(*traceSpansOut, func(w io.Writer) error {
				return obs.WriteTrace(w, eps, horizon)
			})
		}
	}
}

// runRingFleet is the distributed token-ring mode: one mailbox ring
// node per replica, the relay shim as the only channel. It converges
// the fleet, scrambles the selected layer on every replica at once,
// re-converges, and reports both recovery points; the observability
// artifacts go through the same writers as the voting mode.
func runRingFleet(variant, scramble string, replicas int, seed int64,
	eventsOut, metricsOut, traceSpansOut string) {
	v, err := guest.ParseRingVariant(variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-cluster:", err)
		os.Exit(2)
	}
	m, err := cluster.ParseRingScramble(scramble)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-cluster:", err)
		os.Exit(2)
	}
	var col *obs.Collector
	if eventsOut != "" || metricsOut != "" || traceSpansOut != "" {
		col = obs.NewCollector()
	}
	f, err := cluster.NewRingFleet(cluster.RingFleetConfig{
		Variant:   v,
		Replicas:  replicas,
		Seed:      seed,
		Collector: col,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-cluster:", err)
		os.Exit(1)
	}
	fmt.Printf("ring fleet: %d replicas, protocol %v, scramble %v, seed %d\n",
		f.Nodes(), v, m, seed)
	const window = 50
	since, ok := f.Converged(6000000, window)
	if !ok {
		fmt.Printf("no initial convergence within %d steps; ring=%v\n", f.Steps(), f.Ring())
		os.Exit(1)
	}
	fmt.Printf("converged: legal from fleet step %d, ring=%v\n", since, f.Ring())
	scrambleAt := f.Steps()
	f.Scramble(m)
	fmt.Printf("scramble(%v) at fleet step %d\n", m, scrambleAt)
	since, ok = f.Converged(12000000, window)
	if !ok {
		fmt.Printf("NOT re-converged by fleet step %d; privileges=%v ring=%v\n",
			f.Steps(), f.Privileges(), f.Ring())
	} else {
		fmt.Printf("re-converged: legal from fleet step %d (%d steps after scramble), ring=%v\n",
			since, since-scrambleAt, f.Ring())
	}
	if col != nil {
		eps := obs.FoldEpisodes(col.Events())
		obs.RecordEpisodes(col.Metrics, eps)
		if eventsOut != "" {
			writeOut(eventsOut, col.WriteJSONL)
		}
		if metricsOut != "" {
			writeOut(metricsOut, col.Metrics.WriteJSON)
		}
		if traceSpansOut != "" {
			writeOut(traceSpansOut, func(w io.Writer) error {
				return obs.WriteTrace(w, eps, f.Steps())
			})
		}
	}
}

// writeOut writes one observability artifact via the given renderer,
// exiting on I/O errors (truncated telemetry must not look like a
// clean run).
func writeOut(path string, render func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-cluster:", err)
		os.Exit(1)
	}
	if err := render(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-cluster:", err)
		os.Exit(1)
	}
}
