// Command ssos-verify mechanically checks the paper's device-level
// lemmas and the scheduled token ring with the explicit-state model
// checker (internal/model), printing a verification report: every
// claim, the state space covered, and the exact worst-case bound found
// (or the counterexample, for the claims that are supposed to fail).
// It also runs the static side of the argument: imglint over every
// assembled guest ROM image (-static=false skips it).
//
// Usage:
//
//	ssos-verify [-rw] [-static]
package main

import (
	"flag"
	"fmt"
	"os"

	"ssos/internal/guest"
	"ssos/internal/imglint"
	"ssos/internal/model"
)

func main() {
	rw := flag.Bool("rw", true, "include the read/write-atomicity ring check (125k states)")
	static := flag.Bool("static", true, "include the static ROM-image invariant checks (imglint)")
	flag.Parse()

	failures := 0
	report := func(claim string, states int, outcome string, ok bool) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
			failures++
		}
		fmt.Printf("%-4s  %-66s  %8d states  %s\n", mark, claim, states, outcome)
	}

	// Watchdog recurrence (paper Section 2).
	{
		const period = 64
		states := model.WatchdogStates(period, period*4)
		err := model.CheckRecurrence(states, model.WatchdogNext(period),
			model.WatchdogFired(period), period, period*6)
		report("watchdog fires within one period from any register state",
			len(states), errString(err), err == nil)
	}

	// NMI counter delivery (Lemma 3.1's hardware half).
	{
		const max, regMax = 32, 64
		states := model.NMIStates(regMax)
		for i := range states {
			states[i].Pin = true
		}
		err := model.CheckRecurrence(states, model.NMINextCounter(max),
			model.NMIDeliveredCounter(max), regMax+1, max*8)
		report("NMI counter: delivery within register-max+1 ticks from any state",
			len(states), errString(err), err == nil)
	}

	// Stock latch counterexample (the paper's motivation).
	{
		states := model.NMIStates(8)
		for i := range states {
			states[i].Pin = true
		}
		err := model.CheckRecurrence(states, model.NMINextStock(),
			model.NMIDeliveredStock(), 16, 128)
		report("stock NMI latch: a never-delivering state EXISTS (expected failure)",
			len(states), errString(err), err != nil)
	}

	// Dijkstra's ring: exact bound K = n-1 under the central daemon.
	for n := 3; n <= 6; n++ {
		sys := model.RingSystem(uint8(n-1), n)
		worst, err := sys.Verify(1 << 20)
		report(fmt.Sprintf("K-state ring n=%d K=%d converges under adversarial daemon", n, n-1),
			len(sys.States), fmt.Sprintf("worst-case %d moves", worst), err == nil)
	}
	for n := 4; n <= 6; n++ {
		sys := model.RingSystem(uint8(n-2), n)
		_, err := sys.Verify(1 << 20)
		report(fmt.Sprintf("K-state ring n=%d K=%d has an illegal cycle (expected failure)", n, n-2),
			len(sys.States), errString(err), err != nil)
	}

	// The recovery-source abstraction behind E9.
	{
		cp := model.CheckpointSystem()
		_, _, ok := cp.CheckConvergence(16)
		report("checkpoint/rollback has an absorbing illegal state (expected failure)",
			len(cp.States), "poisoned snapshot pair", !ok)
		const period = 16
		re := model.ReinstallSystem(period)
		worst, err := re.Verify(period)
		report("ROM reinstall converges within exactly one watchdog period",
			len(re.States), fmt.Sprintf("worst-case %d ticks (err=%v)", worst, err), err == nil && worst == period)
	}

	// The ring as the 5.2 scheduler actually runs it.
	if *rw {
		const k = 5
		sys := model.RWRingSystem(k)
		closed := sys.GreatestClosedSubset(sys.Legal)
		legal := func(s model.RWRingState) bool { return closed[s] }
		witness, ok := model.CheckFairConvergence(sys.States, model.RWRingLabeledNext(k), legal, 3)
		outcome := fmt.Sprintf("closed legitimate set: %d states", len(closed))
		if !ok {
			outcome = fmt.Sprintf("fair illegal cycle from %+v", witness)
		}
		report("read/write-atomicity ring (K=5): every weakly-fair execution converges",
			len(sys.States), outcome, ok)
	}

	// Static ROM invariants (paper Section 5): the fill, slot, cs and
	// table properties the dynamic checks above assume are proved
	// directly on the assembled image bytes.
	if *static {
		specs, err := guest.LintImages()
		if err != nil {
			report("static ROM invariants: guest images build", 0, err.Error(), false)
		} else {
			total := 0
			for _, spec := range specs {
				for _, f := range imglint.Check(spec) {
					fmt.Println("      " + f.String())
					total++
				}
			}
			report("static ROM invariants hold for every guest image (imglint)",
				len(specs), fmt.Sprintf("%d images, %d findings", len(specs), total), total == 0)
		}
	}

	// Static convergence certificates (paper Section 4's convergence
	// stair, proved statically): the ranking prover lifts each mailbox
	// ring image from its shipped ROM bytes, extracts the move function,
	// and certifies a steps-to-legal bound against the declared variant.
	if *static {
		specs, err := guest.ConvergenceCerts()
		if err != nil {
			report("static convergence certificates build", 0, err.Error(), false)
		} else {
			for _, spec := range specs {
				r := imglint.CheckRingCert(spec.Cert)
				outcome := fmt.Sprintf("local obligations only (n=%d)", r.N)
				if r.Mode == "ranking" {
					outcome = fmt.Sprintf("steps-to-legal <= %d (rank %d + %d mid-entry)", r.Bound, r.RankBound, r.N)
				}
				for _, f := range r.Findings {
					fmt.Println("      " + f.String())
				}
				report(fmt.Sprintf("convergence certificate %s", r.Name),
					r.States, outcome, r.Proved())
			}
		}
	}

	if failures > 0 {
		fmt.Printf("\n%d verification failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall claims verified")
}

func errString(err error) string {
	if err == nil {
		return "verified"
	}
	return err.Error()
}
