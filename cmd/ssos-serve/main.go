// Command ssos-serve is the stabilization-as-a-service daemon: a
// long-lived HTTP server hosting many concurrent fault-injected
// simulation sessions over the same deterministic machinery the batch
// CLIs drive. Create a machine or cluster session from a named guest
// image, step it, inject faults, fetch metrics, and stream the live
// event feed over SSE.
//
// Usage:
//
//	ssos-serve -addr 127.0.0.1:8023 -max-sessions 1024 -idle-ops 4096
//
// Quickstart (see README "ssos-serve" for the full walkthrough):
//
//	curl -s localhost:8023/api/images
//	id=$(curl -s -X POST localhost:8023/api/sessions \
//	       -d '{"image":"reinstall","seed":7}' | sed -n 's/.*"id": "\(s[0-9]*\)".*/\1/p')
//	curl -s -X POST localhost:8023/api/sessions/$id/run -d '{"steps":100000}'
//	curl -s -X POST localhost:8023/api/sessions/$id/fault -d '{"kind":"os-blast"}'
//	curl -s localhost:8023/api/sessions/$id/events
//
// The events endpoint returns JSONL byte-identical to what
// `ssos-run -events-out` writes for the same image, seed and command
// sequence — CI's serve-smoke job compares them with cmp(1).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssos/internal/pool"
	"ssos/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8023", "listen address (use :0 for an ephemeral port; the actual address is printed)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off); keep it loopback-only")
	maxSessions := flag.Int("max-sessions", serve.DefaultMaxSessions, "concurrent session cap")
	idleOps := flag.Int("idle-ops", serve.DefaultIdleOps, "evict sessions untouched for this many mutating operations (negative disables)")
	ringSize := flag.Int("ring", serve.DefaultRingSize, "per-subscriber SSE ring capacity (frames)")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS); per-session results are identical for any setting")
	flag.Parse()
	pool.Workers = *workers

	reg := serve.NewRegistry(serve.Options{
		MaxSessions: *maxSessions,
		IdleOps:     *idleOps,
		Workers:     *workers,
		RingSize:    *ringSize,
	})
	srv := &http.Server{Handler: serve.NewServer(reg)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-serve:", err)
		os.Exit(1)
	}
	// Scripts parse this line to find an ephemeral port; keep it stable.
	fmt.Printf("ssos-serve: listening on %s\n", ln.Addr())

	// The pprof endpoints live on their own listener (off by default),
	// mirroring the batch CLIs' -cpuprofile/-memprofile story for a live
	// daemon without exposing profiling on the API address. An explicit
	// mux keeps the registrations intentional rather than inherited from
	// http.DefaultServeMux.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssos-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("ssos-serve: debug listening on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				fmt.Fprintln(os.Stderr, "ssos-serve: debug listener:", err)
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("ssos-serve: %v, shutting down\n", s)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "ssos-serve:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck // best-effort drain; registry shutdown follows
	if err := reg.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ssos-serve: teardown cut short:", err)
		os.Exit(1)
	}
}
