// ssos-lint is the repository's static checker front end.
//
// Three modes:
//
//	ssos-lint [packages...]   run the analyzer suite (genbump, detmap,
//	                          probenil, nodeterm, noalloc, lockzone)
//	                          over Go packages; defaults to ./... from
//	                          the module root.
//	ssos-lint -images         build every guest ROM image and run the
//	                          imglint verifier over each.
//	ssos-lint -certs          build every ring convergence certificate
//	                          and run the ranking prover; prints the
//	                          per-certificate results as deterministic
//	                          JSON.
//
// -json switches the package and image modes to the same deterministic
// JSON findings format.
//
// Exit status: 0 clean, 1 when any finding is reported (or any
// certificate fails to prove), 2 on operational errors — so every mode
// slots directly into CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ssos/internal/analyzers"
	"ssos/internal/guest"
	"ssos/internal/imglint"
)

func main() {
	images := flag.Bool("images", false, "lint assembled guest ROM images instead of Go packages")
	certs := flag.Bool("certs", false, "check ring convergence certificates (JSON output)")
	jsonOut := flag.Bool("json", false, "emit findings as deterministic JSON")
	flag.Parse()

	var failed bool
	var err error
	switch {
	case *certs:
		failed, err = lintCerts()
	case *images:
		failed, err = lintImages(*jsonOut)
	default:
		failed, err = lintPackages(flag.Args(), *jsonOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssos-lint: %v\n", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// emitJSON prints v as deterministic indented JSON.
func emitJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// lintCerts checks every ring convergence certificate and prints the
// results as JSON (byte-identical across runs: the certificate catalog
// and each result's findings are deterministically ordered).
func lintCerts() (failed bool, err error) {
	specs, err := guest.ConvergenceCerts()
	if err != nil {
		return false, fmt.Errorf("building certificates: %w", err)
	}
	results := make([]imglint.CertResult, 0, len(specs))
	for _, spec := range specs {
		r := imglint.CheckRingCert(spec.Cert)
		results = append(results, r)
		if !r.Proved() {
			failed = true
		}
	}
	if err := emitJSON(results); err != nil {
		return false, err
	}
	proved := 0
	for _, r := range results {
		if r.Proved() {
			proved++
		}
	}
	fmt.Fprintf(os.Stderr, "ssos-lint: %d certificate(s) checked, %d proved\n", len(results), proved)
	return failed, nil
}

// lintImages verifies every assembled guest ROM image.
func lintImages(jsonOut bool) (failed bool, err error) {
	specs, err := guest.LintImages()
	if err != nil {
		return false, fmt.Errorf("building guest images: %w", err)
	}
	var findings []imglint.Finding
	for _, spec := range specs {
		findings = append(findings, imglint.Check(spec)...)
	}
	if jsonOut {
		if findings == nil {
			findings = []imglint.Finding{}
		}
		if err := emitJSON(findings); err != nil {
			return false, err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	fmt.Fprintf(os.Stderr, "ssos-lint: %d image(s) checked, %d finding(s)\n", len(specs), len(findings))
	return len(findings) > 0, nil
}

// lintPackages runs the analyzer suite over the given package patterns.
func lintPackages(patterns []string, jsonOut bool) (failed bool, err error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		return false, err
	}
	root, err := analyzers.ModuleRoot(wd)
	if err != nil {
		return false, err
	}
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		return false, err
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return false, err
	}
	diags := analyzers.Run(pkgs, analyzers.All())
	diags = append(diags, analyzers.RunGlobal(pkgs, analyzers.AllGlobal())...)
	analyzers.Sort(diags)
	if jsonOut {
		if diags == nil {
			diags = []analyzers.Diagnostic{}
		}
		if err := emitJSON(diags); err != nil {
			return false, err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	fmt.Fprintf(os.Stderr, "ssos-lint: %d package(s) checked, %d finding(s)\n", len(pkgs), len(diags))
	return len(diags) > 0, nil
}
