// ssos-lint is the repository's static checker front end.
//
// Two modes:
//
//	ssos-lint [packages...]   run the analyzer suite (genbump, detmap,
//	                          probenil, nodeterm) over Go packages;
//	                          defaults to ./... from the module root.
//	ssos-lint -images         build every guest ROM image and run the
//	                          imglint verifier over each.
//
// Exit status is 1 when any finding is reported, so both modes slot
// directly into CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssos/internal/analyzers"
	"ssos/internal/guest"
	"ssos/internal/imglint"
)

func main() {
	images := flag.Bool("images", false, "lint assembled guest ROM images instead of Go packages")
	flag.Parse()

	var failed bool
	var err error
	if *images {
		failed, err = lintImages()
	} else {
		failed, err = lintPackages(flag.Args())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssos-lint: %v\n", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// lintImages verifies every assembled guest ROM image.
func lintImages() (failed bool, err error) {
	specs, err := guest.LintImages()
	if err != nil {
		return false, fmt.Errorf("building guest images: %w", err)
	}
	total := 0
	for _, spec := range specs {
		findings := imglint.Check(spec)
		for _, f := range findings {
			fmt.Println(f)
		}
		total += len(findings)
	}
	fmt.Printf("ssos-lint: %d image(s) checked, %d finding(s)\n", len(specs), total)
	return total > 0, nil
}

// lintPackages runs the analyzer suite over the given package patterns.
func lintPackages(patterns []string) (failed bool, err error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		return false, err
	}
	root, err := analyzers.ModuleRoot(wd)
	if err != nil {
		return false, err
	}
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		return false, err
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return false, err
	}
	diags := analyzers.Run(pkgs, analyzers.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	fmt.Printf("ssos-lint: %d package(s) checked, %d finding(s)\n", len(pkgs), len(diags))
	return len(diags) > 0, nil
}
