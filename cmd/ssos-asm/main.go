// Command ssos-asm assembles NASM-flavoured source for the simulated
// machine into a flat binary, optionally printing a listing or a
// disassembly.
//
// Usage:
//
//	ssos-asm [-o out.bin] [-l] [-d] source.asm
//	ssos-asm -guest NAME        (dump a built-in guest's listing)
//
// With no -o the binary is written next to the source with a .bin
// extension. -l prints the assembly listing; -d prints a disassembly of
// the produced image. -guest prints the assembled listing of one of the
// repository's built-in guest programs — the executable form of the
// paper's figures: reinstall (Figure 1), continue, monitor, checkpoint,
// scheduler (Figures 2-5), scheduler-protect, kernel, kernel-padded,
// primitive, proc0..proc3, ring0..ring2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssos/internal/asm"
	"ssos/internal/guest"
	"ssos/internal/isa"
)

func main() {
	out := flag.String("o", "", "output binary path (default: source with .bin)")
	listing := flag.Bool("l", false, "print the assembly listing")
	disasm := flag.Bool("d", false, "print a disassembly of the output")
	guestName := flag.String("guest", "", "dump the listing of a built-in guest program")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ssos-asm [-o out.bin] [-l] [-d] source.asm | -guest NAME\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *guestName != "" {
		if err := dumpGuest(*guestName); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src := flag.Arg(0)
	data, err := os.ReadFile(src)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(data))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", src, err))
	}
	target := *out
	if target == "" {
		target = strings.TrimSuffix(src, ".asm") + ".bin"
	}
	if err := os.WriteFile(target, prog.Code, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes at origin %#x -> %s\n", src, len(prog.Code), prog.Origin, target)
	if *listing {
		fmt.Print(prog.ListingString())
	}
	if *disasm {
		fmt.Print(isa.DisasmString(prog.Code))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssos-asm:", err)
	os.Exit(1)
}

// dumpGuest prints the assembled listing of a built-in guest program.
func dumpGuest(name string) error {
	prog, err := guestProgram(name)
	if err != nil {
		return err
	}
	fmt.Printf("; built-in guest %q: %d bytes at origin %#x\n", name, len(prog.Code), prog.Origin)
	fmt.Print(prog.ListingString())
	return nil
}

func guestProgram(name string) (*asm.Program, error) {
	switch strings.ToLower(name) {
	case "reinstall":
		h, err := guest.BuildReinstallHandler()
		return handlerProg(h, err)
	case "continue":
		h, err := guest.BuildContinueHandler()
		return handlerProg(h, err)
	case "monitor":
		h, err := guest.BuildMonitorHandler(guest.MustBuildKernel(true))
		return handlerProg(h, err)
	case "checkpoint":
		h, err := guest.BuildCheckpointHandler()
		return handlerProg(h, err)
	case "scheduler":
		s, err := guest.BuildScheduler(false)
		if err != nil {
			return nil, err
		}
		return s.Prog, nil
	case "scheduler-protect":
		s, err := guest.BuildSchedulerOpts(guest.SchedOptions{ValidateDS: true, Protect: true})
		if err != nil {
			return nil, err
		}
		return s.Prog, nil
	case "kernel":
		return guest.MustBuildKernel(false).Prog, nil
	case "kernel-padded":
		return guest.MustBuildKernel(true).Prog, nil
	case "primitive":
		p, err := guest.BuildPrimitive()
		if err != nil {
			return nil, err
		}
		return p.Prog, nil
	}
	if strings.HasPrefix(name, "proc") || strings.HasPrefix(name, "ring") {
		var set *guest.ProcSet
		var err error
		if strings.HasPrefix(name, "ring") {
			set, err = guest.BuildRingProcesses()
		} else {
			set, err = guest.BuildProcesses()
		}
		if err != nil {
			return nil, err
		}
		var i int
		if _, err := fmt.Sscanf(name[4:], "%d", &i); err != nil || i < 0 || i >= guest.NumProcs {
			return nil, fmt.Errorf("unknown guest %q", name)
		}
		return set.Progs[i], nil
	}
	return nil, fmt.Errorf("unknown guest %q (try reinstall, monitor, scheduler, kernel, primitive, proc0..proc3, ring0..ring2)", name)
}

func handlerProg(h *guest.Handler, err error) (*asm.Program, error) {
	if err != nil {
		return nil, err
	}
	return h.Prog, nil
}
