// Command ssos-run boots one of the self-stabilizing systems, optionally
// injects a transient fault mid-run, and reports what the system did:
// heartbeat legality, recovery point, machine statistics.
//
// Usage:
//
//	ssos-run -approach reinstall -steps 500000 -fault os-blast -at 100000
//
// Approaches: baseline, reinstall, continue, monitor, primitive,
// scheduler, checkpoint, adaptive, plus the workload images
// scheduler-ring and scheduler-mbox-{kstate,dijkstra3,ghosh4} (token
// rings communicating through the shared mailbox region). Faults:
// none, bitflip, os-blast, cpu-blast, pc, all-ram, table-blast
// (scheduler), proc-code (scheduler), mailbox (mailbox workloads).
// -events-out/-metrics-out write the structured event
// stream (JSONL) and the stabilization metrics (JSON) described in
// README "Observability".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/obs"
	"ssos/internal/pool"
	"ssos/internal/serve"
	"ssos/internal/trace"
)

func main() {
	approach := flag.String("approach", "reinstall", "system design: baseline|reinstall|continue|monitor|primitive|scheduler|checkpoint|adaptive")
	steps := flag.Int("steps", 500000, "total steps to run")
	period := flag.Uint("period", 0, "watchdog period / scheduling quantum (0 = default)")
	faultKind := flag.String("fault", "none", "fault to inject: none|bitflip|os-blast|cpu-blast|pc|all-ram|table-blast|proc-code|mailbox")
	at := flag.Int("at", 100000, "step at which the fault is injected")
	seed := flag.Int64("seed", 1, "fault-injection seed")
	stock := flag.Bool("stock-nmi", false, "disable the paper's NMI-counter hardware")
	ring := flag.Bool("ring", false, "run the Dijkstra token-ring workload (scheduler only)")
	protect := flag.Bool("protect", false, "enable the memory-protection extension (scheduler only)")
	traceN := flag.Int("trace", 0, "dump the last N executed steps at the end")
	eventsOut := flag.String("events-out", "", "write the structured event stream as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the stabilization metrics as JSON to this file")
	traceSpansOut := flag.String("trace-spans-out", "", "write the recovery-episode span tree as Chrome trace_event JSON (Perfetto-loadable) to this file")
	workers := flag.Int("workers", 0, "worker pool size override (0 = GOMAXPROCS); results are identical for any setting")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()
	pool.Workers = *workers

	if *cpuprofile != "" {
		stop, err := startCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssos-run:", err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	// The named-image catalog in internal/serve is the construction
	// path shared with the service daemon: both resolve the same image
	// and feed it through core.New, which is what keeps a served
	// session's event stream byte-identical to this CLI's.
	img, ok := serve.LookupImage(*approach)
	if !ok {
		fmt.Fprintf(os.Stderr, "ssos-run: unknown approach %q\n", *approach)
		os.Exit(2)
	}
	a := img.Cfg.Approach
	cfg := img.Cfg
	cfg.WatchdogPeriod = uint32(*period)
	cfg.DisableNMICounter = *stock
	if *ring {
		cfg.Workload = core.WorkloadTokenRing
	}
	cfg.ProtectMemory = *protect
	s, err := core.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-run:", err)
		os.Exit(1)
	}
	var col *obs.Collector
	if *eventsOut != "" || *metricsOut != "" || *traceSpansOut != "" {
		col = obs.NewCollector()
		s.Instrument(col)
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(s.M, *traceN)
		s.M.AfterStep = rec.Observe
	}

	if *at > *steps {
		*at = *steps
	}
	s.Run(*at)
	faultStep := s.Steps()
	if *faultKind != "none" {
		inj := fault.NewInjector(s.M, *seed)
		if err := serve.InjectFault(s, inj, *faultKind); err != nil {
			fmt.Fprintln(os.Stderr, "ssos-run:", err)
			os.Exit(2)
		}
		for _, r := range inj.Log {
			fmt.Println("fault:", r)
		}
	}
	s.Run(*steps - *at)

	fmt.Printf("approach=%v steps=%d instrs=%d nmis=%d irqs=%d exceptions=%d resets=%d\n",
		a, s.Steps(), s.M.Stats.Instrs, s.M.Stats.NMIs, s.M.Stats.IRQs,
		s.M.Stats.Exceptions, s.M.Stats.Resets)
	if s.Watchdog != nil {
		fmt.Printf("watchdog: period=%d fires=%d\n", s.Watchdog.Period, s.Watchdog.Fires)
	}

	if s.Heartbeat != nil {
		reportStream("heartbeat", s, faultStep)
		if s.Repairs != nil {
			fmt.Printf("repairs: %d", s.Repairs.Total())
			for _, r := range s.Repairs.Writes() {
				fmt.Printf(" [step %d code %#x]", r.Step, r.Value)
			}
			fmt.Println()
		}
	}
	for i, c := range s.ProcBeats {
		spec := s.ProcSpec(i)
		w := c.Writes()
		legal := len(w) - spec.LegalSuffixStart(w)
		fmt.Printf("process %d: beats=%d legal-suffix=%d\n", i, c.Total(), legal)
	}
	if s.Cfg.Workload == core.WorkloadTokenRing {
		fmt.Printf("token ring: privileges=%v x=[", s.RingPrivileges())
		for i := 0; i < guest.RingMembers; i++ {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(s.RingX(i))
		}
		fmt.Println("]")
	}
	if v, ok := s.Cfg.Workload.MailboxVariant(); ok {
		ring := s.MailboxRing()
		fmt.Printf("mailbox ring (%v): privileges=%v x=[", v, s.MailboxPrivileges())
		for i := 0; i < s.MailboxNodes(); i++ {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(ring[i])
		}
		fmt.Println("]")
	}
	if s.Checkpoint != nil {
		fmt.Printf("checkpoint: snapshots=%d restores=%d period=%d\n",
			s.Checkpoint.Snapshots, s.Checkpoint.Restores, s.Cfg.CheckpointPeriod)
	}
	if rec != nil {
		fmt.Println("last steps:")
		fmt.Print(rec.Dump())
	}
	if col != nil {
		s.ExportMetrics(col.Metrics)
		eps := obs.FoldEpisodes(col.Events())
		obs.RecordEpisodes(col.Metrics, eps)
		if *eventsOut != "" {
			writeOut(*eventsOut, col.WriteJSONL)
		}
		if *metricsOut != "" {
			writeOut(*metricsOut, col.Metrics.WriteJSON)
		}
		if *traceSpansOut != "" {
			writeOut(*traceSpansOut, func(w io.Writer) error {
				return obs.WriteTrace(w, eps, s.Steps())
			})
		}
	}
}

// startCPUProfile begins CPU profiling into path and returns the stop
// function. Note the error exits elsewhere in main bypass deferred
// stops; profiles are complete only for successful runs.
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile records the live-heap profile at exit.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-run:", err)
		return
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile reflects live objects
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "ssos-run:", err)
	}
}

// writeOut writes one observability artifact via the given renderer,
// exiting on I/O errors (truncated telemetry must not look like a
// clean run).
func writeOut(path string, render func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-run:", err)
		os.Exit(1)
	}
	if err := render(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssos-run:", err)
		os.Exit(1)
	}
}

func reportStream(name string, s *core.System, faultStep uint64) {
	w := s.Heartbeat.Writes()
	spec := s.Spec()
	fmt.Printf("%s: beats=%d\n", name, s.Heartbeat.Total())
	viol := spec.Violations(w, s.Steps())
	for i, v := range viol {
		if i >= 5 {
			fmt.Printf("  ... %d more violations\n", len(viol)-i)
			break
		}
		fmt.Println("  violation:", v)
	}
	if step, ok := spec.RecoveredAfter(w, faultStep, 10); ok {
		fmt.Printf("  recovered: legal from step %d (%d steps after fault point)\n",
			step, step-faultStep)
	} else {
		fmt.Println("  NOT recovered by end of run")
	}
}
