package asm

import (
	"fmt"

	"ssos/internal/isa"
)

// matchInstr selects the opcode for a mnemonic and operand-kind
// combination. Selection never depends on expression values, so
// instruction sizes are known in pass one.
func matchInstr(mn string, ops []operand) (isa.Op, error) {
	k := func(i int) operandKind { return ops[i].kind }
	bad := func() (isa.Op, error) {
		return 0, fmt.Errorf("unsupported operand combination for %q", mn)
	}
	// Operand-less mnemonics reject stray operands.
	if bare, ok := map[string]isa.Op{
		"nop": isa.OpNop, "hlt": isa.OpHlt, "cld": isa.OpCld,
		"std": isa.OpStd, "sti": isa.OpSti, "cli": isa.OpCli,
		"iret": isa.OpIret, "pushf": isa.OpPushf, "popf": isa.OpPopf,
		"movsb": isa.OpMovsb, "rep movsb": isa.OpRepMovsb,
		"stosb": isa.OpStosb, "lodsb": isa.OpLodsb, "ret": isa.OpRet,
	}[mn]; ok {
		if len(ops) != 0 {
			return 0, fmt.Errorf("%s takes no operands", mn)
		}
		return bare, nil
	}

	switch mn {
	case "wpset":
		if len(ops) == 1 && ops[0].kind == opndReg {
			return isa.OpWPSet, nil
		}
		return bad()

	case "mov":
		if len(ops) != 2 {
			return bad()
		}
		switch {
		case k(0) == opndReg && k(1) == opndImm:
			return isa.OpMovRI, nil
		case k(0) == opndReg && k(1) == opndReg:
			return isa.OpMovRR, nil
		case k(0) == opndSReg && k(1) == opndReg:
			return isa.OpMovSR, nil
		case k(0) == opndReg && k(1) == opndSReg:
			return isa.OpMovRS, nil
		case k(0) == opndReg && k(1) == opndMem:
			return isa.OpMovRM, nil
		case k(0) == opndMem && k(1) == opndReg:
			return isa.OpMovMR, nil
		case k(0) == opndMem && k(1) == opndImm:
			return isa.OpMovMI, nil
		case k(0) == opndSReg && k(1) == opndMem:
			return isa.OpMovSM, nil
		case k(0) == opndMem && k(1) == opndSReg:
			return isa.OpMovMS, nil
		case k(0) == opndReg8 && k(1) == opndImm:
			return isa.OpMovR8I, nil
		case k(0) == opndReg8 && k(1) == opndReg8:
			return isa.OpMovR8R8, nil
		}
		return bad()

	case "add":
		if len(ops) != 2 || k(0) != opndReg {
			return bad()
		}
		switch k(1) {
		case opndReg:
			return isa.OpAddRR, nil
		case opndImm:
			return isa.OpAddRI, nil
		case opndMem:
			return isa.OpAddRM, nil
		}
		return bad()
	case "sub":
		if len(ops) != 2 || k(0) != opndReg {
			return bad()
		}
		switch k(1) {
		case opndReg:
			return isa.OpSubRR, nil
		case opndImm:
			return isa.OpSubRI, nil
		}
		return bad()
	case "inc":
		if len(ops) == 1 && k(0) == opndReg {
			return isa.OpIncR, nil
		}
		return bad()
	case "dec":
		if len(ops) == 1 && k(0) == opndReg {
			return isa.OpDecR, nil
		}
		return bad()
	case "and":
		if len(ops) != 2 || k(0) != opndReg {
			return bad()
		}
		switch k(1) {
		case opndReg:
			return isa.OpAndRR, nil
		case opndImm:
			return isa.OpAndRI, nil
		}
		return bad()
	case "or":
		if len(ops) != 2 || k(0) != opndReg {
			return bad()
		}
		switch k(1) {
		case opndReg:
			return isa.OpOrRR, nil
		case opndImm:
			return isa.OpOrRI, nil
		}
		return bad()
	case "xor":
		if len(ops) == 2 && k(0) == opndReg && k(1) == opndReg {
			return isa.OpXorRR, nil
		}
		return bad()
	case "cmp":
		if len(ops) != 2 || k(0) != opndReg {
			return bad()
		}
		switch k(1) {
		case opndReg:
			return isa.OpCmpRR, nil
		case opndImm:
			return isa.OpCmpRI, nil
		case opndMem:
			return isa.OpCmpRM, nil
		}
		return bad()
	case "lea":
		if len(ops) == 2 && k(0) == opndReg && k(1) == opndMem {
			return isa.OpLea, nil
		}
		return bad()
	case "mul":
		if len(ops) == 1 && k(0) == opndReg8 {
			return isa.OpMulR8, nil
		}
		return bad()
	case "shl":
		if len(ops) == 2 && k(0) == opndReg && k(1) == opndImm {
			return isa.OpShlRI, nil
		}
		return bad()
	case "shr":
		if len(ops) == 2 && k(0) == opndReg && k(1) == opndImm {
			return isa.OpShrRI, nil
		}
		return bad()

	case "jmp":
		if len(ops) != 1 {
			return bad()
		}
		switch k(0) {
		case opndImm:
			return isa.OpJmp, nil
		case opndFar:
			return isa.OpJmpFar, nil
		}
		return bad()
	case "je", "jz":
		return matchJcc(isa.OpJe, ops)
	case "jne", "jnz":
		return matchJcc(isa.OpJne, ops)
	case "jb", "jc":
		return matchJcc(isa.OpJb, ops)
	case "jbe":
		return matchJcc(isa.OpJbe, ops)
	case "ja":
		return matchJcc(isa.OpJa, ops)
	case "jae", "jnc":
		return matchJcc(isa.OpJae, ops)
	case "loop":
		return matchJcc(isa.OpLoop, ops)
	case "call":
		return matchJcc(isa.OpCall, ops)

	case "push":
		if len(ops) != 1 {
			return bad()
		}
		switch k(0) {
		case opndReg:
			return isa.OpPushR, nil
		case opndSReg:
			return isa.OpPushS, nil
		case opndImm:
			return isa.OpPushI, nil
		}
		return bad()
	case "pop":
		if len(ops) != 1 {
			return bad()
		}
		switch k(0) {
		case opndReg:
			return isa.OpPopR, nil
		case opndSReg:
			return isa.OpPopS, nil
		}
		return bad()

	case "out":
		if len(ops) != 2 {
			return bad()
		}
		if k(1) != opndReg || ops[1].reg != isa.AX {
			return 0, fmt.Errorf("out source must be ax")
		}
		switch {
		case k(0) == opndImm:
			return isa.OpOutI, nil
		case k(0) == opndReg && ops[0].reg == isa.DX:
			return isa.OpOutDx, nil
		}
		return bad()
	case "in":
		if len(ops) != 2 {
			return bad()
		}
		if k(0) != opndReg || ops[0].reg != isa.AX {
			return 0, fmt.Errorf("in destination must be ax")
		}
		switch {
		case k(1) == opndImm:
			return isa.OpInI, nil
		case k(1) == opndReg && ops[1].reg == isa.DX:
			return isa.OpInDx, nil
		}
		return bad()
	case "int":
		if len(ops) == 1 && k(0) == opndImm {
			return isa.OpInt, nil
		}
		return bad()
	}
	return 0, fmt.Errorf("unknown mnemonic %q", mn)
}

func matchJcc(op isa.Op, ops []operand) (isa.Op, error) {
	if len(ops) == 1 && ops[0].kind == opndImm {
		return op, nil
	}
	return 0, fmt.Errorf("%s wants one immediate target", op.Mnemonic())
}

// buildInst evaluates operand expressions and produces the final
// instruction for encoding.
func buildInst(op isa.Op, ops []operand, ctx *evalCtx) (isa.Inst, error) {
	in := isa.Inst{Op: op}

	evalU16 := func(e exprNode) (uint16, error) {
		if e == nil {
			return 0, nil
		}
		v, err := e.eval(ctx)
		if err != nil {
			return 0, err
		}
		return uint16(v), nil // 16-bit two's-complement truncation, as in nasm
	}
	setMem := func(m memOperand) error {
		d, err := evalU16(m.disp)
		if err != nil {
			return err
		}
		in.Mem = isa.MemOp{Seg: m.seg, Base: m.base, Disp: d}
		return nil
	}

	switch op.Shape() {
	case isa.ShapeNone:
		return in, nil
	case isa.ShapeR:
		switch ops[0].kind {
		case opndReg:
			in.R1 = uint8(ops[0].reg)
		case opndSReg:
			in.R1 = uint8(ops[0].sreg)
		case opndReg8:
			in.R1 = uint8(ops[0].reg8)
		}
		return in, nil
	case isa.ShapeRR:
		regByte := func(o operand) uint8 {
			switch o.kind {
			case opndReg:
				return uint8(o.reg)
			case opndSReg:
				return uint8(o.sreg)
			default:
				return uint8(o.reg8)
			}
		}
		in.R1, in.R2 = regByte(ops[0]), regByte(ops[1])
		return in, nil
	case isa.ShapeRI, isa.ShapeRI8:
		switch ops[0].kind {
		case opndReg:
			in.R1 = uint8(ops[0].reg)
		case opndReg8:
			in.R1 = uint8(ops[0].reg8)
		}
		v, err := evalU16(ops[1].imm)
		if err != nil {
			return in, err
		}
		in.Imm = v
		return in, nil
	case isa.ShapeRM:
		switch ops[0].kind {
		case opndReg:
			in.R1 = uint8(ops[0].reg)
		case opndSReg:
			in.R1 = uint8(ops[0].sreg)
		}
		return in, setMem(ops[1].mem)
	case isa.ShapeMR:
		switch ops[1].kind {
		case opndReg:
			in.R1 = uint8(ops[1].reg)
		case opndSReg:
			in.R1 = uint8(ops[1].sreg)
		}
		return in, setMem(ops[0].mem)
	case isa.ShapeMI:
		if err := setMem(ops[0].mem); err != nil {
			return in, err
		}
		v, err := evalU16(ops[1].imm)
		if err != nil {
			return in, err
		}
		in.Imm = v
		return in, nil
	case isa.ShapeI16, isa.ShapeI8:
		if len(ops) == 0 {
			return in, nil
		}
		// out/in use the first or second operand for the port.
		src := ops[0]
		if src.kind != opndImm && len(ops) > 1 {
			src = ops[1]
		}
		v, err := evalU16(src.imm)
		if err != nil {
			return in, err
		}
		in.Imm = v
		return in, nil
	case isa.ShapeSegOff:
		seg, err := evalU16(ops[0].far[0])
		if err != nil {
			return in, err
		}
		off, err := evalU16(ops[0].far[1])
		if err != nil {
			return in, err
		}
		in.Imm, in.Imm2 = seg, off
		return in, nil
	}
	return in, fmt.Errorf("internal: unhandled shape for %v", op)
}
