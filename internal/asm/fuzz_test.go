package asm

import (
	"testing"

	"ssos/internal/isa"
)

// FuzzAssemble feeds arbitrary source text to the assembler: it must
// either fail cleanly or produce code whose sequential decode never
// panics. Run with `go test -fuzz=FuzzAssemble ./internal/asm`.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"mov ax, 1\nhlt",
		"start:\n\tjmp start",
		"x equ 5\n\tmov word [ss:x-2], ax",
		"%pad on\n\tinc ax\n%pad off",
		"times 3 db 0xEE\nalign 8",
		"db \"hello\", 0\ndw start\nstart:",
		"\tout 0x10, ax\n\tin ax, dx",
		"; comment only",
		"lbl: lbl2:",
		"mov ax, $-$$",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		off := 0
		for off < len(p.Code) {
			_, size, ok := isa.Decode(p.Code[off:])
			if !ok {
				off++ // data bytes are fine; skip like the disassembler
				continue
			}
			off += size
		}
		_ = p.ListingString()
	})
}

// FuzzDecode feeds arbitrary bytes to the instruction decoder, which
// must be total (the self-stabilization model requires garbage bytes to
// decode as either a valid instruction or a clean fault).
func FuzzDecode(f *testing.F) {
	for _, in := range []isa.Inst{
		{Op: isa.OpMovRI, R1: 0, Imm: 0x1234},
		{Op: isa.OpRepMovsb},
		{Op: isa.OpJmpFar, Imm: 0xF000, Imm2: 2},
	} {
		f.Add(in.Encode(nil))
	}
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		in, size, ok := isa.Decode(b)
		if !ok {
			return
		}
		if size <= 0 || size > len(b) {
			t.Fatalf("size %d out of range for %d bytes", size, len(b))
		}
		enc := in.Encode(nil)
		if len(enc) != size {
			t.Fatalf("re-encode size %d != %d", len(enc), size)
		}
		for i := range enc {
			if enc[i] != b[i] {
				t.Fatalf("re-encode differs at %d", i)
			}
		}
	})
}
