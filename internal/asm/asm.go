package asm

import (
	"fmt"
	"strings"

	"ssos/internal/isa"
)

// maxProgramSize bounds assembled output (the machine address space).
const maxProgramSize = 1 << 20

// ListLine is one line of the assembly listing: where the statement
// landed and what bytes it produced.
type ListLine struct {
	Addr   uint32 // address of the first emitted byte (origin-relative offsets + origin)
	Bytes  []byte
	Line   int    // source line number
	Source string // source text
}

// Program is the result of assembling one source file.
type Program struct {
	// Origin is the address of the first emitted byte (org directive,
	// default 0). Labels hold origin-based addresses.
	Origin uint32
	// Code is the emitted image, Code[0] at Origin.
	Code []byte
	// Symbols maps every label and equ name to its value.
	Symbols map[string]int64
	// Listing holds one entry per emitting statement, in order.
	Listing []ListLine
}

// Symbol returns the value of a label or equ constant.
func (p *Program) Symbol(name string) (int64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol returns the value of a symbol, panicking if undefined.
// Intended for ROM builders whose sources are compile-time constants.
func (p *Program) MustSymbol(name string) uint16 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return uint16(v)
}

// ListingString renders the listing as printable text.
func (p *Program) ListingString() string {
	var b strings.Builder
	for _, l := range p.Listing {
		fmt.Fprintf(&b, "%05x  %-20x  %s\n", l.Addr, l.Bytes, strings.TrimSpace(l.Source))
	}
	return b.String()
}

// placed is a statement bound to its output address during pass one.
type placed struct {
	s      *stmt
	addr   uint32 // absolute address (origin included)
	size   uint32 // emitted size including slot padding
	source string
}

// Assemble assembles NASM-flavoured source into a Program.
func Assemble(src string) (*Program, error) {
	lines := strings.Split(src, "\n")
	symbols := make(map[string]int64)
	ctx := &evalCtx{symbols: symbols}

	var place []placed
	origin := int64(0)
	originSet := false
	addr := int64(0)
	padOn := false
	emitted := false

	define := func(name string, v int64, lineNo int) error {
		if _, dup := symbols[name]; dup {
			return fmt.Errorf("line %d: symbol %q redefined", lineNo, name)
		}
		symbols[name] = v
		return nil
	}

	// Pass one: parse, place statements, define symbols.
	for lineNo, text := range lines {
		stmts, err := parseLine(text, lineNo+1)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
		}
		for i := range stmts {
			s := &stmts[i]
			ctx.here = addr
			ctx.origin = origin
			switch s.kind {
			case stmtLabel:
				if err := define(s.name, addr, s.line); err != nil {
					return nil, err
				}
			case stmtEqu:
				v, err := s.expr.eval(ctx)
				if err != nil {
					return nil, fmt.Errorf("line %d: equ %s: %v", s.line, s.name, err)
				}
				if err := define(s.name, v, s.line); err != nil {
					return nil, err
				}
			case stmtOrg:
				if emitted {
					return nil, fmt.Errorf("line %d: org after code emission", s.line)
				}
				v, err := s.expr.eval(ctx)
				if err != nil {
					return nil, fmt.Errorf("line %d: org: %v", s.line, err)
				}
				if v < 0 || v >= maxProgramSize {
					return nil, fmt.Errorf("line %d: org %#x out of range", s.line, v)
				}
				origin, addr, originSet = v, v, true
			case stmtPad:
				padOn = s.padOn
			case stmtAlign:
				v, err := s.expr.eval(ctx)
				if err != nil {
					return nil, fmt.Errorf("line %d: align: %v", s.line, err)
				}
				if v <= 0 || v > 4096 {
					return nil, fmt.Errorf("line %d: align %d out of range", s.line, v)
				}
				pad := (v - addr%v) % v
				if pad > 0 {
					place = append(place, placed{s: s, addr: uint32(addr), size: uint32(pad), source: text})
					addr += pad
					emitted = true
				}
			case stmtTimes:
				count, err := s.expr.eval(ctx)
				if err != nil {
					return nil, fmt.Errorf("line %d: times: %v", s.line, err)
				}
				if count < 0 || count > maxProgramSize {
					return nil, fmt.Errorf("line %d: times count %d out of range", s.line, count)
				}
				for rep := int64(0); rep < count; rep++ {
					one, err := stmtSize(s.inner, padOn, addr)
					if err != nil {
						return nil, fmt.Errorf("line %d: %v", s.line, err)
					}
					place = append(place, placed{s: s.inner, addr: uint32(addr), size: one, source: text})
					addr += int64(one)
				}
				emitted = emitted || count > 0
			default:
				size, err := stmtSize(s, padOn, addr)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", s.line, err)
				}
				place = append(place, placed{s: s, addr: uint32(addr), size: size, source: text})
				addr += int64(size)
				emitted = true
			}
			if addr > maxProgramSize {
				return nil, fmt.Errorf("line %d: program exceeds address space", s.line)
			}
		}
	}
	_ = originSet

	// Pass two: emit bytes.
	p := &Program{
		Origin:  uint32(origin),
		Code:    make([]byte, addr-origin),
		Symbols: symbols,
	}
	for _, pl := range place {
		ctx.here = int64(pl.addr)
		ctx.origin = origin
		bytes, err := emitStmt(pl.s, pl.size, ctx)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", pl.s.line, err)
		}
		if uint32(len(bytes)) != pl.size {
			return nil, fmt.Errorf("line %d: internal: size drift (%d != %d)", pl.s.line, len(bytes), pl.size)
		}
		copy(p.Code[pl.addr-uint32(origin):], bytes)
		p.Listing = append(p.Listing, ListLine{
			Addr:   pl.addr,
			Bytes:  bytes,
			Line:   pl.s.line,
			Source: pl.source,
		})
	}
	return p, nil
}

// MustAssemble assembles source that is a compile-time constant,
// panicking on error. ROM builders use it; errors there are bugs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic("asm: " + err.Error())
	}
	return p
}

// stmtSize computes the emitted size of an instruction or data
// statement, including instruction-slot padding when pad mode is on.
func stmtSize(s *stmt, padOn bool, addr int64) (uint32, error) {
	switch s.kind {
	case stmtInstr:
		op, err := matchInstr(s.mn, s.ops)
		if err != nil {
			return 0, err
		}
		size := uint32(op.Size())
		if padOn {
			slotEnd := (addr/isa.SlotSize + 1) * isa.SlotSize
			size = uint32(slotEnd - addr)
			if int64(op.Size()) > int64(size) {
				// Cannot happen while MaxInstrSize <= SlotSize, but a
				// mid-slot starting address (after unpadded data) could
				// leave too little room.
				return 0, fmt.Errorf("instruction does not fit its slot at %#x", addr)
			}
		}
		return size, nil
	case stmtDb:
		var n uint32
		for _, it := range s.data {
			if it.isStr {
				n += uint32(len(it.str))
			} else {
				n++
			}
		}
		return n, nil
	case stmtDw:
		return uint32(2 * len(s.data)), nil
	case stmtAlign:
		return 0, nil // handled by caller
	}
	return 0, fmt.Errorf("internal: statement kind %d has no size", s.kind)
}

// emitStmt produces the bytes for one placed statement. size is the
// pass-one size (instruction slots include their nop padding).
func emitStmt(s *stmt, size uint32, ctx *evalCtx) ([]byte, error) {
	switch s.kind {
	case stmtInstr:
		op, err := matchInstr(s.mn, s.ops)
		if err != nil {
			return nil, err
		}
		in, err := buildInst(op, s.ops, ctx)
		if err != nil {
			return nil, err
		}
		bytes := in.Encode(nil)
		for uint32(len(bytes)) < size {
			bytes = append(bytes, byte(isa.OpNop)) // slot padding
		}
		return bytes, nil
	case stmtDb:
		var bytes []byte
		for _, it := range s.data {
			if it.isStr {
				bytes = append(bytes, it.str...)
				continue
			}
			v, err := it.expr.eval(ctx)
			if err != nil {
				return nil, err
			}
			bytes = append(bytes, byte(v))
		}
		return bytes, nil
	case stmtDw:
		var bytes []byte
		for _, it := range s.data {
			v, err := it.expr.eval(ctx)
			if err != nil {
				return nil, err
			}
			bytes = append(bytes, byte(v), byte(v>>8))
		}
		return bytes, nil
	case stmtAlign:
		return make([]byte, size), nil // zero = nop
	}
	return nil, fmt.Errorf("internal: cannot emit statement kind %d", s.kind)
}
