package asm

import (
	"fmt"
	"strings"

	"ssos/internal/isa"
)

// operandKind classifies parsed instruction operands.
type operandKind uint8

const (
	opndReg operandKind = iota
	opndSReg
	opndReg8
	opndMem
	opndImm
	opndFar
)

// operand is one parsed instruction operand.
type operand struct {
	kind operandKind
	reg  isa.Reg
	sreg isa.SReg
	reg8 isa.Reg8
	mem  memOperand
	imm  exprNode // for opndImm
	far  [2]exprNode
}

// memOperand is a parsed memory reference [seg:base+disp].
type memOperand struct {
	seg  isa.SReg
	base isa.BaseReg
	disp exprNode // nil means 0
}

// stmtKind classifies statements.
type stmtKind uint8

const (
	stmtInstr stmtKind = iota
	stmtLabel
	stmtOrg
	stmtEqu
	stmtDb
	stmtDw
	stmtTimes
	stmtAlign
	stmtPad
)

// stmt is one parsed statement. A source line may produce several
// statements (a label plus an instruction).
type stmt struct {
	kind stmtKind
	line int // 1-based source line

	mn  string    // instruction mnemonic
	ops []operand // instruction operands

	name string   // label or equ name
	expr exprNode // org/equ/align value, times count

	data []dataItem // db/dw items

	inner *stmt // times body
	padOn bool  // %pad state
}

// dataItem is one element of a db/dw list.
type dataItem struct {
	str   string // non-empty for string literals (db only)
	expr  exprNode
	isStr bool
}

// parseLine parses one source line into zero or more statements.
func parseLine(line string, lineNo int) ([]stmt, error) {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	toks, err := lexLine(line)
	if err != nil {
		return nil, err
	}
	ts := &tokenStream{toks: toks}
	var out []stmt

	// Optional leading label ("name:") or equ definition ("name equ x").
	if t := ts.peek(); t.kind == tokIdent && !isReservedWord(t.text) {
		save := ts.pos
		name := ts.next().text
		switch {
		case ts.acceptPunct(":"):
			out = append(out, stmt{kind: stmtLabel, line: lineNo, name: name})
		case ts.peek().kind == tokIdent && strings.EqualFold(ts.peek().text, "equ"):
			ts.next()
			e, err := parseExpr(ts)
			if err != nil {
				return nil, err
			}
			if !ts.atEOF() {
				return nil, fmt.Errorf("trailing tokens after equ: %v", ts.peek())
			}
			return append(out, stmt{kind: stmtEqu, line: lineNo, name: name, expr: e}), nil
		default:
			ts.pos = save
		}
	}

	if ts.atEOF() {
		return out, nil
	}
	s, err := parseStatement(ts, lineNo)
	if err != nil {
		return nil, err
	}
	if !ts.atEOF() {
		return nil, fmt.Errorf("trailing tokens: %v", ts.peek())
	}
	return append(out, *s), nil
}

// parseStatement parses a directive or instruction (without label).
func parseStatement(ts *tokenStream, lineNo int) (*stmt, error) {
	// %pad directive.
	if t := ts.peek(); t.kind == tokPunct && t.text == "%" {
		ts.next()
		d := ts.next()
		if d.kind != tokIdent || !strings.EqualFold(d.text, "pad") {
			return nil, fmt.Errorf("unknown directive %%%s", d.text)
		}
		arg := ts.next()
		if arg.kind != tokIdent {
			return nil, fmt.Errorf("%%pad wants on or off, found %v", arg)
		}
		switch strings.ToLower(arg.text) {
		case "on":
			return &stmt{kind: stmtPad, line: lineNo, padOn: true}, nil
		case "off":
			return &stmt{kind: stmtPad, line: lineNo, padOn: false}, nil
		}
		return nil, fmt.Errorf("%%pad wants on or off, found %q", arg.text)
	}

	t := ts.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("expected mnemonic or directive, found %v", t)
	}
	word := strings.ToLower(t.text)
	switch word {
	case "org", "align":
		e, err := parseExpr(ts)
		if err != nil {
			return nil, err
		}
		k := stmtOrg
		if word == "align" {
			k = stmtAlign
		}
		return &stmt{kind: k, line: lineNo, expr: e}, nil
	case "db", "dw":
		items, err := parseDataList(ts, word == "db")
		if err != nil {
			return nil, err
		}
		k := stmtDb
		if word == "dw" {
			k = stmtDw
		}
		return &stmt{kind: k, line: lineNo, data: items}, nil
	case "times":
		count, err := parseExpr(ts)
		if err != nil {
			return nil, err
		}
		inner, err := parseStatement(ts, lineNo)
		if err != nil {
			return nil, err
		}
		if inner.kind != stmtInstr && inner.kind != stmtDb && inner.kind != stmtDw {
			return nil, fmt.Errorf("times body must be an instruction or data")
		}
		return &stmt{kind: stmtTimes, line: lineNo, expr: count, inner: inner}, nil
	case "rep":
		nx := ts.next()
		if nx.kind != tokIdent || !strings.EqualFold(nx.text, "movsb") {
			return nil, fmt.Errorf("only `rep movsb` is supported, found rep %v", nx)
		}
		return &stmt{kind: stmtInstr, line: lineNo, mn: "rep movsb"}, nil
	}

	// Instruction with operands.
	s := &stmt{kind: stmtInstr, line: lineNo, mn: word}
	if ts.atEOF() {
		return s, nil
	}
	for {
		op, err := parseOperand(ts)
		if err != nil {
			return nil, err
		}
		s.ops = append(s.ops, *op)
		if !ts.acceptPunct(",") {
			break
		}
	}
	return s, nil
}

// parseDataList parses db/dw item lists.
func parseDataList(ts *tokenStream, allowStrings bool) ([]dataItem, error) {
	var items []dataItem
	for {
		if t := ts.peek(); t.kind == tokString {
			if !allowStrings {
				return nil, fmt.Errorf("string literal only allowed in db")
			}
			ts.next()
			items = append(items, dataItem{str: t.text, isStr: true})
		} else {
			e, err := parseExpr(ts)
			if err != nil {
				return nil, err
			}
			items = append(items, dataItem{expr: e})
		}
		if !ts.acceptPunct(",") {
			return items, nil
		}
	}
}

// parseOperand parses one instruction operand: a register, a memory
// reference, an immediate expression or a far pointer. A leading
// `word` or `byte` size keyword is accepted and ignored (the opcode
// fully determines operand size in this ISA).
func parseOperand(ts *tokenStream) (*operand, error) {
	if t := ts.peek(); t.kind == tokIdent {
		switch strings.ToLower(t.text) {
		case "word", "byte":
			ts.next()
		}
	}

	// Memory operand.
	if ts.acceptPunct("[") {
		m, err := parseMemBody(ts)
		if err != nil {
			return nil, err
		}
		if err := ts.expectPunct("]"); err != nil {
			return nil, err
		}
		return &operand{kind: opndMem, mem: *m}, nil
	}

	// Register operands.
	if t := ts.peek(); t.kind == tokIdent {
		low := strings.ToLower(t.text)
		if r, ok := isa.ParseReg(low); ok {
			ts.next()
			return &operand{kind: opndReg, reg: r}, nil
		}
		if s, ok := isa.ParseSReg(low); ok {
			ts.next()
			return &operand{kind: opndSReg, sreg: s}, nil
		}
		if r8, ok := isa.ParseReg8(low); ok {
			ts.next()
			return &operand{kind: opndReg8, reg8: r8}, nil
		}
	}

	// Immediate or far pointer.
	e, err := parseExpr(ts)
	if err != nil {
		return nil, err
	}
	if ts.acceptPunct(":") {
		off, err := parseExpr(ts)
		if err != nil {
			return nil, err
		}
		return &operand{kind: opndFar, far: [2]exprNode{e, off}}, nil
	}
	return &operand{kind: opndImm, imm: e}, nil
}

// parseMemBody parses the inside of [...]: optional segment override,
// optional base register, optional +/- displacement expression.
func parseMemBody(ts *tokenStream) (*memOperand, error) {
	m := &memOperand{seg: isa.DS}
	explicitSeg := false

	// Segment override "seg:".
	if t := ts.peek(); t.kind == tokIdent {
		if s, ok := isa.ParseSReg(strings.ToLower(t.text)); ok {
			save := ts.pos
			ts.next()
			if ts.acceptPunct(":") {
				m.seg = s
				explicitSeg = true
			} else {
				ts.pos = save
			}
		}
	}

	// Base register.
	if t := ts.peek(); t.kind == tokIdent {
		switch strings.ToLower(t.text) {
		case "bx":
			m.base = isa.BaseBX
		case "si":
			m.base = isa.BaseSI
		case "di":
			m.base = isa.BaseDI
		case "bp":
			m.base = isa.BaseBP
			// A bp base defaults to the stack segment, as on x86.
			if !explicitSeg {
				m.seg = isa.SS
			}
		}
		if m.base != isa.BaseNone {
			ts.next()
			switch t := ts.peek(); {
			case t.kind == tokPunct && t.text == "+":
				ts.next()
				e, err := parseExpr(ts)
				if err != nil {
					return nil, err
				}
				m.disp = e
			case t.kind == tokPunct && t.text == "-":
				ts.next()
				e, err := parseExpr(ts)
				if err != nil {
					return nil, err
				}
				m.disp = unaryNode{op: '-', x: e}
			}
			return m, nil
		}
	}

	e, err := parseExpr(ts)
	if err != nil {
		return nil, err
	}
	m.disp = e
	return m, nil
}

// isReservedWord reports whether the identifier cannot be a label name.
func isReservedWord(s string) bool {
	low := strings.ToLower(s)
	if _, ok := isa.ParseReg(low); ok {
		return true
	}
	if _, ok := isa.ParseSReg(low); ok {
		return true
	}
	if _, ok := isa.ParseReg8(low); ok {
		return true
	}
	switch low {
	case "org", "equ", "db", "dw", "times", "align", "word", "byte", "rep":
		return true
	}
	return false
}
