package asm

import "fmt"

// exprNode is an expression AST node, evaluated against the symbol
// table. Labels may be referenced before they are defined: sizes never
// depend on expression values, so evaluation can wait for pass two.
type exprNode interface {
	eval(ctx *evalCtx) (int64, error)
}

// evalCtx supplies symbol values and the location counters for $ / $$.
type evalCtx struct {
	symbols map[string]int64
	here    int64 // $: offset of the current statement
	origin  int64 // $$: program origin
}

type numNode int64

func (n numNode) eval(*evalCtx) (int64, error) { return int64(n), nil }

type identNode string

func (id identNode) eval(ctx *evalCtx) (int64, error) {
	if v, ok := ctx.symbols[string(id)]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", string(id))
}

type hereNode struct{ origin bool }

func (h hereNode) eval(ctx *evalCtx) (int64, error) {
	if h.origin {
		return ctx.origin, nil
	}
	return ctx.here, nil
}

type unaryNode struct {
	op rune
	x  exprNode
}

func (u unaryNode) eval(ctx *evalCtx) (int64, error) {
	v, err := u.x.eval(ctx)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case '-':
		return -v, nil
	case '~':
		return ^v, nil
	}
	return 0, fmt.Errorf("bad unary operator %q", u.op)
}

type binNode struct {
	op   rune
	l, r exprNode
}

func (b binNode) eval(ctx *evalCtx) (int64, error) {
	l, err := b.l.eval(ctx)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(ctx)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case '%':
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("bad operator %q", b.op)
}

// tokenStream is a cursor over one line's tokens.
type tokenStream struct {
	toks []token
	pos  int
}

func (ts *tokenStream) peek() token { return ts.toks[ts.pos] }

func (ts *tokenStream) next() token {
	t := ts.toks[ts.pos]
	if t.kind != tokEOF {
		ts.pos++
	}
	return t
}

func (ts *tokenStream) atEOF() bool { return ts.peek().kind == tokEOF }

// acceptPunct consumes the given punctuation token if present.
func (ts *tokenStream) acceptPunct(p string) bool {
	if t := ts.peek(); t.kind == tokPunct && t.text == p {
		ts.next()
		return true
	}
	return false
}

// expectPunct consumes the given punctuation or fails.
func (ts *tokenStream) expectPunct(p string) error {
	if !ts.acceptPunct(p) {
		return fmt.Errorf("expected %q, found %v", p, ts.peek())
	}
	return nil
}

// parseExpr parses an additive expression.
func parseExpr(ts *tokenStream) (exprNode, error) {
	left, err := parseTerm(ts)
	if err != nil {
		return nil, err
	}
	for {
		t := ts.peek()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			ts.next()
			right, err := parseTerm(ts)
			if err != nil {
				return nil, err
			}
			left = binNode{op: rune(t.text[0]), l: left, r: right}
			continue
		}
		return left, nil
	}
}

func parseTerm(ts *tokenStream) (exprNode, error) {
	left, err := parseFactor(ts)
	if err != nil {
		return nil, err
	}
	for {
		t := ts.peek()
		if t.kind == tokPunct && (t.text == "*" || t.text == "/" || t.text == "%") {
			ts.next()
			right, err := parseFactor(ts)
			if err != nil {
				return nil, err
			}
			left = binNode{op: rune(t.text[0]), l: left, r: right}
			continue
		}
		return left, nil
	}
}

func parseFactor(ts *tokenStream) (exprNode, error) {
	t := ts.peek()
	switch {
	case t.kind == tokNumber:
		ts.next()
		return numNode(t.num), nil
	case t.kind == tokIdent:
		ts.next()
		return identNode(t.text), nil
	case t.kind == tokDollar:
		ts.next()
		return hereNode{}, nil
	case t.kind == tokDollarDollar:
		ts.next()
		return hereNode{origin: true}, nil
	case t.kind == tokPunct && t.text == "-":
		ts.next()
		x, err := parseFactor(ts)
		if err != nil {
			return nil, err
		}
		return unaryNode{op: '-', x: x}, nil
	case t.kind == tokPunct && t.text == "~":
		ts.next()
		x, err := parseFactor(ts)
		if err != nil {
			return nil, err
		}
		return unaryNode{op: '~', x: x}, nil
	case t.kind == tokPunct && t.text == "(":
		ts.next()
		x, err := parseExpr(ts)
		if err != nil {
			return nil, err
		}
		if err := ts.expectPunct(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("expected expression, found %v", t)
}
