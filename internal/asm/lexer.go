// Package asm implements a two-pass assembler for the machine's ISA
// with a NASM-flavoured syntax, close enough to the paper's listings
// that Figures 1-5 transcribe almost line for line: labels, equ
// constants, org, db/dw data, times repetition, expressions with
// labels, `mov word [ss:STACK_TOP-2], ax` style operands, and `rep
// movsb`.
//
// It adds one directive the paper's Section 5.2 calls for: `%pad on`
// pads every subsequent instruction with nops to a fixed 16-byte slot,
// so that a corrupted instruction pointer masked to a slot boundary
// always addresses an instruction start.
package asm

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokPunct // single-rune punctuation: , : [ ] ( ) + - * / % ~
	tokDollar
	tokDollarDollar
	tokEOF
)

type token struct {
	kind tokKind
	text string
	num  int64
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of line"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexLine tokenizes one source line. The comment part (from ';') must
// already be stripped.
func lexLine(line string) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '$':
			if i+1 < n && line[i+1] == '$' {
				toks = append(toks, token{kind: tokDollarDollar, text: "$$", col: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokDollar, text: "$", col: i})
				i++
			}
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentPart(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j], col: i})
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			for j < n && (isIdentPart(line[j])) {
				j++
			}
			v, err := parseNumber(line[i:j])
			if err != nil {
				return nil, fmt.Errorf("col %d: %v", i+1, err)
			}
			toks = append(toks, token{kind: tokNumber, text: line[i:j], num: v, col: i})
			i = j
		case c == '\'':
			j := i + 1
			for j < n && line[j] != '\'' {
				j++
			}
			if j >= n || j != i+2 {
				return nil, fmt.Errorf("col %d: bad character literal", i+1)
			}
			toks = append(toks, token{kind: tokNumber, text: line[i : j+1], num: int64(line[i+1]), col: i})
			i = j + 1
		case c == '"':
			j := i + 1
			for j < n && line[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("col %d: unterminated string", i+1)
			}
			toks = append(toks, token{kind: tokString, text: line[i+1 : j], col: i})
			i = j + 1
		case strings.ContainsRune(",:[]()+-*/%~", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c), col: i})
			i++
		default:
			return nil, fmt.Errorf("col %d: unexpected character %q", i+1, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, col: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// parseNumber handles decimal, 0x hex and 0b binary literals.
func parseNumber(s string) (int64, error) {
	base := 10
	digits := s
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		digits = s[2:]
	} else if strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B") {
		base = 2
		digits = s[2:]
	}
	if digits == "" {
		return 0, fmt.Errorf("bad number %q", s)
	}
	var v int64
	for _, c := range []byte(digits) {
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		case c == '_':
			continue
		default:
			return 0, fmt.Errorf("bad number %q", s)
		}
		if d >= base {
			return 0, fmt.Errorf("bad number %q", s)
		}
		v = v*int64(base) + int64(d)
		if v > 1<<32 {
			return 0, fmt.Errorf("number %q too large", s)
		}
	}
	return v, nil
}
