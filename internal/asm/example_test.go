package asm_test

import (
	"fmt"

	"ssos/internal/asm"
)

// Example assembles a fragment in the repository's NASM-flavoured
// dialect — the same dialect the paper's Figures 1-5 are transcribed
// into — and reads a symbol back.
func Example() {
	prog, err := asm.Assemble(`
STACK_TOP equ 0x0800
	mov ax, 0x3000
	mov ss, ax
	mov word [ss:STACK_TOP-2], ax
done:
	hlt
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("bytes:", len(prog.Code))
	fmt.Printf("done at %#x\n", prog.MustSymbol("done"))
	// Output:
	// bytes: 13
	// done at 0xc
}

// Example_padding shows the %pad directive that realizes the paper's
// Section 5.2 instruction slots: every instruction starts on a 16-byte
// boundary, so a masked instruction pointer always lands on an
// instruction start.
func Example_padding() {
	prog, _ := asm.Assemble(`
%pad on
start:
	inc ax
	jmp start
`)
	fmt.Println("code bytes:", len(prog.Code))
	// Output: code bytes: 32
}
