package asm

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ssos/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	return p
}

func assembleErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Assemble(src)
	if err == nil {
		t.Fatalf("expected error for:\n%s", src)
	}
	return err
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		mov ax, 0x1234
		mov bx, ax
		inc cx
		hlt
	`)
	want := []byte{
		byte(isa.OpMovRI), 0, 0x34, 0x12,
		byte(isa.OpMovRR), 1, 0,
		byte(isa.OpIncR), 2,
		byte(isa.OpHlt),
	}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code:\n got % x\nwant % x", p.Code, want)
	}
}

func TestLabelsAndJumps(t *testing.T) {
	p := mustAssemble(t, `
start:
		nop
loop_top:
		inc ax
		jmp loop_top
		je start
	`)
	if p.Symbols["start"] != 0 || p.Symbols["loop_top"] != 1 {
		t.Fatalf("symbols: %v", p.Symbols)
	}
	// jmp loop_top encodes target 1.
	want := []byte{
		byte(isa.OpNop),
		byte(isa.OpIncR), 0,
		byte(isa.OpJmp), 1, 0,
		byte(isa.OpJe), 0, 0,
	}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code: % x", p.Code)
	}
}

func TestOrgAffectsLabels(t *testing.T) {
	p := mustAssemble(t, `
		org 0x100
start:
		jmp start
	`)
	if p.Origin != 0x100 {
		t.Fatalf("origin = %#x", p.Origin)
	}
	if p.Symbols["start"] != 0x100 {
		t.Fatalf("start = %#x", p.Symbols["start"])
	}
	if !bytes.Equal(p.Code, []byte{byte(isa.OpJmp), 0x00, 0x01}) {
		t.Fatalf("code: % x", p.Code)
	}
}

func TestEquAndExpressions(t *testing.T) {
	p := mustAssemble(t, `
STACK_TOP equ 0x1000
N equ 4
		mov word [ss:STACK_TOP-2], ax
		mov ax, N*8+2
		and ax, N-1
	`)
	// [ss:0xFFE]
	if p.Code[1] != 0x05 { // mode: base none(0), seg ss(5)
		t.Fatalf("mem mode byte = %#x", p.Code[1])
	}
	d := uint16(p.Code[2]) | uint16(p.Code[3])<<8
	if d != 0x0FFE {
		t.Fatalf("disp = %#x", d)
	}
	// mov ax, 34
	off := 5
	if p.Code[off] != byte(isa.OpMovRI) || p.Code[off+2] != 34 {
		t.Fatalf("imm expr: % x", p.Code[off:off+4])
	}
}

func TestMemoryOperandForms(t *testing.T) {
	p := mustAssemble(t, `
v equ 0x200
		mov ax, [v]
		mov ax, [bx]
		mov ax, [bx+4]
		mov cx, [bx-2]
		mov ax, [si]
		mov ax, [es:di]
		mov ax, [ss:bp+6]
		mov ax, [bp]
	`)
	lines := p.Listing
	checkMode := func(i int, wantMode byte) {
		t.Helper()
		b := lines[i].Bytes
		if b[2] != wantMode {
			t.Errorf("line %d mode byte = %#02x, want %#02x (bytes % x)", i, b[2], wantMode, b)
		}
	}
	checkMode(0, 0x01) // abs, ds
	checkMode(1, 0x11) // bx, ds
	checkMode(2, 0x11)
	checkMode(3, 0x11)
	checkMode(4, 0x21) // si, ds
	checkMode(5, 0x32) // di, es
	checkMode(6, 0x45) // bp, ss
	checkMode(7, 0x45) // bp defaults to ss
	// [bx-2] → disp 0xFFFE
	b := lines[3].Bytes
	if d := uint16(b[3]) | uint16(b[4])<<8; d != 0xFFFE {
		t.Errorf("negative disp = %#x", d)
	}
}

func TestSegmentMoves(t *testing.T) {
	p := mustAssemble(t, `
		mov ds, ax
		mov ax, ds
		mov ds, [ss:0x10]
		mov [0x20], ds
		push cs
		pop es
	`)
	if p.Listing[0].Bytes[0] != byte(isa.OpMovSR) {
		t.Error("mov ds, ax")
	}
	if p.Listing[2].Bytes[0] != byte(isa.OpMovSM) {
		t.Error("mov ds, [mem]")
	}
	if p.Listing[3].Bytes[0] != byte(isa.OpMovMS) {
		t.Error("mov [mem], ds")
	}
	if p.Listing[4].Bytes[0] != byte(isa.OpPushS) || p.Listing[5].Bytes[0] != byte(isa.OpPopS) {
		t.Error("push/pop sreg")
	}
}

func TestByteRegisters(t *testing.T) {
	p := mustAssemble(t, `
		mov ah, 26
		mov al, ah
		mul ah
	`)
	want := []byte{
		byte(isa.OpMovR8I), uint8(isa.AH), 26,
		byte(isa.OpMovR8R8), uint8(isa.AL), uint8(isa.AH),
		byte(isa.OpMulR8), uint8(isa.AH),
	}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code: % x", p.Code)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		db 1, 2, 0x41, "abc"
		dw 0x1234, after
after:
	`)
	want := []byte{1, 2, 0x41, 'a', 'b', 'c', 0x34, 0x12, 10, 0}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("data: % x", p.Code)
	}
}

func TestTimesAndAlign(t *testing.T) {
	p := mustAssemble(t, `
		nop
		times 3 db 0xEE
		align 8
		hlt
	`)
	want := []byte{0, 0xEE, 0xEE, 0xEE, 0, 0, 0, 0, byte(isa.OpHlt)}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code: % x", p.Code)
	}
}

func TestDollarExpressions(t *testing.T) {
	p := mustAssemble(t, `
		org 0x10
		nop
		dw $
		dw $$
	`)
	// $ at the dw statement = 0x11; $$ = 0x10.
	want := []byte{0, 0x11, 0, 0x10, 0}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code: % x", p.Code)
	}
}

func TestPadModeCreatesSlots(t *testing.T) {
	p := mustAssemble(t, `
		%pad on
first:
		mov ax, 0x1111
second:
		inc ax
		%pad off
		nop
		nop
	`)
	if p.Symbols["first"] != 0 || p.Symbols["second"] != 16 {
		t.Fatalf("slot labels: %v", p.Symbols)
	}
	if len(p.Code) != 34 {
		t.Fatalf("code length = %d, want 34", len(p.Code))
	}
	// Padding bytes are nops.
	for i := 4; i < 16; i++ {
		if p.Code[i] != byte(isa.OpNop) {
			t.Fatalf("pad byte %d = %#x", i, p.Code[i])
		}
	}
	// After %pad off, instructions are dense.
	if p.Code[32] != byte(isa.OpNop) || p.Code[33] != byte(isa.OpNop) {
		t.Fatalf("tail: % x", p.Code[30:])
	}
}

func TestPadSlotsDecodeFromEveryBoundary(t *testing.T) {
	// Property (paper 5.2): in padded code every slot boundary is an
	// instruction start.
	p := mustAssemble(t, `
		%pad on
		mov ax, 0x1234
		add ax, bx
		cmp ax, 0x10
		jb 0
		mov word [ss:0x100], ax
		iret
	`)
	if len(p.Code)%isa.SlotSize != 0 {
		t.Fatalf("padded code length %d not slot-multiple", len(p.Code))
	}
	for off := 0; off < len(p.Code); off += isa.SlotSize {
		if _, _, ok := isa.Decode(p.Code[off:]); !ok {
			t.Errorf("slot at %#x does not decode", off)
		}
	}
}

func TestIOAndInt(t *testing.T) {
	p := mustAssemble(t, `
		out 0x10, ax
		in ax, 0x10
		out dx, ax
		in ax, dx
		int 0x21
	`)
	want := []byte{
		byte(isa.OpOutI), 0x10,
		byte(isa.OpInI), 0x10,
		byte(isa.OpOutDx),
		byte(isa.OpInDx),
		byte(isa.OpInt), 0x21,
	}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code: % x", p.Code)
	}
}

func TestJmpFar(t *testing.T) {
	p := mustAssemble(t, `
SEG equ 0xF000
		jmp SEG:0x0010
	`)
	want := []byte{byte(isa.OpJmpFar), 0x00, 0xF0, 0x10, 0x00}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code: % x", p.Code)
	}
}

func TestRepMovsb(t *testing.T) {
	p := mustAssemble(t, `
		cld
		rep movsb
		movsb
	`)
	want := []byte{byte(isa.OpCld), byte(isa.OpRepMovsb), byte(isa.OpMovsb)}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code: % x", p.Code)
	}
}

// TestFigure1Transcription assembles the paper's Figure 1
// watchdog/reinstall procedure, transcribed to this assembler.
func TestFigure1Transcription(t *testing.T) {
	src := `
OS_ROM_SEGMENT  equ 0xE000
OS_SEGMENT      equ 0x2000
IMAGE_SIZE      equ 0x1000

; copy OS image
	mov ax, OS_ROM_SEGMENT
	mov ds, ax
	mov si, 0x00
	mov ax, OS_SEGMENT
	mov es, ax
	mov di, 0x00
	mov cx, IMAGE_SIZE
	cld
	rep movsb
; prepare for journey
	mov ax, OS_SEGMENT
	mov ss, ax
	mov sp, 0xFFFF
	push word 0x02       ;flag
	push word OS_SEGMENT ;cs
	push word 0x0        ;ip
	iret
`
	p := mustAssemble(t, src)
	if len(p.Listing) != 16 {
		t.Fatalf("figure 1 has 16 instructions, listed %d", len(p.Listing))
	}
	if p.Listing[15].Bytes[0] != byte(isa.OpIret) {
		t.Fatal("last instruction must be iret")
	}
	// Every byte decodes in sequence (no junk).
	off := 0
	for off < len(p.Code) {
		_, size, ok := isa.Decode(p.Code[off:])
		if !ok {
			t.Fatalf("undecodable byte at %#x", off)
		}
		off += size
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus ax, 1",         // unknown mnemonic
		"mov ax",              // missing operand
		"mov [0x10], [0x20]",  // mem,mem unsupported
		"jmp ax",              // register jump unsupported
		"mov ax, undefined_x", // undefined symbol
		"x equ 1\nx equ 2",    // redefinition
		"a:\na:",              // label redefinition
		"db \"abc",            // unterminated string
		"times -1 nop",        // negative times
		"org 0x200000",        // out of range
		"nop\norg 0",          // org after emission
		"mov ax, 1 2",         // trailing tokens
		"%pad maybe",          // bad pad arg
		"%frob on",            // unknown directive
		"out bx, ax",          // bad out port
		"in bx, 0x10",         // bad in dest
		"dw \"s\"",            // string in dw
		"mov ax, 0xZZ",        // bad number
		"align 0",             // bad align
		"times 2 org 0",       // times body must emit
	}
	for _, src := range cases {
		assembleErr(t, src)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	err := assembleErr(t, "nop\nnop\nbogus ax")
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q lacks line number", err)
	}
}

func TestListingString(t *testing.T) {
	p := mustAssemble(t, "start:\n\tmov ax, 1\n\thlt")
	s := p.ListingString()
	if !strings.Contains(s, "mov ax, 1") || !strings.Contains(s, "hlt") {
		t.Fatalf("listing:\n%s", s)
	}
}

func TestMustSymbolPanics(t *testing.T) {
	p := mustAssemble(t, "a equ 1")
	if p.MustSymbol("a") != 1 {
		t.Fatal("MustSymbol value")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSymbol should panic on undefined symbol")
		}
	}()
	p.MustSymbol("nope")
}

func TestMustAssemblePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic")
		}
	}()
	MustAssemble("bogus")
}

func TestAssembledCodeRoundTripsThroughDisasm(t *testing.T) {
	// Property: assembling a program of random simple instructions
	// yields code whose sequential decode matches instruction count.
	mnems := []string{"nop", "hlt", "cld", "sti", "iret", "inc ax", "dec bx",
		"mov ax, 5", "add ax, bx", "push ax", "pop bx", "out 0x10, ax"}
	f := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 64 {
			return true
		}
		var src strings.Builder
		for _, p := range picks {
			src.WriteString(mnems[int(p)%len(mnems)] + "\n")
		}
		prog, err := Assemble(src.String())
		if err != nil {
			return false
		}
		n := 0
		off := 0
		for off < len(prog.Code) {
			_, size, ok := isa.Decode(prog.Code[off:])
			if !ok {
				return false
			}
			off += size
			n++
		}
		return n == len(picks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExpressionOperators(t *testing.T) {
	p := mustAssemble(t, `
A equ 10
B equ 3
	mov ax, A/B
	mov bx, A%B
	mov cx, ~0
	mov dx, -(A-B)
	mov si, (A+B)*2
`)
	want := map[int]uint16{0: 3, 1: 1, 2: 0xFFFF, 3: 0xFFF9, 4: 26}
	for i, w := range want {
		b := p.Listing[i].Bytes
		if got := uint16(b[2]) | uint16(b[3])<<8; got != w {
			t.Errorf("expr %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	cases := []string{
		"mov ax, 1/0",             // division by zero
		"mov ax, 1%0",             // modulo by zero
		"mov ax, (1",              // unclosed paren
		"mov ax, *3",              // missing left operand
		"x equ forward\nforward:", // equ is eager
	}
	for _, src := range cases {
		assembleErr(t, src)
	}
}

func TestSymbolAccessors(t *testing.T) {
	p := mustAssemble(t, "v equ 7\nstart:\n\tnop")
	if v, ok := p.Symbol("v"); !ok || v != 7 {
		t.Fatalf("Symbol(v) = %d, %v", v, ok)
	}
	if _, ok := p.Symbol("missing"); ok {
		t.Fatal("missing symbol found")
	}
}

func TestAllMnemonicForms(t *testing.T) {
	// Exercise every mnemonic-form branch of the instruction matcher.
	p := mustAssemble(t, `
	nop
	hlt
	cld
	std
	sti
	cli
	iret
	pushf
	popf
	movsb
	rep movsb
	stosb
	lodsb
	ret
	wpset ax
	mov ax, 1
	mov ax, bx
	mov ds, ax
	mov ax, ds
	mov ax, [0]
	mov [0], ax
	mov word [0], 5
	mov ds, [0]
	mov [0], ds
	mov al, 1
	mov al, ah
	add ax, bx
	add ax, 1
	add ax, [0]
	sub ax, bx
	sub ax, 1
	inc ax
	dec ax
	and ax, bx
	and ax, 1
	or ax, bx
	or ax, 1
	xor ax, ax
	cmp ax, bx
	cmp ax, 1
	cmp ax, [0]
	lea ax, [0]
	mul ah
	shl ax, 1
	shr ax, 1
	jmp 0
	jz 0
	jnz 0
	jc 0
	jbe 0
	ja 0
	jnc 0
	loop 0
	call 0
	push ax
	push cs
	push word 1
	pop ax
	pop ds
	out 1, ax
	out dx, ax
	in ax, 1
	in ax, dx
	int 1
`)
	if len(p.Code) == 0 {
		t.Fatal("no code")
	}
	// Everything decodes sequentially.
	off := 0
	n := 0
	for off < len(p.Code) {
		_, size, ok := isa.Decode(p.Code[off:])
		if !ok {
			t.Fatalf("undecodable at %#x", off)
		}
		off += size
		n++
	}
}

func TestMoreOperandErrors(t *testing.T) {
	cases := []string{
		"add [0], ax",   // mem dest unsupported for add
		"sub ax, [0]",   // sub r,mem unsupported
		"inc [0]",       // inc mem unsupported
		"dec",           // missing operand
		"and ax",        // missing operand
		"or [0], 1",     // bad dest
		"xor ax, 1",     // xor imm unsupported
		"cmp [0], ax",   // bad dest
		"lea ax, bx",    // lea wants mem
		"mul ax",        // mul wants r8
		"shl ax, bx",    // shift wants imm
		"jmp [0]",       // indirect jmp unsupported
		"je ax",         // jcc wants imm
		"push word [0]", // push mem unsupported
		"pop 5",         // pop imm nonsense
		"out ax, 5",     // reversed operands
		"in 5, ax",      // reversed operands
		"int ax",        // int wants imm
		"wpset [0]",     // wpset wants r16
		"rep stosb",     // only rep movsb
		"mov ah, bx",    // size mismatch
		"movsb ax",      // trailing operand
	}
	for _, src := range cases {
		assembleErr(t, src)
	}
}

func TestTokenStringAndListing(t *testing.T) {
	// Lexer token String() paths via error messages.
	err := assembleErr(t, "mov ax, \x01")
	if err == nil {
		t.Fatal("expected lex error")
	}
	err = assembleErr(t, `db "unterminated`)
	if !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v", err)
	}
}

func TestCharacterLiterals(t *testing.T) {
	p := mustAssemble(t, "mov ax, 'A'\ndb 'z'")
	if p.Code[2] != 'A' {
		t.Fatalf("char literal: %#x", p.Code[2])
	}
	if p.Code[4] != 'z' {
		t.Fatalf("db char: %#x", p.Code[4])
	}
	assembleErr(t, "mov ax, 'ab'") // multi-char
	assembleErr(t, "mov ax, 'a")   // unterminated
}

func TestNumberBases(t *testing.T) {
	p := mustAssemble(t, "mov ax, 0b1010\nmov bx, 0xFF\nmov cx, 1_000")
	vals := []uint16{10, 255, 1000}
	for i, w := range vals {
		b := p.Listing[i].Bytes
		if got := uint16(b[2]) | uint16(b[3])<<8; got != w {
			t.Errorf("base %d = %d, want %d", i, got, w)
		}
	}
	assembleErr(t, "mov ax, 0x")          // empty digits
	assembleErr(t, "mov ax, 0b102")       // bad binary digit
	assembleErr(t, "mov ax, 99999999999") // too large
}
