package cluster

import "ssos/internal/mem"

// digest is an FNV-1a 64-bit accumulator over machine state. A plain
// hand-rolled accumulator (rather than hash/fnv) keeps the per-byte
// path allocation-free: the voter hashes ~8 KiB of RAM per replica per
// epoch, inside the worker pool's hot loop.
type digest uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newDigest() digest { return fnvOffset }

func (d *digest) byte(b byte) {
	*d = (*d ^ digest(b)) * fnvPrime
}

func (d *digest) bool(b bool) {
	if b {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

func (d *digest) u16(v uint16) {
	d.byte(byte(v))
	d.byte(byte(v >> 8))
}

func (d *digest) u32(v uint32) {
	d.u16(uint16(v))
	d.u16(uint16(v >> 16))
}

func (d *digest) u64(v uint64) {
	d.u32(uint32(v))
	d.u32(uint32(v >> 32))
}

// region folds a memory range into the digest.
func (d *digest) region(bus *mem.Bus, start, size uint32) {
	for i := uint32(0); i < size; i++ {
		d.byte(bus.Peek(start + i))
	}
}

func (d *digest) sum() uint64 { return uint64(*d) }
