package cluster

import (
	"testing"

	"ssos/internal/core"
)

func TestNewDefaults(t *testing.T) {
	c := MustNew(Config{Approach: core.ApproachReinstall})
	if len(c.replicas) != DefaultReplicas {
		t.Fatalf("replicas = %d, want %d", len(c.replicas), DefaultReplicas)
	}
	if c.Quorum() != DefaultReplicas/2+1 {
		t.Fatalf("quorum = %d", c.Quorum())
	}
	if c.cfg.EpochSteps != DefaultEpochSteps {
		t.Fatalf("epoch steps = %d", c.cfg.EpochSteps)
	}
}

func TestUnsupportedApproachRejected(t *testing.T) {
	for _, a := range []core.Approach{
		core.ApproachPrimitive, core.ApproachScheduler,
		core.ApproachCheckpoint, core.ApproachAdaptive,
	} {
		if _, err := New(Config{Approach: a}); err == nil {
			t.Errorf("approach %v: expected error", a)
		}
	}
}

// A fault-free fleet stays in full agreement with a legal verdict every
// epoch and never reconfigures: deterministic replicas in lockstep.
func TestFaultFreeLockstep(t *testing.T) {
	for _, a := range []core.Approach{
		core.ApproachBaseline, core.ApproachReinstall,
		core.ApproachContinue, core.ApproachMonitor,
	} {
		c := MustNew(Config{Replicas: 5, Approach: a, Seed: 3})
		c.Run(4)
		for _, st := range c.Stats {
			if st.Agree != 5 || !st.Quorum || !st.Legal {
				t.Errorf("%v epoch %d: agree %d quorum %v legal %v",
					a, st.Epoch, st.Agree, st.Quorum, st.Legal)
			}
		}
		if len(c.Events) != 0 {
			t.Errorf("%v: unexpected reconfigurations: %v", a, c.Events)
		}
	}
}

func TestTally(t *testing.T) {
	out := []epochOutput{
		{digest: 7, legal: true},
		{digest: 9, legal: true},
		{digest: 7, legal: true},
		{digest: 7, legal: true},
		{digest: 8, legal: false},
	}
	v := tally(out, 3)
	if v.digest != 7 || v.agree != 3 || !v.hasQuorum || !v.legal {
		t.Fatalf("tally: %+v", v)
	}
	for _, i := range []int{0, 2, 3} {
		if !v.inWinner(i) {
			t.Errorf("replica %d should be in winner", i)
		}
	}
	if v.inWinner(1) || v.inWinner(4) {
		t.Error("losers reported in winner group")
	}

	// Below quorum: no majority even though a plurality exists.
	v = tally(out[:3], 3)
	if v.hasQuorum || v.legal {
		t.Fatalf("2/3 agreement passed a quorum of 3: %+v", v)
	}

	// A quorum whose own output is illegal is not a legal verdict.
	bad := []epochOutput{{digest: 5, legal: false}, {digest: 5, legal: false}, {digest: 6, legal: true}}
	v = tally(bad, 2)
	if !v.hasQuorum || v.legal {
		t.Fatalf("illegal quorum: %+v", v)
	}

	// Tie-break: equal counts elect the first-seen group.
	tie := []epochOutput{{digest: 2, legal: true}, {digest: 3, legal: true}}
	v = tally(tie, 2)
	if v.digest != 2 || v.hasQuorum {
		t.Fatalf("tie: %+v", v)
	}
}

// A struck replica is evicted the same epoch, rejoins by state
// transfer, and the fleet is back to full agreement the next epoch —
// without the cluster verdict ever leaving legality.
func TestEvictAndRejoin(t *testing.T) {
	c := MustNew(Config{
		Replicas: 5,
		Approach: core.ApproachReinstall,
		Seed:     11,
		Schedule: []Strike{{Epoch: 1, Replica: 2, Offset: 10000, Mode: ModeOSBlast}},
	})
	c.Run(4)
	for _, st := range c.Stats {
		if !st.Legal {
			t.Errorf("epoch %d: verdict illegal", st.Epoch)
		}
	}
	st := c.Stats[1]
	if st.Agree != 4 {
		t.Errorf("strike epoch: agree %d, want 4", st.Agree)
	}
	if len(st.Evicted) != 1 || st.Evicted[0] != 2 {
		t.Errorf("strike epoch evicted %v, want [2]", st.Evicted)
	}
	if len(c.Events) != 1 || c.Events[0].Replica != 2 || c.Events[0].Donor < 0 {
		t.Errorf("events: %v", c.Events)
	}
	for _, st := range c.Stats[2:] {
		if st.Agree != 5 {
			t.Errorf("epoch %d after rejoin: agree %d, want 5", st.Epoch, st.Agree)
		}
	}
}

// The cluster layer stabilizes even a fleet of NON-stabilizing nodes:
// baseline replicas crash forever on a CPU blast, yet the reconfigurator
// reinstalls each victim and the majority keeps the verdict legal.
func TestBaselineFleetStabilizes(t *testing.T) {
	c := MustNew(Config{
		Replicas: 5,
		Approach: core.ApproachBaseline,
		Faults:   ModeCPUBlast,
		Seed:     17,
	})
	c.Run(9)
	s := c.Summary()
	if s.LegalEpochs != s.Epochs {
		t.Errorf("baseline fleet: %d/%d legal epochs", s.LegalEpochs, s.Epochs)
	}
	if s.Evictions == 0 {
		t.Error("expected evictions from the strike schedule")
	}
}

// State transfer puts a fresh system into lockstep with its donor: both
// machines produce identical output from the transfer point onward.
func TestStateTransferLockstep(t *testing.T) {
	donor := core.MustNew(core.Config{Approach: core.ApproachReinstall})
	donor.Run(77777)

	fresh := core.MustNew(core.Config{Approach: core.ApproachReinstall})
	if err := fresh.M.AdoptState(donor.M); err != nil {
		t.Fatal(err)
	}
	fresh.Watchdog.Counter = donor.Watchdog.Counter

	start := donor.Steps()
	donor.Run(50000)
	fresh.Run(50000)
	if donor.M.CPU != fresh.M.CPU {
		t.Fatalf("CPU diverged:\n donor %v\n fresh %v", &donor.M.CPU, &fresh.M.CPU)
	}
	dw, fw := donor.Heartbeat.Writes(), fresh.Heartbeat.Writes()
	var dn []uint64
	for _, w := range dw {
		if w.Step >= start {
			dn = append(dn, w.Step<<16|uint64(w.Value))
		}
	}
	var fn []uint64
	for _, w := range fw {
		if w.Step >= start {
			fn = append(fn, w.Step<<16|uint64(w.Value))
		}
	}
	if len(dn) == 0 || len(dn) != len(fn) {
		t.Fatalf("beat counts diverged: donor %d fresh %d", len(dn), len(fn))
	}
	for i := range dn {
		if dn[i] != fn[i] {
			t.Fatalf("beat %d diverged: donor %x fresh %x", i, dn[i], fn[i])
		}
	}
}

func TestParseFaultMode(t *testing.T) {
	for name, want := range map[string]FaultMode{
		"none": ModeNone, "bitflip": ModeBitflip, "os-blast": ModeOSBlast,
		"cpu-blast": ModeCPUBlast, "blast": ModeBlast,
	} {
		got, err := ParseFaultMode(name)
		if err != nil || got != want {
			t.Errorf("ParseFaultMode(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParseFaultMode("nope"); err == nil {
		t.Error("expected error for unknown mode")
	}
}
