package cluster

import (
	"testing"

	"ssos/internal/core"
)

// A minority of replicas blasted mid-epoch (CPU soft state AND all RAM
// randomized) never flips the majority verdict: the quorum masks the
// fault in the same epoch it happens, and the victims rejoin by the
// next one.
func TestMinorityBlastNeverFlipsVerdict(t *testing.T) {
	var sched []Strike
	// Strike a different minority pair (2 of 5, quorum is 3) on every
	// second epoch, at varying offsets.
	pairs := [][2]int{{0, 1}, {2, 3}, {4, 0}, {1, 3}}
	for i, p := range pairs {
		e := 1 + 2*i
		sched = append(sched,
			Strike{Epoch: e, Replica: p[0], Offset: 9000 + i*7000, Mode: ModeBlast},
			Strike{Epoch: e, Replica: p[1], Offset: 15000 + i*9000, Mode: ModeBlast},
		)
	}
	c := MustNew(Config{Replicas: 5, Approach: core.ApproachReinstall, Seed: 5, Schedule: sched})
	c.Run(10)
	if got := len(c.Stats); got != 10 {
		t.Fatalf("ran %d epochs", got)
	}
	for _, st := range c.Stats {
		if !st.Quorum || !st.Legal {
			t.Errorf("epoch %d: quorum %v legal %v (agree %d) — minority blast flipped the verdict",
				st.Epoch, st.Quorum, st.Legal, st.Agree)
		}
	}
	if c.Summary().Evictions == 0 {
		t.Error("blasted replicas were never evicted")
	}
}

// Blast EVERY replica: the cluster loses its quorum, and the
// reconfigurator must restore a full healthy quorum within a bounded
// number of epochs — either by rebuilding the fleet around a
// self-recovered survivor or by a fleet-wide reinstall from ROM.
func TestAllBlastRestoresQuorumWithinBound(t *testing.T) {
	const n, strikeEpoch, bound = 5, 2, 3
	var sched []Strike
	for i := 0; i < n; i++ {
		sched = append(sched, Strike{Epoch: strikeEpoch, Replica: i, Offset: 20000 + i*1000, Mode: ModeBlast})
	}
	c := MustNew(Config{Replicas: n, Approach: core.ApproachReinstall, Seed: 13, Schedule: sched})
	c.Run(strikeEpoch + bound + 4)

	recovered := -1
	for _, st := range c.Stats[strikeEpoch+1:] {
		if st.Agree == n && st.Quorum && st.Legal {
			recovered = st.Epoch
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("no full healthy quorum after the blast:\n%s", c.RenderLog())
	}
	if recovered > strikeEpoch+bound {
		t.Fatalf("quorum restored at epoch %d, want within %d epochs of the blast:\n%s",
			recovered, bound, c.RenderLog())
	}
	// Once restored, the fleet stays in full legal agreement.
	for _, st := range c.Stats[recovered:] {
		if st.Agree != n || !st.Legal {
			t.Errorf("epoch %d after recovery: agree %d legal %v", st.Epoch, st.Agree, st.Legal)
		}
	}
}

// The catastrophic fresh-boot path in isolation: force every replica
// into a crashed state on a baseline fleet (no per-node stabilizer at
// all) and check the fleet-wide from-ROM reinstall brings back a full
// legal quorum.
func TestFreshBootAllRecoversBaselineFleet(t *testing.T) {
	const n = 3
	var sched []Strike
	for i := 0; i < n; i++ {
		// Early-epoch blasts leave long silent tails: every replica's
		// epoch output is illegal, so no donor exists.
		sched = append(sched, Strike{Epoch: 1, Replica: i, Offset: 1000 + i*100, Mode: ModeBlast})
	}
	c := MustNew(Config{Replicas: n, Approach: core.ApproachBaseline, Seed: 21, Schedule: sched})
	c.Run(5)
	if c.Summary().FreshBoots == 0 {
		t.Fatalf("expected a fleet-wide fresh boot:\n%s", c.RenderLog())
	}
	for _, st := range c.Stats[2:] {
		if st.Agree != n || !st.Legal {
			t.Errorf("epoch %d after fresh boot: agree %d legal %v", st.Epoch, st.Agree, st.Legal)
		}
	}
}
