package cluster

import (
	"reflect"
	"testing"

	"ssos/internal/core"
)

// TestClusterDigestsWithDecodeCacheOnOff runs the same cluster twice —
// once with the replicas' predecoded instruction caches enabled (the
// default) and once with them disabled before every epoch — and
// requires identical voting history: every EpochStat (including the
// winning state digests) and every reconfiguration event. Replica
// digests summarize full machine state, so this pins the cache's
// bit-identical-execution guarantee at cluster scale, under the
// cluster's own strike schedule and per-replica fault injectors.
func TestClusterDigestsWithDecodeCacheOnOff(t *testing.T) {
	const epochs = 6
	run := func(disableCache bool) ([]EpochStat, []Event) {
		c := MustNew(Config{
			Replicas: 3,
			Approach: core.ApproachReinstall,
			Seed:     77,
			Faults:   ModeBitflip,
		})
		for e := 0; e < epochs; e++ {
			if disableCache {
				// Reinstalled/evicted replicas come back as fresh
				// machines with the cache re-enabled, so disable again
				// at every epoch boundary.
				for _, r := range c.replicas {
					r.sys.M.SetDecodeCache(false)
				}
			}
			c.Run(1)
		}
		return c.Stats, c.Events
	}

	statsOn, eventsOn := run(false)
	statsOff, eventsOff := run(true)
	if !reflect.DeepEqual(statsOn, statsOff) {
		t.Fatalf("epoch stats diverged between cache on/off:\n  on: %+v\n off: %+v",
			statsOn, statsOff)
	}
	if !reflect.DeepEqual(eventsOn, eventsOff) {
		t.Fatalf("reconfiguration events diverged between cache on/off:\n  on: %+v\n off: %+v",
			eventsOn, eventsOff)
	}
	for i, st := range statsOn {
		if st.Digest == 0 {
			t.Fatalf("epoch %d: zero digest (no cluster output?)", i)
		}
	}
}
