package cluster

import (
	"reflect"
	"testing"

	"ssos/internal/core"
)

// TestClusterDigestsWithDecodeCacheOnOff runs the same cluster three
// times — with the replicas' full engine stack (predecode cache +
// superblocks, the default), with superblocks disabled before every
// epoch, and with the decode cache (and so the whole stack) disabled —
// and requires identical voting history: every EpochStat (including the
// winning state digests) and every reconfiguration event. Replica
// digests summarize full machine state, so this pins the engines'
// bit-identical-execution guarantee at cluster scale, under the
// cluster's own strike schedule and per-replica fault injectors.
func TestClusterDigestsWithDecodeCacheOnOff(t *testing.T) {
	const epochs = 6
	run := func(engine string) ([]EpochStat, []Event) {
		c := MustNew(Config{
			Replicas: 3,
			Approach: core.ApproachReinstall,
			Seed:     77,
			Faults:   ModeBitflip,
		})
		for e := 0; e < epochs; e++ {
			// Reinstalled/evicted replicas come back as fresh machines
			// with the full stack re-enabled, so re-apply the engine
			// configuration at every epoch boundary.
			for _, r := range c.replicas {
				switch engine {
				case "predecode":
					r.sys.M.SetSuperblocks(false)
				case "interp":
					r.sys.M.SetDecodeCache(false)
				}
			}
			c.Run(1)
		}
		return c.Stats, c.Events
	}

	statsSB, eventsSB := run("superblock")
	for i, st := range statsSB {
		if st.Digest == 0 {
			t.Fatalf("epoch %d: zero digest (no cluster output?)", i)
		}
	}
	for _, engine := range []string{"predecode", "interp"} {
		stats, events := run(engine)
		if !reflect.DeepEqual(statsSB, stats) {
			t.Fatalf("epoch stats diverged between superblock and %s:\n  sb: %+v\n  %s: %+v",
				engine, statsSB, engine, stats)
		}
		if !reflect.DeepEqual(eventsSB, events) {
			t.Fatalf("reconfiguration events diverged between superblock and %s:\n  sb: %+v\n  %s: %+v",
				engine, eventsSB, engine, events)
		}
	}
}
