// Package cluster lifts the paper's single-node stabilization to a
// replicated fleet: N independent core.System replicas execute the same
// deterministic guest in lockstep epochs, a voter compares their
// observable outputs per epoch and emits a majority-voted cluster
// verdict, and a reconfigurator applies the paper's Section-3 remedy at
// the replica level — evict a divergent or halted replica, reinstall a
// fresh system from the ROM image, and rejoin it to the quorum by state
// transfer from a healthy member.
//
// The layering follows the two natural successors of the paper named in
// its related work: Self-Stabilizing Paxos (replicas mask faults
// through a voting quorum instead of merely recovering after the fact)
// and Self-Stabilizing Reconfiguration (divergent replicas are evicted
// and rejoined through state transfer from the current quorum). The
// cluster is self-stabilizing even when individual replicas are NOT:
// a baseline fleet, whose members crash forever on their first
// exception, still converges because the reconfigurator reinstalls
// crashed members from ROM each epoch.
//
// Determinism: every replica's machine is a pure function of its state,
// each replica owns a seeded fault.Injector, and the strike schedule is
// drawn from a single coordinator-owned seeded source. Replicas step in
// parallel on the shared internal/pool worker pool, but no goroutine
// touches another replica's state and all vote tallies are collected in
// replica order, so two runs with the same configuration produce
// byte-identical logs regardless of scheduling.
package cluster

import (
	"fmt"
	"math/rand"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/obs"
	"ssos/internal/pool"
	"ssos/internal/trace"
)

// Default configuration values.
const (
	// DefaultReplicas is the fleet size when none is given.
	DefaultReplicas = 3
	// DefaultEpochSteps is the epoch length in machine steps: two
	// watchdog periods, so every replica's own stabilizer gets at
	// least one full shot at a fault before the cluster layer votes.
	DefaultEpochSteps = 2 * core.DefaultWatchdogPeriod
	// DefaultStrikeEvery is the deterministic strike cadence: every
	// k-th epoch a random minority of replicas is struck.
	DefaultStrikeEvery = 3
)

// Config parameterizes a cluster. The zero value of every field selects
// a sensible default.
type Config struct {
	// Replicas is the fleet size N (default DefaultReplicas). The
	// voting quorum is N/2+1.
	Replicas int
	// Approach selects the per-replica system design. Supported:
	// baseline, reinstall, continue, monitor (the kernel approaches
	// whose full volatile state is transferable between machines).
	Approach core.Approach
	// EpochSteps is the epoch length in machine steps (default
	// DefaultEpochSteps). It must exceed the approach's heartbeat
	// MaxGap, or every epoch would look silent to the voter.
	EpochSteps int
	// Seed drives the strike schedule and every replica injector.
	Seed int64
	// Faults selects the strike fault class (default ModeNone).
	Faults FaultMode
	// StrikeProb, when positive, strikes each replica independently
	// with this probability per epoch, at a random offset. When zero,
	// the deterministic cadence below applies instead.
	StrikeProb float64
	// StrikeEvery is the deterministic cadence: every k-th epoch a
	// random minority ((N-1)/2 replicas) is struck mid-epoch (default
	// DefaultStrikeEvery).
	StrikeEvery int
	// Schedule, when non-nil, replaces generated strikes entirely
	// (tests use this to pin exact strike placements).
	Schedule []Strike
	// Collector, when non-nil, receives the cluster's structured event
	// stream (replica events in replica order, then the vote tally and
	// reconfiguration events, per epoch) and aggregates stabilization
	// metrics. See internal/cluster/observe.go.
	Collector *obs.Collector
	// TraceN, when positive, keeps a flight recorder of each replica's
	// last TraceN executed steps and attaches the dump of an evicted
	// replica to its eviction Event (post-mortem for divergence).
	TraceN int
}

// replica is one fleet member: a system, its private injector, and
// epoch bookkeeping.
type replica struct {
	id          int
	incarnation int
	sys         *core.System
	inj         *fault.Injector
	epochStart  uint64 // Steps() at the start of the current epoch
	// col buffers the replica's own event stream (nil when the cluster
	// is uninstrumented); rec is the optional flight recorder.
	col *obs.Collector
	rec *trace.Recorder
}

// Cluster is a running replicated fleet.
type Cluster struct {
	cfg      Config
	sysCfg   core.Config
	replicas []*replica
	rng      *rand.Rand // coordinator-only: strike schedule
	epoch    int

	// Stats records one entry per completed epoch, in order.
	Stats []EpochStat
	// Events records every reconfiguration action, in order.
	Events []Event

	evictions  int
	freshBoots int
}

// EpochStat is the voter's record of one epoch.
type EpochStat struct {
	Epoch   int
	Strikes []Strike
	// Agree is the size of the winning digest group (0 when the fleet
	// produced no output at all).
	Agree int
	// Quorum reports whether the winning group reached N/2+1 members.
	Quorum bool
	// Legal is the cluster verdict: a quorum exists and its members'
	// epoch output satisfies the heartbeat specification.
	Legal bool
	// Digest is the winning group's digest (the cluster output).
	Digest uint64
	// Evicted lists the replicas evicted at the end of this epoch.
	Evicted []int
}

// New builds a cluster of freshly booted replicas.
func New(cfg Config) (*Cluster, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: replica count %d", cfg.Replicas)
	}
	if cfg.EpochSteps == 0 {
		cfg.EpochSteps = DefaultEpochSteps
	}
	if cfg.StrikeEvery == 0 {
		cfg.StrikeEvery = DefaultStrikeEvery
	}
	switch cfg.Approach {
	case core.ApproachBaseline, core.ApproachReinstall, core.ApproachContinue, core.ApproachMonitor:
	default:
		return nil, fmt.Errorf("cluster: approach %v is not supported "+
			"(replica state transfer needs a transferable device set)", cfg.Approach)
	}
	c := &Cluster{
		cfg:    cfg,
		sysCfg: core.Config{Approach: cfg.Approach},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	// Probe the configuration once before building the fleet, so a
	// broken guest build surfaces as an error, not a panic.
	if _, err := core.New(c.sysCfg); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Replicas; i++ {
		r := &replica{id: i}
		if cfg.Collector != nil {
			r.col = obs.NewCollector()
			r.col.Replica = i
		}
		c.boot(r, nil)
		c.replicas = append(c.replicas, r)
	}
	return c, nil
}

// MustNew is New, panicking on configuration errors.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Quorum returns the majority threshold N/2+1.
func (c *Cluster) Quorum() int { return len(c.replicas)/2 + 1 }

// Epoch returns the number of completed epochs.
func (c *Cluster) Epoch() int { return c.epoch }

// boot replaces r's system with a fresh one reinstalled from the ROM
// image. With a donor, the new system additionally adopts the donor's
// volatile state (memory, CPU, step clock, latched interrupt pins,
// watchdog countdown) so the deterministic machine re-enters lockstep
// with the quorum; without one it starts from power-on.
func (c *Cluster) boot(r *replica, donor *replica) {
	sys := core.MustNew(c.sysCfg)
	if donor != nil {
		if err := sys.M.AdoptState(donor.sys.M); err != nil {
			// The fleet shares one memory layout; a mismatch is a
			// programming error, not a runtime condition.
			panic(err)
		}
		if sys.Watchdog != nil && donor.sys.Watchdog != nil {
			sys.Watchdog.Counter = donor.sys.Watchdog.Counter
		}
	}
	r.sys = sys
	if r.col != nil {
		sys.Instrument(r.col)
	}
	if c.cfg.TraceN > 0 {
		r.rec = trace.NewRecorder(sys.M, c.cfg.TraceN)
		sys.M.AfterStep = r.rec.Observe
	}
	r.inj = fault.NewInjector(sys.M, injectorSeed(c.cfg.Seed, r.id, r.incarnation))
	r.incarnation++
}

// injectorSeed mixes the cluster seed with replica identity and
// incarnation so every replica lifetime has an independent, yet fully
// reproducible, fault stream.
func injectorSeed(seed int64, id, incarnation int) int64 {
	x := uint64(seed) ^ uint64(id+1)*0x9E3779B97F4A7C15 ^ uint64(incarnation+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	return int64(x)
}

// Run executes n epochs: step all replicas one epoch in parallel,
// vote, reconfigure.
func (c *Cluster) Run(n int) {
	for i := 0; i < n; i++ {
		c.runEpoch()
	}
}

func (c *Cluster) runEpoch() {
	e := c.epoch
	strikes := c.strikesFor(e)
	perReplica := make([][]Strike, len(c.replicas))
	for _, s := range strikes {
		perReplica[s.Replica] = append(perReplica[s.Replica], s)
	}

	// Step every replica through the epoch on the shared worker pool.
	// Each job touches only its own replica (including its private
	// event collector), so the fan-out is safe and the results are
	// independent of goroutine scheduling.
	outputs := make([]epochOutput, len(c.replicas))
	pool.Run(len(c.replicas), func(i int) {
		r := c.replicas[i]
		if r.col != nil {
			r.col.Epoch = e
		}
		outputs[i] = r.runEpoch(c.cfg.EpochSteps, perReplica[i])
	})
	c.drainObs()

	v := tally(outputs, c.Quorum())
	c.emitVote(e, v)
	stat := EpochStat{
		Epoch:   e,
		Strikes: strikes,
		Agree:   v.agree,
		Quorum:  v.hasQuorum,
		Legal:   v.legal,
		Digest:  v.digest,
	}
	stat.Evicted = c.reconfigure(e, v, outputs)
	c.Stats = append(c.Stats, stat)
	c.epoch++
}

// runEpoch advances the replica by steps machine steps, applying the
// given strikes at their offsets, and returns the epoch output.
func (r *replica) runEpoch(steps int, strikes []Strike) epochOutput {
	r.epochStart = r.sys.Steps()
	done := 0
	for _, s := range strikes {
		off := s.Offset
		if off > steps {
			off = steps
		}
		if off > done {
			r.sys.Run(off - done)
			done = off
		}
		s.Mode.apply(r.inj)
	}
	r.sys.Run(steps - done)
	return r.output()
}
