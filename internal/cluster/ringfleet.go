package cluster

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
	"ssos/internal/model"
	"ssos/internal/obs"
	"ssos/internal/pool"
)

// RingFleet runs a mailbox token ring distributed one node per replica:
// replica i is a full scheduler system (core.ApproachScheduler) whose
// slot-0 process executes ring node i, and a relay shim periodically
// copies each node's owned mailbox slot into the neighbours' local
// mailbox copies — the fleet's only communication channel. The relay is
// deliberately dumb: it moves raw words, never inspecting or repairing
// them, so a corrupted slot travels as-is and only the receiving node's
// own normalization discipline (internal/guest's mailbox programs)
// contains it. Token circulation across the fleet is therefore a
// three-layer stabilization stack: machine, per-replica OS, distributed
// algorithm.
//
// Determinism: each replica is a deterministic machine with a private
// seeded injector, replicas step in parallel on the shared worker pool
// but never touch each other's state, and the relay runs on the
// coordinator at a fixed cadence in replica order — two runs with the
// same configuration produce identical traces and event streams.

// DefaultRelayEvery is the relay cadence in machine steps: a few
// scheduling quanta, so a node typically completes several iterations
// between exchanges (the message-delay regime of a real deployment).
const DefaultRelayEvery = 2000

// RingFleetConfig parameterizes a ring fleet. Zero values select
// defaults.
type RingFleetConfig struct {
	// Variant selects the token-ring protocol.
	Variant guest.RingVariant
	// Replicas is the fleet and ring size n (default DefaultReplicas;
	// 2..guest.MaxMailboxNodes).
	Replicas int
	// RelayEvery is the relay cadence in machine steps (default
	// DefaultRelayEvery).
	RelayEvery int
	// Seed drives every replica's private fault injector.
	Seed int64
	// Collector, when non-nil, receives the fleet's structured event
	// stream: fault injections and cluster-scoped legality-regained
	// events (Replica -1), foldable by obs.FoldEpisodes.
	Collector *obs.Collector
}

// RingFleet is a running one-node-per-replica token ring.
type RingFleet struct {
	cfg   RingFleetConfig
	proto model.Protocol
	reps  []*core.System
	injs  []*fault.Injector
	legal *obs.PredicateTracker

	steps     uint64 // fleet lockstep clock
	nextFault uint64
	lastFault uint64
	partial   int // steps run since the last relay round
}

// NewRingFleet builds a fleet of freshly booted replicas.
func NewRingFleet(cfg RingFleetConfig) (*RingFleet, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Replicas < 2 || cfg.Replicas > guest.MaxMailboxNodes {
		return nil, fmt.Errorf("cluster: ring fleet size %d out of range 2..%d",
			cfg.Replicas, guest.MaxMailboxNodes)
	}
	if cfg.RelayEvery <= 0 {
		cfg.RelayEvery = DefaultRelayEvery
	}
	w := core.MailboxWorkload(cfg.Variant)
	proto, _ := core.MailboxProtocolFor(w)
	f := &RingFleet{cfg: cfg, proto: proto}
	for i := 0; i < cfg.Replicas; i++ {
		sys, err := core.New(core.Config{
			Approach:  core.ApproachScheduler,
			Workload:  w,
			RingNode:  i,
			RingNodes: cfg.Replicas,
		})
		if err != nil {
			return nil, err
		}
		f.reps = append(f.reps, sys)
		f.injs = append(f.injs, fault.NewInjector(sys.M, injectorSeed(cfg.Seed, i, 0)))
	}
	f.legal = &obs.PredicateTracker{Confirm: core.ObsConfirm, Sink: ringSink{f}}
	return f, nil
}

// MustNewRingFleet is NewRingFleet, panicking on configuration errors.
func MustNewRingFleet(cfg RingFleetConfig) *RingFleet {
	f, err := NewRingFleet(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// ringSink stamps the legality tracker's confirmations with the fault
// id of the episode they close before forwarding to the collector.
type ringSink struct{ f *RingFleet }

func (s ringSink) Emit(e obs.Event) {
	if e.FaultID == 0 {
		e.FaultID = s.f.lastFault
	}
	if e.Type == obs.TypeLegalityRegained {
		s.f.lastFault = 0
	}
	if s.f.cfg.Collector != nil {
		s.f.cfg.Collector.Emit(e)
	}
}

// Steps returns the fleet's lockstep clock.
func (f *RingFleet) Steps() uint64 { return f.steps }

// Nodes returns the ring size.
func (f *RingFleet) Nodes() int { return len(f.reps) }

// Replica returns fleet member i (read-only access for reports).
func (f *RingFleet) Replica(i int) *core.System { return f.reps[i] }

// Run advances every replica by n machine steps, relaying neighbour
// slots every RelayEvery steps and sampling fleet legality after each
// relay round.
func (f *RingFleet) Run(n int) {
	for n > 0 {
		chunk := f.cfg.RelayEvery - f.partial
		if chunk > n {
			f.partial += n
			f.stepAll(n)
			return
		}
		f.stepAll(chunk)
		n -= chunk
		f.partial = 0
		f.relay()
		f.legal.OnSample(f.steps, f.Legal())
	}
}

// stepAll steps every replica by n steps in parallel and advances the
// fleet clock.
func (f *RingFleet) stepAll(n int) {
	pool.Run(len(f.reps), func(i int) {
		f.reps[i].Run(n)
	})
	f.steps += uint64(n)
}

// relay performs one exchange round: snapshot every node's owned slot,
// then copy each word — raw, unvalidated — into the local mailbox
// copies of the neighbours that read it.
func (f *RingFleet) relay() {
	n := len(f.reps)
	words := make([]uint16, n)
	for i, s := range f.reps {
		words[i] = s.MailboxSlot(i)
	}
	for i, s := range f.reps {
		l, r := (i+n-1)%n, (i+1)%n
		if f.proto.UsesLeft(i, n) {
			pokeWord(s, guest.MailboxAddr(l), words[l])
		}
		if f.proto.UsesRight(i, n) {
			pokeWord(s, guest.MailboxAddr(r), words[r])
		}
	}
}

func pokeWord(s *core.System, addr uint32, v uint16) {
	s.M.Bus.PokeRAM(addr, byte(v))
	s.M.Bus.PokeRAM(addr+1, byte(v>>8))
}

// Ring returns the fleet's authoritative abstract configuration: α of
// each node's owned slot, read from its own machine.
func (f *RingFleet) Ring() model.RingState {
	n := len(f.reps)
	var x model.RingState
	for i, s := range f.reps {
		x[i] = f.proto.Norm(i, n, s.MailboxSlot(i))
	}
	return x
}

// Privileges returns the privileges held in the fleet configuration,
// one entry per held guard.
func (f *RingFleet) Privileges() []int {
	return f.proto.Privileges(f.Ring(), len(f.reps))
}

// Legal reports the mutual-exclusion invariant: exactly one privilege.
func (f *RingFleet) Legal() bool { return len(f.Privileges()) == 1 }

// Converged runs the fleet for up to horizon steps and reports whether
// the ring held the exactly-one-privilege invariant for `window`
// consecutive relay rounds, returning the fleet step at which the
// sustained window began.
func (f *RingFleet) Converged(horizon, window int) (uint64, bool) {
	good := 0
	var since uint64
	for ran := 0; ran < horizon; ran += f.cfg.RelayEvery {
		f.Run(f.cfg.RelayEvery)
		if f.Legal() {
			if good == 0 {
				since = f.steps
			}
			good++
			if good >= window {
				return since, true
			}
		} else {
			good = 0
		}
	}
	return 0, false
}

// RingScramble selects which layer of the fleet a Scramble corrupts.
type RingScramble uint8

const (
	// ScrambleRing corrupts the algorithm layer only: every replica's
	// mailbox slots and the node's parked register words.
	ScrambleRing RingScramble = iota
	// ScrambleOS corrupts the OS layer only: every replica's scheduler
	// process table and CPU soft state.
	ScrambleOS
	// ScrambleJoint corrupts everything: every replica's CPU soft
	// state and entire RAM — the paper's "started in any possible
	// state", fleet-wide.
	ScrambleJoint
)

// RingScrambles lists the scramble classes in severity order.
func RingScrambles() []RingScramble {
	return []RingScramble{ScrambleRing, ScrambleOS, ScrambleJoint}
}

// ParseRingScramble parses a scramble-class name as printed by String.
func ParseRingScramble(s string) (RingScramble, error) {
	for _, m := range RingScrambles() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown ring scramble class %q", s)
}

func (m RingScramble) String() string {
	switch m {
	case ScrambleRing:
		return "ring"
	case ScrambleOS:
		return "os"
	default:
		return "joint"
	}
}

// Scramble corrupts the selected layer on every replica through the
// replicas' private injectors, emits one fleet-scoped fault event, and
// marks the legality tracker dirty — the next confirmed legal window
// emits legality-regained with steps-to-legal. Call it between Run
// calls (never concurrently with one).
func (f *RingFleet) Scramble(m RingScramble) {
	n := len(f.reps)
	for i, inj := range f.injs {
		switch m {
		case ScrambleRing:
			inj.RandomizeRegion(mem.Region{
				Name:  "mailbox",
				Start: guest.MailboxAddr(0),
				Size:  uint32(2 * n),
			})
			inj.RandomizeRegion(mem.Region{
				Name:  "node-regs",
				Start: guest.MailboxRegLAddr(0),
				Size:  4,
			})
		case ScrambleOS:
			inj.RandomizeRegion(mem.Region{
				Name:  "table",
				Start: uint32(guest.SchedSeg) << 4,
				Size:  guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize,
			})
			inj.BlastCPU()
		default:
			inj.BlastCPU()
			inj.BlastRAM()
		}
		_ = i
	}
	f.nextFault++
	f.lastFault = f.nextFault
	f.legal.OnFault(f.steps)
	if f.cfg.Collector != nil {
		e := obs.Ev(f.steps, obs.TypeFaultInjected)
		e.Replica = -1
		e.Epoch = -1
		e.FaultID = f.nextFault
		e.Note = "scramble-" + m.String()
		f.cfg.Collector.Emit(e)
	}
}
