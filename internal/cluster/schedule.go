package cluster

import (
	"fmt"
	"sort"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

// FaultMode selects the fault class a strike injects into a replica.
type FaultMode uint8

// Fault modes, mirroring the fault classes of cmd/ssos-run.
const (
	// ModeNone disables strikes.
	ModeNone FaultMode = iota
	// ModeBitflip flips one uniformly chosen RAM bit.
	ModeBitflip
	// ModeOSBlast randomizes the whole guest OS image in RAM.
	ModeOSBlast
	// ModeCPUBlast randomizes the entire processor soft state.
	ModeCPUBlast
	// ModeBlast randomizes CPU soft state AND all RAM — the paper's
	// "started in any possible state", per replica.
	ModeBlast
)

// modeNames is indexed by FaultMode; an array (not a map) so that
// ParseFaultMode resolves ties deterministically and iteration order
// can never depend on runtime map layout.
var modeNames = [...]string{
	ModeNone:     "none",
	ModeBitflip:  "bitflip",
	ModeOSBlast:  "os-blast",
	ModeCPUBlast: "cpu-blast",
	ModeBlast:    "blast",
}

func (m FaultMode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseFaultMode resolves a fault-mode name (the -faults CLI values).
func ParseFaultMode(name string) (FaultMode, error) {
	for m, s := range modeNames {
		if s == name {
			return FaultMode(m), nil
		}
	}
	return ModeNone, fmt.Errorf("cluster: unknown fault mode %q", name)
}

// apply injects the mode's fault through the replica's injector.
func (m FaultMode) apply(in *fault.Injector) {
	switch m {
	case ModeBitflip:
		in.FlipRAMBit()
	case ModeOSBlast:
		in.RandomizeRegion(mem.Region{Name: "os", Start: uint32(guest.OSSeg) << 4, Size: guest.ImageSize})
	case ModeCPUBlast:
		in.BlastCPU()
	case ModeBlast:
		in.BlastCPU()
		in.BlastRAM()
	}
}

// Strike applies one on-demand fault to the given replica through its
// private injector. It must be called between epochs (never while Run
// is stepping the fleet) — the served session's serialized command
// loop satisfies that by construction. The injection draws from the
// replica's seeded fault stream, so a fixed command sequence remains
// fully reproducible; the next epoch's vote sees the damage.
func (c *Cluster) Strike(replica int, m FaultMode) error {
	if replica < 0 || replica >= len(c.replicas) {
		return fmt.Errorf("cluster: strike replica %d out of range [0,%d)", replica, len(c.replicas))
	}
	m.apply(c.replicas[replica].inj)
	return nil
}

// Strike is one scheduled fault injection: replica r is hit with the
// mode's fault at the given step offset into the epoch.
type Strike struct {
	Epoch   int
	Replica int
	Offset  int
	Mode    FaultMode
}

func (s Strike) String() string {
	return fmt.Sprintf("replica %d %v @+%d", s.Replica, s.Mode, s.Offset)
}

// strikesFor produces this epoch's strikes, sorted by replica then
// offset. With an explicit Schedule it filters; otherwise it draws from
// the coordinator rng — probabilistically per replica when StrikeProb
// is set, else a random minority every StrikeEvery-th epoch. Either
// way the sequence is a pure function of the cluster seed.
func (c *Cluster) strikesFor(epoch int) []Strike {
	var out []Strike
	switch {
	case c.cfg.Schedule != nil:
		for _, s := range c.cfg.Schedule {
			if s.Epoch == epoch {
				out = append(out, s)
			}
		}
	case c.cfg.Faults == ModeNone:
		return nil
	case c.cfg.StrikeProb > 0:
		for i := range c.replicas {
			if c.rng.Float64() < c.cfg.StrikeProb {
				out = append(out, Strike{
					Epoch:   epoch,
					Replica: i,
					Offset:  c.rng.Intn(c.cfg.EpochSteps),
					Mode:    c.cfg.Faults,
				})
			}
		}
	default:
		if (epoch+1)%c.cfg.StrikeEvery != 0 {
			return nil
		}
		minority := (len(c.replicas) - 1) / 2
		perm := c.rng.Perm(len(c.replicas))
		for _, i := range perm[:minority] {
			out = append(out, Strike{
				Epoch:   epoch,
				Replica: i,
				Offset:  c.rng.Intn(c.cfg.EpochSteps),
				Mode:    c.cfg.Faults,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Replica != out[b].Replica {
			return out[a].Replica < out[b].Replica
		}
		return out[a].Offset < out[b].Offset
	})
	return out
}
