package cluster

import (
	"fmt"
	"strings"
)

// Summary aggregates a run's cluster-level outcome.
type Summary struct {
	Replicas int
	Epochs   int
	// LegalEpochs counts epochs whose majority verdict was legal.
	LegalEpochs int
	// Availability is LegalEpochs/Epochs (0 for an empty run).
	Availability float64
	// Evictions counts replica evict-reinstall-rejoin cycles;
	// FreshBoots counts cluster-wide from-ROM restarts (regime 3).
	Evictions  int
	FreshBoots int
	// PerReplica counts evictions per replica id.
	PerReplica []int
}

// Summary computes the run summary so far.
func (c *Cluster) Summary() Summary {
	s := Summary{
		Replicas:   len(c.replicas),
		Epochs:     len(c.Stats),
		Evictions:  c.evictions,
		FreshBoots: c.freshBoots,
		PerReplica: make([]int, len(c.replicas)),
	}
	for _, st := range c.Stats {
		if st.Legal {
			s.LegalEpochs++
		}
	}
	if s.Epochs > 0 {
		s.Availability = float64(s.LegalEpochs) / float64(s.Epochs)
	}
	for _, e := range c.Events {
		s.PerReplica[e.Replica]++
	}
	return s
}

// RenderLog renders the complete run — per-epoch strike lines, vote
// tallies, reconfiguration events and the final summary — as
// deterministic text. The CLI prints it; the determinism test compares
// it byte for byte across runs.
func (c *Cluster) RenderLog() string {
	var b strings.Builder
	n := len(c.replicas)
	for _, st := range c.Stats {
		for _, s := range st.Strikes {
			fmt.Fprintf(&b, "epoch %3d: strike %v\n", st.Epoch, s)
		}
		verdict := "ILLEGAL"
		if st.Legal {
			verdict = "legal"
		}
		quorum := ""
		if !st.Quorum {
			quorum = "  NO QUORUM"
		}
		fmt.Fprintf(&b, "epoch %3d: agree %d/%d  verdict %s  digest %016x%s\n",
			st.Epoch, st.Agree, n, verdict, st.Digest, quorum)
		for _, e := range c.Events {
			if e.Epoch == st.Epoch {
				fmt.Fprintf(&b, "epoch %3d: %s\n", st.Epoch, strings.TrimPrefix(e.String(),
					fmt.Sprintf("epoch %d: ", e.Epoch)))
				if e.Trace != "" {
					fmt.Fprintf(&b, "epoch %3d: replica %d last steps before eviction:\n", st.Epoch, e.Replica)
					for _, line := range strings.Split(strings.TrimRight(e.Trace, "\n"), "\n") {
						fmt.Fprintf(&b, "    %s\n", line)
					}
				}
			}
		}
	}
	s := c.Summary()
	fmt.Fprintf(&b, "cluster: %d replicas, %d epochs, %d legal (availability %.3f)\n",
		s.Replicas, s.Epochs, s.LegalEpochs, s.Availability)
	fmt.Fprintf(&b, "cluster: %d evictions, %d fleet-wide fresh boots, per replica %v\n",
		s.Evictions, s.FreshBoots, s.PerReplica)
	return b.String()
}
