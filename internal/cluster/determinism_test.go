package cluster

import (
	"runtime"
	"testing"

	"ssos/internal/core"
)

// Same seed, same replica count, same fault schedule: byte-identical
// vote tallies and eviction logs, run after run. Replicas execute in
// parallel across GOMAXPROCS, so this pins down that goroutine
// scheduling cannot leak into results — the same guarantee the shared
// pool documents for the experiment harness.
func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{
		Replicas:   5,
		Approach:   core.ApproachReinstall,
		Faults:     ModeOSBlast,
		StrikeProb: 0.3,
		Seed:       123,
	}
	run := func() string {
		c := MustNew(cfg)
		c.Run(8)
		return c.RenderLog()
	}
	first := run()
	if second := run(); second != first {
		t.Fatalf("two runs with identical configuration diverged:\n--- first\n%s--- second\n%s", first, second)
	}
}

// Scheduling independence, the hard way: the same configuration run on
// one worker and on all workers must agree byte for byte.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := Config{
		Replicas: 7,
		Approach: core.ApproachMonitor,
		Faults:   ModeBlast,
		Seed:     99,
	}
	run := func() string {
		c := MustNew(cfg)
		c.Run(6)
		return c.RenderLog()
	}
	parallel := run()

	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(prev)

	if serial != parallel {
		t.Fatalf("worker count leaked into results:\n--- parallel\n%s--- serial\n%s", parallel, serial)
	}
}
