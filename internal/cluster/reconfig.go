package cluster

import "fmt"

// Event is one reconfiguration action: a replica leaving and rejoining
// the fleet.
type Event struct {
	Epoch   int
	Replica int
	// Reason: "divergent" (digest off the majority), "illegal" (its
	// own heartbeat stream violated the spec), "no-quorum" (joining the
	// largest corroborated group after quorum loss), "majority-illegal"
	// or "no-corroborated-state" (cluster-wide fresh boot).
	Reason string
	// Donor is the replica whose state the evictee adopted on rejoin,
	// or -1 for a from-ROM fresh boot.
	Donor int
	// Trace is the evicted incarnation's flight-recorder dump (its
	// last Config.TraceN executed steps), empty when tracing is off.
	Trace string
}

func (e Event) String() string {
	if e.Donor < 0 {
		return fmt.Sprintf("epoch %d: evict replica %d (%s), reinstall from ROM, fresh boot",
			e.Epoch, e.Replica, e.Reason)
	}
	return fmt.Sprintf("epoch %d: evict replica %d (%s), reinstall from ROM, state transfer from replica %d, rejoin",
		e.Epoch, e.Replica, e.Reason, e.Donor)
}

// reconfigure applies the paper's Section-3 remedy at replica level
// after an epoch's vote: every replica outside the agreed state is
// evicted, reinstalled from the ROM image, and rejoined to the quorum
// by adopting a healthy member's state. It returns the evicted ids.
//
// Three regimes, from mild to catastrophic:
//
//  1. A legal quorum exists: evict everyone outside the winning group;
//     the lowest-id winner donates its state.
//  2. No quorum (or the quorum's own output is illegal), but at least
//     two replicas agree byte-for-byte on a legal epoch output: rebuild
//     the fleet around the largest such corroborated group — soft state
//     survives. A lone legal replica is never trusted: a struck machine
//     whose watchdog reinstalled it mid-epoch looks weakly legal yet
//     runs phase-shifted from the canonical trajectory, and adopting
//     its state fleet-wide would lock the cluster onto that wrong orbit
//     forever (everyone agreeing, nobody right). Corroboration by an
//     independent twin is what rules that out.
//  3. No corroborated legal state anywhere: fresh-boot every replica
//     from ROM. All replicas restart identically, so the next epoch
//     restores a full agreeing quorum — the cluster-level
//     reinstall-and-restart.
func (c *Cluster) reconfigure(epoch int, v vote, outputs []epochOutput) []int {
	if v.hasQuorum && v.legal {
		donor := c.replicas[v.members[v.winner][0]]
		var evicted []int
		for i, r := range c.replicas {
			if v.inWinner(i) {
				continue
			}
			reason := "divergent"
			if !outputs[i].legal {
				reason = "illegal"
			}
			c.evict(epoch, r, donor, reason)
			evicted = append(evicted, i)
		}
		return evicted
	}

	reason := "no-quorum"
	if v.hasQuorum {
		reason = "majority-illegal"
	}
	// Largest group whose members all produced legal output, provided
	// at least two replicas corroborate it (ties break toward the group
	// containing the lowest replica id, which tally lists first).
	best := -1
	for g, members := range v.members {
		if len(members) < 2 || (best >= 0 && len(members) <= len(v.members[best])) {
			continue
		}
		allLegal := true
		for _, i := range members {
			if !outputs[i].legal {
				allLegal = false
				break
			}
		}
		if allLegal {
			best = g
		}
	}
	if best < 0 {
		var evicted []int
		for i, r := range c.replicas {
			c.evict(epoch, r, nil, "no-corroborated-state")
			evicted = append(evicted, i)
		}
		c.freshBoots++
		return evicted
	}
	donor := v.members[best][0]
	var evicted []int
	for i, r := range c.replicas {
		if outputs[i].digest == outputs[donor].digest {
			continue
		}
		c.evict(epoch, r, c.replicas[donor], reason)
		evicted = append(evicted, i)
	}
	return evicted
}

// evict reinstalls r from ROM and rejoins it (via state transfer from
// donor, or from power-on when donor is nil), logging the event. The
// evicted incarnation's flight recorder is dumped before the boot
// replaces it.
func (c *Cluster) evict(epoch int, r *replica, donor *replica, reason string) {
	donorID := -1
	if donor != nil {
		donorID = donor.id
	}
	var dump string
	if r.rec != nil {
		dump = r.rec.Dump()
	}
	// The fault ordinal must be read before boot replaces the injector:
	// it keys the eviction to the episode of the evicted incarnation's
	// latest strike.
	fid := uint64(len(r.inj.Log))
	c.boot(r, donor)
	c.evictions++
	c.Events = append(c.Events, Event{Epoch: epoch, Replica: r.id, Reason: reason, Donor: donorID, Trace: dump})
	c.emitEviction(epoch, r.id, donorID, reason, fid)
}
