package cluster

import (
	"bytes"
	"strings"
	"testing"

	"ssos/internal/core"
	"ssos/internal/obs"
	"ssos/internal/pool"
)

// An instrumented cluster run: event log + metrics doc, rendered to
// bytes so determinism checks can compare them wholesale.
func obsRun(t *testing.T, cfg Config, epochs int) []byte {
	t.Helper()
	col := obs.NewCollector()
	cfg.Collector = col
	c := MustNew(cfg)
	c.Run(epochs)
	c.FinishObservability()
	var b bytes.Buffer
	if err := col.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	j, err := col.Metrics.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return append(b.Bytes(), j...)
}

// The cluster event stream must be byte-identical across runs and
// across worker counts — the tentpole's determinism requirement, at
// the layer where parallelism actually happens.
func TestObsDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{
		Replicas: 5,
		Approach: core.ApproachReinstall,
		Faults:   ModeOSBlast,
		Seed:     123,
	}
	first := obsRun(t, cfg, 6)
	if len(first) == 0 {
		t.Fatal("empty instrumented log")
	}
	if !bytes.Equal(first, obsRun(t, cfg, 6)) {
		t.Fatal("two instrumented runs diverged")
	}
	for _, w := range []int{1, 2, 8} {
		pool.Workers = w
		got := obsRun(t, cfg, 6)
		pool.Workers = 0
		if !bytes.Equal(first, got) {
			t.Fatalf("worker count %d leaked into the event log", w)
		}
	}
}

// Cluster events carry the fleet clock and replica scoping: vote
// tallies each epoch, evictions paired with rejoins, replica events
// tagged with their origin.
func TestObsClusterEvents(t *testing.T) {
	col := obs.NewCollector()
	c := MustNew(Config{
		Replicas:  3,
		Approach:  core.ApproachBaseline, // crashes guarantee evictions
		Faults:    ModeBlast,
		Seed:      7,
		Collector: col,
	})
	c.Run(6)
	c.FinishObservability()

	votes, evicts, rejoins := 0, 0, 0
	for _, e := range col.Events() {
		switch e.Type {
		case obs.TypeVoteTally:
			votes++
			if e.Replica != -1 || e.Epoch < 0 {
				t.Fatalf("vote tally scoping wrong: %+v", e)
			}
			if want := c.clusterStep(e.Epoch); e.Step != want {
				t.Fatalf("vote tally step %d, want fleet clock %d", e.Step, want)
			}
		case obs.TypeReplicaEvicted:
			evicts++
			if e.Replica < 0 || e.Note == "" {
				t.Fatalf("eviction missing replica or reason: %+v", e)
			}
		case obs.TypeReplicaRejoined:
			rejoins++
		}
	}
	if votes != 6 {
		t.Fatalf("vote tallies %d, want one per epoch", votes)
	}
	if evicts == 0 || evicts != rejoins {
		t.Fatalf("evictions %d, rejoins %d", evicts, rejoins)
	}
	if got := col.Metrics.Counter("cluster.evictions"); got != uint64(evicts) {
		t.Fatalf("eviction counter %d != %d events", got, evicts)
	}
	if got := col.Metrics.Counter("cluster.epochs"); got != 6 {
		t.Fatalf("epoch counter %d", got)
	}
	// Replica metrics were merged: strike injections are counted in the
	// struck replica's own registry and reach the master only through
	// FinishObservability's merge.
	if col.Metrics.Counter("faults.injected") == 0 {
		t.Fatal("replica metrics not merged into master registry")
	}
	// Availability gauges exist (present in the marshaled doc) and lie
	// in [0, 1].
	doc, err := col.Metrics.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := "replica." + string(rune('0'+i)) + ".availability"
		if !bytes.Contains(doc, []byte(name)) {
			t.Fatalf("metrics doc missing gauge %s:\n%s", name, doc)
		}
		if g := col.Metrics.Gauge(name); g < 0 || g > 1 {
			t.Fatalf("replica %d availability %v out of range", i, g)
		}
	}
}

// Satellite (a): with TraceN set, an evicted replica's flight-recorder
// dump is attached to its eviction event and shows up in the rendered
// log.
func TestEvictionTraceDump(t *testing.T) {
	c := MustNew(Config{
		Replicas: 3,
		Approach: core.ApproachBaseline,
		Faults:   ModeBlast,
		Seed:     7,
		TraceN:   16,
	})
	c.Run(6)
	if len(c.Events) == 0 {
		t.Fatal("no evictions under baseline + blast")
	}
	for _, e := range c.Events {
		if e.Trace == "" {
			t.Fatalf("eviction without trace dump: %+v", e)
		}
		if n := len(strings.Split(strings.TrimRight(e.Trace, "\n"), "\n")); n > 16 {
			t.Fatalf("trace dump %d lines, recorder depth 16", n)
		}
	}
	log := c.RenderLog()
	if !strings.Contains(log, "last steps before eviction:") {
		t.Fatalf("rendered log missing trace section:\n%s", log)
	}

	// Without TraceN, no dumps and no trace section.
	c2 := MustNew(Config{Replicas: 3, Approach: core.ApproachBaseline, Faults: ModeBlast, Seed: 7})
	c2.Run(6)
	for _, e := range c2.Events {
		if e.Trace != "" {
			t.Fatal("trace dump attached with tracing off")
		}
	}
}
