package cluster

import (
	"ssos/internal/guest"
)

// epochOutput is one replica's observable output for one epoch: its
// heartbeat-legality verdict under the approach's trace.HeartbeatSpec,
// and a digest of everything the voter compares — the epoch's console
// output and the machine's soft state (CPU registers, OS-image and
// stack RAM, watchdog countdown).
//
// Healthy replicas are deterministic machines running in lockstep, so
// their digests are identical; any transient fault that matters
// eventually shows up as a digest mismatch, even when the victim's own
// heartbeat stream still looks legal (a reinstalled guest restarting
// its counter is weakly legal, yet out of step with the quorum — only
// the vote can tell).
type epochOutput struct {
	digest uint64
	legal  bool
	beats  int
}

// output computes the replica's epoch output at the current step.
func (r *replica) output() epochOutput {
	now := r.sys.Steps()
	w := r.sys.Heartbeat.Writes()

	// The epoch's slice of the stream.
	first := len(w)
	for first > 0 && w[first-1].Step >= r.epochStart {
		first--
	}

	// Legality verdict: no specification violation observed inside
	// this epoch (violations are stamped with the offending step).
	legal := true
	for _, v := range r.sys.Spec().Violations(w, now) {
		if v.Step >= r.epochStart {
			legal = false
			break
		}
	}

	// Digest: epoch console output (step offsets and values), CPU soft
	// state, the OS-state RAM (image plus stack), and the watchdog
	// countdown — the full set that determines future behaviour.
	d := newDigest()
	for _, pw := range w[first:] {
		d.u64(pw.Step - r.epochStart)
		d.u16(pw.Value)
	}
	cpu := &r.sys.M.CPU
	for _, v := range cpu.R {
		d.u16(v)
	}
	for _, v := range cpu.S {
		d.u16(v)
	}
	d.u16(cpu.IP)
	d.u16(uint16(cpu.Flags))
	d.u32(cpu.IDTR)
	d.u16(cpu.WP)
	d.u16(cpu.NMICounter)
	d.bool(cpu.InNMI)
	d.bool(cpu.Halted)
	if wd := r.sys.Watchdog; wd != nil {
		d.u32(wd.Counter)
	}
	d.region(r.sys.M.Bus, uint32(guest.OSSeg)<<4, guest.ImageSize)
	d.region(r.sys.M.Bus, uint32(guest.StackSeg)<<4, 0x1000)

	return epochOutput{digest: d.sum(), legal: legal, beats: len(w) - first}
}

// vote is the tallied comparison of one epoch's replica outputs.
type vote struct {
	// groups holds the distinct digests in first-seen (replica) order;
	// members lists each group's replicas in ascending id order.
	groups  []uint64
	members [][]int
	// winner indexes the largest group (ties break toward the group
	// seen first, i.e. the one containing the lowest replica id).
	winner    int
	agree     int
	hasQuorum bool
	// legal is the cluster verdict: quorum reached and every quorum
	// member's epoch output satisfied the heartbeat specification.
	legal  bool
	digest uint64
}

// tally groups the outputs by digest and elects the majority.
func tally(outputs []epochOutput, quorum int) vote {
	v := vote{winner: -1}
	idx := make(map[uint64]int, len(outputs))
	for i, o := range outputs {
		g, ok := idx[o.digest]
		if !ok {
			g = len(v.groups)
			idx[o.digest] = g
			v.groups = append(v.groups, o.digest)
			v.members = append(v.members, nil)
		}
		v.members[g] = append(v.members[g], i)
	}
	for g := range v.groups {
		if n := len(v.members[g]); n > v.agree {
			v.agree = n
			v.winner = g
		}
	}
	if v.winner < 0 {
		return v
	}
	v.digest = v.groups[v.winner]
	v.hasQuorum = v.agree >= quorum
	if v.hasQuorum {
		v.legal = true
		for _, i := range v.members[v.winner] {
			if !outputs[i].legal {
				v.legal = false
				break
			}
		}
	}
	return v
}

// inWinner reports whether replica i belongs to the winning group.
func (v *vote) inWinner(i int) bool {
	if v.winner < 0 {
		return false
	}
	for _, m := range v.members[v.winner] {
		if m == i {
			return true
		}
	}
	return false
}
