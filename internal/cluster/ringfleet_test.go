package cluster

import (
	"fmt"
	"testing"

	"ssos/internal/guest"
	"ssos/internal/obs"
)

func TestRingFleetConverges(t *testing.T) {
	for _, v := range guest.RingVariants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := MustNewRingFleet(RingFleetConfig{Variant: v, Seed: 1})
			since, ok := f.Converged(6000000, 50)
			if !ok {
				t.Fatalf("%v fleet never converged; privileges=%v ring=%v",
					v, f.Privileges(), f.Ring())
			}
			t.Logf("converged at fleet step %d", since)
			// The token keeps circulating across replicas.
			holders := map[int]bool{}
			for k := 0; k < 600; k++ {
				f.Run(DefaultRelayEvery)
				p := f.Privileges()
				if len(p) != 1 {
					t.Fatalf("legality lost: privileges=%v ring=%v", p, f.Ring())
				}
				holders[p[0]] = true
			}
			if len(holders) != f.Nodes() {
				t.Fatalf("token froze across the fleet: visited %v", holders)
			}
		})
	}
}

func TestRingFleetScrambleClasses(t *testing.T) {
	for _, v := range guest.RingVariants() {
		for _, m := range []RingScramble{ScrambleRing, ScrambleOS, ScrambleJoint} {
			v, m := v, m
			t.Run(fmt.Sprintf("%v/%v", v, m), func(t *testing.T) {
				f := MustNewRingFleet(RingFleetConfig{Variant: v, Seed: 3})
				if _, ok := f.Converged(6000000, 50); !ok {
					t.Fatalf("no initial convergence; ring=%v", f.Ring())
				}
				f.Scramble(m)
				if _, ok := f.Converged(12000000, 50); !ok {
					t.Fatalf("%v did not re-converge after %v scramble; privileges=%v ring=%v",
						v, m, f.Privileges(), f.Ring())
				}
			})
		}
	}
}

func TestRingFleetEpisodeEvents(t *testing.T) {
	col := obs.NewCollector()
	f := MustNewRingFleet(RingFleetConfig{Variant: guest.VariantDijkstra3, Seed: 5, Collector: col})
	if _, ok := f.Converged(6000000, 20); !ok {
		t.Fatal("no initial convergence")
	}
	f.Scramble(ScrambleJoint)
	if _, ok := f.Converged(12000000, 20); !ok {
		t.Fatal("no re-convergence")
	}
	eps := obs.FoldEpisodes(col.Events())
	if len(eps) != 1 {
		t.Fatalf("episodes: got %d, want 1 (%v)", len(eps), eps)
	}
	ep := eps[0]
	if ep.Replica != -1 || ep.FaultID != 1 {
		t.Fatalf("episode scope: %+v", ep)
	}
	if !ep.Resolved || ep.Resolution != obs.ResolutionLegality {
		t.Fatalf("episode not resolved by legality: %+v", ep)
	}
	if ep.StepsToLegal == 0 {
		t.Fatalf("episode has no steps-to-legal: %+v", ep)
	}
}

func TestRingFleetDeterministic(t *testing.T) {
	run := func() (uint64, [2]uint64) {
		f := MustNewRingFleet(RingFleetConfig{Variant: guest.VariantGhosh4, Seed: 9})
		f.Run(200000)
		f.Scramble(ScrambleJoint)
		since, ok := f.Converged(12000000, 30)
		if !ok {
			t.Fatal("no convergence")
		}
		var sums [2]uint64
		for i := 0; i < f.Nodes(); i++ {
			sums[0] += uint64(f.Replica(i).MailboxSlot(i))
			sums[1] += f.Replica(i).Steps()
		}
		return since, sums
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("nondeterministic fleet: (%d %v) vs (%d %v)", s1, d1, s2, d2)
	}
}
