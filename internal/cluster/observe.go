package cluster

import (
	"strconv"

	"ssos/internal/obs"
)

// Observability wiring. When Config.Collector is set, every replica
// gets a private obs.Collector (single-goroutine, so the parallel
// epoch fan-out stays race-free); after each epoch the coordinator
// drains the replica buffers in replica order into the master
// collector, then appends its own vote-tally and reconfiguration
// events. Event order is therefore a pure function of the
// configuration — byte-identical across runs and worker counts, the
// same contract the vote log already satisfies.

// clusterStep is the cluster-level clock stamp for coordinator events:
// the logical end of the epoch. Replicas may drift in private step
// counts after fresh boots, so coordinator events use the fleet's
// lockstep clock instead of any one machine's.
func (c *Cluster) clusterStep(epoch int) uint64 {
	return uint64(epoch+1) * uint64(c.cfg.EpochSteps)
}

// drainObs splices the per-replica event buffers (in replica order)
// into the master collector after an epoch.
func (c *Cluster) drainObs() {
	if c.cfg.Collector == nil {
		return
	}
	for _, r := range c.replicas {
		c.cfg.Collector.Append(r.col.Drain()...)
	}
}

// emitVote records the epoch's tally as one cluster-scoped event.
//
// Vote tallies deliberately carry no FaultID: a tally aggregates the
// whole fleet, and it is emitted before reconfigure decides who is
// evicted — scoping it to any one replica's episode would close that
// episode before its eviction events arrive. Episodes therefore end
// only on replica-scoped evidence (legality-regained or rejoin).
func (c *Cluster) emitVote(epoch int, v vote) {
	if c.cfg.Collector == nil {
		return
	}
	verdict := "legal"
	switch {
	case !v.hasQuorum:
		verdict = "no-quorum"
	case !v.legal:
		verdict = "illegal"
	}
	c.cfg.Collector.Emit(obs.Event{
		Step:    c.clusterStep(epoch),
		Type:    obs.TypeVoteTally,
		Replica: -1,
		Epoch:   epoch,
		Code:    v.digest,
		Arg:     uint64(v.agree),
		Note:    verdict,
	})
}

// emitEviction records one evict + rejoin pair for the reconfigured
// replica. Arg on the rejoin event is donor+1 (0 = from-ROM fresh
// boot), keeping the zero-omitted JSON encoding unambiguous. faultID
// is the evicted incarnation's latest injected-fault ordinal (0 when
// the incarnation was never struck), scoping the pair to the recovery
// episode the rejoin resolves.
func (c *Cluster) emitEviction(epoch int, replica, donor int, reason string, faultID uint64) {
	if c.cfg.Collector == nil {
		return
	}
	step := c.clusterStep(epoch)
	c.cfg.Collector.Emit(obs.Event{
		Step:    step,
		Type:    obs.TypeReplicaEvicted,
		Replica: replica,
		Epoch:   epoch,
		FaultID: faultID,
		Note:    reason,
	})
	c.cfg.Collector.Emit(obs.Event{
		Step:    step,
		Type:    obs.TypeReplicaRejoined,
		Replica: replica,
		Epoch:   epoch,
		FaultID: faultID,
		Arg:     uint64(donor + 1),
	})
}

// MetricsSnapshot returns the cluster's aggregated stabilization
// metrics as a fresh registry — the master collector's registry plus
// every replica's, with the per-replica availability gauges — without
// mutating any collector state. Unlike FinishObservability it is safe
// to call repeatedly mid-run (between epochs), which is what lets a
// served session export metrics on demand; the two produce identical
// registries when taken at the same point. The caller must not run
// epochs concurrently (replica registries are read unlocked).
func (c *Cluster) MetricsSnapshot() *obs.Metrics {
	col := c.cfg.Collector
	if col == nil {
		return obs.NewMetrics()
	}
	m := col.MetricsSnapshot()
	for _, r := range c.replicas {
		m.Merge(r.col.Metrics)
	}
	s := c.Summary()
	if s.Epochs == 0 {
		return m
	}
	for i, ev := range s.PerReplica {
		avail := 1 - float64(ev)/float64(s.Epochs)
		m.SetGauge("replica."+strconv.Itoa(i)+".availability", avail)
	}
	m.Add("cluster.fresh_boots", uint64(s.FreshBoots))
	return m
}

// FinishObservability folds the per-replica registries into the master
// collector's (in replica order) and sets the cluster gauges —
// per-replica availability (the fraction of epochs the replica was not
// evicted) and the per-replica eviction counts' complement. Call it
// once, after the last epoch; without a configured collector it is a
// no-op.
func (c *Cluster) FinishObservability() {
	col := c.cfg.Collector
	if col == nil {
		return
	}
	for _, r := range c.replicas {
		col.Metrics.Merge(r.col.Metrics)
	}
	s := c.Summary()
	if s.Epochs == 0 {
		return
	}
	for i, ev := range s.PerReplica {
		avail := 1 - float64(ev)/float64(s.Epochs)
		col.Metrics.SetGauge("replica."+strconv.Itoa(i)+".availability", avail)
	}
	col.Metrics.Add("cluster.fresh_boots", uint64(s.FreshBoots))
}
