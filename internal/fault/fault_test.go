package fault

import (
	"testing"

	"ssos/internal/isa"
	"ssos/internal/machine"
	"ssos/internal/mem"
)

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	bus := mem.NewBus()
	if _, err := bus.AddROM("rom", 0xF0000, make([]byte, 0x10000)); err != nil {
		t.Fatal(err)
	}
	bus.Poke(0x1000, byte(isa.OpJmp)) // jmp 0 loop at reset vector
	return machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
}

func TestFlipRAMBitNeverTouchesROM(t *testing.T) {
	m := testMachine(t)
	inj := NewInjector(m, 1)
	romBefore := m.Bus.CopyOut(0xF0000, 0x10000)
	for i := 0; i < 5000; i++ {
		addr := inj.FlipRAMBit()
		if m.Bus.InROM(addr) {
			t.Fatalf("fault hit ROM at %#x", addr)
		}
	}
	romAfter := m.Bus.CopyOut(0xF0000, 0x10000)
	for i := range romBefore {
		if romBefore[i] != romAfter[i] {
			t.Fatalf("ROM byte %#x changed", i)
		}
	}
	if len(inj.Log) != 5000 {
		t.Fatalf("log length = %d", len(inj.Log))
	}
}

func TestFlipRAMBitActuallyFlips(t *testing.T) {
	m := testMachine(t)
	inj := NewInjector(m, 2)
	before := m.Bus.Snapshot()
	addr := inj.FlipRAMBit()
	if m.Bus.Peek(addr) == before[addr] {
		t.Fatal("no bit flipped")
	}
	// Exactly one bit differs.
	diff := m.Bus.Peek(addr) ^ before[addr]
	if diff&(diff-1) != 0 {
		t.Fatalf("more than one bit flipped: %#x", diff)
	}
}

func TestRegionFaults(t *testing.T) {
	m := testMachine(t)
	inj := NewInjector(m, 3)
	r := mem.Region{Name: "table", Start: 0x5000, Size: 0x100}
	if !inj.FlipRAMBitIn(r) {
		t.Fatal("FlipRAMBitIn failed")
	}
	if !inj.CorruptByteIn(r) {
		t.Fatal("CorruptByteIn failed")
	}
	inj.RandomizeRegion(r)
	// A region fully inside ROM cannot be faulted.
	romRegion := mem.Region{Name: "rom", Start: 0xF0000, Size: 0x100}
	if inj.FlipRAMBitIn(romRegion) {
		t.Fatal("flipped a ROM bit")
	}
	if inj.CorruptByteIn(romRegion) {
		t.Fatal("corrupted a ROM byte")
	}
}

func TestCPUFaults(t *testing.T) {
	m := testMachine(t)
	inj := NewInjector(m, 4)
	inj.CorruptIP()
	inj.CorruptSP()
	inj.CorruptFlags()
	inj.CorruptRegister()
	inj.CorruptSegment()
	inj.CorruptNMICounter()
	inj.CorruptIDTR()
	inj.SetHalted()
	inj.SetInNMI()
	if !m.CPU.Halted || !m.CPU.InNMI {
		t.Fatal("latch faults not applied")
	}
	if len(inj.Log) != 9 {
		t.Fatalf("log: %v", inj.Log)
	}
	for _, r := range inj.Log {
		if r.String() == "" {
			t.Fatal("empty record string")
		}
	}
}

func TestBlastIsDeterministic(t *testing.T) {
	run := func() machine.CPU {
		m := testMachine(t)
		inj := NewInjector(m, 42)
		inj.BlastCPU()
		inj.BlastRAM()
		return m.CPU
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different state:\n%v\n%v", &a, &b)
	}
}

func TestBlastRAMPreservesROM(t *testing.T) {
	m := testMachine(t)
	inj := NewInjector(m, 5)
	inj.BlastRAM()
	for a := uint32(0xF0000); a < 0xF0100; a++ {
		if m.Bus.Peek(a) != 0 {
			t.Fatalf("ROM byte %#x changed", a)
		}
	}
}

func TestRateInjectsAndDetaches(t *testing.T) {
	m := testMachine(t)
	inj := NewInjector(m, 6)
	detach := inj.Rate(1.0) // every step
	m.Run(10)
	if len(inj.Log) != 10 {
		t.Fatalf("rate log = %d", len(inj.Log))
	}
	detach()
	m.Run(10)
	if len(inj.Log) != 10 {
		t.Fatal("detach did not stop injection")
	}
}

func TestRateChainsExistingHook(t *testing.T) {
	m := testMachine(t)
	calls := 0
	m.AfterStep = func(*machine.Machine, machine.Event) { calls++ }
	inj := NewInjector(m, 7)
	detach := inj.Rate(0)
	m.Run(5)
	detach()
	if calls != 5 {
		t.Fatalf("existing hook calls = %d", calls)
	}
}

func TestRateInTargetsRegion(t *testing.T) {
	m := testMachine(t)
	inj := NewInjector(m, 8)
	r := mem.Region{Name: "target", Start: 0x3000, Size: 0x100}
	detach := inj.RateIn(r, 1.0)
	m.Run(20)
	detach()
	if len(inj.Log) != 20 {
		t.Fatalf("rate log = %d", len(inj.Log))
	}
	for _, rec := range inj.Log {
		if rec.Addr < r.Start || rec.Addr >= r.End() {
			t.Fatalf("fault outside region: %v", rec)
		}
	}
}
