// Package fault implements deterministic transient-fault injection —
// the paper's soft-error model: "an arbitrary change in memory bits"
// and arbitrary changes to processor soft state (registers, flags,
// program counter, device counters). ROM is never touched: the paper
// assumes "the rom part of the memory is non volatile and its content
// is guaranteed to remain unchanged".
//
// All randomness is drawn from a seeded source so that every
// experiment is reproducible.
package fault

import (
	"fmt"
	"math/rand"

	"ssos/internal/isa"
	"ssos/internal/machine"
	"ssos/internal/mem"
	"ssos/internal/obs"
)

// Kind classifies injected faults.
type Kind uint8

// Fault kinds.
const (
	KindRAMBit     Kind = iota // single bit flip in RAM
	KindRAMByte                // whole byte randomized in RAM
	KindRegister               // one general register randomized
	KindSegment                // one segment register randomized
	KindIP                     // instruction pointer randomized
	KindFlags                  // flags word randomized
	KindSP                     // stack pointer randomized
	KindNMICounter             // NMI counter randomized
	KindIDTR                   // IDT base register randomized
	KindHaltLatch              // halt latch set
	KindInNMILatch             // stock in-NMI latch set
	KindCPUBlast               // entire register file randomized
	KindRAMRegion              // a whole RAM region randomized
)

var kindNames = map[Kind]string{
	KindRAMBit:     "ram-bit",
	KindRAMByte:    "ram-byte",
	KindRegister:   "register",
	KindSegment:    "segment",
	KindIP:         "ip",
	KindFlags:      "flags",
	KindSP:         "sp",
	KindNMICounter: "nmi-counter",
	KindIDTR:       "idtr",
	KindHaltLatch:  "halt",
	KindInNMILatch: "in-nmi",
	KindCPUBlast:   "cpu-blast",
	KindRAMRegion:  "ram-region",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record describes one injected fault.
type Record struct {
	Step uint64 // machine step at injection time
	Kind Kind
	Addr uint32 // target address for memory faults
	Note string
}

func (r Record) String() string {
	if r.Note != "" {
		return fmt.Sprintf("step %d: %v (%s)", r.Step, r.Kind, r.Note)
	}
	return fmt.Sprintf("step %d: %v @%05x", r.Step, r.Kind, r.Addr)
}

// Injector injects transient faults into a machine.
type Injector struct {
	M   *machine.Machine
	rng *rand.Rand
	// Log records every injected fault, in order.
	Log []Record
}

// NewInjector returns a deterministic injector for m.
func NewInjector(m *machine.Machine, seed int64) *Injector {
	return &Injector{M: m, rng: rand.New(rand.NewSource(seed))}
}

func (in *Injector) record(k Kind, addr uint32, note string) {
	in.Log = append(in.Log, Record{Step: in.M.Stats.Steps, Kind: k, Addr: addr, Note: note})
	if in.M.Probe != nil {
		ev := obs.Ev(in.M.Stats.Steps, obs.TypeFaultInjected)
		// The 1-based Log ordinal is the fault id the episode
		// reconstructor keys on; the core/cluster instrumentation stamps
		// it onto every event derived during the recovery.
		ev.FaultID = uint64(len(in.Log))
		ev.Code = uint64(k)
		ev.Arg = uint64(addr)
		if note != "" {
			ev.Note = k.String() + " " + note
		} else {
			ev.Note = k.String()
		}
		in.M.Probe.Emit(ev)
	}
}

// FlipRAMBit flips one uniformly chosen bit among all RAM bytes and
// returns the affected address.
func (in *Injector) FlipRAMBit() uint32 {
	size := in.M.Bus.RAMSize()
	addr := in.M.Bus.RAMAddr(uint32(in.rng.Int63n(int64(size))))
	bit := byte(1) << uint(in.rng.Intn(8))
	in.M.Bus.PokeRAM(addr, in.M.Bus.Peek(addr)^bit)
	in.record(KindRAMBit, addr, "")
	return addr
}

// FlipRAMBitIn flips one bit inside the given region (ROM parts of the
// region are skipped; returns false if the region holds no RAM).
func (in *Injector) FlipRAMBitIn(r mem.Region) bool {
	for attempt := 0; attempt < 64; attempt++ {
		addr := r.Start + uint32(in.rng.Int63n(int64(r.Size)))
		bit := byte(1) << uint(in.rng.Intn(8))
		if in.M.Bus.PokeRAM(addr, in.M.Bus.Peek(addr)^bit) {
			in.record(KindRAMBit, addr, r.Name)
			return true
		}
	}
	return false
}

// CorruptByteIn randomizes one byte inside the region.
func (in *Injector) CorruptByteIn(r mem.Region) bool {
	for attempt := 0; attempt < 64; attempt++ {
		addr := r.Start + uint32(in.rng.Int63n(int64(r.Size)))
		if in.M.Bus.PokeRAM(addr, byte(in.rng.Intn(256))) {
			in.record(KindRAMByte, addr, r.Name)
			return true
		}
	}
	return false
}

// RandomizeRegion overwrites every RAM byte of the region with random
// values — a severe burst fault.
func (in *Injector) RandomizeRegion(r mem.Region) {
	for a := r.Start; a < r.End(); a++ {
		in.M.Bus.PokeRAM(a, byte(in.rng.Intn(256)))
	}
	in.record(KindRAMRegion, r.Start, r.Name)
}

// CorruptIP randomizes the instruction pointer.
func (in *Injector) CorruptIP() {
	in.M.CPU.IP = uint16(in.rng.Intn(1 << 16))
	in.record(KindIP, 0, fmt.Sprintf("ip=%04x", in.M.CPU.IP))
}

// CorruptSP randomizes the stack pointer.
func (in *Injector) CorruptSP() {
	in.M.CPU.R[isa.SP] = uint16(in.rng.Intn(1 << 16))
	in.record(KindSP, 0, "")
}

// CorruptFlags randomizes the flags word.
func (in *Injector) CorruptFlags() {
	in.M.CPU.Flags = isa.Flags(in.rng.Intn(1 << 16))
	in.record(KindFlags, 0, "")
}

// CorruptRegister randomizes one uniformly chosen general register.
func (in *Injector) CorruptRegister() {
	r := isa.Reg(in.rng.Intn(isa.NumRegs))
	in.M.CPU.R[r] = uint16(in.rng.Intn(1 << 16))
	in.record(KindRegister, 0, r.String())
}

// CorruptSegment randomizes one uniformly chosen segment register.
func (in *Injector) CorruptSegment() {
	s := isa.SReg(in.rng.Intn(isa.NumSRegs))
	in.M.CPU.S[s] = uint16(in.rng.Intn(1 << 16))
	in.record(KindSegment, 0, s.String())
}

// CorruptNMICounter randomizes the NMI countdown register.
func (in *Injector) CorruptNMICounter() {
	in.M.CPU.NMICounter = uint16(in.rng.Intn(1 << 16))
	in.record(KindNMICounter, 0, "")
}

// CorruptIDTR randomizes the IDT base register (no effect under
// Options.FixedIDTR — the hardware the paper calls for).
func (in *Injector) CorruptIDTR() {
	in.M.CPU.IDTR = uint32(in.rng.Intn(mem.AddrSpace))
	in.record(KindIDTR, in.M.CPU.IDTR, "")
}

// SetHalted latches the halt state (models a spurious hlt).
func (in *Injector) SetHalted() {
	in.M.CPU.Halted = true
	in.record(KindHaltLatch, 0, "")
}

// SetInNMI latches the stock in-NMI state — the paper's masked-forever
// hazard on hardware without the NMI counter.
func (in *Injector) SetInNMI() {
	in.M.CPU.InNMI = true
	in.record(KindInNMILatch, 0, "")
}

// BlastCPU randomizes the entire processor soft state: all general and
// segment registers, ip, flags, the NMI counter and both latches. This
// realizes the paper's "started in any possible state" for the CPU.
func (in *Injector) BlastCPU() {
	c := &in.M.CPU
	for i := range c.R {
		c.R[i] = uint16(in.rng.Intn(1 << 16))
	}
	for i := range c.S {
		c.S[i] = uint16(in.rng.Intn(1 << 16))
	}
	c.IP = uint16(in.rng.Intn(1 << 16))
	c.Flags = isa.Flags(in.rng.Intn(1 << 16))
	c.IDTR = uint32(in.rng.Intn(mem.AddrSpace))
	c.NMICounter = uint16(in.rng.Intn(1 << 16))
	c.InNMI = in.rng.Intn(2) == 0
	c.Halted = in.rng.Intn(2) == 0
	in.record(KindCPUBlast, 0, "")
}

// BlastRAM randomizes every RAM byte in the machine. Together with
// BlastCPU this realizes an arbitrary initial configuration.
func (in *Injector) BlastRAM() {
	for _, r := range in.M.Bus.RAMRegions() {
		for a := r.Start; a < r.End(); a++ {
			in.M.Bus.PokeRAM(a, byte(in.rng.Intn(256)))
		}
	}
	in.record(KindRAMRegion, 0, "all-ram")
}

// Random injects one uniformly chosen soft-state fault, mimicking an
// unbiased soft error.
func (in *Injector) Random() {
	switch in.rng.Intn(8) {
	case 0, 1, 2, 3: // memory faults dominate: RAM is most of the chip area
		in.FlipRAMBit()
	case 4:
		in.CorruptRegister()
	case 5:
		in.CorruptSegment()
	case 6:
		in.CorruptIP()
	case 7:
		in.CorruptFlags()
	}
}

// Rate attaches a Bernoulli fault process to the machine: after every
// step, with probability perStep, one Random fault is injected. It
// returns a detach function.
func (in *Injector) Rate(perStep float64) (detach func()) {
	return in.rate(perStep, in.Random)
}

// RateIn attaches a targeted Bernoulli fault process: after every step,
// with probability perStep, one byte inside the region is randomized.
// Use it to model the effective fault rate on a specific structure
// (e.g. the OS image) without simulating the entire chip area.
func (in *Injector) RateIn(r mem.Region, perStep float64) (detach func()) {
	return in.rate(perStep, func() { in.CorruptByteIn(r) })
}

// RateHalt attaches a Bernoulli process that latches the halt state:
// a *silent* fault that raises no exception and is recoverable only by
// an interrupt source such as the watchdog.
func (in *Injector) RateHalt(perStep float64) (detach func()) {
	return in.rate(perStep, in.SetHalted)
}

func (in *Injector) rate(perStep float64, strike func()) (detach func()) {
	prev := in.M.AfterStep
	in.M.AfterStep = func(m *machine.Machine, ev machine.Event) {
		if prev != nil {
			prev(m, ev)
		}
		if in.rng.Float64() < perStep {
			strike()
		}
	}
	return func() { in.M.AfterStep = prev }
}
