package guest

import (
	"fmt"

	"ssos/internal/asm"
	"ssos/internal/isa"
)

// BuildMonitorHandler assembles the approach-2 stabilizer (Section 4):
// on every NMI it
//
//  1. refreshes the stack registers (Figure 2 pattern: ax is saved
//     through the possibly-corrupt ss first; a faulting store there
//     raises an exception whose handler reinstalls everything),
//  2. reinstalls only the *executable* portion of the OS from ROM,
//  3. evaluates consistency predicates over the OS soft state and
//     repairs exactly what is broken, reporting each repair on
//     REPAIR_PORT,
//  4. validates that the interrupted cs:ip lies within the OS code
//     (masking ip to an instruction-slot boundary — the kernel is
//     assembled in 16-byte slots) and resumes there, falling back to
//     the OS's first instruction otherwise.
//
// Unlike approach 1 this preserves legal soft state across handler
// runs: the heartbeat counter keeps counting, so the system satisfies
// the strict (non-weak) legal-execution specification.
//
// kernel supplies the code-length bound for the resume check.
func BuildMonitorHandler(kernel *Kernel) (*Handler, error) {
	if !kernel.Padded {
		return nil, fmt.Errorf("monitor handler requires a slot-padded kernel (resume ip is masked to slot boundaries)")
	}
	src := prelude() + fmt.Sprintf(`
CODE_REGION     equ DATA_OFF
KERNEL_CODE_END equ %#x
SLOT_MASK       equ %#x
REPAIR_CANARY   equ %#x
REPAIR_TASKIDX  equ %#x
REPAIR_CHECKSUM equ %#x
REPAIR_RESUME   equ %#x
REPAIR_QUEUE    equ %#x
`, kernel.CodeLen(), uint16(^(uint16(isa.SlotSize-1))), RepairCanary, RepairTaskIdx, RepairChecksum, RepairResume, RepairQueue) + `
nmi_entry:
	; --- refresh stack registers (paper Figure 2 pattern) ---
	mov word [ss:STACK_TOP-2], ax
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, STACK_TOP
	mov word [ss:STACK_TOP-4], ds
	mov word [ss:STACK_TOP-6], bx
	mov word [ss:STACK_TOP-8], cx
	mov word [ss:STACK_TOP-10], si
	mov word [ss:STACK_TOP-12], di
	mov word [ss:STACK_TOP-14], es
	mov word [ss:STACK_TOP-16], dx

	; --- (1) reinstall the executable portion only ---
	mov ax, OS_ROM_SEG
	mov ds, ax
	mov si, 0x00
	mov ax, OS_SEG
	mov es, ax
	mov di, 0x00
	mov cx, CODE_REGION
	cld
	rep movsb

	; --- (2) consistency predicates over the OS soft state ---
	mov ax, OS_SEG
	mov ds, ax
	; P1: the canary word is intact.
	mov ax, [CANARY]
	cmp ax, CANARY_VALUE
	je p1_ok
	mov word [CANARY], CANARY_VALUE
	mov ax, REPAIR_CANARY
	out REPAIR_PORT, ax
p1_ok:
	; P2: the task index is a valid task number.
	mov ax, [TASK_IDX]
	cmp ax, NUM_TASKS
	jb p2_ok
	and ax, TASK_MASK
	mov [TASK_IDX], ax
	mov ax, REPAIR_TASKIDX
	out REPAIR_PORT, ax
p2_ok:
	; P3: checksum == sum(task_runs), allowing one in-flight update
	; (the kernel increments a run counter and then the checksum; an
	; NMI may land between the two stores).
	mov bx, TASK_RUNS
	mov cx, NUM_TASKS
	mov dx, 0
p3_loop:
	add dx, [bx]
	add bx, 2
	loop p3_loop
	mov ax, [CHECKSUM]
	mov bx, dx
	sub bx, ax
	cmp bx, 2
	jb p3_ok
	mov [CHECKSUM], dx
	mov ax, REPAIR_CHECKSUM
	out REPAIR_PORT, ax
p3_ok:
	; P5: the IPC queue indices address the ring.
	mov ax, [QHEAD]
	cmp ax, QUEUE_CAP
	jb p5a_ok
	and ax, Q_MASK
	mov [QHEAD], ax
	mov ax, REPAIR_QUEUE
	out REPAIR_PORT, ax
p5a_ok:
	mov ax, [QTAIL]
	cmp ax, QUEUE_CAP
	jb p5b_ok
	and ax, Q_MASK
	mov [QTAIL], ax
	mov ax, REPAIR_QUEUE
	out REPAIR_PORT, ax
p5b_ok:

	; --- (3) validate the resume address ---
	mov ax, [ss:STACK_TOP+2]       ; interrupted cs
	cmp ax, OS_SEG
	jne resume_bad
	mov ax, [ss:STACK_TOP]         ; interrupted ip
	; Slot-align the resume address, rounding UP: when the interrupt
	; landed mid-slot the slot's instruction has already executed and
	; only pad nops remain, so the next slot is the correct resume
	; point. Rounding down would re-execute the instruction: double
	; heartbeats, double increments, and a re-executed loop with
	; cx=0 underflows into 64 Ki spurious iterations.
	add ax, 15
	and ax, SLOT_MASK
	cmp ax, KERNEL_CODE_END
	jae resume_bad
	mov [ss:STACK_TOP], ax
	jmp restore
resume_bad:
	mov word [ss:STACK_TOP], 0x0
	mov word [ss:STACK_TOP+2], OS_SEG
	mov word [ss:STACK_TOP+4], 0x02
	mov ax, REPAIR_RESUME
	out REPAIR_PORT, ax
restore:
	; --- (4) restore registers and resume ---
	mov es, [ss:STACK_TOP-14]
	mov di, [ss:STACK_TOP-12]
	mov si, [ss:STACK_TOP-10]
	mov cx, [ss:STACK_TOP-8]
	mov dx, [ss:STACK_TOP-16]
	mov bx, [ss:STACK_TOP-6]
	mov ds, [ss:STACK_TOP-4]
	mov ax, [ss:STACK_TOP-2]
	iret

boot_entry:
` + figure1Body + `
exc_entry:
	jmp boot_entry
`
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("monitor handler: %w", err)
	}
	return &Handler{Prog: p}, nil
}
