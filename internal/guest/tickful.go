package guest

import (
	"fmt"

	"ssos/internal/asm"
	"ssos/internal/machine"
)

// tickfulSource is the interrupt-driven guest OS variant: instead of
// polling, it programs the interrupt descriptor table, enables
// interrupts and sleeps with hlt; a timer IRQ wakes it and the ISR
// emits the heartbeat. This exercises the machine's full maskable-
// interrupt path (IDT in RAM, if-flag gating, hlt wake-up) and creates
// a new *silent* fault class the experiments use: a corrupted IDT
// entry stops all wakeups without raising any exception — only the
// watchdog can recover it, and only because the reinstall-restart path
// re-runs the init code that programs the IDT.
//
// Self-stabilization discipline: ds is re-established and sti re-issued
// every loop iteration (a cleared IF heals in one pass), and the ISR
// re-establishes ds itself (it may run with the corrupted ds of the
// interrupted context).
const tickfulSource = `
TIMER_VEC_OFF equ 0x20     ; vector 8 * 4 bytes

start:
	mov ax, OS_SEG
	mov ds, ax
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, STACK_INIT
	mov word [CANARY], CANARY_VALUE
	; program the idt: vector 8 -> OS_SEG:timer_isr
	mov ax, 0x0000
	mov es, ax
	mov word [es:TIMER_VEC_OFF], timer_isr
	mov word [es:TIMER_VEC_OFF+2], OS_SEG
main_loop:
	mov ax, OS_SEG
	mov ds, ax
	sti
	hlt
	jmp main_loop

timer_isr:
	mov ax, OS_SEG
	mov ds, ax
	mov ax, [COUNTER]
	inc ax
	mov [COUNTER], ax
	out HEARTBEAT_PORT, ax
	iret
code_end:
`

// TimerVecAddr is the linear address of the timer IDT entry the
// tickful kernel programs (vector machine.VecTimer at IDT base 0).
const TimerVecAddr = machine.VecTimer * 4

// BuildTickfulKernel assembles the interrupt-driven guest OS.
func BuildTickfulKernel() (*Kernel, error) {
	p, err := asm.Assemble(prelude() + tickfulSource)
	if err != nil {
		return nil, fmt.Errorf("tickful kernel: %w", err)
	}
	codeEnd, ok := p.Symbol("code_end")
	if !ok || codeEnd > DataOff {
		return nil, fmt.Errorf("tickful kernel: code length %#x exceeds data offset %#x", codeEnd, DataOff)
	}
	return &Kernel{Prog: p}, nil
}
