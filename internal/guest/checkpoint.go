package guest

import (
	"fmt"

	"ssos/internal/asm"
)

// BuildCheckpointHandler assembles the rollback-recovery comparator:
// on every watchdog NMI (and every exception) it commands the
// checkpoint device to restore the last snapshot of the OS region and
// restarts execution at the OS's first instruction. Cold boot installs
// the pristine image from ROM (Figure 1) so the first snapshot is
// clean.
//
// This models the related-work recovery style (checkpoint/restart) on
// the most favourable terms — instantaneous, incorruptible snapshots —
// and still fails the self-stabilization bar: state corrupted before a
// snapshot is restored as "good" forever after (experiment E9).
func BuildCheckpointHandler() (*Handler, error) {
	src := prelude() + fmt.Sprintf(`
CHECKPOINT_PORT equ %#x
CMD_RESTORE     equ %d
`, PortCheckpoint, 1) + `
nmi_entry:
	; roll the OS region back to the last snapshot
	mov ax, CMD_RESTORE
	out CHECKPOINT_PORT, ax
	; restart the OS from its first instruction
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, STACK_INIT
	push word 0x02
	push word OS_SEG
	push word 0x0
	iret

boot_entry:
` + figure1Body + `
exc_entry:
	jmp nmi_entry
`
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("checkpoint handler: %w", err)
	}
	return &Handler{Prog: p}, nil
}
