package guest

import (
	"strings"
	"testing"

	"ssos/internal/imglint"
	"ssos/internal/isa"
)

// TestLintImagesClean is the static half of the paper's Section 5
// argument: every ROM image the builders produce satisfies its declared
// invariants.
func TestLintImagesClean(t *testing.T) {
	specs, err := LintImages()
	if err != nil {
		t.Fatalf("LintImages: %v", err)
	}
	if len(specs) < 15 {
		t.Fatalf("LintImages returned %d specs, want at least 15 (all builders)", len(specs))
	}
	for _, spec := range specs {
		for _, f := range imglint.Check(spec) {
			t.Errorf("%s", f)
		}
	}
}

// TestLintRejectsCorruptPadding corrupts one padding byte of the
// primitive image and requires imglint to reject it, naming the
// offending offset — the acceptance criterion that the checker actually
// reads the fill, not just the code.
func TestLintRejectsCorruptPadding(t *testing.T) {
	prim, err := BuildPrimitive()
	if err != nil {
		t.Fatalf("BuildPrimitive: %v", err)
	}
	spec := primitiveSpec(prim)
	if rest := imglint.Check(spec); len(rest) != 0 {
		t.Fatalf("pristine primitive image has findings: %v", rest)
	}

	// Corrupt one byte in the middle of the fill. 0xFF is no opcode.
	corrupt := int(prim.CodeEnd) + (len(prim.Image)-int(prim.CodeEnd))/2
	spec.Bytes = append([]byte(nil), prim.Image...)
	spec.Bytes[corrupt] = 0xFF

	findings := imglint.Check(spec)
	if len(findings) == 0 {
		t.Fatalf("corrupting padding byte %#x produced no findings", corrupt)
	}
	found := false
	for _, f := range findings {
		if f.Check == "fill-coverage" && f.Offset == corrupt {
			found = true
			if !strings.Contains(f.String(), "fill-coverage") {
				t.Errorf("finding does not render its check name: %s", f)
			}
		}
	}
	if !found {
		t.Errorf("no fill-coverage finding names the corrupted offset %#x; got %v", corrupt, findings)
	}
}

// TestLintRejectsRetargetedFill redirects one fill jmp at a wrong
// target: the walk must flag it (a fill jmp that does not return to
// start breaks the Theorem 5.1 convergence argument).
func TestLintRejectsRetargetedFill(t *testing.T) {
	prim, err := BuildPrimitive()
	if err != nil {
		t.Fatalf("BuildPrimitive: %v", err)
	}
	spec := primitiveSpec(prim)
	spec.Bytes = append([]byte(nil), prim.Image...)
	// The final fill pattern is jmp 0 at len-3: point it at 0x0100.
	spec.Bytes[len(spec.Bytes)-2] = 0x00
	spec.Bytes[len(spec.Bytes)-1] = 0x01

	var hit bool
	for _, f := range imglint.Check(spec) {
		if f.Check == "fill-coverage" {
			hit = true
		}
	}
	if !hit {
		t.Fatal("retargeted fill jmp produced no fill-coverage finding")
	}
}

// TestLintRejectsBadLimitsTable flips a processLimits word: the
// scheduler's Figure 5 cs-confinement table must match the memory map
// word-for-word.
func TestLintRejectsBadLimitsTable(t *testing.T) {
	s, err := BuildScheduler(false)
	if err != nil {
		t.Fatalf("BuildScheduler: %v", err)
	}
	spec := schedulerSpec("scheduler", s)
	spec.Bytes = append([]byte(nil), s.Prog.Code...)
	off := int(s.Prog.MustSymbol("processLimits"))
	spec.Bytes[off] ^= 0xFF

	var hit bool
	for _, f := range imglint.Check(spec) {
		if f.Check == "table-content" && f.Offset == off {
			hit = true
		}
	}
	if !hit {
		t.Fatal("corrupted processLimits word produced no table-content finding")
	}
}

// TestKernelImageGapIsFill pins the satellite fix: the unused region
// between kernel code and the data section is jmp-start fill, not
// zeros that would let a wandering pc walk into the data section.
func TestKernelImageGapIsFill(t *testing.T) {
	k, err := BuildKernel(false)
	if err != nil {
		t.Fatalf("BuildKernel: %v", err)
	}
	img := k.Image()
	gap := img[k.CodeLen():DataOff]
	var jmps int
	for _, b := range gap {
		if b == byte(isa.OpJmp) {
			jmps++
		}
	}
	if jmps == 0 {
		t.Fatal("kernel image gap contains no jmp-start fill — fix not applied")
	}
	// And the data section stays bit-exact: the fill must not have
	// clobbered the initial soft state.
	word := func(off int) uint16 { return uint16(img[off]) | uint16(img[off+1])<<8 }
	if got := word(VarCanary); got != CanaryValue {
		t.Errorf("canary word in pristine image is %#x, want %#x", got, CanaryValue)
	}
	if got := word(VarCounter); got != InitialCounter {
		t.Errorf("counter word in pristine image is %#x, want %#x", got, InitialCounter)
	}
}
