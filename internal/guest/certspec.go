package guest

import (
	"fmt"

	"ssos/internal/imglint"
	"ssos/internal/model"
)

// Convergence-certificate specs: one imglint.RingCert per mailbox ring
// configuration, binding the shipped node images to the declared
// protocol model. The declared side of each certificate — legal set,
// move table and variant function — comes from internal/model's
// verified Protocol family; the checked side is extracted from the ROM
// bytes by imglint.CheckRingCert. The variant is the protocol system's
// exact height map (model.System.Heights), i.e. Kessels-style declared
// ranking: if the bytes implement the declared protocol, every
// extracted step out of an illegal configuration strictly descends it;
// if they deviate, either the move cross-check or the ranking pass
// fails. The declared slack is N (the mid-entry grace steps the
// checker adds on top of the ranked bound).

// RingCertSpec pairs a certificate with the protocol it declares.
type RingCertSpec struct {
	Cert     imglint.RingCert
	Protocol model.Protocol
	// Single marks the single-machine catalog ring (nodes in scheduler
	// slots 0..n-1) as opposed to a one-node-per-replica fleet.
	Single bool
}

// ringProtocol returns the model twin of a guest ring variant.
func ringProtocol(v RingVariant) model.Protocol {
	switch v {
	case VariantDijkstra3:
		return model.Dijkstra3Protocol()
	case VariantGhosh4:
		return model.Ghosh4Protocol()
	default:
		return model.KStateProtocol(MailboxK)
	}
}

// toRingState packs a canonical configuration for the model's
// fixed-size state type.
func toRingState(x []uint16) model.RingState {
	var s model.RingState
	for i, v := range x {
		s[i] = uint8(v)
	}
	return s
}

// domainWords widens a model domain to the checker's word type.
func domainWords(d []uint8) []uint16 {
	out := make([]uint16, len(d))
	for i, v := range d {
		out[i] = uint16(v)
	}
	return out
}

// certCommon fills the protocol-derived fields of a certificate for an
// n-node ring of variant v: domains, declared moves, legal set, and —
// when the product space fits the enumeration cap — the exact height
// variant.
func certCommon(c *imglint.RingCert, p model.Protocol, n int) error {
	c.N = n
	c.Slack = n
	c.Slots = make([]uint32, n)
	c.Domains = make([][]uint16, n)
	states := 1
	for i := 0; i < n; i++ {
		c.Slots[i] = MailboxAddr(i)
		c.Domains[i] = domainWords(p.Domain(i, n))
		states *= len(c.Domains[i])
	}
	c.Moves = func(node int, self, left, right uint16) (bool, uint16) {
		g := p.Guards(node, n, uint8(self), uint8(left), uint8(right))
		if len(g) == 0 {
			return false, 0
		}
		return true, uint16(g[0])
	}
	c.Legal = func(x []uint16) bool {
		return len(p.Privileges(toRingState(x), n)) == 1
	}
	if states > imglint.DefaultMaxStates {
		return nil // Mode "local": obligations only, no height map
	}
	heights, witness, ok := p.System(n).Heights()
	if !ok {
		return fmt.Errorf("protocol %s n=%d has no finite height map (witness %v)", p.Name, n, witness)
	}
	c.Variant = func(x []uint16) int { return heights[toRingState(x)] }
	return nil
}

// certNode builds the RingNode for ring node `node` of n running in
// scheduler slot proc, from an assembled process set.
func certNode(p model.Protocol, set *ProcSet, node, n, proc int) imglint.RingNode {
	left, right := -1, -1
	if p.UsesLeft(node, n) {
		left = (node + n - 1) % n
	}
	if p.UsesRight(node, n) {
		right = (node + 1) % n
	}
	dataLo := uint32(ProcDataSeg(proc)) << 4
	return imglint.RingNode{
		Image: imglint.Image{
			Name:    fmt.Sprintf("node%d", node),
			Bytes:   set.Images[proc],
			Seg:     ProcCodeSeg(proc),
			CodeEnd: len(set.Progs[proc].Code),
		},
		Slot:   node,
		Left:   left,
		Right:  right,
		DataLo: dataLo,
		DataHi: dataLo + ProcRegionSize,
	}
}

// ConvergenceCerts builds the full certificate catalog: for each ring
// variant, the single-machine ring (MailboxNodes nodes in scheduler
// slots 0..MailboxNodes-1) and every fleet size n=2..MaxMailboxNodes
// (each node's image from its one-node-per-replica process set).
func ConvergenceCerts() ([]RingCertSpec, error) {
	var specs []RingCertSpec
	for _, v := range RingVariants() {
		p := ringProtocol(v)

		single := RingCertSpec{Protocol: p, Single: true}
		single.Cert.Name = fmt.Sprintf("mbox-%s", v)
		n := MailboxNodes
		set, err := BuildMailboxProcesses(v)
		if err != nil {
			return nil, fmt.Errorf("cert %s: %w", single.Cert.Name, err)
		}
		if err := certCommon(&single.Cert, p, n); err != nil {
			return nil, fmt.Errorf("cert %s: %w", single.Cert.Name, err)
		}
		single.Cert.Nodes = make([]imglint.RingNode, n)
		for i := 0; i < n; i++ {
			single.Cert.Nodes[i] = certNode(p, set, i, n, i)
			single.Cert.Nodes[i].Image.Name = fmt.Sprintf("%s-%d", single.Cert.Name, i)
		}
		specs = append(specs, single)

		for n := 2; n <= MaxMailboxNodes; n++ {
			fleet := RingCertSpec{Protocol: p}
			fleet.Cert.Name = fmt.Sprintf("mbox-%s-n%d", v, n)
			if err := certCommon(&fleet.Cert, p, n); err != nil {
				return nil, fmt.Errorf("cert %s: %w", fleet.Cert.Name, err)
			}
			fleet.Cert.Nodes = make([]imglint.RingNode, n)
			for j := 0; j < n; j++ {
				nset, err := BuildNodeProcesses(v, j, n)
				if err != nil {
					return nil, fmt.Errorf("cert %s node %d: %w", fleet.Cert.Name, j, err)
				}
				fleet.Cert.Nodes[j] = certNode(p, nset, j, n, 0)
				fleet.Cert.Nodes[j].Image.Name = fmt.Sprintf("%s-node%d", fleet.Cert.Name, j)
			}
			specs = append(specs, fleet)
		}
	}
	return specs, nil
}
