package guest

import (
	"fmt"

	"ssos/internal/asm"
)

// Primitive scheduler (Section 5.1). The N processes are loop-free
// straight-line code concatenated in ROM; control simply flows from
// the last instruction of process i into the first instruction of
// process i+1, and the last process jumps back to the first. Every
// unused ROM byte belongs to a self-synchronizing `jmp start` fill, so
// a program counter pointing anywhere in the ROM reaches the first
// instruction within a few steps (Theorem 5.1). The machine runs with
// no interrupts; exceptions (e.g. from a corrupt PC landing mid-
// instruction and decoding garbage) vector to the ROM start.
//
// Restrictions transcribed from the paper: no loops, no stack
// operations, no halt, only forward branches to fixed addresses, data
// at fixed addresses in distinct RAM areas per process.

// PrimitiveNumProcs is the number of primitive-scheduler processes.
const PrimitiveNumProcs = 4

// primitiveSource concatenates the straight-line processes. Each
// process re-establishes its ds (fixed, hardwired in code) and bumps a
// counter in its own data area; process 1 maintains shadow copies and
// process 2 a checksum, giving the fairness experiment three distinct
// observable output streams.
func primitiveSource() string {
	return fmt.Sprintf(`
P0_DATA equ %#x
P1_DATA equ %#x
P2_DATA equ %#x
P3_DATA equ %#x
P0_PORT equ %#x
P1_PORT equ %#x
P2_PORT equ %#x
P3_PORT equ %#x

start:
proc0:
	mov ax, P0_DATA
	mov ds, ax
	mov ax, [0]
	inc ax
	mov [0], ax
	out P0_PORT, ax

proc1:
	mov ax, P1_DATA
	mov ds, ax
	mov ax, [0]
	inc ax
	mov [0], ax
	out P1_PORT, ax
	mov ax, [2]
	add ax, 5
	mov [2], ax
	mov ax, [2]
	mov [4], ax

proc2:
	mov ax, P2_DATA
	mov ds, ax
	mov ax, [0]
	inc ax
	mov [0], ax
	out P2_PORT, ax
	mov ax, [2]
	add ax, [4]
	mov [6], ax

proc3:
	; The alarm process uses the branch forms Section 5.1 permits:
	; forward jumps to fixed addresses within its own code. It clamps
	; a sensor accumulator and raises a latch when it trips.
	mov ax, P3_DATA
	mov ds, ax
	mov ax, [0]
	inc ax
	mov [0], ax
	out P3_PORT, ax
	mov ax, [2]
	add ax, 3
	cmp ax, 0x1000
	jbe below_limit
	mov ax, 0x0            ; clamp the accumulator
	mov word [4], 0x1      ; latch the alarm
below_limit:
	mov [2], ax
	cmp ax, 0x800
	jb no_warn
	mov word [6], 0x1      ; warning level
no_warn:
	jmp start
proc_end:
`,
		ProcDataSeg(0), ProcDataSeg(1), ProcDataSeg(2), ProcDataSeg(3),
		PortProc0, PortProc0+1, PortProc0+2, PortProc0+3)
}

// Primitive is the assembled primitive-scheduler ROM.
type Primitive struct {
	Prog *asm.Program
	// Image is the ROM image: the concatenated processes followed by
	// the jmp-start fill, PrimitiveROMSize bytes.
	Image []byte
	// ProcStarts[i] is the offset of process i's first instruction.
	ProcStarts [PrimitiveNumProcs]uint16
	// CodeEnd is the offset one past the last process instruction.
	CodeEnd uint16
}

// PrimitiveROMSize is the primitive scheduler ROM image size.
const PrimitiveROMSize = 0x400

// BuildPrimitive assembles the primitive scheduler ROM.
func BuildPrimitive() (*Primitive, error) {
	p, err := asm.Assemble(primitiveSource())
	if err != nil {
		return nil, fmt.Errorf("primitive scheduler: %w", err)
	}
	img, err := FillRegion(p.Code, PrimitiveROMSize)
	if err != nil {
		return nil, fmt.Errorf("primitive scheduler: %w", err)
	}
	pr := &Primitive{Prog: p, Image: img, CodeEnd: p.MustSymbol("proc_end")}
	for i := 0; i < PrimitiveNumProcs; i++ {
		pr.ProcStarts[i] = p.MustSymbol(fmt.Sprintf("proc%d", i))
	}
	return pr, nil
}
