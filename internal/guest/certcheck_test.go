package guest_test

import (
	"testing"

	"ssos/internal/guest"
	"ssos/internal/imglint"
)

// TestCertBoundsConsistentWithModel cross-validates the static
// convergence certificates against the explicit-state model checker:
// for every certified configuration carrying a ranking proof, the
// static steps-to-legal bound must dominate the model's exact worst
// case (soundness — the certificate never promises faster convergence
// than the protocol delivers) and stay within the declared slack above
// it (precision — the prover is not free to inflate the bound). On
// failure both bounds and the model's worst-case witness are printed.
func TestCertBoundsConsistentWithModel(t *testing.T) {
	specs, err := guest.ConvergenceCerts()
	if err != nil {
		t.Fatalf("ConvergenceCerts: %v", err)
	}
	ranked := 0
	for _, spec := range specs {
		r := imglint.CheckRingCert(spec.Cert)
		if !r.Proved() {
			t.Errorf("%s: certificate does not prove: %v", r.Name, r.Findings)
			continue
		}
		if r.Mode != "ranking" {
			continue // state space over the cap: local obligations only
		}
		ranked++
		sys := spec.Protocol.System(spec.Cert.N)
		exact, witness, ok := sys.CheckConvergence(len(sys.States))
		if !ok {
			t.Errorf("%s: model twin does not converge (witness %v)", r.Name, witness)
			continue
		}
		if r.Bound < exact {
			t.Errorf("%s: static bound %d BELOW model exact worst case %d (witness %v) — the certificate is unsound",
				r.Name, r.Bound, exact, witness)
		}
		if r.Bound > exact+spec.Cert.Slack {
			t.Errorf("%s: static bound %d exceeds exact worst case %d + declared slack %d",
				r.Name, r.Bound, exact, spec.Cert.Slack)
		}
	}
	if ranked < 12 {
		t.Errorf("only %d ranking-mode certificates cross-validated, want >= 12", ranked)
	}
}

// TestCertRankMatchesExactWorstCase pins the ranked bounds for the
// three variants at the fleet sizes the model checker handles: with
// the exact height map as declared variant, the certificate's rank
// bound IS the exact worst case.
func TestCertRankMatchesExactWorstCase(t *testing.T) {
	want := map[string]int{
		"mbox-dijkstra3-n3": 1,
		"mbox-dijkstra3-n4": 10,
		"mbox-dijkstra3-n5": 22,
		"mbox-dijkstra3-n6": 39,
		"mbox-ghosh4-n3":    0,
		"mbox-ghosh4-n4":    3,
		"mbox-ghosh4-n5":    8,
		"mbox-ghosh4-n6":    15,
	}
	specs, err := guest.ConvergenceCerts()
	if err != nil {
		t.Fatalf("ConvergenceCerts: %v", err)
	}
	seen := 0
	for _, spec := range specs {
		exp, ok := want[spec.Cert.Name]
		if !ok {
			continue
		}
		seen++
		r := imglint.CheckRingCert(spec.Cert)
		if !r.Proved() {
			t.Errorf("%s: not proved: %v", r.Name, r.Findings)
			continue
		}
		if r.RankBound != exp {
			t.Errorf("%s: rank bound %d, want exact worst case %d", r.Name, r.RankBound, exp)
		}
		if r.Bound != exp+r.N {
			t.Errorf("%s: bound %d, want rank %d + mid-entry grace %d", r.Name, r.Bound, exp, r.N)
		}
	}
	if seen != len(want) {
		t.Errorf("pinned %d certificates but found %d in the catalog", len(want), seen)
	}
}
