// Package guest holds everything that runs *inside* the simulated
// machine: the tiny guest operating system (the paper's protected
// subject), transcriptions of the paper's Figure 1 watchdog/reinstall
// procedure and Figures 2-5 self-stabilizing scheduler, the approach-2
// monitoring handler, scheduler processes, and the builders that
// assemble them into ROM images.
//
// All guest code is written in the repository's NASM-flavoured assembly
// and assembled by internal/asm at system-construction time. The
// addresses below define the system memory map shared by every guest
// component.
package guest

// Memory map (segment values; linear address = segment << 4).
const (
	// OSSeg is where the guest OS runs (code + data).
	OSSeg = 0x2000
	// OSROMSeg holds the pristine OS image in ROM (the paper's
	// "cd-rom image").
	OSROMSeg = 0xE000
	// HandlerROMSeg holds the stabilizer ROM: NMI handler, reset/boot
	// code, exception handlers. The hardwired NMI vector points at its
	// offset 0.
	HandlerROMSeg = 0xF000
	// StackSeg holds the guest stack.
	StackSeg = 0x3000
	// StackTop is the stack-frame anchor within StackSeg: after an NMI
	// interrupts the steady-state guest, ss:sp = StackSeg:StackTop and
	// the saved ip/cs/flags words sit at StackTop+0/+2/+4 (paper
	// Figures 2 and 3).
	StackTop = 0x0800
	// StackInit is the guest's steady-state sp: StackTop plus the three
	// words an interrupt pushes.
	StackInit = StackTop + 6

	// SchedSeg holds the self-stabilizing scheduler's RAM state:
	// processIndex at offset 0, the process table at offset 2.
	SchedSeg = 0x4000

	// ProcCodeSeg0 is the code segment of scheduled process 0;
	// process i runs at ProcCodeSeg0 + i*ProcSegStride. Each process
	// owns ProcRegionSize bytes of code space.
	ProcCodeSeg0  = 0x5000
	ProcSegStride = 0x0100 // 4 KiB per process region
	// ProcDataSeg0 is the data segment of process 0 (same stride).
	ProcDataSeg0 = 0x6000
	// ProcROMSeg0 is the ROM segment holding the pristine code image
	// of process 0 (same stride); the refresher process copies these
	// images over the RAM code regions, and the refresher itself runs
	// directly from its ROM image (the paper: "The code of the copying
	// process itself should be in rom").
	ProcROMSeg0 = 0xD000
	// ProcRegionSize is the code/data region size per process in bytes.
	ProcRegionSize = 0x1000
	// NumProcs is the number of scheduled processes (a power of two, so
	// that any bit pattern masked with NumProcs-1 is a valid index —
	// the paper's lg(N)-bit index argument).
	NumProcs = 4
)

// I/O ports.
const (
	// PortHeartbeat receives the guest OS heartbeat counter.
	PortHeartbeat = 0x10
	// PortRepair receives one word per repair action the approach-2
	// monitor performs (the value identifies the repaired predicate).
	PortRepair = 0x11
	// PortTrace is a general-purpose guest debug port.
	PortTrace = 0x12
	// PortCheckpoint commands the checkpoint device (rollback-recovery
	// comparator).
	PortCheckpoint = 0x13
	// PortProc0 is the heartbeat port of scheduled process 0; process i
	// uses PortProc0 + i.
	PortProc0 = 0x20
)

// Repair codes written to PortRepair by the approach-2 monitor.
const (
	RepairCanary   = 0xE001 // canary word was wrong
	RepairTaskIdx  = 0xE002 // task index out of range
	RepairChecksum = 0xE003 // task-run checksum mismatch
	RepairResume   = 0xE004 // return cs:ip outside OS code, restarted
	RepairQueue    = 0xE005 // IPC queue index out of range
)

// Guest OS data layout (offsets within OSSeg). The data block starts at
// DataOff; code must end below it. These are compile-time constants so
// that the ROM-resident monitor can check the same addresses the kernel
// uses.
const (
	// DataOff is the start of the guest OS data section.
	DataOff = 0x0E00
	// VarCounter is the heartbeat counter.
	VarCounter = DataOff + 0
	// VarTaskIdx is the round-robin task index (invariant: < NumTasks).
	VarTaskIdx = DataOff + 2
	// VarCanary must always hold CanaryValue (consistency predicate).
	VarCanary = DataOff + 4
	// VarChecksum holds the sum of the task-run counters (invariant:
	// checksum == task_runs[0]+...+task_runs[3] mod 2^16).
	VarChecksum = DataOff + 6
	// VarTaskRuns is the base of NumTasks per-task run counters.
	VarTaskRuns = DataOff + 8
	// VarScratch is task scratch space.
	VarScratch = DataOff + 16
	// VarQHead and VarQTail are the IPC ring-queue indices (invariant:
	// both < QueueCap); VarQBuf is the queue storage (QueueCap words).
	// Task 0 produces telemetry words into the queue; task 2 consumes
	// them — the inter-task communication path the approach-2 monitor
	// guards with predicate P5.
	VarQHead = DataOff + 0x20
	VarQTail = DataOff + 0x22
	VarQBuf  = DataOff + 0x24
	// QueueCap is the IPC queue capacity in words (a power of two).
	QueueCap = 8
	// DataLen is the size of the data section.
	DataLen = 0x40
	// ImageSize is the full OS image size (code region + data).
	ImageSize = DataOff + DataLen
	// NumTasks is the number of kernel tasks (power of two).
	NumTasks = 4
	// CanaryValue is the expected canary content.
	CanaryValue = 0xC0DE
	// InitialCounter is the heartbeat counter in the pristine ROM
	// image; the first beat after a cold start is InitialCounter+1.
	InitialCounter = 0
	// HeartbeatStart is the first heartbeat value after a restart.
	HeartbeatStart = InitialCounter + 1
)
