package guest

import (
	"fmt"

	"ssos/internal/asm"
	"ssos/internal/isa"
)

// Scheduled processes (Section 5.2). Each process is an independent
// self-stabilizing do-forever loop, assembled in 16-byte instruction
// slots (%pad on) so the scheduler's ip masking always resumes at an
// instruction start:
//
//   - process 0: short telemetry counter (ten-ish machine lines),
//   - process 1: medium straight-line worker,
//   - process 2: long bounded-loop worker ("a process with a thousand
//     sequential machine code lines", via its loop),
//   - process 3: the refresher — runs from ROM and repeatedly reloads
//     the code of processes 0-2 from their ROM images (the paper's
//     Section 5.2 closing construction).
//
// Every process begins each iteration by re-establishing its own ds,
// the discipline the paper demands ("the data of each process resides
// in a distinct separate ram area") made self-stabilizing: a corrupted
// ds heals at the top of the next iteration.

// procWorkerSource builds the source of worker process i (0..2).
func procWorkerSource(i int) string {
	work := ""
	switch i {
	case 1:
		work = `
	mov ax, [4]
	add ax, 3
	mov [4], ax
	mov ax, [6]
	add ax, [4]
	mov [6], ax
	mov ax, [8]
	inc ax
	mov [8], ax
`
	case 2:
		work = `
	mov cx, 40
work_loop:
	mov ax, [4]
	inc ax
	mov [4], ax
	loop work_loop
`
	}
	return fmt.Sprintf(`
MY_DATA equ %#x
MY_PORT equ %#x
%%pad on
start:
	mov ax, MY_DATA
	mov ds, ax
	mov ax, [0]
	inc ax
	mov [0], ax
	out MY_PORT, ax
%s	jmp start
`, ProcDataSeg(i), PortProc0+i, work)
}

// refresherSource is process 3: it copies one worker's pristine code
// image from ROM to that worker's RAM region per pass, round-robin,
// then emits its own heartbeat. The rep movsb spans many scheduler
// quanta; the scheduler's full save/restore of cx/si/di/ds/es is what
// makes that work.
func refresherSource() string {
	blocks := ""
	for i := 0; i < RefresherIndex; i++ {
		blocks += fmt.Sprintf(`
refresh_%d:
	mov ax, %#x
	mov ds, ax
	mov si, 0x00
	mov ax, %#x
	mov es, ax
	mov di, 0x00
	mov cx, %#x
	cld
	rep movsb
	jmp advance
`, i, ProcROMSeg(i), ProcCodeSeg(i), ProcRegionSize)
	}
	dispatch := ""
	for i := 0; i < RefresherIndex; i++ {
		dispatch += fmt.Sprintf("\tcmp ax, %d\n\tje refresh_%d\n", i, i)
	}
	return fmt.Sprintf(`
MY_DATA equ %#x
MY_PORT equ %#x
%%pad on
start:
	mov ax, MY_DATA
	mov ds, ax
	mov ax, [2]
	and ax, %d
%s	jmp advance
%s
advance:
	mov ax, MY_DATA
	mov ds, ax
	mov ax, [2]
	inc ax
	and ax, %d
	mov [2], ax
	mov ax, [0]
	inc ax
	mov [0], ax
	out MY_PORT, ax
	jmp start
`, ProcDataSeg(RefresherIndex), PortProc0+RefresherIndex,
		NumProcs-1, dispatch, blocks, NumProcs-1)
}

// ProcSet holds the assembled process region images.
type ProcSet struct {
	// Images[i] is the ProcRegionSize-byte code region of process i
	// (instruction slots followed by the self-synchronizing jmp-0
	// fill).
	Images [NumProcs][]byte
	// Progs[i] is the underlying assembled program.
	Progs [NumProcs]*asm.Program
}

// BuildProcesses assembles all scheduled processes and renders their
// region images.
func BuildProcesses() (*ProcSet, error) {
	set := &ProcSet{}
	for i := 0; i < NumProcs; i++ {
		var src string
		if i == RefresherIndex {
			src = refresherSource()
		} else {
			src = procWorkerSource(i)
		}
		p, err := asm.Assemble(src)
		if err != nil {
			return nil, fmt.Errorf("process %d: %w", i, err)
		}
		img, err := FillRegion(p.Code, ProcRegionSize)
		if err != nil {
			return nil, fmt.Errorf("process %d: %w", i, err)
		}
		set.Progs[i] = p
		set.Images[i] = img
	}
	return set, nil
}

// FillRegion places code at the start of a size-byte region and fills
// the tail with a self-synchronizing restart pattern: repeated
// `jmp 0` instructions laid out so the region's final bytes complete an
// instruction. Because the jmp opcode's operand bytes are zero — which
// is the nop opcode — execution entering the fill at ANY byte offset
// reaches a complete `jmp 0` within two bytes and returns to the
// region's first instruction. This realizes the paper's Section 5.1
// "add a jmp command to the first line of the rom in every unused rom
// location" with byte-granularity robustness.
//
// The only offsets that escape the region are the final jmp's two
// operand bytes (nops that slide past the end). The scheduler never
// produces them (it masks ip to slot boundaries); raw PC corruption
// that lands there walks into the adjacent region or raises an
// exception, both of which the surrounding system recovers from.
func FillRegion(code []byte, size int) ([]byte, error) {
	if len(code) > size {
		return nil, fmt.Errorf("code length %d exceeds region size %d", len(code), size)
	}
	region := make([]byte, size)
	copy(region, code)
	// Lay jmp-0 patterns backward from the end; the (size-len(code))%3
	// leftover bytes right after the code remain zero (nop).
	const patternSize = 3
	for pos := size - patternSize; pos >= len(code); pos -= patternSize {
		region[pos] = byte(isa.OpJmp)
		region[pos+1] = 0
		region[pos+2] = 0
	}
	return region, nil
}
