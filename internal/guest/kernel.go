package guest

import (
	"fmt"

	"ssos/internal/asm"
)

// prelude renders the shared equ constants every guest source uses.
func prelude() string {
	return fmt.Sprintf(`
OS_SEG          equ %#x
OS_ROM_SEG      equ %#x
HANDLER_ROM_SEG equ %#x
STACK_SEG       equ %#x
STACK_TOP       equ %#x
STACK_INIT      equ %#x
SCHED_SEG       equ %#x
HEARTBEAT_PORT  equ %#x
REPAIR_PORT     equ %#x
TRACE_PORT      equ %#x
COUNTER         equ %#x
TASK_IDX        equ %#x
CANARY          equ %#x
CHECKSUM        equ %#x
TASK_RUNS       equ %#x
SCRATCH         equ %#x
DATA_OFF        equ %#x
IMAGE_SIZE      equ %#x
NUM_TASKS       equ %#x
TASK_MASK       equ %#x
CANARY_VALUE    equ %#x
QHEAD           equ %#x
QTAIL           equ %#x
QBUF            equ %#x
QUEUE_CAP       equ %#x
Q_MASK          equ %#x
`,
		OSSeg, OSROMSeg, HandlerROMSeg, StackSeg, StackTop, StackInit,
		SchedSeg, PortHeartbeat, PortRepair, PortTrace,
		VarCounter, VarTaskIdx, VarCanary, VarChecksum, VarTaskRuns, VarScratch,
		DataOff, ImageSize, NumTasks, NumTasks-1, CanaryValue,
		VarQHead, VarQTail, VarQBuf, QueueCap, QueueCap-1)
}

// kernelSource is the guest operating system: a telemetry kernel that
// emits a monotonically incrementing heartbeat and runs four tasks
// round-robin, maintaining data-structure invariants the approach-2
// monitor can check:
//
//	canary   == CANARY_VALUE
//	task_idx <  NUM_TASKS
//	checksum == sum(task_runs) (within 1, mid-update)
//
// The kernel is written to be self-stabilizing *given correct code and
// consistent data*: every main-loop iteration re-establishes ds, the
// task index is masked before each dispatch, and no instruction depends
// on the stack. This is exactly the obligation the paper places on the
// software running above its stabilizers (Section 2: self-stabilizing
// applications above a self-stabilizing OS).
const kernelSource = `
start:
	mov ax, OS_SEG
	mov ds, ax
	mov es, ax
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, STACK_INIT
	mov word [CANARY], CANARY_VALUE
main_loop:
	; re-establish the data segment: a transient fault in ds heals in
	; at most one iteration.
	mov ax, OS_SEG
	mov ds, ax
	; heartbeat
	mov ax, [COUNTER]
	inc ax
	mov [COUNTER], ax
	out HEARTBEAT_PORT, ax
	; sanitize the task index, then dispatch
	mov ax, [TASK_IDX]
	and ax, TASK_MASK
	mov [TASK_IDX], ax
	cmp ax, 0
	je task0
	cmp ax, 1
	je task1
	cmp ax, 2
	je task2
	jmp task3

task0:                      ; telemetry accumulator and IPC producer
	mov bx, [SCRATCH]
	add bx, 7
	mov [SCRATCH], bx
	mov ax, [TASK_RUNS]
	inc ax
	mov [TASK_RUNS], ax
	; enqueue the telemetry word unless the ring is full; indices are
	; masked on every use, so a corrupted index heals here too
	mov ax, [QHEAD]
	and ax, Q_MASK
	mov cx, ax
	inc cx
	and cx, Q_MASK
	cmp cx, [QTAIL]
	je q_full
	shl ax, 1
	mov bx, ax
	mov ax, [SCRATCH]
	mov [bx+QBUF], ax
	mov [QHEAD], cx
q_full:
	jmp bump_sum

task1:                      ; bounded busy computation
	mov cx, 8
t1_loop:
	mov ax, [SCRATCH+2]
	inc ax
	mov [SCRATCH+2], ax
	loop t1_loop
	mov ax, [TASK_RUNS+2]
	inc ax
	mov [TASK_RUNS+2], ax
	jmp bump_sum

task2:                      ; shadow copier and IPC consumer
	mov ax, [SCRATCH]
	mov [SCRATCH+4], ax
	mov ax, [SCRATCH+2]
	mov [SCRATCH+6], ax
	mov ax, [TASK_RUNS+4]
	inc ax
	mov [TASK_RUNS+4], ax
	; drain one word from the IPC ring unless empty
	mov ax, [QTAIL]
	and ax, Q_MASK
	cmp ax, [QHEAD]
	je q_empty
	mov bx, ax
	shl bx, 1
	mov cx, [bx+QBUF]
	mov bx, [SCRATCH+10]
	add bx, cx
	mov [SCRATCH+10], bx
	inc ax
	and ax, Q_MASK
	mov [QTAIL], ax
q_empty:
	jmp bump_sum

task3:                      ; mixer
	mov ax, [SCRATCH]
	add ax, [SCRATCH+2]
	mov [SCRATCH+8], ax
	mov ax, [TASK_RUNS+6]
	inc ax
	mov [TASK_RUNS+6], ax
	jmp bump_sum

bump_sum:
	mov ax, [CHECKSUM]
	inc ax
	mov [CHECKSUM], ax
	; advance the task index
	mov ax, [TASK_IDX]
	inc ax
	and ax, TASK_MASK
	mov [TASK_IDX], ax
	jmp main_loop
code_end:
`

// Kernel is the assembled guest OS.
type Kernel struct {
	// Prog is the assembled kernel program (org 0, addresses relative
	// to OSSeg).
	Prog *asm.Program
	// Padded records whether the kernel was assembled in 16-byte
	// instruction slots (required by the approach-2 monitor, which
	// masks the resume ip to a slot boundary).
	Padded bool
}

// BuildKernel assembles the guest OS. With padded set, every
// instruction occupies one 16-byte slot so any slot-aligned ip is an
// instruction start (the paper's Section 5.2 technique, reused by the
// approach-2 monitor for resume-address validation).
func BuildKernel(padded bool) (*Kernel, error) {
	src := prelude()
	if padded {
		src += "%pad on\n"
	}
	src += kernelSource
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("guest kernel: %w", err)
	}
	codeEnd, ok := p.Symbol("code_end")
	if !ok || codeEnd > DataOff {
		return nil, fmt.Errorf("guest kernel: code length %#x exceeds data offset %#x", codeEnd, DataOff)
	}
	return &Kernel{Prog: p, Padded: padded}, nil
}

// MustBuildKernel is BuildKernel for compile-time-constant sources.
func MustBuildKernel(padded bool) *Kernel {
	k, err := BuildKernel(padded)
	if err != nil {
		panic(err)
	}
	return k
}

// CodeLen returns the kernel code length in bytes.
func (k *Kernel) CodeLen() uint16 { return k.Prog.MustSymbol("code_end") }

// Image renders the pristine OS image as stored in ROM: code, a
// self-synchronizing jmp-start fill over the unused code region (every
// byte of [code_end, DataOff) decodes back to the kernel's first
// instruction — the §5.1 discipline, so a program counter corrupted
// into the gap restarts the OS instead of walking into the data
// section), then the initial data section (counter = InitialCounter,
// canary pre-set, run counters and checksum zero, consistent by
// construction).
func (k *Kernel) Image() []byte {
	filled, err := FillRegion(k.Prog.Code, DataOff)
	if err != nil {
		// BuildKernel already bounds the code length below DataOff.
		panic(err)
	}
	img := make([]byte, ImageSize)
	copy(img, filled)
	putWord := func(off int, v uint16) {
		img[off] = byte(v)
		img[off+1] = byte(v >> 8)
	}
	putWord(VarCounter, InitialCounter)
	putWord(VarTaskIdx, 0)
	putWord(VarCanary, CanaryValue)
	putWord(VarChecksum, 0)
	return img
}
