package guest

import (
	"fmt"

	"ssos/internal/asm"
	"ssos/internal/machine"
)

// Process-table record layout (offsets within a record, one word each,
// exactly the paper's Figure 3/5 offsets).
const (
	recFlag = 0  // flags
	recCS   = 2  // code segment
	recIP   = 4  // instruction pointer
	recAX   = 6  // ax
	recDS   = 8  // ds
	recBX   = 10 // bx
	recCX   = 12 // cx
	recDX   = 14 // dx
	recSI   = 16 // si
	recDI   = 18 // di
	recES   = 20 // es
	recFS   = 22 // fs
	recGS   = 24 // gs
	// ProcessEntrySize is the record size in bytes (13 words).
	ProcessEntrySize = 26
)

// Scheduler RAM layout within SchedSeg.
const (
	// ProcessIndexOff is the offset of the current-process index word.
	ProcessIndexOff = 0
	// ProcessTableOff is the offset of the process table.
	ProcessTableOff = 2
)

// RefresherIndex is the scheduled process that reloads the other
// processes' code from ROM; it runs from ROM itself.
const RefresherIndex = NumProcs - 1

// ProcCodeSeg returns the code segment process i executes from:
// RAM for ordinary processes, ROM for the refresher.
func ProcCodeSeg(i int) uint16 {
	if i == RefresherIndex {
		return ProcROMSeg(i)
	}
	return ProcCodeSeg0 + uint16(i)*ProcSegStride
}

// ProcROMSeg returns the ROM segment holding process i's pristine code
// image.
func ProcROMSeg(i int) uint16 { return ProcROMSeg0 + uint16(i)*ProcSegStride }

// ProcDataSeg returns the data segment of process i.
func ProcDataSeg(i int) uint16 { return ProcDataSeg0 + uint16(i)*ProcSegStride }

// ProcRecordAddr returns the linear address of process i's table record.
func ProcRecordAddr(i int) uint32 {
	return uint32(SchedSeg)<<4 + ProcessTableOff + uint32(i)*ProcessEntrySize
}

// ProcessIndexAddr returns the linear address of the processIndex word.
func ProcessIndexAddr() uint32 { return uint32(SchedSeg)<<4 + ProcessIndexOff }

// SchedOptions selects the scheduler's compiled-in extensions beyond
// the paper's Figures 2-5.
type SchedOptions struct {
	// ValidateDS pins each process's saved ds to the ROM processData
	// table on every switch.
	ValidateDS bool
	// Protect confines each process to its 4 KiB data window using the
	// memory-protection extension (machine.Options.MemoryProtection
	// must be enabled): the scheduler loads the window register and
	// forces FlagWP in every process's flags. The ROM-resident
	// refresher is exempt by hardware (ROM code plays supervisor).
	Protect bool
}

// Scheduler holds the assembled Figures 2-5 scheduler ROM.
type Scheduler struct {
	Prog *asm.Program
	// Opts records the compiled-in extensions.
	Opts SchedOptions
}

// NMIEntry returns the scheduler entry point (hardwired NMI vector).
func (s *Scheduler) NMIEntry() machine.SegOff {
	return machine.SegOff{Seg: HandlerROMSeg, Off: s.Prog.MustSymbol("nmi_entry")}
}

// BootEntry returns the cold-boot entry point.
func (s *Scheduler) BootEntry() machine.SegOff {
	return machine.SegOff{Seg: HandlerROMSeg, Off: s.Prog.MustSymbol("boot_entry")}
}

// ExcEntry returns the exception entry point.
func (s *Scheduler) ExcEntry() machine.SegOff {
	return machine.SegOff{Seg: HandlerROMSeg, Off: s.Prog.MustSymbol("exc_entry")}
}

// BuildScheduler assembles the paper's Figures 2-5 self-stabilizing
// scheduler. The code is a line-for-line transcription; the paper's
// numbered lines are kept as comments. Deviations, each commented in
// place:
//
//   - Figure 5 line 49 uses `jb CS_OK`, but the accompanying text says
//     "In case the value of cs is NOT EQUAL to the value pointed to by
//     si, cs is assigned by the value pointed to by si"; we use `je`,
//     which is what makes the validation actually pin each process to
//     its fixed code segment.
//   - IP_MASK both slot-aligns the ip (divisible by 16, as in the
//     paper) and bounds it to the 4 KiB process region, because in this
//     memory map the full 64 KiB segment around a process overlaps its
//     neighbours. Process regions are tail-filled with a self-
//     synchronizing `jmp 0` pattern, so any in-region slot eventually
//     reaches the process's first instruction — the paper's "one may
//     pad the program with nop instructions" refinement.
//
// With validateDS set, the scheduler additionally validates the saved
// ds against a ROM table of per-process data segments (processData),
// restoring the fixed value when it differs — except for entries
// holding the 0xFFFF sentinel, which mark processes (the refresher)
// that legitimately retarget ds. This is an EXTENSION the paper does
// not include (it assumes "the data of each process resides in a
// distinct separate ram area" as a correctness obligation on the
// processes); experiments E7 and E11 measure what the extensions buy.
func BuildScheduler(validateDS bool) (*Scheduler, error) {
	return BuildSchedulerOpts(SchedOptions{ValidateDS: validateDS})
}

// BuildSchedulerOpts assembles the scheduler with the given extensions.
func BuildSchedulerOpts(opts SchedOptions) (*Scheduler, error) {
	dsCheck := ""
	if opts.ValidateDS {
		// A 0xFFFF table entry is a sentinel: the process manages its
		// own ds and must not be pinned. The ROM refresher NEEDS this —
		// it legitimately points ds at each pristine code image during
		// its copies, and pinning a mid-copy ds back to its data
		// segment would make every resumed copy read garbage (found
		// the hard way; see DESIGN.md).
		dsCheck = `
	; --- extension: validate saved ds against the fixed table ---
	lea si, [processData]
	add si, [SCHED_INDEX]
	add si, [SCHED_INDEX]
	mov ax, [cs:si]                ; fixed ds, or the 0xFFFF sentinel
	cmp ax, 0xFFFF
	je DS_OK
	cmp ax, [bx+8]
	je DS_OK
	mov [bx+8], ax                 ; pin ds to the process's data segment
DS_OK:
`
	}

	protect := ""
	if opts.Protect {
		protect = `
	; --- extension: confine the process to its data window ---
	lea si, [processData]
	add si, [SCHED_INDEX]
	add si, [SCHED_INDEX]
	mov ax, [cs:si]
	wpset ax
	mov ax, [ss:STACK_TOP+4]
	or ax, WP_FLAG
	mov word [ss:STACK_TOP+4], ax
`
	}
	procFlags := uint16(0x02)
	if opts.Protect {
		procFlags |= wpFlagBit
	}
	src := prelude() + fmt.Sprintf(`
PROCESS_ENTRY_SIZE equ %d
N_MASK             equ %d
IP_MASK            equ %#x
SCHED_INDEX        equ %d
PROCESS_TABLE      equ %d
PROC_FLAGS         equ %#x
WP_FLAG            equ %#x
`, ProcessEntrySize, NumProcs-1, uint16(ProcRegionSize-1) & ^uint16(15), ProcessIndexOff, ProcessTableOff, procFlags, wpFlagBit) + `
; ============================================================
; Self-stabilizing scheduler (paper Figures 2-5), NMI entry.
; ============================================================
nmi_entry:
; --- Figure 2: refresh fixed addresses, store ax,bx,ds ---
	mov word [ss:STACK_TOP-2], ax  ;1
	mov ax, STACK_SEG              ;2
	mov ss, ax                     ;3
	mov sp, STACK_TOP              ;4
	mov word [ss:STACK_TOP-4], ds  ;5
	mov word [ss:STACK_TOP-6], bx  ;6
	mov ax, SCHED_SEG              ;7
	mov ds, ax                     ;8

; --- Figure 3: save interrupted process state ---
	mov ax, [SCHED_INDEX]          ;9
	and ax, N_MASK                 ;10
	lea bx, [PROCESS_TABLE]        ;11
	mov ah, PROCESS_ENTRY_SIZE     ;12
	mul ah                         ;13
	add bx, ax                     ;14  bx -> current process record
	mov ax, [ss:STACK_TOP+4]       ;15  save flags
	mov word [bx], ax              ;16
	mov ax, [ss:STACK_TOP+2]       ;17  save cs
	mov word [bx+2], ax            ;18
	mov ax, [ss:STACK_TOP]         ;19  save ip
	mov word [bx+4], ax            ;20
	mov ax, [ss:STACK_TOP-2]       ;21  save ax
	mov word [bx+6], ax            ;22
	mov ax, [ss:STACK_TOP-4]       ;23  save ds
	mov word [bx+8], ax            ;24
	mov ax, [ss:STACK_TOP-6]       ;25  save bx
	mov word [bx+10], ax           ;26
	mov word [bx+12], cx           ;27  save cx
	mov word [bx+14], dx           ;28  save dx
	mov word [bx+16], si           ;29  save si
	mov word [bx+18], di           ;30  save di
	mov word [bx+20], es           ;31  save es
	mov word [bx+22], fs           ;32  save fs
	mov word [bx+24], gs           ;33  save gs

; --- Figure 4: increment process index (round robin) ---
	mov ax, [SCHED_INDEX]          ;34
	inc ax                         ;35
	and ax, N_MASK                 ;36
	mov [SCHED_INDEX], ax          ;37

; --- Figure 5: load next process state ---
	lea bx, [PROCESS_TABLE]        ;38
	mov ah, PROCESS_ENTRY_SIZE     ;39
	mul ah                         ;40
	add bx, ax                     ;41  bx -> next process record
	mov ax, [bx]                   ;42  restore flags
	mov word [ss:STACK_TOP+4], ax  ;43
	mov ax, [bx+2]                 ;44  restore cs
; check cs validity
	lea si, [processLimits]        ;45
	add si, [SCHED_INDEX]          ;46
	add si, [SCHED_INDEX]          ;47
	cmp ax, [cs:si]                ;48  (cs: — the limits table is in this ROM)
	je CS_OK                       ;49  (paper prints jb; see doc comment)
	mov ax, [cs:si]                ;50  init cs
CS_OK:
	mov word [ss:STACK_TOP+2], ax  ;51
	mov ax, [bx+4]                 ;52  restore ip
	; 53: validate ip. The paper masks down (and ax, IP_MASK), but a
	; process interrupted mid-slot (walking its padding nops) has
	; already executed the slot's instruction; masking down would
	; re-execute it on resume — double outs, double increments, and a
	; re-executed loop underflowing cx. Rounding UP to the next slot
	; boundary resumes exactly where the uninterrupted execution
	; would have continued.
	add ax, 15                     ;53a
	and ax, IP_MASK                ;53b
	mov word [ss:STACK_TOP], ax    ;54
` + dsCheck + protect + `
	mov cx, [bx+12]                ;55  restore cx
	mov dx, [bx+14]                ;56  restore dx
	mov si, [bx+16]                ;57  restore si
	mov di, [bx+18]                ;58  restore di
	mov es, [bx+20]                ;59  restore es
	mov fs, [bx+22]                ;60  restore fs
	mov gs, [bx+24]                ;61  restore gs
	mov ax, [bx+8]                 ;62  restore ds (above stack)
	mov word [ss:STACK_TOP-2], ax  ;63
	mov ax, [bx+6]                 ;64  restore ax
	mov bx, [bx+10]                ;65  restore bx
	mov ds, [ss:STACK_TOP-2]       ;66  finally ds
; Jump to next process
	iret                           ;67

; ============================================================
; processLimits (Figure 5 lines 45-50): the fixed cs of each
; process, in ROM. processData is the extension's ds table.
; ============================================================
processLimits:
	dw ` + limitsList(ProcCodeSeg) + `
processData:
	dw ` + limitsList(schedDataEntry) + `

; ============================================================
; Cold boot: build a pristine process table, then run process 0.
; Self-stabilization does not require this path (the scheduler
; converges from any table contents); it gives experiments a
; clean time origin.
; ============================================================
boot_entry:
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, STACK_TOP
	mov ax, SCHED_SEG
	mov ds, ax
	mov word [SCHED_INDEX], 0
	; zero the whole table, then set per-process cs/ds/flags
	lea bx, [PROCESS_TABLE]
	mov cx, ` + fmt.Sprintf("%d", NumProcs*ProcessEntrySize/2) + `
boot_zero:
	mov word [bx], 0x0
	add bx, 2
	loop boot_zero
` + bootRecords() + `
; fall through: discard the faulted context and restart the CURRENT
; process (per processIndex) from its first instruction. Restarting the
; offender itself — rather than some fixed process — avoids creating a
; second execution of another process's code, which would interleave
; with the real one on the same data.
exc_entry:
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, STACK_TOP
	mov ax, SCHED_SEG
	mov ds, ax
	mov bx, [SCHED_INDEX]
	and bx, N_MASK
	lea si, [processLimits]
	add si, bx
	add si, bx
	mov ax, [cs:si]
	mov word [ss:STACK_TOP+2], ax  ; cs of the current process
	; Give the restarted process its own data segment immediately.
	; Leaving the handler's ds (the scheduler's data area!) in place
	; would be catastrophic if the next NMI arrives before the process
	; re-establishes ds itself: the saved context would alias the
	; process onto the scheduler's own state, and a process whose loop
	; stores through ds then scribbles processIndex every iteration —
	; a stable limit cycle in which its own record is never re-saved.
	lea si, [processData]
	add si, bx
	add si, bx
	mov ds, [cs:si]
` + excWindow(opts) + `	mov word [ss:STACK_TOP], 0x0
	mov word [ss:STACK_TOP+4], PROC_FLAGS
	iret
`
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("scheduler: %w", err)
	}
	return &Scheduler{Prog: p, Opts: opts}, nil
}

// wpFlagBit mirrors isa.FlagWP for the assembler sources.
const wpFlagBit = 0x40

// schedDataEntry supplies the processData table: each worker's fixed
// data segment, and the no-pin sentinel for the ROM refresher (which
// retargets ds legitimately during its copies and is store-exempt as
// ROM-resident code anyway).
func schedDataEntry(i int) uint16 {
	if i == RefresherIndex {
		return 0xFFFF
	}
	return ProcDataSeg(i)
}

// excWindow emits the exception path's window setup for the protect
// variant: the restarted process's data window, indexed like its cs
// (bx still holds the masked process index).
func excWindow(opts SchedOptions) string {
	if !opts.Protect {
		return ""
	}
	return `	lea si, [processData]
	add si, bx
	add si, bx
	mov ax, [cs:si]
	wpset ax
`
}

// limitsList renders the per-process segment table for a dw directive.
func limitsList(seg func(int) uint16) string {
	s := ""
	for i := 0; i < NumProcs; i++ {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%#x", seg(i))
	}
	return s
}

// bootRecords emits the per-process record initialization for the boot
// path: flags, cs and ds of each record get their fixed values.
func bootRecords() string {
	s := ""
	for i := 0; i < NumProcs; i++ {
		base := ProcessTableOff + i*ProcessEntrySize
		s += fmt.Sprintf(`	mov word [%d], PROC_FLAGS
	mov word [%d], %#x
	mov word [%d], %#x
`, base+recFlag, base+recCS, ProcCodeSeg(i), base+recDS, ProcDataSeg(i))
	}
	return s
}
