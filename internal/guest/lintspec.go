package guest

import (
	"fmt"

	"ssos/internal/imglint"
)

// This file declares the imglint contract of every guest ROM image: for
// each builder, exactly which paper invariants its output promises.
// cmd/ssos-lint, cmd/ssos-verify and the guest tests all lint the same
// specifications, so the bytes the simulator installs as ROM are the
// bytes that were proved.

// ROMRanges returns the linear address ranges the full system installs
// as ROM (the conservative union across approaches). No guest store may
// provably target any of them: ROM is incorruptible by contract, so
// such a store could only ever be a bug.
func ROMRanges() []imglint.Range {
	return []imglint.Range{
		{Name: "proc-images", Start: uint32(ProcROMSeg0) << 4, End: uint32(ProcROMSeg0)<<4 + NumProcs*ProcRegionSize},
		{Name: "os-image", Start: uint32(OSROMSeg) << 4, End: uint32(OSROMSeg)<<4 + ImageSize},
		{Name: "handler-rom", Start: uint32(HandlerROMSeg) << 4, End: (uint32(HandlerROMSeg) + 0x1000) << 4},
	}
}

// kernelSpec is the contract of a Kernel ROM image: execution starts at
// offset 0 (plus any interrupt-service entries), the unused code region
// [code_end, DataOff) is jmp-start fill, and padded kernels keep the
// §5.2 slot discipline.
func kernelSpec(name string, k *Kernel, extraEntries ...string) imglint.Image {
	entries := []imglint.Entry{{Name: "start", Off: 0}}
	for _, sym := range extraEntries {
		entries = append(entries, imglint.Entry{Name: sym, Off: k.Prog.MustSymbol(sym)})
	}
	return imglint.Image{
		Name:       name,
		Bytes:      k.Image(),
		Seg:        OSSeg,
		Entries:    entries,
		CodeEnd:    int(k.CodeLen()),
		CheckFill:  true,
		FillEnd:    DataOff,
		FillTarget: 0,
		SlotPadded: k.Padded,
		ROM:        ROMRanges(),
	}
}

// primitiveSpec is the contract of the Section 5.1 primitive-scheduler
// ROM: straight-line loop-free processes, full jmp-start fill, and the
// hardwired NMI/boot/exception entry at offset 0.
func primitiveSpec(pr *Primitive) imglint.Image {
	entries := []imglint.Entry{{Name: "entry", Off: 0}}
	for i, off := range pr.ProcStarts {
		entries = append(entries, imglint.Entry{Name: fmt.Sprintf("proc%d", i), Off: off})
	}
	return imglint.Image{
		Name:         "primitive",
		Bytes:        pr.Image,
		Seg:          HandlerROMSeg,
		Entries:      entries,
		CodeEnd:      int(pr.CodeEnd),
		CheckFill:    true,
		FillTarget:   0,
		StraightLine: true,
		ROM:          ROMRanges(),
	}
}

// handlerSpec is the contract of a stabilizer Handler ROM: the three
// hardwired entries decode and stay inside the image, and any constant
// iret launch frame confines cs to the guest OS segment.
func handlerSpec(name string, h *Handler) imglint.Image {
	return imglint.Image{
		Name:  name,
		Bytes: h.Prog.Code,
		Seg:   HandlerROMSeg,
		Entries: []imglint.Entry{
			{Name: "nmi_entry", Off: h.NMIEntry().Off},
			{Name: "boot_entry", Off: h.BootEntry().Off},
			{Name: "exc_entry", Off: h.ExcEntry().Off},
		},
		CSAllowed: []uint16{OSSeg},
		ROM:       ROMRanges(),
	}
}

// schedulerSpec is the contract of the Figures 2-5 scheduler ROM: the
// three entries decode, the ROM-resident processLimits and processData
// tables hold exactly the fixed per-process segments, and far control
// stays within the scheduled processes' code segments.
func schedulerSpec(name string, s *Scheduler) imglint.Image {
	limits := make([]uint16, NumProcs)
	data := make([]uint16, NumProcs)
	for i := 0; i < NumProcs; i++ {
		limits[i] = ProcCodeSeg(i)
		data[i] = schedDataEntry(i)
	}
	return imglint.Image{
		Name:  name,
		Bytes: s.Prog.Code,
		Seg:   HandlerROMSeg,
		Entries: []imglint.Entry{
			{Name: "nmi_entry", Off: s.NMIEntry().Off},
			{Name: "boot_entry", Off: s.BootEntry().Off},
			{Name: "exc_entry", Off: s.ExcEntry().Off},
		},
		Tables: []imglint.Table{
			{Name: "processLimits", Off: s.Prog.MustSymbol("processLimits"), Want: limits},
			{Name: "processData", Off: s.Prog.MustSymbol("processData"), Want: data},
		},
		CSAllowed: limits,
		ROM:       ROMRanges(),
	}
}

// procSpec is the contract of one scheduled process region image:
// slot-padded code from offset 0, jmp-start fill over the whole
// remaining region (so every maskable ip converges back to the
// process's first instruction).
func procSpec(name string, set *ProcSet, i int) imglint.Image {
	return imglint.Image{
		Name:       name,
		Bytes:      set.Images[i],
		Seg:        ProcCodeSeg(i),
		Entries:    []imglint.Entry{{Name: "start", Off: 0}},
		CodeEnd:    len(set.Progs[i].Code),
		CheckFill:  true,
		FillTarget: 0,
		SlotPadded: true,
		ROM:        ROMRanges(),
	}
}

// LintImages builds every guest ROM image the simulator can install and
// returns each with its invariant specification, ready for
// imglint.Check.
func LintImages() ([]imglint.Image, error) {
	var specs []imglint.Image

	kernel, err := BuildKernel(false)
	if err != nil {
		return nil, err
	}
	specs = append(specs, kernelSpec("kernel", kernel))

	padded, err := BuildKernel(true)
	if err != nil {
		return nil, err
	}
	specs = append(specs, kernelSpec("kernel-padded", padded))

	tickful, err := BuildTickfulKernel()
	if err != nil {
		return nil, err
	}
	specs = append(specs, kernelSpec("kernel-tickful", tickful, "timer_isr"))

	prim, err := BuildPrimitive()
	if err != nil {
		return nil, err
	}
	specs = append(specs, primitiveSpec(prim))

	reinstall, err := BuildReinstallHandler()
	if err != nil {
		return nil, err
	}
	specs = append(specs, handlerSpec("handler-reinstall", reinstall))

	cont, err := BuildContinueHandler()
	if err != nil {
		return nil, err
	}
	specs = append(specs, handlerSpec("handler-continue", cont))

	monitor, err := BuildMonitorHandler(padded)
	if err != nil {
		return nil, err
	}
	specs = append(specs, handlerSpec("handler-monitor", monitor))

	checkpoint, err := BuildCheckpointHandler()
	if err != nil {
		return nil, err
	}
	specs = append(specs, handlerSpec("handler-checkpoint", checkpoint))

	for _, v := range []struct {
		name string
		opts SchedOptions
	}{
		{"scheduler", SchedOptions{}},
		{"scheduler-validate-ds", SchedOptions{ValidateDS: true}},
		{"scheduler-protect", SchedOptions{ValidateDS: true, Protect: true}},
	} {
		s, err := BuildSchedulerOpts(v.opts)
		if err != nil {
			return nil, err
		}
		specs = append(specs, schedulerSpec(v.name, s))
	}

	procs, err := BuildProcesses()
	if err != nil {
		return nil, err
	}
	for i := 0; i < NumProcs; i++ {
		specs = append(specs, procSpec(fmt.Sprintf("proc-%d", i), procs, i))
	}

	ring, err := BuildRingProcesses()
	if err != nil {
		return nil, err
	}
	for i := 0; i < NumProcs; i++ {
		specs = append(specs, procSpec(fmt.Sprintf("ring-%d", i), ring, i))
	}

	// The mailbox token-ring workloads: the single-machine sets (one
	// image per scheduler slot) and, for the cluster's one-node-per-
	// replica deployments, the node image of every (variant, ring size,
	// node) the fleet can build — the worker and refresher slots of
	// those sets are byte-identical to proc-1..proc-3 above.
	for _, v := range RingVariants() {
		set, err := BuildMailboxProcesses(v)
		if err != nil {
			return nil, err
		}
		for i := 0; i < NumProcs; i++ {
			specs = append(specs, procSpec(fmt.Sprintf("mbox-%v-%d", v, i), set, i))
		}
		for n := 2; n <= MaxMailboxNodes; n++ {
			for node := 0; node < n; node++ {
				nset, err := BuildNodeProcesses(v, node, n)
				if err != nil {
					return nil, err
				}
				specs = append(specs, procSpec(fmt.Sprintf("mbox-%v-n%d-node%d", v, n, node), nset, 0))
			}
		}
	}

	return specs, nil
}
