package guest

import (
	"fmt"

	"ssos/internal/asm"
)

// Mailbox token-ring workloads: Dijkstra's K-state and 3-state rings
// and Ghosh's 4-state chain, each node a scheduled process whose only
// shared state is one 16-bit slot in a dedicated RAM region (the
// "mailbox"). Unlike the legacy ring.go workload — whose members read
// each other's data segments directly — mailbox nodes never address
// another process's data segment: node i owns slot i, reads its
// neighbours' slots, and parks the normalized reads in register words
// of its own data segment before the guarded test-and-write. That
// discipline is what makes the workloads distributable: on the cluster
// a replica runs a single node, and a relay shim copies neighbour
// slots between the replicas' mailboxes (internal/cluster).
//
// The mailbox programs mirror internal/model's Protocol abstractions
// instruction for instruction:
//
//   - every value read from slot j is immediately projected onto slot
//     j's canonical domain by the owner's normalization sequence
//     (model.Protocol.Norm);
//   - the parked register words are reloaded from RAM and re-normalized
//     right before the guarded write, so the node's observable
//     behaviour is a function of the observable words alone — the
//     soundness premise of model.Protocol.ObsSuccessors and the
//     refinement tests;
//   - a store to the node's own slot happens only under the protocol
//     guard, and writes the exact value model.Protocol.Guards gives.
//
// Each iteration ends with a beat: the node increments a counter in
// its data segment and reports it on its port, so the standard
// process-heartbeat machinery observes liveness.

// MailboxSeg is the segment of the shared mailbox region. It lies in
// otherwise-unused RAM, outside every process region, the OS image and
// the stacks — corruption of a slot is an application-layer fault that
// only the protocol itself heals.
const MailboxSeg = 0xA000

// MaxMailboxNodes bounds the ring sizes the builders accept; it equals
// model.MaxRingMembers (the model's RingState is a fixed-size array).
const MaxMailboxNodes = 6

// MailboxNodes is the ring size of the single-machine configuration:
// the scheduler's worker slots, with the refresher keeping its place.
const MailboxNodes = RefresherIndex

// MailboxK is the K of the K-state variant: a power of two (the guard
// masks with K-1) with K >= 2n-1 for every n up to MaxMailboxNodes,
// the bound under which the K-state ring stabilizes even at
// read/write atomicity.
const MailboxK = 16

// Data-segment offsets of a mailbox node process. Offset 0 is unused;
// the beat counter sits at 2 as in the legacy ring workload.
const (
	MailboxBeatOff = 2 // iteration counter, reported on the node's port
	MailboxRegLOff = 4 // parked normalized read of the left neighbour
	MailboxRegROff = 6 // parked normalized read of the right neighbour
)

// MailboxAddr returns the linear address of ring slot i.
func MailboxAddr(i int) uint32 { return uint32(MailboxSeg)<<4 + uint32(2*i) }

// MailboxRegLAddr returns the linear address of the parked left-read
// word of the process in scheduler slot proc.
func MailboxRegLAddr(proc int) uint32 { return uint32(ProcDataSeg(proc))<<4 + MailboxRegLOff }

// MailboxRegRAddr returns the linear address of the parked right-read
// word of the process in scheduler slot proc.
func MailboxRegRAddr(proc int) uint32 { return uint32(ProcDataSeg(proc))<<4 + MailboxRegROff }

// RingVariant selects a mailbox token-ring protocol.
type RingVariant uint8

const (
	// VariantKState is Dijkstra's K-state unidirectional ring (K =
	// MailboxK).
	VariantKState RingVariant = iota
	// VariantDijkstra3 is Dijkstra's bidirectional 3-state ring.
	VariantDijkstra3
	// VariantGhosh4 is Ghosh's 4-state chain with parity-anchored ends.
	VariantGhosh4
)

var ringVariantNames = map[RingVariant]string{
	VariantKState:    "kstate",
	VariantDijkstra3: "dijkstra3",
	VariantGhosh4:    "ghosh4",
}

func (v RingVariant) String() string {
	if s, ok := ringVariantNames[v]; ok {
		return s
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// RingVariants lists every variant, in catalog order.
func RingVariants() []RingVariant {
	return []RingVariant{VariantKState, VariantDijkstra3, VariantGhosh4}
}

// ParseRingVariant resolves a variant name as used by the CLIs.
func ParseRingVariant(s string) (RingVariant, error) {
	for v, name := range ringVariantNames {
		if s == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown ring variant %q (kstate|dijkstra3|ghosh4)", s)
}

// usesLeft reports whether node i of n reads its left neighbour's slot
// (mirrors model.Protocol.UsesLeft).
func (v RingVariant) usesLeft(i, n int) bool {
	switch v {
	case VariantKState:
		return true
	default:
		return i != 0
	}
}

// usesRight reports whether node i of n reads its right neighbour's
// slot (mirrors model.Protocol.UsesRight).
func (v RingVariant) usesRight(i, n int) bool {
	switch v {
	case VariantKState:
		return false
	case VariantGhosh4:
		return i != n-1
	default:
		return true
	}
}

// normAsm emits the instruction sequence projecting reg onto the value
// domain of slot owner (node `owner` of n) — the assembly twin of
// model.Protocol.Norm. lbl supplies unique label suffixes.
func (v RingVariant) normAsm(owner, n int, reg string, lbl *int) string {
	switch v {
	case VariantKState:
		return fmt.Sprintf("\tand %s, %d\n", reg, MailboxK-1)
	case VariantDijkstra3:
		*lbl++
		return fmt.Sprintf(`	and %[1]s, 3
	cmp %[1]s, 3
	jne norm_%[2]d
	mov %[1]s, 0
norm_%[2]d:
`, reg, *lbl)
	default: // VariantGhosh4: parity-anchored end domains
		switch owner {
		case 0:
			return fmt.Sprintf("\tand %[1]s, 2\n\tor %[1]s, 1\n", reg)
		case n - 1:
			return fmt.Sprintf("\tand %s, 2\n", reg)
		default:
			return fmt.Sprintf("\tand %s, 3\n", reg)
		}
	}
}

// incModAsm emits dx := (reg+1) mod base, for base 3 or 4. lbl supplies
// unique label suffixes (mod 3 needs a branch; mod 4 is a mask).
func incModAsm(reg string, base int, lbl *int) string {
	if base == 4 {
		return fmt.Sprintf("\tmov dx, %s\n\tinc dx\n\tand dx, 3\n", reg)
	}
	*lbl++
	return fmt.Sprintf(`	mov dx, %s
	inc dx
	cmp dx, 3
	jne succ_%[2]d
	mov dx, 0
succ_%[2]d:
`, reg, *lbl)
}

// guardAsm emits node i's guarded test-and-write — the assembly twin of
// model.Protocol.Guards. On entry ax holds the node's canonical slot
// value, bx/cx the canonical left/right register words (for the sides
// the node uses). A store to [MY_OFF] happens iff a guard holds; either
// way control falls through or jumps to the `beat` label.
func (v RingVariant) guardAsm(i, n int, lbl *int) string {
	switch v {
	case VariantKState:
		if i == 0 {
			// Root: privileged when self == left; step: self+1 mod K.
			return fmt.Sprintf(`	cmp ax, bx
	jne beat
	inc ax
	and ax, %d
	mov [MY_OFF], ax
`, MailboxK-1)
		}
		// Member: privileged when self != left; step: copy left.
		return `	cmp ax, bx
	je beat
	mov [MY_OFF], bx
`
	case VariantDijkstra3:
		switch i {
		case 0:
			// Bottom: right == self+1 -> self := self+2 (mod 3).
			return incModAsm("ax", 3, lbl) + `	cmp dx, cx
	jne beat
	add ax, 2
	cmp ax, 3
	jb store_ok
	sub ax, 3
store_ok:
	mov [MY_OFF], ax
`
		case n - 1:
			// Top: left == right and left+1 != self -> self := left+1.
			return "\tcmp bx, cx\n\tjne beat\n" + incModAsm("bx", 3, lbl) + `	cmp dx, ax
	je beat
	mov [MY_OFF], dx
`
		default:
			// Normal: either neighbour == self+1 -> self := self+1.
			return incModAsm("ax", 3, lbl) + `	cmp dx, bx
	je do_move
	cmp dx, cx
	jne beat
do_move:
	mov [MY_OFF], dx
`
		}
	default: // VariantGhosh4
		switch i {
		case 0:
			// Bottom: right == self+1 -> self := self+2 (stays odd).
			return incModAsm("ax", 4, lbl) + `	cmp dx, cx
	jne beat
	add ax, 2
	and ax, 3
	mov [MY_OFF], ax
`
		case n - 1:
			// Top: left == self+1 -> self := self+2 (stays even).
			return incModAsm("ax", 4, lbl) + `	cmp dx, bx
	jne beat
	add ax, 2
	and ax, 3
	mov [MY_OFF], ax
`
		default:
			// Interior: a neighbour is one ahead -> copy it (self+1,
			// the same value whichever side fired).
			return incModAsm("ax", 4, lbl) + `	cmp dx, bx
	je do_move
	cmp dx, cx
	jne beat
do_move:
	mov [MY_OFF], dx
`
		}
	}
}

// mailboxNodeSource builds the source of ring node `node` of n, running
// in scheduler slot proc (the single machine runs node i in slot i;
// a cluster replica runs its one node in slot 0).
func mailboxNodeSource(v RingVariant, node, n, proc int) string {
	left := (node + n - 1) % n
	right := (node + 1) % n
	header := fmt.Sprintf(`
MAILBOX   equ %#x
MY_DATA   equ %#x
MY_PORT   equ %#x
MY_OFF    equ %d
LEFT_OFF  equ %d
RIGHT_OFF equ %d
REG_L     equ %d
REG_R     equ %d
BEAT      equ %d
%%pad on
start:
`, MailboxSeg, ProcDataSeg(proc), PortProc0+proc,
		2*node, 2*left, 2*right,
		MailboxRegLOff, MailboxRegROff, MailboxBeatOff)

	lbl := 0
	body := ""
	// Load phase: read each used neighbour slot, normalize it onto the
	// owner's domain, park it in this node's data segment.
	if v.usesLeft(node, n) {
		body += `	mov ax, MAILBOX
	mov ds, ax
	mov ax, [LEFT_OFF]
` + v.normAsm(left, n, "ax", &lbl) + `	mov bx, ax
	mov ax, MY_DATA
	mov ds, ax
	mov [REG_L], bx
`
	}
	if v.usesRight(node, n) {
		body += `	mov ax, MAILBOX
	mov ds, ax
	mov ax, [RIGHT_OFF]
` + v.normAsm(right, n, "ax", &lbl) + `	mov cx, ax
	mov ax, MY_DATA
	mov ds, ax
	mov [REG_R], cx
`
	}
	// Write phase: reload the parked words from RAM (they may have been
	// corrupted since the loads) and re-normalize, so the guarded write
	// depends only on the observable words; then read and normalize the
	// node's own slot and run the guard.
	body += "	mov ax, MY_DATA\n	mov ds, ax\n"
	if v.usesLeft(node, n) {
		body += "	mov bx, [REG_L]\n" + v.normAsm(left, n, "bx", &lbl)
	}
	if v.usesRight(node, n) {
		body += "	mov cx, [REG_R]\n" + v.normAsm(right, n, "cx", &lbl)
	}
	body += `	mov ax, MAILBOX
	mov ds, ax
	mov ax, [MY_OFF]
` + v.normAsm(node, n, "ax", &lbl) + v.guardAsm(node, n, &lbl)

	footer := `beat:
	mov ax, MY_DATA
	mov ds, ax
	mov ax, [BEAT]
	inc ax
	mov [BEAT], ax
	out MY_PORT, ax
	jmp start
`
	return header + body + footer
}

// assembleInto assembles src as the process in slot i of set.
func assembleInto(set *ProcSet, i int, src string) error {
	p, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	img, err := FillRegion(p.Code, ProcRegionSize)
	if err != nil {
		return err
	}
	set.Progs[i] = p
	set.Images[i] = img
	return nil
}

// BuildMailboxProcesses assembles the single-machine mailbox ring of
// variant v: MailboxNodes node processes in slots 0..MailboxNodes-1
// plus the standard ROM refresher.
func BuildMailboxProcesses(v RingVariant) (*ProcSet, error) {
	set := &ProcSet{}
	for i := 0; i < NumProcs; i++ {
		var src string
		if i == RefresherIndex {
			src = refresherSource()
		} else {
			src = mailboxNodeSource(v, i, MailboxNodes, i)
		}
		if err := assembleInto(set, i, src); err != nil {
			return nil, fmt.Errorf("mailbox %v process %d: %w", v, i, err)
		}
	}
	return set, nil
}

// BuildNodeProcesses assembles the one-node-per-replica process set:
// slot 0 runs ring node `node` of n, slots 1..RefresherIndex-1 run the
// standard counter workers, and the refresher keeps its slot. The
// node's neighbour slots are filled in by the cluster's relay shim.
func BuildNodeProcesses(v RingVariant, node, n int) (*ProcSet, error) {
	if n < 2 || n > MaxMailboxNodes {
		return nil, fmt.Errorf("mailbox ring size %d out of range 2..%d", n, MaxMailboxNodes)
	}
	if node < 0 || node >= n {
		return nil, fmt.Errorf("mailbox node %d out of range 0..%d", node, n-1)
	}
	set := &ProcSet{}
	for i := 0; i < NumProcs; i++ {
		var src string
		switch {
		case i == RefresherIndex:
			src = refresherSource()
		case i == 0:
			src = mailboxNodeSource(v, node, n, 0)
		default:
			src = procWorkerSource(i)
		}
		if err := assembleInto(set, i, src); err != nil {
			return nil, fmt.Errorf("mailbox %v node %d/%d process %d: %w", v, node, n, i, err)
		}
	}
	return set, nil
}
