package guest

import (
	"testing"

	"ssos/internal/dev"
	"ssos/internal/isa"
	"ssos/internal/machine"
	"ssos/internal/mem"
	"ssos/internal/trace"
)

func TestKernelAssembles(t *testing.T) {
	for _, padded := range []bool{false, true} {
		k, err := BuildKernel(padded)
		if err != nil {
			t.Fatalf("padded=%v: %v", padded, err)
		}
		if k.CodeLen() == 0 || k.CodeLen() > DataOff {
			t.Fatalf("padded=%v: code len %#x", padded, k.CodeLen())
		}
		img := k.Image()
		if len(img) != ImageSize {
			t.Fatalf("image size %d", len(img))
		}
		canary := uint16(img[VarCanary]) | uint16(img[VarCanary+1])<<8
		if canary != CanaryValue {
			t.Fatalf("image canary %#x", canary)
		}
	}
}

func TestPaddedKernelSlots(t *testing.T) {
	k := MustBuildKernel(true)
	if k.CodeLen()%isa.SlotSize != 0 {
		t.Fatalf("padded code len %#x not slot multiple", k.CodeLen())
	}
	for off := 0; off < int(k.CodeLen()); off += isa.SlotSize {
		if _, _, ok := isa.Decode(k.Prog.Code[off:]); !ok {
			t.Errorf("slot %#x does not decode", off)
		}
	}
}

// runKernelDirect boots the kernel image directly (no stabilizer) and
// returns the machine and its heartbeat console.
func runKernelDirect(t *testing.T, padded bool, steps int) (*machine.Machine, *dev.Console) {
	t.Helper()
	k := MustBuildKernel(padded)
	bus := mem.NewBus()
	img := k.Image()
	for i, b := range img {
		bus.Poke(uint32(OSSeg)<<4+uint32(i), b)
	}
	m := machine.New(bus, machine.Options{
		ResetVector: machine.SegOff{Seg: OSSeg, Off: 0},
	})
	console := dev.NewConsole(func() uint64 { return m.Stats.Steps }, 0)
	m.MapPort(PortHeartbeat, console)
	m.Run(steps)
	return m, console
}

func TestKernelEmitsLegalHeartbeats(t *testing.T) {
	for _, padded := range []bool{false, true} {
		// Padded code pays for its robustness: sequential execution
		// walks the slot-padding nops, roughly a 13x slowdown here.
		steps := 20000
		if padded {
			steps = 100000
		}
		m, console := runKernelDirect(t, padded, steps)
		w := console.Writes()
		if len(w) < 50 {
			t.Fatalf("padded=%v: only %d heartbeats", padded, len(w))
		}
		spec := trace.HeartbeatSpec{Start: HeartbeatStart, MaxGap: 2000}
		if v := spec.Violations(w, m.Stats.Steps); len(v) != 0 {
			t.Fatalf("padded=%v: violations: %v", padded, v)
		}
		if w[0].Value != HeartbeatStart {
			t.Fatalf("padded=%v: first beat %#x", padded, w[0].Value)
		}
	}
}

func TestKernelMaintainsChecksumInvariant(t *testing.T) {
	m, _ := runKernelDirect(t, false, 50000)
	// Read guest variables via absolute bus access, independent of the
	// stopping point.
	word := func(off uint32) uint16 { return m.Bus.LoadWord(uint32(OSSeg)<<4 + off) }
	var sum uint16
	for i := uint32(0); i < NumTasks; i++ {
		sum += word(VarTaskRuns + 2*i)
	}
	chk := word(VarChecksum)
	if d := sum - chk; d != 0 && d != 1 {
		t.Fatalf("checksum drift: sum=%d chk=%d", sum, chk)
	}
	if word(VarCanary) != CanaryValue {
		t.Fatal("canary lost")
	}
	if word(VarTaskIdx) >= NumTasks {
		t.Fatalf("task idx out of range: %d", word(VarTaskIdx))
	}
	// All tasks ran.
	for i := uint32(0); i < NumTasks; i++ {
		if word(VarTaskRuns+2*i) == 0 {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestKernelHealsDSCorruption(t *testing.T) {
	m, console := runKernelDirect(t, false, 5000)
	m.CPU.S[isa.DS] = 0x7777 // transient fault in ds
	m.Run(5000)
	spec := trace.HeartbeatSpec{Start: HeartbeatStart, MaxGap: 2000}
	w := console.Writes()
	// The stream may glitch briefly but must have a long legal suffix.
	start := spec.LegalSuffixStart(w)
	if len(w)-start < 20 {
		t.Fatalf("no legal suffix after ds corruption (start=%d len=%d)", start, len(w))
	}
}

func TestHandlersAssemble(t *testing.T) {
	r, err := BuildReinstallHandler()
	if err != nil {
		t.Fatal(err)
	}
	if r.NMIEntry().Off != 0 {
		t.Fatalf("reinstall NMI entry at %v", r.NMIEntry())
	}
	if r.BootEntry() != r.NMIEntry() {
		t.Fatal("approach-1 boot should alias the NMI entry")
	}
	c, err := BuildContinueHandler()
	if err != nil {
		t.Fatal(err)
	}
	if c.NMIEntry().Off != 0 || c.BootEntry().Off == 0 {
		t.Fatalf("continue entries: nmi=%v boot=%v", c.NMIEntry(), c.BootEntry())
	}
	if _, err := BuildMonitorHandler(MustBuildKernel(true)); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMonitorHandler(MustBuildKernel(false)); err == nil {
		t.Fatal("monitor must reject an unpadded kernel")
	}
}

func TestSchedulerAssembles(t *testing.T) {
	for _, vds := range []bool{false, true} {
		s, err := BuildScheduler(vds)
		if err != nil {
			t.Fatalf("validateDS=%v: %v", vds, err)
		}
		if s.NMIEntry().Off != 0 {
			t.Fatalf("scheduler NMI entry at %v", s.NMIEntry())
		}
		if s.BootEntry().Off == 0 || s.ExcEntry().Off == 0 {
			t.Fatal("missing boot/exc entries")
		}
	}
}

func TestProcessesAssemble(t *testing.T) {
	set, err := BuildProcesses()
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range set.Images {
		if len(img) != ProcRegionSize {
			t.Fatalf("process %d region size %d", i, len(img))
		}
		// Padded processes: every slot within the code decodes.
		codeLen := len(set.Progs[i].Code)
		for off := 0; off < codeLen; off += isa.SlotSize {
			if _, _, ok := isa.Decode(img[off:]); !ok {
				t.Errorf("process %d slot %#x does not decode", i, off)
			}
		}
	}
}

func TestFillRegionSelfSynchronizes(t *testing.T) {
	code := make([]byte, 35) // not a multiple of 3, exercises the gap
	for i := range code {
		code[i] = byte(isa.OpNop)
	}
	region, err := FillRegion(code, 256)
	if err != nil {
		t.Fatal(err)
	}
	// From every fill offset except the final jmp's two operand bytes
	// (which escape past the region; see the FillRegion doc comment), a
	// decode walk reaches offset 0 within a few instructions.
	for start := len(code); start < len(region)-2; start++ {
		off := start
		reached := false
		for hop := 0; hop < 4; hop++ {
			in, size, ok := isa.Decode(region[off:])
			if !ok {
				t.Fatalf("offset %d: undecodable fill byte %#x", off, region[off])
			}
			if in.Op == isa.OpJmp {
				if in.Imm != 0 {
					t.Fatalf("offset %d: fill jmp to %#x", off, in.Imm)
				}
				reached = true
				break
			}
			if in.Op != isa.OpNop {
				t.Fatalf("offset %d: unexpected op %v", off, in.Op)
			}
			off += size
			if off >= len(region) {
				break
			}
		}
		if !reached {
			t.Fatalf("fill offset %d never reaches jmp 0", start)
		}
	}
	// Oversized code is rejected.
	if _, err := FillRegion(make([]byte, 300), 256); err == nil {
		t.Fatal("oversized code accepted")
	}
}

func TestPrimitiveAssembles(t *testing.T) {
	p, err := BuildPrimitive()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Image) != PrimitiveROMSize {
		t.Fatalf("image size %d", len(p.Image))
	}
	if p.ProcStarts[0] != 0 {
		t.Fatalf("proc0 must start at 0, got %#x", p.ProcStarts[0])
	}
	if !(p.ProcStarts[0] < p.ProcStarts[1] && p.ProcStarts[1] < p.ProcStarts[2] && p.ProcStarts[2] < p.CodeEnd) {
		t.Fatalf("process layout: %v end=%#x", p.ProcStarts, p.CodeEnd)
	}
	// The process body must be loop-free and stackless: scan decoded
	// instructions for violations of the Section 5.1 restrictions.
	off := 0
	for off < int(p.CodeEnd) {
		in, size, ok := isa.Decode(p.Image[off:])
		if !ok {
			t.Fatalf("undecodable process byte at %#x", off)
		}
		switch in.Op {
		case isa.OpHlt, isa.OpPushR, isa.OpPopR, isa.OpPushI, isa.OpPushS,
			isa.OpPopS, isa.OpCall, isa.OpRet, isa.OpLoop, isa.OpPushf, isa.OpPopf:
			t.Fatalf("forbidden op %v at %#x", in.Op, off)
		case isa.OpJmp, isa.OpJe, isa.OpJne, isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
			// Only the final jmp back to start is allowed to go backward.
			if int(in.Imm) <= off && off+size != int(p.CodeEnd) {
				t.Fatalf("backward branch at %#x", off)
			}
		}
		off += size
	}
}

func TestKernelIPCQueueFlows(t *testing.T) {
	m, _ := runKernelDirect(t, false, 100000)
	word := func(off uint32) uint16 { return m.Bus.LoadWord(uint32(OSSeg)<<4 + off) }
	if h := word(VarQHead); h >= QueueCap {
		t.Fatalf("queue head out of range: %d", h)
	}
	if tl := word(VarQTail); tl >= QueueCap {
		t.Fatalf("queue tail out of range: %d", tl)
	}
	// The consumer accumulated drained telemetry.
	if word(VarScratch+10) == 0 {
		t.Fatal("consumer never drained the queue")
	}
}

func TestKernelHealsQueueIndexCorruption(t *testing.T) {
	m, console := runKernelDirect(t, false, 50000)
	m.Bus.PokeRAM(uint32(OSSeg)<<4+VarQHead, 0xFF)
	m.Bus.PokeRAM(uint32(OSSeg)<<4+VarQHead+1, 0x7F)
	m.Run(50000)
	word := func(off uint32) uint16 { return m.Bus.LoadWord(uint32(OSSeg)<<4 + off) }
	if h := word(VarQHead); h >= QueueCap {
		t.Fatalf("queue head not healed: %d", h)
	}
	spec := trace.HeartbeatSpec{Start: HeartbeatStart, MaxGap: 2000}
	w := console.Writes()
	if len(w)-spec.LegalSuffixStart(w) < 50 {
		t.Fatal("heartbeats disrupted by queue corruption")
	}
}

func TestReinstallHandlerSizedBounds(t *testing.T) {
	if _, err := BuildReinstallHandlerSized(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := BuildReinstallHandlerSized(0x10001); err == nil {
		t.Error("oversized accepted")
	}
	h, err := BuildReinstallHandlerSized(0x800)
	if err != nil {
		t.Fatal(err)
	}
	if h.NMIEntry().Off != 0 {
		t.Error("nmi entry offset")
	}
}

func TestCheckpointHandlerAssembles(t *testing.T) {
	h, err := BuildCheckpointHandler()
	if err != nil {
		t.Fatal(err)
	}
	if h.NMIEntry().Off != 0 || h.BootEntry().Off == 0 || h.ExcEntry().Off == 0 {
		t.Fatalf("entries: %v %v %v", h.NMIEntry(), h.BootEntry(), h.ExcEntry())
	}
}

func TestRingProcessesAssemble(t *testing.T) {
	set, err := BuildRingProcesses()
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range set.Images {
		if len(img) != ProcRegionSize {
			t.Fatalf("ring process %d region size %d", i, len(img))
		}
	}
	// Member sources differ between root and followers.
	if string(set.Images[0][:64]) == string(set.Images[1][:64]) {
		t.Error("root and member images identical")
	}
	if RingXAddr(1) != uint32(ProcDataSeg(1))<<4 {
		t.Error("RingXAddr")
	}
}

func TestSchedulerProtectVariantDiffers(t *testing.T) {
	plain, err := BuildSchedulerOpts(SchedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := BuildSchedulerOpts(SchedOptions{ValidateDS: true, Protect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prot.Prog.Code) <= len(plain.Prog.Code) {
		t.Error("protect variant should add code")
	}
	if !prot.Opts.Protect || plain.Opts.Protect {
		t.Error("options not recorded")
	}
}
