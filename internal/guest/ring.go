package guest

import (
	"fmt"

	"ssos/internal/asm"
)

// Token-ring workload: Dijkstra's K-state mutual-exclusion ring — the
// founding self-stabilizing algorithm ([9] in the paper) — running as
// scheduled processes above the Figures 2-5 scheduler. This realizes
// the paper's composition argument (Section 1, citing [13]): once the
// processor stabilizes, the self-stabilizing OS stabilizes, and then
// the self-stabilizing application programs stabilize.
//
// Ring members are the scheduler's worker processes 0..RefresherIndex-1
// (the ROM refresher keeps its slot and keeps their code refreshed).
// Member i holds x_i at offset 0 of its data segment and a move counter
// at offset 2 (beaten to its port, so the standard heartbeat machinery
// observes progress). The root (member 0) increments modulo RingK when
// privileged (x_0 == x_last); every other member copies its
// predecessor when privileged (x_i != x_{i-1}).
//
// RingK is 8 >= 2n-1 for the 3-member ring, the bound under which the
// K-state algorithm stabilizes with read/write atomicity — which is
// exactly the atomicity the scheduler provides (a process can be
// preempted between reading its predecessor and writing its own
// variable).

// RingMembers is the number of token-ring processes.
const RingMembers = RefresherIndex

// RingK is the number of token states.
const RingK = 8

// RingXAddr returns the linear address of member i's x variable.
func RingXAddr(i int) uint32 { return uint32(ProcDataSeg(i)) << 4 }

// ringMemberSource builds the source of ring member i.
func ringMemberSource(i int) string {
	prev := (i + RingMembers - 1) % RingMembers
	header := fmt.Sprintf(`
MY_DATA   equ %#x
PREV_DATA equ %#x
MY_PORT   equ %#x
K_MASK    equ %d
%%pad on
`, ProcDataSeg(i), ProcDataSeg(prev), PortProc0+i, RingK-1)

	if i == 0 {
		// Root: privileged when x_0 == x_last; step: x_0 := x_0+1 mod K.
		return header + `
start:
	mov ax, PREV_DATA
	mov ds, ax
	mov ax, [0]
	mov bx, ax
	mov ax, MY_DATA
	mov ds, ax
	mov ax, [0]
	cmp ax, bx
	jne start
	inc ax
	and ax, K_MASK
	mov [0], ax
	mov ax, [2]
	inc ax
	mov [2], ax
	out MY_PORT, ax
	jmp start
`
	}
	// Member: privileged when x_i != x_{i-1}; step: x_i := x_{i-1}.
	return header + `
start:
	mov ax, PREV_DATA
	mov ds, ax
	mov ax, [0]
	mov bx, ax
	mov ax, MY_DATA
	mov ds, ax
	mov ax, [0]
	cmp ax, bx
	je start
	mov [0], bx
	mov ax, [2]
	inc ax
	mov [2], ax
	out MY_PORT, ax
	jmp start
`
}

// BuildRingProcesses assembles the token-ring workload: RingMembers
// ring processes plus the standard ROM refresher.
func BuildRingProcesses() (*ProcSet, error) {
	set := &ProcSet{}
	for i := 0; i < NumProcs; i++ {
		var src string
		if i == RefresherIndex {
			src = refresherSource()
		} else {
			src = ringMemberSource(i)
		}
		p, err := asm.Assemble(src)
		if err != nil {
			return nil, fmt.Errorf("ring process %d: %w", i, err)
		}
		img, err := FillRegion(p.Code, ProcRegionSize)
		if err != nil {
			return nil, fmt.Errorf("ring process %d: %w", i, err)
		}
		set.Progs[i] = p
		set.Images[i] = img
	}
	return set, nil
}
