package guest

import (
	"fmt"

	"ssos/internal/asm"
	"ssos/internal/machine"
)

// Handler is an assembled stabilizer ROM. The NMI entry is at offset 0
// (the hardwired NMI vector); boot and exception entries are labels
// within the same ROM.
type Handler struct {
	Prog *asm.Program
}

// NMIEntry returns the far pointer of the NMI handler.
func (h *Handler) NMIEntry() machine.SegOff {
	return machine.SegOff{Seg: HandlerROMSeg, Off: h.Prog.MustSymbol("nmi_entry")}
}

// BootEntry returns the far pointer of the reset/boot path.
func (h *Handler) BootEntry() machine.SegOff {
	return machine.SegOff{Seg: HandlerROMSeg, Off: h.Prog.MustSymbol("boot_entry")}
}

// ExcEntry returns the far pointer of the exception handler.
func (h *Handler) ExcEntry() machine.SegOff {
	return machine.SegOff{Seg: HandlerROMSeg, Off: h.Prog.MustSymbol("exc_entry")}
}

// figure1BodyFor renders the paper's Figure 1 watchdog/reinstall
// procedure, transcribed line for line (the line numbers in comments
// are the paper's), copying sizeSym bytes. Differences from the paper
// are mechanical: the segment constants come from this repository's
// memory map, and the stack is placed in its own segment with sp set
// so that the guest's steady state has ss:sp = STACK_SEG:STACK_INIT
// (the paper parks the stack at the top of the OS segment instead).
func figure1BodyFor(sizeSym string) string {
	return `
; copy OS image
	mov ax, OS_ROM_SEG   ;1
	mov ds, ax           ;2
	mov si, 0x00         ;3
	mov ax, OS_SEG       ;4
	mov es, ax           ;5
	mov di, 0x00         ;6
	mov cx, ` + sizeSym + `   ;7
	cld                  ;8
	rep movsb            ;9
; prepare for journey
	mov ax, STACK_SEG    ;10
	mov ss, ax           ;11
	mov sp, STACK_INIT   ;12
	push word 0x02       ;13 flag
	push word OS_SEG     ;14 cs
	push word 0x0        ;15 ip
	iret                 ;16
`
}

// figure1Body copies the built-in kernel image.
var figure1Body = figure1BodyFor("IMAGE_SIZE")

// sizedFigure1Body copies a caller-specified image size.
var sizedFigure1Body = figure1BodyFor("CUSTOM_IMAGE_SIZE")

// BuildReinstallHandler assembles the approach-1 stabilizer: every NMI
// (and every exception, and reset) reinstalls the full OS image —
// code AND data — from ROM and restarts execution at the OS's first
// instruction. Combined with the watchdog and the NMI-counter hardware
// this yields the paper's *weakly* self-stabilizing operating system
// (Theorem 3.4).
func BuildReinstallHandler() (*Handler, error) {
	return BuildReinstallHandlerSized(ImageSize)
}

// BuildReinstallHandlerSized assembles the approach-1 stabilizer for a
// guest image of the given size — the entry point for protecting
// user-supplied guests (core.NewCustom) whose images are not the
// built-in kernel's.
func BuildReinstallHandlerSized(imageSize int) (*Handler, error) {
	if imageSize <= 0 || imageSize > 0x10000 {
		return nil, fmt.Errorf("reinstall handler: image size %d out of range (1..65536)", imageSize)
	}
	src := prelude() + fmt.Sprintf(`
CUSTOM_IMAGE_SIZE equ %#x
`, imageSize) + `
nmi_entry:
boot_entry:
` + sizedFigure1Body + `
exc_entry:
	jmp nmi_entry
`
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("reinstall handler: %w", err)
	}
	return &Handler{Prog: p}, nil
}

// BuildContinueHandler assembles the approach-1 "re-install and
// continue execute" variant (Section 3): the NMI handler refreshes only
// the executable portion of the OS and then resumes execution exactly
// where it was interrupted, restoring every register it used. The boot
// and exception paths perform the full Figure 1 reinstall.
//
// As the paper notes, this variant is NOT fully self-stabilizing: it
// trusts the interrupted ss/sp and the soft state ("the soft state
// variables may be inconsistent, and therefore the system as a whole
// will not be in a consistent state"). Experiments demonstrate exactly
// that: it survives code corruption but not stack-register corruption.
func BuildContinueHandler() (*Handler, error) {
	src := prelude() + `
CODE_REGION equ DATA_OFF
nmi_entry:
	; save the registers the copy clobbers, relative to the current
	; (trusted!) stack segment
	mov word [ss:STACK_TOP-2], ax
	mov word [ss:STACK_TOP-4], ds
	mov word [ss:STACK_TOP-6], cx
	mov word [ss:STACK_TOP-8], si
	mov word [ss:STACK_TOP-10], di
	mov word [ss:STACK_TOP-12], es
	; refresh the executable portion only
	mov ax, OS_ROM_SEG
	mov ds, ax
	mov si, 0x00
	mov ax, OS_SEG
	mov es, ax
	mov di, 0x00
	mov cx, CODE_REGION
	cld
	rep movsb
	; restore and continue from where the OS was interrupted
	mov es, [ss:STACK_TOP-12]
	mov di, [ss:STACK_TOP-10]
	mov si, [ss:STACK_TOP-8]
	mov cx, [ss:STACK_TOP-6]
	mov ds, [ss:STACK_TOP-4]
	mov ax, [ss:STACK_TOP-2]
	iret

boot_entry:
` + figure1Body + `
exc_entry:
	jmp boot_entry
`
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("continue handler: %w", err)
	}
	return &Handler{Prog: p}, nil
}
