// Package mem implements the physical memory bus of the simulated
// machine: a 20-bit (1 MiB) linear address space holding RAM and
// write-protected ROM regions.
//
// ROM is the anchor of every design in the paper: the watchdog/
// reinstall procedure, the scheduler and the pristine OS image live in
// ROM and are assumed incorruptible ("the rom part of the memory is non
// volatile and its content is guaranteed to remain unchanged", Section
// 2). The bus enforces that: no store instruction and no fault
// injection can alter a ROM region. What happens to the *store* is
// configurable — real hardware silently ignores ROM writes, while the
// paper's tailored designs route such anomalies (e.g. a store through a
// corrupted ss) to an exception handler that reinstalls the OS.
//
// The bus additionally maintains two O(1) lookup structures that the
// simulator's hot paths depend on:
//
//   - a per-byte ROM membership bitmap, so InROM (consulted on every
//     store and every protection check) costs one word load instead of
//     a scan over the region list;
//   - per-page write-generation counters (PageSize-byte pages), bumped
//     by EVERY path that can alter memory contents — instruction
//     stores, test Pokes, fault-injection PokeRAMs, snapshot Restores
//     and ROM installation. The machine's predecoded instruction cache
//     validates entries against these counters, which is what keeps the
//     fast path sound from arbitrary configurations: no cached decode
//     can survive a write (or an injected bit-flip) to its backing
//     bytes, because any such write bumps the backing page's counter.
package mem

import (
	"fmt"
	"sort"
)

// AddrSpace is the size of the physical address space in bytes
// (20 address bits, as in real-mode Pentium).
const AddrSpace = 1 << 20

// AddrMask masks a linear address to the physical address space.
const AddrMask = AddrSpace - 1

// PageShift is the log2 of the write-generation page size.
const PageShift = 8

// PageSize is the granularity of write-generation tracking. Small
// enough that a store invalidates few cached decodes, large enough
// that the counter array stays cache-resident.
const PageSize = 1 << PageShift

// NumPages is the number of generation-tracked pages.
const NumPages = AddrSpace >> PageShift

// ROMWritePolicy selects what a store to a ROM address does.
type ROMWritePolicy uint8

const (
	// ROMWriteIgnore silently drops the store, as stock hardware does.
	ROMWriteIgnore ROMWritePolicy = iota
	// ROMWriteFault reports the store as a memory fault so the
	// processor can raise an exception (used by the tailored designs,
	// which turn anomalies into reinstall triggers).
	ROMWriteFault
)

// Region is a named address range.
type Region struct {
	Name  string
	Start uint32
	Size  uint32
}

// End returns the first address past the region.
func (r Region) End() uint32 { return r.Start + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Start && addr < r.End()
}

func (r Region) String() string {
	return fmt.Sprintf("%s [%05x..%05x)", r.Name, r.Start, r.End())
}

// Bus is the physical memory bus. The zero value is not usable; create
// one with NewBus.
type Bus struct {
	data   []byte
	roms   []Region
	policy ROMWritePolicy

	// romBits is the per-byte ROM membership bitmap (1 bit per
	// address). It makes InROM O(1); the region list is kept only for
	// reporting and RAM-range enumeration.
	romBits []uint64

	// gens holds one write-generation counter per PageSize-byte page.
	// Every mutation of data bumps the counter of each page it
	// touches. Consumers (the machine's decode cache) snapshot the
	// counters covering a cached range and treat any change as an
	// invalidation. 64-bit counters cannot realistically wrap.
	gens *[NumPages]uint64

	// stamp is the bus-wide write epoch: advanced at least once by every
	// mutation that bumps any page generation. It gives consumers that
	// validate multi-page spans (the machine's superblock engine) a
	// one-compare fast path: an unchanged stamp proves no byte anywhere
	// was written since the last full span validation, so the per-page
	// counters only need rechecking when the stamp moved.
	stamp uint64

	// ROMWriteCount counts stores that targeted ROM, regardless of
	// policy. Useful for detecting misbehaving guests in tests.
	ROMWriteCount uint64
}

// NewBus returns a bus with all RAM zeroed and no ROM regions.
func NewBus() *Bus {
	return &Bus{
		data:    make([]byte, AddrSpace),
		romBits: make([]uint64, AddrSpace/64),
		gens:    new([NumPages]uint64),
	}
}

// SetROMWritePolicy selects the behaviour of stores targeting ROM.
func (b *Bus) SetROMWritePolicy(p ROMWritePolicy) { b.policy = p }

// ROMWritePolicy returns the current policy for stores targeting ROM.
func (b *Bus) ROMWritePolicy() ROMWritePolicy { return b.policy }

// AddROM installs data as a write-protected region at start. It fails
// if the region is empty, exceeds the address space or overlaps an
// existing ROM region.
func (b *Bus) AddROM(name string, start uint32, data []byte) (Region, error) {
	r := Region{Name: name, Start: start & AddrMask, Size: uint32(len(data))}
	if len(data) == 0 {
		return Region{}, fmt.Errorf("mem: rom %q is empty", name)
	}
	if uint64(r.Start)+uint64(r.Size) > AddrSpace {
		return Region{}, fmt.Errorf("mem: rom %q exceeds address space: %v", name, r)
	}
	for _, other := range b.roms {
		if r.Start < other.End() && other.Start < r.End() {
			return Region{}, fmt.Errorf("mem: rom %q overlaps %v", name, other)
		}
	}
	copy(b.data[r.Start:r.End()], data)
	for a := r.Start; a < r.End(); a++ {
		b.romBits[a>>6] |= 1 << (a & 63)
	}
	b.bumpRange(r.Start, r.End())
	b.roms = append(b.roms, r)
	sort.Slice(b.roms, func(i, j int) bool { return b.roms[i].Start < b.roms[j].Start })
	return r, nil
}

// ROMs returns the installed ROM regions in address order.
func (b *Bus) ROMs() []Region {
	out := make([]Region, len(b.roms))
	copy(out, b.roms)
	return out
}

// InROM reports whether addr falls inside a ROM region.
func (b *Bus) InROM(addr uint32) bool {
	addr &= AddrMask
	return b.romBits[addr>>6]&(1<<(addr&63)) != 0
}

// PageGen returns the write-generation counter of the page containing
// addr. Two equal readings bracket an interval during which the page's
// bytes were provably not written.
func (b *Bus) PageGen(addr uint32) uint64 {
	return b.gens[(addr&AddrMask)>>PageShift]
}

// PageGens exposes the write-generation counter array itself, indexed
// by page number (linear address >> PageShift). Callers must treat it
// as read-only; the machine's fetch fast path holds on to it so a
// cache probe costs two array loads instead of two method calls. The
// array is allocated once per bus and never replaced, so a cached
// pointer stays valid for the bus's lifetime.
func (b *Bus) PageGens() *[NumPages]uint64 { return b.gens }

// WriteStamp exposes the bus-wide write epoch counter. Callers must
// treat it as read-only; like PageGens it is handed out as a pointer so
// the machine's superblock fast path pays one load per step instead of
// a method call, and it stays valid for the bus's lifetime.
func (b *Bus) WriteStamp() *uint64 { return &b.stamp }

// bumpRange advances the generation of every page overlapping
// [start, end).
func (b *Bus) bumpRange(start, end uint32) {
	for p := start >> PageShift; p <= (end-1)>>PageShift; p++ {
		b.gens[p]++
	}
	b.stamp++
}

// bumpAll advances every page generation (full-memory mutation).
func (b *Bus) bumpAll() {
	for i := range b.gens {
		b.gens[i]++
	}
	b.stamp++
}

// LoadByte returns the byte at addr.
func (b *Bus) LoadByte(addr uint32) byte {
	return b.data[addr&AddrMask]
}

// StoreByte stores v at addr. It returns false when the store targeted
// ROM and the policy is ROMWriteFault; the store never alters ROM
// either way.
func (b *Bus) StoreByte(addr uint32, v byte) bool {
	addr &= AddrMask
	if b.romBits[addr>>6]&(1<<(addr&63)) != 0 {
		b.ROMWriteCount++
		return b.policy == ROMWriteIgnore
	}
	b.data[addr] = v
	b.gens[addr>>PageShift]++
	b.stamp++
	return true
}

// LoadWord returns the little-endian 16-bit word at addr. The two bytes
// are read at addr and addr+1 (mod address space), matching byte-wise
// access.
func (b *Bus) LoadWord(addr uint32) uint16 {
	a0 := addr & AddrMask
	if a0 < AddrMask {
		return uint16(b.data[a0]) | uint16(b.data[a0+1])<<8
	}
	return uint16(b.data[a0]) | uint16(b.data[0])<<8
}

// StoreWord stores the little-endian 16-bit word v at addr, reporting
// whether both byte stores succeeded.
//
// When neither byte lands in ROM (the overwhelmingly common case) the
// word commits with a single fused check. When either byte targets ROM
// the store degrades to the byte-wise path, preserving the
// long-standing straddle semantics: a word straddling a RAM→ROM
// boundary under ROMWriteFault half-commits — the RAM byte is written,
// the ROM byte is dropped, and the store reports failure. That partial
// write is exactly what byte-serial hardware does, and the paper's
// designs must stabilize from it like from any other corruption.
func (b *Bus) StoreWord(addr uint32, v uint16) bool {
	a0 := addr & AddrMask
	a1 := (addr + 1) & AddrMask
	if (b.romBits[a0>>6]&(1<<(a0&63)))|(b.romBits[a1>>6]&(1<<(a1&63))) == 0 {
		b.data[a0] = byte(v)
		b.data[a1] = byte(v >> 8)
		b.gens[a0>>PageShift]++
		if a1>>PageShift != a0>>PageShift {
			b.gens[a1>>PageShift]++
		}
		b.stamp++
		return true
	}
	ok1 := b.StoreByte(a0, byte(v))
	ok2 := b.StoreByte(a1, byte(v>>8))
	return ok1 && ok2
}

// Poke writes v at addr bypassing ROM protection. It models agents
// outside the instruction stream (initial-state setup in tests); fault
// injection must use PokeRAM instead, since transient faults cannot
// alter ROM.
func (b *Bus) Poke(addr uint32, v byte) {
	addr &= AddrMask
	b.data[addr] = v
	b.gens[addr>>PageShift]++
	b.stamp++
}

// PokeRAM writes v at addr unless addr is in ROM; it reports whether
// the write happened. This is the fault-injection entry point: soft
// errors flip RAM and register bits but never ROM.
func (b *Bus) PokeRAM(addr uint32, v byte) bool {
	addr &= AddrMask
	if b.romBits[addr>>6]&(1<<(addr&63)) != 0 {
		return false
	}
	b.data[addr] = v
	b.gens[addr>>PageShift]++
	b.stamp++
	return true
}

// Peek reads addr without any side effects (same as LoadByte; provided
// for symmetry with Poke).
func (b *Bus) Peek(addr uint32) byte { return b.data[addr&AddrMask] }

// View returns a read-only window over [addr, addr+n), which must not
// wrap the address space (addr+n <= AddrSpace). Callers must not write
// through the slice and must not retain it across bus mutations; it
// exists so the fetch fast path can decode straight from backing
// memory without a copy.
func (b *Bus) View(addr, n uint32) []byte { return b.data[addr : addr+n] }

// CopyOut copies length bytes starting at addr into a new slice.
func (b *Bus) CopyOut(addr, length uint32) []byte {
	out := make([]byte, length)
	addr &= AddrMask
	if uint64(addr)+uint64(length) <= AddrSpace {
		copy(out, b.data[addr:addr+length])
		return out
	}
	// The range wraps the top of the address space: copy the tail,
	// then keep copying from the bottom (possibly multiple times for
	// lengths beyond AddrSpace, matching the modular byte-wise reads).
	n := copy(out, b.data[addr:])
	for n < len(out) {
		n += copy(out[n:], b.data)
	}
	return out
}

// RAMRegions returns the maximal address ranges not covered by ROM, in
// address order. Fault injectors draw target addresses from these.
func (b *Bus) RAMRegions() []Region {
	var out []Region
	next := uint32(0)
	for _, r := range b.roms {
		if r.Start > next {
			out = append(out, Region{Name: "ram", Start: next, Size: r.Start - next})
		}
		if r.End() > next {
			next = r.End()
		}
	}
	if next < AddrSpace {
		out = append(out, Region{Name: "ram", Start: next, Size: AddrSpace - next})
	}
	return out
}

// RAMSize returns the total number of RAM (non-ROM) bytes.
func (b *Bus) RAMSize() uint32 {
	var n uint32
	for _, r := range b.RAMRegions() {
		n += r.Size
	}
	return n
}

// RAMAddr maps an index in [0, RAMSize()) to the linear address of the
// i'th RAM byte. It lets fault injectors choose uniformly among RAM
// bytes without rejection sampling.
func (b *Bus) RAMAddr(i uint32) uint32 {
	for _, r := range b.RAMRegions() {
		if i < r.Size {
			return r.Start + i
		}
		i -= r.Size
	}
	return AddrMask // unreachable for in-range i
}

// Snapshot returns a copy of the full address space contents.
func (b *Bus) Snapshot() []byte {
	out := make([]byte, AddrSpace)
	copy(out, b.data)
	return out
}

// Restore overwrites the full address space (including ROM images —
// the regions stay registered) from a snapshot taken with Snapshot.
func (b *Bus) Restore(snap []byte) error {
	if len(snap) != AddrSpace {
		return fmt.Errorf("mem: snapshot length %d, want %d", len(snap), AddrSpace)
	}
	copy(b.data, snap)
	b.bumpAll()
	return nil
}
