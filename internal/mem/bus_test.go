package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadStoreByte(t *testing.T) {
	b := NewBus()
	if !b.StoreByte(0x1234, 0xAB) {
		t.Fatal("write failed")
	}
	if got := b.LoadByte(0x1234); got != 0xAB {
		t.Fatalf("read = %#x, want 0xAB", got)
	}
}

func TestAddressWrapping(t *testing.T) {
	b := NewBus()
	b.StoreByte(AddrSpace+5, 0x42) // wraps to 5
	if got := b.LoadByte(5); got != 0x42 {
		t.Fatalf("wrapped read = %#x, want 0x42", got)
	}
}

func TestWordLittleEndian(t *testing.T) {
	b := NewBus()
	b.StoreWord(0x100, 0xBEEF)
	if b.LoadByte(0x100) != 0xEF || b.LoadByte(0x101) != 0xBE {
		t.Fatal("word not little-endian")
	}
	if got := b.LoadWord(0x100); got != 0xBEEF {
		t.Fatalf("LoadWord = %#x", got)
	}
}

func TestWordWrapsAtTop(t *testing.T) {
	b := NewBus()
	b.StoreWord(AddrMask, 0x1234)
	if b.LoadByte(AddrMask) != 0x34 || b.LoadByte(0) != 0x12 {
		t.Fatal("word at top of memory should wrap")
	}
	if got := b.LoadWord(AddrMask); got != 0x1234 {
		t.Fatalf("LoadWord wrap = %#x", got)
	}
}

func TestROMProtection(t *testing.T) {
	b := NewBus()
	rom := []byte{1, 2, 3, 4}
	r, err := b.AddROM("bios", 0xF0000, rom)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(0xF0002) || r.Contains(0xF0004) {
		t.Fatal("region bounds wrong")
	}

	// Ignore policy: write reports ok but ROM unchanged.
	b.SetROMWritePolicy(ROMWriteIgnore)
	if !b.StoreByte(0xF0001, 0xFF) {
		t.Fatal("ignore policy should report ok")
	}
	if b.LoadByte(0xF0001) != 2 {
		t.Fatal("ROM was modified")
	}

	// Fault policy: write reports failure, ROM unchanged.
	b.SetROMWritePolicy(ROMWriteFault)
	if b.StoreByte(0xF0001, 0xFF) {
		t.Fatal("fault policy should report failure")
	}
	if b.LoadByte(0xF0001) != 2 {
		t.Fatal("ROM was modified under fault policy")
	}
	if b.ROMWriteCount != 2 {
		t.Fatalf("ROMWriteCount = %d, want 2", b.ROMWriteCount)
	}

	// PokeRAM must refuse ROM addresses.
	if b.PokeRAM(0xF0000, 9) {
		t.Fatal("PokeRAM wrote to ROM")
	}
	// Poke bypasses protection (test setup only).
	b.Poke(0xF0000, 9)
	if b.LoadByte(0xF0000) != 9 {
		t.Fatal("Poke did not write")
	}
}

func TestAddROMErrors(t *testing.T) {
	b := NewBus()
	if _, err := b.AddROM("empty", 0, nil); err == nil {
		t.Error("empty ROM accepted")
	}
	if _, err := b.AddROM("huge", AddrSpace-2, make([]byte, 4)); err == nil {
		t.Error("out-of-range ROM accepted")
	}
	if _, err := b.AddROM("a", 0x1000, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddROM("b", 0x1008, make([]byte, 16)); err == nil {
		t.Error("overlapping ROM accepted")
	}
}

func TestRAMRegions(t *testing.T) {
	b := NewBus()
	if n := b.RAMSize(); n != AddrSpace {
		t.Fatalf("RAMSize = %d, want full space", n)
	}
	if _, err := b.AddROM("lo", 0x0000, make([]byte, 0x400)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddROM("hi", 0xF0000, make([]byte, 0x10000)); err != nil {
		t.Fatal(err)
	}
	regs := b.RAMRegions()
	if len(regs) != 1 {
		t.Fatalf("RAMRegions = %v", regs)
	}
	if regs[0].Start != 0x400 || regs[0].End() != 0xF0000 {
		t.Fatalf("RAM region = %v", regs[0])
	}
	if got, want := b.RAMSize(), uint32(0xF0000-0x400); got != want {
		t.Fatalf("RAMSize = %#x, want %#x", got, want)
	}
}

func TestRAMAddrCoversExactlyRAM(t *testing.T) {
	b := NewBus()
	if _, err := b.AddROM("mid", 0x8000, make([]byte, 0x100)); err != nil {
		t.Fatal(err)
	}
	// Every index maps to a RAM (non-ROM) address; boundary indices map
	// around the ROM hole.
	if a := b.RAMAddr(0x7FFF); a != 0x7FFF {
		t.Fatalf("RAMAddr(0x7FFF) = %#x", a)
	}
	if a := b.RAMAddr(0x8000); a != 0x8100 {
		t.Fatalf("RAMAddr(0x8000) = %#x", a)
	}
	f := func(i uint32) bool {
		return !b.InROM(b.RAMAddr(i % b.RAMSize()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	b := NewBus()
	if _, err := b.AddROM("r", 0x100, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	b.StoreByte(0x50, 0x11)
	snap := b.Snapshot()
	b.StoreByte(0x50, 0x22)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b.LoadByte(0x50) != 0x11 {
		t.Fatal("restore did not bring back RAM")
	}
	if b.LoadByte(0x100) != 9 {
		t.Fatal("restore lost ROM image")
	}
	if err := b.Restore([]byte{1}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestCopyOut(t *testing.T) {
	b := NewBus()
	b.StoreByte(AddrMask, 1)
	b.StoreByte(0, 2)
	got := b.CopyOut(AddrMask, 2) // wraps
	if !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("CopyOut = %v", got)
	}
}

func TestROMWritesNeverAlterROMProperty(t *testing.T) {
	b := NewBus()
	img := make([]byte, 256)
	for i := range img {
		img[i] = byte(i)
	}
	if _, err := b.AddROM("rom", 0x2000, img); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, v byte, fault bool) bool {
		if fault {
			b.SetROMWritePolicy(ROMWriteFault)
		} else {
			b.SetROMWritePolicy(ROMWriteIgnore)
		}
		addr := 0x2000 + off%256
		b.StoreByte(addr, v)
		b.PokeRAM(addr, v)
		return b.LoadByte(addr) == byte(addr-0x2000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCopyOutMultiWrap(t *testing.T) {
	b := NewBus()
	b.StoreByte(0, 7)
	b.StoreByte(AddrMask, 8)
	// Longer than the whole address space: the modular byte-wise
	// semantics repeat the image.
	got := b.CopyOut(AddrMask, AddrSpace+2)
	if got[0] != 8 || got[1] != 7 {
		t.Fatalf("head = %v", got[:2])
	}
	if got[AddrSpace] != 8 || got[AddrSpace+1] != 7 {
		t.Fatalf("wrapped tail = %v", got[AddrSpace:])
	}
	if got[1+0x40] != b.LoadByte(0x40) {
		t.Fatal("interior byte mismatch")
	}
}

// TestStoreWordStraddlesIntoROM pins the byte-wise semantics of a word
// store whose low byte is RAM and high byte is ROM: under every policy
// the RAM byte commits and the ROM byte is dropped. Under
// ROMWriteFault the store reports failure; under ROMWriteIgnore it
// reports success, exactly as two sequential StoreByte calls would.
// The fused fast path must preserve this.
func TestStoreWordStraddlesIntoROM(t *testing.T) {
	for _, policy := range []ROMWritePolicy{ROMWriteIgnore, ROMWriteFault} {
		b := NewBus()
		b.SetROMWritePolicy(policy)
		if _, err := b.AddROM("rom", 0x2000, []byte{0xEE}); err != nil {
			t.Fatal(err)
		}
		before := b.ROMWriteCount
		ok := b.StoreWord(0x1FFF, 0xBBAA)
		if want := policy == ROMWriteIgnore; ok != want {
			t.Fatalf("policy %v: StoreWord ok = %v, want %v", policy, ok, want)
		}
		if b.LoadByte(0x1FFF) != 0xAA {
			t.Fatalf("policy %v: RAM half did not commit", policy)
		}
		if b.LoadByte(0x2000) != 0xEE {
			t.Fatalf("policy %v: ROM half changed", policy)
		}
		if b.ROMWriteCount != before+1 {
			t.Fatalf("policy %v: ROMWriteCount = %d, want %d", policy, b.ROMWriteCount, before+1)
		}
	}
}

// TestPageGenerations pins the invalidation contract the decode cache
// depends on: every mutation path bumps the written page's generation,
// reads never do, and blocked ROM writes leave generations alone.
func TestPageGenerations(t *testing.T) {
	b := NewBus()
	if _, err := b.AddROM("rom", 0x2000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	gen := func(addr uint32) uint64 { return b.PageGen(addr) }

	g := gen(0x50)
	b.StoreByte(0x50, 1)
	if gen(0x50) != g+1 {
		t.Fatal("StoreByte did not bump the page generation")
	}
	b.LoadByte(0x50)
	b.LoadWord(0x50)
	b.Peek(0x50)
	b.CopyOut(0x50, 4)
	if gen(0x50) != g+1 {
		t.Fatal("a read path bumped the page generation")
	}

	// A word store straddling a page boundary bumps both pages.
	g0, g1 := gen(PageSize-1), gen(PageSize)
	b.StoreWord(PageSize-1, 0xFFFF)
	if gen(PageSize-1) != g0+1 || gen(PageSize) != g1+1 {
		t.Fatal("straddling StoreWord did not bump both pages")
	}

	g = gen(0x60)
	b.Poke(0x60, 9)
	if gen(0x60) != g+1 {
		t.Fatal("Poke did not bump the page generation")
	}
	g = gen(0x70)
	b.PokeRAM(0x70, 9)
	if gen(0x70) != g+1 {
		t.Fatal("PokeRAM did not bump the page generation")
	}

	// Blocked writes to ROM must not bump (nothing changed) — and a
	// PokeRAM refused on ROM must not either.
	g = gen(0x2000)
	b.StoreByte(0x2000, 0xFF)
	b.PokeRAM(0x2000, 0xFF)
	if gen(0x2000) != g {
		t.Fatal("blocked ROM write bumped the page generation")
	}

	// Restore invalidates everything.
	snap := b.Snapshot()
	gBefore := gen(0x90000)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if gen(0x90000) == gBefore {
		t.Fatal("Restore did not bump generations")
	}

	// AddROM invalidates the covered pages.
	g = gen(0x3000)
	if _, err := b.AddROM("rom2", 0x3000, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if gen(0x3000) == g {
		t.Fatal("AddROM did not bump the covered page generation")
	}
}

// TestInROMMatchesRegions cross-checks the O(1) membership bitmap
// against the region list it is derived from.
func TestInROMMatchesRegions(t *testing.T) {
	b := NewBus()
	if _, err := b.AddROM("a", 0x100, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddROM("b", 0xFFFFE, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		addr uint32
		want bool
	}{
		{0x0FF, false}, {0x100, true}, {0x102, true}, {0x103, false},
		{0xFFFFD, false}, {0xFFFFE, true}, {0xFFFFF, true}, {0, false},
		{AddrSpace + 0x100, true}, // wraps to 0x100
	} {
		if got := b.InROM(tc.addr); got != tc.want {
			t.Errorf("InROM(%#x) = %v, want %v", tc.addr, got, tc.want)
		}
	}
}
