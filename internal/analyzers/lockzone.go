package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockzone enforces the mutex discipline of the concurrent state in
// internal/obs and internal/serve: a struct field annotated
//
//	//ssos:guarded-by <mu>
//
// (where <mu> names a sibling mutex field) may only be read or written
// while the owning mutex is held. A function that is documented to run
// under a lock declares it:
//
//	//ssos:locked <mu>        the receiver's <mu> is held on entry
//
// Holding is tracked in source order within each function body: a
// `x.mu.Lock()` (or RLock) call puts x.mu into the held set until the
// matching source-order `x.mu.Unlock()`; a deferred Unlock holds to
// the end. Nested blocks (if/for/switch/select bodies) run on a copy
// of the held set: a branch that terminates (ends in return, break or
// continue — the `if closed { mu.Unlock(); return }` bail-out) leaves
// the outer set untouched, a branch that falls through keeps only the
// locks held on every path (set intersection). One exemption keeps
// the rule practical: accesses through a local variable freshly
// initialized from a composite literal (the object is not yet shared,
// e.g. `s := &Subscriber{...}` during construction). Goroutine and
// closure bodies are skipped — a closure touching guarded state must
// be refactored into a named method to be checked (documented in
// DESIGN.md).
var Lockzone = &Analyzer{
	Name:    "lockzone",
	Doc:     "fields annotated ssos:guarded-by may only be accessed under the owning mutex",
	Applies: pathSuffix("internal/obs", "internal/serve"),
	Run:     runLockzone,
}

const (
	guardedByMark = "ssos:guarded-by"
	lockedMark    = "ssos:locked"
)

// markArg extracts the argument of an annotation like
// "//ssos:guarded-by mu" from a comment group, if present.
func markArg(doc *ast.CommentGroup, mark string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if rest, ok := strings.CutPrefix(text, mark); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

func runLockzone(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	// Pass 1: guarded fields, keyed by field object.
	guards := map[*types.Var]string{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				mu, ok := markArg(f.Doc, guardedByMark)
				if !ok {
					mu, ok = markArg(f.Comment, guardedByMark)
				}
				if !ok {
					continue
				}
				for _, name := range f.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	// Pass 2: per-function source-order lock tracking.
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockzoneFunc(pkg, fd, guards, report)
		}
	}
}

// exprKey renders a lock-owner expression as a stable key ("s", "r.sub",
// ...). Only chains of identifiers and field selections are
// representable; anything else yields "".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	}
	return ""
}

// lockCall matches `<owner>.<field>.Lock()` (and RLock/Unlock/RUnlock),
// returning the held-set key "<owner>.<field>".
func lockCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, sel.Sel.Name, true
}

// lzCtx carries the per-function lockzone state: the guarded-field
// table, the fresh-local set, and the reporter.
type lzCtx struct {
	pkg    *Package
	guards map[*types.Var]string
	fresh  map[types.Object]bool
	report func(pos token.Pos, format string, args ...any)
}

func checkLockzoneFunc(pkg *Package, fd *ast.FuncDecl, guards map[*types.Var]string, report func(pos token.Pos, format string, args ...any)) {
	held := map[string]bool{}

	// The //ssos:locked annotation pre-holds the receiver's mutex (or a
	// dotted key verbatim).
	if mu, ok := markArg(fd.Doc, lockedMark); ok {
		if strings.Contains(mu, ".") {
			held[mu] = true
		} else if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			held[fd.Recv.List[0].Names[0].Name+"."+mu] = true
		}
	}

	c := &lzCtx{pkg: pkg, guards: guards, fresh: map[types.Object]bool{}, report: report}
	c.stmts(fd.Body.List, held)
}

func cloneHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// intersectHeld drops from held every lock not also in branch: after a
// branch that may or may not have run, only locks held on both paths
// are certain.
func intersectHeld(held, branch map[string]bool) {
	for k := range held {
		if !branch[k] {
			delete(held, k)
		}
	}
}

// terminates reports whether a statement list certainly transfers
// control out (return, break, continue, goto, panic-free analysis is
// not attempted).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// branch walks a nested statement list on a clone of held and folds
// the result back: a terminating branch contributes nothing, a
// fall-through branch intersects.
func (c *lzCtx) branch(list []ast.Stmt, held map[string]bool) {
	clone := cloneHeld(held)
	c.stmts(list, clone)
	if !terminates(list) {
		intersectHeld(held, clone)
	}
}

// stmts walks a statement list in source order, mutating held.
func (c *lzCtx) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func (c *lzCtx) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.expr(s.X, held)
	case *ast.AssignStmt:
		c.markFresh(s)
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						if i < len(vs.Names) && isCompositeInit(v) {
							if obj := c.pkg.Info.Defs[vs.Names[i]]; obj != nil {
								c.fresh[obj] = true
							}
						}
						c.expr(v, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: the lock stays held for
		// the rest of the body, so a deferred lock call has no source-
		// order effect. Other deferred work is out of scope.
	case *ast.GoStmt:
		// The goroutine body runs elsewhere with its own lock state;
		// out of scope (documented).
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		c.branch(s.Body.List, held)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			c.branch(e.List, held)
		case *ast.IfStmt:
			c.branch([]ast.Stmt{e}, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.expr(s.Cond, held)
		}
		body := s.Body.List
		if s.Post != nil {
			body = append(append([]ast.Stmt(nil), body...), s.Post)
		}
		c.branch(body, held)
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.branch(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.expr(e, held)
				}
				c.branch(cl.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.branch(cl.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				if cl.Comm != nil {
					c.stmt(cl.Comm, held)
				}
				c.branch(cl.Body, held)
			}
		}
	case *ast.BlockStmt:
		c.stmts(s.List, held)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, held)
	case *ast.SendStmt:
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	}
}

// markFresh records locals initialized from composite literals.
func (c *lzCtx) markFresh(n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		if !isCompositeInit(rhs) {
			continue
		}
		if id, ok := n.Lhs[i].(*ast.Ident); ok {
			if obj := c.pkg.Info.Defs[id]; obj != nil {
				c.fresh[obj] = true
			} else if obj := c.pkg.Info.Uses[id]; obj != nil {
				c.fresh[obj] = true
			}
		}
	}
}

func isCompositeInit(rhs ast.Expr) bool {
	e := ast.Unparen(rhs)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

// expr inspects one expression under the current held set: lock calls
// apply their effect, guarded field accesses are checked, closure
// bodies are skipped.
func (c *lzCtx) expr(e ast.Expr, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs with its own lock state; out of scope
		case *ast.CallExpr:
			if key, method, ok := lockCall(n); ok {
				switch method {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
			}
		case *ast.SelectorExpr:
			c.checkAccess(n, held)
		}
		return true
	})
}

// checkAccess reports a guarded field access outside its lock.
func (c *lzCtx) checkAccess(n *ast.SelectorExpr, held map[string]bool) {
	sel, ok := c.pkg.Info.Selections[n]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	fieldObj, ok := sel.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, guarded := c.guards[fieldObj]
	if !guarded {
		return
	}
	owner := exprKey(n.X)
	if owner == "" {
		c.report(n.Pos(), "guarded field %s accessed through an untrackable expression", n.Sel.Name)
		return
	}
	if held[owner+"."+mu] {
		return
	}
	if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
		if obj := c.pkg.Info.Uses[id]; obj != nil && c.fresh[obj] {
			return
		}
	}
	c.report(n.Pos(), "field %s.%s is guarded by %s.%s but accessed without holding it", owner, n.Sel.Name, owner, mu)
}
