// Package analyzers implements the repository's static soundness
// checks as a small go/analysis-style suite over the standard library's
// go/ast and go/types (the repo builds with zero external dependencies,
// so the x/tools analysis driver is re-implemented minimally here).
//
// The analyzers encode contracts that otherwise live only in prose:
//
//   - genbump: every mem.Bus mutation path bumps a page-generation
//     counter (the decode cache's soundness precondition).
//   - detmap: no raw map iteration feeding digests, voters or JSON
//     exporters in the deterministic result paths.
//   - probenil: observability probes are nil-checked before every Emit
//     (the "zero cost when disabled" contract).
//   - nodeterm: no wall-clock or global-rng calls inside the
//     deterministic simulation packages.
//   - noalloc (global): functions reachable from the step-loop hot
//     paths (`//ssos:hotpath` roots) must not allocate.
//   - lockzone: struct fields annotated `//ssos:guarded-by <mu>` may
//     only be touched under the owning mutex or via atomics.
//
// cmd/ssos-lint is the CLI driver; cmd/ssos-verify runs the same suite
// as part of its report.
package analyzers

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzer is one static check.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the analyzer checks the given import
	// path; nil means every package.
	Applies func(pkgPath string) bool
	// Run inspects one type-checked package, reporting findings.
	Run func(pkg *Package, report func(pos token.Pos, format string, args ...any))
}

// GlobalAnalyzer is a static check over the whole load set at once,
// for contracts that cross package boundaries (the noalloc call-graph
// closure). All packages from one Loader share a token.FileSet, so
// positions resolve through any member package.
type GlobalAnalyzer struct {
	Name string
	Doc  string
	// Run inspects every loaded package together, reporting findings.
	Run func(pkgs []*Package, report func(pos token.Pos, format string, args ...any))
}

// All returns the per-package analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Genbump, Detmap, Probenil, Nodeterm, Lockzone}
}

// AllGlobal returns the whole-program analyzer suite.
func AllGlobal() []*GlobalAnalyzer {
	return []*GlobalAnalyzer{Noalloc}
}

// Run applies the analyzers to the packages and returns the findings
// sorted by file position. The result is deterministic: packages are
// visited in the given order, analyzers in suite order, and the final
// sort breaks ties on analyzer name and message.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			a := a
			pkg := pkg
			a.Run(pkg, func(pos token.Pos, format string, args ...any) {
				out = append(out, Diagnostic{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(pos),
					Message:  fmt.Sprintf(format, args...),
				})
			})
		}
	}
	Sort(out)
	return out
}

// RunGlobal applies the whole-program analyzers to the load set and
// returns the findings sorted by file position.
func RunGlobal(pkgs []*Package, analyzers []*GlobalAnalyzer) []Diagnostic {
	if len(pkgs) == 0 {
		return nil
	}
	fset := pkgs[0].Fset
	var out []Diagnostic
	for _, a := range analyzers {
		a := a
		a.Run(pkgs, func(pos token.Pos, format string, args ...any) {
			out = append(out, Diagnostic{
				Analyzer: a.Name,
				Position: fset.Position(pos),
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}
	Sort(out)
	return out
}

// Sort orders diagnostics by (file, offset, analyzer, message) — the
// deterministic presentation order every driver uses.
func Sort(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Offset != b.Position.Offset {
			return a.Position.Offset < b.Position.Offset
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathSuffix builds an Applies predicate matching any of the given
// import-path suffixes.
func pathSuffix(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, s) {
				return true
			}
		}
		return false
	}
}
