package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
)

// Genbump enforces the decode cache's soundness precondition inside
// internal/mem: every Bus method that mutates backing memory — an
// assignment through b.data, or a copy() whose destination is b.data —
// must bump a page generation, either directly (touching b.gens) or by
// calling, transitively, a sibling method that does. A mutation path
// that skips the bump would let machine.Machine replay stale predecoded
// instructions (see internal/machine/cache.go).
//
// The superblock engine adds a second precondition (the stamp rule):
// every method that bumps a page generation directly must also advance
// the bus-wide write stamp, directly or via a sibling in the
// stamp-advancing closure. The fast path in internal/machine/superblock
// proves "no byte changed anywhere" from an unchanged stamp alone, so a
// gens bump the stamp misses would let a built block replay over
// modified code.
var Genbump = &Analyzer{
	Name:    "genbump",
	Doc:     "mem.Bus mutations must bump page generations and the write stamp",
	Applies: pathSuffix("internal/mem"),
	Run:     runGenbump,
}

func runGenbump(pkg *Package, report func(token.Pos, string, ...any)) {
	// Collect Bus methods with their receiver names.
	type method struct {
		decl *ast.FuncDecl
		recv string
	}
	methods := map[string]method{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
				continue
			}
			if receiverTypeName(fn.Recv.List[0].Type) != "Bus" {
				continue
			}
			recv := ""
			if names := fn.Recv.List[0].Names; len(names) == 1 {
				recv = names[0].Name
			}
			methods[fn.Name.Name] = method{decl: fn, recv: recv}
		}
	}

	// Seed: methods that write the gens counters (or the write stamp)
	// directly. gensAt remembers where each method first touches gens,
	// for the stamp-rule report.
	bumps := map[string]bool{}
	stamps := map[string]bool{}
	gensAt := map[string]ast.Node{}
	calls := map[string][]string{}
	for name, m := range methods {
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.IncDecStmt:
				if mentionsField(st.X, m.recv, "gens") {
					bumps[name] = true
					if gensAt[name] == nil {
						gensAt[name] = st
					}
				}
				if mentionsField(st.X, m.recv, "stamp") {
					stamps[name] = true
				}
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if mentionsField(lhs, m.recv, "gens") {
						bumps[name] = true
						if gensAt[name] == nil {
							gensAt[name] = st
						}
					}
					if mentionsField(lhs, m.recv, "stamp") {
						stamps[name] = true
					}
				}
			case *ast.CallExpr:
				if sel, ok := st.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == m.recv {
						if _, sibling := methods[sel.Sel.Name]; sibling {
							calls[name] = append(calls[name], sel.Sel.Name)
						}
					}
				}
			}
			return true
		})
	}

	// Close over receiver calls: calling a bumping method bumps, and
	// calling a stamp-advancing method advances the stamp.
	for _, set := range []map[string]bool{bumps, stamps} {
		for changed := true; changed; {
			changed = false
			for name := range methods {
				if set[name] {
					continue
				}
				for _, callee := range calls[name] {
					if set[callee] {
						set[name] = true
						changed = true
						break
					}
				}
			}
		}
	}

	// Stamp rule: a direct gens bump must sit inside the stamp closure.
	// Sorted so finding order never depends on map iteration.
	gensNames := make([]string, 0, len(gensAt))
	for name := range gensAt {
		gensNames = append(gensNames, name)
	}
	sort.Strings(gensNames)
	for _, name := range gensNames {
		if !stamps[name] {
			report(gensAt[name].Pos(), "Bus.%s bumps %s.gens without advancing %s.stamp; superblock stamp validation would replay stale blocks", name, methods[name].recv, methods[name].recv)
		}
	}

	// Every method that mutates b.data must be in the bump closure.
	for name, m := range methods {
		var mutation ast.Node
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			if mutation != nil {
				return false
			}
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if idx, ok := lhs.(*ast.IndexExpr); ok && mentionsField(idx.X, m.recv, "data") {
						mutation = st
					}
				}
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
					if mentionsField(st.Args[0], m.recv, "data") {
						mutation = st
					}
				}
			}
			return true
		})
		if mutation != nil && !bumps[name] {
			report(mutation.Pos(), "Bus.%s mutates %s.data without bumping a page generation; stale decode-cache entries would survive", name, m.recv)
		}
	}
}

// receiverTypeName unwraps a method receiver type to its base name.
func receiverTypeName(t ast.Expr) string {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// mentionsField reports whether the expression contains a selector
// recv.field anywhere inside it (e.g. b.data, b.data[i:j], &b.gens[p]).
func mentionsField(e ast.Expr, recv, field string) bool {
	if recv == "" {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == field {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
