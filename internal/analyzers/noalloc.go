package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Noalloc proves the step-loop hot paths allocation-free: every
// function reachable from a `//ssos:hotpath` root (over the static
// cross-package call graph) must not contain an allocating construct.
// PR 4 and PR 9 bought the engine's ns/op by hand-removing allocations
// from the step loop; this analyzer keeps them out.
//
// Annotations (in doc comments):
//
//	//ssos:hotpath          root: the function (and everything it
//	                        statically references) is hot
//	//ssos:alloc-ok <why>   exemption: the function may allocate (a
//	                        cold slow path reachable from a hot one,
//	                        e.g. one-time block building); traversal
//	                        stops here
//
// Flagged constructs: slice/map composite literals and composite
// literals escaping through & (plain struct value literals are
// stack-bound), append, make, new, function literals (closures), map
// operations (index, range, delete), conversions to interface types
// (boxing), concrete arguments passed to interface parameters, and
// calls into packages outside the module (their allocation behaviour
// is not analyzable) except a small non-allocating allowlist.
//
// Known incompletenesses (documented in DESIGN.md): the call graph is
// static — calls through function values (the superblock dispatch
// table) and interface methods (Probe.Emit) are not traversed. The
// dispatch table is covered by annotating its init function as a root,
// which pulls every referenced executor into the closure; interface
// call targets must carry their own roots if they are hot.
var Noalloc = &GlobalAnalyzer{
	Name: "noalloc",
	Doc:  "functions reachable from //ssos:hotpath roots must not allocate",
	Run:  runNoalloc,
}

// noallocAllowedPkgs are non-module packages whose functions are known
// not to allocate.
var noallocAllowedPkgs = map[string]bool{
	"math/bits":   true,
	"sync/atomic": true,
}

const (
	hotpathMark = "ssos:hotpath"
	allocOKMark = "ssos:alloc-ok"
)

// funcInfo is one declared function in the load set.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
}

// hasMark reports whether a doc comment carries the given annotation.
func hasMark(doc *ast.CommentGroup, mark string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, mark) {
			return true
		}
	}
	return false
}

func runNoalloc(pkgs []*Package, report func(pos token.Pos, format string, args ...any)) {
	// Collect every declared function, keyed by its object (object
	// identity is stable across packages of one Loader).
	funcs := map[*types.Func]*funcInfo{}
	var roots []*types.Func
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				funcs[obj] = &funcInfo{pkg: pkg, decl: fd, obj: obj}
				if hasMark(fd.Doc, hotpathMark) {
					roots = append(roots, obj)
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	// Closure over static references: a call OR a mention of a declared
	// function inside a reachable body adds it (mentions cover dispatch
	// tables and function values built on the hot path). alloc-ok stops
	// traversal.
	reachable := map[*types.Func]bool{}
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		if reachable[obj] {
			continue
		}
		reachable[obj] = true
		fi := funcs[obj]
		if fi == nil || hasMark(fi.decl.Doc, allocOKMark) {
			continue
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := fi.pkg.Info.Uses[id].(*types.Func); ok {
				if _, declared := funcs[callee]; declared && !reachable[callee] {
					work = append(work, callee)
				}
			}
			return true
		})
	}

	// Report allocation constructs in every reachable, non-exempt body,
	// in deterministic order.
	var order []*funcInfo
	for obj := range reachable {
		if fi := funcs[obj]; fi != nil && !hasMark(fi.decl.Doc, allocOKMark) {
			order = append(order, fi)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].obj.FullName() < order[j].obj.FullName() })
	for _, fi := range order {
		checkNoallocBody(fi, funcs, report)
	}
}

// checkNoallocBody flags the allocating constructs in one hot function.
func checkNoallocBody(fi *funcInfo, funcs map[*types.Func]*funcInfo, report func(pos token.Pos, format string, args ...any)) {
	info := fi.pkg.Info
	name := fi.decl.Name.Name
	if fi.decl.Recv != nil {
		if recv := fi.obj.Type().(*types.Signature).Recv(); recv != nil {
			name = "(" + recv.Type().String() + ")." + name
		}
	}
	rep := func(pos token.Pos, format string, args ...any) {
		args = append([]any{name}, args...)
		report(pos, "hot path %s "+format, args...)
	}

	exprType := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	isInterface := func(t types.Type) bool {
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Interface)
		return ok
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := exprType(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				rep(n.Pos(), "allocates: slice literal")
			case *types.Map:
				rep(n.Pos(), "allocates: map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					rep(n.Pos(), "allocates: composite literal escapes through &")
				}
			}
		case *ast.FuncLit:
			rep(n.Pos(), "allocates: function literal (closure)")
			return false // the literal's body belongs to the closure finding
		case *ast.IndexExpr:
			if t := exprType(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					rep(n.Pos(), "uses a map operation: index")
				}
			}
		case *ast.RangeStmt:
			if t := exprType(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					rep(n.X.Pos(), "uses a map operation: range")
				}
			}
		case *ast.CallExpr:
			checkNoallocCall(fi, n, funcs, isInterface, exprType, rep)
		}
		return true
	})
}

// checkNoallocCall classifies one call expression on the hot path.
func checkNoallocCall(fi *funcInfo, call *ast.CallExpr, funcs map[*types.Func]*funcInfo,
	isInterface func(types.Type) bool, exprType func(ast.Expr) types.Type,
	rep func(pos token.Pos, format string, args ...any)) {
	info := fi.pkg.Info

	// Builtins and type conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				rep(call.Pos(), "allocates: append may grow its backing array")
			case "make":
				rep(call.Pos(), "allocates: make")
			case "new":
				rep(call.Pos(), "allocates: new")
			case "delete":
				rep(call.Pos(), "uses a map operation: delete")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): boxing when T is an interface.
		if isInterface(tv.Type) && len(call.Args) == 1 && !isInterface(exprType(call.Args[0])) {
			rep(call.Pos(), "allocates: conversion to interface type %s", tv.Type)
		}
		return
	}

	// Resolve the static callee, if any.
	var callee *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil {
		return // call through a function value: out of the static graph (documented)
	}
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil && isInterface(recv.Type()) {
		return // interface method: dynamic dispatch, out of the static graph (documented)
	}
	if pkg := callee.Pkg(); pkg != nil {
		if _, declared := funcs[callee]; !declared && !noallocAllowedPkgs[pkg.Path()] {
			// Module-internal but outside the load set: a partial run
			// (ssos-lint ./internal/machine) cannot traverse it, so it is
			// silently out of scope; a full ./... run has it declared.
			mod := fi.pkg.Module
			if mod != "" && (pkg.Path() == mod || strings.HasPrefix(pkg.Path(), mod+"/")) {
				return
			}
			rep(call.Pos(), "calls %s outside the module (allocation behaviour unknown)", callee.FullName())
			return
		}
	}
	// Concrete arguments boxed into interface parameters.
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if isInterface(pt) && !isInterface(exprType(arg)) {
			at := exprType(arg)
			if at == nil || types.Identical(at, types.Typ[types.UntypedNil]) {
				continue
			}
			rep(arg.Pos(), "allocates: %s argument boxed into interface parameter", at)
		}
	}
}
