package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detmap polices Go map iteration in the packages whose outputs must be
// bit-identical across runs and replicas: internal/cluster (digest
// voting), internal/obs (event export, episode folds, histogram
// quantiles), internal/expt (result tables) and internal/serve (the
// scrape endpoint's sample ordering). Go randomizes map iteration
// order, so a range over a map is only legal when its body is
// order-insensitive — every statement writes through a map index (or a
// blank), making the loop a pure key-indexed transfer. One further
// idiom is sanctioned: a loop that only collects the keys into a slice
// which the very next statement sorts (the standard sorted-iteration
// prologue). Anything else (appending values to a slice, summing into
// a scalar with floats, emitting events) must iterate a sorted key
// slice instead.
var Detmap = &Analyzer{
	Name:    "detmap",
	Doc:     "no order-sensitive map iteration in deterministic result paths",
	Applies: pathSuffix("internal/cluster", "internal/obs", "internal/expt", "internal/serve"),
	Run:     runDetmap,
}

func runDetmap(pkg *Package, report func(token.Pos, string, ...any)) {
	for _, f := range pkg.Files {
		next := nextStmt(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pkg, rs.Body) {
				return true
			}
			if obj := keyCollectTarget(pkg, rs); obj != nil && sortsSlice(pkg, next[rs], obj) {
				return true
			}
			report(rs.Pos(), "iteration order of map %s leaks into the result; iterate sorted keys instead", types.ExprString(rs.X))
			return true
		})
	}
}

// nextStmt maps every statement to its successor within its enclosing
// statement list (block, case or comm clause).
func nextStmt(f *ast.File) map[ast.Stmt]ast.Stmt {
	next := make(map[ast.Stmt]ast.Stmt)
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		}
		for i := 0; i+1 < len(list); i++ {
			next[list[i]] = list[i+1]
		}
		return true
	})
	return next
}

// keyCollectTarget recognizes the sorted-iteration prologue's loop
// half: a body that is exactly `keys = append(keys, k)` where k is the
// range key, and returns the collected slice's object (nil otherwise).
func keyCollectTarget(pkg *Package, rs *ast.RangeStmt) types.Object {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || len(rs.Body.List) != 1 {
		return nil
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return nil
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || pkg.Info.ObjectOf(src) != pkg.Info.ObjectOf(dst) {
		return nil
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || pkg.Info.ObjectOf(arg) != pkg.Info.ObjectOf(key) {
		return nil
	}
	return pkg.Info.ObjectOf(dst)
}

// sortsSlice reports whether stmt is a sort of the given slice object:
// sort.Strings/Ints/Float64s/Slice/SliceStable or slices.Sort(Func),
// with the slice as the first argument.
func sortsSlice(pkg *Package, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || (recv.Name != "sort" && recv.Name != "slices") {
		return false
	}
	switch sel.Sel.Name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "SortFunc", "SortStableFunc":
	default:
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && pkg.Info.ObjectOf(arg) == obj
}

// orderInsensitiveBody reports whether every statement in a map-range
// body is an order-insensitive map-to-map transfer: assignments whose
// left-hand sides are all blank identifiers or indexes into maps, or
// inc/dec of a map index.
func orderInsensitiveBody(pkg *Package, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		switch s := st.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if !isMapIndex(pkg, lhs) {
					return false
				}
			}
		case *ast.IncDecStmt:
			if !isMapIndex(pkg, s.X) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isMapIndex reports whether e is an index expression into a map.
func isMapIndex(pkg *Package, e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pkg.Info.Types[idx.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
