package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detmap polices Go map iteration in the packages whose outputs must be
// bit-identical across runs and replicas: internal/cluster (digest
// voting), internal/obs (event export) and internal/expt (result
// tables). Go randomizes map iteration order, so a range over a map is
// only legal when its body is order-insensitive — every statement
// writes through a map index (or a blank), making the loop a pure
// key-indexed transfer. Anything else (appending to a slice, summing
// into a scalar with floats, emitting events) must iterate a sorted key
// slice instead.
var Detmap = &Analyzer{
	Name:    "detmap",
	Doc:     "no order-sensitive map iteration in deterministic result paths",
	Applies: pathSuffix("internal/cluster", "internal/obs", "internal/expt"),
	Run:     runDetmap,
}

func runDetmap(pkg *Package, report func(token.Pos, string, ...any)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if !orderInsensitiveBody(pkg, rs.Body) {
				report(rs.Pos(), "iteration order of map %s leaks into the result; iterate sorted keys instead", types.ExprString(rs.X))
			}
			return true
		})
	}
}

// orderInsensitiveBody reports whether every statement in a map-range
// body is an order-insensitive map-to-map transfer: assignments whose
// left-hand sides are all blank identifiers or indexes into maps, or
// inc/dec of a map index.
func orderInsensitiveBody(pkg *Package, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		switch s := st.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if !isMapIndex(pkg, lhs) {
					return false
				}
			}
		case *ast.IncDecStmt:
			if !isMapIndex(pkg, s.X) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isMapIndex reports whether e is an index expression into a map.
func isMapIndex(pkg *Package, e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pkg.Info.Types[idx.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
