package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked repository package.
type Package struct {
	Path   string // import path, e.g. "ssos/internal/mem"
	Module string // module path from go.mod, e.g. "ssos"
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader type-checks repository packages without external tooling:
// module-internal imports are resolved by recursively type-checking
// their source directories (test files excluded), standard-library
// imports through the compiler's source importer. Loads are memoized,
// so a package is checked once per Loader regardless of fan-in.
type Loader struct {
	root   string // module root directory
	module string // module path from go.mod
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*Package
	state  map[string]loadState
}

type loadState int

const (
	loadNew loadState = iota
	loadActive
	loadDone
)

// NewLoader creates a loader rooted at the module directory containing
// go.mod.
func NewLoader(root string) (*Loader, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		root:   root,
		module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		state:  map[string]loadState{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer, routing module-internal paths to
// the source tree and everything else to the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-internal package.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.state[path] == loadActive {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.state[path] = loadActive
	defer func() {
		if l.state[path] == loadActive {
			l.state[path] = loadNew
		}
	}()

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", path, dir)
	}
	pkg, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// check type-checks a parsed file set as the package at path and
// memoizes the result.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Module: l.module, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.state[path] = loadDone
	return pkg, nil
}

// CheckSource type-checks one in-memory source file as a package with
// the given import path. Used by tests to feed the analyzers synthetic
// violations; the path governs which analyzers' Applies predicates
// would match it.
func (l *Loader) CheckSource(path, src string) (*Package, error) {
	f, err := parser.ParseFile(l.fset, path+"/src.go", src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.check(path, []*ast.File{f})
}

// Load resolves package patterns to import paths and type-checks them.
// Supported patterns: "./..." (every package under the module root) and
// plain relative directories like "./internal/mem". Directories named
// testdata and hidden directories are never matched by "./...".
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	seen := map[string]bool{}
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			dirs, err := l.walkPackageDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(d)
			}
		default:
			rel := filepath.ToSlash(strings.TrimPrefix(pat, "./"))
			if rel == "" || rel == "." {
				add(l.module)
			} else {
				add(l.module + "/" + rel)
			}
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkPackageDirs finds every directory under the module root holding
// non-test Go files and returns their import paths.
func (l *Loader) walkPackageDirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			return nil
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.module)
		} else {
			out = append(out, l.module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	out = dedupSorted(out)
	return out, nil
}

func dedupSorted(s []string) []string {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
