package analyzers_test

import (
	"fmt"
	"go/token"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ssos/internal/analyzers"
)

func newLoader(t *testing.T) *analyzers.Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analyzers.ModuleRoot(wd)
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	l, err := analyzers.NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// runOne applies a single analyzer to synthetic source, bypassing the
// Applies path predicate (unit tests pick the analyzer directly).
func runOne(t *testing.T, a *analyzers.Analyzer, path, src string) []string {
	t.Helper()
	l := newLoader(t)
	pkg, err := l.CheckSource(path, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	var msgs []string
	a.Run(pkg, func(pos token.Pos, format string, args ...any) {
		p := pkg.Fset.Position(pos)
		msgs = append(msgs, fmt.Sprintf("%s@%d: %s", a.Name, p.Line, fmt.Sprintf(format, args...)))
	})
	return msgs
}

// TestGenbumpFlagsUnbumpedMutation: data writes without a generation
// bump (direct or via a bumping sibling) are flagged; bumped paths are
// not.
func TestGenbumpFlagsUnbumpedMutation(t *testing.T) {
	src := `package mem

type Bus struct {
	data  []byte
	gens  [16]uint64
	stamp uint64
}

func (b *Bus) bump(p int) { b.gens[p]++; b.stamp++ }

func (b *Bus) Good(addr int, v byte) {
	b.data[addr] = v
	b.bump(addr >> 12)
}

func (b *Bus) GoodDirect(addr int, v byte) {
	b.data[addr] = v
	b.gens[addr>>12]++
	b.stamp++
}

func (b *Bus) Bad(addr int, v byte) {
	b.data[addr] = v
}

func (b *Bus) BadCopy(src []byte) {
	copy(b.data, src)
}

func (b *Bus) ReadOnly(dst []byte) {
	copy(dst, b.data)
}
`
	msgs := runOne(t, analyzers.Genbump, "ssos/testdata/genbump", src)
	if len(msgs) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
	for _, want := range []string{"Bus.Bad ", "Bus.BadCopy "} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q in %v", want, msgs)
		}
	}
}

// TestGenbumpStampRule: a direct generation bump that skips the
// bus-wide write stamp is flagged — the superblock engine's one-compare
// fast path proves "nothing changed" from the stamp alone, so every
// gens bump must advance it, directly or via a sibling in the
// stamp-advancing closure.
func TestGenbumpStampRule(t *testing.T) {
	src := `package mem

type Bus struct {
	data  []byte
	gens  [16]uint64
	stamp uint64
}

func (b *Bus) touch() { b.stamp++ }

func (b *Bus) GoodDirect(addr int, v byte) {
	b.data[addr] = v
	b.gens[addr>>12]++
	b.stamp++
}

func (b *Bus) GoodViaSibling(addr int, v byte) {
	b.data[addr] = v
	b.gens[addr>>12]++
	b.touch()
}

func (b *Bus) BadNoStamp(addr int, v byte) {
	b.data[addr] = v
	b.gens[addr>>12]++
}

func (b *Bus) BadLoop() {
	for i := range b.gens {
		b.gens[i]++
	}
}
`
	msgs := runOne(t, analyzers.Genbump, "ssos/testdata/genstamp", src)
	if len(msgs) != 2 {
		t.Fatalf("got %d findings, want 2 (BadNoStamp, BadLoop):\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
	for _, want := range []string{"Bus.BadNoStamp ", "Bus.BadLoop "} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q in %v", want, msgs)
		}
	}
	for _, m := range msgs {
		if !strings.Contains(m, "stamp") {
			t.Errorf("stamp-rule finding does not mention the stamp: %s", m)
		}
	}
}

// TestDetmapFlagsOrderSensitiveRange: map ranges that leak iteration
// order are flagged; pure key-indexed transfers are not.
func TestDetmapFlagsOrderSensitiveRange(t *testing.T) {
	src := `package obs

func Leaky(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func Transfer(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

func Accumulate(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

func Count(m map[string]int) map[string]int {
	c := map[string]int{}
	for k := range m {
		c[k]++
	}
	return c
}

func SliceLoop(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
`
	msgs := runOne(t, analyzers.Detmap, "ssos/testdata/detmap", src)
	if len(msgs) != 1 {
		t.Fatalf("got %d findings, want 1 (Leaky only):\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
	if !strings.Contains(msgs[0], "map m") {
		t.Errorf("finding does not name the map: %s", msgs[0])
	}
}

// TestDetmapSanctionsSortedKeyCollect: the sorted-iteration prologue —
// collect the keys, sort them immediately — is order-insensitive and
// must pass; collecting without the sort (or sorting a different
// slice) still leaks iteration order and must be flagged.
func TestDetmapSanctionsSortedKeyCollect(t *testing.T) {
	src := `package obs

import "sort"

func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func SortedSlice(m map[int][]uint64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func Unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func SortsOther(m map[string]int, other []string) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}
`
	msgs := runOne(t, analyzers.Detmap, "ssos/testdata/detmapsort", src)
	if len(msgs) != 2 {
		t.Fatalf("got %d findings, want 2 (Unsorted, SortsOther):\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
}

// TestProbenilFlagsUnguardedEmit: Emit on an obs.Probe-typed value
// without a preceding nil comparison in the same function is flagged.
func TestProbenilFlagsUnguardedEmit(t *testing.T) {
	src := `package probetest

import "ssos/internal/obs"

type holder struct {
	p obs.Probe
}

func (h *holder) guarded(e obs.Event) {
	if h.p != nil {
		h.p.Emit(e)
	}
}

func (h *holder) earlyReturn(e obs.Event) {
	if h.p == nil {
		return
	}
	h.p.Emit(e)
}

func (h *holder) unguarded(e obs.Event) {
	h.p.Emit(e)
}

type notProbe struct{}

func (notProbe) Emit(s string) {}

func otherEmit(n notProbe) {
	n.Emit("fine")
}
`
	msgs := runOne(t, analyzers.Probenil, "ssos/testdata/probenil", src)
	if len(msgs) != 1 {
		t.Fatalf("got %d findings, want 1 (unguarded only):\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
	if !strings.Contains(msgs[0], "unguarded") {
		t.Errorf("finding does not name the function: %s", msgs[0])
	}
}

// TestNodetermFlagsClockAndGlobalRand: wall-clock calls and global rng
// draws are flagged; seeded construction and *rand.Rand methods pass.
func TestNodetermFlagsClockAndGlobalRand(t *testing.T) {
	src := `package core

import (
	"math/rand"
	"time"
)

func bad() int64 {
	t := time.Now()
	_ = time.Since(t)
	return rand.Int63()
}

func good(seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	return r.Uint64()
}

func alsoFine(d time.Duration) time.Duration {
	return d * 2
}
`
	msgs := runOne(t, analyzers.Nodeterm, "ssos/testdata/nodeterm", src)
	if len(msgs) != 3 {
		t.Fatalf("got %d findings, want 3 (Now, Since, Int63):\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
	for _, want := range []string{"time.Now", "time.Since", "rand.Int63"} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q in %v", want, msgs)
		}
	}
}

// runGlobalOne applies a single global analyzer to synthetic source
// forming a one-package load set.
func runGlobalOne(t *testing.T, a *analyzers.GlobalAnalyzer, path, src string) []string {
	t.Helper()
	l := newLoader(t)
	pkg, err := l.CheckSource(path, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	var msgs []string
	a.Run([]*analyzers.Package{pkg}, func(pos token.Pos, format string, args ...any) {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	})
	return msgs
}

// TestNoallocFlagsAllocationClasses: one crafted violation per noalloc
// rule class, each asserting the exact finding string. The hotpath root
// reaches every violator by plain static call; the alloc-ok exemption
// stops traversal.
func TestNoallocFlagsAllocationClasses(t *testing.T) {
	src := `package machine

import "fmt"

type point struct{ x, y int }

//ssos:hotpath
func root() {
	sliceLit()
	mapLit()
	escape()
	closure()
	mapIndex(nil)
	mapRange(nil)
	appendGrow(nil)
	makeIt()
	newIt()
	mapDelete(nil)
	boxArg()
	convert()
	external()
	coldBuild()
	valueLit()
}

func sliceLit() []int          { v := []int{1, 2}; return v }
func mapLit() map[int]int      { m := map[int]int{}; return m }
func escape() *point           { return &point{1, 2} }
func closure() func() int      { n := 0; return func() int { n++; return n } }
func mapIndex(m map[int]int) int { return m[3] }
func mapRange(m map[int]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
func appendGrow(s []int) []int { return append(s, 1) }
func makeIt() []int            { return make([]int, 4) }
func newIt() *point            { return new(point) }
func mapDelete(m map[int]int)  { delete(m, 1) }
func sink(v any)               { _ = v }
func boxArg()                  { sink(42) }
func convert() any             { n := 7; return any(n) }
func external()                { fmt.Sprint(1) }
func valueLit() point          { return point{3, 4} }

//ssos:alloc-ok one-time build path, amortized
func coldBuild() []int { return make([]int, 8) }

func unreachable() []int { return make([]int, 16) }
`
	msgs := runGlobalOne(t, analyzers.Noalloc, "ssos/testdata/noalloc", src)
	want := []string{
		"hot path appendGrow allocates: append may grow its backing array",
		"hot path boxArg allocates: int argument boxed into interface parameter",
		"hot path closure allocates: function literal (closure)",
		"hot path convert allocates: conversion to interface type any",
		"hot path escape allocates: composite literal escapes through &",
		"hot path external calls fmt.Sprint outside the module (allocation behaviour unknown)",
		"hot path makeIt allocates: make",
		"hot path mapDelete uses a map operation: delete",
		"hot path mapIndex uses a map operation: index",
		"hot path mapLit allocates: map literal",
		"hot path mapRange uses a map operation: range",
		"hot path newIt allocates: new",
		"hot path sliceLit allocates: slice literal",
	}
	got := append([]string(nil), msgs...)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("noalloc findings mismatch:\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestNoallocReferenceClosure: a function mentioned (not called) on the
// hot path — the dispatch-table pattern — is pulled into the closure;
// functions with no path from a root are not checked.
func TestNoallocReferenceClosure(t *testing.T) {
	src := `package machine

var table [2]func() []int

//ssos:hotpath
func install() {
	table[0] = executor
}

func executor() []int { return make([]int, 4) }

func cold() []int { return make([]int, 4) }
`
	msgs := runGlobalOne(t, analyzers.Noalloc, "ssos/testdata/noallocref", src)
	want := []string{"hot path executor allocates: make"}
	if !reflect.DeepEqual(msgs, want) {
		t.Errorf("got %v, want %v", msgs, want)
	}
}

// TestLockzoneFlagsUnguardedAccess: one crafted violation per lockzone
// rule class — plain unguarded access, access after a source-order
// Unlock, untrackable owner — with exact finding strings; the guarded
// patterns (defer, early-return bail-out, //ssos:locked annotation,
// fresh construction) must pass.
func TestLockzoneFlagsUnguardedAccess(t *testing.T) {
	src := `package obs

import "sync"

type box struct {
	mu sync.Mutex
	//ssos:guarded-by mu
	val int
}

func (b *box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}

func (b *box) GoodEarlyReturn(stop bool) int {
	b.mu.Lock()
	if stop {
		b.mu.Unlock()
		return 0
	}
	v := b.val
	b.mu.Unlock()
	return v
}

// goodLocked runs with the lock held by its caller.
//
//ssos:locked mu
func (b *box) goodLocked() int { return b.val }

func goodFresh() *box {
	b := &box{}
	b.val = 1
	return b
}

func (b *box) Bad() int { return b.val }

func (b *box) BadAfterUnlock() int {
	b.mu.Lock()
	b.mu.Unlock()
	return b.val
}

func BadUntrackable(bs []*box) int {
	return bs[0].val
}
`
	msgs := runOne(t, analyzers.Lockzone, "ssos/testdata/lockzone", src)
	want := []string{
		"lockzone@39: field b.val is guarded by b.mu but accessed without holding it",
		"lockzone@44: field b.val is guarded by b.mu but accessed without holding it",
		"lockzone@48: guarded field val accessed through an untrackable expression",
	}
	got := append([]string(nil), msgs...)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("lockzone findings mismatch:\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestAnalyzersRepoClean runs the full suite — per-package and global —
// over the entire module: the repository must stay lint-clean, and the
// run must be deterministic.
func TestAnalyzersRepoClean(t *testing.T) {
	l := newLoader(t)
	pkgs, err := l.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded; pattern expansion is broken", len(pkgs))
	}
	diags := analyzers.Run(pkgs, analyzers.All())
	diags = append(diags, analyzers.RunGlobal(pkgs, analyzers.AllGlobal())...)
	analyzers.Sort(diags)
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	again := analyzers.Run(pkgs, analyzers.All())
	again = append(again, analyzers.RunGlobal(pkgs, analyzers.AllGlobal())...)
	analyzers.Sort(again)
	if !reflect.DeepEqual(diags, again) {
		t.Error("analyzer output is not deterministic across runs")
	}
}

// TestAppliesScoping pins the path predicates: genbump only sees
// internal/mem, detmap only the deterministic result packages,
// nodeterm the simulation core.
func TestAppliesScoping(t *testing.T) {
	cases := []struct {
		a    *analyzers.Analyzer
		path string
		want bool
	}{
		{analyzers.Genbump, "ssos/internal/mem", true},
		{analyzers.Genbump, "ssos/internal/machine", false},
		{analyzers.Detmap, "ssos/internal/cluster", true},
		{analyzers.Detmap, "ssos/internal/obs", true},
		{analyzers.Detmap, "ssos/internal/expt", true},
		{analyzers.Detmap, "ssos/internal/analyzers", false},
		{analyzers.Nodeterm, "ssos/internal/machine", true},
		{analyzers.Nodeterm, "ssos/cmd/ssos-run", false},
		{analyzers.Lockzone, "ssos/internal/obs", true},
		{analyzers.Lockzone, "ssos/internal/serve", true},
		{analyzers.Lockzone, "ssos/internal/machine", false},
	}
	for _, c := range cases {
		if got := c.a.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	if analyzers.Probenil.Applies != nil {
		t.Error("probenil should apply to every package (Applies == nil)")
	}
}
