package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nodeterm keeps wall-clock time and the global random generator out of
// the deterministic simulation core. Every run is a pure function of
// (image bytes, seed, step budget); a time.Now or rand.Int63 call in
// these packages silently breaks replayability and cross-replica digest
// comparison. Seeded generators are fine: rand.New(rand.NewSource(seed))
// stays allowed, as do methods on the resulting *rand.Rand.
var Nodeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "no wall-clock or global-rng calls in deterministic packages",
	Applies: pathSuffix(
		"internal/isa", "internal/mem", "internal/machine", "internal/asm",
		"internal/guest", "internal/core", "internal/cluster", "internal/obs",
		"internal/dev", "internal/fault", "internal/trace",
	),
	Run: runNodeterm,
}

// timeBanned lists the time package's nondeterministic entry points.
// Conversions and pure arithmetic (time.Duration, ParseDuration) are
// deliberately absent.
var timeBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// randAllowed lists math/rand package functions that construct seeded
// state instead of consulting the global generator.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runNodeterm(pkg *Package, report func(token.Pos, string, ...any)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true // method call or qualified field, not a package func
			}
			switch pn.Imported().Path() {
			case "time":
				if timeBanned[sel.Sel.Name] {
					report(call.Pos(), "time.%s in deterministic package %s; thread simulated time instead", sel.Sel.Name, pkg.Types.Name())
				}
			case "math/rand":
				if !randAllowed[sel.Sel.Name] {
					report(call.Pos(), "global math/rand.%s in deterministic package %s; use a seeded *rand.Rand", sel.Sel.Name, pkg.Types.Name())
				}
			}
			return true
		})
	}
}
