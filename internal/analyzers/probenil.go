package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Probenil enforces the observability layer's "zero cost when
// disabled" contract: probes are optional, so every call x.Emit(...)
// where x's static type satisfies obs.Probe must be dominated by a nil
// comparison of the same expression earlier in the enclosing function.
// The check is syntactic but sound for this codebase's idiom — the
// guard is always a textual `x != nil` (or `x == nil` early return) in
// the same function; a missing guard is a latent nil-dereference on
// every uninstrumented machine.
var Probenil = &Analyzer{
	Name: "probenil",
	Doc:  "obs.Probe Emit calls need a preceding nil check",
	Run:  runProbenil,
}

func runProbenil(pkg *Package, report func(token.Pos, string, ...any)) {
	probe := probeInterface(pkg)
	if probe == nil {
		return // package doesn't see obs.Probe; nothing to check
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkProbeFunc(pkg, probe, fn, report)
		}
	}
}

// probeInterface resolves the obs.Probe interface type as seen by pkg,
// whether pkg imports internal/obs or is internal/obs itself.
func probeInterface(pkg *Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		obj, ok := p.Scope().Lookup("Probe").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if strings.HasSuffix(pkg.Path, "internal/obs") {
		return lookup(pkg.Types)
	}
	for _, imp := range pkg.Types.Imports() {
		if strings.HasSuffix(imp.Path(), "internal/obs") {
			return lookup(imp)
		}
	}
	return nil
}

// checkProbeFunc flags unguarded probe Emit calls in one function.
func checkProbeFunc(pkg *Package, probe *types.Interface, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	// First pass: collect positions of nil comparisons, keyed by the
	// textual form of the non-nil operand.
	nilChecked := map[string][]token.Pos{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		side := func(maybeNil, other ast.Expr) {
			if tv, ok := pkg.Info.Types[maybeNil]; ok && tv.IsNil() {
				key := types.ExprString(other)
				nilChecked[key] = append(nilChecked[key], be.Pos())
			}
		}
		side(be.X, be.Y)
		side(be.Y, be.X)
		return true
	})

	// Second pass: every probe Emit call must have a nil comparison of
	// the same receiver expression at an earlier position.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Emit" {
			return true
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || tv.Type == nil {
			return true // package name or other non-expression receiver
		}
		if !types.AssignableTo(tv.Type, probe) {
			return true
		}
		key := types.ExprString(sel.X)
		for _, pos := range nilChecked[key] {
			if pos < call.Pos() {
				return true
			}
		}
		report(call.Pos(), "%s.Emit called without a preceding nil check of %s in %s", key, key, fn.Name.Name)
		return true
	})
}
