package machine

import (
	"ssos/internal/isa"
	"ssos/internal/mem"
)

// The superblock engine: batch-validated, threaded dispatch for the
// step loop.
//
// The predecode cache (decodecache.go) removed decode cost but still
// pays a cache probe and two page-generation compares per instruction,
// plus the big execute switch. This layer chains predecoded entries
// into superblocks — straight-line runs ending at a serialize point
// (branch/jump/call/ret, int/iret, hlt, port I/O, rep movsb, a write
// to cs; see isa.Serializing) — records the set of distinct
// mem.PageSize-byte pages the run's bytes span, validates all their
// write-generations once on block entry, and then executes the run by
// calling one function pointer per entry, never re-probing the decode
// cache in between.
//
// Soundness from ANY configuration is non-negotiable, so a block is a
// transparent batching of N interpreter steps, not a new semantics:
//
//   - Per-step skeleton: Run's batched loop performs exactly Step's
//     sequence — Stats.Steps, device ticks, pin checks, halt ticks,
//     NMI-counter decrement, the trailing AfterStep check — with only
//     the instruction-execution slot served by the block engine. The
//     turbo lane (sbTurbo) elides skeleton checks that are provably
//     dead — no tickers registered, no pins latched, not halted — and
//     re-establishes them at every block boundary, the only place the
//     executors themselves can violate them (port I/O, hlt and int are
//     serialize points, hence always block-final). Interrupts, resets
//     and halts therefore preempt a block between any two entries,
//     exactly as they preempt the interpreter between any two steps.
//   - Per-entry validation: before an entry runs, the engine checks
//     that the live cs:ip still addresses that entry. The check is
//     (e.ip == c.IP && e.lin == linear(cs, ip)): since cs<<4 ≡ lin−ip
//     (mod 2^20) the pair (lin, ip) determines cs uniquely, so a
//     passing check proves the entry's predecoded bytes and
//     precomputed nextIP describe precisely the instruction the
//     interpreter would fetch. Any divergence — an exception taken by
//     the previous entry, a ticker or device corrupting registers, an
//     adopted snapshot — fails the compare and bails.
//   - Staleness: the bus write stamp (mem.Bus.WriteStamp) advances on
//     every memory mutation anywhere. While the stamp is unchanged
//     since the block's last validation, the block's bytes are
//     provably unwritten and entries run with zero generation checks;
//     when it moved (a guest store, a fault injection, a snapshot
//     restore), the engine re-checks the block's span pages against
//     their build-time generations and bails on any mismatch. A store
//     into the current block's own span — self-modifying code — is
//     therefore caught before the next entry runs, and execution
//     resumes in the interpreter on the freshly written bytes.
//   - Fault windows and monitors install Machine.AfterStep; the
//     batched loop falls back to plain Step for as long as one is
//     installed, so injection timing is bit-identical. A non-nil Probe
//     does NOT force the fallback: probes are consulted only inside
//     stepPins and raiseException, which the batched loop and the
//     fallback share, so instrumented sessions still run blocks (and
//     their block telemetry means something).
//
// Bailing is cheap and always available, so every rare case — wrap-
// adjacent fetches, undecodable heads, page-budget overflows — simply
// falls back to the interpreter, which remains the single source of
// truth for semantics.

const (
	// sbBits sizes the direct-mapped block table. Block heads are
	// jump targets and fall-through points, a handful per guest, so a
	// small table suffices; the index mixes high linear bits in so
	// same-alignment heads in different regions don't thrash one slot.
	sbBits = 10
	sbSize = 1 << sbBits
	sbMask = sbSize - 1

	// sbMaxLen caps entries per block; covers every loop body in the
	// repo's guests while keeping rebuild cost (after self-modification)
	// bounded.
	sbMaxLen = 32

	// sbMaxPages caps the distinct pages a block's bytes may span.
	// sbMaxLen entries of MaxInstrSize bytes fit in 3 pages; 4 leaves
	// slack while keeping entry validation a tiny fixed loop.
	sbMaxPages = 4
)

// sbFn executes one predecoded entry. The contract mirrors one
// exec1 dispatch: c.IP addresses the entry's first byte on call, and
// the fn leaves the machine exactly as exec1(&e.inst, e.nextIP) would.
type sbFn func(m *Machine, e *sbEntry) Event

// sbEntry is one instruction inside a superblock.
type sbEntry struct {
	fn     sbFn
	lin    uint32 // linear address of the instruction's first byte
	ip     uint16 // cs-relative offset of the first byte
	nextIP uint16 // sequential successor (ip+size)
	inst   isa.Inst
}

// superblock is a straight-line run of predecoded instructions plus
// the page-generation evidence that its backing bytes are unchanged.
// n == 0 marks a negative block: the head byte is known not to decode
// (generation-validated like any entry), so entry falls straight to
// the interpreter's exception path without re-attempting a build.
type superblock struct {
	lin    uint32
	ip     uint16
	n      uint16
	npages uint8
	pages  [sbMaxPages]uint32
	gens   [sbMaxPages]uint64
	ins    []sbEntry

	// succ caches the block most recently entered after this one
	// exhausted — a monomorphic chain hint that lets the turbo loop
	// follow block→block transitions without re-probing the table. It
	// is only ever a hint: every use re-checks (lin, ip) and span
	// freshness, so a stale pointer (the slot was rebuilt for another
	// head) simply misses.
	succ *superblock
}

// SetSuperblocks enables or disables the superblock engine. On by
// default; behaviour must be bit-identical either way — the three-way
// differential suites hold the engines against each other — so this
// exists for those tests and for A/B benchmarking. Disabling the
// decode cache (SetDecodeCache(false)) disables superblocks too.
func (m *Machine) SetSuperblocks(on bool) {
	if on {
		if m.sblocks == nil {
			m.sblocks = new([sbSize]*superblock)
		}
	} else {
		m.sblocks = nil
		m.sbCur = nil
	}
}

// runBatched is Run's loop body: one Step-equivalent iteration per
// step, with the instruction-execution slot served by the superblock
// engine and its per-entry fast path inlined (the engine's whole win is
// one short dependent chain per instruction — compare ip, recompute
// lin, compare the write stamp, call the entry's function — so it must
// not hide behind further call frames). Every other line of an
// iteration mirrors Step exactly — the two must be kept in lockstep,
// which the three-way differential suites enforce.
//
// The fallback conditions (AfterStep installed, engine disabled) are
// live machine fields re-read every iteration, so hooks installed
// mid-run by tickers or port devices take effect on the very next step.
//
//ssos:hotpath
func (m *Machine) runBatched(n int) {
	for done := 0; done < n; done++ {
		if m.AfterStep != nil || m.sblocks == nil {
			m.Step()
			continue
		}
		// Turbo lane: while the step skeleton provably has no work — no
		// devices to tick, no latched pins, not halted, no AfterStep —
		// consecutive block entries retire in a tight loop that chains
		// block to block. The preconditions hold between boundaries
		// because the only executors that can tick devices, latch pins,
		// halt or install hooks (port I/O, hlt, int) are serialize
		// points, hence always block-final; sbTurbo re-checks them at
		// each boundary and exits on any violation.
		if m.pins == 0 && !m.CPU.Halted && len(m.tickers) == 0 {
			if b := m.sbCur; b != nil {
				done = m.sbTurbo(b, done, n)
				if done >= n {
					return
				}
			}
		}
		// One full Step-equivalent iteration, with the
		// instruction-execution slot served by the engine. Mirrors Step
		// line for line — the two must be kept in lockstep, which the
		// three-way differential suites enforce.
		m.Stats.Steps++
		if len(m.tickers) != 0 {
			for _, t := range m.tickers {
				t.Tick(m)
			}
		}
		var ev Event
		handled := false
		if m.pins != 0 {
			ev, handled = m.stepPins()
		}
		if !handled {
			if m.CPU.Halted {
				m.Stats.HaltTicks++
				ev = EventHalted
			} else {
				ev = m.sbExec()
			}
		}
		if m.Opts.NMICounter && ev != EventNMI && m.CPU.NMICounter > 0 {
			m.CPU.NMICounter--
		}
		if m.AfterStep != nil {
			m.AfterStep(m, ev)
		}
	}
}

// sbTurbo retires consecutive entries of the current block b, one per
// step, starting at step index done and stopping at n. Preconditions
// (established by runBatched, invariant between block boundaries):
// AfterStep nil, no tickers, no latched pins, not halted. Each
// iteration performs exactly one Step: Stats.Steps, the per-entry
// validation, the entry's executor, the NMI-counter decrement, and the
// trailing AfterStep check; the skeleton's remaining checks are dead
// under the preconditions.
//
// At a block boundary (the block exhausted), the loop keeps going
// without dropping out: the only executors with skeleton-visible side
// effects — port I/O ticking a device that latches a pin or installs a
// ticker, hlt, int — are serialize points and hence block-final, so the
// preconditions are re-checked exactly there, and then control chains
// to the successor block: the block itself for a loop back-edge, the
// cached succ hint, or a table probe. Every chained entry revalidates
// (lin, ip) and span freshness just as sbEnter would; only an unbuilt,
// stale or negative successor drops to runBatched's full path, which
// rebuilds via sbEnter. Returns the number of steps done.
func (m *Machine) sbTurbo(b *superblock, done, n int) int {
	c := &m.CPU
	i := m.sbIdx
	for done < n {
		entered := false
		if i >= len(b.ins) {
			// Block boundary: re-establish the skeleton preconditions
			// that a block-final executor may have violated, then chain.
			if m.pins != 0 || c.Halted || len(m.tickers) != 0 || m.sblocks == nil {
				break
			}
			ip := c.IP
			lin := (uint32(c.S[isa.CS])<<4 + uint32(ip)) & mem.AddrMask
			if b.ip == ip && b.lin == lin {
				// Loop back-edge: re-enter in place; the entry-0 check
				// below revalidates span freshness.
			} else if s := b.succ; s != nil && s.ip == ip && s.lin == lin && m.sbValidate(s) {
				b, m.sbCur = s, s
				m.sbStamp = *m.busStamp
			} else if s := m.sbLookup(lin, ip); s != nil && m.sbValidate(s) {
				b.succ = s
				b, m.sbCur = s, s
				m.sbStamp = *m.busStamp
			} else {
				break // unbuilt, stale or negative successor: full path
			}
			i = 0
			entered = true
		}
		e := &b.ins[i]
		// Full entry validation: (lin, ip) pins the live configuration
		// to this exact entry, the stamp pins the block's bytes.
		if !(e.ip == c.IP &&
			e.lin == (uint32(c.S[isa.CS])<<4+uint32(c.IP))&mem.AddrMask &&
			(*m.busStamp == m.sbStamp || m.sbRevalidate(b))) {
			if !entered {
				m.Stats.BlockBails++
			}
			m.sbCur = nil
			break
		}
		if entered {
			m.Stats.Blocks++
		}
		// Continuation run. After a validated entry completes with
		// EventInstr, the (lin, ip) compare is provably redundant for
		// the next entry: a non-final executor's only normal exit sets
		// IP = nextIP (the exec1 contract), which the builder laid out
		// as the next entry's ip; branches and cs writes are block-
		// final; and under the turbo preconditions nothing else runs
		// between entries. Only the write stamp — self-modifying
		// stores, DMA — still needs re-checking per step.
		for {
			m.Stats.Steps++
			m.Stats.BlockInstrs++
			ev := e.fn(m, e)
			i++
			done++
			// ev is never EventNMI here (executors return EventInstr or
			// an exception), so Step's "except on the delivering tick"
			// guard is vacuously true.
			if m.Opts.NMICounter && c.NMICounter > 0 {
				c.NMICounter--
			}
			if m.AfterStep != nil {
				// Installed by this very entry (a block-final port
				// device): Step would invoke it on the installing step
				// already.
				m.AfterStep(m, ev)
				m.sbIdx = i
				return done
			}
			if ev != EventInstr {
				// Exception: full-path checks (halt, diverged pc) next step.
				m.sbIdx = i
				return done
			}
			if done >= n || i >= len(b.ins) {
				break // budget or boundary: the outer loop handles both
			}
			e = &b.ins[i]
			if *m.busStamp != m.sbStamp && !m.sbRevalidate(b) {
				m.Stats.BlockBails++
				m.sbCur = nil
				m.sbIdx = i
				return done
			}
		}
	}
	m.sbIdx = i
	return done
}

// sbExec executes one instruction through the engine: the current
// block's next entry if it provably matches the live configuration,
// else a freshly entered (or rebuilt) block at cs:ip, else one
// interpreter instruction. This is the out-of-line twin of the inlined
// fast path in runBatched, kept for tests that drive the engine one
// step at a time.
func (m *Machine) sbExec() Event {
	if b := m.sbCur; b != nil {
		i := m.sbIdx
		if i < len(b.ins) {
			e := &b.ins[i]
			c := &m.CPU
			if e.ip == c.IP &&
				e.lin == (uint32(c.S[isa.CS])<<4+uint32(c.IP))&mem.AddrMask &&
				(*m.busStamp == m.sbStamp || m.sbRevalidate(b)) {
				m.sbIdx = i + 1
				m.Stats.BlockInstrs++
				return e.fn(m, e)
			}
			m.Stats.BlockBails++
		}
		m.sbCur = nil
	}
	return m.sbEnter()
}

// sbRevalidate re-checks the block's span pages against their
// build-time generations after the bus write stamp moved, refreshing
// the stamp snapshot on success so later entries take the one-compare
// path again. Writes outside the span (the common case: the guest's
// own data stores) cost exactly this check; writes inside it fail it.
func (m *Machine) sbRevalidate(b *superblock) bool {
	if !m.sbValidate(b) {
		return false
	}
	m.sbStamp = *m.busStamp
	return true
}

// sbValidate compares every span page's current generation with its
// build-time value: true means the block's bytes are provably the
// bytes it was built from.
func (m *Machine) sbValidate(b *superblock) bool {
	gens := m.pageGens
	for i := uint8(0); i < b.npages; i++ {
		if gens[b.pages[i]] != b.gens[i] {
			return false
		}
	}
	return true
}

// sbLookup probes the block table for a built, positive block headed at
// (lin, ip); nil means miss, head mismatch or negative block, all of
// which the caller routes to the full path. Wrap-adjacent live heads
// need no explicit guard: built heads always satisfy the wrap guards,
// so a wrap-adjacent ip can never match a stored one.
func (m *Machine) sbLookup(lin uint32, ip uint16) *superblock {
	b := m.sblocks[(lin^lin>>sbBits)&sbMask]
	if b == nil || b.lin != lin || b.ip != ip || b.n == 0 {
		return nil
	}
	return b
}

// sbEnter looks up (or builds) the superblock headed at cs:ip,
// validates its span, and executes its first entry. Wrap-adjacent
// configurations fall back to the interpreter's byte-wise path, and
// negative blocks to its exception path.
func (m *Machine) sbEnter() Event {
	c := &m.CPU
	ip := c.IP
	lin := (uint32(c.S[isa.CS])<<4 + uint32(ip)) & mem.AddrMask
	if ip > 0x10000-isa.MaxInstrSize || lin > mem.AddrSpace-isa.MaxInstrSize {
		return m.execute()
	}
	idx := (lin ^ lin>>sbBits) & sbMask
	b := m.sblocks[idx]
	if b == nil || b.lin != lin || b.ip != ip || !m.sbValidate(b) {
		b = m.sbBuild(b, lin, ip)
		m.sblocks[idx] = b
	}
	if b.n == 0 {
		return m.execute()
	}
	m.sbCur = b
	m.sbIdx = 1
	m.sbStamp = *m.busStamp
	m.Stats.Blocks++
	m.Stats.BlockInstrs++
	e := &b.ins[0]
	return e.fn(m, e)
}

// sbBuild (re)builds the superblock headed at lin (== linear(cs, ip)),
// reusing the evicted block's entry storage when there is one. The
// caller has already established that the head passes the wrap guards.
//
//ssos:alloc-ok cold build path: allocates the block and its entry slice once per (re)build, amortized across every later entry
func (m *Machine) sbBuild(b *superblock, lin uint32, ip uint16) *superblock {
	if b == nil {
		b = &superblock{ins: make([]sbEntry, 0, sbMaxLen)}
	} else {
		b.ins = b.ins[:0]
	}
	b.lin, b.ip, b.npages, b.succ = lin, ip, 0, nil
	for len(b.ins) < sbMaxLen {
		if ip > 0x10000-isa.MaxInstrSize || lin > mem.AddrSpace-isa.MaxInstrSize {
			break // successor needs the byte-wise wrap path
		}
		in, size, ok := isa.Decode(m.Bus.View(lin, isa.MaxInstrSize))
		if !ok {
			if len(b.ins) == 0 {
				// Negative block: the head does not decode. Span exactly
				// the bytes the verdict depends on (the isa.InstLen
				// cacheability contract).
				span := isa.InstLen(m.Bus.LoadByte(lin))
				if span == 0 {
					span = 1
				}
				b.addSpan(lin, uint32(span))
			}
			break
		}
		if !b.addSpan(lin, uint32(size)) {
			break // page budget exhausted; end the block before this instruction
		}
		b.ins = append(b.ins, sbEntry{
			fn:     sbFnFor(in.Op),
			lin:    lin,
			ip:     ip,
			nextIP: ip + uint16(size),
			inst:   in,
		})
		if sbEndsBlock(&in) {
			break
		}
		ip += uint16(size)
		lin += uint32(size)
	}
	b.n = uint16(len(b.ins))
	gens := m.pageGens
	for i := uint8(0); i < b.npages; i++ {
		b.gens[i] = gens[b.pages[i]]
	}
	return b
}

// addSpan records the pages of [lin, lin+size) in the block's span,
// reporting false when the page budget would overflow.
func (b *superblock) addSpan(lin, size uint32) bool {
	p0 := lin >> mem.PageShift
	p1 := (lin + size - 1) >> mem.PageShift
	for p := p0; p <= p1; p++ {
		if !b.addPage(p) {
			return false
		}
	}
	return true
}

func (b *superblock) addPage(p uint32) bool {
	for i := uint8(0); i < b.npages; i++ {
		if b.pages[i] == p {
			return true
		}
	}
	if int(b.npages) == len(b.pages) {
		return false
	}
	b.pages[b.npages] = p
	b.npages++
	return true
}

// sbEndsBlock reports whether the decoded instruction must be the last
// entry of its block: any isa-level serialize point, plus any instance
// that writes cs (retargeting the code stream), which is an operand
// property the isa table cannot classify.
func sbEndsBlock(in *isa.Inst) bool {
	if in.Op.Serializing() {
		return true
	}
	switch in.Op {
	case isa.OpMovSR, isa.OpMovSM, isa.OpPopS:
		return isa.SReg(in.R1) == isa.CS
	}
	return false
}

// --- threaded dispatch -------------------------------------------------
//
// Every entry carries a func pointer. The hottest opcodes get dedicated
// executors that skip the exec1 switch entirely; everything else runs
// through sbGeneric, which IS exec1 — so a specialized fn can only
// diverge from the interpreter by its own body, each of which mirrors
// one exec1 case line for line.

var sbFns [256]sbFn

func sbFnFor(op isa.Op) sbFn {
	if f := sbFns[op]; f != nil {
		return f
	}
	return sbGeneric
}

// The dispatch table init is a noalloc root: runBatched/sbExec reach
// the executors only through sbEntry.fn (a func value, outside the
// static call graph), so rooting the table population here pulls every
// executor into the hot closure.
//
//ssos:hotpath
func init() {
	sbFns[isa.OpNop] = sbNop
	sbFns[isa.OpMovRI] = sbMovRI
	sbFns[isa.OpMovRR] = sbMovRR
	sbFns[isa.OpMovSR] = sbMovSR
	sbFns[isa.OpMovRS] = sbMovRS
	sbFns[isa.OpMovRM] = sbMovRM
	sbFns[isa.OpMovMR] = sbMovMR
	sbFns[isa.OpMovMI] = sbMovMI
	sbFns[isa.OpMovSM] = sbMovSM
	sbFns[isa.OpMovMS] = sbMovMS
	sbFns[isa.OpAddRR] = sbAddRR
	sbFns[isa.OpAddRI] = sbAddRI
	sbFns[isa.OpAddRM] = sbAddRM
	sbFns[isa.OpSubRR] = sbSubRR
	sbFns[isa.OpSubRI] = sbSubRI
	sbFns[isa.OpIncR] = sbIncR
	sbFns[isa.OpDecR] = sbDecR
	sbFns[isa.OpAndRR] = sbAndRR
	sbFns[isa.OpAndRI] = sbAndRI
	sbFns[isa.OpOrRR] = sbOrRR
	sbFns[isa.OpOrRI] = sbOrRI
	sbFns[isa.OpXorRR] = sbXorRR
	sbFns[isa.OpCmpRR] = sbCmpRR
	sbFns[isa.OpCmpRI] = sbCmpRI
	sbFns[isa.OpCmpRM] = sbCmpRM
	sbFns[isa.OpShlRI] = sbShlRI
	sbFns[isa.OpShrRI] = sbShrRI
	sbFns[isa.OpPushR] = sbPushR
	sbFns[isa.OpPopR] = sbPopR
	sbFns[isa.OpStosb] = sbStosb
	sbFns[isa.OpLodsb] = sbLodsb
	sbFns[isa.OpJmp] = sbJmp
	sbFns[isa.OpJe] = sbJe
	sbFns[isa.OpJne] = sbJne
	sbFns[isa.OpJb] = sbJb
	sbFns[isa.OpJbe] = sbJbe
	sbFns[isa.OpJa] = sbJa
	sbFns[isa.OpJae] = sbJae
	sbFns[isa.OpLoop] = sbLoop
	sbFns[isa.OpCall] = sbCall
	sbFns[isa.OpRet] = sbRet
}

func sbGeneric(m *Machine, e *sbEntry) Event {
	return m.exec1(&e.inst, e.nextIP)
}

func sbNop(m *Machine, e *sbEntry) Event {
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovRI(m *Machine, e *sbEntry) Event {
	m.CPU.R[e.inst.R1] = e.inst.Imm
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovRR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = c.R[e.inst.R2]
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovSR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.S[e.inst.R1] = c.R[e.inst.R2]
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovRS(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = c.S[e.inst.R2]
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovSM(m *Machine, e *sbEntry) Event {
	m.CPU.S[e.inst.R1] = m.loadMem(&e.inst)
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovMS(m *Machine, e *sbEntry) Event {
	if !m.storeMem(&e.inst, m.CPU.S[e.inst.R1]) {
		return m.raiseException(VecGP)
	}
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovRM(m *Machine, e *sbEntry) Event {
	m.CPU.R[e.inst.R1] = m.loadMem(&e.inst)
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovMR(m *Machine, e *sbEntry) Event {
	if !m.storeMem(&e.inst, m.CPU.R[e.inst.R1]) {
		return m.raiseException(VecGP)
	}
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbMovMI(m *Machine, e *sbEntry) Event {
	if !m.storeMem(&e.inst, e.inst.Imm) {
		return m.raiseException(VecGP)
	}
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbAddRR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.add16(c.R[e.inst.R1], c.R[e.inst.R2])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbAddRI(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.add16(c.R[e.inst.R1], e.inst.Imm)
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbAddRM(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.add16(c.R[e.inst.R1], m.loadMem(&e.inst))
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbSubRR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.sub16(c.R[e.inst.R1], c.R[e.inst.R2])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbSubRI(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.sub16(c.R[e.inst.R1], e.inst.Imm)
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbIncR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1]++
	m.setZS(c.R[e.inst.R1])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbDecR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1]--
	m.setZS(c.R[e.inst.R1])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbAndRR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.logic16(c.R[e.inst.R1] & c.R[e.inst.R2])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbAndRI(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.logic16(c.R[e.inst.R1] & e.inst.Imm)
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbOrRR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.logic16(c.R[e.inst.R1] | c.R[e.inst.R2])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbOrRI(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.logic16(c.R[e.inst.R1] | e.inst.Imm)
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbXorRR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.logic16(c.R[e.inst.R1] ^ c.R[e.inst.R2])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbShlRI(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	n := uint(e.inst.Imm) & 31
	v := c.R[e.inst.R1]
	if n > 0 && n <= 16 {
		c.Flags = c.Flags.Set(isa.FlagCF, v>>(16-n)&1 != 0)
	}
	c.R[e.inst.R1] = m.logicKeepCF(v << n)
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbShrRI(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	n := uint(e.inst.Imm) & 31
	v := c.R[e.inst.R1]
	if n > 0 && n <= 16 {
		c.Flags = c.Flags.Set(isa.FlagCF, v>>(n-1)&1 != 0)
	}
	c.R[e.inst.R1] = m.logicKeepCF(v >> n)
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbPushR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if !m.pushGuarded(c.R[e.inst.R1]) {
		c.R[isa.SP] += 2
		return m.raiseException(VecGP)
	}
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbPopR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[e.inst.R1] = m.pop()
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbCmpRR(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	m.sub16(c.R[e.inst.R1], c.R[e.inst.R2])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbCmpRI(m *Machine, e *sbEntry) Event {
	m.sub16(m.CPU.R[e.inst.R1], e.inst.Imm)
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbCmpRM(m *Machine, e *sbEntry) Event {
	m.sub16(m.CPU.R[e.inst.R1], m.loadMem(&e.inst))
	m.CPU.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbStosb(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	dst := m.Linear(isa.ES, c.R[isa.DI])
	if !m.storeAllowed(dst) || !m.Bus.StoreByte(dst, c.Reg8(isa.AL)) {
		return m.raiseException(VecGP)
	}
	c.R[isa.DI] = m.stringAdvance(c.R[isa.DI])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbLodsb(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.SetReg8(isa.AL, m.Bus.LoadByte(m.Linear(isa.DS, c.R[isa.SI])))
	c.R[isa.SI] = m.stringAdvance(c.R[isa.SI])
	c.IP = e.nextIP
	m.Stats.Instrs++
	return EventInstr
}

func sbJmp(m *Machine, e *sbEntry) Event {
	m.CPU.IP = e.inst.Imm
	m.Stats.Instrs++
	return EventInstr
}

func sbJe(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if c.Flags.Has(isa.FlagZF) {
		c.IP = e.inst.Imm
	} else {
		c.IP = e.nextIP
	}
	m.Stats.Instrs++
	return EventInstr
}

func sbJne(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if !c.Flags.Has(isa.FlagZF) {
		c.IP = e.inst.Imm
	} else {
		c.IP = e.nextIP
	}
	m.Stats.Instrs++
	return EventInstr
}

func sbJb(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if c.Flags.Has(isa.FlagCF) {
		c.IP = e.inst.Imm
	} else {
		c.IP = e.nextIP
	}
	m.Stats.Instrs++
	return EventInstr
}

func sbJbe(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if c.Flags.Has(isa.FlagCF) || c.Flags.Has(isa.FlagZF) {
		c.IP = e.inst.Imm
	} else {
		c.IP = e.nextIP
	}
	m.Stats.Instrs++
	return EventInstr
}

func sbJa(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if !c.Flags.Has(isa.FlagCF) && !c.Flags.Has(isa.FlagZF) {
		c.IP = e.inst.Imm
	} else {
		c.IP = e.nextIP
	}
	m.Stats.Instrs++
	return EventInstr
}

func sbJae(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if !c.Flags.Has(isa.FlagCF) {
		c.IP = e.inst.Imm
	} else {
		c.IP = e.nextIP
	}
	m.Stats.Instrs++
	return EventInstr
}

func sbLoop(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	c.R[isa.CX]--
	if c.R[isa.CX] != 0 {
		c.IP = e.inst.Imm
	} else {
		c.IP = e.nextIP
	}
	m.Stats.Instrs++
	return EventInstr
}

func sbCall(m *Machine, e *sbEntry) Event {
	c := &m.CPU
	if !m.pushGuarded(e.nextIP) {
		c.R[isa.SP] += 2
		return m.raiseException(VecGP)
	}
	c.IP = e.inst.Imm
	m.Stats.Instrs++
	return EventInstr
}

func sbRet(m *Machine, e *sbEntry) Event {
	m.CPU.IP = m.pop()
	m.Stats.Instrs++
	return EventInstr
}
