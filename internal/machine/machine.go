package machine

import (
	"fmt"

	"ssos/internal/isa"
	"ssos/internal/mem"
	"ssos/internal/obs"
)

// Interrupt and exception vector numbers (x86 assignments).
const (
	VecNMI           = 2  // non-maskable interrupt (when not hardwired)
	VecInvalidOpcode = 6  // undefined or malformed instruction
	VecTimer         = 8  // default timer IRQ vector
	VecGP            = 13 // general protection (e.g. store to ROM)
)

// ExceptionPolicy selects how the processor reacts to an exception
// (invalid opcode, faulting store).
type ExceptionPolicy uint8

const (
	// ExceptionHalt stops the processor, modelling an OS with no
	// recovery path: a crash. Baselines use this.
	ExceptionHalt ExceptionPolicy = iota
	// ExceptionVector transfers control to the hardwired
	// Options.ExceptionVector in ROM (the paper's default handlers
	// "reside in the appropriate addresses in rom").
	ExceptionVector
	// ExceptionIDT vectors through the interrupt descriptor table,
	// like stock hardware. A corrupted IDT then sends the processor
	// anywhere — the hazard discussed in the paper's introduction.
	ExceptionIDT
)

// Options configures the hardware variant being simulated.
type Options struct {
	// NMICounter enables the paper's proposed NMI countdown register.
	// When false the machine uses the stock InNMI latch, which is not
	// self-stabilizing.
	NMICounter bool
	// NMICounterMax is the value loaded into the counter when an NMI
	// is delivered. It must exceed the NMI handler's execution length
	// (in ticks) or the handler can be preempted by the next NMI
	// forever.
	NMICounterMax uint16
	// HardwiredNMIVector routes NMI to NMIVector directly, bypassing
	// the IDT, so that NMI entry survives arbitrary RAM corruption.
	HardwiredNMIVector bool
	// NMIVector is the NMI entry point when HardwiredNMIVector is set.
	NMIVector SegOff
	// FixedIDTR hardwires the IDT base to IDTBase, making the IDTR
	// register non-writable (the paper's assumption "the idtr register
	// value can not be changed").
	FixedIDTR bool
	// IDTBase is the hardwired IDT base when FixedIDTR is set.
	IDTBase uint32
	// ExceptionPolicy selects exception behaviour.
	ExceptionPolicy ExceptionPolicy
	// ExceptionVector is the hardwired exception entry point for
	// ExceptionVector policy.
	ExceptionVector SegOff
	// ResetVector is where execution starts after reset.
	ResetVector SegOff
	// MemoryProtection enables the store-window extension: while
	// FlagWP is set and the executing code resides in RAM, data stores
	// outside the 4 KiB window at CPU.WP<<4 raise a general-protection
	// exception. Code executing from ROM (the stabilizers) is exempt,
	// playing the role of supervisor mode. This realizes, in
	// real-mode terms, the isolation the paper defers to protected
	// mode ("the data of each process resides in a distinct separate
	// ram area" becomes hardware-enforced).
	MemoryProtection bool
}

// WPWindowSize is the size in bytes of the memory-protection window.
const WPWindowSize = 0x1000

// Event classifies what one machine step did.
type Event uint8

// Step events.
const (
	EventInstr     Event = iota // executed one instruction (or one rep iteration)
	EventNMI                    // delivered a non-maskable interrupt
	EventIRQ                    // delivered a maskable interrupt
	EventException              // raised an exception
	EventReset                  // performed a hardware reset
	EventHalted                 // idle tick while halted
)

func (e Event) String() string {
	switch e {
	case EventInstr:
		return "instr"
	case EventNMI:
		return "nmi"
	case EventIRQ:
		return "irq"
	case EventException:
		return "exception"
	case EventReset:
		return "reset"
	case EventHalted:
		return "halted"
	}
	return "unknown"
}

// Stats counts step outcomes since machine creation.
//
// The first seven counters are architectural: two engines executing the
// same configuration sequence must agree on them exactly. The Block*
// counters are engine telemetry — how much work the superblock engine
// retired and how often it had to bail — and legitimately differ
// between engines; comparisons across engines go through Arch.
type Stats struct {
	Steps      uint64 // total clock ticks
	Instrs     uint64 // instructions executed (rep iterations count once each)
	NMIs       uint64 // NMIs delivered
	IRQs       uint64 // maskable interrupts delivered
	Exceptions uint64 // exceptions raised
	Resets     uint64 // hardware resets performed
	HaltTicks  uint64 // ticks spent halted

	Blocks      uint64 // superblocks entered (span validated, first entry run)
	BlockInstrs uint64 // instructions retired through superblock entries
	BlockBails  uint64 // superblocks abandoned before exhaustion (stale span, diverged pc, exception)
}

// String renders every counter compactly.
func (s Stats) String() string {
	return fmt.Sprintf("steps=%d instrs=%d nmis=%d irqs=%d exceptions=%d resets=%d halt=%d blocks=%d blkinstrs=%d blkbails=%d",
		s.Steps, s.Instrs, s.NMIs, s.IRQs, s.Exceptions, s.Resets, s.HaltTicks,
		s.Blocks, s.BlockInstrs, s.BlockBails)
}

// Delta returns the per-counter difference s - prev. Take a snapshot
// before a measured interval and Delta after it to attribute counts to
// that interval (the counters only ever grow).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Steps:       s.Steps - prev.Steps,
		Instrs:      s.Instrs - prev.Instrs,
		NMIs:        s.NMIs - prev.NMIs,
		IRQs:        s.IRQs - prev.IRQs,
		Exceptions:  s.Exceptions - prev.Exceptions,
		Resets:      s.Resets - prev.Resets,
		HaltTicks:   s.HaltTicks - prev.HaltTicks,
		Blocks:      s.Blocks - prev.Blocks,
		BlockInstrs: s.BlockInstrs - prev.BlockInstrs,
		BlockBails:  s.BlockBails - prev.BlockBails,
	}
}

// Arch returns the architectural counters with the engine-telemetry
// Block* counters zeroed. Differential suites comparing execution
// engines (interpreter vs predecode vs superblock) must compare
// Arch() values: the engines agree bit-for-bit on what the machine
// did, not on which fast path did it.
func (s Stats) Arch() Stats {
	s.Blocks, s.BlockInstrs, s.BlockBails = 0, 0, 0
	return s
}

// PortDevice is an I/O-port-mapped device.
type PortDevice interface {
	// In services the IN instruction for the given port.
	In(port uint16) uint16
	// Out services the OUT instruction for the given port.
	Out(port uint16, v uint16)
}

// Ticker is a device driven by the system clock. Tick is called once
// per machine step, before the processor acts, and may raise interrupt
// pins.
type Ticker interface {
	Tick(m *Machine)
}

// Pin bits for Machine.pins: latched external events awaiting the
// processor's attention.
const (
	pinNMI uint8 = 1 << iota
	pinReset
	pinIRQ
)

// Machine is the full system: processor, memory and devices.
type Machine struct {
	CPU   CPU
	Bus   *mem.Bus
	Opts  Options
	Stats Stats

	// pins latches pending external events (pin* bits). A single
	// bitmask lets the step loop rule out all three with one compare.
	pins   uint8
	irqVec uint8

	// ports maps I/O ports to devices. Machines carry a handful of
	// ports at most, so a linear scan beats a map hash on the
	// per-instruction in/out path.
	ports   []portBinding
	tickers []Ticker

	// dcache is the predecoded instruction cache (decodecache.go);
	// nil when disabled via SetDecodeCache. pageGens is the bus's
	// write-generation array, cached so a probe is two array loads.
	// slowInst is the scratch slot uncached decodes land in, so the
	// hot loop never allocates.
	dcache   *[dcSize]dcEntry
	pageGens *[mem.NumPages]uint64
	slowInst isa.Inst

	// Superblock engine state (superblock.go): sblocks is the
	// direct-mapped block table (nil when disabled via SetSuperblocks;
	// individual blocks are allocated on demand so idle replicas stay
	// small), sbCur/sbIdx the active block cursor, busStamp the bus's
	// write-epoch counter, and sbStamp its value when the current
	// block's span was last validated.
	sblocks  *[sbSize]*superblock
	sbCur    *superblock
	sbIdx    int
	busStamp *uint64
	sbStamp  uint64

	// AfterStep, when non-nil, is invoked after every step with the
	// event that occurred. Monitors and fault injectors hook here.
	AfterStep func(m *Machine, ev Event)

	// Probe, when non-nil, receives structured observability events
	// from the interrupt, exception and reset paths (never from the
	// per-instruction path, so an instrumented machine stays fast and
	// an uninstrumented one pays only a nil compare on rare paths).
	Probe obs.Probe
}

// New creates a machine with the given bus and hardware options and
// performs an initial reset.
func New(bus *mem.Bus, opts Options) *Machine {
	if opts.NMICounterMax == 0 {
		opts.NMICounterMax = 4096
	}
	m := &Machine{
		Bus:      bus,
		Opts:     opts,
		dcache:   new([dcSize]dcEntry),
		pageGens: bus.PageGens(),
		sblocks:  new([sbSize]*superblock),
		busStamp: bus.WriteStamp(),
	}
	m.Reset()
	return m
}

// Reset restores the architectural power-on state: registers cleared,
// interrupts disabled, execution at the reset vector. Memory is NOT
// cleared (RAM keeps whatever it held, as on real hardware).
func (m *Machine) Reset() {
	m.CPU = CPU{}
	m.CPU.S[isa.CS] = m.Opts.ResetVector.Seg
	m.CPU.IP = m.Opts.ResetVector.Off
	m.pins = 0
}

// AddTicker registers a clock-driven device.
func (m *Machine) AddTicker(t Ticker) { m.tickers = append(m.tickers, t) }

// portBinding ties one I/O port to its device.
type portBinding struct {
	port uint16
	dev  PortDevice
}

// MapPort maps an I/O port to a device. Mapping a port twice replaces
// the previous device.
func (m *Machine) MapPort(port uint16, d PortDevice) {
	for i := range m.ports {
		if m.ports[i].port == port {
			m.ports[i].dev = d
			return
		}
	}
	m.ports = append(m.ports, portBinding{port: port, dev: d})
}

// RaiseNMI latches the NMI pin. The pin stays set until the NMI is
// delivered (level-triggered latch, as the paper's watchdog assumes).
func (m *Machine) RaiseNMI() { m.pins |= pinNMI }

// NMIPending reports whether an NMI is latched but not yet delivered.
func (m *Machine) NMIPending() bool { return m.pins&pinNMI != 0 }

// RaiseReset latches the reset pin; the next step performs a hardware
// reset. The paper's first two schemes may wire the watchdog here
// instead of to NMI.
func (m *Machine) RaiseReset() { m.pins |= pinReset }

// RaiseIRQ latches a maskable interrupt with the given IDT vector. It
// is delivered when FlagIF is set.
func (m *Machine) RaiseIRQ(vec uint8) {
	m.pins |= pinIRQ
	m.irqVec = vec
}

// IDTBase returns the effective interrupt descriptor table base,
// honouring the FixedIDTR option.
func (m *Machine) IDTBase() uint32 {
	if m.Opts.FixedIDTR {
		return m.Opts.IDTBase
	}
	return m.CPU.IDTR
}

// Linear computes the physical address of seg:off.
func (m *Machine) Linear(seg isa.SReg, off uint16) uint32 {
	return (uint32(m.CPU.S[seg])<<4 + uint32(off)) & mem.AddrMask
}

// LoadWord reads the 16-bit word at seg:off.
//
// The two bytes are addressed with 16-bit offset wrap-around within
// the segment, as on real-mode hardware. Unless the offset wraps
// (off == 0xFFFF), the second byte's linear address is the first's
// plus one modulo the address space — exactly what the bus's fused
// word load computes — so the common case does one call instead of
// two byte loads with separate segment arithmetic.
func (m *Machine) LoadWord(seg isa.SReg, off uint16) uint16 {
	if off != 0xFFFF {
		return m.Bus.LoadWord(m.Linear(seg, off))
	}
	lo := m.Bus.LoadByte(m.Linear(seg, off))
	hi := m.Bus.LoadByte(m.Linear(seg, off+1))
	return uint16(lo) | uint16(hi)<<8
}

// StoreWord writes the 16-bit word at seg:off, reporting whether the
// store succeeded (false means it targeted ROM under the fault policy).
// Like LoadWord it defers to the bus's fused word store except when
// the 16-bit offset wraps within the segment.
func (m *Machine) StoreWord(seg isa.SReg, off uint16, v uint16) bool {
	if off != 0xFFFF {
		return m.Bus.StoreWord(m.Linear(seg, off), v)
	}
	ok1 := m.Bus.StoreByte(m.Linear(seg, off), byte(v))
	ok2 := m.Bus.StoreByte(m.Linear(seg, off+1), byte(v>>8))
	return ok1 && ok2
}

// push stores v on the stack (ss:sp), decrementing sp first. Interrupt
// pushes ignore store faults: the hardware drives the bus regardless,
// and a ROM target simply swallows the value.
func (m *Machine) push(v uint16) bool {
	m.CPU.R[isa.SP] -= 2
	return m.StoreWord(isa.SS, m.CPU.R[isa.SP], v)
}

// pop loads a word from the stack (ss:sp), incrementing sp.
func (m *Machine) pop() uint16 {
	v := m.LoadWord(isa.SS, m.CPU.R[isa.SP])
	m.CPU.R[isa.SP] += 2
	return v
}

// idtEntry reads the far pointer for vector n from the IDT.
func (m *Machine) idtEntry(n uint8) SegOff {
	base := (m.IDTBase() + uint32(n)*4) & mem.AddrMask
	return SegOff{
		Off: m.Bus.LoadWord(base),
		Seg: m.Bus.LoadWord(base + 2),
	}
}

// SetIDTEntry writes the far pointer for vector n into the IDT (a
// setup-time convenience for system builders; the guest could equally
// write it with store instructions).
func (m *Machine) SetIDTEntry(n uint8, target SegOff) {
	base := (m.IDTBase() + uint32(n)*4) & mem.AddrMask
	m.Bus.Poke(base, byte(target.Off))
	m.Bus.Poke(base+1, byte(target.Off>>8))
	m.Bus.Poke(base+2, byte(target.Seg))
	m.Bus.Poke(base+3, byte(target.Seg>>8))
}

// portIn services IN; unmapped ports read as all-ones, like a floating
// bus.
func (m *Machine) portIn(port uint16) uint16 {
	for i := range m.ports {
		if m.ports[i].port == port {
			return m.ports[i].dev.In(port)
		}
	}
	return 0xFFFF
}

// portOut services OUT; writes to unmapped ports are dropped.
func (m *Machine) portOut(port uint16, v uint16) {
	for i := range m.ports {
		if m.ports[i].port == port {
			m.ports[i].dev.Out(port, v)
			return
		}
	}
}

// String summarizes the machine state and step counters.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{%v %v}", &m.CPU, m.Stats)
}
