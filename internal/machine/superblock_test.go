package machine

import (
	"bytes"
	"math/rand"
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
)

// Three-way differential harness: the superblock engine, the
// predecode-only configuration and the reference interpreter are driven
// through identical schedules and must agree on every architectural
// observable. Where the two-way decode-cache harness steps machines one
// Step at a time, this one drives them through Run in uneven batches —
// that is the only path that exercises the batched loop, the turbo
// lane, block chaining and the bail paths.

// triLabels names the engines in newTriMachines order.
var triLabels = [3]string{"superblock", "predecode", "interp"}

// newTriMachines builds three machines over identical buses: the full
// engine stack (decode cache + superblocks, the default), predecode
// only, and the reference interpreter.
func newTriMachines(t testing.TB, opts Options) [3]*Machine {
	t.Helper()
	rom := []byte{byte(isa.OpJmp), 0, 0}
	var tri [3]*Machine
	for i := range tri {
		bus := mem.NewBus()
		if _, err := bus.AddROM("rom", 0xF0000, rom); err != nil {
			t.Fatal(err)
		}
		tri[i] = New(bus, opts)
	}
	tri[1].SetSuperblocks(false)
	tri[2].SetDecodeCache(false)
	return tri
}

// compareTriCPU asserts registers-level agreement (cheap, used per
// batch). Stats are compared through Arch(): the block counters are
// engine telemetry and legitimately differ across engines.
func compareTriCPU(t testing.TB, tri [3]*Machine, tag string) {
	t.Helper()
	ref := tri[2]
	for i := 0; i < 2; i++ {
		if tri[i].CPU != ref.CPU {
			t.Fatalf("%s: %s CPU diverged from interp:\n%s: %+v\ninterp: %+v",
				tag, triLabels[i], triLabels[i], tri[i].CPU, ref.CPU)
		}
		if tri[i].Stats.Arch() != ref.Stats.Arch() {
			t.Fatalf("%s: %s stats diverged from interp:\n%s: %v\ninterp: %v",
				tag, triLabels[i], triLabels[i], tri[i].Stats, ref.Stats)
		}
	}
}

// compareTri asserts full agreement including the memory image.
func compareTri(t testing.TB, tri [3]*Machine, tag string) {
	t.Helper()
	compareTriCPU(t, tri, tag)
	ref := tri[2].Bus.Snapshot()
	for i := 0; i < 2; i++ {
		if !bytes.Equal(tri[i].Bus.Snapshot(), ref) {
			t.Fatalf("%s: %s memory diverged from interp", tag, triLabels[i])
		}
	}
}

// triDo applies the same mutation to all three machines.
func triDo(tri [3]*Machine, f func(m *Machine)) {
	for _, m := range tri {
		f(m)
	}
}

// TestSuperblockThreeWayDifferential drives the three engines through
// Run in random batch sizes from randomized any-state starts, injecting
// identical faults between batches. Every batch boundary asserts
// CPU-and-stats agreement; every trial ends with a full memory compare.
func TestSuperblockThreeWayDifferential(t *testing.T) {
	trials, batches := 12, 400
	if testing.Short() {
		trials, batches = 4, 120
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(777000 + trial)))
		tri := newTriMachines(t, Options{
			ResetVector:        SegOff{0x0100, 0},
			NMICounter:         trial%2 == 0,
			HardwiredNMIVector: trial%3 == 0,
			NMIVector:          SegOff{0xF000, 0},
			ExceptionPolicy:    []ExceptionPolicy{ExceptionHalt, ExceptionVector, ExceptionIDT}[trial%3],
			ExceptionVector:    SegOff{0xF000, 0},
			MemoryProtection:   trial%5 == 0,
		})

		// Any-state start: identical random soup in RAM and a random
		// CPU configuration on all three.
		for i := 0; i < 8192; i++ {
			a := uint32(rng.Intn(mem.AddrSpace))
			v := byte(rng.Intn(256))
			triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, v) })
		}
		cpu := tri[0].CPU
		for i := range cpu.R {
			cpu.R[i] = uint16(rng.Intn(1 << 16))
		}
		for i := range cpu.S {
			cpu.S[i] = uint16(rng.Intn(1 << 16))
		}
		cpu.IP = uint16(rng.Intn(1 << 16))
		cpu.Flags = isa.Flags(rng.Intn(1 << 16))
		cpu.NMICounter = uint16(rng.Intn(1 << 16))
		triDo(tri, func(m *Machine) { m.CPU = cpu })

		for b := 0; b < batches; b++ {
			if rng.Intn(4) == 0 {
				// Identical fault between batches.
				switch rng.Intn(6) {
				case 0:
					a := uint32(rng.Intn(mem.AddrSpace))
					v := byte(rng.Intn(256))
					triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, v) })
				case 1: // aim at the live code stream
					a := (uint32(tri[0].CPU.S[isa.CS])<<4 + uint32(tri[0].CPU.IP) + uint32(rng.Intn(16))) & mem.AddrMask
					v := byte(rng.Intn(256))
					triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, v) })
				case 2:
					v := uint16(rng.Intn(1 << 16))
					triDo(tri, func(m *Machine) { m.CPU.IP = v })
				case 3:
					r := isa.SReg(rng.Intn(int(isa.NumSRegs)))
					v := uint16(rng.Intn(1 << 16))
					triDo(tri, func(m *Machine) { m.CPU.S[r] = v })
				case 4:
					triDo(tri, func(m *Machine) { m.RaiseNMI() })
				case 5:
					v := rng.Intn(2) == 0
					triDo(tri, func(m *Machine) { m.CPU.Halted = v })
				}
			}
			n := rng.Intn(97) + 1
			triDo(tri, func(m *Machine) { m.Run(n) })
			compareTriCPU(t, tri, "trial batch")
		}
		compareTri(t, tri, "trial final")
	}
}

// TestSuperblockSelfModifyingStoreInsideBlock pins the hardest
// staleness case for the batched engine with an exact program: a store
// INSIDE the currently executing superblock overwrites a later entry of
// that same block. The block was predecoded before the store ran, so an
// engine that skipped revalidation between entries would execute the
// stale nop; the write stamp must force a bail and the freshly written
// hlt must execute. Straight-line code, so all instructions share one
// block:
//
//	0: mov word [ds:6], hlt|hlt<<8  ; overwrites entries at offsets 6,7
//	6: nop                          ; stale: now hlt
//	7: nop                          ; stale: now hlt
//	8: nop
func TestSuperblockSelfModifyingStoreInsideBlock(t *testing.T) {
	hlt := uint16(isa.OpHlt) | uint16(isa.OpHlt)<<8
	code := prog(
		isa.Inst{Op: isa.OpMovMI, Mem: isa.MemOp{Seg: isa.DS, Disp: 6}, Imm: hlt},
		isa.Inst{Op: isa.OpNop},
		isa.Inst{Op: isa.OpNop},
		isa.Inst{Op: isa.OpNop},
	)
	if len(code) != 9 {
		t.Fatalf("encoding drifted: len=%d, fix the store target", len(code))
	}
	tri := newTriMachines(t, Options{ResetVector: SegOff{0x0100, 0}})
	for i, b := range code {
		a := 0x1000 + uint32(i)
		triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, b) })
	}
	triDo(tri, func(m *Machine) {
		m.CPU.S[isa.DS] = 0x0100
		m.Run(2) // mov (store into own block), then the stale slot
	})
	for i, m := range tri {
		if !m.CPU.Halted {
			t.Fatalf("%s: stale block entry served: self-modified hlt "+
				"did not execute (ip=%#x)", triLabels[i], m.CPU.IP)
		}
		if m.Stats.Steps != 2 || m.Stats.Instrs != 2 {
			t.Fatalf("%s: accounting: %v", triLabels[i], m.Stats)
		}
	}
	compareTri(t, tri, "in-block self-modify")
}

// TestSuperblockNegativeDecodeRevalidates pins the negative-caching
// regression for both layers that memoize "these bytes do not decode":
// the decode cache's inv entries and the engine's negative blocks. A
// machine parked on an invalid opcode raises (and caches the verdict);
// after the byte is overwritten with a valid instruction, the very next
// step must execute it — a stale negative verdict would raise again.
func TestSuperblockNegativeDecodeRevalidates(t *testing.T) {
	tri := newTriMachines(t, Options{
		ResetVector:     SegOff{0x0100, 0},
		ExceptionPolicy: ExceptionHalt,
	})
	const invalid = 0xFF // no opcode is defined at 0xFF
	if isa.InstLen(invalid) != 0 {
		t.Fatal("0xFF unexpectedly decodes; pick another invalid byte")
	}
	triDo(tri, func(m *Machine) { m.Bus.PokeRAM(0x1000, invalid) })

	// Two steps on the invalid byte: raise, halt, raise again after
	// unhalting — the second raise is served from the negative cache.
	triDo(tri, func(m *Machine) {
		m.Run(1)
		m.CPU.Halted = false
		m.Run(1)
		m.CPU.Halted = false
	})
	for i, m := range tri {
		if m.Stats.Exceptions != 2 {
			t.Fatalf("%s: exceptions = %d, want 2", triLabels[i], m.Stats.Exceptions)
		}
	}

	// Overwrite with a valid instruction; the cached negative verdict is
	// now stale and must not be served.
	mov := prog(isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xBEEF})
	for i, b := range mov {
		a := 0x1000 + uint32(i)
		triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, b) })
	}
	triDo(tri, func(m *Machine) { m.Run(1) })
	for i, m := range tri {
		if m.Stats.Exceptions != 2 || m.CPU.R[isa.AX] != 0xBEEF {
			t.Fatalf("%s: stale negative decode served: exceptions=%d ax=%#x",
				triLabels[i], m.Stats.Exceptions, m.CPU.R[isa.AX])
		}
	}
	compareTri(t, tri, "negative revalidate")
}

// TestSuperblockTelemetryCounts sanity-checks the engine telemetry on a
// known workload: a straight-line run into a tight loop must retire
// essentially every instruction through blocks, with zero bails, and
// the per-engine counters must stay zero on the engines that cannot
// produce them.
func TestSuperblockTelemetryCounts(t *testing.T) {
	code := prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0}, // 4 bytes
		isa.Inst{Op: isa.OpIncR, R1: r(isa.AX)},          // at offset 4
		isa.Inst{Op: isa.OpJmp, Imm: 4},                  // loop back to the inc
	)
	tri := newTriMachines(t, Options{ResetVector: SegOff{0x0100, 0}})
	for i, b := range code {
		a := 0x1000 + uint32(i)
		triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, b) })
	}
	triDo(tri, func(m *Machine) { m.Run(1000) })
	sb := tri[0]
	if sb.Stats.BlockInstrs != 1000 || sb.Stats.Blocks == 0 || sb.Stats.BlockBails != 0 {
		t.Fatalf("superblock telemetry off: %v", sb.Stats)
	}
	for _, i := range []int{1, 2} {
		s := tri[i].Stats
		if s.Blocks != 0 || s.BlockInstrs != 0 || s.BlockBails != 0 {
			t.Fatalf("%s: phantom block telemetry: %v", triLabels[i], s)
		}
	}
	compareTri(t, tri, "telemetry")
}

// TestSuperblockBailResumesInterpreter forces a mid-block bail through
// an asynchronous CPU corruption (ip rewritten between batches while
// the cursor is mid-block) and checks the engines stay in agreement —
// the bail itself is invisible architecturally.
func TestSuperblockBailResumesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	code := make([]byte, 0, 64)
	for i := 0; i < 12; i++ {
		code = append(code, prog(
			isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: uint16(i)},
			isa.Inst{Op: isa.OpIncR, R1: r(isa.BX)},
			isa.Inst{Op: isa.OpNop},
		)...)
	}
	code = append(code, prog(isa.Inst{Op: isa.OpJmp, Imm: 0})...)
	tri := newTriMachines(t, Options{ResetVector: SegOff{0x0100, 0}})
	for i, b := range code {
		a := 0x1000 + uint32(i)
		triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, b) })
	}
	for i := 0; i < 500; i++ {
		n := rng.Intn(5) + 1 // short batches leave the cursor mid-block
		triDo(tri, func(m *Machine) { m.Run(n) })
		if rng.Intn(3) == 0 {
			ip := uint16(rng.Intn(len(code)))
			triDo(tri, func(m *Machine) { m.CPU.IP = ip })
		}
		compareTriCPU(t, tri, "bail batch")
	}
	if tri[0].Stats.BlockBails == 0 {
		t.Fatal("schedule never produced a mid-block bail; weaken the corruption odds")
	}
	compareTri(t, tri, "bail final")
}
