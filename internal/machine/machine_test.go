package machine

import (
	"testing"
	"testing/quick"

	"ssos/internal/isa"
	"ssos/internal/mem"
)

// prog encodes instructions back to back.
func prog(ins ...isa.Inst) []byte {
	var b []byte
	for _, in := range ins {
		b = in.Encode(b)
	}
	return b
}

// newTestMachine loads code into RAM at 0100:0000 and points cs:ip at
// it, with a stack at 2000:1000.
func newTestMachine(t *testing.T, code []byte) *Machine {
	if t != nil {
		t.Helper()
	}
	bus := mem.NewBus()
	m := New(bus, Options{ResetVector: SegOff{0x0100, 0}})
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	m.CPU.S[isa.SS] = 0x2000
	m.CPU.R[isa.SP] = 0x1000
	m.CPU.S[isa.DS] = 0x0100
	return m
}

func r(reg isa.Reg) uint8 { return uint8(reg) }

func TestMovImmediateAndRegister(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x1234},
		isa.Inst{Op: isa.OpMovRR, R1: r(isa.BX), R2: r(isa.AX)},
		isa.Inst{Op: isa.OpMovSR, R1: uint8(isa.ES), R2: r(isa.BX)},
		isa.Inst{Op: isa.OpMovRS, R1: r(isa.CX), R2: uint8(isa.ES)},
	))
	m.Run(4)
	if m.CPU.R[isa.AX] != 0x1234 || m.CPU.R[isa.BX] != 0x1234 {
		t.Fatalf("regs: %v", &m.CPU)
	}
	if m.CPU.S[isa.ES] != 0x1234 || m.CPU.R[isa.CX] != 0x1234 {
		t.Fatalf("seg move: %v", &m.CPU)
	}
	if m.Stats.Instrs != 4 {
		t.Fatalf("Instrs = %d", m.Stats.Instrs)
	}
}

func TestMemoryOperands(t *testing.T) {
	abs := isa.MemOp{Seg: isa.DS, Disp: 0x200}
	idx := isa.MemOp{Seg: isa.DS, Base: isa.BaseBX, Disp: 4}
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovMI, Mem: abs, Imm: 0xBEEF},
		isa.Inst{Op: isa.OpMovRM, R1: r(isa.AX), Mem: abs},
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.BX), Imm: 0x1FC},
		isa.Inst{Op: isa.OpMovRM, R1: r(isa.CX), Mem: idx}, // ds:bx+4 = 0x200
		isa.Inst{Op: isa.OpMovMR, R1: r(isa.CX), Mem: isa.MemOp{Seg: isa.DS, Disp: 0x210}},
	))
	m.Run(5)
	if m.CPU.R[isa.AX] != 0xBEEF || m.CPU.R[isa.CX] != 0xBEEF {
		t.Fatalf("mem ops: %v", &m.CPU)
	}
	if got := m.LoadWord(isa.DS, 0x210); got != 0xBEEF {
		t.Fatalf("stored word = %#x", got)
	}
}

func TestSegmentOverrideAddressing(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovMR, R1: r(isa.AX), Mem: isa.MemOp{Seg: isa.SS, Disp: 0x0FFE}},
	))
	m.CPU.R[isa.AX] = 0xCAFE
	m.Run(1)
	if got := m.Bus.LoadWord(0x20000 + 0x0FFE); got != 0xCAFE {
		t.Fatalf("ss-relative store = %#x", got)
	}
}

func TestReg8Halves(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x1234},
		isa.Inst{Op: isa.OpMovR8I, R1: uint8(isa.AH), Imm: 0xAB},
		isa.Inst{Op: isa.OpMovR8R8, R1: uint8(isa.BL), R2: uint8(isa.AL)},
	))
	m.Run(3)
	if m.CPU.R[isa.AX] != 0xAB34 {
		t.Fatalf("ax = %#x", m.CPU.R[isa.AX])
	}
	if m.CPU.Reg8(isa.BL) != 0x34 {
		t.Fatalf("bl = %#x", m.CPU.Reg8(isa.BL))
	}
}

func TestMul8(t *testing.T) {
	// Paper Figure 3 lines 12-13: record address = index * entry size.
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovR8I, R1: uint8(isa.AL), Imm: 3},
		isa.Inst{Op: isa.OpMovR8I, R1: uint8(isa.AH), Imm: 26},
		isa.Inst{Op: isa.OpMulR8, R1: uint8(isa.AH)},
	))
	m.Run(3)
	if m.CPU.R[isa.AX] != 78 {
		t.Fatalf("ax = %d, want 78", m.CPU.R[isa.AX])
	}
	if m.CPU.Flags.Has(isa.FlagCF) {
		t.Fatal("CF should be clear for small product")
	}
}

func TestArithmeticFlags(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xFFFF},
		isa.Inst{Op: isa.OpAddRI, R1: r(isa.AX), Imm: 1}, // 0, CF
	))
	m.Run(2)
	if m.CPU.R[isa.AX] != 0 || !m.CPU.Flags.Has(isa.FlagZF) || !m.CPU.Flags.Has(isa.FlagCF) {
		t.Fatalf("add wrap: ax=%#x fl=%v", m.CPU.R[isa.AX], m.CPU.Flags)
	}

	m = newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 5},
		isa.Inst{Op: isa.OpCmpRI, R1: r(isa.AX), Imm: 7}, // below → CF
	))
	m.Run(2)
	if !m.CPU.Flags.Has(isa.FlagCF) || m.CPU.Flags.Has(isa.FlagZF) {
		t.Fatalf("cmp below: fl=%v", m.CPU.Flags)
	}
	if m.CPU.R[isa.AX] != 5 {
		t.Fatal("cmp must not modify the register")
	}
}

func TestConditionalJumps(t *testing.T) {
	// cmp ax,ax → equal → je taken.
	code := prog(
		isa.Inst{Op: isa.OpCmpRR, R1: r(isa.AX), R2: r(isa.AX)}, // 0
		isa.Inst{Op: isa.OpJe, Imm: 0x10},                       // 3
	)
	m := newTestMachine(t, code)
	m.Run(2)
	if m.CPU.IP != 0x10 {
		t.Fatalf("je not taken: ip=%#x", m.CPU.IP)
	}

	// jb taken on CF (paper Figure 5 line 49 uses jb for cs check).
	m = newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 1},
		isa.Inst{Op: isa.OpCmpRI, R1: r(isa.AX), Imm: 2},
		isa.Inst{Op: isa.OpJb, Imm: 0x40},
	))
	m.Run(3)
	if m.CPU.IP != 0x40 {
		t.Fatalf("jb not taken: ip=%#x", m.CPU.IP)
	}

	// jne falls through when equal.
	m = newTestMachine(t, prog(
		isa.Inst{Op: isa.OpCmpRR, R1: r(isa.AX), R2: r(isa.AX)},
		isa.Inst{Op: isa.OpJne, Imm: 0x40},
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.BX), Imm: 7},
	))
	m.Run(3)
	if m.CPU.R[isa.BX] != 7 {
		t.Fatal("jne should fall through")
	}
}

func TestJmpFarLoadsCSIP(t *testing.T) {
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpJmpFar, Imm: 0xA000, Imm2: 0x0042}))
	m.Run(1)
	if m.CPU.S[isa.CS] != 0xA000 || m.CPU.IP != 0x0042 {
		t.Fatalf("far jmp: %v", m.CPU.PC())
	}
}

func TestLoopDecrementsCX(t *testing.T) {
	// mov cx,3; L: inc ax; loop L
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.CX), Imm: 3}, // 0..3
		isa.Inst{Op: isa.OpIncR, R1: r(isa.AX)},          // 4..5
		isa.Inst{Op: isa.OpLoop, Imm: 4},                 // 6..8
	))
	m.Run(1 + 3*2)
	if m.CPU.R[isa.AX] != 3 || m.CPU.R[isa.CX] != 0 {
		t.Fatalf("loop: ax=%d cx=%d", m.CPU.R[isa.AX], m.CPU.R[isa.CX])
	}
}

func TestCallRet(t *testing.T) {
	// call 0x20; hlt; ... at 0x20: mov ax,9; ret
	code := make([]byte, 0x40)
	head := prog(
		isa.Inst{Op: isa.OpCall, Imm: 0x20},
		isa.Inst{Op: isa.OpHlt},
	)
	copy(code, head)
	sub := prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 9},
		isa.Inst{Op: isa.OpRet},
	)
	copy(code[0x20:], sub)
	m := newTestMachine(t, code)
	m.Run(5)
	if m.CPU.R[isa.AX] != 9 || !m.CPU.Halted {
		t.Fatalf("call/ret: ax=%d halted=%v ip=%#x", m.CPU.R[isa.AX], m.CPU.Halted, m.CPU.IP)
	}
}

func TestPushPopStack(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x5678},
		isa.Inst{Op: isa.OpPushR, R1: r(isa.AX)},
		isa.Inst{Op: isa.OpPopR, R1: r(isa.BX)},
		isa.Inst{Op: isa.OpPushI, Imm: 0x9ABC},
		isa.Inst{Op: isa.OpPopS, R1: uint8(isa.ES)},
		isa.Inst{Op: isa.OpPushS, R1: uint8(isa.ES)},
		isa.Inst{Op: isa.OpPopR, R1: r(isa.CX)},
	))
	sp0 := m.CPU.R[isa.SP]
	m.Run(7)
	if m.CPU.R[isa.BX] != 0x5678 || m.CPU.S[isa.ES] != 0x9ABC || m.CPU.R[isa.CX] != 0x9ABC {
		t.Fatalf("stack ops: %v", &m.CPU)
	}
	if m.CPU.R[isa.SP] != sp0 {
		t.Fatalf("sp drifted: %#x -> %#x", sp0, m.CPU.R[isa.SP])
	}
}

func TestStringCopyAndDirection(t *testing.T) {
	// Copy 4 bytes from ds:0x300 to es:0x400 with rep movsb.
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpCld},
		isa.Inst{Op: isa.OpRepMovsb},
		isa.Inst{Op: isa.OpHlt},
	))
	m.CPU.S[isa.ES] = 0x0100
	m.CPU.R[isa.SI] = 0x300
	m.CPU.R[isa.DI] = 0x400
	m.CPU.R[isa.CX] = 4
	for i := 0; i < 4; i++ {
		m.Bus.Poke(0x1000+0x300+uint32(i), byte(0x10+i))
	}
	// 1 cld + 4 copy ticks + hlt
	m.Run(6)
	for i := 0; i < 4; i++ {
		if got := m.Bus.LoadByte(0x1000 + 0x400 + uint32(i)); got != byte(0x10+i) {
			t.Fatalf("byte %d = %#x", i, got)
		}
	}
	if m.CPU.R[isa.CX] != 0 || !m.CPU.Halted {
		t.Fatalf("after rep: cx=%d halted=%v", m.CPU.R[isa.CX], m.CPU.Halted)
	}
	if m.CPU.R[isa.SI] != 0x304 || m.CPU.R[isa.DI] != 0x404 {
		t.Fatalf("si/di: %#x %#x", m.CPU.R[isa.SI], m.CPU.R[isa.DI])
	}
}

func TestRepMovsbZeroCXIsNop(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpRepMovsb},
		isa.Inst{Op: isa.OpHlt},
	))
	m.CPU.R[isa.CX] = 0
	m.Run(2)
	if !m.CPU.Halted {
		t.Fatal("rep with cx=0 should fall through in one step")
	}
}

func TestRepMovsbTerminatesFromAnyCX(t *testing.T) {
	// Property (paper Lemma 3.2 discussion): the cx-bounded copy always
	// terminates, for any initial cx value.
	f := func(cx uint16) bool {
		m := newTestMachine(nil, prog(
			isa.Inst{Op: isa.OpRepMovsb},
			isa.Inst{Op: isa.OpHlt},
		))
		m.CPU.R[isa.CX] = cx
		return m.RunUntil(int(cx)+4, func(m *Machine) bool { return m.CPU.Halted })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStosbLodsb(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovR8I, R1: uint8(isa.AL), Imm: 0x7E},
		isa.Inst{Op: isa.OpStosb},
		isa.Inst{Op: isa.OpLodsb},
	))
	m.CPU.S[isa.ES] = 0x0100
	m.CPU.R[isa.DI] = 0x500
	m.CPU.R[isa.SI] = 0x500
	m.Run(3)
	if m.Bus.LoadByte(0x1000+0x500) != 0x7E {
		t.Fatal("stosb did not store")
	}
	if m.CPU.Reg8(isa.AL) != 0x7E || m.CPU.R[isa.SI] != 0x501 || m.CPU.R[isa.DI] != 0x501 {
		t.Fatalf("lodsb/advance: %v", &m.CPU)
	}
}

type testPort struct {
	last  uint16
	value uint16
	outs  int
}

func (p *testPort) In(uint16) uint16 { return p.value }
func (p *testPort) Out(_ uint16, v uint16) {
	p.last = v
	p.outs++
}

func TestIOPorts(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x4242},
		isa.Inst{Op: isa.OpOutI, Imm: 0x10},
		isa.Inst{Op: isa.OpInI, Imm: 0x10},
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.DX), Imm: 0x10},
		isa.Inst{Op: isa.OpOutDx},
		isa.Inst{Op: isa.OpInI, Imm: 0x99}, // unmapped
	))
	p := &testPort{value: 0x1111}
	m.MapPort(0x10, p)
	m.Run(6)
	if p.last != 0x1111 || p.outs != 2 {
		t.Fatalf("port writes: %+v", p)
	}
	if m.CPU.R[isa.AX] != 0xFFFF {
		t.Fatalf("unmapped port read = %#x, want 0xFFFF", m.CPU.R[isa.AX])
	}
}

func TestHltAndNMIWake(t *testing.T) {
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpHlt}))
	m.Opts.NMICounter = true
	m.Opts.HardwiredNMIVector = true
	m.Opts.NMIVector = SegOff{0x0100, 0x80}
	m.Run(3)
	if !m.CPU.Halted || m.Stats.HaltTicks != 2 {
		t.Fatalf("halt: %v stats=%+v", m.CPU.Halted, m.Stats)
	}
	m.RaiseNMI()
	ev := m.Step()
	if ev != EventNMI || m.CPU.Halted {
		t.Fatalf("NMI wake: ev=%v halted=%v", ev, m.CPU.Halted)
	}
	if m.CPU.PC() != (SegOff{0x0100, 0x80}) {
		t.Fatalf("NMI vector: %v", m.CPU.PC())
	}
}

func TestNMIPushesAndIretRestores(t *testing.T) {
	// Handler at 0100:0040 does iret; main does nops.
	code := make([]byte, 0x60)
	copy(code, prog(isa.Inst{Op: isa.OpNop}, isa.Inst{Op: isa.OpNop}))
	copy(code[0x40:], prog(isa.Inst{Op: isa.OpIret}))
	m := newTestMachine(t, code)
	m.Opts.NMICounter = true
	m.Opts.NMICounterMax = 100
	m.Opts.HardwiredNMIVector = true
	m.Opts.NMIVector = SegOff{0x0100, 0x40}

	m.Step() // one nop, ip=1
	m.RaiseNMI()
	if ev := m.Step(); ev != EventNMI {
		t.Fatalf("ev=%v", ev)
	}
	if m.CPU.NMICounter != 100 {
		t.Fatalf("nmi counter = %d", m.CPU.NMICounter)
	}
	if m.CPU.Flags.Has(isa.FlagIF) {
		t.Fatal("IF should be cleared on NMI entry")
	}
	// Execute iret.
	if ev := m.Step(); ev != EventInstr {
		t.Fatalf("iret ev=%v", ev)
	}
	if m.CPU.PC() != (SegOff{0x0100, 1}) {
		t.Fatalf("resume pc = %v", m.CPU.PC())
	}
	if m.CPU.NMICounter != 0 {
		t.Fatalf("iret must zero nmi counter, got %d", m.CPU.NMICounter)
	}
}

func TestNMICounterMasksDelivery(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpNop}, isa.Inst{Op: isa.OpNop}, isa.Inst{Op: isa.OpNop},
		isa.Inst{Op: isa.OpNop}, isa.Inst{Op: isa.OpNop}, isa.Inst{Op: isa.OpNop},
	))
	m.Opts.NMICounter = true
	m.Opts.HardwiredNMIVector = true
	m.Opts.NMIVector = SegOff{0x0100, 0x40}
	m.CPU.NMICounter = 3
	m.RaiseNMI()
	// Counter 3,2,1 → three instruction steps; delivery on the fourth.
	for i := 0; i < 3; i++ {
		if ev := m.Step(); ev != EventInstr {
			t.Fatalf("step %d: ev=%v (counter=%d)", i, ev, m.CPU.NMICounter)
		}
	}
	if ev := m.Step(); ev != EventNMI {
		t.Fatalf("expected NMI delivery, got %v", ev)
	}
}

func TestNMICounterConvergesFromAnyState(t *testing.T) {
	// Property (paper Lemma 3.1): with the NMI-counter hardware, from
	// ANY processor state a raised NMI is delivered within
	// counter+1 steps.
	f := func(counter uint16, halted bool) bool {
		m := newTestMachine(nil, prog(isa.Inst{Op: isa.OpNop}))
		m.Opts.NMICounter = true
		m.Opts.HardwiredNMIVector = true
		m.Opts.NMIVector = SegOff{0x0100, 0x40}
		m.CPU.NMICounter = counter
		m.CPU.Halted = halted
		m.RaiseNMI()
		delivered := false
		for i := 0; i <= int(counter)+1; i++ {
			if m.Step() == EventNMI {
				delivered = true
				break
			}
		}
		return delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStockNMILatchCanMaskForever(t *testing.T) {
	// The hazard motivating the paper's NMI counter: with stock
	// hardware, an arbitrary initial state with InNMI set never
	// delivers NMIs if the code never executes iret.
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpJmp, Imm: 0})) // tight loop
	m.Opts.NMICounter = false
	m.CPU.InNMI = true
	m.RaiseNMI()
	for i := 0; i < 10000; i++ {
		if m.Step() == EventNMI {
			t.Fatal("NMI delivered despite stuck InNMI latch")
		}
	}
	if m.Stats.NMIs != 0 {
		t.Fatal("unexpected NMI delivery")
	}
}

func TestMaskableIRQRespectsIF(t *testing.T) {
	code := make([]byte, 0x60)
	copy(code, prog(
		isa.Inst{Op: isa.OpNop},
		isa.Inst{Op: isa.OpSti},
		isa.Inst{Op: isa.OpNop},
	))
	copy(code[0x40:], prog(isa.Inst{Op: isa.OpIret}))
	m := newTestMachine(t, code)
	m.Opts.FixedIDTR = true
	m.SetIDTEntry(VecTimer, SegOff{0x0100, 0x40})
	m.RaiseIRQ(VecTimer)
	// IF clear: nop executes, no delivery.
	if ev := m.Step(); ev != EventInstr {
		t.Fatalf("ev=%v", ev)
	}
	m.Step() // sti
	if ev := m.Step(); ev != EventIRQ {
		t.Fatalf("IRQ after sti: ev=%v", ev)
	}
	if m.CPU.PC() != (SegOff{0x0100, 0x40}) {
		t.Fatalf("IRQ vector: %v", m.CPU.PC())
	}
}

func TestSoftwareInterrupt(t *testing.T) {
	code := make([]byte, 0x60)
	copy(code, prog(
		isa.Inst{Op: isa.OpInt, Imm: 0x21},
		isa.Inst{Op: isa.OpHlt},
	))
	copy(code[0x40:], prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x77},
		isa.Inst{Op: isa.OpIret},
	))
	m := newTestMachine(t, code)
	m.Opts.FixedIDTR = true
	m.SetIDTEntry(0x21, SegOff{0x0100, 0x40})
	m.Run(4)
	if m.CPU.R[isa.AX] != 0x77 || !m.CPU.Halted {
		t.Fatalf("int/iret: ax=%#x halted=%v pc=%v", m.CPU.R[isa.AX], m.CPU.Halted, m.CPU.PC())
	}
}

func TestInvalidOpcodeExceptionPolicies(t *testing.T) {
	junk := []byte{0xFF, 0xFF}

	// Halt policy.
	m := newTestMachine(t, junk)
	m.Opts.ExceptionPolicy = ExceptionHalt
	if ev := m.Step(); ev != EventException || !m.CPU.Halted {
		t.Fatalf("halt policy: ev=%v halted=%v", ev, m.CPU.Halted)
	}

	// Hardwired vector policy.
	m = newTestMachine(t, junk)
	m.Opts.ExceptionPolicy = ExceptionVector
	m.Opts.ExceptionVector = SegOff{0xF000, 0x10}
	if ev := m.Step(); ev != EventException {
		t.Fatalf("ev=%v", ev)
	}
	if m.CPU.PC() != (SegOff{0xF000, 0x10}) {
		t.Fatalf("vector policy pc: %v", m.CPU.PC())
	}

	// IDT policy.
	m = newTestMachine(t, junk)
	m.Opts.ExceptionPolicy = ExceptionIDT
	m.Opts.FixedIDTR = true
	m.SetIDTEntry(VecInvalidOpcode, SegOff{0xA000, 0x22})
	if ev := m.Step(); ev != EventException {
		t.Fatalf("ev=%v", ev)
	}
	if m.CPU.PC() != (SegOff{0xA000, 0x22}) {
		t.Fatalf("idt policy pc: %v", m.CPU.PC())
	}
	if m.Stats.Exceptions != 1 {
		t.Fatalf("exceptions = %d", m.Stats.Exceptions)
	}
}

func TestROMStoreFaults(t *testing.T) {
	bus := mem.NewBus()
	bus.SetROMWritePolicy(mem.ROMWriteFault)
	if _, err := bus.AddROM("r", 0x50000, make([]byte, 0x100)); err != nil {
		t.Fatal(err)
	}
	code := prog(isa.Inst{Op: isa.OpMovMR, R1: r(isa.AX), Mem: isa.MemOp{Seg: isa.DS, Disp: 0}})
	m := New(bus, Options{ResetVector: SegOff{0x0100, 0}, ExceptionPolicy: ExceptionHalt})
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	m.CPU.S[isa.DS] = 0x5000 // ds:0 = 0x50000 → ROM
	if ev := m.Step(); ev != EventException {
		t.Fatalf("ROM store: ev=%v", ev)
	}
}

func TestResetPinAndVector(t *testing.T) {
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpNop}))
	m.CPU.R[isa.AX] = 0xDEAD
	m.RaiseReset()
	if ev := m.Step(); ev != EventReset {
		t.Fatalf("ev=%v", ev)
	}
	if m.CPU.R[isa.AX] != 0 || m.CPU.PC() != (SegOff{0x0100, 0}) {
		t.Fatalf("reset state: %v", &m.CPU)
	}
	if m.Stats.Resets != 1 {
		t.Fatalf("resets = %d", m.Stats.Resets)
	}
}

func TestIDTRCorruptionRedirectsInterrupts(t *testing.T) {
	// The paper's idtr example: a corrupted idtr makes vectoring read
	// attacker^Wfault-chosen garbage. With FixedIDTR the corruption has
	// no effect.
	code := make([]byte, 0x60)
	copy(code, prog(isa.Inst{Op: isa.OpInt, Imm: 1}))
	m := newTestMachine(t, code)
	m.Opts.FixedIDTR = false
	m.CPU.IDTR = 0x700 // corrupted base; entry 1 at 0x704 reads zeros
	m.Bus.Poke(0x704, 0x34)
	m.Bus.Poke(0x705, 0x12)
	m.Bus.Poke(0x706, 0x00)
	m.Bus.Poke(0x707, 0xB0)
	m.Step()
	if m.CPU.PC() != (SegOff{0xB000, 0x1234}) {
		t.Fatalf("corrupted idtr should redirect: %v", m.CPU.PC())
	}

	m2 := newTestMachine(t, code)
	m2.Opts.FixedIDTR = true
	m2.Opts.IDTBase = 0
	m2.CPU.IDTR = 0x700 // ignored
	m2.SetIDTEntry(1, SegOff{0xC000, 0x1})
	m2.Step()
	if m2.CPU.PC() != (SegOff{0xC000, 0x1}) {
		t.Fatalf("fixed idtr should use hardwired base: %v", m2.CPU.PC())
	}
}

func TestAfterStepHook(t *testing.T) {
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpNop}, isa.Inst{Op: isa.OpNop}))
	var events []Event
	m.AfterStep = func(_ *Machine, ev Event) { events = append(events, ev) }
	m.Run(2)
	if len(events) != 2 || events[0] != EventInstr {
		t.Fatalf("hook events: %v", events)
	}
}

func TestStepIsTotalFromArbitraryState(t *testing.T) {
	// Property: Step never panics and always makes progress counting,
	// whatever the CPU state — required for the "started in any
	// configuration" model.
	f := func(ax, bx, sp, ip, cs, ss uint16, flags uint16, nmic uint16, halted bool) bool {
		m := newTestMachine(nil, prog(isa.Inst{Op: isa.OpNop}))
		m.Opts.NMICounter = true
		m.Opts.HardwiredNMIVector = true
		m.Opts.NMIVector = SegOff{0x0100, 0}
		m.CPU.R[isa.AX] = ax
		m.CPU.R[isa.BX] = bx
		m.CPU.R[isa.SP] = sp
		m.CPU.IP = ip
		m.CPU.S[isa.CS] = cs
		m.CPU.S[isa.SS] = ss
		m.CPU.Flags = isa.Flags(flags)
		m.CPU.NMICounter = nmic
		m.CPU.Halted = halted
		before := m.Stats.Steps
		for i := 0; i < 32; i++ {
			m.Step()
		}
		return m.Stats.Steps == before+32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShifts(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x0081},
		isa.Inst{Op: isa.OpShlRI, R1: r(isa.AX), Imm: 8},
		isa.Inst{Op: isa.OpShrRI, R1: r(isa.AX), Imm: 15},
	))
	m.Run(2)
	if m.CPU.R[isa.AX] != 0x8100 {
		t.Fatalf("shl: %#x", m.CPU.R[isa.AX])
	}
	m.Run(1)
	if m.CPU.R[isa.AX] != 0x0001 {
		t.Fatalf("shr: %#x", m.CPU.R[isa.AX])
	}
}

func TestLea(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.BX), Imm: 0x100},
		isa.Inst{Op: isa.OpLea, R1: r(isa.SI), Mem: isa.MemOp{Seg: isa.DS, Base: isa.BaseBX, Disp: 0x23}},
	))
	m.Run(2)
	if m.CPU.R[isa.SI] != 0x123 {
		t.Fatalf("lea: %#x", m.CPU.R[isa.SI])
	}
}
