package machine

import (
	"ssos/internal/isa"
	"ssos/internal/mem"
)

// The predecoded instruction cache.
//
// Every machine step re-runs fetch–decode on the bytes at cs:ip; for
// the loops that dominate every experiment those bytes almost never
// change, so the machine keeps a direct-mapped cache of decode results
// keyed by the linear address of the instruction's first byte.
//
// Soundness from ANY configuration is the paper's constraint and the
// design driver. A cached entry records the bus write-generation of
// the page(s) holding its bytes at fill time (pages are mem.PageSize
// bytes). Every path that can alter memory — executed stores, word
// stores, test Pokes, fault-injection PokeRAMs, snapshot Restores —
// bumps the generation of the pages it touches, so a hit is served
// only when the backing bytes are provably unmodified since the fill.
// There is no "flush" anyone could forget to call: staleness is
// detected, not prevented, which makes the fast path bit-identical to
// re-decoding from scratch regardless of how the configuration was
// reached (self-modifying code, injected bit-flips, adopted snapshots).
//
// Entries are served only when neither the 16-bit segment offset nor
// the 20-bit linear range of a maximal instruction wraps; the rare
// wrapping fetches take the byte-wise slow path, whose semantics the
// cache must (and does) reproduce exactly elsewhere.

const (
	// dcBits sizes the direct-mapped cache; 4096 entries cover every
	// guest in the repo many times over while keeping the table small
	// enough to stay hot.
	dcBits = 12
	dcSize = 1 << dcBits
	dcMask = dcSize - 1
)

// dcEntry is one cached decode. tag holds the linear address of the
// instruction's first byte plus one (0 = empty slot). gen0/gen1 are
// the write-generations of the first and last byte's pages at fill
// time (equal pages store the same value twice; comparing both is
// cheaper than branching).
//
// Known-invalid decodes are cached too (inv set): a guest spinning on
// an illegal opcode — the paper's corrupt-pc-lands-on-data scenario —
// would otherwise re-run Decode every step. For an invalid entry, span
// covers exactly the bytes Decode examined (max(InstLen(b0), 1), per
// the isa.InstLen cacheability contract), so the generation check
// guards precisely the bytes the verdict depends on.
type dcEntry struct {
	// Probe-order layout: the hit test reads tag, span, gen0 and gen1,
	// so they lead the struct and share a cache line; inst is only
	// touched on a confirmed hit.
	tag  uint32
	span uint8
	inv  bool
	gen0 uint64
	gen1 uint64
	inst isa.Inst
}

// SetDecodeCache enables or disables the predecoded instruction cache.
// The cache is on by default; disabling it forces every fetch through
// the byte-wise slow path and also disables the superblock engine built
// on top of it (SetSuperblocks), so "cache off" means the full
// reference interpreter. Behaviour must be bit-identical either way —
// the differential tests and fuzzer hold the modes against each other —
// so this exists for those tests and for A/B benchmarking, not for
// correctness control.
func (m *Machine) SetDecodeCache(on bool) {
	if on {
		if m.dcache == nil {
			m.dcache = new([dcSize]dcEntry)
		}
	} else {
		m.dcache = nil
		m.SetSuperblocks(false)
	}
}

// fetch reads and decodes the instruction at cs:ip, consulting the
// predecoded cache. Offsets wrap within the 64 KiB segment as on real
// hardware; wrapping fetches (and cache-disabled machines) take the
// byte-wise slow path.
func (m *Machine) fetch() (*isa.Inst, int, bool) {
	ip := m.CPU.IP
	lin := (uint32(m.CPU.S[isa.CS])<<4 + uint32(ip)) & mem.AddrMask
	if m.dcache == nil ||
		ip > 0x10000-isa.MaxInstrSize ||
		lin > mem.AddrSpace-isa.MaxInstrSize {
		return m.fetchSlow()
	}
	gens := m.pageGens
	e := &m.dcache[lin&dcMask]
	// Masking the last-byte index with AddrMask is a no-op for valid
	// entries (lin+span-1 <= AddrMask on this path) but lets the
	// compiler prove the index is in range, eliding the bounds check.
	if e.tag == lin+1 &&
		gens[lin>>mem.PageShift] == e.gen0 &&
		gens[((lin+uint32(e.span)-1)&mem.AddrMask)>>mem.PageShift] == e.gen1 {
		if e.inv {
			// Known-invalid: reproduce the miss path's outputs exactly
			// (zero scratch instruction, size 0, ok false).
			m.slowInst = isa.Inst{}
			return &m.slowInst, 0, false
		}
		return &e.inst, int(e.span), true
	}
	in, size, ok := isa.Decode(m.Bus.View(lin, isa.MaxInstrSize))
	if !ok {
		// Cache the invalid verdict over the bytes Decode examined.
		span := isa.InstLen(m.Bus.LoadByte(lin))
		if span == 0 {
			span = 1
		}
		e.tag = lin + 1
		e.inst = isa.Inst{}
		e.span = uint8(span)
		e.inv = true
		e.gen0 = gens[lin>>mem.PageShift]
		e.gen1 = gens[(lin+uint32(span)-1)>>mem.PageShift]
		m.slowInst = in
		return &m.slowInst, size, false
	}
	e.tag = lin + 1
	e.inst = in
	e.span = uint8(size)
	e.inv = false
	e.gen0 = gens[lin>>mem.PageShift]
	e.gen1 = gens[(lin+uint32(size)-1)>>mem.PageShift]
	return &e.inst, size, true
}

// fetchSlow is the byte-wise reference fetch path: it reads
// MaxInstrSize bytes with full 16-bit segment-offset and 20-bit linear
// wrap-around, exactly as the pre-cache machine did. The first byte
// bounds the read via isa.InstLen, so short instructions cost
// proportionally fewer bus loads.
func (m *Machine) fetchSlow() (*isa.Inst, int, bool) {
	var buf [isa.MaxInstrSize]byte
	buf[0] = m.Bus.LoadByte(m.Linear(isa.CS, m.CPU.IP))
	n := isa.InstLen(buf[0])
	if n == 0 {
		n = 1 // invalid opcode: Decode needs only the first byte
	}
	for i := 1; i < n; i++ {
		buf[i] = m.Bus.LoadByte(m.Linear(isa.CS, m.CPU.IP+uint16(i)))
	}
	in, size, ok := isa.Decode(buf[:n])
	m.slowInst = in
	return &m.slowInst, size, ok
}
