package machine

import (
	"ssos/internal/isa"
	"ssos/internal/mem"
)

// The predecoded instruction cache.
//
// Every machine step re-runs fetch–decode on the bytes at cs:ip; for
// the loops that dominate every experiment those bytes almost never
// change, so the machine keeps a direct-mapped cache of decode results
// keyed by the linear address of the instruction's first byte.
//
// Soundness from ANY configuration is the paper's constraint and the
// design driver. A cached entry records the bus write-generation of
// the page(s) holding its bytes at fill time (pages are mem.PageSize
// bytes). Every path that can alter memory — executed stores, word
// stores, test Pokes, fault-injection PokeRAMs, snapshot Restores —
// bumps the generation of the pages it touches, so a hit is served
// only when the backing bytes are provably unmodified since the fill.
// There is no "flush" anyone could forget to call: staleness is
// detected, not prevented, which makes the fast path bit-identical to
// re-decoding from scratch regardless of how the configuration was
// reached (self-modifying code, injected bit-flips, adopted snapshots).
//
// Entries are served only when neither the 16-bit segment offset nor
// the 20-bit linear range of a maximal instruction wraps; the rare
// wrapping fetches take the byte-wise slow path, whose semantics the
// cache must (and does) reproduce exactly elsewhere.

const (
	// dcBits sizes the direct-mapped cache; 4096 entries cover every
	// guest in the repo many times over while keeping the table small
	// enough to stay hot.
	dcBits = 12
	dcSize = 1 << dcBits
	dcMask = dcSize - 1
)

// dcEntry is one cached decode. tag holds the linear address of the
// instruction's first byte plus one (0 = empty slot). gen0/gen1 are
// the write-generations of the first and last byte's pages at fill
// time (equal pages store the same value twice; comparing both is
// cheaper than branching).
type dcEntry struct {
	// Probe-order layout: the hit test reads tag, size, gen0 and gen1,
	// so they lead the struct and share a cache line; inst is only
	// touched on a confirmed hit.
	tag  uint32
	size uint8
	gen0 uint64
	gen1 uint64
	inst isa.Inst
}

// SetDecodeCache enables or disables the predecoded instruction cache.
// The cache is on by default; disabling it forces every fetch through
// the byte-wise slow path. Behaviour must be bit-identical either way
// — the differential tests and fuzzer hold the two modes against each
// other — so this exists for those tests and for A/B benchmarking, not
// for correctness control.
func (m *Machine) SetDecodeCache(on bool) {
	if on {
		if m.dcache == nil {
			m.dcache = new([dcSize]dcEntry)
		}
	} else {
		m.dcache = nil
	}
}

// fetch reads and decodes the instruction at cs:ip, consulting the
// predecoded cache. Offsets wrap within the 64 KiB segment as on real
// hardware; wrapping fetches (and cache-disabled machines) take the
// byte-wise slow path.
func (m *Machine) fetch() (*isa.Inst, int, bool) {
	ip := m.CPU.IP
	lin := (uint32(m.CPU.S[isa.CS])<<4 + uint32(ip)) & mem.AddrMask
	if m.dcache == nil ||
		ip > 0x10000-isa.MaxInstrSize ||
		lin > mem.AddrSpace-isa.MaxInstrSize {
		return m.fetchSlow()
	}
	gens := m.pageGens
	e := &m.dcache[lin&dcMask]
	// Masking the last-byte index with AddrMask is a no-op for valid
	// entries (lin+size-1 <= AddrMask on this path) but lets the
	// compiler prove the index is in range, eliding the bounds check.
	if e.tag == lin+1 &&
		gens[lin>>mem.PageShift] == e.gen0 &&
		gens[((lin+uint32(e.size)-1)&mem.AddrMask)>>mem.PageShift] == e.gen1 {
		return &e.inst, int(e.size), true
	}
	in, size, ok := isa.Decode(m.Bus.View(lin, isa.MaxInstrSize))
	if !ok {
		// Invalid decodes are not cached: they are the exception path,
		// and a failed decode may have examined fewer bytes than a
		// generation range would have to cover.
		m.slowInst = in
		return &m.slowInst, size, false
	}
	e.tag = lin + 1
	e.inst = in
	e.size = uint8(size)
	e.gen0 = gens[lin>>mem.PageShift]
	e.gen1 = gens[(lin+uint32(size)-1)>>mem.PageShift]
	return &e.inst, size, true
}

// fetchSlow is the byte-wise reference fetch path: it reads
// MaxInstrSize bytes with full 16-bit segment-offset and 20-bit linear
// wrap-around, exactly as the pre-cache machine did. The first byte
// bounds the read via isa.InstLen, so short instructions cost
// proportionally fewer bus loads.
func (m *Machine) fetchSlow() (*isa.Inst, int, bool) {
	var buf [isa.MaxInstrSize]byte
	buf[0] = m.Bus.LoadByte(m.Linear(isa.CS, m.CPU.IP))
	n := isa.InstLen(buf[0])
	if n == 0 {
		n = 1 // invalid opcode: Decode needs only the first byte
	}
	for i := 1; i < n; i++ {
		buf[i] = m.Bus.LoadByte(m.Linear(isa.CS, m.CPU.IP+uint16(i)))
	}
	in, size, ok := isa.Decode(buf[:n])
	m.slowInst = in
	return &m.slowInst, size, ok
}
