package machine

import "fmt"

// AdoptState copies the complete volatile state of src into m: the
// CPU soft state, the full memory contents, the step statistics and the
// latched interrupt pins. Device wiring (ports, tickers, AfterStep) and
// hardware options are untouched — the adopting machine keeps its own.
//
// This is the replica state-transfer primitive of internal/cluster: a
// freshly reinstalled replica adopts the state of a quorum member so
// that, being deterministic, it re-enters lockstep with the quorum from
// the next step onward. The pins must be part of the transfer — a
// watchdog NMI latched but not yet delivered at the transfer point
// would otherwise be delivered on src and silently dropped on m,
// diverging the two machines one handler-run later.
//
// Both machines must be built over the same memory image (same ROM
// regions); AdoptState reports an error if the address-space snapshot
// cannot be restored.
func (m *Machine) AdoptState(src *Machine) error {
	if m == src {
		return nil
	}
	if err := m.Bus.Restore(src.Bus.Snapshot()); err != nil {
		return fmt.Errorf("machine: adopt state: %w", err)
	}
	m.CPU = src.CPU
	m.Stats = src.Stats
	m.pins = src.pins
	m.irqVec = src.irqVec
	return nil
}
