package machine

import "ssos/internal/isa"

// execute performs one fetch-decode-execute unit of work. Invalid
// encodings raise the invalid-opcode exception; faulting stores raise
// the general-protection exception with ip still addressing the
// faulting instruction.
func (m *Machine) execute() Event {
	in, size, ok := m.fetch()
	if !ok {
		return m.raiseException(VecInvalidOpcode)
	}
	return m.exec1(in, m.CPU.IP+uint16(size))
}

// exec1 executes one already-decoded instruction whose first byte the
// current ip addresses, with nextIP its sequential successor (ip+size).
// It is the single semantic core shared by the interpreter (execute,
// above) and the superblock engine (superblock.go), which precomputes
// nextIP at block-build time; any behavioural change here changes both
// engines identically.
func (m *Machine) exec1(in *isa.Inst, nextIP uint16) Event {
	c := &m.CPU

	switch in.Op {
	case isa.OpNop:
	case isa.OpHlt:
		c.Halted = true
	case isa.OpCld:
		c.Flags = c.Flags.Without(isa.FlagDF)
	case isa.OpStd:
		c.Flags = c.Flags.With(isa.FlagDF)
	case isa.OpSti:
		c.Flags = c.Flags.With(isa.FlagIF)
	case isa.OpCli:
		c.Flags = c.Flags.Without(isa.FlagIF)

	case isa.OpIret:
		// Pop ip, cs, flags; re-arm the NMI machinery. With the paper's
		// counter hardware, iret zeroes the counter so a pending NMI is
		// deliverable immediately (Section 2).
		c.IP = m.pop()
		c.S[isa.CS] = m.pop()
		c.Flags = isa.Flags(m.pop())
		c.NMICounter = 0
		c.InNMI = false
		m.Stats.Instrs++
		return EventInstr

	case isa.OpPushf:
		if !m.pushGuarded(uint16(c.Flags)) {
			c.R[isa.SP] += 2
			return m.raiseException(VecGP)
		}
	case isa.OpPopf:
		c.Flags = isa.Flags(m.pop())

	case isa.OpMovRI:
		c.R[in.R1] = in.Imm
	case isa.OpMovRR:
		c.R[in.R1] = c.R[in.R2]
	case isa.OpMovSR:
		c.S[in.R1] = c.R[in.R2]
	case isa.OpMovRS:
		c.R[in.R1] = c.S[in.R2]
	case isa.OpMovRM:
		c.R[in.R1] = m.loadMem(in)
	case isa.OpMovMR:
		if !m.storeMem(in, c.R[in.R1]) {
			return m.raiseException(VecGP)
		}
	case isa.OpMovMI:
		if !m.storeMem(in, in.Imm) {
			return m.raiseException(VecGP)
		}
	case isa.OpMovSM:
		c.S[in.R1] = m.loadMem(in)
	case isa.OpMovMS:
		if !m.storeMem(in, c.S[in.R1]) {
			return m.raiseException(VecGP)
		}
	case isa.OpMovR8I:
		c.SetReg8(isa.Reg8(in.R1), uint8(in.Imm))
	case isa.OpMovR8R8:
		c.SetReg8(isa.Reg8(in.R1), c.Reg8(isa.Reg8(in.R2)))

	case isa.OpAddRR:
		c.R[in.R1] = m.add16(c.R[in.R1], c.R[in.R2])
	case isa.OpAddRI:
		c.R[in.R1] = m.add16(c.R[in.R1], in.Imm)
	case isa.OpAddRM:
		c.R[in.R1] = m.add16(c.R[in.R1], m.loadMem(in))
	case isa.OpSubRR:
		c.R[in.R1] = m.sub16(c.R[in.R1], c.R[in.R2])
	case isa.OpSubRI:
		c.R[in.R1] = m.sub16(c.R[in.R1], in.Imm)
	case isa.OpIncR:
		// As on x86, inc/dec preserve CF.
		c.R[in.R1]++
		m.setZS(c.R[in.R1])
	case isa.OpDecR:
		c.R[in.R1]--
		m.setZS(c.R[in.R1])
	case isa.OpAndRR:
		c.R[in.R1] = m.logic16(c.R[in.R1] & c.R[in.R2])
	case isa.OpAndRI:
		c.R[in.R1] = m.logic16(c.R[in.R1] & in.Imm)
	case isa.OpOrRR:
		c.R[in.R1] = m.logic16(c.R[in.R1] | c.R[in.R2])
	case isa.OpOrRI:
		c.R[in.R1] = m.logic16(c.R[in.R1] | in.Imm)
	case isa.OpXorRR:
		c.R[in.R1] = m.logic16(c.R[in.R1] ^ c.R[in.R2])
	case isa.OpCmpRR:
		m.sub16(c.R[in.R1], c.R[in.R2])
	case isa.OpCmpRI:
		m.sub16(c.R[in.R1], in.Imm)
	case isa.OpCmpRM:
		m.sub16(c.R[in.R1], m.loadMem(in))
	case isa.OpLea:
		c.R[in.R1] = m.effOff(in)
	case isa.OpMulR8:
		// ax = al * r8; carry/overflow signal a non-zero high byte.
		prod := uint16(c.Reg8(isa.AL)) * uint16(c.Reg8(isa.Reg8(in.R1)))
		c.R[isa.AX] = prod
		c.Flags = c.Flags.Set(isa.FlagCF|isa.FlagOF, prod>>8 != 0)
	case isa.OpShlRI:
		n := uint(in.Imm) & 31
		v := c.R[in.R1]
		if n > 0 && n <= 16 {
			c.Flags = c.Flags.Set(isa.FlagCF, v>>(16-n)&1 != 0)
		}
		c.R[in.R1] = m.logicKeepCF(v << n)
	case isa.OpShrRI:
		n := uint(in.Imm) & 31
		v := c.R[in.R1]
		if n > 0 && n <= 16 {
			c.Flags = c.Flags.Set(isa.FlagCF, v>>(n-1)&1 != 0)
		}
		c.R[in.R1] = m.logicKeepCF(v >> n)

	case isa.OpJmp:
		nextIP = in.Imm
	case isa.OpJmpFar:
		c.S[isa.CS] = in.Imm
		nextIP = in.Imm2
	case isa.OpJe:
		if c.Flags.Has(isa.FlagZF) {
			nextIP = in.Imm
		}
	case isa.OpJne:
		if !c.Flags.Has(isa.FlagZF) {
			nextIP = in.Imm
		}
	case isa.OpJb:
		if c.Flags.Has(isa.FlagCF) {
			nextIP = in.Imm
		}
	case isa.OpJbe:
		if c.Flags.Has(isa.FlagCF) || c.Flags.Has(isa.FlagZF) {
			nextIP = in.Imm
		}
	case isa.OpJa:
		if !c.Flags.Has(isa.FlagCF) && !c.Flags.Has(isa.FlagZF) {
			nextIP = in.Imm
		}
	case isa.OpJae:
		if !c.Flags.Has(isa.FlagCF) {
			nextIP = in.Imm
		}
	case isa.OpLoop:
		c.R[isa.CX]--
		if c.R[isa.CX] != 0 {
			nextIP = in.Imm
		}
	case isa.OpCall:
		if !m.pushGuarded(nextIP) {
			c.R[isa.SP] += 2
			return m.raiseException(VecGP)
		}
		nextIP = in.Imm
	case isa.OpRet:
		nextIP = m.pop()

	case isa.OpPushR:
		if !m.pushGuarded(c.R[in.R1]) {
			c.R[isa.SP] += 2
			return m.raiseException(VecGP)
		}
	case isa.OpPopR:
		c.R[in.R1] = m.pop()
	case isa.OpPushI:
		if !m.pushGuarded(in.Imm) {
			c.R[isa.SP] += 2
			return m.raiseException(VecGP)
		}
	case isa.OpPushS:
		if !m.pushGuarded(c.S[in.R1]) {
			c.R[isa.SP] += 2
			return m.raiseException(VecGP)
		}
	case isa.OpPopS:
		c.S[in.R1] = m.pop()

	case isa.OpMovsb:
		if !m.movsbOnce() {
			return m.raiseException(VecGP)
		}
	case isa.OpRepMovsb:
		// One byte per clock tick, resumable: ip stays on the
		// instruction until cx reaches zero. This matches the paper's
		// reading of rep movsb (Figure 1 line 9): a cx-bounded loop
		// that always terminates because cx strictly decreases.
		if c.R[isa.CX] != 0 {
			if !m.movsbOnce() {
				return m.raiseException(VecGP)
			}
			c.R[isa.CX]--
			if c.R[isa.CX] != 0 {
				nextIP = c.IP
			}
		}
	case isa.OpStosb:
		dst := m.Linear(isa.ES, c.R[isa.DI])
		if !m.storeAllowed(dst) || !m.Bus.StoreByte(dst, c.Reg8(isa.AL)) {
			return m.raiseException(VecGP)
		}
		c.R[isa.DI] = m.stringAdvance(c.R[isa.DI])
	case isa.OpLodsb:
		c.SetReg8(isa.AL, m.Bus.LoadByte(m.Linear(isa.DS, c.R[isa.SI])))
		c.R[isa.SI] = m.stringAdvance(c.R[isa.SI])

	case isa.OpOutI:
		m.portOut(in.Imm, c.R[isa.AX])
	case isa.OpInI:
		c.R[isa.AX] = m.portIn(in.Imm)
	case isa.OpOutDx:
		m.portOut(c.R[isa.DX], c.R[isa.AX])
	case isa.OpInDx:
		c.R[isa.AX] = m.portIn(c.R[isa.DX])

	case isa.OpWPSet:
		c.WP = c.R[in.R1]

	case isa.OpInt:
		c.IP = nextIP // resume after the int instruction
		m.Stats.Instrs++
		m.push(uint16(c.Flags))
		m.push(c.S[isa.CS])
		m.push(c.IP)
		c.Flags = c.Flags.Without(isa.FlagIF)
		target := m.idtEntry(uint8(in.Imm))
		c.S[isa.CS] = target.Seg
		c.IP = target.Off
		return EventInstr

	default:
		return m.raiseException(VecInvalidOpcode)
	}

	c.IP = nextIP
	m.Stats.Instrs++
	return EventInstr
}

// effOff computes a memory operand's effective offset (16-bit wrap
// within the segment). It and its siblings below are methods, not
// per-execute closures, so the fetch–decode–execute hot loop stays
// allocation-free.
func (m *Machine) effOff(in *isa.Inst) uint16 {
	off := in.Mem.Disp
	if r, useBase := in.Mem.Base.Reg(); useBase {
		off += m.CPU.R[r]
	}
	return off
}

// loadMem reads the 16-bit word addressed by in's memory operand.
func (m *Machine) loadMem(in *isa.Inst) uint16 {
	return m.LoadWord(in.Mem.Seg, m.effOff(in))
}

// storeMem writes v through in's memory operand, honouring the
// memory-protection window and the ROM write policy.
func (m *Machine) storeMem(in *isa.Inst, v uint16) bool {
	off := m.effOff(in)
	if !m.storeAllowed(m.Linear(in.Mem.Seg, off)) {
		return false
	}
	return m.StoreWord(in.Mem.Seg, off, v)
}

// storeAllowed reports whether a data store to the linear address is
// permitted under the memory-protection extension: always, unless the
// option is on, FlagWP is set, and the executing code resides in RAM
// while the target lies outside the 4 KiB window at WP<<4. ROM-resident
// code (the stabilizers) is exempt, playing supervisor.
func (m *Machine) storeAllowed(addr uint32) bool {
	if !m.Opts.MemoryProtection || !m.CPU.Flags.Has(isa.FlagWP) {
		return true
	}
	if m.Bus.InROM(m.CPU.PC().Linear()) {
		return true
	}
	base := uint32(m.CPU.WP) << 4
	return addr >= base && addr+1 < base+WPWindowSize
}

// pushGuarded is push with the memory-protection check applied (guest
// pushes only; interrupt-delivery pushes are hardware and exempt).
func (m *Machine) pushGuarded(v uint16) bool {
	target := m.Linear(isa.SS, m.CPU.R[isa.SP]-2)
	if !m.storeAllowed(target) {
		// Mirror push's sp decrement so the caller's uniform fault
		// cleanup (sp += 2) leaves sp unchanged either way.
		m.CPU.R[isa.SP] -= 2
		return false
	}
	return m.push(v)
}

// movsbOnce copies one byte ds:si -> es:di and advances the index
// registers per the direction flag.
func (m *Machine) movsbOnce() bool {
	c := &m.CPU
	dst := m.Linear(isa.ES, c.R[isa.DI])
	if !m.storeAllowed(dst) {
		return false
	}
	b := m.Bus.LoadByte(m.Linear(isa.DS, c.R[isa.SI]))
	ok := m.Bus.StoreByte(dst, b)
	c.R[isa.SI] = m.stringAdvance(c.R[isa.SI])
	c.R[isa.DI] = m.stringAdvance(c.R[isa.DI])
	return ok
}

func (m *Machine) stringAdvance(v uint16) uint16 {
	if m.CPU.Flags.Has(isa.FlagDF) {
		return v - 1
	}
	return v + 1
}

// setZS updates the zero and sign flags from a result. The sign bit is
// shifted into place rather than tested: this runs once per ALU
// instruction, so it stays branch-light.
func (m *Machine) setZS(v uint16) {
	f := m.CPU.Flags&^(isa.FlagZF|isa.FlagSF) | isa.Flags(v>>13)&isa.FlagSF
	if v == 0 {
		f |= isa.FlagZF
	}
	m.CPU.Flags = f
}

// logic16 sets flags for a bitwise result (clears CF/OF) and returns it.
func (m *Machine) logic16(v uint16) uint16 {
	m.setZS(v)
	m.CPU.Flags = m.CPU.Flags.Without(isa.FlagCF | isa.FlagOF)
	return v
}

// logicKeepCF sets ZF/SF and clears OF, preserving CF (shift results).
func (m *Machine) logicKeepCF(v uint16) uint16 {
	m.setZS(v)
	m.CPU.Flags = m.CPU.Flags.Without(isa.FlagOF)
	return v
}

// add16 computes a+b with full flag semantics.
func (m *Machine) add16(a, b uint16) uint16 {
	r := a + b
	m.setZS(r)
	m.CPU.Flags = m.CPU.Flags.
		Set(isa.FlagCF, r < a).
		Set(isa.FlagOF, (a^r)&(b^r)&0x8000 != 0)
	return r
}

// sub16 computes a-b with full flag semantics (also used by cmp).
func (m *Machine) sub16(a, b uint16) uint16 {
	r := a - b
	m.setZS(r)
	m.CPU.Flags = m.CPU.Flags.
		Set(isa.FlagCF, a < b).
		Set(isa.FlagOF, (a^b)&(a^r)&0x8000 != 0)
	return r
}
