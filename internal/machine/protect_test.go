package machine

import (
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
)

// protMachine builds a machine with memory protection enabled, code in
// RAM at 0100:0000 and a ROM copy of the same code at f000:0000.
func protMachine(t *testing.T, code []byte) *Machine {
	t.Helper()
	bus := mem.NewBus()
	if _, err := bus.AddROM("rom", 0xF0000, append([]byte(nil), code...)); err != nil {
		t.Fatal(err)
	}
	m := New(bus, Options{
		ResetVector:      SegOff{0x0100, 0},
		MemoryProtection: true,
		ExceptionPolicy:  ExceptionHalt,
	})
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	m.CPU.S[isa.SS] = 0x2000
	m.CPU.R[isa.SP] = 0x1000
	m.CPU.S[isa.DS] = 0x0100
	return m
}

func TestWPSetLoadsWindowRegister(t *testing.T) {
	m := protMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x6000},
		isa.Inst{Op: isa.OpWPSet, R1: r(isa.AX)},
	))
	m.Run(2)
	if m.CPU.WP != 0x6000 {
		t.Fatalf("wp = %#x", m.CPU.WP)
	}
}

func TestProtectionBlocksOutOfWindowStore(t *testing.T) {
	// Store to ds:0 with ds=0x0100 (linear 0x1000), window at 0x60000.
	m := protMachine(t, prog(
		isa.Inst{Op: isa.OpMovMR, R1: r(isa.AX), Mem: isa.MemOp{Seg: isa.DS, Disp: 0x200}},
	))
	m.CPU.WP = 0x6000
	m.CPU.Flags = m.CPU.Flags.With(isa.FlagWP)
	before := m.Bus.Peek(0x1200)
	if ev := m.Step(); ev != EventException {
		t.Fatalf("out-of-window store: ev=%v", ev)
	}
	if m.Bus.Peek(0x1200) != before {
		t.Fatal("store happened despite protection")
	}
}

func TestProtectionAllowsInWindowStore(t *testing.T) {
	m := protMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xBEEF},
		isa.Inst{Op: isa.OpMovMR, R1: r(isa.AX), Mem: isa.MemOp{Seg: isa.ES, Disp: 0x10}},
	))
	m.CPU.S[isa.ES] = 0x6000
	m.CPU.WP = 0x6000
	m.CPU.Flags = m.CPU.Flags.With(isa.FlagWP)
	m.Run(2)
	if got := m.Bus.LoadWord(0x60010); got != 0xBEEF {
		t.Fatalf("in-window store lost: %#x", got)
	}
}

func TestProtectionInactiveWithoutFlag(t *testing.T) {
	m := protMachine(t, prog(
		isa.Inst{Op: isa.OpMovMR, R1: r(isa.AX), Mem: isa.MemOp{Seg: isa.DS, Disp: 0x200}},
	))
	m.CPU.WP = 0x6000 // window far away, but FlagWP clear
	if ev := m.Step(); ev != EventInstr {
		t.Fatalf("ev=%v", ev)
	}
}

func TestROMCodeIsExemptFromProtection(t *testing.T) {
	// The same store executed from the ROM copy must succeed: ROM code
	// plays supervisor (the stabilizers must be able to repair any RAM).
	code := prog(
		isa.Inst{Op: isa.OpMovMR, R1: r(isa.AX), Mem: isa.MemOp{Seg: isa.DS, Disp: 0x200}},
	)
	m := protMachine(t, code)
	m.CPU.S[isa.CS] = 0xF000 // execute the ROM copy
	m.CPU.IP = 0
	m.CPU.R[isa.AX] = 0x7777
	m.CPU.WP = 0x6000
	m.CPU.Flags = m.CPU.Flags.With(isa.FlagWP)
	if ev := m.Step(); ev != EventInstr {
		t.Fatalf("ROM store: ev=%v", ev)
	}
	if got := m.Bus.LoadWord(0x1200); got != 0x7777 {
		t.Fatalf("ROM-code store lost: %#x", got)
	}
}

func TestProtectionBlocksGuestPushAndString(t *testing.T) {
	// Pushes and string stores are data stores too.
	m := protMachine(t, prog(isa.Inst{Op: isa.OpPushR, R1: r(isa.AX)}))
	m.CPU.WP = 0x6000
	m.CPU.Flags = m.CPU.Flags.With(isa.FlagWP)
	sp := m.CPU.R[isa.SP]
	if ev := m.Step(); ev != EventException {
		t.Fatalf("push: ev=%v", ev)
	}
	if m.CPU.R[isa.SP] != sp {
		t.Fatalf("sp drifted on blocked push: %#x -> %#x", sp, m.CPU.R[isa.SP])
	}

	m2 := protMachine(t, prog(isa.Inst{Op: isa.OpStosb}))
	m2.CPU.S[isa.ES] = 0x0100
	m2.CPU.R[isa.DI] = 0x500
	m2.CPU.WP = 0x6000
	m2.CPU.Flags = m2.CPU.Flags.With(isa.FlagWP)
	if ev := m2.Step(); ev != EventException {
		t.Fatalf("stosb: ev=%v", ev)
	}

	m3 := protMachine(t, prog(isa.Inst{Op: isa.OpMovsb}))
	m3.CPU.S[isa.ES] = 0x0100
	m3.CPU.R[isa.DI] = 0x500
	m3.CPU.WP = 0x6000
	m3.CPU.Flags = m3.CPU.Flags.With(isa.FlagWP)
	if ev := m3.Step(); ev != EventException {
		t.Fatalf("movsb: ev=%v", ev)
	}
}

func TestInterruptDeliveryClearsWPFlag(t *testing.T) {
	code := make([]byte, 0x60)
	copy(code, prog(isa.Inst{Op: isa.OpNop}))
	copy(code[0x40:], prog(isa.Inst{Op: isa.OpIret}))
	m := protMachine(t, code)
	m.Opts.NMICounter = true
	m.Opts.HardwiredNMIVector = true
	m.Opts.NMIVector = SegOff{0x0100, 0x40}
	m.CPU.Flags = m.CPU.Flags.With(isa.FlagWP)
	m.RaiseNMI()
	if ev := m.Step(); ev != EventNMI {
		t.Fatalf("ev=%v", ev)
	}
	if m.CPU.Flags.Has(isa.FlagWP) {
		t.Fatal("WP not cleared on NMI entry")
	}
	m.Step() // iret restores the pushed flags
	if !m.CPU.Flags.Has(isa.FlagWP) {
		t.Fatal("WP not restored by iret")
	}
}

func TestProtectionWindowBoundary(t *testing.T) {
	// A word store whose second byte would fall past the window edge
	// faults.
	m := protMachine(t, prog(
		isa.Inst{Op: isa.OpMovMR, R1: r(isa.AX), Mem: isa.MemOp{Seg: isa.ES, Disp: 0x0FFF}},
	))
	m.CPU.S[isa.ES] = 0x6000
	m.CPU.WP = 0x6000
	m.CPU.Flags = m.CPU.Flags.With(isa.FlagWP)
	if ev := m.Step(); ev != EventException {
		t.Fatalf("boundary store: ev=%v", ev)
	}
}
