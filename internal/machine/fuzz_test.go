package machine

import (
	"math/rand"
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
)

// TestRandomProgramsNeverWedgeTheStepper feeds the machine fully random
// byte soup as code under every exception policy and checks the
// substrate invariants the self-stabilization results rest on: Step
// stays total (exact step accounting), ROM stays immutable, and the
// machine never panics — whatever the "program".
func TestRandomProgramsNeverWedgeTheStepper(t *testing.T) {
	romImage := make([]byte, 256)
	for i := range romImage {
		romImage[i] = byte(isa.OpNop)
	}
	romImage[0] = byte(isa.OpIret)

	policies := []ExceptionPolicy{ExceptionHalt, ExceptionVector, ExceptionIDT}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		bus := mem.NewBus()
		bus.SetROMWritePolicy(mem.ROMWriteFault)
		if _, err := bus.AddROM("rom", 0xF0000, romImage); err != nil {
			t.Fatal(err)
		}
		m := New(bus, Options{
			ResetVector:        SegOff{0x0100, 0},
			NMICounter:         trial%2 == 0,
			HardwiredNMIVector: trial%3 == 0,
			NMIVector:          SegOff{0xF000, 0},
			ExceptionPolicy:    policies[trial%len(policies)],
			ExceptionVector:    SegOff{0xF000, 0},
			MemoryProtection:   trial%5 == 0,
		})
		// Random code everywhere the PC might land.
		for i := 0; i < 4096; i++ {
			bus.PokeRAM(uint32(rng.Intn(mem.AddrSpace)), byte(rng.Intn(256)))
		}
		m.CPU.IP = uint16(rng.Intn(1 << 16))
		m.CPU.S[isa.CS] = uint16(rng.Intn(1 << 16))
		m.CPU.S[isa.SS] = uint16(rng.Intn(1 << 16))
		m.CPU.R[isa.SP] = uint16(rng.Intn(1 << 16))
		m.CPU.Flags = isa.Flags(rng.Intn(1 << 16))
		if rng.Intn(2) == 0 {
			m.RaiseNMI()
		}
		const steps = 2000
		m.Run(steps)
		if m.Stats.Steps != steps {
			t.Fatalf("trial %d: step accounting broke: %d", trial, m.Stats.Steps)
		}
		for i, b := range romImage {
			if bus.Peek(0xF0000+uint32(i)) != b {
				t.Fatalf("trial %d: ROM byte %d changed", trial, i)
			}
		}
	}
}

// TestRandomFaultStormOnEveryApproachSubstrate hammers a single machine
// with interleaved random faults and steps; the stepper must keep
// exact accounting throughout.
func TestRandomFaultStormSubstrate(t *testing.T) {
	bus := mem.NewBus()
	if _, err := bus.AddROM("rom", 0xF0000, []byte{byte(isa.OpJmp), 0, 0}); err != nil {
		t.Fatal(err)
	}
	m := New(bus, Options{
		ResetVector:        SegOff{0xF000, 0},
		NMICounter:         true,
		HardwiredNMIVector: true,
		NMIVector:          SegOff{0xF000, 0},
		ExceptionPolicy:    ExceptionVector,
		ExceptionVector:    SegOff{0xF000, 0},
	})
	rng := rand.New(rand.NewSource(7))
	var want uint64
	for i := 0; i < 5000; i++ {
		switch rng.Intn(6) {
		case 0:
			m.CPU.IP = uint16(rng.Intn(1 << 16))
		case 1:
			m.CPU.S[isa.SReg(rng.Intn(int(isa.NumSRegs)))] = uint16(rng.Intn(1 << 16))
		case 2:
			m.CPU.NMICounter = uint16(rng.Intn(1 << 16))
		case 3:
			m.RaiseNMI()
		case 4:
			m.CPU.Halted = rng.Intn(2) == 0
		case 5:
			bus.PokeRAM(uint32(rng.Intn(mem.AddrSpace)), byte(rng.Intn(256)))
		}
		n := rng.Intn(50)
		m.Run(n)
		want += uint64(n)
		if m.Stats.Steps != want {
			t.Fatalf("accounting: %d != %d", m.Stats.Steps, want)
		}
	}
}
