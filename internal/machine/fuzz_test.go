package machine

import (
	"bytes"
	"math/rand"
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
)

// TestRandomProgramsNeverWedgeTheStepper feeds the machine fully random
// byte soup as code under every exception policy and checks the
// substrate invariants the self-stabilization results rest on: Step
// stays total (exact step accounting), ROM stays immutable, and the
// machine never panics — whatever the "program".
func TestRandomProgramsNeverWedgeTheStepper(t *testing.T) {
	romImage := make([]byte, 256)
	for i := range romImage {
		romImage[i] = byte(isa.OpNop)
	}
	romImage[0] = byte(isa.OpIret)

	policies := []ExceptionPolicy{ExceptionHalt, ExceptionVector, ExceptionIDT}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		bus := mem.NewBus()
		bus.SetROMWritePolicy(mem.ROMWriteFault)
		if _, err := bus.AddROM("rom", 0xF0000, romImage); err != nil {
			t.Fatal(err)
		}
		m := New(bus, Options{
			ResetVector:        SegOff{0x0100, 0},
			NMICounter:         trial%2 == 0,
			HardwiredNMIVector: trial%3 == 0,
			NMIVector:          SegOff{0xF000, 0},
			ExceptionPolicy:    policies[trial%len(policies)],
			ExceptionVector:    SegOff{0xF000, 0},
			MemoryProtection:   trial%5 == 0,
		})
		// Random code everywhere the PC might land.
		for i := 0; i < 4096; i++ {
			bus.PokeRAM(uint32(rng.Intn(mem.AddrSpace)), byte(rng.Intn(256)))
		}
		m.CPU.IP = uint16(rng.Intn(1 << 16))
		m.CPU.S[isa.CS] = uint16(rng.Intn(1 << 16))
		m.CPU.S[isa.SS] = uint16(rng.Intn(1 << 16))
		m.CPU.R[isa.SP] = uint16(rng.Intn(1 << 16))
		m.CPU.Flags = isa.Flags(rng.Intn(1 << 16))
		if rng.Intn(2) == 0 {
			m.RaiseNMI()
		}
		const steps = 2000
		m.Run(steps)
		if m.Stats.Steps != steps {
			t.Fatalf("trial %d: step accounting broke: %d", trial, m.Stats.Steps)
		}
		for i, b := range romImage {
			if bus.Peek(0xF0000+uint32(i)) != b {
				t.Fatalf("trial %d: ROM byte %d changed", trial, i)
			}
		}
	}
}

// FuzzDecodeCacheDifferential drives a cached and an uncached machine
// in lockstep from a fuzz-chosen byte program: interleaved guest steps,
// direct bus stores, PokeRAM fault injections and CPU corruptions, all
// applied identically to both. The decode cache must never serve a
// stale instruction, so the two machines must agree on every event and
// end bit-identical.
func FuzzDecodeCacheDifferential(f *testing.F) {
	// Seeds: plain stepping, self-modifying stosb soup, store-then-step
	// interleavings, and fault-heavy schedules.
	f.Add([]byte{1, 40, 1, 40})
	f.Add([]byte{0, 0x10, 0x02, byte(isa.OpHlt), 1, 8, 0, 0x11, 0x02, byte(isa.OpStosb), 1, 8})
	f.Add([]byte{2, 0x00, 0x10, 1, 20, 3, 0x34, 0x12, 1, 20, 4, 1, 20, 6, 1, 20})
	f.Add(bytes.Repeat([]byte{0, 0xAB, 0x05, 0x62, 1, 3}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		fast, slow := newDiffMachines(t, Options{
			ResetVector:     SegOff{0x0100, 0},
			NMICounter:      true,
			ExceptionPolicy: ExceptionVector,
			ExceptionVector: SegOff{0xF000, 0},
		})
		// Deterministic pseudo-random background soup so short fuzz
		// inputs still execute something.
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1024; i++ {
			v := byte(rng.Intn(256))
			fast.Bus.PokeRAM(0x1000+uint32(i), v)
			slow.Bus.PokeRAM(0x1000+uint32(i), v)
		}

		pop := func() (byte, bool) {
			if len(data) == 0 {
				return 0, false
			}
			b := data[0]
			data = data[1:]
			return b, true
		}
		steps := 0
		for steps < 50000 {
			op, ok := pop()
			if !ok {
				break
			}
			switch op % 7 {
			case 0: // poke a byte near the code region (fault injection)
				lo, _ := pop()
				hi, _ := pop()
				v, _ := pop()
				addr := 0x1000 + (uint32(hi)<<8|uint32(lo))&0x0FFF
				fast.Bus.PokeRAM(addr, v)
				slow.Bus.PokeRAM(addr, v)
			case 1: // run a batch of steps, comparing events each step
				n, _ := pop()
				for i := 0; i < int(n%64)+1; i++ {
					stepBoth(t, fast, slow, "fuzz")
					steps++
				}
			case 2: // corrupt IP
				lo, _ := pop()
				hi, _ := pop()
				v := uint16(hi)<<8 | uint16(lo)
				fast.CPU.IP, slow.CPU.IP = v, v
			case 3: // corrupt a register bank entry
				r, _ := pop()
				lo, _ := pop()
				v := uint16(lo) | uint16(r)<<8
				i := isa.Reg(r) % isa.NumRegs
				fast.CPU.R[i], slow.CPU.R[i] = v, v
			case 4: // raise NMI on both
				fast.RaiseNMI()
				slow.RaiseNMI()
			case 5: // direct word store via the bus (DMA-style)
				lo, _ := pop()
				hi, _ := pop()
				v, _ := pop()
				addr := 0x1000 + (uint32(hi)<<8|uint32(lo))&0x0FFF
				fast.Bus.StoreWord(addr, uint16(v)|uint16(v)<<8)
				slow.Bus.StoreWord(addr, uint16(v)|uint16(v)<<8)
			case 6: // toggle halt latch
				v, _ := pop()
				h := v%2 == 0
				fast.CPU.Halted, slow.CPU.Halted = h, h
			}
		}
		// Drain: a final burst so late mutations get executed.
		for i := 0; i < 256; i++ {
			stepBoth(t, fast, slow, "fuzz drain")
		}
		compareMachines(t, fast, slow, "fuzz final")
	})
}

// FuzzSuperblockDifferential extends FuzzDecodeCacheDifferential to the
// full engine stack: superblock, predecode-only and reference machines
// run the same fuzz-chosen schedule of stores, corruptions and step
// batches. Batches go through Run — the only path that exercises the
// batched loop, the turbo lane and block chaining — in fuzz-chosen
// sizes, so cursors are left mid-block across mutations. Seeded from
// the decode-cache target's corpus so every staleness schedule that
// ever mattered there is replayed against the block engine too.
func FuzzSuperblockDifferential(f *testing.F) {
	f.Add([]byte{1, 40, 1, 40})
	f.Add([]byte{0, 0x10, 0x02, byte(isa.OpHlt), 1, 8, 0, 0x11, 0x02, byte(isa.OpStosb), 1, 8})
	f.Add([]byte{2, 0x00, 0x10, 1, 20, 3, 0x34, 0x12, 1, 20, 4, 1, 20, 6, 1, 20})
	f.Add(bytes.Repeat([]byte{0, 0xAB, 0x05, 0x62, 1, 3}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		tri := newTriMachines(t, Options{
			ResetVector:     SegOff{0x0100, 0},
			NMICounter:      true,
			ExceptionPolicy: ExceptionVector,
			ExceptionVector: SegOff{0xF000, 0},
		})
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1024; i++ {
			a := 0x1000 + uint32(i)
			v := byte(rng.Intn(256))
			triDo(tri, func(m *Machine) { m.Bus.PokeRAM(a, v) })
		}

		pop := func() (byte, bool) {
			if len(data) == 0 {
				return 0, false
			}
			b := data[0]
			data = data[1:]
			return b, true
		}
		steps := 0
		for steps < 50000 {
			op, ok := pop()
			if !ok {
				break
			}
			switch op % 7 {
			case 0: // poke a byte near the code region (fault injection)
				lo, _ := pop()
				hi, _ := pop()
				v, _ := pop()
				addr := 0x1000 + (uint32(hi)<<8|uint32(lo))&0x0FFF
				triDo(tri, func(m *Machine) { m.Bus.PokeRAM(addr, v) })
			case 1: // run a batch, comparing state at the boundary
				n, _ := pop()
				k := int(n%64) + 1
				triDo(tri, func(m *Machine) { m.Run(k) })
				steps += k
				compareTriCPU(t, tri, "fuzz batch")
			case 2: // corrupt IP
				lo, _ := pop()
				hi, _ := pop()
				v := uint16(hi)<<8 | uint16(lo)
				triDo(tri, func(m *Machine) { m.CPU.IP = v })
			case 3: // corrupt a register bank entry
				reg, _ := pop()
				lo, _ := pop()
				v := uint16(lo) | uint16(reg)<<8
				i := isa.Reg(reg) % isa.NumRegs
				triDo(tri, func(m *Machine) { m.CPU.R[i] = v })
			case 4: // raise NMI on all
				triDo(tri, func(m *Machine) { m.RaiseNMI() })
			case 5: // direct word store via the bus (DMA-style)
				lo, _ := pop()
				hi, _ := pop()
				v, _ := pop()
				addr := 0x1000 + (uint32(hi)<<8|uint32(lo))&0x0FFF
				triDo(tri, func(m *Machine) { m.Bus.StoreWord(addr, uint16(v)|uint16(v)<<8) })
			case 6: // toggle halt latch
				v, _ := pop()
				h := v%2 == 0
				triDo(tri, func(m *Machine) { m.CPU.Halted = h })
			}
		}
		// Drain: a final burst so late mutations get executed.
		triDo(tri, func(m *Machine) { m.Run(256) })
		compareTri(t, tri, "fuzz final")
	})
}

// TestRandomFaultStormOnEveryApproachSubstrate hammers a single machine
// with interleaved random faults and steps; the stepper must keep
// exact accounting throughout.
func TestRandomFaultStormSubstrate(t *testing.T) {
	bus := mem.NewBus()
	if _, err := bus.AddROM("rom", 0xF0000, []byte{byte(isa.OpJmp), 0, 0}); err != nil {
		t.Fatal(err)
	}
	m := New(bus, Options{
		ResetVector:        SegOff{0xF000, 0},
		NMICounter:         true,
		HardwiredNMIVector: true,
		NMIVector:          SegOff{0xF000, 0},
		ExceptionPolicy:    ExceptionVector,
		ExceptionVector:    SegOff{0xF000, 0},
	})
	rng := rand.New(rand.NewSource(7))
	var want uint64
	for i := 0; i < 5000; i++ {
		switch rng.Intn(6) {
		case 0:
			m.CPU.IP = uint16(rng.Intn(1 << 16))
		case 1:
			m.CPU.S[isa.SReg(rng.Intn(int(isa.NumSRegs)))] = uint16(rng.Intn(1 << 16))
		case 2:
			m.CPU.NMICounter = uint16(rng.Intn(1 << 16))
		case 3:
			m.RaiseNMI()
		case 4:
			m.CPU.Halted = rng.Intn(2) == 0
		case 5:
			bus.PokeRAM(uint32(rng.Intn(mem.AddrSpace)), byte(rng.Intn(256)))
		}
		n := rng.Intn(50)
		m.Run(n)
		want += uint64(n)
		if m.Stats.Steps != want {
			t.Fatalf("accounting: %d != %d", m.Stats.Steps, want)
		}
	}
}
