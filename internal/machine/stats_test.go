package machine

import (
	"strings"
	"testing"

	"ssos/internal/isa"
)

func TestStatsStringAndDelta(t *testing.T) {
	s := Stats{Steps: 100, Instrs: 90, NMIs: 3, IRQs: 2, Exceptions: 1, Resets: 4, HaltTicks: 5}
	got := s.String()
	for _, want := range []string{"steps=100", "instrs=90", "nmis=3", "irqs=2", "exceptions=1", "resets=4", "halt=5"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}

	prev := Stats{Steps: 40, Instrs: 35, NMIs: 1, HaltTicks: 5}
	d := s.Delta(prev)
	want := Stats{Steps: 60, Instrs: 55, NMIs: 2, IRQs: 2, Exceptions: 1, Resets: 4}
	if d != want {
		t.Fatalf("Delta = %+v, want %+v", d, want)
	}
	// Delta against itself is zero; Delta against zero is identity.
	if (s.Delta(s) != Stats{}) {
		t.Fatal("self delta not zero")
	}
	if s.Delta(Stats{}) != s {
		t.Fatal("zero delta not identity")
	}
}

// Machine.String must surface the delivery counters (the quantities the
// stabilization analysis cares about), not just the step count.
func TestMachineStringIncludesStats(t *testing.T) {
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpNop}, isa.Inst{Op: isa.OpJmp}))
	m.Run(5)
	got := m.String()
	for _, want := range []string{"steps=5", "nmis=0", "exceptions=", "resets="} {
		if !strings.Contains(got, want) {
			t.Errorf("Machine.String() = %q, missing %q", got, want)
		}
	}
}
