package machine

import (
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
)

// TestALUFlagMatrix pins down flag semantics with a table of cases.
func TestALUFlagMatrix(t *testing.T) {
	cases := []struct {
		name string
		ins  []isa.Inst
		ax   uint16
		cf   bool
		zf   bool
		sf   bool
		of   bool
	}{
		{
			name: "add no carry",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 1},
				{Op: isa.OpAddRI, R1: r(isa.AX), Imm: 2},
			},
			ax: 3,
		},
		{
			name: "add carry and zero",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xFFFF},
				{Op: isa.OpAddRI, R1: r(isa.AX), Imm: 1},
			},
			ax: 0, cf: true, zf: true,
		},
		{
			name: "add signed overflow",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x7FFF},
				{Op: isa.OpAddRI, R1: r(isa.AX), Imm: 1},
			},
			ax: 0x8000, sf: true, of: true,
		},
		{
			name: "sub borrow",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 1},
				{Op: isa.OpSubRI, R1: r(isa.AX), Imm: 2},
			},
			ax: 0xFFFF, cf: true, sf: true,
		},
		{
			name: "sub signed overflow",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x8000},
				{Op: isa.OpSubRI, R1: r(isa.AX), Imm: 1},
			},
			ax: 0x7FFF, of: true,
		},
		{
			name: "and clears carry",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xFFFF},
				{Op: isa.OpAddRI, R1: r(isa.AX), Imm: 1}, // sets CF
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xF0F0},
				{Op: isa.OpAndRI, R1: r(isa.AX), Imm: 0x0F0F},
			},
			ax: 0, zf: true,
		},
		{
			name: "xor self zeroes",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x1234},
				{Op: isa.OpXorRR, R1: r(isa.AX), R2: r(isa.AX)},
			},
			ax: 0, zf: true,
		},
		{
			name: "or sign",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x8000},
				{Op: isa.OpOrRI, R1: r(isa.AX), Imm: 1},
			},
			ax: 0x8001, sf: true,
		},
		{
			name: "inc preserves carry",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xFFFF},
				{Op: isa.OpAddRI, R1: r(isa.AX), Imm: 1}, // CF set
				{Op: isa.OpIncR, R1: r(isa.AX)},          // must keep CF
			},
			ax: 1, cf: true,
		},
		{
			name: "dec to zero",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 1},
				{Op: isa.OpDecR, R1: r(isa.AX)},
			},
			ax: 0, zf: true,
		},
		{
			name: "mul with high byte sets carry",
			ins: []isa.Inst{
				{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0x00FF},
				{Op: isa.OpMovR8I, R1: uint8(isa.BH), Imm: 0xFF},
				{Op: isa.OpMulR8, R1: uint8(isa.BH)},
			},
			ax: 0xFE01, cf: true, of: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := newTestMachine(t, prog(c.ins...))
			m.Run(len(c.ins))
			if m.CPU.R[isa.AX] != c.ax {
				t.Errorf("ax = %#x, want %#x", m.CPU.R[isa.AX], c.ax)
			}
			check := func(name string, bit isa.Flags, want bool) {
				if m.CPU.Flags.Has(bit) != want {
					t.Errorf("%s = %v, want %v (flags %v)", name, !want, want, m.CPU.Flags)
				}
			}
			check("CF", isa.FlagCF, c.cf)
			check("ZF", isa.FlagZF, c.zf)
			check("SF", isa.FlagSF, c.sf)
			check("OF", isa.FlagOF, c.of)
		})
	}
}

func TestSegmentOffsetWrapsInLoads(t *testing.T) {
	// A word load at offset 0xFFFF reads its high byte at offset 0
	// of the same segment (16-bit wrap), not the next linear byte.
	bus := mem.NewBus()
	m := New(bus, Options{ResetVector: SegOff{0x0100, 0}})
	m.CPU.S[isa.DS] = 0x2000
	bus.Poke(0x2FFFF, 0x34) // ds:0xFFFF
	bus.Poke(0x20000, 0x12) // ds:0x0000
	if got := m.LoadWord(isa.DS, 0xFFFF); got != 0x1234 {
		t.Fatalf("wrapped load = %#x", got)
	}
}

func TestFetchWrapsAtSegmentEnd(t *testing.T) {
	// An instruction starting at ip=0xFFFF continues at ip=0 of the
	// same segment.
	bus := mem.NewBus()
	m := New(bus, Options{ResetVector: SegOff{0x0100, 0xFFFF}})
	// mov ax, 0xBEEF split across the wrap: opcode at 0xFFFF, operands
	// at 0,1,2.
	enc := isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xBEEF}.Encode(nil)
	bus.Poke(0x1000+0xFFFF, enc[0])
	bus.Poke(0x1000+0, enc[1])
	bus.Poke(0x1000+1, enc[2])
	bus.Poke(0x1000+2, enc[3])
	m.Step()
	if m.CPU.R[isa.AX] != 0xBEEF {
		t.Fatalf("wrapped fetch: ax=%#x", m.CPU.R[isa.AX])
	}
	if m.CPU.IP != 3 {
		t.Fatalf("ip after wrap = %#x", m.CPU.IP)
	}
}

func TestPushfPopfRoundTrip(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.AX), Imm: 0xFFFF},
		isa.Inst{Op: isa.OpAddRI, R1: r(isa.AX), Imm: 1}, // CF|ZF
		isa.Inst{Op: isa.OpPushf},
		isa.Inst{Op: isa.OpMovRI, R1: r(isa.BX), Imm: 7}, // disturb nothing
		isa.Inst{Op: isa.OpCmpRI, R1: r(isa.BX), Imm: 1}, // clears ZF, CF
		isa.Inst{Op: isa.OpPopf},
	))
	m.Run(6)
	if !m.CPU.Flags.Has(isa.FlagCF) || !m.CPU.Flags.Has(isa.FlagZF) {
		t.Fatalf("popf did not restore flags: %v", m.CPU.Flags)
	}
}

func TestMovsbBackwardDirection(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpStd},
		isa.Inst{Op: isa.OpMovsb},
		isa.Inst{Op: isa.OpMovsb},
	))
	m.CPU.S[isa.ES] = 0x0100
	m.CPU.R[isa.SI] = 0x301
	m.CPU.R[isa.DI] = 0x401
	m.Bus.Poke(0x1000+0x301, 0xAB)
	m.Bus.Poke(0x1000+0x300, 0xCD)
	m.Run(3)
	if m.Bus.Peek(0x1000+0x401) != 0xAB || m.Bus.Peek(0x1000+0x400) != 0xCD {
		t.Fatal("backward copy wrong")
	}
	if m.CPU.R[isa.SI] != 0x2FF || m.CPU.R[isa.DI] != 0x3FF {
		t.Fatalf("si/di after std: %#x %#x", m.CPU.R[isa.SI], m.CPU.R[isa.DI])
	}
}

func TestNMIDuringRepMovsbResumes(t *testing.T) {
	// The scheduler relies on this: an NMI can interrupt a rep copy and
	// the copy completes correctly after iret.
	code := make([]byte, 0x60)
	copy(code, prog(
		isa.Inst{Op: isa.OpCld},
		isa.Inst{Op: isa.OpRepMovsb},
		isa.Inst{Op: isa.OpHlt},
	))
	copy(code[0x40:], prog(isa.Inst{Op: isa.OpIret}))
	m := newTestMachine(t, code)
	m.Opts.NMICounter = true
	m.Opts.NMICounterMax = 8
	m.Opts.HardwiredNMIVector = true
	m.Opts.NMIVector = SegOff{0x0100, 0x40}
	m.CPU.S[isa.ES] = 0x0100
	m.CPU.R[isa.SI] = 0x300
	m.CPU.R[isa.DI] = 0x400
	m.CPU.R[isa.CX] = 32
	for i := 0; i < 32; i++ {
		m.Bus.Poke(0x1000+0x300+uint32(i), byte(i+1))
	}
	// Interrupt mid-copy.
	m.Run(10)
	m.RaiseNMI()
	m.RunUntil(200, func(m *Machine) bool { return m.CPU.Halted })
	for i := 0; i < 32; i++ {
		if got := m.Bus.Peek(0x1000 + 0x400 + uint32(i)); got != byte(i+1) {
			t.Fatalf("byte %d = %#x after interrupted rep", i, got)
		}
	}
	if m.Stats.NMIs != 1 {
		t.Fatalf("NMIs = %d", m.Stats.NMIs)
	}
}

func TestIRQDoesNotWakeHaltWithIFClear(t *testing.T) {
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpHlt}))
	m.Step() // halt, IF clear
	m.RaiseIRQ(VecTimer)
	m.Run(50)
	if !m.CPU.Halted {
		t.Fatal("masked IRQ woke a halted CPU")
	}
	if m.Stats.IRQs != 0 {
		t.Fatal("masked IRQ was delivered")
	}
}

func TestNMITakesPriorityOverIRQ(t *testing.T) {
	code := make([]byte, 0x80)
	copy(code, prog(isa.Inst{Op: isa.OpSti}, isa.Inst{Op: isa.OpNop}))
	copy(code[0x40:], prog(isa.Inst{Op: isa.OpIret})) // NMI handler
	copy(code[0x60:], prog(isa.Inst{Op: isa.OpIret})) // IRQ handler
	m := newTestMachine(t, code)
	m.Opts.NMICounter = true
	m.Opts.HardwiredNMIVector = true
	m.Opts.NMIVector = SegOff{0x0100, 0x40}
	m.Opts.FixedIDTR = true
	m.SetIDTEntry(VecTimer, SegOff{0x0100, 0x60})
	m.Step() // sti
	m.RaiseNMI()
	m.RaiseIRQ(VecTimer)
	if ev := m.Step(); ev != EventNMI {
		t.Fatalf("expected NMI first, got %v", ev)
	}
	// IRQ is masked during the NMI handler (IF cleared); after iret the
	// restored flags have IF set again, so the IRQ is delivered.
	if ev := m.Step(); ev != EventInstr { // iret
		t.Fatalf("expected iret, got %v", ev)
	}
	if ev := m.Step(); ev != EventIRQ {
		t.Fatalf("expected IRQ after iret, got %v", ev)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	m := newTestMachine(t, prog(
		isa.Inst{Op: isa.OpIncR, R1: r(isa.AX)},
		isa.Inst{Op: isa.OpJmp, Imm: 0},
	))
	ok := m.RunUntil(1000, func(m *Machine) bool { return m.CPU.R[isa.AX] == 5 })
	if !ok || m.CPU.R[isa.AX] != 5 {
		t.Fatalf("RunUntil: ok=%v ax=%d", ok, m.CPU.R[isa.AX])
	}
	if m.RunUntil(10, func(m *Machine) bool { return false }) {
		t.Fatal("RunUntil should report failure")
	}
}

func TestCallIntoROMFaultPolicy(t *testing.T) {
	// A push whose stack target is ROM faults under ROMWriteFault: the
	// designs route this to the exception handler.
	bus := mem.NewBus()
	bus.SetROMWritePolicy(mem.ROMWriteFault)
	if _, err := bus.AddROM("r", 0x50000, make([]byte, 0x1000)); err != nil {
		t.Fatal(err)
	}
	code := prog(isa.Inst{Op: isa.OpPushR, R1: r(isa.AX)})
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	m := New(bus, Options{ResetVector: SegOff{0x0100, 0}, ExceptionPolicy: ExceptionHalt})
	m.CPU.S[isa.SS] = 0x5000 // stack in ROM
	m.CPU.R[isa.SP] = 0x100
	if ev := m.Step(); ev != EventException {
		t.Fatalf("push into ROM: ev=%v", ev)
	}
}

func TestEventStrings(t *testing.T) {
	for ev, want := range map[Event]string{
		EventInstr:     "instr",
		EventNMI:       "nmi",
		EventIRQ:       "irq",
		EventException: "exception",
		EventReset:     "reset",
		EventHalted:    "halted",
		Event(99):      "unknown",
	} {
		if got := ev.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ev, got, want)
		}
	}
}

func TestMachineStringAndCPUString(t *testing.T) {
	m := newTestMachine(t, prog(isa.Inst{Op: isa.OpNop}))
	if s := m.String(); s == "" {
		t.Fatal("empty machine string")
	}
	if s := m.CPU.String(); s == "" {
		t.Fatal("empty cpu string")
	}
}
