package machine

import (
	"ssos/internal/isa"
	"ssos/internal/obs"
)

// Step advances the system by one clock tick: devices tick, then the
// processor performs (at most) one unit of work — a reset, an interrupt
// delivery, one instruction, or an idle halt tick. It returns what
// happened.
//
// This is the paper's "system step": the next configuration is a
// function of the current configuration and the external inputs at the
// clock tick. Step is total: it is well-defined from ANY configuration,
// including corrupted ones, which is what makes the machine a valid
// substrate for self-stabilization experiments.
//
//ssos:hotpath
func (m *Machine) Step() Event {
	m.Stats.Steps++
	for _, t := range m.tickers {
		t.Tick(m)
	}

	// The processor's unit of work, open-coded here (rather than a
	// stepCPU helper) to keep the per-step call chain short: one
	// compare rules out all three external pins; stepPins handles the
	// rare latched cases.
	var ev Event
	handled := false
	if m.pins != 0 {
		ev, handled = m.stepPins()
	}
	if !handled {
		if m.CPU.Halted {
			m.Stats.HaltTicks++
			ev = EventHalted
		} else {
			ev = m.execute()
		}
	}

	// The paper's NMI-counter hardware: decremented on every clock
	// tick until it reaches zero, except on the tick that loaded it
	// (NMI delivery), so the handler gets its full budget.
	if m.Opts.NMICounter && ev != EventNMI && m.CPU.NMICounter > 0 {
		m.CPU.NMICounter--
	}

	if m.AfterStep != nil {
		m.AfterStep(m, ev)
	}
	return ev
}

// Run executes n steps and returns the machine for chaining.
//
// With the superblock engine enabled and no AfterStep hook installed,
// steps run through the batched loop (superblock.go), which is
// semantically identical to calling Step n times — the fallback the
// loop takes per-step whenever a hook appears (fault-injection windows,
// monitors) or the engine is disabled. Both conditions are re-checked
// every iteration, so a ticker or port device that installs a hook or
// flips the engine mid-run is honoured from the very next step.
func (m *Machine) Run(n int) *Machine {
	m.runBatched(n)
	return m
}

// RunUntil steps the machine until pred returns true or limit steps
// have run; it reports whether pred was satisfied.
func (m *Machine) RunUntil(limit int, pred func(*Machine) bool) bool {
	for i := 0; i < limit; i++ {
		m.Step()
		if pred(m) {
			return true
		}
	}
	return false
}

// stepPins reacts to latched external pins in priority order: reset,
// then NMI, then maskable IRQ. It reports whether a pin was acted on;
// a latched-but-undeliverable pin (masked IRQ, in-flight NMI) leaves
// the processor to execute normally.
func (m *Machine) stepPins() (Event, bool) {
	if m.pins&pinReset != 0 {
		m.Reset()
		m.Stats.Resets++
		if m.Probe != nil {
			m.Probe.Emit(obs.Ev(m.Stats.Steps, obs.TypeReset))
		}
		return EventReset, true
	}
	if m.pins&pinNMI != 0 && m.nmiDeliverable() {
		m.deliverNMI()
		m.Stats.NMIs++
		if m.Probe != nil {
			m.Probe.Emit(obs.Ev(m.Stats.Steps, obs.TypeNMI))
		}
		return EventNMI, true
	}
	if m.pins&pinIRQ != 0 && m.CPU.Flags.Has(isa.FlagIF) {
		m.deliverIRQ()
		m.Stats.IRQs++
		if m.Probe != nil {
			m.Probe.Emit(obs.Ev(m.Stats.Steps, obs.TypeIRQ))
		}
		return EventIRQ, true
	}
	return 0, false
}

// nmiDeliverable implements the two hardware variants: the paper's
// counter (react only at zero — and zero is eventually reached from
// any state) or the stock latch (react only when not already in an NMI
// — which an arbitrary state can hold forever).
func (m *Machine) nmiDeliverable() bool {
	if m.Opts.NMICounter {
		return m.CPU.NMICounter == 0
	}
	return !m.CPU.InNMI
}

func (m *Machine) deliverNMI() {
	m.pins &^= pinNMI
	m.push(uint16(m.CPU.Flags))
	m.push(m.CPU.S[isa.CS])
	m.push(m.CPU.IP)
	m.CPU.Flags = m.CPU.Flags.Without(isa.FlagIF | isa.FlagWP)
	m.CPU.Halted = false
	if m.Opts.NMICounter {
		m.CPU.NMICounter = m.Opts.NMICounterMax
	} else {
		m.CPU.InNMI = true
	}
	var target SegOff
	if m.Opts.HardwiredNMIVector {
		target = m.Opts.NMIVector
	} else {
		target = m.idtEntry(VecNMI)
	}
	m.CPU.S[isa.CS] = target.Seg
	m.CPU.IP = target.Off
}

func (m *Machine) deliverIRQ() {
	m.pins &^= pinIRQ
	m.push(uint16(m.CPU.Flags))
	m.push(m.CPU.S[isa.CS])
	m.push(m.CPU.IP)
	m.CPU.Flags = m.CPU.Flags.Without(isa.FlagIF | isa.FlagWP)
	m.CPU.Halted = false
	target := m.idtEntry(m.irqVec)
	m.CPU.S[isa.CS] = target.Seg
	m.CPU.IP = target.Off
}

// raiseException reacts to a processor exception according to the
// configured policy. The program counter still addresses the faulting
// instruction when this is called.
func (m *Machine) raiseException(vec uint8) Event {
	m.Stats.Exceptions++
	if m.Probe != nil {
		ev := obs.Ev(m.Stats.Steps, obs.TypeException)
		ev.Code = uint64(vec)
		m.Probe.Emit(ev)
	}
	switch m.Opts.ExceptionPolicy {
	case ExceptionHalt:
		m.CPU.Halted = true
	case ExceptionVector:
		m.push(uint16(m.CPU.Flags))
		m.push(m.CPU.S[isa.CS])
		m.push(m.CPU.IP)
		m.CPU.Flags = m.CPU.Flags.Without(isa.FlagIF | isa.FlagWP)
		m.CPU.S[isa.CS] = m.Opts.ExceptionVector.Seg
		m.CPU.IP = m.Opts.ExceptionVector.Off
	case ExceptionIDT:
		m.push(uint16(m.CPU.Flags))
		m.push(m.CPU.S[isa.CS])
		m.push(m.CPU.IP)
		m.CPU.Flags = m.CPU.Flags.Without(isa.FlagIF | isa.FlagWP)
		target := m.idtEntry(vec)
		m.CPU.S[isa.CS] = target.Seg
		m.CPU.IP = target.Off
	}
	return EventException
}
