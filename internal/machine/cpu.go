// Package machine implements the simulated processor and system of the
// paper's Section 2 model: a Pentium-real-mode-style CPU connected to a
// 1 MiB memory bus and I/O devices, executing fetch-decode-execute
// steps triggered by clock ticks.
//
// The package implements both stock hardware behaviour and the
// paper's *proposed* additions that make self-stabilization possible:
//
//   - an NMI counter register (Section 2, "Additional necessary and
//     sufficient hardware support"): the processor reacts to NMI only
//     when the counter is zero; delivering an NMI raises the counter to
//     its maximum; every clock tick decrements it; IRET zeroes it.
//     This guarantees NMIs are eventually handled from any state.
//     With the counter disabled the machine reproduces the stock
//     Pentium hazard the paper describes: an arbitrary initial state
//     may have NMIs masked forever.
//   - a hardwired NMI vector in ROM, immune to idt/idtr corruption.
//   - an optionally fixed (non-writable, effectively non-corruptible)
//     IDTR.
//
// A configuration (CPU state + memory content) is exactly the paper's
// "system configuration"; Machine.Step is the paper's "system step".
package machine

import (
	"fmt"

	"ssos/internal/isa"
)

// SegOff is a real-mode far pointer (segment and offset).
type SegOff struct {
	Seg uint16
	Off uint16
}

// Linear returns the 20-bit physical address seg*16+off.
func (s SegOff) Linear() uint32 {
	return (uint32(s.Seg)<<4 + uint32(s.Off)) & 0xFFFFF
}

func (s SegOff) String() string {
	return fmt.Sprintf("%04x:%04x", s.Seg, s.Off)
}

// CPU is the full processor state. All fields are exported: the
// self-stabilization fault model allows transient faults to assign any
// of them arbitrary values, which fault injectors (and tests) do
// directly.
type CPU struct {
	R     [isa.NumRegs]uint16  // general-purpose registers
	S     [isa.NumSRegs]uint16 // segment registers
	IP    uint16               // instruction pointer
	Flags isa.Flags            // processor status word

	// IDTR is the base linear address of the interrupt descriptor
	// table. On stock hardware a transient fault here can disable all
	// interrupt handling (the paper's idtr example); with
	// Options.FixedIDTR the register is hardwired and the field is
	// ignored.
	IDTR uint32

	// WP is the memory-protection extension's window register: with
	// Options.MemoryProtection enabled and FlagWP set, RAM-resident
	// code may store only within the 4 KiB window starting at WP<<4.
	// Loaded by the wpset instruction.
	WP uint16

	// NMICounter is the paper's proposed countdown register. The
	// processor reacts to NMI only when it is zero. Only meaningful
	// when Options.NMICounter is true.
	NMICounter uint16

	// InNMI is the stock-Pentium latch: set while an NMI handler runs,
	// cleared by IRET. An arbitrary initial state may have it set with
	// no IRET forthcoming — the stabilization hazard the NMI counter
	// removes. Only consulted when Options.NMICounter is false.
	InNMI bool

	// Halted is set by HLT; cleared by interrupt delivery or reset.
	Halted bool
}

// Reg returns the value of a 16-bit general register.
func (c *CPU) Reg(r isa.Reg) uint16 { return c.R[r] }

// SetReg sets a 16-bit general register.
func (c *CPU) SetReg(r isa.Reg, v uint16) { c.R[r] = v }

// SReg returns the value of a segment register.
func (c *CPU) SReg(s isa.SReg) uint16 { return c.S[s] }

// SetSReg sets a segment register.
func (c *CPU) SetSReg(s isa.SReg, v uint16) { c.S[s] = v }

// Reg8 returns the value of a byte register half.
func (c *CPU) Reg8(r isa.Reg8) uint8 {
	parent, high := r.Parent()
	if high {
		return uint8(c.R[parent] >> 8)
	}
	return uint8(c.R[parent])
}

// SetReg8 sets a byte register half.
func (c *CPU) SetReg8(r isa.Reg8, v uint8) {
	parent, high := r.Parent()
	if high {
		c.R[parent] = c.R[parent]&0x00FF | uint16(v)<<8
	} else {
		c.R[parent] = c.R[parent]&0xFF00 | uint16(v)
	}
}

// PC returns the current program-counter far pointer (cs:ip).
func (c *CPU) PC() SegOff { return SegOff{c.S[isa.CS], c.IP} }

// String renders the register file compactly for traces and debugging.
func (c *CPU) String() string {
	return fmt.Sprintf(
		"ax=%04x bx=%04x cx=%04x dx=%04x si=%04x di=%04x bp=%04x sp=%04x "+
			"cs=%04x ds=%04x es=%04x fs=%04x gs=%04x ss=%04x ip=%04x fl=%v nmic=%d halt=%v",
		c.R[isa.AX], c.R[isa.BX], c.R[isa.CX], c.R[isa.DX],
		c.R[isa.SI], c.R[isa.DI], c.R[isa.BP], c.R[isa.SP],
		c.S[isa.CS], c.S[isa.DS], c.S[isa.ES], c.S[isa.FS], c.S[isa.GS], c.S[isa.SS],
		c.IP, c.Flags, c.NMICounter, c.Halted)
}
