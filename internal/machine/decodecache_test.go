package machine

import (
	"bytes"
	"math/rand"
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
)

// newDiffMachines builds a cached and an uncached machine over
// identical buses: a small ROM at the reset/NMI vector and otherwise
// empty RAM. Both machines see the same options.
func newDiffMachines(t testing.TB, opts Options) (fast, slow *Machine) {
	t.Helper()
	rom := []byte{byte(isa.OpJmp), 0, 0}
	build := func() *Machine {
		bus := mem.NewBus()
		if _, err := bus.AddROM("rom", 0xF0000, rom); err != nil {
			t.Fatal(err)
		}
		return New(bus, opts)
	}
	fast = build()
	slow = build()
	slow.SetDecodeCache(false)
	return fast, slow
}

// stepBoth steps the pair once and asserts the events agree.
func stepBoth(t testing.TB, fast, slow *Machine, tag string) {
	t.Helper()
	evF, evS := fast.Step(), slow.Step()
	if evF != evS {
		t.Fatalf("%s (step %d): event diverged: cached=%v uncached=%v",
			tag, fast.Stats.Steps, evF, evS)
	}
}

// compareMachines asserts full architectural-state agreement.
func compareMachines(t testing.TB, fast, slow *Machine, tag string) {
	t.Helper()
	if fast.CPU != slow.CPU {
		t.Fatalf("%s: CPU diverged:\n  cached: %+v\nuncached: %+v", tag, fast.CPU, slow.CPU)
	}
	if fast.Stats != slow.Stats {
		t.Fatalf("%s: stats diverged:\n  cached: %v\nuncached: %v", tag, fast.Stats, slow.Stats)
	}
	if !bytes.Equal(fast.Bus.Snapshot(), slow.Bus.Snapshot()) {
		t.Fatalf("%s: memory diverged", tag)
	}
}

// TestDecodeCacheStosbOverwritesCachedInstruction pins the classic
// stale-cache hazard with an exact program: an instruction is executed
// (and so cached), then the guest's own stosb overwrites it, then it
// is re-executed. The overwritten form must execute — a cache serving
// the stale decode would run the old instruction.
//
//	0: nop      ; executed first, lands in the decode cache
//	1: stosb    ; al=hlt -> es:di = cs:0, overwriting the nop
//	2: jmp 0    ; back to the (now rewritten) slot
func TestDecodeCacheStosbOverwritesCachedInstruction(t *testing.T) {
	for _, cached := range []bool{true, false} {
		bus := mem.NewBus()
		if _, err := bus.AddROM("rom", 0xF0000, []byte{byte(isa.OpJmp), 0, 0}); err != nil {
			t.Fatal(err)
		}
		m := New(bus, Options{ResetVector: SegOff{0x0100, 0}})
		m.SetDecodeCache(cached)
		code := []byte{byte(isa.OpNop), byte(isa.OpStosb), byte(isa.OpJmp), 0, 0}
		for i, b := range code {
			bus.PokeRAM(0x1000+uint32(i), b)
		}
		m.CPU.R[isa.AX] = uint16(isa.OpHlt) // al = hlt
		m.CPU.R[isa.DI] = 0
		m.CPU.S[isa.ES] = 0x0100

		// nop, stosb, jmp, then the rewritten slot: it must be hlt.
		m.Run(4)
		if !m.CPU.Halted {
			t.Fatalf("cached=%v: stale decode served: machine did not execute "+
				"the self-modified hlt (ip=%#x)", cached, m.CPU.IP)
		}
	}
}

// TestDecodeCacheGuestStoreDifferential drives cached vs uncached
// machines through byte soup that is dense in store instructions, with
// registers repeatedly pointed back at the code region so guest stores
// (StoreByte and StoreWord paths, not just Poke) land on executed
// instructions.
func TestDecodeCacheGuestStoreDifferential(t *testing.T) {
	storeOps := []isa.Op{isa.OpStosb, isa.OpMovsb, isa.OpRepMovsb, isa.OpMovMR, isa.OpMovMI}
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 30; trial++ {
		fast, slow := newDiffMachines(t, Options{ResetVector: SegOff{0x0100, 0}})
		// Code soup biased toward stores, identical on both machines.
		for i := 0; i < 2048; i++ {
			var b byte
			if rng.Intn(3) == 0 {
				b = byte(storeOps[rng.Intn(len(storeOps))])
			} else {
				b = byte(rng.Intn(256))
			}
			a := 0x1000 + uint32(i)
			fast.Bus.PokeRAM(a, b)
			slow.Bus.PokeRAM(a, b)
		}
		for i := 0; i < 4000; i++ {
			if i%97 == 0 {
				// Re-aim the string/store registers at the code so the
				// soup keeps rewriting itself.
				seg, di, si := uint16(0x0100), uint16(rng.Intn(2048)), uint16(rng.Intn(2048))
				ax := uint16(rng.Intn(1 << 16))
				cx := uint16(rng.Intn(64))
				ip := uint16(rng.Intn(2048))
				for _, m := range []*Machine{fast, slow} {
					m.CPU.S[isa.ES], m.CPU.S[isa.DS] = seg, seg
					m.CPU.R[isa.DI], m.CPU.R[isa.SI] = di, si
					m.CPU.R[isa.AX], m.CPU.R[isa.CX] = ax, cx
					m.CPU.S[isa.CS] = seg
					m.CPU.IP = ip
					m.CPU.Halted = false
				}
			}
			stepBoth(t, fast, slow, "guest-store soup")
		}
		compareMachines(t, fast, slow, "guest-store soup/final")
	}
}
