package expt

import (
	"strconv"
	"strings"
	"testing"

	"ssos/internal/dev"
	"ssos/internal/trace"
)

var quick = Options{Quick: true, Seed: 7}

// cellPct parses a "97%" cell.
func cellPct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad pct cell %q", cell)
	}
	return v
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad float cell %q", cell)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
		Notes:   []string{"n"},
	}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"T — demo", "claim: c", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown:\n%s", md)
	}
}

func TestSeriesRenderingAndCSV(t *testing.T) {
	s := &Series{
		ID: "F", Title: "demo", XLabel: "x", YLabel: "y",
		Lines: []Line{{Name: "l", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}}},
	}
	out := s.Render()
	if !strings.Contains(out, "F — demo") || !strings.Contains(out, "* = l") {
		t.Errorf("series render:\n%s", out)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,l\n1,1\n") {
		t.Errorf("csv:\n%s", csv)
	}
	// Degenerate series must not panic.
	empty := &Series{ID: "E", Title: "none"}
	if empty.Render() == "" {
		t.Error("empty series render")
	}
	flat := &Series{ID: "C", Lines: []Line{{Name: "c", X: []float64{1}, Y: []float64{5}}}}
	if flat.Render() == "" {
		t.Error("flat series render")
	}
}

func TestSummarize(t *testing.T) {
	st := summarize([]uint64{5, 1, 9, 3, 7})
	if st.n != 5 || st.min != 1 || st.max != 9 || st.p50 != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.mean != 5 {
		t.Fatalf("mean: %v", st.mean)
	}
	if z := summarize(nil); z.n != 0 {
		t.Fatal("empty summarize")
	}
}

func TestAvailabilityMetric(t *testing.T) {
	spec := trace.HeartbeatSpec{Start: 1, MaxGap: 100}
	w := []dev.PortWrite{
		{Step: 0, Value: 1}, {Step: 50, Value: 2}, {Step: 100, Value: 3},
		{Step: 500, Value: 1}, // restart after downtime
		{Step: 550, Value: 2},
	}
	av := availability(w, spec, 1000)
	// Legal up-gaps: 50+50 (first run) + 50 (after restart) = 150.
	if av != 0.15 {
		t.Fatalf("availability = %v", av)
	}
	if availability(nil, spec, 0) != 0 {
		t.Fatal("zero-run availability")
	}
}

func TestE1AllClassesRecover(t *testing.T) {
	tab := E1RAMCorruption(quick)
	if len(tab.Rows) != 6 { // six fault classes
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if got := cellPct(t, row[2]); got != 100 {
			t.Errorf("%s: recovered %v%%, want 100%%", row[0], got)
		}
	}
}

func TestE2CounterHardwareMatters(t *testing.T) {
	tab, series := E2ArbitraryState(quick)
	paper := cellPct(t, tab.Rows[0][2])
	stock := cellPct(t, tab.Rows[1][2])
	if paper != 100 {
		t.Errorf("paper hardware converged %v%%, want 100%%", paper)
	}
	if stock >= paper {
		t.Errorf("stock latch should lose trials: paper=%v stock=%v", paper, stock)
	}
	if vec := cellPct(t, tab.Rows[2][2]); vec >= stock {
		t.Errorf("RAM-idt vectoring should be the worst: latch=%v vectoring=%v", stock, vec)
	}
	if len(series.Lines) != 1 || len(series.Lines[0].Y) == 0 {
		t.Error("missing F1 CDF data")
	}
}

func TestE3ShapesHold(t *testing.T) {
	tab, series := E3FaultRateComparison(quick)
	// Row 0 is rate 0: every approach but reinstall near 1.
	for col := 1; col <= 4; col++ {
		if v := cellFloat(t, tab.Rows[0][col]); v < 0.5 {
			t.Errorf("rate 0 availability col %d = %v", col, v)
		}
	}
	// Highest rate: baseline must be clearly below monitor.
	last := tab.Rows[len(tab.Rows)-1]
	base := cellFloat(t, last[1])
	monitor := cellFloat(t, last[4])
	if base >= monitor {
		t.Errorf("baseline (%v) should collapse below monitor (%v) at high fault rate", base, monitor)
	}
	if len(series.Lines) != 4 {
		t.Errorf("F2 lines: %d", len(series.Lines))
	}
}

func TestE4RepairAndPreservation(t *testing.T) {
	tab := E4MonitorRepair(quick)
	for _, row := range tab.Rows {
		if got := cellPct(t, row[2]); got != 100 {
			t.Errorf("%s: recovered %v%%", row[0], got)
		}
		if got := cellPct(t, row[5]); got < 80 {
			t.Errorf("%s: counter preserved only %v%%", row[0], got)
		}
	}
}

func TestE5PeriodTradeoff(t *testing.T) {
	tab, series := E5PeriodSweep(quick)
	// Fault-free availability grows with the period.
	first := cellFloat(t, tab.Rows[0][1])
	lastRow := tab.Rows[len(tab.Rows)-1]
	last := cellFloat(t, lastRow[1])
	if first >= last {
		t.Errorf("short period should cost availability: first=%v last=%v", first, last)
	}
	// Silent faults make the longest period WORSE than a middle one:
	// the trade-off crossover.
	mid := cellFloat(t, tab.Rows[3][3])
	long := cellFloat(t, lastRow[3])
	if long >= mid {
		t.Errorf("silent-fault crossover missing: mid=%v long=%v", mid, long)
	}
	if len(series.Lines) != 3 {
		t.Errorf("F3 lines: %d", len(series.Lines))
	}
}

func TestE6PrimitiveSweep(t *testing.T) {
	tab := E6Primitive(quick)
	if got := cellPct(t, tab.Rows[0][2]); got != 100 {
		t.Errorf("aligned sweep stabilized %v%%, want 100%%", got)
	}
	if got := cellPct(t, tab.Rows[1][2]); got != 100 {
		t.Errorf("fill sweep stabilized %v%%, want 100%%", got)
	}
	f := E6FairnessFigure(quick)
	if len(f.Lines) != 4 {
		t.Fatalf("F4 lines: %d", len(f.Lines))
	}
	for _, l := range f.Lines {
		if l.Y[len(l.Y)-1] <= l.Y[0] {
			t.Errorf("process %s beats did not grow", l.Name)
		}
	}
}

func TestE7SchedulerRecovery(t *testing.T) {
	tab := E7Scheduler(Options{Quick: true, Seed: 7, Trials: 3})
	for i, row := range tab.Rows {
		got := cellPct(t, row[2])
		// The bare-scheduler blast rows may lose a trial to the
		// data-aliasing absorbing cycle (a documented finding); the
		// protected variant (last row) must always recover, and no
		// class may collapse.
		if i == len(tab.Rows)-1 && got != 100 {
			t.Errorf("%s: protected variant recovered %v%%, want 100%%", row[0], got)
		}
		if got < 60 {
			t.Errorf("%s: recovered only %v%%", row[0], got)
		}
	}
}

func TestE8OverheadDecreasesWithQuantum(t *testing.T) {
	tab, series := E8Overhead(quick)
	first := cellFloat(t, tab.Rows[0][1])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][1])
	if first <= last {
		t.Errorf("overhead should fall with quantum: %v -> %v", first, last)
	}
	if len(series.Lines) != 1 {
		t.Errorf("F5 lines: %d", len(series.Lines))
	}
}

func TestE9CheckpointFailsWhereROMDesignsRecover(t *testing.T) {
	tab, series := E9Checkpoint(quick)
	cp := cellPct(t, tab.Rows[0][2])
	re := cellPct(t, tab.Rows[1][2])
	mo := cellPct(t, tab.Rows[2][2])
	if re != 100 || mo != 100 {
		t.Errorf("ROM designs must fully recover: reinstall=%v monitor=%v", re, mo)
	}
	if cp >= 100 {
		t.Errorf("checkpointing should lose some trials, got %v%%", cp)
	}
	if len(series.Lines) != 1 || len(series.Lines[0].Y) == 0 {
		t.Error("missing F6 data")
	}
}

func TestE10TokenRingConverges(t *testing.T) {
	tab := E10TokenRing(Options{Quick: true, Seed: 7, Trials: 3})
	for _, row := range tab.Rows {
		if got := cellPct(t, row[2]); got != 100 {
			t.Errorf("%s: converged %v%%", row[0], got)
		}
	}
}

func TestE11ProtectionReducesVictimViolations(t *testing.T) {
	tab := E11Protection(Options{Quick: true, Seed: 7, Trials: 3})
	plain := cellFloat(t, tab.Rows[0][2])
	prot := cellFloat(t, tab.Rows[1][2])
	if prot >= plain {
		t.Errorf("protection should reduce victim violations: plain=%v protect=%v", plain, prot)
	}
	if plain == 0 {
		t.Error("the stray-ds fault should cause violations without protection")
	}
}

func TestE12ZombieSeparatesDesigns(t *testing.T) {
	tab := E12AdaptiveWatchdog(Options{Quick: true, Seed: 7, Trials: 4})
	// Row 0 adaptive, row 1 reinstall.
	adAvail := cellFloat(t, tab.Rows[0][1])
	reAvail := cellFloat(t, tab.Rows[1][1])
	if adAvail <= reAvail {
		t.Errorf("adaptive should win fault-free availability: %v vs %v", adAvail, reAvail)
	}
	if got := cellPct(t, tab.Rows[0][2]); got != 100 {
		t.Errorf("adaptive halt recovery %v%%", got)
	}
	if got := cellPct(t, tab.Rows[1][2]); got != 100 {
		t.Errorf("reinstall halt recovery %v%%", got)
	}
	if got := cellPct(t, tab.Rows[0][3]); got != 0 {
		t.Errorf("adaptive should NEVER recover the zombie, got %v%%", got)
	}
	if got := cellPct(t, tab.Rows[1][3]); got != 100 {
		t.Errorf("reinstall zombie recovery %v%%", got)
	}
}

func TestE13SilentFaultsNeedNonMaskableTrigger(t *testing.T) {
	tab := E13TickfulSilentFaults(Options{Quick: true, Seed: 7, Trials: 3})
	for _, row := range tab.Rows {
		// The baseline may get lucky on the IF fault when the strike
		// lands while the CPU happens to be awake (the loop's sti heals
		// it); it must still lose most trials.
		if got := cellPct(t, row[1]); got > 34 {
			t.Errorf("%s: baseline recovered %v%%", row[0], got)
		}
		if got := cellPct(t, row[2]); got != 100 {
			t.Errorf("%s: reinstall recovered %v%%", row[0], got)
		}
		if got := cellPct(t, row[3]); got != 100 {
			t.Errorf("%s: adaptive recovered %v%%", row[0], got)
		}
	}
}

func TestE15LayeredRingsConverge(t *testing.T) {
	tab, fig := E15LayeredRings(Options{Quick: true, Seed: 7, Trials: 2})
	// 3 variants x 3 layers x 2 deployments.
	if len(tab.Rows) != 18 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if got := cellPct(t, row[4]); got != 100 {
			t.Errorf("%s/%s/%s: converged %v%%, want 100%%", row[0], row[1], row[2], got)
		}
	}
	if fig.ID != "F8" || len(fig.Lines) != 6 {
		t.Fatalf("figure: %+v", fig)
	}
	for _, l := range fig.Lines {
		if len(l.X) != 3 {
			t.Fatalf("line %s has %d points", l.Name, len(l.X))
		}
	}
}

func TestE14VotingScalesAvailability(t *testing.T) {
	tab, fig, figLat := E14ClusterAvailability(quick)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Column layout: replicas, quorum, one availability column per
	// probability, evictions, then the episode-latency percentiles.
	const pMaxCol = 5
	// Fault-free column is fully available at every fleet size.
	for _, row := range tab.Rows {
		if got := cellFloat(t, row[2]); got != 1 {
			t.Errorf("N=%s fault-free availability %v, want 1", row[0], got)
		}
	}
	// At the harshest fault rate, a real fleet (N>=5) must beat the
	// single node: voting masks what one machine can only repair late.
	single := cellFloat(t, tab.Rows[0][pMaxCol])
	for _, row := range tab.Rows[2:] {
		if got := cellFloat(t, row[pMaxCol]); got < single {
			t.Errorf("N=%s availability %v below single-node %v", row[0], got, single)
		}
	}
	// The instrumented pMax runs strike constantly, so every fleet size
	// must have resolved at least one recovery episode, and p99 >= p50.
	for _, row := range tab.Rows {
		p50, p99 := cellFloat(t, row[pMaxCol+2]), cellFloat(t, row[pMaxCol+3])
		if p50 <= 0 || p99 < p50 {
			t.Errorf("N=%s episode latency p50=%v p99=%v", row[0], p50, p99)
		}
	}
	if fig.ID != "F7" || len(fig.Lines) != 4 {
		t.Fatalf("figure: %+v", fig)
	}
	if figLat.ID != "F7B" || len(figLat.Lines) != 2 || len(figLat.Lines[0].X) != 5 {
		t.Fatalf("latency figure: %+v", figLat)
	}
}
