package expt

import (
	"ssos/internal/core"
	"ssos/internal/dev"
	"ssos/internal/fault"
	"ssos/internal/trace"
)

// availability returns the fraction of the run during which the system
// was demonstrably in legal operation: the sum of gaps covered by
// strict successor heartbeats (restart beats and violations contribute
// downtime).
func availability(w []dev.PortWrite, spec trace.HeartbeatSpec, total uint64) float64 {
	if total == 0 {
		return 0
	}
	var up uint64
	for i := 1; i < len(w); i++ {
		gap := w[i].Step - w[i-1].Step
		if w[i].Value == w[i-1].Value+1 && gap <= spec.MaxGap {
			up += gap
		}
	}
	return float64(up) / float64(total)
}

// recoveryResult is one fault-injection trial outcome.
type recoveryResult struct {
	recovered bool
	latency   uint64 // steps from injection to first legal beat of the final legal run
}

// measureRecovery builds a fresh system, runs a warmup, applies the
// injection, runs the horizon and checks for a confirmed legal suffix.
func measureRecovery(cfg core.Config, seed int64, warmup, horizon, confirm int,
	inject func(*core.System, *fault.Injector)) recoveryResult {
	s := core.MustNew(cfg)
	s.Run(warmup)
	inj := fault.NewInjector(s.M, seed)
	inject(s, inj)
	faultStep := s.Steps()
	s.Run(horizon)
	step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, confirm)
	if !ok {
		return recoveryResult{}
	}
	return recoveryResult{recovered: true, latency: step - faultStep}
}

// trialSet aggregates recovery trials.
type trialSet struct {
	latencies []uint64
	failures  int
}

func (ts *trialSet) add(r recoveryResult) {
	if r.recovered {
		ts.latencies = append(ts.latencies, r.latency)
	} else {
		ts.failures++
	}
}

func (ts *trialSet) recoveredPct() float64 {
	n := len(ts.latencies) + ts.failures
	if n == 0 {
		return 0
	}
	return 100 * float64(len(ts.latencies)) / float64(n)
}

// procRecovered reports whether every process stream of an approach-3
// system ends with a confirmed legal suffix, and the latest per-process
// recovery step.
func procRecovered(s *core.System, faultStep uint64, confirm int) (uint64, bool) {
	var worst uint64
	for i := range s.ProcBeats {
		step, ok := s.ProcSpec(i).RecoveredAfter(s.ProcBeats[i].Writes(), faultStep, confirm)
		if !ok {
			return 0, false
		}
		if step > worst {
			worst = step
		}
	}
	return worst, true
}

// specFor keeps a local alias to avoid verbose call sites.
func specFor(s *core.System) trace.HeartbeatSpec { return s.Spec() }
