package expt

import (
	"runtime"
	"sync"
)

// forEachTrial runs n independent trials across worker goroutines.
// Each trial builds its own System (systems share no mutable state;
// the assembled guest programs in core's build cache are immutable),
// so trials parallelize safely. Results must be accumulated through
// the collect callback, which is serialized.
//
// Determinism is preserved: trial i always receives index i, and every
// experiment derives its seeds and fault schedules from the index, so
// the table contents do not depend on scheduling.
func forEachTrial(n int, run func(i int) interface{}, collect func(i int, result interface{})) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			collect(i, run(i))
		}
		return
	}
	results := make([]interface{}, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i := 0; i < n; i++ {
		collect(i, results[i])
	}
}
