package expt

import "ssos/internal/pool"

// forEachTrial runs n independent trials across worker goroutines.
// Each trial builds its own System (systems share no mutable state;
// the assembled guest programs in core's build cache are immutable),
// so trials parallelize safely. Results must be accumulated through
// the collect callback, which is serialized.
//
// Determinism is preserved: trial i always receives index i, and every
// experiment derives its seeds and fault schedules from the index, so
// the table contents do not depend on scheduling. The fan-out itself
// lives in internal/pool, shared with the cluster epoch loop.
func forEachTrial(n int, run func(i int) interface{}, collect func(i int, result interface{})) {
	pool.ForEach(n, run, collect)
}
