package expt

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/isa"
	"ssos/internal/mem"
	"ssos/internal/trace"
)

// fmtPct renders a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.0f%%", v) }

// fmtSteps renders a step count.
func fmtSteps(v float64) string { return fmt.Sprintf("%.0f", v) }

// osRegion returns the guest OS RAM region (or a sub-range of it).
func osRegion(off, size uint32) mem.Region {
	return mem.Region{Name: "os", Start: uint32(guest.OSSeg)<<4 + off, Size: size}
}

// E1RAMCorruption reproduces the paper's Section 3 Bochs experiment at
// scale: "we changed the contents of the RAM during execution of the
// code, and observed that the procedure ensures stabilization".
func E1RAMCorruption(o Options) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Approach 1: recovery from RAM corruption (the paper's Bochs experiment)",
		Claim: "the watchdog/reinstall procedure ensures the processor eventually " +
			"continues to execute the correct code of the operating system (Section 3)",
		Columns: []string{"fault class", "trials", "recovered", "latency p50", "latency p95", "latency max"},
	}
	trials := o.trials(40)
	horizon := o.horizon(200000)

	classes := []struct {
		name   string
		inject func(*core.System, *fault.Injector)
	}{
		{"1 bit flip in RAM", func(s *core.System, in *fault.Injector) { in.FlipRAMBit() }},
		{"64-byte burst in OS code", func(s *core.System, in *fault.Injector) {
			for i := 0; i < 64; i++ {
				in.CorruptByteIn(osRegion(0, uint32(guest.DataOff)))
			}
		}},
		{"64-byte burst in OS data", func(s *core.System, in *fault.Injector) {
			for i := 0; i < 64; i++ {
				in.CorruptByteIn(osRegion(uint32(guest.DataOff), guest.DataLen))
			}
		}},
		{"whole OS image randomized", func(s *core.System, in *fault.Injector) {
			in.RandomizeRegion(osRegion(0, guest.ImageSize))
		}},
		{"stack region randomized", func(s *core.System, in *fault.Injector) {
			in.RandomizeRegion(mem.Region{Name: "stack", Start: uint32(guest.StackSeg) << 4, Size: 0x1000})
		}},
		{"program counter randomized", func(s *core.System, in *fault.Injector) {
			in.CorruptIP()
			in.CorruptSegment()
		}},
	}
	for _, c := range classes {
		var ts trialSet
		inject := c.inject
		forEachTrial(trials, func(i int) interface{} {
			return measureRecovery(core.Config{Approach: core.ApproachReinstall},
				o.Seed+int64(i), 30000+i*137, horizon, 10, inject)
		}, func(_ int, r interface{}) {
			ts.add(r.(recoveryResult))
		})
		st := summarize(ts.latencies)
		t.AddRow(c.name, fmt.Sprint(trials), fmtPct(ts.recoveredPct()),
			fmtSteps(st.p50), fmtSteps(st.p95), fmtSteps(st.max))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"watchdog period %d steps; recovery latency is bounded by one period plus the handler length (%d)",
		core.DefaultWatchdogPeriod, guest.ImageSize+16))
	return t
}

// E2ArbitraryState measures Theorem 3.4: from ANY initial configuration
// (all RAM and every CPU register randomized) the approach-1 system
// reaches a weakly legal suffix — and quantifies the role of the
// paper's NMI-counter hardware by repeating the trial on stock NMI
// latching.
func E2ArbitraryState(o Options) (*Table, *Series) {
	t := &Table{
		ID:    "E2",
		Title: "Approach 1: convergence from arbitrary configurations (Theorem 3.4)",
		Claim: "every infinite execution of the system has a suffix in the weakly " +
			"legal execution set, given the proposed NMI-counter hardware",
		Columns: []string{"hardware", "trials", "converged", "convergence p50", "p95", "max"},
	}
	trials := o.trials(60)
	horizon := o.horizon(400000)

	var cdf []float64
	for _, hw := range []struct {
		name     string
		disable  bool
		stockVec bool
	}{
		{"NMI counter (paper)", false, false},
		{"stock NMI latch", true, false},
		{"RAM idt + writable idtr", false, true},
	} {
		var ts trialSet
		disable, stockVec := hw.disable, hw.stockVec
		forEachTrial(trials, func(i int) interface{} {
			s := core.MustNew(core.Config{
				Approach:          core.ApproachReinstall,
				DisableNMICounter: disable,
				StockVectoring:    stockVec,
			})
			inj := fault.NewInjector(s.M, o.Seed+int64(1000+i))
			inj.BlastRAM()
			inj.BlastCPU()
			s.Run(horizon)
			step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), 0, 10)
			return recoveryResult{recovered: ok, latency: step}
		}, func(_ int, r interface{}) {
			ts.add(r.(recoveryResult))
		})
		st := summarize(ts.latencies)
		t.AddRow(hw.name, fmt.Sprint(trials), fmtPct(ts.recoveredPct()),
			fmtSteps(st.p50), fmtSteps(st.p95), fmtSteps(st.max))
		if !hw.disable && !hw.stockVec {
			for _, l := range ts.latencies {
				cdf = append(cdf, float64(l))
			}
		}
	}
	t.Notes = append(t.Notes,
		"the stock latch loses the trials whose random initial state has InNMI set: "+
			"NMIs stay masked forever, exactly the hazard motivating the NMI counter (Section 1)")
	t.Notes = append(t.Notes,
		"the stock-vectoring row keeps the counter but routes NMIs and exceptions through "+
			"a RAM idt addressed by a randomized idtr — the introduction's second hazard; "+
			"recovery then depends on garbage execution stumbling into the handler")

	s := summarizeCDF("F1", "Convergence-time distribution from arbitrary configurations",
		"quantile", "steps to convergence", cdf)
	return t, s
}

// summarizeCDF renders a sorted sample as a CDF series.
func summarizeCDF(id, title, xl, yl string, sample []float64) *Series {
	xs := make([]float64, len(sample))
	ys := append([]float64(nil), sample...)
	sortFloats(ys)
	for i := range ys {
		xs[i] = float64(i+1) / float64(len(ys))
	}
	return &Series{ID: id, Title: title, XLabel: xl, YLabel: yl,
		Lines: []Line{{Name: "convergence", X: xs, Y: ys}}}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// E3FaultRateComparison measures availability under sustained soft-error
// rates for the baseline and each stabilizing kernel design — the
// paper's implicit comparison ("none of the above suggest a design ...
// that can withstand any combination of transient-faults").
func E3FaultRateComparison(o Options) (*Table, *Series) {
	t := &Table{
		ID:    "E3",
		Title: "Availability under sustained soft-error rates",
		Claim: "ordinary operating systems do not recover from transient faults; " +
			"the stabilizing designs keep converging back to legal operation",
		Columns: []string{"faults/step", "baseline", "reinstall", "continue", "monitor"},
	}
	horizon := o.horizon(400000)
	rates := []float64{0, 1e-6, 1e-5, 1e-4}
	approaches := []core.Approach{
		core.ApproachBaseline, core.ApproachReinstall,
		core.ApproachContinue, core.ApproachMonitor,
	}
	lines := make([]Line, len(approaches))
	for i, a := range approaches {
		lines[i].Name = a.String()
	}
	for _, rate := range rates {
		row := []string{fmt.Sprintf("%g", rate)}
		for ai, a := range approaches {
			s := core.MustNew(core.Config{Approach: a})
			inj := fault.NewInjector(s.M, o.Seed+int64(ai)+int64(rate*1e7))
			detach := inj.Rate(rate)
			s.Run(horizon)
			detach()
			av := availability(s.Heartbeat.Writes(), specFor(s), s.Steps())
			row = append(row, fmt.Sprintf("%.3f", av))
			lines[ai].X = append(lines[ai].X, rate)
			lines[ai].Y = append(lines[ai].Y, av)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"availability = fraction of steps covered by strict successor heartbeats; "+
			"reinstall pays a periodic restart tax even at rate 0")
	f := &Series{ID: "F2", Title: "Availability vs fault rate",
		XLabel: "faults/step", YLabel: "availability", Lines: lines}
	return t, f
}

// E4MonitorRepair measures Section 4: the monitor detects and repairs
// exactly the broken predicate, preserves legal soft state, and falls
// back to restart only when the resume address is invalid.
func E4MonitorRepair(o Options) *Table {
	t := &Table{
		ID:    "E4",
		Title: "Approach 2: predicate repair, detection latency and state preservation",
		Claim: "reinstall the executable portion, monitor the state and assign a " +
			"legitimate state whenever required (Section 4)",
		Columns: []string{"fault class", "trials", "recovered", "repair code", "detect p50", "counter preserved"},
	}
	trials := o.trials(30)
	horizon := o.horizon(300000)

	classes := []struct {
		name   string
		repair uint16 // expected repair report (0 = none required)
		inject func(*core.System, *fault.Injector)
	}{
		{"canary word clobbered", guest.RepairCanary, func(s *core.System, in *fault.Injector) {
			s.M.Bus.PokeRAM(uint32(guest.OSSeg)<<4+guest.VarCanary, 0xFF)
		}},
		{"task index out of range", guest.RepairTaskIdx, func(s *core.System, in *fault.Injector) {
			s.M.Bus.PokeRAM(uint32(guest.OSSeg)<<4+guest.VarTaskIdx+1, 0x7F)
		}},
		{"run counter clobbered", guest.RepairChecksum, func(s *core.System, in *fault.Injector) {
			s.M.Bus.PokeRAM(uint32(guest.OSSeg)<<4+guest.VarTaskRuns, 0xAA)
			s.M.Bus.PokeRAM(uint32(guest.OSSeg)<<4+guest.VarTaskRuns+1, 0xBB)
		}},
		{"IPC queue indices clobbered", 0, func(s *core.System, in *fault.Injector) {
			// The kernel masks the indices on every use, so it usually
			// heals them before the next monitor pass; either layer
			// recovering counts (no specific repair code expected).
			s.M.Bus.PokeRAM(uint32(guest.OSSeg)<<4+guest.VarQHead+1, 0x7F)
			s.M.Bus.PokeRAM(uint32(guest.OSSeg)<<4+guest.VarQTail+1, 0x7F)
		}},
		{"64-byte burst in OS code", 0, func(s *core.System, in *fault.Injector) {
			for i := 0; i < 64; i++ {
				in.CorruptByteIn(osRegion(0, uint32(guest.DataOff)))
			}
		}},
		{"program counter randomized", guest.RepairResume, func(s *core.System, in *fault.Injector) {
			in.CorruptIP()
			in.CorruptSegment()
		}},
	}
	for _, c := range classes {
		var ts trialSet
		var detects []uint64
		preserved := 0
		for i := 0; i < trials; i++ {
			s := core.MustNew(core.Config{Approach: core.ApproachMonitor})
			s.Run(60000 + i*119)
			var preFault uint16
			if w := s.Heartbeat.Writes(); len(w) > 0 {
				preFault = w[len(w)-1].Value
			}
			inj := fault.NewInjector(s.M, o.Seed+int64(i))
			c.inject(s, inj)
			faultStep := s.Steps()
			s.Run(horizon)
			step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10)
			ts.add(recoveryResult{recovered: ok, latency: step - faultStep})
			if c.repair != 0 {
				for _, r := range s.Repairs.Writes() {
					if r.Value == c.repair && r.Step >= faultStep {
						detects = append(detects, r.Step-faultStep)
						break
					}
				}
			}
			if w := s.Heartbeat.Writes(); ok && len(w) > 0 && w[len(w)-1].Value > preFault {
				preserved++
			}
		}
		repairName := "-"
		detect := "-"
		if c.repair != 0 {
			repairName = fmt.Sprintf("%#x", c.repair)
			detect = fmtSteps(summarize(detects).p50)
		}
		t.AddRow(c.name, fmt.Sprint(trials), fmtPct(ts.recoveredPct()),
			repairName, detect, fmtPct(100*float64(preserved)/float64(trials)))
	}
	t.Notes = append(t.Notes,
		"counter preserved: the heartbeat kept counting past its pre-fault value "+
			"(approach 1 scores 0% here by design — every recovery is a restart)")
	return t
}

// E5PeriodSweep measures the watchdog-period trade-off for approach 1:
// short periods spend the machine on reinstalls, long periods recover
// slowly; the crossover sits where the period amortizes the handler.
func E5PeriodSweep(o Options) (*Table, *Series) {
	t := &Table{
		ID:    "E5",
		Title: "Approach 1: watchdog period vs availability",
		Claim: "the watchdog period trades reinstall overhead against recovery " +
			"latency (Section 3: 'when the period is long enough for the system to operate')",
		Columns: []string{"period (steps)", "avail. fault-free", "avail. @5e-5 OS faults/step", "avail. @1e-5 silent faults/step", "recovery p50"},
	}
	horizon := o.horizon(400000)
	periods := []uint32{2000, 5000, 10000, 30000, 80000, 200000}
	ff := Line{Name: "fault-free"}
	wf := Line{Name: "5e-5 OS faults/step"}
	hf := Line{Name: "1e-5 silent faults/step"}
	const osFaultRate = 5e-5
	const haltRate = 1e-5
	seeds := o.trials(5)
	for _, period := range periods {
		cfg := core.Config{Approach: core.ApproachReinstall, WatchdogPeriod: period}

		s := core.MustNew(cfg)
		s.Run(horizon)
		av0 := availability(s.Heartbeat.Writes(), specFor(s), s.Steps())

		// The faulted column targets the OS image itself: each strike
		// randomizes one image byte, so every fault matters and the
		// recovery-latency cost of long periods becomes visible.
		// Averaged over seeds: whether a strike lands in live code or
		// in image fill is luck, and one run is dominated by it.
		var av1 float64
		for seed := 0; seed < seeds; seed++ {
			s2 := core.MustNew(cfg)
			inj := fault.NewInjector(s2.M, o.Seed+int64(period)+int64(seed)*7919)
			detach := inj.RateIn(osRegion(0, guest.ImageSize), osFaultRate)
			s2.Run(horizon)
			detach()
			av1 += availability(s2.Heartbeat.Writes(), specFor(s2), s2.Steps())
		}
		av1 /= float64(seeds)

		// Silent faults (a latched halt) raise no exception, so ONLY
		// the watchdog recovers them: each costs about half a period
		// of downtime, making the long-period recovery-latency cost
		// visible. Image corruption, by contrast, mostly self-heals
		// through the exception-vectored reinstall.
		var av2 float64
		for seed := 0; seed < seeds; seed++ {
			s3 := core.MustNew(cfg)
			inj := fault.NewInjector(s3.M, o.Seed+int64(period)*3+int64(seed)*104729)
			detach := inj.RateHalt(haltRate)
			s3.Run(horizon)
			detach()
			av2 += availability(s3.Heartbeat.Writes(), specFor(s3), s3.Steps())
		}
		av2 /= float64(seeds)

		// Recovery latency at this period (a small trial set).
		var ts trialSet
		for i := 0; i < o.trials(10); i++ {
			ts.add(measureRecovery(cfg, o.Seed+int64(i), 20000+i*211,
				int(period)*3+100000, 10, func(s *core.System, in *fault.Injector) {
					in.RandomizeRegion(osRegion(0, guest.ImageSize))
				}))
		}
		t.AddRow(fmt.Sprint(period), fmt.Sprintf("%.3f", av0), fmt.Sprintf("%.3f", av1),
			fmt.Sprintf("%.3f", av2), fmtSteps(summarize(ts.latencies).p50))
		ff.X = append(ff.X, float64(period))
		ff.Y = append(ff.Y, av0)
		wf.X = append(wf.X, float64(period))
		wf.Y = append(wf.Y, av1)
		hf.X = append(hf.X, float64(period))
		hf.Y = append(hf.Y, av2)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"the reinstall handler costs ~%d steps, so periods near it leave the guest no time; "+
			"OS-image corruption mostly self-heals through the exception-vectored reinstall, "+
			"while silent faults (latched halt) wait for the watchdog — the long-period cost",
		guest.ImageSize+16))
	f := &Series{ID: "F3", Title: "Availability vs watchdog period (approach 1)",
		XLabel: "period (steps)", YLabel: "availability", XLog: true, Lines: []Line{ff, wf, hf}}
	return t, f
}

// E6Primitive measures Theorem 5.1: the primitive scheduler stabilizes
// from every program-counter value of its model and shares the machine
// among its processes.
func E6Primitive(o Options) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Primitive scheduler (5.1): stabilization sweep and fairness",
		Claim: "starting from any program counter value, every process is executed " +
			"infinitely often and stabilization is preserved (Theorem 5.1)",
		Columns: append([]string{"sweep", "pc values", "stabilized"}, procShareCols()...),
	}
	base := core.MustNew(core.Config{Approach: core.ApproachPrimitive})

	// Enumerate pc targets.
	var aligned []uint16
	off := 0
	for off < int(base.Prim.CodeEnd) {
		aligned = append(aligned, uint16(off))
		_, size, ok := isa.Decode(base.Prim.Image[off:])
		if !ok {
			break
		}
		off += size
	}
	var fill []uint16
	for f := int(base.Prim.CodeEnd); f < len(base.Prim.Image)-2; f++ {
		fill = append(fill, uint16(f))
	}
	var raw []uint16
	for f := 0; f < int(base.Prim.CodeEnd); f++ {
		raw = append(raw, uint16(f))
	}

	sweep := func(name string, targets []uint16) {
		if o.Quick && len(targets) > 50 {
			targets = targets[:50]
		}
		stabilized := 0
		shares := make([]float64, guest.PrimitiveNumProcs)
		for _, tgt := range targets {
			s := core.MustNew(core.Config{Approach: core.ApproachPrimitive})
			s.Run(1000)
			s.M.CPU.IP = tgt
			faultStep := s.Steps()
			s.Run(4000)
			ok := true
			for i := 0; i < guest.PrimitiveNumProcs; i++ {
				// Recovery must happen AFTER the pc fault; the beats
				// from the warmup must not count.
				if _, rec := s.ProcSpec(i).RecoveredAfter(s.ProcBeats[i].Writes(), faultStep, 3); !rec {
					ok = false
				}
			}
			if ok {
				stabilized++
			}
			// Count beats per process for the share columns.
			var total float64
			counts := make([]float64, guest.PrimitiveNumProcs)
			for i := range counts {
				counts[i] = float64(len(s.ProcBeats[i].Writes()))
				total += counts[i]
			}
			if total > 0 {
				for i := range counts {
					shares[i] += counts[i] / total
				}
			}
		}
		n := float64(len(targets))
		row := []string{name, fmt.Sprint(len(targets)), fmtPct(100 * float64(stabilized) / n)}
		for i := range shares {
			row = append(row, fmt.Sprintf("%.2f", shares[i]/n))
		}
		t.AddRow(row...)
	}
	sweep("instruction starts (the 5.1 model)", aligned)
	sweep("fill region (jmp-start pattern)", fill)
	sweep("raw bytes (outside the model)", raw)
	t.Notes = append(t.Notes,
		"the paper's 5.1 model assumes the pc holds an instruction start; the raw-byte "+
			"sweep decodes operand bytes as code — a memory-operand mode byte decodes as hlt, "+
			"which this interrupt-free design can never leave. This is the variable-"+
			"instruction-length hazard that motivates 5.2's padding and NMI scheduling.")
	return t
}

// procShareCols names the per-process share columns of E6.
func procShareCols() []string {
	out := make([]string, guest.PrimitiveNumProcs)
	for i := range out {
		out[i] = fmt.Sprintf("p%d share", i)
	}
	return out
}

// E6FairnessFigure renders per-process beat shares over time for the
// primitive chain (figure F4).
func E6FairnessFigure(o Options) *Series {
	s := core.MustNew(core.Config{Approach: core.ApproachPrimitive})
	lines := make([]Line, guest.PrimitiveNumProcs)
	for i := range lines {
		lines[i].Name = fmt.Sprintf("process %d", i)
	}
	window := o.horizon(5000)
	for step := 0; step < 10; step++ {
		s.Run(window)
		for i := range lines {
			lines[i].X = append(lines[i].X, float64(s.Steps()))
			lines[i].Y = append(lines[i].Y, float64(s.ProcBeats[i].Total()))
		}
	}
	return &Series{ID: "F4", Title: "Primitive scheduler: cumulative beats per process",
		XLabel: "steps", YLabel: "beats", Lines: lines}
}

// E7Scheduler measures Theorem 5.5 and Lemmas 5.2-5.4: recovery of the
// Figures 2-5 scheduler from every scheduler-state fault class, with
// the ds-validation extension as an ablation.
func E7Scheduler(o Options) *Table {
	t := &Table{
		ID:    "E7",
		Title: "Self-stabilizing scheduler (5.2): recovery and fairness",
		Claim: "the scheduler achieves fairness and preserves stabilization of " +
			"processes from any state (Theorem 5.5)",
		Columns: []string{"fault class", "trials", "recovered", "recovery p50", "min share"},
	}
	trials := o.trials(15)
	// The horizon covers the worst convergence tail observed: a table
	// blast can hand the ROM refresher's rep movsb a random cx/si/di,
	// making it scribble up to 64 KiB (one byte per own-tick) before
	// the copy drains and normal refreshing resumes — a hazard of
	// resumable string operations the paper does not discuss.
	horizon := o.horizon(2200000)

	classes := []struct {
		name   string
		inject func(*core.System, *fault.Injector)
	}{
		{"process index randomized", func(s *core.System, in *fault.Injector) {
			in.CorruptByteIn(mem.Region{Name: "idx", Start: guest.ProcessIndexAddr(), Size: 2})
		}},
		{"one record cs randomized", func(s *core.System, in *fault.Injector) {
			in.CorruptByteIn(mem.Region{Name: "cs", Start: guest.ProcRecordAddr(1) + 2, Size: 2})
		}},
		{"one record ip randomized", func(s *core.System, in *fault.Injector) {
			in.CorruptByteIn(mem.Region{Name: "ip", Start: guest.ProcRecordAddr(2) + 4, Size: 2})
		}},
		{"whole table randomized", func(s *core.System, in *fault.Injector) {
			in.RandomizeRegion(mem.Region{Name: "table", Start: uint32(guest.SchedSeg) << 4,
				Size: guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize})
		}},
		{"worker 0 code randomized", func(s *core.System, in *fault.Injector) {
			in.RandomizeRegion(mem.Region{Name: "p0code",
				Start: uint32(guest.ProcCodeSeg(0)) << 4, Size: guest.ProcRegionSize})
		}},
		{"all RAM + CPU randomized", func(s *core.System, in *fault.Injector) {
			in.BlastRAM()
			in.BlastCPU()
		}},
		{"all RAM + CPU randomized (+protection)", func(s *core.System, in *fault.Injector) {
			in.BlastRAM()
			in.BlastCPU()
		}},
	}
	for ci, c := range classes {
		var ts trialSet
		minShare := 1.0
		inject := c.inject
		protect := ci == len(classes)-1
		type e7result struct {
			res   recoveryResult
			share float64
		}
		forEachTrial(trials, func(i int) interface{} {
			cfg := core.Config{Approach: core.ApproachScheduler, ProtectMemory: protect}
			s := core.MustNew(cfg)
			s.Run(80000 + i*233)
			inj := fault.NewInjector(s.M, o.Seed+int64(i))
			inject(s, inj)
			faultStep := s.Steps()
			var ranges []trace.Range
			for p := 0; p < guest.NumProcs; p++ {
				base := uint32(guest.ProcCodeSeg(p)) << 4
				ranges = append(ranges, trace.Range{Name: "p", Start: base, End: base + guest.ProcRegionSize})
			}
			sampler := trace.NewPCSampler(ranges...)
			s.M.AfterStep = sampler.Observe
			s.Run(horizon)
			out := e7result{share: sampler.MinShare()}
			if step, ok := procRecovered(s, faultStep, 3); ok {
				out.res = recoveryResult{recovered: true, latency: step - faultStep}
			}
			return out
		}, func(_ int, r interface{}) {
			er := r.(e7result)
			ts.add(er.res)
			if er.share < minShare {
				minShare = er.share
			}
		})
		t.AddRow(c.name, fmt.Sprint(trials), fmtPct(ts.recoveredPct()),
			fmtSteps(summarize(ts.latencies).p50), fmt.Sprintf("%.2f", minShare))
	}
	t.Notes = append(t.Notes,
		"recovery = every process stream (including the ROM refresher's) ends in a "+
			"confirmed legal suffix; min share is the smallest per-process machine share observed")
	t.Notes = append(t.Notes,
		"the bare scheduler can be absorbed into a data-aliasing cycle from arbitrary "+
			"configurations (the paper's own 'mixture of data space' caveat); the "+
			"memory-protection extension row shows the cycle eliminated")
	return t
}

// E8Overhead measures the Section 5.2 scheduling cost: the 67-ish
// instruction context switch as a fraction of the machine, versus the
// quantum (watchdog period).
func E8Overhead(o Options) (*Table, *Series) {
	t := &Table{
		ID:    "E8",
		Title: "Scheduler overhead vs quantum",
		Claim: "the tailored scheduler's overhead is the fixed 67-instruction switch " +
			"per quantum (Figures 2-5)",
		Columns: []string{"quantum (steps)", "switch share", "beats p0", "beats p2", "beats refresher"},
	}
	horizon := o.horizon(400000)
	quanta := []uint32{150, 300, 600, 1200, 2400, 4800}
	line := Line{Name: "scheduler share"}
	for _, q := range quanta {
		s := core.MustNew(core.Config{Approach: core.ApproachScheduler, WatchdogPeriod: q})
		romBase := uint32(guest.HandlerROMSeg) << 4
		sampler := trace.NewPCSampler(trace.Range{
			Name: "sched", Start: romBase, End: romBase + uint32(len(s.Sched.Prog.Code)),
		})
		s.M.AfterStep = sampler.Observe
		s.Run(horizon)
		share := sampler.Share(0)
		t.AddRow(fmt.Sprint(q), fmt.Sprintf("%.4f", share),
			fmt.Sprint(s.ProcBeats[0].Total()),
			fmt.Sprint(s.ProcBeats[2].Total()),
			fmt.Sprint(s.ProcBeats[guest.RefresherIndex].Total()))
		line.X = append(line.X, float64(q))
		line.Y = append(line.Y, share)
	}
	t.Notes = append(t.Notes,
		"switch share ≈ 70/quantum: the fixed cost of Figures 2-5 amortized over the time slice")
	f := &Series{ID: "F5", Title: "Scheduler overhead vs quantum",
		XLabel: "quantum (steps)", YLabel: "scheduler share of instructions", XLog: true,
		Lines: []Line{line}}
	return t, f
}
