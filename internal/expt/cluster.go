package expt

import (
	"fmt"

	"ssos/internal/cluster"
	"ssos/internal/core"
	"ssos/internal/obs"
)

// E14ClusterAvailability measures the replication layer built on top of
// the paper: cluster availability as replica count and per-replica
// fault probability scale.
//
// Availability here is stricter than per-node legality: because the
// heartbeat specification admits weakly-legal executions (finitely many
// restarts), even a struck single node scores "legal" once its watchdog
// reinstalls the OS — restart semantics excuse the outage. What a
// struck node cannot do is produce the fault-free epoch output. The
// reinstall design is epoch-periodic at the default epoch length (two
// watchdog periods), so the fault-free trajectory has one constant
// epoch digest; an epoch counts as available when a quorum agrees on
// exactly that digest. A single node loses every struck epoch; a
// voting fleet loses an epoch only when strikes hit a majority inside
// it, and the reconfigurator's evict/reinstall/rejoin keeps strike
// damage from accumulating across epochs.
//
// Beyond the availability ratio, the highest-rate column instruments
// its runs and folds the event stream into recovery episodes (see
// internal/obs), reporting per-episode latency percentiles — how long
// a struck replica actually takes from injection to confirmed recovery
// (legality or evict/rejoin). The second returned Series (F7B) plots
// those percentiles against replica count.
func E14ClusterAvailability(o Options) (*Table, *Series, *Series) {
	probs := []float64{0, 0.1, 0.25, 0.35}
	counts := []int{1, 3, 5, 7, 9}
	steps := cluster.DefaultEpochSteps
	epochs := o.horizon(30)

	// The fault-free reference trajectory: the reinstall design's state
	// is periodic in the watchdog period, so after the boot epoch every
	// epoch boundary digest is the same constant.
	ref := cluster.MustNew(cluster.Config{
		Replicas: 1, Approach: core.ApproachReinstall, EpochSteps: steps, Seed: 1,
	})
	ref.Run(2)
	refDigest := ref.Stats[len(ref.Stats)-1].Digest

	t := &Table{
		ID:    "E14",
		Title: "Cluster availability vs replica count and fault rate",
		Claim: "lifting the Section-3 reinstall remedy to replica level (evict, " +
			"reinstall from ROM, rejoin by state transfer) masks faults that a " +
			"single node can only repair after losing the epoch",
		Columns: []string{"replicas", "quorum"},
	}
	for _, p := range probs {
		t.Columns = append(t.Columns, fmt.Sprintf("avail p=%g", p))
	}
	pMax := probs[len(probs)-1]
	t.Columns = append(t.Columns,
		fmt.Sprintf("evictions p=%g", pMax),
		fmt.Sprintf("ep-lat p50 p=%g", pMax),
		fmt.Sprintf("ep-lat p99 p=%g", pMax))

	lines := make([]Line, len(probs))
	for pi, p := range probs {
		lines[pi].Name = fmt.Sprintf("p=%g strikes/replica-epoch", p)
	}
	latLines := []Line{{Name: "episode latency p50"}, {Name: "episode latency p99"}}
	for _, n := range counts {
		row := []string{fmt.Sprint(n), fmt.Sprint(n/2 + 1)}
		evictions := 0
		var latP50, latP99 uint64
		for pi, p := range probs {
			cfg := cluster.Config{
				Replicas:   n,
				Approach:   core.ApproachReinstall,
				EpochSteps: steps,
				Seed:       o.Seed + int64(n)*1009 + int64(pi)*104729,
			}
			if p > 0 {
				cfg.Faults = cluster.ModeOSBlast
				cfg.StrikeProb = p
			}
			atPMax := pi == len(probs)-1
			if atPMax {
				// Instrument the highest-rate cell so recovery-episode
				// latencies come out of the same run that scores it.
				cfg.Collector = obs.NewCollector()
			}
			c := cluster.MustNew(cfg)
			c.Run(epochs)
			clean := 0
			for _, st := range c.Stats {
				if st.Quorum && st.Legal && st.Digest == refDigest {
					clean++
				}
			}
			avail := float64(clean) / float64(epochs)
			row = append(row, fmt.Sprintf("%.3f", avail))
			lines[pi].X = append(lines[pi].X, float64(n))
			lines[pi].Y = append(lines[pi].Y, avail)
			if atPMax {
				evictions = c.Summary().Evictions
				m := obs.NewMetrics()
				obs.RecordEpisodes(m, obs.FoldEpisodes(cfg.Collector.Events()))
				sorted := m.SortedSamples("episode.latency")
				latP50 = obs.Quantile(sorted, 50)
				latP99 = obs.Quantile(sorted, 99)
				latLines[0].X = append(latLines[0].X, float64(n))
				latLines[0].Y = append(latLines[0].Y, float64(latP50))
				latLines[1].X = append(latLines[1].X, float64(n))
				latLines[1].Y = append(latLines[1].Y, float64(latP99))
			}
		}
		row = append(row, fmt.Sprint(evictions), fmt.Sprint(latP50), fmt.Sprint(latP99))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"one cluster run per cell: %d epochs of %d steps; an epoch counts as available "+
			"when a quorum of replicas agrees on the fault-free reference digest of "+
			"heartbeat output and OS-state RAM (legal-but-restarted epochs do not count)",
		epochs, steps))
	t.Notes = append(t.Notes,
		"N=1 has no vote to hide behind: every struck epoch is lost, and a weakly-legal "+
			"phase-shifted survivor can stay off the canonical trajectory until a later "+
			"failure forces a fresh boot; larger fleets lose an epoch only when strikes "+
			"hit a majority inside it, and eviction/rejoin stops damage from carrying over")

	t.Notes = append(t.Notes, fmt.Sprintf(
		"ep-lat columns: recovery-episode latency percentiles (machine steps from fault "+
			"injection to confirmed recovery) folded from the instrumented p=%g runs", pMax))

	f := &Series{ID: "F7", Title: "Cluster availability vs replica count and fault rate",
		XLabel: "replicas", YLabel: "availability (clean-quorum epochs)", Lines: lines}
	fb := &Series{ID: "F7B", Title: fmt.Sprintf("Cluster recovery-episode latency vs replica count (p=%g)", pMax),
		XLabel: "replicas", YLabel: "episode latency (steps)", Lines: latLines}
	return t, f, fb
}
