package expt

import (
	"ssos/internal/core"
	"ssos/internal/guest"
	"ssos/internal/isa"
)

// E13TickfulSilentFaults measures the interrupt-driven (tickful) guest
// under the fault class it uniquely exposes: silent losses of the
// wake-up path. A corrupted IDT entry or an interrupt flag cleared
// while asleep raise no exception and stop all observable behaviour —
// the cli;hlt deadlock family. Recovery requires a NON-maskable
// trigger, which is precisely the paper's argument for watchdog + NMI:
// every maskable mechanism can be masked by the very fault it should
// recover from.
func E13TickfulSilentFaults(o Options) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Interrupt-driven guest: silent wake-up faults need a non-maskable trigger",
		Claim: "the recovery trigger must be non-maskable (paper Sections 1-2: nmi " +
			"handling from any state, including states in which interrupts are masked)",
		Columns: []string{"fault class", "baseline", "reinstall", "adaptive"},
	}
	trials := o.trials(10)
	horizon := o.horizon(300000)

	classes := []struct {
		name   string
		strike func(s *core.System)
	}{
		{"timer IDT entry corrupted", func(s *core.System) {
			s.M.Bus.PokeRAM(guest.TimerVecAddr, 0xFF)
			s.M.Bus.PokeRAM(guest.TimerVecAddr+2, 0xFF)
		}},
		{"IF cleared while asleep", func(s *core.System) {
			s.M.CPU.Flags = s.M.CPU.Flags.Without(isa.FlagIF)
		}},
		{"halt latch forced", func(s *core.System) {
			s.M.CPU.Halted = true
			s.M.CPU.Flags = s.M.CPU.Flags.Without(isa.FlagIF)
		}},
	}
	approaches := []core.Approach{
		core.ApproachBaseline, core.ApproachReinstall, core.ApproachAdaptive,
	}
	for _, c := range classes {
		row := []string{c.name}
		for _, a := range approaches {
			var ts trialSet
			for i := 0; i < trials; i++ {
				s := core.MustNew(core.Config{Approach: a, TickfulKernel: true})
				s.Run(60000 + i*397)
				c.strike(s)
				faultStep := s.Steps()
				s.Run(horizon)
				step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10)
				ts.add(recoveryResult{recovered: ok, latency: step - faultStep})
			}
			row = append(row, fmtPct(ts.recoveredPct()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"the guest sleeps with hlt and beats from its timer ISR; all three faults are "+
			"exception-free. Both watchdog designs recover (the NMI wakes hlt regardless of "+
			"IF, and the restarted init reprograms the IDT); the baseline sleeps forever.")
	return t
}
