package expt

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/guest"
	"ssos/internal/isa"
	"ssos/internal/machine"
	"ssos/internal/trace"
)

// E11Protection ablates the memory-protection extension (an addition
// beyond the paper — its real-mode setting has none): the scheduler
// system runs while a fault process periodically corrupts the RUNNING
// process's ds to point at another process's data area, the exact
// cross-process interference the paper leaves to programmer discipline
// ("the data of each process resides in a distinct separate ram area").
//
// Without protection the stray stores land and the victims' counters
// are scribbled (observable as heartbeat violations on *other*
// processes); with protection the store faults, costing the offender
// its quantum but leaving the victims untouched.
func E11Protection(o Options) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Memory-protection extension: confining cross-process interference",
		Claim: "EXTENSION (beyond the paper): hardware store windows turn the paper's " +
			"per-process data-area discipline from an assumption into a guarantee",
		Columns: []string{"variant", "trials", "victim violations (total)", "exceptions", "min share"},
	}
	trials := o.trials(8)
	horizon := o.horizon(600000)
	const corruptEvery = 7001 // prime, to wander across quanta phases

	for _, variant := range []struct {
		name    string
		protect bool
	}{
		{"paper scheduler (no protection)", false},
		{"with store windows", true},
	} {
		totalViol := 0
		var totalExc uint64
		minShare := 1.0
		for i := 0; i < trials; i++ {
			s := core.MustNew(core.Config{
				Approach:      core.ApproachScheduler,
				ProtectMemory: variant.protect,
				ValidateDS:    true, // both variants pin record ds (isolate the window effect)
			})
			s.Run(60000 + i*317)

			var ranges []trace.Range
			for p := 0; p < guest.NumProcs; p++ {
				base := uint32(guest.ProcCodeSeg(p)) << 4
				ranges = append(ranges, trace.Range{Name: "p", Start: base, End: base + guest.ProcRegionSize})
			}
			sampler := trace.NewPCSampler(ranges...)
			s.M.AfterStep = sampler.Observe

			victim := 0
			countdown := corruptEvery
			prev := s.M.AfterStep
			s.M.AfterStep = func(m *machine.Machine, ev machine.Event) {
				if prev != nil {
					prev(m, ev)
				}
				countdown--
				if countdown > 0 {
					return
				}
				countdown = corruptEvery
				// Stray-aliasing fault: the running code's ds now
				// addresses another process's data area.
				victim = (victim + 1) % guest.RingMembers
				m.CPU.S[isa.DS] = guest.ProcDataSeg(victim)
			}
			excBefore := s.M.Stats.Exceptions
			s.Run(horizon)
			s.M.AfterStep = prev
			if sh := sampler.MinShare(); sh < minShare {
				minShare = sh
			}

			for p := 0; p < guest.NumProcs; p++ {
				w := s.ProcBeats[p].Writes()
				totalViol += len(s.ProcSpec(p).Violations(w, s.Steps()))
			}
			totalExc += s.M.Stats.Exceptions - excBefore
		}
		t.AddRow(variant.name, fmt.Sprint(trials), fmt.Sprint(totalViol),
			fmt.Sprint(totalExc), fmt.Sprintf("%.2f", minShare))
	}
	t.Notes = append(t.Notes,
		"fault: every 7001 steps the running process's ds is pointed at another "+
			"process's data; violations are counted across ALL process heartbeat streams. "+
			"Protection trades victim corruption for general-protection exceptions, which "+
			"the scheduler's exception path absorbs.")
	return t
}
