package expt

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/isa"
)

// zombify patches the guest kernel in RAM so it keeps emitting
// heartbeats but stops incrementing the counter: the first `inc ax`
// in the code (the heartbeat increment) is overwritten with nops. The
// system becomes a zombie — alive by every liveness measure, illegal by
// the specification. Returns false if the instruction was not found.
func zombify(s *core.System) bool {
	code := s.Kernel.Prog.Code
	off := 0
	for off < len(code) {
		in, size, ok := isa.Decode(code[off:])
		if !ok {
			return false
		}
		if in.Op == isa.OpIncR && isa.Reg(in.R1) == isa.AX {
			base := uint32(guest.OSSeg) << 4
			for i := 0; i < size; i++ {
				s.M.Bus.PokeRAM(base+uint32(off+i), 0x00)
			}
			return true
		}
		off += size
	}
	return false
}

// E12AdaptiveWatchdog compares the paper's content-blind periodic
// watchdog against the "smarter" adaptive design real supervision
// systems use (reset only when the supervised program goes silent; cf.
// the related-work monitoring layers for Linux/Windows the paper
// cites). The adaptive design wins on overhead and on crash faults —
// and fails the self-stabilization bar on zombie faults, where the
// guest keeps emitting illegal output and never looks silent.
func E12AdaptiveWatchdog(o Options) *Table {
	t := &Table{
		ID:    "E12",
		Title: "Adaptive (silence-triggered) watchdog vs the paper's periodic reinstall",
		Claim: "COMPARATOR: liveness monitoring is not self-stabilization — an " +
			"execution can be live and illegal forever (paper Section 1: monitoring " +
			"layers for ubiquitous operating systems do not withstand arbitrary faults)",
		Columns: []string{"watchdog", "avail. fault-free", "halt fault recovered", "zombie fault recovered"},
	}
	trials := o.trials(15)
	horizon := o.horizon(400000)

	for _, approach := range []core.Approach{core.ApproachAdaptive, core.ApproachReinstall} {
		// Fault-free availability.
		s := core.MustNew(core.Config{Approach: approach})
		s.Run(horizon)
		avail := availability(s.Heartbeat.Writes(), specFor(s), s.Steps())

		// Crash fault: a latched halt is pure silence; both designs
		// must catch it.
		var halt, zombie trialSet
		for i := 0; i < trials; i++ {
			h := measureRecovery(core.Config{Approach: approach}, o.Seed+int64(i),
				40000+i*173, horizon, 10,
				func(s *core.System, in *fault.Injector) { in.SetHalted() })
			halt.add(h)

			z := core.MustNew(core.Config{Approach: approach})
			z.Run(40000 + i*173)
			if !zombify(z) {
				continue
			}
			faultStep := z.Steps()
			z.Run(horizon)
			step, ok := z.Spec().RecoveredAfter(z.Heartbeat.Writes(), faultStep, 10)
			zombie.add(recoveryResult{recovered: ok, latency: step - faultStep})
		}
		t.AddRow(approach.String(), fmt.Sprintf("%.3f", avail),
			fmtPct(halt.recoveredPct()), fmtPct(zombie.recoveredPct()))
	}
	t.Notes = append(t.Notes,
		"zombie fault: the heartbeat increment is nop-ed, so the guest emits the same "+
			"value forever — live to a silence detector, illegal to the specification. "+
			"The adaptive design never fires; the periodic reinstall erases the zombie "+
			"within one period.")
	return t
}
