package expt

import (
	"bytes"
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

// silenceHeartbeat overwrites the kernel's `out HEARTBEAT_PORT, ax`
// instruction in RAM with nops — a silent code corruption: no
// exception, no crash, just no observable behaviour. Only a stabilizer
// that restores code from a pristine source recovers it.
func silenceHeartbeat(s *core.System) bool {
	pattern := []byte{0x70, guest.PortHeartbeat}
	idx := bytes.Index(s.Kernel.Prog.Code, pattern)
	if idx < 0 {
		return false
	}
	base := uint32(guest.OSSeg) << 4
	s.M.Bus.PokeRAM(base+uint32(idx), 0x00)
	s.M.Bus.PokeRAM(base+uint32(idx)+1, 0x00)
	return true
}

// E9Checkpoint measures the related-work comparator: rollback recovery
// with periodic snapshots versus the paper's ROM-anchored designs,
// under a silent code corruption. The paper's introduction claims no
// checkpointing system "can withstand any combination of transient-
// faults"; E9 shows why — a corruption that survives until a snapshot
// is restored forever — and F6 shows the timing dependence.
func E9Checkpoint(o Options) (*Table, *Series) {
	t := &Table{
		ID:    "E9",
		Title: "Checkpoint/rollback comparator vs ROM-anchored designs (related work)",
		Claim: "checkpointing systems (Windows XP, EROS) gain fault-tolerance but " +
			"cannot withstand arbitrary transient faults (paper Section 1, previous work)",
		Columns: []string{"approach", "trials", "recovered", "why"},
	}
	trials := o.trials(20)
	horizon := o.horizon(400000)

	why := map[core.Approach]string{
		core.ApproachCheckpoint: "only when the rollback precedes the next snapshot",
		core.ApproachReinstall:  "pristine image in ROM: corruption cannot persist",
		core.ApproachMonitor:    "executable refresh from ROM on every check",
	}
	for _, a := range []core.Approach{
		core.ApproachCheckpoint, core.ApproachReinstall, core.ApproachMonitor,
	} {
		var ts trialSet
		for i := 0; i < trials; i++ {
			s := core.MustNew(core.Config{Approach: a})
			// Vary the injection phase relative to the snapshot and
			// watchdog schedules.
			s.Run(60000 + i*1709)
			if !silenceHeartbeat(s) {
				continue
			}
			faultStep := s.Steps()
			s.Run(horizon)
			step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10)
			ts.add(recoveryResult{recovered: ok, latency: step - faultStep})
		}
		t.AddRow(a.String(), fmt.Sprint(trials), fmtPct(ts.recoveredPct()), why[a])
	}
	t.Notes = append(t.Notes,
		"fault: the heartbeat output instruction is overwritten with nops — silent, "+
			"exception-free, and faithfully captured by any snapshot taken after it")

	// F6: checkpoint recovery as a function of the fault's phase within
	// the snapshot period.
	line := Line{Name: "recovered"}
	samples := 12
	if o.Quick {
		samples = 6
	}
	for p := 0; p < samples; p++ {
		s := core.MustNew(core.Config{Approach: core.ApproachCheckpoint})
		s.Run(100000)
		// Synchronize to a snapshot boundary, then advance by the phase.
		snaps := s.Checkpoint.Snapshots
		for s.Checkpoint.Snapshots == snaps {
			s.Run(100)
		}
		phase := float64(p) / float64(samples)
		s.Run(int(phase * float64(s.Cfg.CheckpointPeriod)))
		silenceHeartbeat(s)
		faultStep := s.Steps()
		s.Run(horizon)
		_, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10)
		y := 0.0
		if ok {
			y = 1.0
		}
		line.X = append(line.X, phase)
		line.Y = append(line.Y, y)
	}
	f := &Series{ID: "F6", Title: "Checkpoint recovery vs fault phase within the snapshot period",
		XLabel: "fault phase (fraction of snapshot period)", YLabel: "recovered", Lines: []Line{line}}
	return t, f
}

// E10TokenRing measures the paper's composition argument (Section 1,
// citing [13]): a self-stabilizing application — Dijkstra's K-state
// token ring — stabilizes above the self-stabilizing scheduler, even
// when both layers are corrupted at once.
func E10TokenRing(o Options) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Composition: Dijkstra's token ring above the 5.2 scheduler",
		Claim: "once the self-stabilizing operating system stabilizes, the " +
			"self-stabilizing algorithms that implement the applications stabilize",
		Columns: []string{"initial condition", "trials", "converged", "convergence p50 (steps)"},
	}
	trials := o.trials(10)
	horizon := o.horizon(4000000)

	classes := []struct {
		name   string
		upset  func(s *core.System, in *fault.Injector)
		warmup int
	}{
		{"clean boot", func(*core.System, *fault.Injector) {}, 0},
		{"arbitrary token values", func(s *core.System, in *fault.Injector) {
			for i := 0; i < guest.RingMembers; i++ {
				in.CorruptByteIn(mem.Region{Name: "x", Start: guest.RingXAddr(i), Size: 2})
			}
		}, 200000},
		{"tokens + process table randomized", func(s *core.System, in *fault.Injector) {
			in.RandomizeRegion(mem.Region{Name: "table", Start: uint32(guest.SchedSeg) << 4,
				Size: guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize})
			for i := 0; i < guest.RingMembers; i++ {
				in.CorruptByteIn(mem.Region{Name: "x", Start: guest.RingXAddr(i), Size: 2})
			}
		}, 200000},
		{"all RAM + CPU randomized", func(s *core.System, in *fault.Injector) {
			in.BlastRAM()
			in.BlastCPU()
		}, 200000},
	}
	for _, c := range classes {
		var ts trialSet
		upset, warmup := c.upset, c.warmup
		forEachTrial(trials, func(i int) interface{} {
			s := core.MustNew(core.Config{Approach: core.ApproachScheduler, Workload: core.WorkloadTokenRing})
			if warmup > 0 {
				s.Run(warmup + i*311)
			}
			inj := fault.NewInjector(s.M, o.Seed+int64(i))
			upset(s, inj)
			faultStep := s.Steps()
			step, ok := s.RingConverged(horizon, 500, 100)
			return recoveryResult{recovered: ok, latency: step - faultStep}
		}, func(_ int, r interface{}) {
			ts.add(r.(recoveryResult))
		})
		t.AddRow(c.name, fmt.Sprint(trials), fmtPct(ts.recoveredPct()),
			fmtSteps(summarize(ts.latencies).p50))
	}
	t.Notes = append(t.Notes,
		"converged = the exactly-one-privilege invariant holds at every sample across a "+
			"sustained window; the ring uses K=8 >= 2n-1 states, the read/write-atomicity bound")
	return t
}
