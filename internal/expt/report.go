// Package expt implements the reproduction experiments E1-E14 defined
// in DESIGN.md: each one exercises a claim of the paper on the
// simulated systems from internal/core and reports a table (and, where
// the claim is a trend, a data series). cmd/ssos-bench runs them all
// and renders EXPERIMENTS.md's data.
//
// The paper (a workshop paper) reports no quantitative tables; its
// evaluation is the Bochs fault-injection observation in Section 3 plus
// the lemmas and theorems. The experiments therefore measure those
// claims: recovery from corruption (E1), convergence from arbitrary
// configurations across hardware variants (E2), availability under
// sustained fault rates (E3), predicate repair and state preservation
// (E4), the watchdog-period trade-off (E5), primitive-scheduler
// stabilization and fairness (E6), scheduler recovery and fairness with
// the protection ablation (E7), scheduling overhead (E8), the
// checkpoint/rollback comparator (E9), the token-ring composition
// (E10), the memory-protection ablation (E11), the adaptive-watchdog
// comparator (E12), the silent wake-path faults of the interrupt-driven
// guest (E13), the replicated-cluster availability scaling of
// internal/cluster (E14), and the layered mailbox token rings —
// single-machine and one node per replica — of E15.
package expt

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is one experiment's tabular result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim being measured
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the table as aligned ASCII text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note:* %s\n", n)
	}
	return b.String()
}

// Line is one named data line of a series.
type Line struct {
	Name string
	X    []float64
	Y    []float64
}

// Series is one experiment's figure-style result.
type Series struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	Lines  []Line
}

// CSV renders the series as comma-separated values (one x column per
// line's sample grid; lines share the grid in all our experiments).
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString(s.XLabel)
	for _, l := range s.Lines {
		b.WriteString("," + l.Name)
	}
	b.WriteByte('\n')
	if len(s.Lines) == 0 {
		return b.String()
	}
	for i := range s.Lines[0].X {
		fmt.Fprintf(&b, "%g", s.Lines[0].X[i])
		for _, l := range s.Lines {
			if i < len(l.Y) {
				fmt.Fprintf(&b, ",%g", l.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the series as an indented JSON document — the
// machine-readable twin of CSV, carrying the metadata (title, axis
// labels, log scaling) the CSV header cannot. Field order is fixed by
// the struct, so the output is deterministic.
func (s *Series) JSON() ([]byte, error) {
	type jsonLine struct {
		Name string    `json:"name"`
		X    []float64 `json:"x"`
		Y    []float64 `json:"y"`
	}
	doc := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		XLabel string     `json:"xlabel"`
		YLabel string     `json:"ylabel"`
		XLog   bool       `json:"xlog,omitempty"`
		Lines  []jsonLine `json:"lines"`
	}{ID: s.ID, Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel, XLog: s.XLog}
	for _, l := range s.Lines {
		doc.Lines = append(doc.Lines, jsonLine(l))
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render draws the series as a coarse ASCII chart, one mark per line.
// With XLog set the x axis is log10-scaled (zero x values are plotted
// one decade below the smallest positive sample).
func (s *Series) Render() string {
	const width, height = 64, 16
	var b strings.Builder
	axis := s.XLabel
	if s.XLog {
		axis = "log10 " + axis
	}
	fmt.Fprintf(&b, "%s — %s\n(y: %s, x: %s)\n", s.ID, s.Title, s.YLabel, axis)
	if len(s.Lines) == 0 {
		return b.String()
	}
	lines := s.Lines
	if s.XLog {
		lines = logLines(lines)
	}
	minX, maxX := lines[0].X[0], lines[0].X[0]
	minY, maxY := lines[0].Y[0], lines[0].Y[0]
	for _, l := range lines {
		for i := range l.X {
			minX, maxX = minf(minX, l.X[i]), maxf(maxX, l.X[i])
			minY, maxY = minf(minY, l.Y[i]), maxf(maxY, l.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@"
	for li, l := range lines {
		for i := range l.X {
			x := int((l.X[i] - minX) / (maxX - minX) * float64(width-1))
			y := int((l.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = marks[li%len(marks)]
			}
		}
	}
	fmt.Fprintf(&b, "%10.3g ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.3g └%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&b, "%10s  %-10.3g%*s\n", "", minX, width-10, fmt.Sprintf("%.3g", maxX))
	for li, l := range s.Lines {
		fmt.Fprintf(&b, "  %c = %s\n", marks[li%len(marks)], l.Name)
	}
	return b.String()
}

// logLines transforms the x values of each line to log10, mapping
// non-positive values one decade below the smallest positive x.
func logLines(in []Line) []Line {
	minPos := 0.0
	for _, l := range in {
		for _, x := range l.X {
			if x > 0 && (minPos == 0 || x < minPos) {
				minPos = x
			}
		}
	}
	if minPos == 0 {
		return in
	}
	floor := math.Log10(minPos) - 1
	out := make([]Line, len(in))
	for i, l := range in {
		out[i] = Line{Name: l.Name, Y: l.Y, X: make([]float64, len(l.X))}
		for j, x := range l.X {
			if x > 0 {
				out[i].X[j] = math.Log10(x)
			} else {
				out[i].X[j] = floor
			}
		}
	}
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// stats summarizes a sample of measurements.
type stats struct {
	n              int
	mean, p50, p95 float64
	min, max       float64
}

func summarize(xs []uint64) stats {
	if len(xs) == 0 {
		return stats{}
	}
	sorted := make([]uint64, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, x := range sorted {
		sum += float64(x)
	}
	return stats{
		n:    len(sorted),
		mean: sum / float64(len(sorted)),
		p50:  float64(sorted[len(sorted)/2]),
		p95:  float64(sorted[len(sorted)*95/100]),
		min:  float64(sorted[0]),
		max:  float64(sorted[len(sorted)-1]),
	}
}

// Options tunes experiment size. Quick mode shrinks trial counts so
// benchmarks finish fast; the full mode is what cmd/ssos-bench uses.
type Options struct {
	// Trials is the number of repetitions per cell (0 = default).
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Quick reduces trials and horizons for use inside testing.B loops.
	Quick bool
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		// The predecoded-instruction-cache fast path bought roughly a
		// 3x cheaper machine step, so quick mode affords more trials
		// per cell than the original cap of 5 at the same wall-clock
		// budget; 8 tightens the quick-mode confidence intervals.
		if def > 8 {
			return 8
		}
		return def
	}
	return def
}

// horizon returns the step horizon for an experiment cell. Quick mode
// used to halve horizons; with the ~3x faster step loop the full
// horizon fits the same wall-clock budget, and truncated horizons were
// the main source of quick-vs-full disagreement (slow recoveries were
// scored as failures).
func (o Options) horizon(def int) int { return def }

// Report bundles every experiment output.
type Report struct {
	Tables []*Table
	Series []*Series
}

// Render concatenates all tables and figures as ASCII.
func (r *Report) Render() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		b.WriteString(s.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// All runs every experiment.
func All(o Options) *Report {
	r := &Report{}
	t1 := E1RAMCorruption(o)
	t2, f1 := E2ArbitraryState(o)
	t3, f2 := E3FaultRateComparison(o)
	t4 := E4MonitorRepair(o)
	t5, f3 := E5PeriodSweep(o)
	t6 := E6Primitive(o)
	t7 := E7Scheduler(o)
	t8, f5 := E8Overhead(o)
	t9, f6 := E9Checkpoint(o)
	t10 := E10TokenRing(o)
	t11 := E11Protection(o)
	t12 := E12AdaptiveWatchdog(o)
	t13 := E13TickfulSilentFaults(o)
	t14, f7, f7b := E14ClusterAvailability(o)
	t15, f8 := E15LayeredRings(o)
	r.Tables = append(r.Tables, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14, t15)
	r.Series = append(r.Series, f1, f2, f3, E6FairnessFigure(o), f5, f6, f7, f7b, f8)
	return r
}
