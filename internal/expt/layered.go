package expt

import (
	"fmt"

	"ssos/internal/cluster"
	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

// mailboxScramble applies one layer's corruption to a single-machine
// mailbox system — the same three classes cluster.RingFleet.Scramble
// applies fleet-wide, so the two deployments of E15 measure the same
// fault vocabulary.
func mailboxScramble(s *core.System, in *fault.Injector, m cluster.RingScramble) {
	switch m {
	case cluster.ScrambleRing:
		in.RandomizeRegion(mem.Region{Name: "mailbox",
			Start: guest.MailboxAddr(0), Size: uint32(2 * guest.MailboxNodes)})
		for i := 0; i < guest.MailboxNodes; i++ {
			in.RandomizeRegion(mem.Region{Name: "node-regs",
				Start: guest.MailboxRegLAddr(i), Size: 4})
		}
	case cluster.ScrambleOS:
		in.RandomizeRegion(mem.Region{Name: "table", Start: uint32(guest.SchedSeg) << 4,
			Size: guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize})
		in.BlastCPU()
	default:
		in.BlastCPU()
		in.BlastRAM()
	}
}

// E15LayeredRings measures the layered-composition claim on the mailbox
// token rings: for each protocol variant and each corrupted layer
// (algorithm only, OS only, or the joint arbitrary state), how many
// steps until the exactly-one-privilege invariant holds for a sustained
// window — once with all ring nodes as processes of one scheduler, and
// once distributed one node per replica behind the relay shim. The F8
// series plots the median steps-to-legal of every (variant, deployment)
// pair across the three layers.
func E15LayeredRings(o Options) (*Table, *Series) {
	t := &Table{
		ID:    "E15",
		Title: "Layered stabilization: mailbox token rings, single machine and one node per replica",
		Claim: "once the self-stabilizing operating system stabilizes, the " +
			"self-stabilizing algorithms that implement the applications stabilize — " +
			"composed per machine and across a fleet whose relay moves raw, unchecked words",
		Columns: []string{"protocol", "layer scrambled", "deployment", "trials", "converged", "steps-to-legal p50"},
	}
	machineTrials := o.trials(6)
	fleetTrials := o.trials(3)
	machineHorizon := o.horizon(4000000)
	fleetHorizon := o.horizon(12000000)
	layers := cluster.RingScrambles()

	lines := make([]Line, 0, 2*len(guest.RingVariants()))
	for _, v := range guest.RingVariants() {
		machine := Line{Name: fmt.Sprintf("%v machine", v)}
		fleet := Line{Name: fmt.Sprintf("%v fleet", v)}
		for li, m := range layers {
			// Single machine: the whole ring as processes of one
			// scheduler, scrambled at one layer after a warmup.
			var mts trialSet
			variant, layer := v, m
			forEachTrial(machineTrials, func(i int) interface{} {
				s := core.MustNew(core.Config{
					Approach: core.ApproachScheduler,
					Workload: core.MailboxWorkload(variant),
				})
				s.Run(200000 + i*311)
				inj := fault.NewInjector(s.M, o.Seed+int64(i))
				mailboxScramble(s, inj, layer)
				faultStep := s.Steps()
				step, ok := s.MailboxConverged(machineHorizon, 500, 100)
				return recoveryResult{recovered: ok, latency: step - faultStep}
			}, func(_ int, r interface{}) {
				mts.add(r.(recoveryResult))
			})
			mp50 := summarize(mts.latencies).p50
			t.AddRow(v.String(), m.String(), "machine", fmt.Sprint(machineTrials),
				fmtPct(mts.recoveredPct()), fmtSteps(mp50))
			machine.X = append(machine.X, float64(li))
			machine.Y = append(machine.Y, mp50)

			// Fleet: one node per replica, every replica scrambled at
			// once. Trials run serially — each fleet already fans its
			// replicas out on the worker pool.
			var fts trialSet
			for i := 0; i < fleetTrials; i++ {
				f := cluster.MustNewRingFleet(cluster.RingFleetConfig{
					Variant: v, Seed: o.Seed + int64(100+i),
				})
				if _, ok := f.Converged(fleetHorizon/2, 50); !ok {
					fts.add(recoveryResult{})
					continue
				}
				scrambleAt := f.Steps()
				f.Scramble(m)
				since, ok := f.Converged(fleetHorizon, 50)
				fts.add(recoveryResult{recovered: ok, latency: since - scrambleAt})
			}
			fp50 := summarize(fts.latencies).p50
			t.AddRow(v.String(), m.String(), "fleet", fmt.Sprint(fleetTrials),
				fmtPct(fts.recoveredPct()), fmtSteps(fp50))
			fleet.X = append(fleet.X, float64(li))
			fleet.Y = append(fleet.Y, fp50)
		}
		lines = append(lines, machine, fleet)
	}
	t.Notes = append(t.Notes,
		"converged = exactly one privilege held at every sample across a sustained window; "+
			"fleet legality is evaluated on α of each node's own slot after every relay round")
	t.Notes = append(t.Notes,
		"fleet recoveries include the relay latency: a corrupted word must first travel to "+
			"its reader before the reader's normalization discipline can contain it")
	f := &Series{ID: "F8", Title: "Layered steps-to-legal by scrambled layer (median)",
		XLabel: "scrambled layer (0=ring 1=os 2=joint)", YLabel: "steps to legal", Lines: lines}
	return t, f
}
