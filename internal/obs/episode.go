package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Episode reconstruction: folding the typed event stream into causal
// recovery episodes.
//
// An episode is everything that happens between one injected fault and
// the re-confirmation of legality — the paper's "bounded number of
// steps to a safe state", made visible as a span tree instead of a
// scalar. The fold needs no step-window heuristics: every event that
// belongs to an episode carries the fault's FaultID (stamped by the
// instrumentation in internal/core, internal/fault and
// internal/cluster), and episodes are keyed by the (Replica, FaultID)
// scope pair. Everything is stamped in logical step-time, so two folds
// of the same stream — or of two streams from the same seed — are
// byte-identical.

// Span is one timed phase of a recovery episode, in machine steps.
type Span struct {
	// Name identifies the phase: "detect:<event>", "reinstall",
	// "repair:0x<code>", "evict:<reason>", "confirm".
	Name  string `json:"name"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Episode resolutions.
const (
	// ResolutionLegality: the scope's own heartbeat stream re-satisfied
	// its legal-execution specification (TypeLegalityRegained).
	ResolutionLegality = "legality-regained"
	// ResolutionRejoin: the cluster evicted the replica, reinstalled it
	// from ROM and rejoined it by state transfer (TypeReplicaRejoined).
	ResolutionRejoin = "evict-rejoin"
	// ResolutionPreempted: a second fault struck the same scope before
	// this episode confirmed legality; the new fault opens a fresh
	// episode instead of silently extending this one.
	ResolutionPreempted = "preempted"
)

// Episode is one reconstructed recovery episode: a root interval from
// fault injection to resolution, with child spans for each recovery
// phase observed in between.
type Episode struct {
	// ID is the 1-based fold ordinal (episodes are numbered in event
	// order, which is deterministic).
	ID int `json:"id"`
	// Replica is the episode scope: the struck replica, or -1 for a
	// single-machine run.
	Replica int `json:"replica"`
	// FaultID is the injector ordinal of the (latest) fault that opened
	// the episode; with Replica it keys the episode uniquely.
	FaultID uint64 `json:"fault_id"`
	// FaultClass names the injected fault kind(s); simultaneous
	// injections (one request landing several faults at one step) are
	// coalesced into a single episode with "+"-joined classes.
	FaultClass string `json:"fault_class"`
	// Start is the injection step; End is the resolution step (equal to
	// Start while the episode is in flight).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Resolved reports whether recovery completed; Resolution says how
	// (ResolutionLegality or ResolutionRejoin). A preempted episode is
	// not resolved: its recovery was cut short, not confirmed.
	Resolved   bool   `json:"resolved"`
	Preempted  bool   `json:"preempted,omitempty"`
	Resolution string `json:"resolution,omitempty"`
	// StepsToLegal is the episode latency in machine steps: for
	// legality resolutions the tracked steps-to-legal (fault to first
	// beat of the confirming legal run), for rejoin resolutions the
	// fault-to-rejoin interval.
	StepsToLegal uint64 `json:"steps_to_legal,omitempty"`
	// Evals counts the predicate evaluations observed during the
	// episode (monitor approach).
	Evals int `json:"predicate_evals,omitempty"`
	// Spans are the recovery phases, in observation order.
	Spans []Span `json:"spans"`
}

// Latency is the episode's full duration in steps (fault injection to
// resolution; preempted episodes report time until preemption).
func (ep *Episode) Latency() uint64 {
	if ep.End < ep.Start {
		return 0
	}
	return ep.End - ep.Start
}

// openState is the fold bookkeeping for one in-flight episode.
type openState struct {
	ep          *Episode
	detected    bool
	reinstallAt uint64
	reinstall   bool
	failAt      uint64
	failCode    uint64
	failed      bool
	evictAt     uint64
	evictNote   string
	evicted     bool
}

// EpisodeTracker folds an event stream into recovery episodes,
// incrementally. It works both post-hoc (FoldEpisodes feeds a recorded
// stream) and live (the serve layer feeds it from the Collector's Hook
// while readers snapshot concurrently); all methods are safe for
// concurrent use.
type EpisodeTracker struct {
	mu sync.Mutex
	// all holds every episode in fold order; open points at the
	// in-flight episode per scope (at most one per scope — a newer
	// fault preempts the previous episode). Iteration for snapshots
	// walks the slice, never the map, so output order cannot depend on
	// map layout.
	all  []*Episode
	open map[int]*openState
}

// NewEpisodeTracker returns an empty tracker.
func NewEpisodeTracker() *EpisodeTracker {
	return &EpisodeTracker{open: make(map[int]*openState)}
}

// Feed folds one event. Events must arrive in stream order (the order
// a Collector buffers them).
func (t *EpisodeTracker) Feed(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	scope := e.Replica
	o := t.open[scope]
	switch e.Type {
	case TypeFaultInjected:
		cls := faultClass(e.Note)
		if o != nil {
			if e.Step == o.ep.Start {
				// Several faults landed at one step (one injection
				// request, e.g. "pc" corrupts ip and a segment):
				// one episode, latest fault id, joined classes.
				o.ep.FaultClass += "+" + cls
				o.ep.FaultID = e.FaultID
				return
			}
			t.closeLocked(o, e.Step, "", false)
			o.ep.Preempted = true
			o.ep.Resolution = ResolutionPreempted
		}
		ep := &Episode{
			ID:         len(t.all) + 1,
			Replica:    scope,
			FaultID:    e.FaultID,
			FaultClass: cls,
			Start:      e.Step,
			End:        e.Step,
		}
		t.all = append(t.all, ep)
		t.open[scope] = &openState{ep: ep}

	case TypeNMI, TypeIRQ, TypeException, TypeReset:
		if o == nil || e.FaultID == 0 || o.detected {
			return
		}
		o.detected = true
		o.ep.Spans = append(o.ep.Spans, Span{
			Name: "detect:" + e.Type.String(), Start: o.ep.Start, End: e.Step})

	case TypeReinstallStarted:
		if o == nil || e.FaultID == 0 {
			return
		}
		if o.reinstall {
			// Back-to-back reinstalls without an intervening completion:
			// close the stalled attempt where the next one begins.
			o.ep.Spans = append(o.ep.Spans, Span{Name: "reinstall", Start: o.reinstallAt, End: e.Step})
		}
		o.reinstall, o.reinstallAt = true, e.Step

	case TypeReinstallCompleted:
		if o == nil || !o.reinstall {
			return
		}
		o.reinstall = false
		o.ep.Spans = append(o.ep.Spans, Span{Name: "reinstall", Start: o.reinstallAt, End: e.Step})

	case TypePredicateEval:
		if o != nil {
			o.ep.Evals++
		}

	case TypePredicateFailed:
		if o == nil || e.FaultID == 0 {
			return
		}
		o.failed, o.failAt, o.failCode = true, e.Step, e.Code

	case TypePredicateRepaired:
		if o == nil || e.FaultID == 0 {
			return
		}
		start, code := e.Step, e.Code
		if o.failed {
			start, code = o.failAt, o.failCode
			o.failed = false
		}
		o.ep.Spans = append(o.ep.Spans, Span{
			Name: fmt.Sprintf("repair:%#04x", code), Start: start, End: e.Step})

	case TypeReplicaEvicted:
		if o == nil || e.FaultID == 0 {
			return
		}
		o.evicted, o.evictAt, o.evictNote = true, e.Step, e.Note

	case TypeReplicaRejoined:
		if o == nil || !o.evicted {
			return
		}
		o.ep.Spans = append(o.ep.Spans, Span{
			Name: "evict:" + o.evictNote, Start: o.evictAt, End: e.Step})
		o.evicted = false
		t.closeLocked(o, e.Step, ResolutionRejoin, true)
		if e.Step > o.ep.Start {
			o.ep.StepsToLegal = e.Step - o.ep.Start
		}

	case TypeLegalityRegained:
		if o == nil {
			return
		}
		o.ep.Spans = append(o.ep.Spans, Span{Name: "confirm", Start: e.Arg, End: e.Step})
		t.closeLocked(o, e.Step, ResolutionLegality, true)
		o.ep.StepsToLegal = e.Code
	}
}

// closeLocked finishes an in-flight episode at the given step: pending
// spans are closed, the episode leaves the open set. Caller holds mu.
func (t *EpisodeTracker) closeLocked(o *openState, step uint64, resolution string, resolved bool) {
	if o.reinstall {
		o.reinstall = false
		o.ep.Spans = append(o.ep.Spans, Span{Name: "reinstall", Start: o.reinstallAt, End: step})
	}
	if o.evicted {
		o.evicted = false
		o.ep.Spans = append(o.ep.Spans, Span{Name: "evict:" + o.evictNote, Start: o.evictAt, End: step})
	}
	o.ep.End = step
	o.ep.Resolved = resolved
	o.ep.Resolution = resolution
	delete(t.open, o.ep.Replica)
}

// Episodes returns a snapshot of every episode in fold order,
// in-flight ones included (Resolved false, End == Start).
func (t *EpisodeTracker) Episodes() []Episode {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Episode, len(t.all))
	for i, ep := range t.all {
		out[i] = *ep
		out[i].Spans = append([]Span(nil), ep.Spans...)
	}
	return out
}

// InFlight returns the number of episodes still awaiting resolution.
func (t *EpisodeTracker) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// FoldEpisodes reconstructs the recovery episodes of a recorded event
// stream. Two folds of the same stream return identical slices.
func FoldEpisodes(events []Event) []Episode {
	t := NewEpisodeTracker()
	for _, e := range events {
		t.Feed(e)
	}
	return t.Episodes()
}

// RecordEpisodes folds episode statistics into a metrics registry:
// episode counters (total/resolved/preempted/in-flight) and latency
// histograms — overall, split by fault class, and split by recovery
// action — whose exported summaries carry the p50/p90/p95/p99/max
// derivations. Iteration walks the episode slice, so registry content
// is deterministic for a deterministic stream.
func RecordEpisodes(m *Metrics, eps []Episode) {
	for i := range eps {
		ep := &eps[i]
		m.Inc("episodes.total")
		switch {
		case ep.Preempted:
			m.Inc("episodes.preempted")
		case !ep.Resolved:
			m.Inc("episodes.in_flight")
		default:
			m.Inc("episodes.resolved")
			lat := ep.Latency()
			m.Observe("episode.latency", lat)
			m.Observe("episode.latency.fault."+ep.FaultClass, lat)
			m.Observe("episode.latency.action."+ep.Resolution, lat)
		}
	}
}

// faultClass extracts the fault-kind name from an injection event's
// note ("<kind>" or "<kind> <detail>").
func faultClass(note string) string {
	if i := strings.IndexByte(note, ' '); i > 0 {
		note = note[:i]
	}
	if note == "" {
		return "fault"
	}
	return note
}
