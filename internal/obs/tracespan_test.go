package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceDoc mirrors the Chrome trace_event shape we emit, for
// validation; unknown fields in the real document would simply be
// dropped, so the schema check below works off raw maps instead.
type traceDoc struct {
	TraceEvents     []map[string]any `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
}

func traceEpisodes() []Episode {
	stream := append(machineRecovery(),
		Event{Step: 5000, Type: TypeFaultInjected, Replica: 2, Epoch: 1, FaultID: 1, Note: "cpu-blast"},
		Event{Step: 8192, Type: TypeReplicaEvicted, Replica: 2, Epoch: 1, FaultID: 1, Note: "divergent"},
		Event{Step: 8192, Type: TypeReplicaRejoined, Replica: 2, Epoch: 1, FaultID: 1, Arg: 1},
		Event{Step: 9000, Type: TypeFaultInjected, Replica: 0, Epoch: 2, FaultID: 2, Note: "halt"}, // stays in flight
	)
	return FoldEpisodes(stream)
}

func TestAppendTraceByteIdentical(t *testing.T) {
	eps := traceEpisodes()
	a := AppendTrace(nil, eps, 10000)
	b := AppendTrace(nil, eps, 10000)
	if !bytes.Equal(a, b) {
		t.Error("two renders of the same episodes differ")
	}
	c := AppendTrace(nil, FoldEpisodes(append(machineRecovery(),
		Event{Step: 5000, Type: TypeFaultInjected, Replica: 2, Epoch: 1, FaultID: 1, Note: "cpu-blast"},
		Event{Step: 8192, Type: TypeReplicaEvicted, Replica: 2, Epoch: 1, FaultID: 1, Note: "divergent"},
		Event{Step: 8192, Type: TypeReplicaRejoined, Replica: 2, Epoch: 1, FaultID: 1, Arg: 1},
		Event{Step: 9000, Type: TypeFaultInjected, Replica: 0, Epoch: 2, FaultID: 2, Note: "halt"},
	)), 10000)
	if !bytes.Equal(a, c) {
		t.Error("re-folding the same stream changes the trace bytes")
	}
}

func TestAppendTraceSchema(t *testing.T) {
	raw := AppendTrace(nil, traceEpisodes(), 10000)
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("displayTimeUnit missing")
	}
	var meta, episodes, spans int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			meta++
			if ev["name"] != "process_name" {
				t.Errorf("unexpected metadata event %v", ev)
			}
		case "X":
			for _, field := range []string{"name", "cat", "pid", "tid", "ts", "dur"} {
				if _, ok := ev[field]; !ok {
					t.Errorf("complete event missing %q: %v", field, ev)
				}
			}
			if ev["cat"] == "episode" {
				episodes++
				args, ok := ev["args"].(map[string]any)
				if !ok {
					t.Fatalf("episode event without args: %v", ev)
				}
				for _, field := range []string{"fault_id", "fault_class", "resolution", "steps_to_legal", "predicate_evals", "preempted", "in_flight"} {
					if _, ok := args[field]; !ok {
						t.Errorf("episode args missing %q: %v", field, args)
					}
				}
			} else {
				spans++
			}
		default:
			t.Errorf("unexpected phase %q: %v", ph, ev)
		}
	}
	// Scopes: machine (-1), replica 2, replica 0 → three process_name
	// records. Episodes: machine recovery, evict-rejoin, in-flight halt.
	if meta != 3 || episodes != 3 || spans == 0 {
		t.Errorf("event census meta=%d episodes=%d spans=%d", meta, episodes, spans)
	}
}

// TestAppendTraceInFlightExtendsToHorizon: an unresolved episode's root
// interval runs to the end of the run, so the viewer shows it still
// open rather than as a zero-width sliver.
func TestAppendTraceInFlightExtendsToHorizon(t *testing.T) {
	f := Ev(9000, TypeFaultInjected)
	f.FaultID = 1
	f.Note = "halt"
	raw := AppendTrace(nil, FoldEpisodes([]Event{f}), 12345)
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["cat"] != "episode" {
			continue
		}
		found = true
		ts, dur := ev["ts"].(float64), ev["dur"].(float64)
		if ts != 9000 || dur != 12345-9000 {
			t.Errorf("in-flight root ts=%v dur=%v, want 9000/%d", ts, dur, 12345-9000)
		}
		args := ev["args"].(map[string]any)
		if args["in_flight"] != true {
			t.Errorf("in_flight flag: %v", args)
		}
	}
	if !found {
		t.Fatal("no episode event in trace")
	}
}

// TestAppendTraceMetadataOrder: process_name records come first, sorted
// by pid, regardless of episode order — the concrete guard against map
// iteration sneaking into the byte stream.
func TestAppendTraceMetadataOrder(t *testing.T) {
	eps := []Episode{
		{ID: 1, Replica: 3, FaultID: 1, FaultClass: "a", Start: 1, End: 2, Resolved: true, Resolution: ResolutionLegality},
		{ID: 2, Replica: 0, FaultID: 2, FaultClass: "b", Start: 3, End: 4, Resolved: true, Resolution: ResolutionLegality},
		{ID: 3, Replica: -1, FaultID: 3, FaultClass: "c", Start: 5, End: 6, Resolved: true, Resolution: ResolutionLegality},
	}
	raw := AppendTrace(nil, eps, 10)
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var pids []float64
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			pids = append(pids, ev["pid"].(float64))
		} else {
			break // metadata is a strict prefix
		}
	}
	if len(pids) != 3 || pids[0] != 0 || pids[1] != 1 || pids[2] != 4 {
		t.Errorf("metadata pid order %v, want [0 1 4]", pids)
	}
}
