package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEventJSONFieldPresence(t *testing.T) {
	e := Ev(42, TypeNMI)
	if got := string(e.AppendJSON(nil)); got != `{"step":42,"type":"nmi"}` {
		t.Fatalf("plain event JSON: %s", got)
	}
	e = Event{Step: 7, Type: TypeVoteTally, Replica: 0, Epoch: 3, Code: 9, Arg: 5, Note: `legal`}
	want := `{"step":7,"type":"vote-tally","replica":0,"epoch":3,"code":9,"arg":5,"note":"legal"}`
	if got := string(e.AppendJSON(nil)); got != want {
		t.Fatalf("full event JSON:\n got %s\nwant %s", got, want)
	}
}

func TestCollectorScopingAndJSONL(t *testing.T) {
	c := NewCollector()
	c.Replica = 2
	c.Epoch = 1
	c.Emit(Ev(10, TypeNMI))
	c.Emit(Event{Step: 11, Type: TypeReplicaEvicted, Replica: 4, Epoch: -1, Note: "divergent"})
	evs := c.Events()
	if evs[0].Replica != 2 || evs[0].Epoch != 1 {
		t.Fatalf("unscoped event not tagged: %+v", evs[0])
	}
	if evs[1].Replica != 4 {
		t.Fatalf("pre-scoped replica overwritten: %+v", evs[1])
	}
	var b bytes.Buffer
	if err := c.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], `"note":"divergent"`) {
		t.Fatalf("JSONL: %q", b.String())
	}
}

func TestCollectorMetricsFold(t *testing.T) {
	c := NewCollector()
	c.Emit(Ev(1, TypeNMI))
	c.Emit(Ev(2, TypeNMI))
	c.Emit(Ev(3, TypeFaultInjected))
	c.Emit(Event{Step: 4, Type: TypePredicateRepaired, Replica: -1, Epoch: -1, Code: 0xE001})
	c.Emit(Ev(5, TypeReinstallCompleted))
	c.Emit(Event{Step: 9, Type: TypeLegalityRegained, Replica: -1, Epoch: -1, Code: 123})
	m := c.Metrics
	if m.Counter("machine.nmis") != 2 || m.Counter("faults.injected") != 1 ||
		m.Counter("stabilizer.repairs") != 1 || m.Counter("stabilizer.reinstalls") != 1 {
		t.Fatalf("counters: %+v", m.counters)
	}
	if s := m.Samples("stabilization.steps_to_legal"); len(s) != 1 || s[0] != 123 {
		t.Fatalf("steps_to_legal samples: %v", s)
	}
}

func TestMetricsSnapshotMergeDeterministic(t *testing.T) {
	a := NewMetrics()
	a.Inc("x")
	a.Observe("h", 10)
	b := a.Snapshot()
	b.Inc("x")
	b.Observe("h", 20)
	if a.Counter("x") != 1 || len(a.Samples("h")) != 1 {
		t.Fatal("snapshot not deep")
	}
	a.Merge(b)
	if a.Counter("x") != 3 || len(a.Samples("h")) != 3 {
		t.Fatalf("merge: x=%d h=%v", a.Counter("x"), a.Samples("h"))
	}

	j1, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := a.MarshalJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("metrics JSON not stable")
	}
}

func TestMetricsDerivedRatios(t *testing.T) {
	m := NewMetrics()
	m.Add("stabilizer.repairs", 6)
	m.Add("stabilizer.reinstalls", 2)
	m.Add("cluster.epochs", 10)
	m.Add("cluster.legal_epochs", 9)
	j, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(j)
	if !strings.Contains(s, `"stabilizer.repair_vs_reinstall": 3`) {
		t.Fatalf("repair ratio missing:\n%s", s)
	}
	if !strings.Contains(s, `"cluster.availability": 0.9`) {
		t.Fatalf("availability missing:\n%s", s)
	}
}

func TestHistSummary(t *testing.T) {
	m := NewMetrics()
	for _, v := range []uint64{5, 1, 9, 3, 7} {
		m.Observe("h", v)
	}
	h := summarizeHist(m.Samples("h"))
	if h.Count != 5 || h.Min != 1 || h.Max != 9 || h.P50 != 5 {
		t.Fatalf("summary: %+v", h)
	}
	if h.Mean != 5 {
		t.Fatalf("mean: %v", h.Mean)
	}
	if (summarizeHist(nil) != HistSummary{}) {
		t.Fatal("empty summary")
	}
}

func TestLegalityTrackerRegain(t *testing.T) {
	sink := NewCollector()
	tr := &LegalityTracker{Start: 1, MaxGap: 100, Confirm: 3, Sink: sink}
	tr.OnBeat(10, 1)
	tr.OnBeat(20, 2)
	tr.OnFault(25)
	tr.OnBeat(30, 0x7777) // corrupted beat
	tr.OnBeat(40, 0x7778) // legal successor of garbage: run starts here
	tr.OnBeat(50, 0x7779)
	tr.OnBeat(60, 0x777a) // third consecutive legal beat: regained
	evs := sink.Events()
	if len(evs) != 1 || evs[0].Type != TypeLegalityRegained {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].Step != 60 || evs[0].Arg != 40 || evs[0].Code != 40-25 {
		t.Fatalf("regain payload: %+v", evs[0])
	}
	// Clean after recovery: no further emission.
	tr.OnBeat(70, 0x777b)
	if len(sink.Events()) != 1 {
		t.Fatal("emitted while clean")
	}
}

func TestLegalityTrackerUndisturbedFault(t *testing.T) {
	sink := NewCollector()
	tr := &LegalityTracker{Start: 1, MaxGap: 100, Confirm: 2, Sink: sink}
	tr.OnBeat(10, 1)
	tr.OnFault(15) // fault that does not disturb the stream
	tr.OnBeat(20, 2)
	tr.OnBeat(30, 3)
	evs := sink.Events()
	if len(evs) != 1 || evs[0].Arg != 20 || evs[0].Code != 5 {
		t.Fatalf("undisturbed regain: %+v", evs)
	}
}

func TestLegalityTrackerRestartRules(t *testing.T) {
	// Strict spec: a restart to Start is NOT legal.
	sink := NewCollector()
	strict := &LegalityTracker{Start: 1, MaxGap: 100, Confirm: 2, Sink: sink}
	strict.OnFault(5)
	strict.OnBeat(10, 5)
	strict.OnBeat(20, 1) // restart — illegal under strict
	strict.OnBeat(30, 2)
	strict.OnBeat(40, 3)
	if evs := sink.Events(); len(evs) != 1 || evs[0].Arg != 30 {
		t.Fatalf("strict restart handling: %+v", evs)
	}

	// Weak spec: the restart transition is legal, so the run extends
	// back to the first post-fault beat (matching LegalSuffixStart,
	// which judges transitions, not absolute values).
	sink2 := NewCollector()
	weak := &LegalityTracker{Start: 1, MaxGap: 100, AllowRestart: true, Confirm: 2, Sink: sink2}
	weak.OnFault(5)
	weak.OnBeat(10, 5)
	weak.OnBeat(20, 1)
	if evs := sink2.Events(); len(evs) != 1 || evs[0].Arg != 10 || evs[0].Code != 5 {
		t.Fatalf("weak restart handling: %+v", evs)
	}
}

func TestLegalityTrackerGapViolation(t *testing.T) {
	sink := NewCollector()
	tr := &LegalityTracker{Start: 1, MaxGap: 50, Confirm: 2, Sink: sink}
	tr.OnFault(5)
	tr.OnBeat(10, 1)
	tr.OnBeat(100, 2) // gap 90 > 50: illegal despite succession
	tr.OnBeat(110, 3)
	tr.OnBeat(120, 4)
	if evs := sink.Events(); len(evs) != 1 || evs[0].Arg != 110 {
		t.Fatalf("gap handling: %+v", evs)
	}
}

func TestDrainKeepsMetrics(t *testing.T) {
	c := NewCollector()
	c.Emit(Ev(1, TypeNMI))
	if got := c.Drain(); len(got) != 1 {
		t.Fatalf("drain: %v", got)
	}
	if len(c.Events()) != 0 {
		t.Fatal("buffer not cleared")
	}
	if c.Metrics.Counter("machine.nmis") != 1 {
		t.Fatal("metrics lost on drain")
	}
}

// TestCollectorConcurrentAccess hammers one collector from emitters,
// drainers and readers at once. It asserts nothing beyond conservation
// of events (every emitted event is seen exactly once across drains and
// the final buffer) — its real teeth are `go test -race`, which fails
// the build on any unsynchronized access. This is the contract the
// serve layer's streaming path depends on.
func TestCollectorConcurrentAccess(t *testing.T) {
	c := NewCollector()
	const emitters = 4
	const perEmitter = 500
	const emitted = emitters * perEmitter
	var emitWg, bgWg sync.WaitGroup
	var drained atomic.Int64
	stop := make(chan struct{})

	for e := 0; e < emitters; e++ {
		emitWg.Add(1)
		go func(e int) {
			defer emitWg.Done()
			for i := 0; i < perEmitter; i++ {
				c.Emit(Ev(uint64(e*perEmitter+i), TypeNMI))
			}
		}(e)
	}
	bgWg.Add(1)
	go func() { // drainer
		defer bgWg.Done()
		for {
			drained.Add(int64(len(c.Drain())))
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	bgWg.Add(1)
	go func() { // readers: snapshots, cursors, JSONL render, metrics
		defer bgWg.Done()
		for {
			_ = c.Events()
			_ = c.EventsSince(c.Len() / 2)
			_ = c.WriteJSONL(io.Discard)
			_ = c.MetricsSnapshot().Counter("machine.nmis")
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	emitWg.Wait()
	close(stop)
	bgWg.Wait()

	total := drained.Add(int64(len(c.Drain())))
	if total != emitted {
		t.Fatalf("event conservation: drained %d, emitted %d", total, emitted)
	}
	if got := c.MetricsSnapshot().Counter("machine.nmis"); got != emitted {
		t.Fatalf("metrics: %d NMIs folded, want %d", got, emitted)
	}
}

// TestCollectorHookSeesEveryEventWithItsCursor pins the Hook contract:
// called once per event, Emit and Append alike, with the event's buffer
// index — the cursor EventsSince would need to start at that event.
func TestCollectorHookSeesEveryEventWithItsCursor(t *testing.T) {
	c := NewCollector()
	var idxs []int
	var steps []uint64
	c.Hook = func(idx int, e Event) {
		idxs = append(idxs, idx)
		steps = append(steps, e.Step)
	}
	c.Emit(Ev(10, TypeNMI))
	c.Append(Ev(20, TypeIRQ), Ev(30, TypeReset))
	c.Emit(Ev(40, TypeException))
	if len(idxs) != 4 {
		t.Fatalf("hook calls: %d, want 4", len(idxs))
	}
	for i, idx := range idxs {
		if idx != i {
			t.Fatalf("hook idx[%d] = %d, want %d", i, idx, i)
		}
		if got := c.EventsSince(idx); got[0].Step != steps[i] {
			t.Fatalf("EventsSince(%d) starts at step %d, want %d", idx, got[0].Step, steps[i])
		}
	}
}

// TestEventJSONFaultField: the fault-id episode key renders between
// epoch and code, and is omitted when zero (outside any episode).
func TestEventJSONFaultField(t *testing.T) {
	e := Event{Step: 7, Type: TypeReinstallStarted, Replica: 1, Epoch: 2, FaultID: 3, Code: 4}
	want := `{"step":7,"type":"reinstall-started","replica":1,"epoch":2,"fault":3,"code":4}`
	if got := string(e.AppendJSON(nil)); got != want {
		t.Fatalf("fault-tagged event JSON:\n got %s\nwant %s", got, want)
	}
	e.FaultID = 0
	if got := string(e.AppendJSON(nil)); strings.Contains(got, "fault") {
		t.Fatalf("fault field rendered at zero: %s", got)
	}
}

// TestCursorsSurviveDrain: Hook indices and EventsSince cursors are
// positions in the collector's lifetime stream, so a cursor taken
// before a Drain still resolves correctly after it.
func TestCursorsSurviveDrain(t *testing.T) {
	c := NewCollector()
	var idxs []int
	c.Hook = func(idx int, e Event) { idxs = append(idxs, idx) }
	c.Emit(Ev(10, TypeNMI))
	c.Emit(Ev(20, TypeIRQ))
	if got := c.Drain(); len(got) != 2 {
		t.Fatalf("drain: %v", got)
	}
	c.Emit(Ev(30, TypeReset))
	c.Append(Ev(40, TypeException))
	if want := []int{0, 1, 2, 3}; len(idxs) != 4 || idxs[2] != 2 || idxs[3] != 3 {
		t.Fatalf("hook indices %v, want %v (absolute, drains included)", idxs, want)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want lifetime length 4", c.Len())
	}
	// Cursor 2 points at the first retained event; cursor 0 is before the
	// retained buffer and clamps to the oldest retained event.
	if got := c.EventsSince(2); len(got) != 2 || got[0].Step != 30 {
		t.Fatalf("EventsSince(2): %v", got)
	}
	if got := c.EventsSince(0); len(got) != 2 || got[0].Step != 30 {
		t.Fatalf("EventsSince(0) after drain: %v", got)
	}
	if got := c.EventsSince(c.Len()); got != nil {
		t.Fatalf("EventsSince(Len): %v, want nil", got)
	}
}

// TestConcurrentDrainEmitHookCoherent races Emit against Drain while a
// Hook observes every event, and checks the cursor contract under -race:
// hook indices are strictly increasing across the collector's lifetime
// and every event is delivered to the hook exactly once, no matter how
// the drains interleave.
func TestConcurrentDrainEmitHookCoherent(t *testing.T) {
	c := NewCollector()
	var mu sync.Mutex
	var idxs []int
	seen := make(map[uint64]int)
	c.Hook = func(idx int, e Event) {
		mu.Lock()
		idxs = append(idxs, idx)
		seen[e.Step]++
		mu.Unlock()
	}

	const emitters = 4
	const perEmitter = 300
	var emitWg, drainWg sync.WaitGroup
	var drained atomic.Int64
	stop := make(chan struct{})
	for e := 0; e < emitters; e++ {
		emitWg.Add(1)
		go func(e int) {
			defer emitWg.Done()
			for i := 0; i < perEmitter; i++ {
				c.Emit(Ev(uint64(e*perEmitter+i), TypeNMI))
			}
		}(e)
	}
	drainWg.Add(1)
	go func() {
		defer drainWg.Done()
		for {
			drained.Add(int64(len(c.Drain())))
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	emitWg.Wait()
	close(stop)
	drainWg.Wait()

	const emitted = emitters * perEmitter
	if total := drained.Add(int64(len(c.Drain()))); total != emitted {
		t.Fatalf("event conservation: drained %d, emitted %d", total, emitted)
	}
	if c.Len() != emitted {
		t.Fatalf("lifetime Len = %d, want %d", c.Len(), emitted)
	}
	if len(idxs) != emitted {
		t.Fatalf("hook calls: %d, want %d", len(idxs), emitted)
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i] <= idxs[i-1] {
			t.Fatalf("hook indices not strictly increasing: idx[%d]=%d, idx[%d]=%d",
				i-1, idxs[i-1], i, idxs[i])
		}
	}
	if idxs[len(idxs)-1] != emitted-1 {
		t.Fatalf("last hook index %d, want %d", idxs[len(idxs)-1], emitted-1)
	}
	for step, n := range seen {
		if n != 1 {
			t.Fatalf("event step %d delivered to hook %d times", step, n)
		}
	}
}
