package obs

import (
	"reflect"
	"testing"
)

// machineRecovery is a synthetic single-machine stream: one injected
// fault, watchdog detection, two reinstall attempts (the first stalls),
// a predicate repair, and the legality confirmation.
func machineRecovery() []Event {
	mk := func(step uint64, t Type, fid uint64) Event {
		e := Ev(step, t)
		e.FaultID = fid
		return e
	}
	fault := mk(100, TypeFaultInjected, 1)
	fault.Note = "ram-region os-state"
	nmi := mk(120, TypeNMI, 1)
	ri1 := mk(120, TypeReinstallStarted, 1)
	ri2 := mk(180, TypeReinstallStarted, 1) // first attempt stalled
	done := mk(200, TypeReinstallCompleted, 1)
	fail := mk(210, TypePredicateFailed, 1)
	fail.Code = 0xE001
	rep := mk(210, TypePredicateRepaired, 1)
	rep.Code = 0xE001
	legal := mk(400, TypeLegalityRegained, 1)
	legal.Code = 150 // steps-to-legal
	legal.Arg = 250  // first beat of the confirming run
	return []Event{fault, nmi, ri1, ri2, done, fail, rep, legal}
}

func TestFoldEpisodesMachineRecovery(t *testing.T) {
	eps := FoldEpisodes(machineRecovery())
	if len(eps) != 1 {
		t.Fatalf("episodes: %d, want 1", len(eps))
	}
	ep := eps[0]
	if ep.ID != 1 || ep.Replica != -1 || ep.FaultID != 1 {
		t.Errorf("identity: %+v", ep)
	}
	if ep.FaultClass != "ram-region" {
		t.Errorf("fault class %q", ep.FaultClass)
	}
	if !ep.Resolved || ep.Preempted || ep.Resolution != ResolutionLegality {
		t.Errorf("resolution: %+v", ep)
	}
	if ep.Start != 100 || ep.End != 400 || ep.Latency() != 300 || ep.StepsToLegal != 150 {
		t.Errorf("timing: start=%d end=%d steps-to-legal=%d", ep.Start, ep.End, ep.StepsToLegal)
	}
	want := []Span{
		{Name: "detect:nmi", Start: 100, End: 120},
		{Name: "reinstall", Start: 120, End: 180}, // stalled attempt, closed by the retry
		{Name: "reinstall", Start: 180, End: 200},
		{Name: "repair:0xe001", Start: 210, End: 210},
		{Name: "confirm", Start: 250, End: 400},
	}
	if !reflect.DeepEqual(ep.Spans, want) {
		t.Errorf("spans:\n got %+v\nwant %+v", ep.Spans, want)
	}
}

// TestSecondFaultPreemptsOpenEpisode: a fault injected before the
// previous episode confirms legality starts a NEW episode and marks the
// first preempted — it must not silently extend it.
func TestSecondFaultPreemptsOpenEpisode(t *testing.T) {
	f1 := Ev(100, TypeFaultInjected)
	f1.FaultID = 1
	f1.Note = "cpu-blast"
	f2 := Ev(300, TypeFaultInjected)
	f2.FaultID = 2
	f2.Note = "ram-bit"
	legal := Ev(900, TypeLegalityRegained)
	legal.FaultID = 2
	legal.Code = 500
	legal.Arg = 400

	eps := FoldEpisodes([]Event{f1, f2, legal})
	if len(eps) != 2 {
		t.Fatalf("episodes: %d, want 2", len(eps))
	}
	first, second := eps[0], eps[1]
	if !first.Preempted || first.Resolved || first.Resolution != ResolutionPreempted {
		t.Errorf("first episode not preempted: %+v", first)
	}
	if first.End != 300 || first.Latency() != 200 {
		t.Errorf("preempted episode ends at the new fault: %+v", first)
	}
	if second.FaultID != 2 || !second.Resolved || second.Resolution != ResolutionLegality {
		t.Errorf("second episode: %+v", second)
	}
	if second.StepsToLegal != 500 {
		t.Errorf("second steps-to-legal %d", second.StepsToLegal)
	}
}

// TestSameStepFaultsCoalesce: several fault records landing at one step
// (one injection request, e.g. "pc" corrupting ip and a segment) open
// ONE episode with joined classes, not a preemption chain.
func TestSameStepFaultsCoalesce(t *testing.T) {
	f1 := Ev(100, TypeFaultInjected)
	f1.FaultID = 1
	f1.Note = "ip ip=beef"
	f2 := Ev(100, TypeFaultInjected)
	f2.FaultID = 2
	f2.Note = "segment cs"

	tr := NewEpisodeTracker()
	tr.Feed(f1)
	tr.Feed(f2)
	eps := tr.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes: %d, want 1 (coalesced)", len(eps))
	}
	if eps[0].FaultClass != "ip+segment" || eps[0].FaultID != 2 {
		t.Errorf("coalesced episode: %+v", eps[0])
	}
	if eps[0].Preempted || eps[0].Resolved {
		t.Errorf("coalesced episode should be in flight: %+v", eps[0])
	}
	if tr.InFlight() != 1 {
		t.Errorf("in-flight: %d", tr.InFlight())
	}
}

// TestEvictRejoinClosesEpisode: a cluster episode resolves through the
// reconfigurator — evict + rejoin at the epoch boundary — with a span
// for the eviction and a saturating fault-to-rejoin latency.
func TestEvictRejoinClosesEpisode(t *testing.T) {
	fault := Event{Step: 5000, Type: TypeFaultInjected, Replica: 2, Epoch: 1, FaultID: 1, Note: "cpu-blast"}
	exc := Event{Step: 5040, Type: TypeException, Replica: 2, Epoch: 1, FaultID: 1, Code: 3}
	evict := Event{Step: 8192, Type: TypeReplicaEvicted, Replica: 2, Epoch: 1, FaultID: 1, Note: "divergent"}
	rejoin := Event{Step: 8192, Type: TypeReplicaRejoined, Replica: 2, Epoch: 1, FaultID: 1, Arg: 1}

	eps := FoldEpisodes([]Event{fault, exc, evict, rejoin})
	if len(eps) != 1 {
		t.Fatalf("episodes: %d, want 1", len(eps))
	}
	ep := eps[0]
	if !ep.Resolved || ep.Resolution != ResolutionRejoin {
		t.Errorf("resolution: %+v", ep)
	}
	if ep.Replica != 2 || ep.End != 8192 || ep.StepsToLegal != 3192 {
		t.Errorf("timing/scope: %+v", ep)
	}
	want := []Span{
		{Name: "detect:exception", Start: 5000, End: 5040},
		{Name: "evict:divergent", Start: 8192, End: 8192},
	}
	if !reflect.DeepEqual(ep.Spans, want) {
		t.Errorf("spans: %+v", ep.Spans)
	}
}

// TestScopesAreIndependent: episodes on different replicas interleave
// without preempting each other.
func TestScopesAreIndependent(t *testing.T) {
	f0 := Event{Step: 100, Type: TypeFaultInjected, Replica: 0, FaultID: 1, Note: "ram-bit"}
	f1 := Event{Step: 150, Type: TypeFaultInjected, Replica: 1, FaultID: 1, Note: "cpu-blast"}
	l0 := Event{Step: 600, Type: TypeLegalityRegained, Replica: 0, FaultID: 1, Code: 400, Arg: 500}

	tr := NewEpisodeTracker()
	for _, e := range []Event{f0, f1, l0} {
		tr.Feed(e)
	}
	eps := tr.Episodes()
	if len(eps) != 2 {
		t.Fatalf("episodes: %d", len(eps))
	}
	if eps[0].Replica != 0 || !eps[0].Resolved || eps[0].Preempted {
		t.Errorf("replica-0 episode: %+v", eps[0])
	}
	if eps[1].Replica != 1 || eps[1].Resolved || eps[1].Preempted {
		t.Errorf("replica-1 episode should still be open: %+v", eps[1])
	}
	if tr.InFlight() != 1 {
		t.Errorf("in-flight: %d", tr.InFlight())
	}
}

// TestUntaggedEventsAreOutsideEpisodes: FaultID-zero machine events
// (the periodic watchdog NMIs of an undisturbed run) contribute no
// spans even while an episode is open on another cause's scope.
func TestUntaggedEventsAreOutsideEpisodes(t *testing.T) {
	periodic := Ev(50, TypeNMI) // before any fault, untagged
	fault := Ev(100, TypeFaultInjected)
	fault.FaultID = 1
	fault.Note = "halt"
	stray := Ev(150, TypeReinstallStarted) // untagged: not part of the recovery

	eps := FoldEpisodes([]Event{periodic, fault, stray})
	if len(eps) != 1 {
		t.Fatalf("episodes: %d", len(eps))
	}
	if len(eps[0].Spans) != 0 {
		t.Errorf("untagged events grew spans: %+v", eps[0].Spans)
	}
}

func TestFoldEpisodesDeterministic(t *testing.T) {
	stream := append(machineRecovery(),
		Event{Step: 5000, Type: TypeFaultInjected, Replica: 2, Epoch: 1, FaultID: 1, Note: "cpu-blast"},
		Event{Step: 8192, Type: TypeReplicaEvicted, Replica: 2, Epoch: 1, FaultID: 1, Note: "divergent"},
		Event{Step: 8192, Type: TypeReplicaRejoined, Replica: 2, Epoch: 1, FaultID: 1, Arg: 1},
	)
	a, b := FoldEpisodes(stream), FoldEpisodes(stream)
	if !reflect.DeepEqual(a, b) {
		t.Error("two folds of the same stream differ")
	}
}

func TestRecordEpisodesMetrics(t *testing.T) {
	f1 := Ev(100, TypeFaultInjected)
	f1.FaultID = 1
	f1.Note = "ram-region os-state"
	f2 := Ev(300, TypeFaultInjected) // preempts f1
	f2.FaultID = 2
	f2.Note = "cpu-blast"
	legal := Ev(900, TypeLegalityRegained)
	legal.FaultID = 2
	legal.Code = 500
	legal.Arg = 400
	f3 := Ev(2000, TypeFaultInjected) // stays in flight
	f3.FaultID = 3
	f3.Note = "halt"

	m := NewMetrics()
	RecordEpisodes(m, FoldEpisodes([]Event{f1, f2, legal, f3}))
	for name, want := range map[string]uint64{
		"episodes.total":     3,
		"episodes.resolved":  1,
		"episodes.preempted": 1,
		"episodes.in_flight": 1,
	} {
		if got := m.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := m.Samples("episode.latency"); len(got) != 1 || got[0] != 600 {
		t.Errorf("episode.latency samples %v", got)
	}
	if got := m.Samples("episode.latency.fault.cpu-blast"); len(got) != 1 {
		t.Errorf("fault-split samples %v", got)
	}
	if got := m.Samples("episode.latency.action." + ResolutionLegality); len(got) != 1 {
		t.Errorf("action-split samples %v", got)
	}
}
