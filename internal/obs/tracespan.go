package obs

import (
	"io"
	"sort"
	"strconv"
)

// Chrome trace_event export: recovery episodes rendered as a span tree
// that Perfetto (ui.perfetto.dev) or chrome://tracing can load
// directly.
//
// Mapping: one trace process per episode scope (pid 0 = the single
// machine, pid r+1 = replica r), one trace thread per episode (tid =
// episode ID), one complete event (ph "X") for the episode's root
// interval and one per recovery-phase span. Timestamps are machine
// steps, not microseconds — the viewer's time unit label is wrong but
// the geometry is exact, and steps are the only clock that keeps the
// file byte-identical across same-seed runs. The writer builds JSON by
// hand in a fixed field order for the same reason.

// AppendTrace appends the episodes as a Chrome trace_event JSON
// document. In-flight episodes (and their root spans) are closed at
// horizon, the final step of the run.
func AppendTrace(b []byte, eps []Episode, horizon uint64) []byte {
	b = append(b, `{"traceEvents":[`...)
	first := true
	sep := func() {
		if !first {
			b = append(b, ',', '\n')
		}
		first = false
	}

	// Process-name metadata, one per distinct scope. Scopes are
	// collected in first-seen order and sorted, so emission never
	// touches map iteration order.
	seen := make(map[int]bool)
	var pids []int
	for i := range eps {
		pid := eps[i].Replica + 1
		if !seen[pid] {
			seen[pid] = true
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)
	for _, pid := range pids {
		name := "machine"
		if pid > 0 {
			name = "replica " + strconv.Itoa(pid-1)
		}
		sep()
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"tid":0,"args":{"name":`...)
		b = strconv.AppendQuote(b, name)
		b = append(b, `}}`...)
	}

	for i := range eps {
		ep := &eps[i]
		pid, tid := ep.Replica+1, ep.ID
		end := ep.End
		inFlight := !ep.Resolved && !ep.Preempted
		if inFlight && horizon > end {
			end = horizon
		}
		sep()
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, "episode#"+strconv.Itoa(ep.ID)+" "+ep.FaultClass)
		b = append(b, `,"cat":"episode","ph":"X","pid":`...)
		b = appendSpanTail(b, pid, tid, ep.Start, end)
		b = append(b, `,"args":{"fault_id":`...)
		b = strconv.AppendUint(b, ep.FaultID, 10)
		b = append(b, `,"fault_class":`...)
		b = strconv.AppendQuote(b, ep.FaultClass)
		b = append(b, `,"resolution":`...)
		b = strconv.AppendQuote(b, ep.Resolution)
		b = append(b, `,"steps_to_legal":`...)
		b = strconv.AppendUint(b, ep.StepsToLegal, 10)
		b = append(b, `,"predicate_evals":`...)
		b = strconv.AppendInt(b, int64(ep.Evals), 10)
		b = append(b, `,"preempted":`...)
		b = strconv.AppendBool(b, ep.Preempted)
		b = append(b, `,"in_flight":`...)
		b = strconv.AppendBool(b, inFlight)
		b = append(b, `}}`...)

		for _, sp := range ep.Spans {
			sep()
			b = append(b, `{"name":`...)
			b = strconv.AppendQuote(b, sp.Name)
			b = append(b, `,"cat":"span","ph":"X","pid":`...)
			b = appendSpanTail(b, pid, tid, sp.Start, sp.End)
			b = append(b, `}`...)
		}
	}
	return append(b, `],"displayTimeUnit":"ns"}`...)
}

// appendSpanTail renders the shared pid/tid/ts/dur suffix of a complete
// event (the caller has already emitted `"pid":`).
func appendSpanTail(b []byte, pid, tid int, start, end uint64) []byte {
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, start, 10)
	b = append(b, `,"dur":`...)
	if end < start {
		end = start
	}
	b = strconv.AppendUint(b, end-start, 10)
	return b
}

// WriteTrace writes the episodes as a trace_event JSON document
// followed by a newline.
func WriteTrace(w io.Writer, eps []Episode, horizon uint64) error {
	b := AppendTrace(nil, eps, horizon)
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}
