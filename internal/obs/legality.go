package obs

// LegalityTracker watches a heartbeat stream incrementally and emits
// TypeLegalityRegained when the stream re-satisfies its legal-execution
// specification after a fault. It mirrors trace.HeartbeatSpec's
// RecoveredAfter detector — a beat run is legal when each beat is the
// successor of the previous within MaxGap (or a restart to Start when
// AllowRestart) — but works online, beat by beat, so recovery shows up
// in the event stream instead of only in a post-hoc analysis.
//
// The parameters are plain values rather than a trace.HeartbeatSpec so
// that obs keeps zero project imports (trace sits above machine, which
// emits into obs).
type LegalityTracker struct {
	// Start, MaxGap, AllowRestart mirror trace.HeartbeatSpec.
	Start        uint16
	MaxGap       uint64
	AllowRestart bool
	// Confirm is the number of consecutive legal beats required before
	// recovery is declared (the experiments' convergence detector).
	Confirm int
	// Sink receives the emitted events.
	Sink Probe

	have     bool
	prevStep uint64
	prevVal  uint16
	runStart uint64
	runLen   int
	dirty    bool
	fault    uint64
}

// OnFault marks the stream dirty at the given step. The current legal
// run is restarted so recovery must be re-confirmed by beats after the
// fault; steps-to-legal is measured from the most recent fault.
func (t *LegalityTracker) OnFault(step uint64) {
	t.dirty = true
	t.fault = step
	t.runLen = 0
}

// OnBeat feeds one heartbeat. When a dirty stream accumulates Confirm
// consecutive legal beats, one TypeLegalityRegained event is emitted,
// stamped with the confirming beat's step; Code carries steps-to-legal
// (first beat of the legal run minus the fault step) and Arg the run's
// first-beat step.
func (t *LegalityTracker) OnBeat(step uint64, v uint16) {
	ok := true
	if t.have {
		ok = (v == t.prevVal+1 && step-t.prevStep <= t.MaxGap) ||
			(t.AllowRestart && v == t.Start)
	}
	t.prevStep, t.prevVal, t.have = step, v, true
	if !ok {
		t.runLen = 0
		return
	}
	if t.runLen == 0 {
		t.runStart = step
	}
	t.runLen++
	if t.dirty && t.runLen >= t.Confirm && t.Sink != nil {
		t.dirty = false
		t.Sink.Emit(Event{
			Step:    step,
			Type:    TypeLegalityRegained,
			Replica: -1,
			Epoch:   -1,
			Code:    t.runStart - t.fault,
			Arg:     t.runStart,
		})
	}
}

// PredicateTracker is the LegalityTracker's twin for workloads whose
// legality is a sampled state predicate rather than a heartbeat-stream
// property — the token-ring workloads' "exactly one privilege". Feed it
// predicate samples; after a fault, Confirm consecutive true samples
// emit one TypeLegalityRegained whose Code carries steps-to-legal
// (first sample of the true run minus the fault step) and Arg the run's
// first-sample step.
type PredicateTracker struct {
	// Confirm is the number of consecutive true samples required.
	Confirm int
	// Sink receives the emitted events.
	Sink Probe

	runStart uint64
	runLen   int
	dirty    bool
	fault    uint64
}

// OnFault marks the predicate stream dirty at the given step; the
// current true run is restarted so recovery must be re-confirmed.
func (t *PredicateTracker) OnFault(step uint64) {
	t.dirty = true
	t.fault = step
	t.runLen = 0
}

// OnSample feeds one predicate evaluation.
func (t *PredicateTracker) OnSample(step uint64, legal bool) {
	if !legal {
		t.runLen = 0
		return
	}
	if t.runLen == 0 {
		t.runStart = step
	}
	t.runLen++
	if t.dirty && t.runLen >= t.Confirm && t.Sink != nil {
		t.dirty = false
		t.Sink.Emit(Event{
			Step:    step,
			Type:    TypeLegalityRegained,
			Replica: -1,
			Epoch:   -1,
			Code:    t.runStart - t.fault,
			Arg:     t.runStart,
		})
	}
}
