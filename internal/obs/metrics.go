package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Metrics is a registry of named counters, gauges and step-valued
// histograms. It is single-goroutine by design (one registry per
// worker); parallel trials aggregate by merging snapshots in a
// deterministic order, the same contract internal/pool gives results.
type Metrics struct {
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string][]uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
		hists:    make(map[string][]uint64),
	}
}

// Inc increments the named counter by one.
func (m *Metrics) Inc(name string) { m.counters[name]++ }

// Add increments the named counter by n.
func (m *Metrics) Add(name string, n uint64) { m.counters[name] += n }

// Counter returns the named counter's value.
func (m *Metrics) Counter(name string) uint64 { return m.counters[name] }

// SetGauge sets the named gauge.
func (m *Metrics) SetGauge(name string, v float64) { m.gauges[name] = v }

// Gauge returns the named gauge's value.
func (m *Metrics) Gauge(name string) float64 { return m.gauges[name] }

// Observe appends one sample to the named histogram.
func (m *Metrics) Observe(name string, v uint64) {
	m.hists[name] = append(m.hists[name], v)
}

// Samples returns the named histogram's raw samples.
func (m *Metrics) Samples(name string) []uint64 { return m.hists[name] }

// Snapshot returns a deep copy, safe to hand to another goroutine.
func (m *Metrics) Snapshot() *Metrics {
	s := NewMetrics()
	for k, v := range m.counters {
		s.counters[k] = v
	}
	for k, v := range m.gauges {
		s.gauges[k] = v
	}
	for k, v := range m.hists {
		s.hists[k] = append([]uint64(nil), v...)
	}
	return s
}

// Merge folds another registry into this one: counters add, histogram
// samples append, gauges take the other's value. Merging worker
// snapshots in index order yields the same registry regardless of
// scheduling.
func (m *Metrics) Merge(o *Metrics) {
	for k, v := range o.counters {
		m.counters[k] += v
	}
	for k, v := range o.gauges {
		m.gauges[k] = v
	}
	for k, v := range o.hists {
		m.hists[k] = append(m.hists[k], v...)
	}
}

// HistSummary condenses one histogram for export.
type HistSummary struct {
	Count int     `json:"count"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
}

// Quantile returns the pct-th percentile of ascending-sorted samples,
// using the same rank convention (index n*pct/100) everywhere a
// percentile is reported — histogram summaries, experiment tables and
// the served Prometheus endpoint all call this one function, which is
// what makes a scraped quantile byte-comparable to a batch-computed
// one for the same samples.
func Quantile(sorted []uint64, pct int) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * pct / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// SortedSamples returns the named histogram's samples in ascending
// order, ready for Quantile.
func (m *Metrics) SortedSamples(name string) []uint64 {
	sorted := append([]uint64(nil), m.hists[name]...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

func summarizeHist(xs []uint64) HistSummary {
	if len(xs) == 0 {
		return HistSummary{}
	}
	sorted := append([]uint64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, x := range sorted {
		sum += float64(x)
	}
	return HistSummary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		P50:   Quantile(sorted, 50),
		P90:   Quantile(sorted, 90),
		P95:   Quantile(sorted, 95),
		P99:   Quantile(sorted, 99),
	}
}

// metricsDoc is the exported JSON shape. encoding/json sorts map keys,
// so the document is deterministic for identical registries.
type metricsDoc struct {
	Counters   map[string]uint64      `json:"counters"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms"`
	Derived    map[string]float64     `json:"derived,omitempty"`
}

// MarshalJSON exports the registry: raw counters and gauges, summarized
// histograms, plus derived headline ratios (repair-vs-reinstall and
// overall availability) when their inputs are present.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	doc := metricsDoc{
		Counters:   m.counters,
		Gauges:     m.gauges,
		Histograms: make(map[string]HistSummary, len(m.hists)),
		Derived:    map[string]float64{},
	}
	for k, v := range m.hists {
		doc.Histograms[k] = summarizeHist(v)
	}
	if re := m.counters["stabilizer.reinstalls"]; re > 0 {
		doc.Derived["stabilizer.repair_vs_reinstall"] =
			float64(m.counters["stabilizer.repairs"]) / float64(re)
	}
	if ep := m.counters["cluster.epochs"]; ep > 0 {
		doc.Derived["cluster.availability"] =
			float64(m.counters["cluster.legal_epochs"]) / float64(ep)
	}
	if len(doc.Derived) == 0 {
		doc.Derived = nil
	}
	return json.MarshalIndent(doc, "", "  ")
}

// WriteJSON writes the exported registry document followed by a
// newline.
func (m *Metrics) WriteJSON(w io.Writer) error {
	b, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
