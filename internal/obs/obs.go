// Package obs is the unified observability layer: a structured event
// stream and a stabilization-metrics registry threaded through the
// machine, the core systems, the replicated cluster and the experiment
// harness.
//
// The paper proves its designs legal (watchdog NMIs, ROM reinstalls,
// consistency-predicate repairs); this package makes those arguments
// *observable*: every stabilization-relevant action is emitted as a
// typed event on a Probe, and a metrics registry condenses the stream
// into the headline numbers — steps-to-legal after each injected
// fault, reinstall count, repair-vs-reinstall ratio, per-replica
// availability.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Emission sites hold a nil-checked Probe
//     pointer; an uninstrumented machine pays one nil compare on the
//     rare event paths (interrupt delivery, exception, reset) and
//     nothing on the per-instruction path.
//   - Deterministic output. Events carry machine-step stamps, never
//     wall-clock time; exporters render with stable field order; the
//     cluster drains per-replica buffers in replica order. A fixed
//     seed therefore produces byte-identical logs regardless of how
//     many workers execute the run.
//   - No upward imports. obs depends only on the standard library, so
//     every layer (machine, fault, dev, core, cluster, expt) can emit
//     into it without cycles.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Type classifies a structured event.
type Type uint8

// Event types. Each maps to one mechanism of the paper (the mapping is
// documented in DESIGN.md §Observability).
const (
	// TypeNMI: the machine delivered a non-maskable interrupt (the
	// watchdog's stabilizer entry, Section 2).
	TypeNMI Type = iota
	// TypeIRQ: the machine delivered a maskable interrupt.
	TypeIRQ
	// TypeException: the processor raised an exception (Code = vector).
	TypeException
	// TypeReset: the machine performed a hardware reset.
	TypeReset
	// TypeFaultInjected: the experiment harness injected a transient
	// fault (Code = fault.Kind, Note = kind name and detail).
	TypeFaultInjected
	// TypeReinstallStarted: a stabilizer run that reinstalls the OS
	// image from ROM began (Section 3, Figure 1).
	TypeReinstallStarted
	// TypeReinstallCompleted: the guest produced output again after a
	// reinstall — the restart is live.
	TypeReinstallCompleted
	// TypePredicateEval: the approach-2 monitor ran its consistency
	// predicates over the soft state (Section 4).
	TypePredicateEval
	// TypePredicateFailed: a consistency predicate did not hold
	// (Code = the guest's repair code, e.g. 0xE001 canary).
	TypePredicateFailed
	// TypePredicateRepaired: the monitor repaired the failed predicate
	// (Code = repair code). The guest reports failure and repair in one
	// port write, so these are emitted pairwise at the same step.
	TypePredicateRepaired
	// TypeLegalityRegained: the observable output stream satisfied the
	// legal-execution specification again after a fault, confirmed by a
	// run of consecutive legal heartbeats (Code = steps from the fault
	// to the first legal beat, Arg = the step of that beat).
	TypeLegalityRegained
	// TypeReplicaEvicted: the cluster reconfigurator evicted a replica
	// (Replica = evictee, Note = reason).
	TypeReplicaEvicted
	// TypeReplicaRejoined: the evicted replica rejoined after reinstall
	// (Arg = donor replica + 1, 0 for a from-ROM fresh boot).
	TypeReplicaRejoined
	// TypeVoteTally: the cluster voter tallied one epoch (Code = the
	// winning digest, Arg = agreeing replicas, Note = verdict).
	TypeVoteTally

	numTypes // sentinel
)

var typeNames = [numTypes]string{
	TypeNMI:                "nmi",
	TypeIRQ:                "irq",
	TypeException:          "exception",
	TypeReset:              "reset",
	TypeFaultInjected:      "fault-injected",
	TypeReinstallStarted:   "reinstall-started",
	TypeReinstallCompleted: "reinstall-completed",
	TypePredicateEval:      "predicate-eval",
	TypePredicateFailed:    "predicate-failed",
	TypePredicateRepaired:  "predicate-repaired",
	TypeLegalityRegained:   "legality-regained",
	TypeReplicaEvicted:     "replica-evicted",
	TypeReplicaRejoined:    "replica-rejoined",
	TypeVoteTally:          "vote-tally",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Event is one structured observation. Step is the machine step at
// which the event occurred (the only clock in the system — wall time
// never appears, keeping output reproducible). Replica and Epoch are
// -1 outside a cluster context; Code and Arg carry type-specific
// numeric payloads documented on the Type constants.
//
// FaultID is the episode key: every injected fault gets a 1-based
// ordinal from its injector, and the instrumentation layer stamps that
// ordinal onto every event it derives between the injection and the
// legality re-confirmation (reinstalls, predicate repairs, evictions,
// rejoins, the legality-regained confirmation itself). Zero means
// "outside any recovery episode" — e.g. the periodic watchdog NMIs of
// an undisturbed run. The (Replica, FaultID) pair lets the episode
// reconstructor fold the stream into causal recovery episodes without
// any step-window heuristics.
type Event struct {
	Step    uint64
	Type    Type
	Replica int
	Epoch   int
	FaultID uint64
	Code    uint64
	Arg     uint64
	Note    string
}

// Ev builds a plain machine-level event: no replica/epoch scope.
// Emission sites use it so that scope tagging stays the collector's
// job.
func Ev(step uint64, t Type) Event {
	return Event{Step: step, Type: t, Replica: -1, Epoch: -1}
}

// AppendJSON appends the event as one JSON object (no newline) with a
// fixed field order, so logs are byte-stable across runs.
func (e Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"step":`...)
	b = strconv.AppendUint(b, e.Step, 10)
	b = append(b, `,"type":"`...)
	b = append(b, e.Type.String()...)
	b = append(b, '"')
	if e.Replica >= 0 {
		b = append(b, `,"replica":`...)
		b = strconv.AppendInt(b, int64(e.Replica), 10)
	}
	if e.Epoch >= 0 {
		b = append(b, `,"epoch":`...)
		b = strconv.AppendInt(b, int64(e.Epoch), 10)
	}
	if e.FaultID != 0 {
		b = append(b, `,"fault":`...)
		b = strconv.AppendUint(b, e.FaultID, 10)
	}
	if e.Code != 0 {
		b = append(b, `,"code":`...)
		b = strconv.AppendUint(b, e.Code, 10)
	}
	if e.Arg != 0 {
		b = append(b, `,"arg":`...)
		b = strconv.AppendUint(b, e.Arg, 10)
	}
	if e.Note != "" {
		b = append(b, `,"note":`...)
		b = strconv.AppendQuote(b, e.Note)
	}
	return append(b, '}')
}

// Probe receives structured events. Implementations must be cheap:
// emission sites sit on interrupt/exception paths.
type Probe interface {
	Emit(Event)
}

// Collector is the standard Probe: it buffers the event stream in
// emission order and folds each event into a metrics registry.
// Emission is typically single-goroutine (one collector per replica or
// per system), but every method is safe for concurrent use: a mutex
// guards the buffer and the registry folds, and readers receive
// snapshots. That is what lets a served session stream and export its
// event log from other goroutines while the run loop is still emitting.
//
// The one concurrency carve-out is direct access to the Metrics field:
// code that writes the live registry from outside (core.ExportMetrics
// in the batch CLIs, the cluster's FinishObservability merge) must do
// so from the emitting goroutine after emission has stopped — the
// concurrent path is MetricsSnapshot.
type Collector struct {
	// Replica and Epoch tag incoming events that carry no scope of
	// their own (machine-level emissions). -1 leaves events unscoped.
	// They are configuration, set before emission starts, not guarded
	// by the mutex.
	Replica int
	Epoch   int
	// Metrics is the registry events are folded into.
	Metrics *Metrics
	// Hook, when non-nil, is invoked for every event entering the
	// buffer (Emit and Append alike) with the event's absolute stream
	// index — the cursor a reader would pass to EventsSince to start at
	// that event. It is called under the collector lock, so hooks must
	// be cheap and must not call back into the collector; the serve
	// layer uses it to fan events out to live SSE subscribers and to
	// feed the live episode tracker.
	//
	// Cursors are positions in the collector's lifetime stream, not in
	// the current buffer: Drain advances a base offset instead of
	// resetting indices, so a hooked publish that races a Drain can
	// never observe a half-reset collector or a cursor that aliases an
	// already-drained event. Indices handed to the hook are strictly
	// increasing for the collector's lifetime, drains included.
	Hook func(idx int, e Event)

	mu sync.Mutex
	//ssos:guarded-by mu
	events []Event
	// drained counts events removed by Drain; the absolute stream index
	// of events[i] is drained+i.
	//ssos:guarded-by mu
	drained int
}

// NewCollector returns an unscoped collector with a fresh registry.
func NewCollector() *Collector {
	return &Collector{Replica: -1, Epoch: -1, Metrics: NewMetrics()}
}

// Emit buffers the event and updates the metrics registry.
func (c *Collector) Emit(e Event) {
	if e.Replica < 0 {
		e.Replica = c.Replica
	}
	if e.Epoch < 0 {
		e.Epoch = c.Epoch
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.observe(e)
	if c.Hook != nil {
		c.Hook(c.drained+len(c.events)-1, e)
	}
	c.mu.Unlock()
}

// Append splices pre-scoped events verbatim WITHOUT folding them into
// the metrics registry. The cluster coordinator uses it for drained
// replica buffers: those events were already folded into the replicas'
// own registries, which are aggregated separately via Metrics.Merge in
// replica order.
func (c *Collector) Append(events ...Event) {
	c.mu.Lock()
	for _, e := range events {
		c.events = append(c.events, e)
		if c.Hook != nil {
			c.Hook(c.drained+len(c.events)-1, e)
		}
	}
	c.mu.Unlock()
}

// observe folds one event into the metrics registry.
func (c *Collector) observe(e Event) {
	m := c.Metrics
	switch e.Type {
	case TypeNMI:
		m.Inc("machine.nmis")
	case TypeIRQ:
		m.Inc("machine.irqs")
	case TypeException:
		m.Inc("machine.exceptions")
	case TypeReset:
		m.Inc("machine.resets")
	case TypeFaultInjected:
		m.Inc("faults.injected")
	case TypeReinstallStarted:
		m.Inc("stabilizer.reinstalls_started")
	case TypeReinstallCompleted:
		m.Inc("stabilizer.reinstalls")
	case TypePredicateEval:
		m.Inc("stabilizer.predicate_evals")
	case TypePredicateFailed:
		m.Inc("stabilizer.predicate_failures")
	case TypePredicateRepaired:
		m.Inc("stabilizer.repairs")
	case TypeLegalityRegained:
		m.Observe("stabilization.steps_to_legal", e.Code)
	case TypeReplicaEvicted:
		m.Inc("cluster.evictions")
		if e.Replica >= 0 {
			m.Inc("replica." + strconv.Itoa(e.Replica) + ".evictions")
		}
	case TypeVoteTally:
		m.Inc("cluster.epochs")
		if e.Note == "legal" {
			m.Inc("cluster.legal_epochs")
		}
	}
}

// Events returns a snapshot of the buffered stream in emission order.
func (c *Collector) Events() []Event { return c.EventsSince(0) }

// EventsSince returns a snapshot of the buffered events from the given
// cursor (an absolute stream index) onward. Cursors beyond the stream
// yield nil, so a poller can hand back the Len from its previous call
// verbatim; cursors pointing before the retained buffer (possible only
// after a Drain) start at the oldest retained event.
func (c *Collector) EventsSince(cursor int) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	cursor -= c.drained
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(c.events) {
		return nil
	}
	return append([]Event(nil), c.events[cursor:]...)
}

// Len returns the total number of events the collector has ever
// buffered — the absolute stream length, drains included, so Len's
// value is always a valid EventsSince cursor for "everything new from
// here".
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drained + len(c.events)
}

// Drain returns the buffered events and clears the buffer (metrics are
// untouched — they aggregate over the collector's whole lifetime).
// Drains advance the absolute stream offset rather than resetting it,
// so Hook indices and EventsSince cursors stay coherent across drains:
// an Emit racing a Drain is either drained (and its hook index points
// at the now-removed prefix, which EventsSince maps to the oldest
// retained event) or retained (and its index resolves exactly), never
// half of each.
func (c *Collector) Drain() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.events
	c.drained += len(out)
	c.events = nil
	return out
}

// MetricsSnapshot returns a deep copy of the registry, taken under the
// collector lock so it is consistent even while emission continues.
func (c *Collector) MetricsSnapshot() *Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Metrics.Snapshot()
}

// WriteJSONL writes the buffered events as JSON lines.
func (c *Collector) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, c.EventsSince(0))
}

// WriteJSONL renders events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	var buf []byte
	for _, e := range events {
		buf = e.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
