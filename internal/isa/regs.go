// Package isa defines the instruction-set architecture of the simulated
// real-mode machine used throughout this repository: the register file,
// processor flags, instruction opcodes and their binary encoding.
//
// The ISA is a compact 16-bit segmented architecture modelled on the
// subset of the Intel Pentium real-addressing mode that the paper
// "Toward Self-Stabilizing Operating Systems" (Dolev & Yagel) uses in
// its Figures 1-5: general registers with 8-bit halves, segment
// registers, absolute and register-indexed memory operands with
// explicit segment overrides, string copy with REP, stack operations
// and IRET. Instructions are variable length (1-6 bytes) which matters
// for the paper's Section 5.2 discussion of instruction-slot padding;
// every instruction fits in a 16-byte slot.
package isa

import "fmt"

// Reg identifies one of the eight 16-bit general-purpose registers.
type Reg uint8

// General-purpose 16-bit registers.
const (
	AX Reg = iota
	BX
	CX
	DX
	SI
	DI
	BP
	SP

	// NumRegs is the number of general-purpose registers.
	NumRegs = 8
)

var regNames = [NumRegs]string{"ax", "bx", "cx", "dx", "si", "di", "bp", "sp"}

// Valid reports whether r names an existing general register.
func (r Reg) Valid() bool { return r < NumRegs }

func (r Reg) String() string {
	if r.Valid() {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// ParseReg returns the general register named by s (lower case), if any.
func ParseReg(s string) (Reg, bool) {
	for i, n := range regNames {
		if n == s {
			return Reg(i), true
		}
	}
	return 0, false
}

// SReg identifies one of the six segment registers.
type SReg uint8

// Segment registers.
const (
	CS SReg = iota
	DS
	ES
	FS
	GS
	SS

	// NumSRegs is the number of segment registers.
	NumSRegs = 6
)

var sregNames = [NumSRegs]string{"cs", "ds", "es", "fs", "gs", "ss"}

// Valid reports whether s names an existing segment register.
func (s SReg) Valid() bool { return s < NumSRegs }

func (s SReg) String() string {
	if s.Valid() {
		return sregNames[s]
	}
	return fmt.Sprintf("s?%d", uint8(s))
}

// ParseSReg returns the segment register named by s (lower case), if any.
func ParseSReg(s string) (SReg, bool) {
	for i, n := range sregNames {
		if n == s {
			return SReg(i), true
		}
	}
	return 0, false
}

// Reg8 identifies one of the eight byte-addressable register halves
// (the low and high bytes of AX, BX, CX and DX).
type Reg8 uint8

// 8-bit register halves.
const (
	AL Reg8 = iota
	AH
	BL
	BH
	CL
	CH
	DL
	DH

	// NumRegs8 is the number of addressable byte registers.
	NumRegs8 = 8
)

var reg8Names = [NumRegs8]string{"al", "ah", "bl", "bh", "cl", "ch", "dl", "dh"}

// Valid reports whether r names an existing byte register.
func (r Reg8) Valid() bool { return r < NumRegs8 }

func (r Reg8) String() string {
	if r.Valid() {
		return reg8Names[r]
	}
	return fmt.Sprintf("b?%d", uint8(r))
}

// ParseReg8 returns the byte register named by s (lower case), if any.
func ParseReg8(s string) (Reg8, bool) {
	for i, n := range reg8Names {
		if n == s {
			return Reg8(i), true
		}
	}
	return 0, false
}

// Parent returns the 16-bit register that contains r and whether r is
// its high byte.
func (r Reg8) Parent() (reg Reg, high bool) {
	return Reg(r / 2), r%2 == 1
}
