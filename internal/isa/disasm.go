package isa

import (
	"fmt"
	"strings"
)

// DisasmLine is one line of disassembly output.
type DisasmLine struct {
	Offset uint16 // offset of the first byte within the input
	Bytes  []byte // raw encoding (a single byte for invalid encodings)
	Text   string // assembly text, or a db directive for invalid bytes
	Valid  bool
}

// Disasm decodes the byte slice into consecutive instructions starting
// at offset 0. Undecodable bytes are emitted one at a time as `db`
// lines, mirroring how the processor would fault on them.
func Disasm(code []byte) []DisasmLine {
	var lines []DisasmLine
	off := 0
	for off < len(code) {
		in, size, ok := Decode(code[off:])
		if !ok {
			lines = append(lines, DisasmLine{
				Offset: uint16(off),
				Bytes:  code[off : off+1],
				Text:   fmt.Sprintf("db 0x%02x", code[off]),
			})
			off++
			continue
		}
		lines = append(lines, DisasmLine{
			Offset: uint16(off),
			Bytes:  code[off : off+size],
			Text:   in.String(),
			Valid:  true,
		})
		off += size
	}
	return lines
}

// DisasmString renders Disasm output as a printable listing.
func DisasmString(code []byte) string {
	var b strings.Builder
	for _, ln := range Disasm(code) {
		fmt.Fprintf(&b, "%04x:  % -18x  %s\n", ln.Offset, ln.Bytes, ln.Text)
	}
	return b.String()
}
