package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNamesRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		got, ok := ParseReg(r.String())
		if !ok || got != r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v, true", r.String(), got, ok, r)
		}
	}
	for s := SReg(0); s < NumSRegs; s++ {
		got, ok := ParseSReg(s.String())
		if !ok || got != s {
			t.Errorf("ParseSReg(%q) = %v, %v; want %v, true", s.String(), got, ok, s)
		}
	}
	for r := Reg8(0); r < NumRegs8; r++ {
		got, ok := ParseReg8(r.String())
		if !ok || got != r {
			t.Errorf("ParseReg8(%q) = %v, %v; want %v, true", r.String(), got, ok, r)
		}
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	if _, ok := ParseReg("zz"); ok {
		t.Error("ParseReg accepted zz")
	}
	if _, ok := ParseSReg("ax"); ok {
		t.Error("ParseSReg accepted ax")
	}
	if _, ok := ParseReg8("ax"); ok {
		t.Error("ParseReg8 accepted ax")
	}
}

func TestReg8Parent(t *testing.T) {
	cases := []struct {
		r    Reg8
		reg  Reg
		high bool
	}{
		{AL, AX, false}, {AH, AX, true},
		{BL, BX, false}, {BH, BX, true},
		{CL, CX, false}, {CH, CX, true},
		{DL, DX, false}, {DH, DX, true},
	}
	for _, c := range cases {
		reg, high := c.r.Parent()
		if reg != c.reg || high != c.high {
			t.Errorf("%v.Parent() = %v, %v; want %v, %v", c.r, reg, high, c.reg, c.high)
		}
	}
}

func TestFlagsOps(t *testing.T) {
	f := Flags(0)
	f = f.With(FlagZF | FlagCF)
	if !f.Has(FlagZF) || !f.Has(FlagCF) || f.Has(FlagSF) {
		t.Fatalf("flags after With: %v", f)
	}
	f = f.Without(FlagCF)
	if f.Has(FlagCF) {
		t.Fatalf("CF not cleared: %v", f)
	}
	f = f.Set(FlagIF, true)
	if !f.Has(FlagIF) {
		t.Fatalf("IF not set: %v", f)
	}
	f = f.Set(FlagIF, false)
	if f.Has(FlagIF) {
		t.Fatalf("IF not cleared: %v", f)
	}
}

func TestFlagsString(t *testing.T) {
	if got := Flags(0).String(); got != "-" {
		t.Errorf("empty flags = %q", got)
	}
	if got := (FlagCF | FlagZF).String(); got != "CF|ZF" {
		t.Errorf("CF|ZF = %q", got)
	}
}

// sampleInstructions covers every defined opcode with representative
// operands.
func sampleInstructions() []Inst {
	mem := MemOp{Seg: SS, Base: BaseBX, Disp: 0x1234}
	abs := MemOp{Seg: DS, Base: BaseNone, Disp: 0xBEEF}
	return []Inst{
		{Op: OpNop}, {Op: OpHlt}, {Op: OpCld}, {Op: OpStd}, {Op: OpSti},
		{Op: OpCli}, {Op: OpIret}, {Op: OpPushf}, {Op: OpPopf},
		{Op: OpMovRI, R1: uint8(AX), Imm: 0xABCD},
		{Op: OpMovRR, R1: uint8(BX), R2: uint8(SP)},
		{Op: OpMovSR, R1: uint8(SS), R2: uint8(AX)},
		{Op: OpMovRS, R1: uint8(CX), R2: uint8(GS)},
		{Op: OpMovRM, R1: uint8(DX), Mem: mem},
		{Op: OpMovMR, R1: uint8(SI), Mem: abs},
		{Op: OpMovMI, Imm: 0x0102, Mem: abs},
		{Op: OpMovSM, R1: uint8(DS), Mem: mem},
		{Op: OpMovMS, R1: uint8(ES), Mem: abs},
		{Op: OpMovR8I, R1: uint8(AH), Imm: 0x7F},
		{Op: OpMovR8R8, R1: uint8(AL), R2: uint8(DH)},
		{Op: OpAddRR, R1: uint8(AX), R2: uint8(BX)},
		{Op: OpAddRI, R1: uint8(DI), Imm: 2},
		{Op: OpAddRM, R1: uint8(SI), Mem: abs},
		{Op: OpSubRR, R1: uint8(CX), R2: uint8(DX)},
		{Op: OpSubRI, R1: uint8(SP), Imm: 6},
		{Op: OpIncR, R1: uint8(AX)},
		{Op: OpDecR, R1: uint8(CX)},
		{Op: OpAndRR, R1: uint8(AX), R2: uint8(AX)},
		{Op: OpAndRI, R1: uint8(AX), Imm: 0x0003},
		{Op: OpOrRR, R1: uint8(BX), R2: uint8(CX)},
		{Op: OpOrRI, R1: uint8(DX), Imm: 0x8000},
		{Op: OpXorRR, R1: uint8(AX), R2: uint8(AX)},
		{Op: OpCmpRR, R1: uint8(AX), R2: uint8(BX)},
		{Op: OpCmpRI, R1: uint8(SI), Imm: 0xFFFF},
		{Op: OpCmpRM, R1: uint8(AX), Mem: MemOp{Seg: DS, Base: BaseSI}},
		{Op: OpLea, R1: uint8(BX), Mem: abs},
		{Op: OpMulR8, R1: uint8(AH)},
		{Op: OpShlRI, R1: uint8(AX), Imm: 4},
		{Op: OpShrRI, R1: uint8(BX), Imm: 1},
		{Op: OpJmp, Imm: 0x0100},
		{Op: OpJmpFar, Imm: 0xF000, Imm2: 0x0010},
		{Op: OpJe, Imm: 0x10}, {Op: OpJne, Imm: 0x20},
		{Op: OpJb, Imm: 0x30}, {Op: OpJbe, Imm: 0x40},
		{Op: OpJa, Imm: 0x50}, {Op: OpJae, Imm: 0x60},
		{Op: OpLoop, Imm: 0x70},
		{Op: OpCall, Imm: 0x80},
		{Op: OpRet},
		{Op: OpPushR, R1: uint8(AX)},
		{Op: OpPopR, R1: uint8(BX)},
		{Op: OpPushI, Imm: 0x0002},
		{Op: OpPushS, R1: uint8(CS)},
		{Op: OpPopS, R1: uint8(DS)},
		{Op: OpMovsb}, {Op: OpRepMovsb}, {Op: OpStosb}, {Op: OpLodsb},
		{Op: OpOutI, Imm: 0x42},
		{Op: OpInI, Imm: 0x42},
		{Op: OpOutDx}, {Op: OpInDx},
		{Op: OpInt, Imm: 3},
		{Op: OpWPSet, R1: uint8(AX)},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range sampleInstructions() {
		enc := in.Encode(nil)
		if len(enc) != in.Size() {
			t.Errorf("%v: encoded %d bytes, Size()=%d", in, len(enc), in.Size())
		}
		got, size, ok := Decode(enc)
		if !ok {
			t.Errorf("%v: decode failed (bytes % x)", in, enc)
			continue
		}
		if size != len(enc) {
			t.Errorf("%v: decode size %d, want %d", in, size, len(enc))
		}
		if got != in {
			t.Errorf("round trip: got %+v want %+v", got, in)
		}
	}
}

func TestEncodedSizesWithinSlot(t *testing.T) {
	for _, in := range sampleInstructions() {
		if in.Size() > MaxInstrSize {
			t.Errorf("%v: size %d exceeds MaxInstrSize", in, in.Size())
		}
	}
	if MaxInstrSize > SlotSize {
		t.Fatal("MaxInstrSize must not exceed SlotSize")
	}
}

func TestDecodeInvalid(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xFF},                         // undefined opcode
		{byte(OpMovRI), 1},             // truncated
		{byte(OpMovRR), 9, 0},          // bad register id
		{byte(OpMovSR), 7, 0},          // bad segment id
		{byte(OpMovRM), 0, 0x6F, 0, 0}, // bad mem mode (seg 15)
		{byte(OpMovRM), 0, 0x51, 0, 0}, // bad mem mode (base 5)
		{byte(OpPushS), 6},             // bad sreg
		{byte(OpMulR8), 8},             // bad reg8
	}
	for _, b := range cases {
		if _, _, ok := Decode(b); ok {
			t.Errorf("Decode(% x) unexpectedly ok", b)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Property: Decode is total over arbitrary byte windows.
	f := func(b []byte) bool {
		_, size, ok := Decode(b)
		if ok && (size <= 0 || size > len(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeEncodeIdempotent(t *testing.T) {
	// Property: any bytes that decode validly re-encode to the same bytes.
	f := func(b []byte) bool {
		in, size, ok := Decode(b)
		if !ok {
			return true
		}
		enc := in.Encode(nil)
		if len(enc) != size {
			return false
		}
		for i := range enc {
			if enc[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDisasm(t *testing.T) {
	var code []byte
	for _, in := range []Inst{
		{Op: OpMovRI, R1: uint8(AX), Imm: 0x1234},
		{Op: OpIret},
	} {
		code = in.Encode(code)
	}
	code = append(code, 0xFF) // junk byte
	lines := Disasm(code)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	if !lines[0].Valid || lines[0].Text != "mov ax, 0x1234" {
		t.Errorf("line 0: %+v", lines[0])
	}
	if !lines[1].Valid || lines[1].Text != "iret" {
		t.Errorf("line 1: %+v", lines[1])
	}
	if lines[2].Valid || lines[2].Text != "db 0xff" {
		t.Errorf("line 2: %+v", lines[2])
	}
	if s := DisasmString(code); len(s) == 0 {
		t.Error("empty DisasmString")
	}
}

func TestMemOpString(t *testing.T) {
	cases := []struct {
		m    MemOp
		want string
	}{
		{MemOp{Seg: DS, Disp: 0x10}, "[0x10]"},
		{MemOp{Seg: SS, Base: BaseBX, Disp: 2}, "[ss:bx+0x2]"},
		{MemOp{Seg: DS, Base: BaseSI}, "[si]"},
		{MemOp{Seg: ES, Disp: 0}, "[es:0x0]"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestOpMetadata(t *testing.T) {
	if Op(0xFE).Valid() {
		t.Error("0xFE should be invalid")
	}
	if Op(0xFE).Size() != 0 {
		t.Error("invalid op size should be 0")
	}
	if OpNop.Size() != 1 || OpMovMI.Size() != 6 {
		t.Error("wrong sizes for nop/mov-mi")
	}
	if OpJmp.Mnemonic() != "jmp" {
		t.Errorf("jmp mnemonic = %q", OpJmp.Mnemonic())
	}
}

func TestEveryInstructionStringIsNonEmpty(t *testing.T) {
	for _, in := range sampleInstructions() {
		s := in.String()
		if s == "" {
			t.Errorf("%+v renders empty", in)
		}
		if in.Op.Mnemonic() == "" {
			t.Errorf("%v has empty mnemonic", in.Op)
		}
	}
}

func TestDisasmEmptyInput(t *testing.T) {
	if lines := Disasm(nil); len(lines) != 0 {
		t.Fatalf("lines: %v", lines)
	}
	if s := DisasmString(nil); s != "" {
		t.Fatalf("string: %q", s)
	}
}

func TestBaseRegAccessors(t *testing.T) {
	if BaseNone.String() != "" {
		t.Error("BaseNone should render empty")
	}
	if _, ok := BaseNone.Reg(); ok {
		t.Error("BaseNone has no register")
	}
	for _, b := range []BaseReg{BaseBX, BaseSI, BaseDI, BaseBP} {
		if !b.Valid() {
			t.Errorf("%v invalid", b)
		}
		if r, ok := b.Reg(); !ok || !r.Valid() {
			t.Errorf("%v register: %v %v", b, r, ok)
		}
		if b.String() == "" {
			t.Errorf("%v renders empty", b)
		}
	}
	if BaseReg(9).Valid() {
		t.Error("bogus base valid")
	}
}

func TestInvalidRegisterStrings(t *testing.T) {
	if Reg(200).String() == "" || SReg(200).String() == "" || Reg8(200).String() == "" {
		t.Error("invalid registers should still render")
	}
	if Reg(200).Valid() || SReg(200).Valid() || Reg8(200).Valid() {
		t.Error("out-of-range registers reported valid")
	}
}

// TestInstLenCacheabilityContract verifies the contract InstLen
// documents for the machine's predecoded instruction cache: for every
// possible first byte, Decode's result is a pure function of the bytes
// [0, InstLen(b)) — trailing bytes never matter — and the decoded size
// equals InstLen for every accepted instruction.
func TestInstLenCacheabilityContract(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for b0 := 0; b0 < 256; b0++ {
		n := InstLen(byte(b0))
		if n < 0 || n > MaxInstrSize {
			t.Fatalf("InstLen(%#02x) = %d out of range", b0, n)
		}
		for trial := 0; trial < 64; trial++ {
			var bufA, bufB [MaxInstrSize]byte
			bufA[0], bufB[0] = byte(b0), byte(b0)
			for i := 1; i < MaxInstrSize; i++ {
				v := byte(rng.Intn(256))
				bufA[i] = v
				if i < n {
					bufB[i] = v // shared prefix [0, InstLen)
				} else {
					bufB[i] = v ^ byte(rng.Intn(255)+1) // differing tail
				}
			}
			inA, szA, okA := Decode(bufA[:])
			inB, szB, okB := Decode(bufB[:])
			if inA != inB || szA != szB || okA != okB {
				t.Fatalf("Decode(%#02x...) depends on bytes beyond InstLen=%d:\n %v %d %v\n %v %d %v",
					b0, n, inA, szA, okA, inB, szB, okB)
			}
			if okA && szA != n {
				t.Fatalf("opcode %#02x: decoded size %d != InstLen %d", b0, szA, n)
			}
			if n == 0 && okA {
				t.Fatalf("opcode %#02x: InstLen 0 but Decode accepted it", b0)
			}
		}
	}
}

// TestSerializingClassification pins the superblock serialize-point
// set: exactly the control transfers, rep movsb, hlt, port I/O and int
// are serializing among valid opcodes, and every invalid opcode byte
// reports serializing (it raises, which ends straight-line execution).
// Adding an opcode forces an explicit classification decision here —
// misclassifying a new control transfer or I/O op as non-serializing
// would let the block builder chain across it.
func TestSerializingClassification(t *testing.T) {
	serial := map[Op]bool{
		OpHlt: true, OpIret: true,
		OpJmp: true, OpJmpFar: true, OpJe: true, OpJne: true,
		OpJb: true, OpJbe: true, OpJa: true, OpJae: true,
		OpLoop: true, OpCall: true, OpRet: true,
		OpRepMovsb: true,
		OpOutI:     true, OpInI: true, OpOutDx: true, OpInDx: true,
		OpInt: true,
	}
	for b := 0; b < 256; b++ {
		op := Op(b)
		want := serial[op] || !op.Valid()
		if got := op.Serializing(); got != want {
			t.Errorf("Op(%#02x) %q: Serializing() = %v, want %v", b, op.Mnemonic(), got, want)
		}
	}
	// The set must not silently shrink: all listed ops stay valid.
	for op := range serial {
		if !op.Valid() {
			t.Errorf("serializing op %#02x no longer defined", uint8(op))
		}
	}
}
