package isa

import "fmt"

// Op is an instruction opcode. Each distinct instruction form (mnemonic
// plus operand shape) has its own opcode byte, giving a simple
// unambiguous variable-length encoding.
type Op uint8

// Opcodes. Gaps are reserved (decode as invalid, raising the invalid-
// opcode exception, which the paper's designs must tolerate: a corrupt
// program counter may land anywhere, including on data bytes).
const (
	OpNop   Op = 0x00
	OpHlt   Op = 0x01
	OpCld   Op = 0x02
	OpStd   Op = 0x03
	OpSti   Op = 0x04
	OpCli   Op = 0x05
	OpIret  Op = 0x06
	OpPushf Op = 0x07
	OpPopf  Op = 0x08

	OpMovRI   Op = 0x10 // mov r16, imm16
	OpMovRR   Op = 0x11 // mov r16, r16
	OpMovSR   Op = 0x12 // mov sreg, r16
	OpMovRS   Op = 0x13 // mov r16, sreg
	OpMovRM   Op = 0x14 // mov r16, [mem]
	OpMovMR   Op = 0x15 // mov [mem], r16
	OpMovMI   Op = 0x16 // mov word [mem], imm16
	OpMovSM   Op = 0x17 // mov sreg, [mem]
	OpMovMS   Op = 0x18 // mov [mem], sreg
	OpMovR8I  Op = 0x19 // mov r8, imm8
	OpMovR8R8 Op = 0x1A // mov r8, r8

	OpAddRR Op = 0x20 // add r16, r16
	OpAddRI Op = 0x21 // add r16, imm16
	OpAddRM Op = 0x22 // add r16, [mem]
	OpSubRR Op = 0x23 // sub r16, r16
	OpSubRI Op = 0x24 // sub r16, imm16
	OpIncR  Op = 0x25 // inc r16
	OpDecR  Op = 0x26 // dec r16
	OpAndRR Op = 0x27 // and r16, r16
	OpAndRI Op = 0x28 // and r16, imm16
	OpOrRR  Op = 0x29 // or r16, r16
	OpOrRI  Op = 0x2A // or r16, imm16
	OpXorRR Op = 0x2B // xor r16, r16
	OpCmpRR Op = 0x2C // cmp r16, r16
	OpCmpRI Op = 0x2D // cmp r16, imm16
	OpCmpRM Op = 0x2E // cmp r16, [mem]
	OpLea   Op = 0x2F // lea r16, [mem]
	OpMulR8 Op = 0x30 // mul r8 (ax = al * r8)
	OpShlRI Op = 0x31 // shl r16, imm8
	OpShrRI Op = 0x32 // shr r16, imm8

	OpJmp    Op = 0x40 // jmp imm16 (absolute offset within cs)
	OpJmpFar Op = 0x41 // jmp seg16:off16
	OpJe     Op = 0x42
	OpJne    Op = 0x43
	OpJb     Op = 0x44
	OpJbe    Op = 0x45
	OpJa     Op = 0x46
	OpJae    Op = 0x47
	OpLoop   Op = 0x48 // dec cx; jmp if cx != 0
	OpCall   Op = 0x49 // push ip; jmp imm16
	OpRet    Op = 0x4A // pop ip

	OpPushR Op = 0x50 // push r16
	OpPopR  Op = 0x51 // pop r16
	OpPushI Op = 0x52 // push imm16
	OpPushS Op = 0x53 // push sreg
	OpPopS  Op = 0x54 // pop sreg

	OpMovsb    Op = 0x60 // copy byte ds:si -> es:di, advance si/di
	OpRepMovsb Op = 0x61 // movsb repeated cx times (resumable)
	OpStosb    Op = 0x62 // store al at es:di, advance di
	OpLodsb    Op = 0x63 // load al from ds:si, advance si

	OpOutI  Op = 0x70 // out imm8, ax
	OpInI   Op = 0x71 // in ax, imm8
	OpOutDx Op = 0x72 // out dx, ax
	OpInDx  Op = 0x73 // in ax, dx
	OpInt   Op = 0x74 // int imm8 (software interrupt through idt)

	OpWPSet Op = 0x76 // wpset r16: load the write-protection window register
)

// OperandShape describes the operand bytes that follow an opcode.
type OperandShape uint8

// Operand shapes. The shape fully determines instruction length.
const (
	ShapeNone   OperandShape = iota // op
	ShapeR                          // op reg
	ShapeRR                         // op reg reg
	ShapeRI                         // op reg imm16
	ShapeRI8                        // op reg imm8
	ShapeRM                         // op reg mem(3)
	ShapeMR                         // op mem(3) reg
	ShapeMI                         // op mem(3) imm16
	ShapeI16                        // op imm16
	ShapeI8                         // op imm8
	ShapeSegOff                     // op seg16 off16
)

// Size returns the total encoded instruction size for the shape,
// including the opcode byte.
func (s OperandShape) Size() int {
	switch s {
	case ShapeNone:
		return 1
	case ShapeR:
		return 2
	case ShapeRR:
		return 3
	case ShapeRI:
		return 4
	case ShapeRI8:
		return 3
	case ShapeRM, ShapeMR:
		return 5
	case ShapeMI:
		return 6
	case ShapeI16:
		return 3
	case ShapeI8:
		return 2
	case ShapeSegOff:
		return 5
	}
	return 0
}

// instrInfo is the static description of one instruction form.
type instrInfo struct {
	name  string
	shape OperandShape
}

// instrDefs lists every defined instruction form; init expands it into
// the dense dispatch table the decoder indexes on the fetch path.
var instrDefs = map[Op]instrInfo{
	OpNop:   {"nop", ShapeNone},
	OpHlt:   {"hlt", ShapeNone},
	OpCld:   {"cld", ShapeNone},
	OpStd:   {"std", ShapeNone},
	OpSti:   {"sti", ShapeNone},
	OpCli:   {"cli", ShapeNone},
	OpIret:  {"iret", ShapeNone},
	OpPushf: {"pushf", ShapeNone},
	OpPopf:  {"popf", ShapeNone},

	OpMovRI:   {"mov", ShapeRI},
	OpMovRR:   {"mov", ShapeRR},
	OpMovSR:   {"mov", ShapeRR},
	OpMovRS:   {"mov", ShapeRR},
	OpMovRM:   {"mov", ShapeRM},
	OpMovMR:   {"mov", ShapeMR},
	OpMovMI:   {"mov", ShapeMI},
	OpMovSM:   {"mov", ShapeRM},
	OpMovMS:   {"mov", ShapeMR},
	OpMovR8I:  {"mov", ShapeRI8},
	OpMovR8R8: {"mov", ShapeRR},

	OpAddRR: {"add", ShapeRR},
	OpAddRI: {"add", ShapeRI},
	OpAddRM: {"add", ShapeRM},
	OpSubRR: {"sub", ShapeRR},
	OpSubRI: {"sub", ShapeRI},
	OpIncR:  {"inc", ShapeR},
	OpDecR:  {"dec", ShapeR},
	OpAndRR: {"and", ShapeRR},
	OpAndRI: {"and", ShapeRI},
	OpOrRR:  {"or", ShapeRR},
	OpOrRI:  {"or", ShapeRI},
	OpXorRR: {"xor", ShapeRR},
	OpCmpRR: {"cmp", ShapeRR},
	OpCmpRI: {"cmp", ShapeRI},
	OpCmpRM: {"cmp", ShapeRM},
	OpLea:   {"lea", ShapeRM},
	OpMulR8: {"mul", ShapeR},
	OpShlRI: {"shl", ShapeRI8},
	OpShrRI: {"shr", ShapeRI8},

	OpJmp:    {"jmp", ShapeI16},
	OpJmpFar: {"jmp", ShapeSegOff},
	OpJe:     {"je", ShapeI16},
	OpJne:    {"jne", ShapeI16},
	OpJb:     {"jb", ShapeI16},
	OpJbe:    {"jbe", ShapeI16},
	OpJa:     {"ja", ShapeI16},
	OpJae:    {"jae", ShapeI16},
	OpLoop:   {"loop", ShapeI16},
	OpCall:   {"call", ShapeI16},
	OpRet:    {"ret", ShapeNone},

	OpPushR: {"push", ShapeR},
	OpPopR:  {"pop", ShapeR},
	OpPushI: {"push", ShapeI16},
	OpPushS: {"push", ShapeR},
	OpPopS:  {"pop", ShapeR},

	OpMovsb:    {"movsb", ShapeNone},
	OpRepMovsb: {"rep movsb", ShapeNone},
	OpStosb:    {"stosb", ShapeNone},
	OpLodsb:    {"lodsb", ShapeNone},

	OpOutI:  {"out", ShapeI8},
	OpInI:   {"in", ShapeI8},
	OpOutDx: {"out", ShapeNone},
	OpInDx:  {"in", ShapeNone},
	OpInt:   {"int", ShapeI8},
	OpWPSet: {"wpset", ShapeR},
}

// serializingOps lists the opcodes after which straight-line execution
// cannot be assumed to continue at ip+size, or after which arbitrary
// machine state may have changed outside the instruction's own
// semantics. These are the superblock serialize points: a predecoded
// run must end at (and include) any such instruction.
//
//   - control transfers: the next ip is computed, conditional, or
//     popped from memory (jmp/jcc/loop/call/ret/iret/int), so the
//     successor cannot be chained statically;
//   - rep movsb: resumable — ip re-targets the instruction itself
//     while cx counts down, a data-dependent successor;
//   - hlt: the processor leaves the fetch loop entirely;
//   - port I/O: devices run host code that may mutate memory,
//     registers, pins or the machine's caching mode.
//
// Writes to cs (mov/pop into a segment register) also retarget the
// code stream, but whether an instance targets cs is an operand
// property, not an opcode property — the machine's block builder
// checks that case itself.
var serializingOps = []Op{
	OpHlt, OpIret,
	OpJmp, OpJmpFar, OpJe, OpJne, OpJb, OpJbe, OpJa, OpJae,
	OpLoop, OpCall, OpRet,
	OpRepMovsb,
	OpOutI, OpInI, OpOutDx, OpInDx, OpInt,
}

// instrTable is the dense dispatch table: one slot per opcode byte,
// populated from instrDefs at init. Decode indexes it on every fetch,
// so it must not be a map.
var instrTable [256]struct {
	instrInfo
	valid  bool
	serial bool
	size   uint8
}

func init() {
	for op, info := range instrDefs {
		instrTable[op].instrInfo = info
		instrTable[op].valid = true
		instrTable[op].size = uint8(info.shape.Size())
	}
	for _, op := range serializingOps {
		if !instrTable[op].valid {
			panic("isa: serializing op not defined")
		}
		instrTable[op].serial = true
	}
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return instrTable[op].valid }

// Shape returns the operand shape of op. Invalid opcodes have ShapeNone.
func (op Op) Shape() OperandShape { return instrTable[op].shape }

// Size returns the encoded size in bytes of an instruction with opcode
// op, or 0 if op is invalid.
func (op Op) Size() int { return int(instrTable[op].size) }

// Serializing reports whether op is a superblock serialize point (see
// serializingOps). Invalid opcodes report true: they raise an exception,
// which certainly ends straight-line execution.
func (op Op) Serializing() bool { return instrTable[op].serial || !instrTable[op].valid }

// InstLen returns the full encoded length implied by an instruction's
// first byte, or 0 when the byte is not a defined opcode.
//
// This is the cacheability contract the machine's predecoded
// instruction cache is built on: encoded length is a pure function of
// the first byte, and Decode's result depends on exactly the bytes
// [0, InstLen(b[0])) — never on later bytes. A cached decode therefore
// stays valid for as long as that byte range is unwritten, which the
// memory bus tracks with page write-generations.
func InstLen(b byte) int { return int(instrTable[b].size) }

// Mnemonic returns the assembly mnemonic for op.
func (op Op) Mnemonic() string {
	if instrTable[op].valid {
		return instrTable[op].name
	}
	return fmt.Sprintf("db 0x%02x", uint8(op))
}

// MaxInstrSize is the largest encoded instruction size. The paper's
// Section 5.2 padding scheme requires every instruction to fit in a
// SlotSize-byte slot; MaxInstrSize <= SlotSize guarantees this.
const MaxInstrSize = 6

// SlotSize is the fixed instruction-slot size used by padded (pad16)
// code, matching the paper's ip masking to multiples of 16.
const SlotSize = 16
