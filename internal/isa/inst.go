package isa

import "fmt"

// BaseReg identifies the optional index register of a memory operand.
type BaseReg uint8

// Memory-operand base registers.
const (
	BaseNone BaseReg = iota
	BaseBX
	BaseSI
	BaseDI
	BaseBP

	numBases
)

// Valid reports whether b is a defined base register selector.
func (b BaseReg) Valid() bool { return b < numBases }

// Reg returns the general register used as index and whether one is used.
func (b BaseReg) Reg() (Reg, bool) {
	switch b {
	case BaseBX:
		return BX, true
	case BaseSI:
		return SI, true
	case BaseDI:
		return DI, true
	case BaseBP:
		return BP, true
	}
	return 0, false
}

func (b BaseReg) String() string {
	switch b {
	case BaseBX:
		return "bx"
	case BaseSI:
		return "si"
	case BaseDI:
		return "di"
	case BaseBP:
		return "bp"
	}
	return ""
}

// MemOp is a memory operand: an effective address seg:(base+disp).
// It encodes to three bytes: a mode byte (high nibble base selector,
// low nibble segment register) followed by a little-endian 16-bit
// displacement.
type MemOp struct {
	Seg  SReg
	Base BaseReg
	Disp uint16
}

// encodeMode packs the base and segment selectors into the mode byte.
func (m MemOp) encodeMode() byte {
	return byte(m.Base)<<4 | byte(m.Seg)
}

// decodeMemMode unpacks a mode byte; ok is false for undefined
// selectors, which the processor treats as an invalid instruction.
func decodeMemMode(mode byte) (MemOp, bool) {
	m := MemOp{Seg: SReg(mode & 0x0F), Base: BaseReg(mode >> 4)}
	return m, m.Seg.Valid() && m.Base.Valid()
}

func (m MemOp) String() string {
	inner := ""
	if m.Seg != DS {
		inner = m.Seg.String() + ":"
	}
	if r, ok := m.Base.Reg(); ok {
		inner += r.String()
		if m.Disp != 0 {
			inner += fmt.Sprintf("+0x%x", m.Disp)
		}
	} else {
		inner += fmt.Sprintf("0x%x", m.Disp)
	}
	return "[" + inner + "]"
}

// Inst is one decoded instruction. Interpretation of the fields depends
// on the opcode's shape: R1/R2 hold general-, segment- or byte-register
// ids; Imm holds an immediate, absolute jump offset or far segment
// (in Imm) and offset (in Imm2); Mem holds the memory operand.
type Inst struct {
	Op   Op
	R1   uint8
	R2   uint8
	Imm  uint16
	Imm2 uint16
	Mem  MemOp
}

// Size returns the encoded size of the instruction in bytes.
func (in Inst) Size() int { return in.Op.Size() }

// Encode appends the binary encoding of in to dst and returns the
// extended slice. Encoding an invalid opcode appends its bare byte.
func (in Inst) Encode(dst []byte) []byte {
	dst = append(dst, byte(in.Op))
	switch in.Op.Shape() {
	case ShapeNone:
	case ShapeR:
		dst = append(dst, in.R1)
	case ShapeRR:
		dst = append(dst, in.R1, in.R2)
	case ShapeRI:
		dst = append(dst, in.R1, byte(in.Imm), byte(in.Imm>>8))
	case ShapeRI8:
		dst = append(dst, in.R1, byte(in.Imm))
	case ShapeRM:
		dst = append(dst, in.R1, in.Mem.encodeMode(), byte(in.Mem.Disp), byte(in.Mem.Disp>>8))
	case ShapeMR:
		dst = append(dst, in.Mem.encodeMode(), byte(in.Mem.Disp), byte(in.Mem.Disp>>8), in.R1)
	case ShapeMI:
		dst = append(dst, in.Mem.encodeMode(), byte(in.Mem.Disp), byte(in.Mem.Disp>>8), byte(in.Imm), byte(in.Imm>>8))
	case ShapeI16:
		dst = append(dst, byte(in.Imm), byte(in.Imm>>8))
	case ShapeI8:
		dst = append(dst, byte(in.Imm))
	case ShapeSegOff:
		dst = append(dst, byte(in.Imm), byte(in.Imm>>8), byte(in.Imm2), byte(in.Imm2>>8))
	}
	return dst
}

// Decode decodes one instruction from the beginning of b. It returns
// the instruction, its size in bytes and whether the bytes form a valid
// instruction. Invalid encodings (undefined opcode, truncated operand
// bytes, undefined register or memory-mode selectors) return ok=false
// with size 0; the processor raises an invalid-opcode exception for
// them. Decode never panics on arbitrary input: any byte sequence is
// either a valid instruction or a well-defined fault, as the
// self-stabilization model requires.
func Decode(b []byte) (in Inst, size int, ok bool) {
	if len(b) == 0 {
		return Inst{}, 0, false
	}
	op := Op(b[0])
	entry := &instrTable[op]
	if !entry.valid {
		return Inst{}, 0, false
	}
	size = int(entry.size)
	if len(b) < size {
		return Inst{}, 0, false
	}
	in = Inst{Op: op}
	switch entry.shape {
	case ShapeNone:
	case ShapeR:
		in.R1 = b[1]
	case ShapeRR:
		in.R1, in.R2 = b[1], b[2]
	case ShapeRI:
		in.R1 = b[1]
		in.Imm = uint16(b[2]) | uint16(b[3])<<8
	case ShapeRI8:
		in.R1 = b[1]
		in.Imm = uint16(b[2])
	case ShapeRM:
		in.R1 = b[1]
		m, mok := decodeMemMode(b[2])
		if !mok {
			return Inst{}, 0, false
		}
		m.Disp = uint16(b[3]) | uint16(b[4])<<8
		in.Mem = m
	case ShapeMR:
		m, mok := decodeMemMode(b[1])
		if !mok {
			return Inst{}, 0, false
		}
		m.Disp = uint16(b[2]) | uint16(b[3])<<8
		in.Mem = m
		in.R1 = b[4]
	case ShapeMI:
		m, mok := decodeMemMode(b[1])
		if !mok {
			return Inst{}, 0, false
		}
		m.Disp = uint16(b[2]) | uint16(b[3])<<8
		in.Mem = m
		in.Imm = uint16(b[4]) | uint16(b[5])<<8
	case ShapeI16:
		in.Imm = uint16(b[1]) | uint16(b[2])<<8
	case ShapeI8:
		in.Imm = uint16(b[1])
	case ShapeSegOff:
		in.Imm = uint16(b[1]) | uint16(b[2])<<8
		in.Imm2 = uint16(b[3]) | uint16(b[4])<<8
	}
	if !in.registersValid() {
		return Inst{}, 0, false
	}
	return in, size, true
}

// registersValid checks that register selector bytes are in range for
// the opcode's register class.
func (in Inst) registersValid() bool {
	switch in.Op {
	case OpMovRI, OpAddRI, OpSubRI, OpAndRI, OpOrRI, OpCmpRI, OpShlRI, OpShrRI,
		OpIncR, OpDecR, OpPushR, OpPopR, OpWPSet:
		return Reg(in.R1).Valid()
	case OpMovRR, OpAddRR, OpSubRR, OpAndRR, OpOrRR, OpXorRR, OpCmpRR:
		return Reg(in.R1).Valid() && Reg(in.R2).Valid()
	case OpMovSR:
		return SReg(in.R1).Valid() && Reg(in.R2).Valid()
	case OpMovRS:
		return Reg(in.R1).Valid() && SReg(in.R2).Valid()
	case OpMovRM, OpMovMR, OpAddRM, OpCmpRM, OpLea:
		return Reg(in.R1).Valid()
	case OpMovSM, OpMovMS:
		return SReg(in.R1).Valid()
	case OpMovR8I, OpMulR8:
		return Reg8(in.R1).Valid()
	case OpMovR8R8:
		return Reg8(in.R1).Valid() && Reg8(in.R2).Valid()
	case OpPushS, OpPopS:
		return SReg(in.R1).Valid()
	}
	return true
}

// String renders the instruction in assembly syntax.
func (in Inst) String() string {
	mn := in.Op.Mnemonic()
	switch in.Op {
	case OpMovRI, OpAddRI, OpSubRI, OpAndRI, OpOrRI, OpCmpRI:
		return fmt.Sprintf("%s %s, 0x%x", mn, Reg(in.R1), in.Imm)
	case OpShlRI, OpShrRI:
		return fmt.Sprintf("%s %s, %d", mn, Reg(in.R1), in.Imm)
	case OpMovRR, OpAddRR, OpSubRR, OpAndRR, OpOrRR, OpXorRR, OpCmpRR:
		return fmt.Sprintf("%s %s, %s", mn, Reg(in.R1), Reg(in.R2))
	case OpMovSR:
		return fmt.Sprintf("%s %s, %s", mn, SReg(in.R1), Reg(in.R2))
	case OpMovRS:
		return fmt.Sprintf("%s %s, %s", mn, Reg(in.R1), SReg(in.R2))
	case OpMovRM, OpAddRM, OpCmpRM, OpLea:
		return fmt.Sprintf("%s %s, %s", mn, Reg(in.R1), in.Mem)
	case OpMovMR:
		return fmt.Sprintf("%s %s, %s", mn, in.Mem, Reg(in.R1))
	case OpMovMI:
		return fmt.Sprintf("%s word %s, 0x%x", mn, in.Mem, in.Imm)
	case OpMovSM:
		return fmt.Sprintf("%s %s, %s", mn, SReg(in.R1), in.Mem)
	case OpMovMS:
		return fmt.Sprintf("%s %s, %s", mn, in.Mem, SReg(in.R1))
	case OpMovR8I:
		return fmt.Sprintf("%s %s, 0x%x", mn, Reg8(in.R1), in.Imm)
	case OpMovR8R8:
		return fmt.Sprintf("%s %s, %s", mn, Reg8(in.R1), Reg8(in.R2))
	case OpIncR, OpDecR, OpPushR, OpPopR, OpWPSet:
		return fmt.Sprintf("%s %s", mn, Reg(in.R1))
	case OpMulR8:
		return fmt.Sprintf("%s %s", mn, Reg8(in.R1))
	case OpPushS, OpPopS:
		return fmt.Sprintf("%s %s", mn, SReg(in.R1))
	case OpJmp, OpJe, OpJne, OpJb, OpJbe, OpJa, OpJae, OpLoop, OpCall:
		return fmt.Sprintf("%s 0x%x", mn, in.Imm)
	case OpJmpFar:
		return fmt.Sprintf("%s 0x%x:0x%x", mn, in.Imm, in.Imm2)
	case OpPushI:
		return fmt.Sprintf("%s word 0x%x", mn, in.Imm)
	case OpOutI:
		return fmt.Sprintf("%s 0x%x, ax", mn, in.Imm)
	case OpInI:
		return fmt.Sprintf("%s ax, 0x%x", mn, in.Imm)
	case OpOutDx:
		return "out dx, ax"
	case OpInDx:
		return "in ax, dx"
	case OpInt:
		return fmt.Sprintf("%s 0x%x", mn, in.Imm)
	}
	return mn
}
