package isa_test

import (
	"fmt"
	"testing"

	"ssos/internal/guest"
	"ssos/internal/isa"
)

// TestGuestImagesRoundTrip disassembles every full guest ROM image and
// re-encodes each instruction, requiring byte-for-byte identity. This
// closes the gap imglint's CFG lifter rests on: the decoder's view of
// an image is exactly the image (no instruction decodes to something
// that would encode differently), so properties proved about decoded
// instructions are properties of the ROM bytes.
func TestGuestImagesRoundTrip(t *testing.T) {
	specs, err := guest.LintImages()
	if err != nil {
		t.Fatalf("LintImages: %v", err)
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// Walk the decodable prefix: code plus (when present) the
			// self-synchronizing fill. The data sections beyond are not
			// instruction streams.
			bound := spec.CodeEnd
			if bound == 0 {
				bound = len(spec.Bytes)
			}
			if spec.CheckFill {
				bound = spec.FillEnd
				if bound == 0 {
					bound = len(spec.Bytes)
				}
			}
			// Embedded data tables are skipped by range.
			inTable := func(off int) (int, bool) {
				for _, tab := range spec.Tables {
					start, end := int(tab.Off), int(tab.Off)+2*len(tab.Want)
					if off >= start && off < end {
						return end, true
					}
				}
				return 0, false
			}

			instrs := 0
			for off := 0; off < bound; {
				if end, ok := inTable(off); ok {
					off = end
					continue
				}
				in, size, ok := isa.Decode(spec.Bytes[off:bound])
				if !ok {
					t.Fatalf("%s+%#04x: image byte %#02x does not decode", spec.Name, off, spec.Bytes[off])
				}
				re := in.Encode(nil)
				if len(re) != size {
					t.Fatalf("%s+%#04x: %v decoded from %d bytes, re-encodes to %d", spec.Name, off, in, size, len(re))
				}
				for i, b := range re {
					if b != spec.Bytes[off+i] {
						t.Fatalf("%s+%#04x: %v re-encodes to % x, image has % x",
							spec.Name, off, in, re, spec.Bytes[off:off+size])
					}
				}
				instrs++
				off += size
			}
			if instrs == 0 {
				t.Fatalf("%s: no instructions round-tripped", spec.Name)
			}
		})
	}
}

// TestRoundTripCoversAllBuilders pins the sweep's breadth: every
// builder family must appear, so a new image cannot silently skip the
// round-trip (and lint) sweep.
func TestRoundTripCoversAllBuilders(t *testing.T) {
	specs, err := guest.LintImages()
	if err != nil {
		t.Fatalf("LintImages: %v", err)
	}
	got := map[string]bool{}
	for _, s := range specs {
		got[s.Name] = true
	}
	for _, want := range []string{
		"kernel", "kernel-padded", "kernel-tickful", "primitive",
		"handler-reinstall", "handler-continue", "handler-monitor", "handler-checkpoint",
		"scheduler", "scheduler-validate-ds", "scheduler-protect",
	} {
		if !got[want] {
			t.Errorf("LintImages is missing %q", want)
		}
	}
	for i := 0; i < guest.NumProcs; i++ {
		for _, prefix := range []string{"proc", "ring"} {
			name := fmt.Sprintf("%s-%d", prefix, i)
			if !got[name] {
				t.Errorf("LintImages is missing %q", name)
			}
		}
	}
}
