package isa

import "strings"

// Flags is the processor status word. Bit assignments are fixed by the
// ISA; unassigned bits are ignored by the processor but preserved by
// PUSHF/POPF/IRET so that an arbitrary (corrupted) value is still a
// legal flags word, as the self-stabilization model requires.
type Flags uint16

// Flag bits.
const (
	FlagCF Flags = 1 << 0 // carry
	FlagZF Flags = 1 << 1 // zero
	FlagSF Flags = 1 << 2 // sign
	FlagOF Flags = 1 << 3 // overflow
	FlagIF Flags = 1 << 4 // maskable interrupts enabled
	FlagDF Flags = 1 << 5 // string direction (set = downward)
	// FlagWP enables the memory-protection extension's store window for
	// RAM-resident code (ROM code is exempt, like supervisor mode).
	// Interrupt and exception delivery clear it; iret restores it.
	FlagWP Flags = 1 << 6
)

// Has reports whether all bits of f2 are set in f.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// With returns f with the bits of f2 set.
func (f Flags) With(f2 Flags) Flags { return f | f2 }

// Without returns f with the bits of f2 cleared.
func (f Flags) Without(f2 Flags) Flags { return f &^ f2 }

// Set returns f with the bits of f2 set or cleared according to on.
func (f Flags) Set(f2 Flags, on bool) Flags {
	if on {
		return f | f2
	}
	return f &^ f2
}

var flagNames = []struct {
	bit  Flags
	name string
}{
	{FlagCF, "CF"},
	{FlagZF, "ZF"},
	{FlagSF, "SF"},
	{FlagOF, "OF"},
	{FlagIF, "IF"},
	{FlagDF, "DF"},
	{FlagWP, "WP"},
}

func (f Flags) String() string {
	var parts []string
	for _, fn := range flagNames {
		if f.Has(fn.bit) {
			parts = append(parts, fn.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}
