package model

import "fmt"

// CheckRecurrence verifies a recurrence property of a deterministic
// system: along the trajectory from EVERY state, event occurs within
// maxGap steps, and every subsequent gap between events is at most
// maxGap (checked over horizon steps). This is the shape of the
// paper's watchdog guarantee: "starting from any state of the
// watchdog, a signal will be triggered within the desired interval".
func CheckRecurrence[S comparable](states []S, next func(S) S, event func(S) bool, maxGap, horizon int) error {
	for _, start := range states {
		s := start
		gap := 0
		for step := 0; step < horizon; step++ {
			s = next(s)
			gap++
			if event(s) {
				gap = 0
				continue
			}
			if gap > maxGap {
				return fmt.Errorf("from %v: no event within %d steps (at step %d)", start, maxGap, step)
			}
		}
	}
	return nil
}

// GreatestClosedSubset returns the largest subset of candidate states
// that is closed under transitions: states are removed until every
// remaining state's successors all remain. This is how a syntactic
// "looks legal" predicate (e.g. exactly one privilege in the shared
// variables) is refined into a sound legal set when auxiliary state
// (stale registers, program counters) can still push an execution out.
func (sys *System[S]) GreatestClosedSubset(candidate func(S) bool) map[S]bool {
	in := make(map[S]bool, len(sys.States))
	for _, s := range sys.States {
		if candidate(s) {
			in[s] = true
		}
	}
	for {
		changed := false
		for s := range in {
			for _, n := range sys.Next(s) {
				if !in[n] {
					delete(in, s)
					changed = true
					break
				}
			}
		}
		if !changed {
			return in
		}
	}
}
