package model

import "testing"

// protocolsUnderTest returns each protocol with the K the guest-layer
// analyses care about: the mailbox K-state ring uses k=16 (>= 2n-1 for
// every fleet size the cluster runs).
func protocolsUnderTest() []Protocol {
	return []Protocol{KStateProtocol(16), Dijkstra3Protocol(), Ghosh4Protocol()}
}

func TestProtocolDomains(t *testing.T) {
	n := 5
	d3 := Dijkstra3Protocol()
	for i := 0; i < n; i++ {
		if got := d3.Domain(i, n); len(got) != 3 {
			t.Errorf("dijkstra3 node %d domain %v, want 3 values", i, got)
		}
	}
	g4 := Ghosh4Protocol()
	checks := []struct {
		i    int
		want []uint8
	}{
		{0, []uint8{1, 3}},
		{1, []uint8{0, 1, 2, 3}},
		{n - 1, []uint8{0, 2}},
	}
	for _, c := range checks {
		got := g4.Domain(c.i, n)
		if len(got) != len(c.want) {
			t.Fatalf("ghosh4 node %d domain %v, want %v", c.i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("ghosh4 node %d domain %v, want %v", c.i, got, c.want)
				break
			}
		}
	}
}

// TestNormProjects verifies that each Norm is a projection: idempotent,
// and the identity on the node's canonical domain — the property the
// refinement argument's abstraction function relies on.
func TestNormProjects(t *testing.T) {
	n := 4
	for _, p := range protocolsUnderTest() {
		for i := 0; i < n; i++ {
			for v := 0; v < 1<<16; v += 257 { // sampled words, incl. 0
				once := p.Norm(i, n, uint16(v))
				if twice := p.Norm(i, n, uint16(once)); twice != once {
					t.Fatalf("%s node %d: Norm not idempotent on %#x: %d then %d",
						p.Name, i, v, once, twice)
				}
			}
			for _, v := range p.Domain(i, n) {
				if got := p.Norm(i, n, uint16(v)); got != v {
					t.Fatalf("%s node %d: Norm(%d) = %d, not identity on domain",
						p.Name, i, v, got)
				}
			}
		}
	}
}

// TestCompositeProtocolsVerify machine-checks closure and convergence
// of all three protocols under the adversarial central daemon, at every
// ring size the experiments run. The exact worst-case step counts are
// pinned as regressions: they are the model-derived convergence bounds
// the layered fuzz harness scales into machine steps.
func TestCompositeProtocolsVerify(t *testing.T) {
	worstD3 := map[int]int{3: 1, 4: 10, 5: 22, 6: 39}
	worstG4 := map[int]int{3: 0, 4: 3, 5: 8, 6: 15}
	sizes := []int{3, 4, 5}
	if !testing.Short() {
		sizes = append(sizes, 6)
	}
	for _, n := range sizes {
		for _, p := range []Protocol{Dijkstra3Protocol(), Ghosh4Protocol()} {
			sys := p.System(n)
			worst, err := sys.Verify(1 << 20)
			if err != nil {
				t.Errorf("%s n=%d: %v", p.Name, n, err)
				continue
			}
			want := worstD3[n]
			if p.Name == "ghosh4" {
				want = worstG4[n]
			}
			if worst != want {
				t.Errorf("%s n=%d: worst-case %d moves, want %d", p.Name, n, worst, want)
			}
		}
	}
	// The mailbox K-state ring at the guest's k=16 — state spaces grow
	// as 16^n, so stop at 4 nodes; RingSystem's tests cover the general
	// k/n grid.
	for _, n := range []int{3, 4} {
		if _, err := KStateProtocol(16).System(n).Verify(1 << 20); err != nil {
			t.Errorf("kstate(16) n=%d: %v", n, err)
		}
	}
}

// TestProtocolsDeadlockFree checks the liveness half of the token
// guarantee at the configuration level: every enumerable configuration
// holds at least one privilege. For Ghosh's chain this is exactly what
// the parity anchoring buys — with both ends even, the all-equal
// configuration would deadlock.
func TestProtocolsDeadlockFree(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		for _, p := range []Protocol{Dijkstra3Protocol(), Ghosh4Protocol(), KStateProtocol(8)} {
			sys := p.System(n)
			for _, s := range sys.States {
				if len(p.Privileges(s, n)) == 0 {
					t.Fatalf("%s n=%d: deadlocked configuration %v", p.Name, n, s)
				}
			}
		}
	}
}

// TestDelayKStateFairConvergence verifies the K-state mailbox ring at
// read/write atomicity: the syntactic legal set refined to its greatest
// closed subset is non-empty, and from every state every weakly-fair
// execution reaches it — k=5 >= 2n-1 at n=3, the bound from Dijkstra's
// algorithm in unsupportive (read/write) environments.
func TestDelayKStateFairConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("125k-state fairness analysis")
	}
	p := KStateProtocol(5)
	n := 3
	sys := p.DelaySystem(n)
	closed := sys.GreatestClosedSubset(sys.Legal)
	if len(closed) == 0 {
		t.Fatal("kstate(5): closed legal subset is empty")
	}
	legal := func(s MailboxState) bool { return closed[s] }
	if w, ok := CheckFairConvergence(sys.States, p.DelayLabeledNext(n), legal, n); !ok {
		t.Fatalf("kstate(5): fair illegal cycle reachable, witness %v", w)
	}
}

// TestDelayCompositeAtomicityBoundary documents the negative result the
// delay models expose: the 3-state ring and the 4-state chain are NOT
// self-stabilizing under fully adversarial read/write atomicity — the
// checker finds weakly-fair illegal cycles driven by stale register
// reads. (K-state with K >= 2n-1 survives; see the test above.) What
// still holds, and what the machine-level safety assertions lean on,
// is closure: the greatest closed subset of the legal states is
// non-empty, so mutual exclusion, once reached, is never abandoned.
// On the real scheduler the protocols do converge — a node's
// read-then-write runs inside one quantum almost always, so execution
// is near-composite, with at most one stale write per preemption.
func TestDelayCompositeAtomicityBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("118k-state fairness analysis")
	}
	p := Dijkstra3Protocol()
	n := 3
	sys := p.DelaySystem(n)
	closed := sys.GreatestClosedSubset(sys.Legal)
	if len(closed) == 0 {
		t.Fatal("dijkstra3: closed legal subset is empty")
	}
	legal := func(s MailboxState) bool { return closed[s] }
	if _, ok := CheckFairConvergence(sys.States, p.DelayLabeledNext(n), legal, n); ok {
		t.Fatal("dijkstra3 delay model unexpectedly fair-convergent; " +
			"the composite-atomicity boundary moved — update the layered docs")
	}
}

// TestObsSuccessorsCoverDelaySteps cross-checks the two delay-level
// relations: every PC-ful DelayStep either stutters observably or its
// observable effect appears among ObsSuccessors — the soundness lemma
// behind using ObsSuccessors as the refinement check's abstract step
// relation.
func TestObsSuccessorsCoverDelaySteps(t *testing.T) {
	n := 3
	for _, p := range protocolsUnderTest() {
		if p.Name == "kstate" {
			p = KStateProtocol(4) // keep the enumeration small
		}
		sys := p.DelaySystem(n)
		obs := func(s MailboxState) MailboxState {
			s.PC = RingState{}
			return s
		}
		for _, s := range sys.States {
			succs := p.ObsSuccessors(n, obs(s))
			for i := 0; i < n; i++ {
				got := obs(p.DelayStep(n, s, i))
				if got == obs(s) {
					continue // stutter
				}
				found := false
				for _, w := range succs {
					if w == got {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: DelayStep(%v, node %d) -> %v not in ObsSuccessors",
						p.Name, s, i, got)
				}
			}
		}
	}
}
