// Package model is a small explicit-state model checker used to verify
// the paper's hand-proved lemmas mechanically at full state-space
// coverage (where the simulator-based experiments sample): the
// self-stabilizing watchdog's firing bound, the NMI counter's delivery
// bound, and Dijkstra's K-state token ring — including the
// counterexamples that appear when the hardware or the K bound is
// weakened.
//
// Self-stabilization claims have a common shape: *from every state,
// every (fair) execution reaches the legal set within a bound, and the
// legal set is closed*. For deterministic systems this is a trajectory
// walk per state; for nondeterministic ones (an adversarial scheduler)
// it is the absence of any path of illegal states longer than the
// bound, which holds exactly when the illegal sub-graph is acyclic.
package model

import "fmt"

// System is a finite transition system over states of type S.
type System[S comparable] struct {
	// States enumerates the full state space (the "any initial
	// configuration" of self-stabilization).
	States []S
	// Next returns the successor states (one for deterministic
	// systems; the scheduler's choices for nondeterministic ones).
	// Next must be total: every state has at least one successor.
	Next func(S) []S
	// Legal reports whether a state belongs to the legal set.
	Legal func(S) bool
}

// CheckClosure verifies that the legal set is closed under transitions:
// no legal state has an illegal successor. It returns the first
// violating transition found.
func (sys *System[S]) CheckClosure() (from, to S, violated bool) {
	for _, s := range sys.States {
		if !sys.Legal(s) {
			continue
		}
		for _, n := range sys.Next(s) {
			if !sys.Legal(n) {
				return s, n, true
			}
		}
	}
	var zero S
	return zero, zero, false
}

// Heights computes the exact steps-to-legal distance of every state:
// d(s) = 0 for legal s and d(s) = 1 + max over successors d(n)
// otherwise. d is finite for every state iff the illegal sub-graph is
// acyclic; on failure ok is false and witness is a state whose height
// never resolved (it can reach an illegal cycle, or a successor
// outside the enumerated space). The height map is the canonical
// ranking function of the system — the static convergence certificates
// (imglint.RingCert) use it as their declared variant.
func (sys *System[S]) Heights() (heights map[S]int, witness S, ok bool) {
	const unknown = -1
	d := make(map[S]int, len(sys.States))
	for _, s := range sys.States {
		if sys.Legal(s) {
			d[s] = 0
		} else {
			d[s] = unknown
		}
	}
	// Fixpoint: at most |states| rounds; an illegal cycle never
	// resolves and is reported as a witness.
	for round := 0; round <= len(sys.States); round++ {
		changed := false
		for _, s := range sys.States {
			if d[s] != unknown {
				continue
			}
			worstSucc := 0
			resolved := true
			for _, n := range sys.Next(s) {
				dn, seen := d[n]
				if !seen {
					// Successor outside the enumerated space: treat as
					// illegal-unknown; the model must enumerate fully.
					resolved = false
					break
				}
				if dn == unknown {
					resolved = false
					break
				}
				if dn > worstSucc {
					worstSucc = dn
				}
			}
			if resolved {
				d[s] = 1 + worstSucc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, s := range sys.States {
		if d[s] == unknown {
			return nil, s, false
		}
	}
	var zero S
	return d, zero, true
}

// CheckConvergence verifies that from EVERY state, EVERY execution
// reaches a legal state within bound steps. It returns the worst-case
// number of steps observed and, on failure, a witness state from which
// some execution stays illegal past the bound (for nondeterministic
// systems this includes any illegal cycle).
//
// The check computes the exact height map (Heights); max d is the
// exact worst-case convergence bound.
func (sys *System[S]) CheckConvergence(bound int) (worst int, witness S, ok bool) {
	d, w, ok := sys.Heights()
	if !ok {
		return 0, w, false
	}
	worst = 0
	for _, s := range sys.States {
		if d[s] > worst {
			worst = d[s]
		}
	}
	var zero S
	if worst > bound {
		// Find a state realizing the worst case as the witness.
		for _, s := range sys.States {
			if d[s] == worst {
				return worst, s, false
			}
		}
	}
	return worst, zero, true
}

// Verify runs closure and convergence together, as the paper's proof
// obligations pair them, and formats a readable error.
func (sys *System[S]) Verify(bound int) (worst int, err error) {
	if from, to, bad := sys.CheckClosure(); bad {
		return 0, fmt.Errorf("legal set not closed: %v -> %v", from, to)
	}
	worst, witness, ok := sys.CheckConvergence(bound)
	if !ok {
		if worst == 0 {
			return 0, fmt.Errorf("some execution never converges (illegal cycle reachable from %v)", witness)
		}
		return worst, fmt.Errorf("worst-case convergence %d exceeds bound %d (witness %v)", worst, bound, witness)
	}
	return worst, nil
}
