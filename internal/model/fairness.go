package model

// Labeled is a transition annotated with the acting process, for
// fairness analysis.
type Labeled[S comparable] struct {
	To    S
	Actor int
}

// CheckFairConvergence verifies convergence under weak fairness for a
// nondeterministic system in which every actor's action is always
// enabled (each actor has a successor from every state): from every
// state, every weakly-fair execution reaches a legal state.
//
// A fair execution can avoid the legal set forever iff the illegal
// sub-graph contains a strongly connected component whose internal
// edges include steps by EVERY actor — inside such a component the
// scheduler can cycle forever while serving each actor infinitely
// often. If every illegal SCC lacks some actor's internal edges, weak
// fairness eventually forces that actor's step, which leaves the
// component; the SCC condensation is a DAG, so every fair execution
// descends into the legal set.
//
// It returns a state of the offending component when one exists.
func CheckFairConvergence[S comparable](states []S, next func(S) []Labeled[S], legal func(S) bool, actors int) (witness S, ok bool) {
	// Index the illegal states.
	idx := make(map[S]int, len(states))
	var nodes []S
	for _, s := range states {
		if legal(s) {
			continue
		}
		if _, dup := idx[s]; dup {
			continue
		}
		idx[s] = len(nodes)
		nodes = append(nodes, s)
	}
	n := len(nodes)
	adj := make([][]Labeled[int], n)
	for i, s := range nodes {
		for _, e := range next(s) {
			if j, ill := idx[e.To]; ill {
				adj[i] = append(adj[i], Labeled[int]{To: j, Actor: e.Actor})
			}
		}
	}

	// Iterative Tarjan SCC.
	const undef = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = undef
		comp[i] = undef
	}
	var stack []int
	counter := 0
	ncomp := 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != undef {
			continue
		}
		frames := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].To
				f.ei++
				if index[w] == undef {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}

	// For each SCC, check whether it is cyclic and whether its internal
	// edges cover every actor.
	type info struct {
		size     int
		hasCycle bool
		actors   map[int]bool
		sample   int
	}
	comps := make([]info, ncomp)
	for i := range comps {
		comps[i].actors = make(map[int]bool)
		comps[i].sample = -1
	}
	for v := 0; v < n; v++ {
		c := comp[v]
		comps[c].size++
		if comps[c].sample < 0 {
			comps[c].sample = v
		}
		for _, e := range adj[v] {
			if comp[e.To] == c {
				comps[c].actors[e.Actor] = true
				if e.To == v || comps[c].size > 0 {
					comps[c].hasCycle = comps[c].hasCycle || e.To == v
				}
			}
		}
	}
	// Multi-node SCCs are cyclic by definition.
	for v := 0; v < n; v++ {
		if comps[comp[v]].size > 1 {
			comps[comp[v]].hasCycle = true
		}
	}
	for _, c := range comps {
		if !c.hasCycle {
			continue
		}
		if len(c.actors) == actors {
			return nodes[c.sample], false
		}
	}
	var zero S
	return zero, true
}
