package model

// The mailbox token-ring protocols: Dijkstra's K-state and 3-state
// rings and Ghosh's 4-state chain, modelled at the same abstraction
// level as internal/guest runs them. Each guest node owns one word
// ("mailbox slot") in a shared RAM region; a node reads a neighbour's
// slot, projects it onto the owner's value domain, parks the result in
// a register word of its own data segment, and finally performs the
// guarded test-and-write on its own slot. The models below cover both
// granularities: the composite-atomicity system (guard and move in one
// step, the classic proofs' setting) and the read/write-atomicity
// "delay" system whose states carry the parked register words and a
// per-node program counter — the granularity the scheduler actually
// provides, since a node can be preempted between its loads and its
// write.

// Protocol describes one token-passing protocol per node role. All
// functions are total over arbitrary inputs: Norm projects any 16-bit
// word a node may read from slot i onto slot i's value domain (the
// guest applies the identical projection in assembly), and Guards
// consumes canonical values only.
type Protocol struct {
	// Name identifies the protocol ("kstate", "dijkstra3", "ghosh4").
	Name string
	// K bounds the per-slot value domain: canonical values are a subset
	// of 0..K-1.
	K uint8
	// UsesLeft and UsesRight report whether node i of n reads that
	// neighbour's slot (left is (i-1+n)%n, right is (i+1)%n; chain
	// protocols simply never use the wrapped side).
	UsesLeft  func(i, n int) bool
	UsesRight func(i, n int) bool
	// Norm projects an arbitrary word read from node i's slot onto node
	// i's value domain. It is idempotent and acts as the identity on
	// canonical values.
	Norm func(i, n int, v uint16) uint8
	// Guards returns the new slot values of node i's enabled guarded
	// moves, one entry per held privilege (empty when none). Privilege
	// counting is per guard, not per node: a Ghosh interior machine
	// watching both neighbours can hold two privileges at once. Every
	// protocol here writes the same value whichever guard fired, so a
	// node's program tests its guards in order and performs one store.
	// Unused neighbour sides receive zero.
	Guards func(i, n int, self, left, right uint8) []uint8
}

// KStateProtocol is Dijkstra's K-state unidirectional ring in mailbox
// form: every node reads only its left (predecessor) slot; the root
// (node 0) increments modulo k when its value matches its
// predecessor's, every other node copies a differing predecessor.
// K >= 2n-1 keeps the ring self-stabilizing even under read/write
// atomicity (the guest uses k=16 for up to 8 nodes).
func KStateProtocol(k uint8) Protocol {
	return Protocol{
		Name:      "kstate",
		K:         k,
		UsesLeft:  func(i, n int) bool { return true },
		UsesRight: func(i, n int) bool { return false },
		Norm:      func(i, n int, v uint16) uint8 { return uint8(v % uint16(k)) },
		Guards: func(i, n int, self, left, right uint8) []uint8 {
			if i == 0 {
				if self == left {
					return []uint8{(self + 1) % k}
				}
				return nil
			}
			if self != left {
				return []uint8{left}
			}
			return nil
		},
	}
}

// mod3 projects a word onto 0..2 without division, exactly as the
// guest's instruction sequence does: mask to 0..3, then map 3 to 0.
func mod3(v uint16) uint8 {
	m := uint8(v & 3)
	if m == 3 {
		return 0
	}
	return m
}

// Dijkstra3Protocol is Dijkstra's 3-state ring: values modulo 3,
// bidirectional reads. The bottom (node 0) moves by +2 when its
// successor is one ahead; the top (node n-1) moves to left+1 when its
// two neighbours agree and it is not already one ahead of them; every
// other node moves to self+1 when either neighbour is one ahead (one
// rule, hence one privilege, even when both sides fire). Note the ring
// topology: the top's right neighbour is the bottom.
func Dijkstra3Protocol() Protocol {
	return Protocol{
		Name:      "dijkstra3",
		K:         3,
		UsesLeft:  func(i, n int) bool { return i != 0 },
		UsesRight: func(i, n int) bool { return true },
		Norm:      func(i, n int, v uint16) uint8 { return mod3(v) },
		Guards: func(i, n int, self, left, right uint8) []uint8 {
			switch i {
			case 0:
				if (self+1)%3 == right {
					return []uint8{(self + 2) % 3}
				}
			case n - 1:
				if left == right && (left+1)%3 != self {
					return []uint8{(left + 1) % 3}
				}
			default:
				if (self+1)%3 == left || (self+1)%3 == right {
					return []uint8{(self + 1) % 3}
				}
			}
			return nil
		},
	}
}

// Ghosh4Protocol is Ghosh's 4-state chain: values modulo 4 with
// parity-anchored end domains — the bottom (node 0) holds odd values
// {1,3}, the top (node n-1) even values {0,2}, interior nodes any of
// 0..3. A node holds a privilege per neighbour that is one ahead of it
// (the ends each watch their single neighbour; interior nodes watch
// both and can hold two privileges). The ends move by +2, preserving
// their anchored parity; an interior node copies the neighbour that is
// one ahead (self+1 — the same value whichever side fired). The
// anchoring is what rules out the all-even deadlock configuration.
// There is no wraparound: the chain's ends never read across.
func Ghosh4Protocol() Protocol {
	return Protocol{
		Name:      "ghosh4",
		K:         4,
		UsesLeft:  func(i, n int) bool { return i != 0 },
		UsesRight: func(i, n int) bool { return i != n-1 },
		Norm: func(i, n int, v uint16) uint8 {
			switch i {
			case 0:
				return uint8(v&2) | 1
			case n - 1:
				return uint8(v & 2)
			default:
				return uint8(v & 3)
			}
		},
		Guards: func(i, n int, self, left, right uint8) []uint8 {
			var out []uint8
			switch i {
			case 0:
				if right == (self+1)%4 {
					out = append(out, (self+2)%4)
				}
			case n - 1:
				if left == (self+1)%4 {
					out = append(out, (self+2)%4)
				}
			default:
				if left == (self+1)%4 {
					out = append(out, (self+1)%4)
				}
				if right == (self+1)%4 {
					out = append(out, (self+1)%4)
				}
			}
			return out
		},
	}
}

// Domain returns node i's canonical value domain in ascending order.
func (p Protocol) Domain(i, n int) []uint8 {
	var out []uint8
	for v := 0; v < int(p.K); v++ {
		if p.Norm(i, n, uint16(v)) == uint8(v) {
			out = append(out, uint8(v))
		}
	}
	return out
}

// neighbours returns the left and right indices of node i on the ring.
func neighbours(i, n int) (l, r int) { return (i + n - 1) % n, (i + 1) % n }

// guardsAt evaluates node i's guards in configuration x.
func (p Protocol) guardsAt(x RingState, i, n int) []uint8 {
	l, r := neighbours(i, n)
	var left, right uint8
	if p.UsesLeft(i, n) {
		left = x[l]
	}
	if p.UsesRight(i, n) {
		right = x[r]
	}
	return p.Guards(i, n, x[i], left, right)
}

// Privileges returns the privileged nodes of configuration x (entries
// 0..n-1 used; values must be canonical), one entry per held guard —
// a node watching both neighbours may appear twice.
func (p Protocol) Privileges(x RingState, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		for range p.guardsAt(x, i, n) {
			out = append(out, i)
		}
	}
	return out
}

// System builds the protocol's n-node composite-atomicity system under
// the adversarial central daemon: any held privilege may perform its
// guarded move in one atomic step. Legal states have exactly one
// privilege. Next is total — a deadlocked configuration self-loops, so
// closure/convergence checking flags it as a reachable illegal cycle
// rather than silently skipping it.
func (p Protocol) System(n int) *System[RingState] {
	if n < 2 || n > MaxRingMembers {
		panic("model: protocol ring size out of range")
	}
	var states []RingState
	var enum func(i int, cur RingState)
	enum = func(i int, cur RingState) {
		if i == n {
			states = append(states, cur)
			return
		}
		for _, v := range p.Domain(i, n) {
			cur[i] = v
			enum(i+1, cur)
		}
	}
	enum(0, RingState{})
	next := func(s RingState) []RingState {
		var out []RingState
		for i := 0; i < n; i++ {
			for _, v := range p.guardsAt(s, i, n) {
				ns := s
				ns[i] = v
				out = append(out, ns)
			}
		}
		if len(out) == 0 {
			out = append(out, s) // deadlock: visible as an illegal cycle
		}
		return out
	}
	legal := func(s RingState) bool { return len(p.Privileges(s, n)) == 1 }
	return &System[RingState]{States: states, Next: next, Legal: legal}
}

// Dijkstra3System is the n-node 3-state ring under composite atomicity.
func Dijkstra3System(n int) *System[RingState] { return Dijkstra3Protocol().System(n) }

// Ghosh4System is the n-node 4-state chain under composite atomicity.
func Ghosh4System(n int) *System[RingState] { return Ghosh4Protocol().System(n) }

// MailboxState is a protocol configuration under read/write atomicity,
// as the scheduler executes it: the mailbox slots X, each node's parked
// register reads of its left and right neighbours (only the sides the
// node uses are meaningful), and a per-node program counter over the
// node's action sequence (loads in left-right order, then the guarded
// write).
type MailboxState struct {
	X    RingState
	RegL RingState
	RegR RingState
	PC   RingState
}

// Phases returns the length of node i's atomic-action sequence.
func (p Protocol) Phases(i, n int) int {
	ph := 1 // the guarded write
	if p.UsesLeft(i, n) {
		ph++
	}
	if p.UsesRight(i, n) {
		ph++
	}
	return ph
}

// DelayStep performs node i's next atomic action: a normalized
// neighbour load into the corresponding register, or the guarded
// test-and-write using the (possibly stale) registers.
func (p Protocol) DelayStep(n int, s MailboxState, i int) MailboxState {
	ns := s
	l, r := neighbours(i, n)
	phase := 0
	if p.UsesLeft(i, n) {
		if int(s.PC[i]) == phase {
			ns.RegL[i] = p.Norm(l, n, uint16(s.X[l]))
			ns.PC[i]++
			return ns
		}
		phase++
	}
	if p.UsesRight(i, n) {
		if int(s.PC[i]) == phase {
			ns.RegR[i] = p.Norm(r, n, uint16(s.X[r]))
			ns.PC[i]++
			return ns
		}
	}
	if g := p.Guards(i, n, s.X[i], s.RegL[i], s.RegR[i]); len(g) > 0 {
		ns.X[i] = g[0]
	}
	ns.PC[i] = 0
	return ns
}

// DelaySystem builds the protocol's n-node read/write-atomicity system
// under the adversarial daemon: any node may take its next atomic
// action. The syntactic legality candidate ("one privilege in X") is
// generally NOT closed here — stale registers can re-create privileges
// — so callers refine it with GreatestClosedSubset, exactly as for
// RWRingSystem.
func (p Protocol) DelaySystem(n int) *System[MailboxState] {
	states := p.delayStates(n)
	next := func(s MailboxState) []MailboxState {
		out := make([]MailboxState, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, p.DelayStep(n, s, i))
		}
		return out
	}
	legal := func(s MailboxState) bool { return len(p.Privileges(s.X, n)) == 1 }
	return &System[MailboxState]{States: states, Next: next, Legal: legal}
}

// DelayLabeledNext returns the actor-labelled transition function of
// the delay system, for fairness analysis.
func (p Protocol) DelayLabeledNext(n int) func(MailboxState) []Labeled[MailboxState] {
	return func(s MailboxState) []Labeled[MailboxState] {
		out := make([]Labeled[MailboxState], 0, n)
		for i := 0; i < n; i++ {
			out = append(out, Labeled[MailboxState]{To: p.DelayStep(n, s, i), Actor: i})
		}
		return out
	}
}

// delayStates enumerates the delay system's state space: canonical slot
// values, registers over the watched neighbour's domain (zero for
// unused sides), and program counters over each node's action sequence.
func (p Protocol) delayStates(n int) []MailboxState {
	var states []MailboxState
	var enum func(i int, cur MailboxState)
	enum = func(i int, cur MailboxState) {
		if i == n {
			states = append(states, cur)
			return
		}
		l, r := neighbours(i, n)
		regLs := []uint8{0}
		if p.UsesLeft(i, n) {
			regLs = p.Domain(l, n)
		}
		regRs := []uint8{0}
		if p.UsesRight(i, n) {
			regRs = p.Domain(r, n)
		}
		for _, x := range p.Domain(i, n) {
			cur.X[i] = x
			for _, rl := range regLs {
				cur.RegL[i] = rl
				for _, rr := range regRs {
					cur.RegR[i] = rr
					for pc := 0; pc < p.Phases(i, n); pc++ {
						cur.PC[i] = uint8(pc)
						enum(i+1, cur)
					}
				}
			}
		}
	}
	enum(0, MailboxState{})
	return states
}

// ObsSuccessors returns every abstract state reachable from s by one
// observable action of one node, ignoring program counters: a
// normalized neighbour load into the node's register word, or the
// node's guarded write. The refinement tests use this as the abstract
// step relation a machine trace must stutter-refine: it is a sound
// superset of the PC-ful delay relation's observable effects, because
// each node's observable behaviour is a function of the observable
// words alone (the guest reloads its registers from RAM immediately
// before the test-and-write).
func (p Protocol) ObsSuccessors(n int, s MailboxState) []MailboxState {
	var out []MailboxState
	for i := 0; i < n; i++ {
		l, r := neighbours(i, n)
		if p.UsesLeft(i, n) {
			ns := s
			ns.RegL[i] = p.Norm(l, n, uint16(s.X[l]))
			out = append(out, ns)
		}
		if p.UsesRight(i, n) {
			ns := s
			ns.RegR[i] = p.Norm(r, n, uint16(s.X[r]))
			out = append(out, ns)
		}
		for _, v := range p.Guards(i, n, s.X[i], s.RegL[i], s.RegR[i]) {
			ns := s
			ns.X[i] = v
			out = append(out, ns)
		}
	}
	return out
}
