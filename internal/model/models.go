package model

// Concrete models of the repository's stabilization-critical components
// at the same abstraction level as the paper's proofs.

// WatchdogStates enumerates the watchdog countdown register including
// corrupted out-of-range values up to maxCorrupt.
func WatchdogStates(period, maxCorrupt uint32) []uint32 {
	var out []uint32
	for c := uint32(0); c <= maxCorrupt; c++ {
		out = append(out, c)
	}
	return out
}

// WatchdogNext is one tick of dev.Watchdog's register (clamp, fire at
// zero, reload).
func WatchdogNext(period uint32) func(uint32) uint32 {
	return func(c uint32) uint32 {
		if c >= period {
			c = period - 1
		}
		if c == 0 {
			return period - 1 // fire and reload
		}
		return c - 1
	}
}

// WatchdogFired reports the firing states (the reload instant).
func WatchdogFired(period uint32) func(uint32) bool {
	return func(c uint32) bool { return c == period-1 }
}

// NMIState is the abstract processor NMI machinery: the paper's
// countdown register plus the latched pin; the stock variant uses the
// in-NMI latch instead.
type NMIState struct {
	Counter uint16
	Pin     bool
	InNMI   bool
}

// NMIStates enumerates the machinery's state space for a given counter
// maximum (including corrupted counter values up to maxCorrupt).
func NMIStates(maxCorrupt uint16) []NMIState {
	var out []NMIState
	for c := uint16(0); c <= maxCorrupt; c++ {
		for _, pin := range []bool{false, true} {
			for _, in := range []bool{false, true} {
				out = append(out, NMIState{c, pin, in})
			}
		}
	}
	return out
}

// NMINextCounter is one tick of the paper's counter hardware with the
// watchdog holding the pin (worst case for delivery): delivery when
// counter is zero loads the maximum; otherwise the counter decrements.
func NMINextCounter(max uint16) func(NMIState) NMIState {
	return func(s NMIState) NMIState {
		if s.Pin && s.Counter == 0 {
			return NMIState{Counter: max, Pin: false, InNMI: s.InNMI}
		}
		next := s.Counter
		if next > 0 {
			next--
		}
		return NMIState{Counter: next, Pin: true, InNMI: s.InNMI}
	}
}

// NMIDeliveredCounter marks delivery instants for the counter variant.
func NMIDeliveredCounter(max uint16) func(NMIState) bool {
	return func(s NMIState) bool { return s.Counter == max && !s.Pin }
}

// NMINextStock is the stock latch: delivery only when not in an NMI;
// nothing in the model ever executes iret (the arbitrary-state hazard).
func NMINextStock() func(NMIState) NMIState {
	return func(s NMIState) NMIState {
		if s.Pin && !s.InNMI {
			return NMIState{Pin: false, InNMI: true}
		}
		return NMIState{Counter: s.Counter, Pin: true, InNMI: s.InNMI}
	}
}

// NMIDeliveredStock marks delivery instants for the stock variant.
func NMIDeliveredStock() func(NMIState) bool {
	return func(s NMIState) bool { return s.InNMI && !s.Pin }
}

// RingState is Dijkstra's K-state ring under composite atomicity: the
// shared variables of up to MaxRingMembers members (unused entries stay
// zero so states remain comparable).
type RingState [6]uint8

// MaxRingMembers bounds the general ring model's size.
const MaxRingMembers = 6

// ringPrivilegesN returns the privileged members of the n-member
// unidirectional ring (member 0 is the root).
func ringPrivilegesN(x RingState, n int) []int {
	var out []int
	if x[0] == x[n-1] {
		out = append(out, 0)
	}
	for i := 1; i < n; i++ {
		if x[i] != x[i-1] {
			out = append(out, i)
		}
	}
	return out
}

// ringPrivileges is the 3-member case used by the guest-workload
// analyses.
func ringPrivileges(x RingState) []int { return ringPrivilegesN(x, 3) }

// RingSystem builds the n-member composite-atomicity ring under the
// adversarial central daemon: any privileged member may move. Legal
// states have exactly one privilege (the classic legitimate set, which
// is closed).
func RingSystem(k uint8, n int) *System[RingState] {
	if n < 2 || n > MaxRingMembers {
		panic("model: ring size out of range")
	}
	var states []RingState
	var enum func(i int, cur RingState)
	enum = func(i int, cur RingState) {
		if i == n {
			states = append(states, cur)
			return
		}
		for v := uint8(0); v < k; v++ {
			cur[i] = v
			enum(i+1, cur)
		}
	}
	enum(0, RingState{})
	next := func(s RingState) []RingState {
		var out []RingState
		for _, p := range ringPrivilegesN(s, n) {
			ns := s
			if p == 0 {
				ns[0] = (s[n-1] + 1) % k
			} else {
				ns[p] = s[p-1]
			}
			out = append(out, ns)
		}
		// At least one member is always privileged in this ring, so
		// next is total.
		return out
	}
	legal := func(s RingState) bool { return len(ringPrivilegesN(s, n)) == 1 }
	return &System[RingState]{States: states, Next: next, Legal: legal}
}

// RWRingState is the ring under read/write atomicity, as the scheduler
// actually executes it: each member also carries the register holding
// its (possibly stale) read of its predecessor, and a two-phase program
// counter (0 = about to read, 1 = about to test-and-write).
type RWRingState struct {
	X   [3]uint8
	Reg [3]uint8
	PC  [3]uint8
}

// rwPrivileges returns the privileged members for the 3-member RW ring.
func rwPrivileges(x [3]uint8) []int {
	var rs RingState
	copy(rs[:], x[:])
	return ringPrivilegesN(rs, 3)
}

// rwRingStep performs member i's next atomic step: a read of its
// predecessor into its register, or the test-and-write using the
// (possibly stale) register.
func rwRingStep(k uint8, s RWRingState, i int) RWRingState {
	n := s
	prev := (i + 2) % 3
	if s.PC[i] == 0 { // read predecessor
		n.Reg[i] = s.X[prev]
		n.PC[i] = 1
		return n
	}
	if i == 0 {
		if s.Reg[0] == s.X[0] {
			n.X[0] = (s.Reg[0] + 1) % k
		}
	} else {
		if s.Reg[i] != s.X[i] {
			n.X[i] = s.Reg[i]
		}
	}
	n.PC[i] = 0
	return n
}

// RWRingLabeledNext returns the actor-labeled transition function for
// fairness analysis.
func RWRingLabeledNext(k uint8) func(RWRingState) []Labeled[RWRingState] {
	return func(s RWRingState) []Labeled[RWRingState] {
		out := make([]Labeled[RWRingState], 0, 3)
		for i := 0; i < 3; i++ {
			out = append(out, Labeled[RWRingState]{To: rwRingStep(k, s, i), Actor: i})
		}
		return out
	}
}

// RWRingSystem builds the read/write-atomicity ring under the
// adversarial daemon: any member may take its next atomic step.
func RWRingSystem(k uint8) *System[RWRingState] {
	var states []RWRingState
	var xs []uint8
	for v := uint8(0); v < k; v++ {
		xs = append(xs, v)
	}
	for _, a := range xs {
		for _, b := range xs {
			for _, c := range xs {
				for _, ra := range xs {
					for _, rb := range xs {
						for _, rc := range xs {
							for pc := 0; pc < 8; pc++ {
								states = append(states, RWRingState{
									X:   [3]uint8{a, b, c},
									Reg: [3]uint8{ra, rb, rc},
									PC:  [3]uint8{uint8(pc) & 1, uint8(pc>>1) & 1, uint8(pc>>2) & 1},
								})
							}
						}
					}
				}
			}
		}
	}
	next := func(s RWRingState) []RWRingState {
		out := make([]RWRingState, 0, 3)
		for i := 0; i < 3; i++ {
			out = append(out, rwRingStep(k, s, i))
		}
		return out
	}
	// The syntactic candidate ("one privilege in X") is NOT closed
	// here — stale registers can re-create privileges — so callers
	// refine it with GreatestClosedSubset.
	legal := func(s RWRingState) bool { return len(rwPrivileges(s.X)) == 1 }
	return &System[RWRingState]{States: states, Next: next, Legal: legal}
}

// RecoveryState abstracts the checkpoint-vs-reinstall comparison of
// experiment E9 to its essence: the guest is either legal or corrupt,
// and the recovery source (a snapshot, or ROM) is either pristine or
// poisoned.
type RecoveryState struct {
	GuestOK bool
	// SourceOK is the recovery source's integrity. For ROM it is
	// immutable by construction; for a snapshot store it tracks
	// whatever was last checkpointed.
	SourceOK bool
}

// CheckpointSystem is rollback recovery after the last fault: the
// scheduler (environment) chooses between taking a snapshot (source :=
// guest) and rolling back (guest := source). Legal states have a legal
// guest. The poisoned-pair state {bad, bad} is an absorbing illegal
// cycle — the mechanical core of "checkpointing cannot withstand any
// combination of transient faults".
func CheckpointSystem() *System[RecoveryState] {
	states := []RecoveryState{
		{true, true}, {true, false}, {false, true}, {false, false},
	}
	next := func(s RecoveryState) []RecoveryState {
		return []RecoveryState{
			{GuestOK: s.GuestOK, SourceOK: s.GuestOK},   // snapshot
			{GuestOK: s.SourceOK, SourceOK: s.SourceOK}, // rollback
		}
	}
	legal := func(s RecoveryState) bool { return s.GuestOK }
	return &System[RecoveryState]{States: states, Next: next, Legal: legal}
}

// ReinstallTick is the paper's design in the same abstraction: the
// recovery source is ROM (never poisoned), and the watchdog FORCES a
// reinstall every period ticks — recovery is not a scheduling choice
// the adversary can withhold, which is exactly what distinguishes it
// from the checkpoint system above.
type ReinstallTick struct {
	GuestOK bool
	Counter uint32
}

// ReinstallSystem builds the deterministic watchdog-reinstall
// abstraction with the given period.
func ReinstallSystem(period uint32) *System[ReinstallTick] {
	var states []ReinstallTick
	for c := uint32(0); c < period; c++ {
		states = append(states, ReinstallTick{true, c}, ReinstallTick{false, c})
	}
	next := func(s ReinstallTick) []ReinstallTick {
		if s.Counter == 0 {
			return []ReinstallTick{{GuestOK: true, Counter: period - 1}}
		}
		return []ReinstallTick{{GuestOK: s.GuestOK, Counter: s.Counter - 1}}
	}
	legal := func(s ReinstallTick) bool { return s.GuestOK }
	return &System[ReinstallTick]{States: states, Next: next, Legal: legal}
}
