package model_test

import (
	"fmt"

	"ssos/internal/model"
)

// Example_ring verifies Dijkstra's K-state token ring exhaustively
// under the adversarial central daemon — closure of the one-privilege
// set and convergence from every one of the K^n states — and reports
// the exact worst-case bound the model checker finds.
func Example_ring() {
	sys := model.RingSystem(3, 4) // K=3 states, 4 members
	worst, err := sys.Verify(1 << 20)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("converges from all %d states; worst case %d moves\n",
		len(sys.States), worst)
	// Output: converges from all 81 states; worst case 13 moves
}

// Example_watchdog checks the paper's watchdog guarantee over the full
// register space, corrupted values included.
func Example_watchdog() {
	const period = 16
	err := model.CheckRecurrence(
		model.WatchdogStates(period, period*4),
		model.WatchdogNext(period),
		model.WatchdogFired(period),
		period, period*6)
	fmt.Println("verified:", err == nil)
	// Output: verified: true
}
