package model

import "testing"

// TestWatchdogRecurrenceExhaustive mechanically verifies the paper's
// watchdog guarantee over the FULL register state space, corruption
// included: "Starting from any state of the watchdog, a signal will be
// triggered within the desired interval time and no premature signal
// will be triggered thereafter."
func TestWatchdogRecurrenceExhaustive(t *testing.T) {
	const period = 32
	states := WatchdogStates(period, period*4)
	if err := CheckRecurrence(states, WatchdogNext(period), WatchdogFired(period),
		period, period*6); err != nil {
		t.Fatal(err)
	}
}

// TestNMICounterDeliveryExhaustive mechanically verifies the paper's
// Lemma 3.1 argument at the hardware level: with the counter machinery
// and the watchdog holding the pin, an NMI is delivered within
// counter-max+1 ticks from EVERY machinery state.
func TestNMICounterDeliveryExhaustive(t *testing.T) {
	const max = 24
	const regMax = max * 2 // the physical register's largest value
	states := NMIStates(regMax)
	// Force the worst case: pin held from the start.
	for i := range states {
		states[i].Pin = true
	}
	// First delivery is bounded by the largest value the register can
	// hold after corruption (regMax), not by the reload value; the
	// steady-state gap is max+1. CheckRecurrence verifies the worst of
	// the two over the whole space.
	if err := CheckRecurrence(states, NMINextCounter(max), NMIDeliveredCounter(max),
		int(regMax)+1, int(max)*6); err != nil {
		t.Fatal(err)
	}
}

// TestStockLatchCounterexample confirms the motivating hazard is real
// in the model too: with the stock in-NMI latch and no iret, the state
// space contains configurations from which delivery never happens.
func TestStockLatchCounterexample(t *testing.T) {
	states := NMIStates(4)
	for i := range states {
		states[i].Pin = true
	}
	err := CheckRecurrence(states, NMINextStock(), NMIDeliveredStock(), 8, 64)
	if err == nil {
		t.Fatal("stock latch should have a never-delivering state")
	}
}

// TestRingConvergesCompositeAtomicity verifies Dijkstra's theorem for
// the 3-member unidirectional ring under the adversarial central
// daemon, exhaustively: closure of the one-privilege set and
// convergence from all K^3 states.
func TestRingConvergesCompositeAtomicity(t *testing.T) {
	for _, k := range []uint8{3, 4, 8} {
		sys := RingSystem(k, 3)
		worst, err := sys.Verify(1 << 20)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		t.Logf("K=%d: worst-case convergence %d moves over %d states", k, worst, len(sys.States))
	}
}

// TestRingBoundIsExactlyNMinusOne rediscovers Dijkstra's bound
// mechanically: under the adversarial central daemon the n-member
// K-state ring converges for K = n-1 and has a genuine illegal cycle
// for K = n-2. (For n=3 even K=2 converges, so the negative half
// starts at n=4.)
func TestRingBoundIsExactlyNMinusOne(t *testing.T) {
	for n := 3; n <= 6; n++ {
		k := uint8(n - 1)
		sys := RingSystem(k, n)
		worst, err := sys.Verify(1 << 20)
		if err != nil {
			t.Fatalf("n=%d K=%d should converge: %v", n, k, err)
		}
		t.Logf("n=%d K=%d: worst-case convergence %d moves over %d states", n, k, worst, len(sys.States))
	}
	for n := 4; n <= 6; n++ {
		k := uint8(n - 2)
		sys := RingSystem(k, n)
		if _, err := sys.Verify(1 << 20); err == nil {
			t.Fatalf("n=%d K=%d should have an illegal cycle", n, k)
		}
	}
}

// TestRWRingConvergesUnderFairness verifies the ring AS THE SCHEDULER
// ACTUALLY RUNS IT — read/write atomicity, stale registers and all —
// under every weakly-fair interleaving, for the K used by the guest
// workload's bound (K >= 2n-1 = 5).
func TestRWRingConvergesUnderFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	const k = 5
	sys := RWRingSystem(k)
	closed := sys.GreatestClosedSubset(sys.Legal)
	if len(closed) == 0 {
		t.Fatal("no closed legitimate set exists")
	}
	legal := func(s RWRingState) bool { return closed[s] }
	witness, ok := CheckFairConvergence(sys.States, RWRingLabeledNext(k), legal, 3)
	if !ok {
		t.Fatalf("fair illegal cycle reachable, e.g. from %+v", witness)
	}
	t.Logf("K=%d: %d states, closed legitimate set of %d states, all fair executions converge",
		k, len(sys.States), len(closed))
}

// TestRWRingClosedSetNonTrivial sanity-checks the refinement: the
// syntactic one-privilege candidate is strictly larger than its
// greatest closed subset (stale registers can push an execution out),
// which is exactly why the refinement step exists.
func TestRWRingClosedSetNonTrivial(t *testing.T) {
	const k = 3
	sys := RWRingSystem(k)
	candidate := 0
	for _, s := range sys.States {
		if sys.Legal(s) {
			candidate++
		}
	}
	closed := sys.GreatestClosedSubset(sys.Legal)
	if len(closed) >= candidate {
		t.Fatalf("refinement removed nothing: %d candidate, %d closed", candidate, len(closed))
	}
	if len(closed) == 0 {
		t.Fatal("closed set empty at K=3")
	}
	t.Logf("K=%d: candidate %d -> closed %d", k, candidate, len(closed))
}

// TestClosureViolationDetected exercises the checker's failure path on
// a deliberately broken system.
func TestClosureViolationDetected(t *testing.T) {
	sys := &System[int]{
		States: []int{0, 1, 2},
		Next:   func(s int) []int { return []int{(s + 1) % 3} },
		Legal:  func(s int) bool { return s == 0 }, // 0 -> 1 leaves the set
	}
	if _, _, bad := sys.CheckClosure(); !bad {
		t.Fatal("closure violation not detected")
	}
	if _, err := sys.Verify(10); err == nil {
		t.Fatal("Verify should fail on closure violation")
	}
}

// TestConvergenceCycleDetected exercises the illegal-cycle failure path.
func TestConvergenceCycleDetected(t *testing.T) {
	sys := &System[int]{
		States: []int{0, 1, 2},
		Next: func(s int) []int {
			if s == 0 {
				return []int{0}
			}
			return []int{3 - s} // 1 <-> 2 cycle, both illegal
		},
		Legal: func(s int) bool { return s == 0 },
	}
	if _, _, ok := sys.CheckConvergence(10); ok {
		t.Fatal("illegal cycle not detected")
	}
}

// TestConvergenceBoundExceeded exercises the bound-violation path.
func TestConvergenceBoundExceeded(t *testing.T) {
	// A chain 5 -> 4 -> ... -> 0 (legal): worst case 5 steps.
	sys := &System[int]{
		States: []int{0, 1, 2, 3, 4, 5},
		Next: func(s int) []int {
			if s == 0 {
				return []int{0}
			}
			return []int{s - 1}
		},
		Legal: func(s int) bool { return s == 0 },
	}
	worst, _, ok := sys.CheckConvergence(3)
	if ok || worst != 5 {
		t.Fatalf("worst=%d ok=%v, want 5,false", worst, ok)
	}
	if worst, err := sys.Verify(5); err != nil || worst != 5 {
		t.Fatalf("Verify: %d, %v", worst, err)
	}
}

// TestFairConvergenceUnfairCycleTolerated verifies the fairness filter:
// a cycle driven by a single actor (an unfair schedule) is not a
// counterexample when another actor's step escapes.
func TestFairConvergenceUnfairCycleTolerated(t *testing.T) {
	// States 1,2 illegal; actor 0 cycles 1<->2, actor 1 escapes to 0.
	next := func(s int) []Labeled[int] {
		switch s {
		case 1:
			return []Labeled[int]{{To: 2, Actor: 0}, {To: 0, Actor: 1}}
		case 2:
			return []Labeled[int]{{To: 1, Actor: 0}, {To: 0, Actor: 1}}
		}
		return []Labeled[int]{{To: 0, Actor: 0}, {To: 0, Actor: 1}}
	}
	legal := func(s int) bool { return s == 0 }
	if _, ok := CheckFairConvergence([]int{0, 1, 2}, next, legal, 2); !ok {
		t.Fatal("unfair cycle should be tolerated under weak fairness")
	}
	// But a cycle served by both actors is a true counterexample.
	next2 := func(s int) []Labeled[int] {
		switch s {
		case 1:
			return []Labeled[int]{{To: 2, Actor: 0}, {To: 2, Actor: 1}}
		case 2:
			return []Labeled[int]{{To: 1, Actor: 0}, {To: 1, Actor: 1}}
		}
		return []Labeled[int]{{To: 0, Actor: 0}, {To: 0, Actor: 1}}
	}
	if _, ok := CheckFairConvergence([]int{0, 1, 2}, next2, legal, 2); ok {
		t.Fatal("fair cycle not detected")
	}
}

// TestCheckpointingIsNotSelfStabilizing proves E9's claim in the
// 4-state abstraction: the poisoned pair {corrupt guest, corrupt
// snapshot} is an absorbing illegal cycle, so rollback recovery does
// not converge from every state.
func TestCheckpointingIsNotSelfStabilizing(t *testing.T) {
	sys := CheckpointSystem()
	_, witness, ok := sys.CheckConvergence(16)
	if ok {
		t.Fatal("checkpointing should not converge from every state")
	}
	if witness.GuestOK {
		t.Fatalf("witness must start corrupt, got %+v", witness)
	}
	// The checker's witness is even stronger than the absorbing
	// poisoned pair: from {corrupt guest, CLEAN snapshot} one schedule
	// (snapshot before rollback) still never recovers — E9's fault-
	// phase dependence, derived formally.
	poisoned := RecoveryState{GuestOK: false, SourceOK: false}
	for _, n := range sys.Next(poisoned) {
		if n.GuestOK || n.SourceOK {
			t.Fatalf("poisoned pair escaped to %+v", n)
		}
	}
	// The reinstall abstraction converges within exactly one watchdog
	// period from every state: ROM cannot be poisoned and the reinstall
	// cannot be withheld.
	const period = 8
	re := ReinstallSystem(period)
	worst, err := re.Verify(period)
	if err != nil {
		t.Fatalf("reinstall abstraction: %v", err)
	}
	if worst != period {
		t.Fatalf("worst-case convergence %d, want exactly the period %d", worst, period)
	}
}
