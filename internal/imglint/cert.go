package imglint

import (
	"fmt"

	"ssos/internal/isa"
)

// Ranking-certificate checker: a static convergence prover for mailbox
// token-ring guest images.
//
// A certificate (RingCert) names N node images, the shared ring slots
// they own, each slot's canonical value domain, and a declared variant
// function over ring configurations (in practice the exact
// steps-to-legal height of the declared protocol model). The checker
// proves, from the shipped ROM bytes alone:
//
//  1. Termination discipline (graph obligations): lifting each image's
//     CFG from EVERY slot boundary — the arbitrary entry points the
//     scheduler's ip masking can construct — yields a graph whose only
//     cycles pass through offset 0 and that contains no instruction
//     that could park or escape (hlt, iret, ret, int, call, loop,
//     byte-string ops). So an arbitrary mid-image entry always reaches
//     the iteration head within one pass.
//
//  2. Normalization discipline (fork walk): one abstract loop
//     iteration from offset 0 with arbitrary registers and arbitrary
//     slot contents (top). Every store must target the node's own slot
//     or its own data window, every own-slot store must land inside
//     the slot's canonical domain, every conditional branch must test
//     values the abstraction has bounded (i.e. values that passed a
//     normalization sequence — a branch on an unnormalized word would
//     make behaviour depend on unobservable state), and every path
//     must return to offset 0. This is the soundness premise under
//     which the node's observable behaviour factors through the
//     canonical domains.
//
//  3. Move extraction (singleton walks): for every canonical
//     (self, left, right) triple, an abstract iteration with those
//     singleton slot values. All branches decide, so the walk is
//     deterministic and yields the node's exact move: whether it
//     writes its slot and which value. The extracted table is the
//     transition relation OF THE BYTES, checked against the declared
//     protocol moves when the certificate supplies them.
//
//  4. Ranking (product): over the product of the canonical domains,
//     the extracted relation must keep the declared legal set closed
//     and strictly decrease the declared variant on every step out of
//     an illegal state, with no illegal deadlock. The longest illegal
//     path is then finite and computed exactly by DP — a
//     machine-checked steps-to-legal bound for the shipped images.
//
// The reported bound adds N grace steps to the ranked bound: an
// arbitrary mid-image entry can execute at most one stray pass per
// node before reaching the iteration head (obligation 1), and a stray
// pass with arbitrary registers is equivalent to one more adversarial
// fault — self-stabilization from an arbitrary state absorbs it, at
// the price of one activation per node (the same sequential
// composition argument PR 8's layered bound uses).
//
// Known incompletenesses are documented in DESIGN.md: the certificate
// is at composite atomicity (the read/write-atomicity refinement is
// covered by the model's delay systems and the dynamic stuttering-
// refinement tests), and state spaces past MaxStates get obligations
// 1-3 only (Mode "local").

// RingNode is one certified node image and its footprint.
type RingNode struct {
	// Image is the node's ROM image spec (Bytes, Seg, CodeEnd used).
	Image Image
	// Slot is the index (into RingCert.Slots) of the slot this node
	// owns — the only slot it may write.
	Slot int
	// Left and Right are the slot indices the node reads, -1 for an
	// unused side. A two-node ring may read the same slot on both
	// sides.
	Left, Right int
	// DataLo, DataHi bound the node's private data window (linear
	// addresses, half-open): scratch stores land here.
	DataLo, DataHi uint32
}

// RingCert is a convergence certificate for a ring of node images.
type RingCert struct {
	// Name labels the certificate and its findings.
	Name string
	// N is the ring size; Nodes and Slots both have N entries.
	N int
	// Slots are the linear addresses of the shared ring slots.
	Slots []uint32
	// Domains are the canonical value domains per slot, ascending.
	Domains [][]uint16
	// Nodes are the certified images.
	Nodes []RingNode

	// Moves, when non-nil, is the declared protocol move of node i on a
	// canonical triple; the extracted moves must match exactly.
	Moves func(node int, self, left, right uint16) (write bool, value uint16)
	// Legal is the declared legal set over canonical configurations.
	Legal func(x []uint16) bool
	// Variant is the declared ranking function (0 on legal states);
	// nil selects Mode "local" (obligations only, no product).
	Variant func(x []uint16) int
	// Slack is the declared gap allowed between the static bound and
	// the model's exact worst case (the consistency tests assert
	// static <= exact + Slack).
	Slack int
	// MaxStates caps the product enumeration; larger spaces fall back
	// to Mode "local". 0 means DefaultMaxStates.
	MaxStates int
}

// DefaultMaxStates is the product-enumeration cap.
const DefaultMaxStates = 200_000

// CertResult is the outcome of checking one certificate.
type CertResult struct {
	// Name and N echo the certificate.
	Name string `json:"name"`
	N    int    `json:"n"`
	// Mode is "ranking" (full product certificate) or "local"
	// (per-image obligations only).
	Mode string `json:"mode"`
	// States is the product state count ("ranking" mode only).
	States int `json:"states"`
	// RankBound is the longest illegal path of the extracted relation;
	// Bound adds the N-step mid-entry grace. Both are -1 in "local"
	// mode or when findings prevented ranking.
	RankBound int `json:"rank_bound"`
	Bound     int `json:"bound"`
	// Findings are the violated obligations (empty for a proved
	// certificate).
	Findings []Finding `json:"findings,omitempty"`
}

// Proved reports whether the certificate checked out: no findings,
// and in ranking mode a finite bound.
func (r CertResult) Proved() bool {
	if len(r.Findings) != 0 {
		return false
	}
	return r.Mode == "local" || r.Bound >= 0
}

// walk budgets. A slot-padded iteration is ~45 instructions spread
// over 16-byte slots (so ~16 CFG nodes each including nop padding);
// the budgets are an order of magnitude above.
const (
	walkMaxSteps = 8192 // abstract steps per path
	walkMaxForks = 512  // live paths per fork walk
)

// certEnv is the per-node walking context.
type certEnv struct {
	cert   *RingCert
	node   *RingNode
	g      *graph
	report func(check string, off int, format string, args ...any)
}

// move is one extracted node behaviour.
type move struct {
	write bool
	value uint16
}

// moveKey packs a canonical triple.
func moveKey(self, left, right uint16) uint64 {
	return uint64(self)<<32 | uint64(left)<<16 | uint64(right)
}

// wpath is one in-flight abstract walk path.
type wpath struct {
	off    int
	st     absState
	mem    map[uint32]aval // node data-window words written this pass
	writes []aval          // own-slot stores, in order
	steps  int
}

func (w *wpath) clone() *wpath {
	mem := make(map[uint32]aval, len(w.mem))
	for k, v := range w.mem {
		mem[k] = v
	}
	return &wpath{
		off:    w.off,
		st:     w.st,
		mem:    mem,
		writes: append([]aval(nil), w.writes...),
		steps:  w.steps,
	}
}

// CheckRingCert verifies one certificate. It never panics; malformed
// certificates and violating images yield findings.
func CheckRingCert(c RingCert) CertResult {
	res := CertResult{Name: c.Name, N: c.N, Mode: "local", RankBound: -1, Bound: -1}
	report := func(image, check string, off int, format string, args ...any) {
		res.Findings = append(res.Findings, Finding{
			Image:  image,
			Check:  check,
			Offset: off,
			Msg:    fmt.Sprintf(format, args...),
		})
	}

	if c.N < 1 || len(c.Nodes) != c.N || len(c.Slots) != c.N || len(c.Domains) != c.N {
		report(c.Name, "cert-spec", -1, "certificate needs N=%d nodes, slots and domains (got %d/%d/%d)",
			c.N, len(c.Nodes), len(c.Slots), len(c.Domains))
		return res
	}
	for i := range c.Domains {
		if len(c.Domains[i]) == 0 {
			report(c.Name, "cert-spec", -1, "slot %d has an empty domain", i)
			return res
		}
	}

	// Per-node obligations and move extraction.
	moves := make([]map[uint64]move, c.N)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Slot < 0 || n.Slot >= c.N {
			report(n.Image.Name, "cert-spec", -1, "node %d owns out-of-range slot %d", i, n.Slot)
			return res
		}
		env, ok := liftCertGraph(c, n, report)
		if !ok {
			continue
		}
		env.checkGraphObligations()
		env.forkWalk()
		moves[i] = env.extractMoves(i)
	}
	if len(res.Findings) > 0 {
		return res
	}

	// Product ranking.
	maxStates := c.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	states := 1
	for _, d := range c.Domains {
		if states > maxStates/len(d)+1 {
			states = maxStates + 1
			break
		}
		states *= len(d)
	}
	if c.Variant == nil || c.Legal == nil || states > maxStates {
		return res // Mode "local": obligations proved, no product bound
	}
	res.Mode = "ranking"
	res.States = states
	rankProduct(&c, moves, &res, report)
	return res
}

// liftCertGraph lifts a node image's CFG from every slot boundary —
// the entry set the scheduler's ip masking can reach.
func liftCertGraph(c RingCert, n *RingNode, report func(string, string, int, string, ...any)) (*certEnv, bool) {
	img := n.Image // copy: we augment the entry set
	if len(img.Bytes) == 0 {
		report(img.Name, "cert-spec", -1, "node image is empty")
		return nil, false
	}
	ce := img.codeEnd()
	if ce > len(img.Bytes) {
		report(img.Name, "cert-spec", -1, "CodeEnd %#x exceeds image size %#x", ce, len(img.Bytes))
		return nil, false
	}
	var entries []Entry
	for off := 0; off < ce; off += isa.SlotSize {
		entries = append(entries, Entry{Name: "slot", Off: uint16(off)})
	}
	img.Entries = entries
	rep := func(check string, off int, format string, args ...any) {
		report(img.Name, check, off, format, args...)
	}
	g := lift(&img, ce, rep)
	if _, ok := g.nodes[0]; !ok {
		rep("cert-entry", 0, "iteration head (offset 0) is not a decodable instruction")
		return nil, false
	}
	return &certEnv{cert: &c, node: n, g: g, report: rep}, true
}

// checkGraphObligations proves mid-entry termination: no parking or
// escaping instruction anywhere reachable, and every cycle passes
// through offset 0 (the graph minus node 0 is acyclic), so any entry
// reaches the iteration head within one acyclic pass.
func (e *certEnv) checkGraphObligations() {
	for _, off := range e.g.order {
		switch e.g.nodes[off].inst.Op {
		case isa.OpHlt, isa.OpIret, isa.OpRet, isa.OpInt, isa.OpCall, isa.OpLoop,
			isa.OpMovsb, isa.OpStosb, isa.OpLodsb, isa.OpRepMovsb:
			e.report("cert-termination", off, "certified image uses forbidden instruction %q",
				e.g.nodes[off].inst.Op.Mnemonic())
		}
	}
	// Cycle check over the graph with node 0 removed: iterative DFS
	// with colours (0 white, 1 on stack, 2 done).
	colour := map[int]uint8{}
	var stack []int
	for _, root := range e.g.order {
		if root == 0 || colour[root] != 0 {
			continue
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			off := stack[len(stack)-1]
			if colour[off] == 0 {
				colour[off] = 1
				for _, s := range e.g.nodes[off].succs {
					if s == 0 {
						continue
					}
					if _, ok := e.g.nodes[s]; !ok {
						continue
					}
					switch colour[s] {
					case 0:
						stack = append(stack, s)
					case 1:
						e.report("cert-termination", off,
							"cycle avoiding the iteration head: back edge to %#x", s)
						colour[s] = 2
					}
				}
			} else {
				colour[off] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
}

// readMem resolves one abstract memory read.
func (e *certEnv) readMem(p *wpath, m isa.MemOp, slotVals []aval) aval {
	lin, ok := e.resolve(&p.st, m)
	if !ok {
		return avTop()
	}
	for j, addr := range e.cert.Slots {
		if lin == addr {
			// The node's own slot reflects its own earlier write (the
			// discipline writes it at most once, at the end, but stay
			// exact anyway).
			if j == e.node.Slot && len(p.writes) > 0 {
				return p.writes[len(p.writes)-1]
			}
			return slotVals[j]
		}
	}
	if lin >= e.node.DataLo && lin+1 < e.node.DataHi {
		if v, ok := p.mem[lin]; ok {
			return v
		}
	}
	return avTop()
}

// resolve turns a memory operand into a linear address when the
// abstract state pins both segment and offset to constants.
func (e *certEnv) resolve(st *absState, m isa.MemOp) (uint32, bool) {
	sv, ok := st.getS(uint8(m.Seg)).constVal()
	if !ok {
		return 0, false
	}
	off := avConst(m.Disp)
	if r, rok := m.Base.Reg(); rok {
		off = avAdd(off, st.getR(uint8(r)))
	}
	ov, ok := off.constVal()
	if !ok {
		return 0, false
	}
	return uint32(sv)<<4 + uint32(ov), true
}

// writeMem applies one abstract store, enforcing write confinement and
// the own-slot domain.
func (e *certEnv) writeMem(p *wpath, off int, m isa.MemOp, v aval) {
	lin, ok := e.resolve(&p.st, m)
	if !ok {
		e.report("cert-confinement", off, "store with unresolvable target (segment or offset not provably constant)")
		return
	}
	for j, addr := range e.cert.Slots {
		// The 2-byte store [lin, lin+1] vs the slot word [addr, addr+1].
		if lin+1 < addr || lin > addr+1 {
			continue
		}
		if lin == addr && j == e.node.Slot {
			dom := e.cert.Domains[j]
			if !v.subsetOfWords(dom) {
				e.report("cert-domain", off, "own-slot store not confined to the canonical domain %v", dom)
			}
			p.writes = append(p.writes, v)
			return
		}
		e.report("cert-confinement", off, "store overlaps slot %d at %#06x, owned by another node", j, addr)
		return
	}
	if lin >= e.node.DataLo && lin+1 < e.node.DataHi {
		p.mem[lin] = v
		return
	}
	e.report("cert-confinement", off, "store to %#06x outside the node's slot and data window [%#06x,%#06x)",
		lin, e.node.DataLo, e.node.DataHi)
}

// step executes one abstract instruction on path p, returning the
// successor paths (forking on undecided branches when fork is true).
// A nil return ends the path; done is set when the path has completed
// the iteration (reached offset 0 again).
func (e *certEnv) step(p *wpath, slotVals []aval, fork bool) (succs []*wpath, done bool) {
	n := e.g.nodes[p.off]
	in := n.inst
	p.steps++
	if p.steps > walkMaxSteps {
		e.report("cert-termination", p.off, "abstract walk exceeded %d steps without completing the iteration", walkMaxSteps)
		return nil, false
	}

	// Memory-aware effects first; everything else delegates to the
	// shared transfer function.
	switch in.Op {
	case isa.OpMovRM:
		v := e.readMem(p, in.Mem, slotVals)
		p.st.setR(in.R1, v)
		p.st.cmpValid = false
	case isa.OpAddRM:
		v := e.readMem(p, in.Mem, slotVals)
		p.st.setR(in.R1, avAdd(p.st.getR(in.R1), v))
		p.st.cmpValid = false
	case isa.OpCmpRM:
		v := e.readMem(p, in.Mem, slotVals)
		p.st.cmpValid = true
		p.st.cmpL, p.st.cmpR = int8(in.R1), -1
		p.st.cmpLV, p.st.cmpRV = p.st.getR(in.R1), v
	case isa.OpMovMR:
		e.writeMem(p, p.off, in.Mem, p.st.getR(in.R1))
	case isa.OpMovMI:
		e.writeMem(p, p.off, in.Mem, avConst(in.Imm))
	case isa.OpMovMS:
		e.writeMem(p, p.off, in.Mem, p.st.getS(in.R1))
	case isa.OpMovSM:
		p.st.setS(in.R1, e.readMem(p, in.Mem, slotVals))
	default:
		p.st = transfer(in, p.st)
	}

	// Successor selection.
	rel, conditional := jccRelation(in.Op)
	if !conditional {
		if len(n.succs) == 0 {
			e.report("cert-termination", p.off, "path ends without returning to the iteration head")
			return nil, false
		}
		next := n.succs[0]
		if next == 0 {
			return nil, true
		}
		if _, ok := e.g.nodes[next]; !ok {
			return nil, false // lift already reported it
		}
		p.off = next
		return []*wpath{p}, false
	}

	// Conditional: decide (or fork) on the tracked cmp operands.
	if !p.st.cmpValid {
		e.report("cert-normalization", p.off, "conditional branch without a tracked cmp in view")
		return nil, false
	}
	if p.st.cmpLV.isTop() || p.st.cmpRV.isTop() {
		e.report("cert-normalization", p.off, "conditional branch on an unnormalized (unbounded) value")
		return nil, false
	}
	takenOK := feasible(p.st.cmpLV, p.st.cmpRV, rel)
	fallOK := feasible(p.st.cmpLV, p.st.cmpRV, negateRel(rel))
	if takenOK && fallOK && !fork {
		e.report("cert-extraction", p.off, "branch undecided on a canonical singleton input — behaviour depends on unobservable state")
		return nil, false
	}
	follow := func(p *wpath, si int, taken bool) (*wpath, bool) {
		if si >= len(n.succs) {
			return nil, false
		}
		next := n.succs[si]
		p.st = refineEdge(p.st, in.Op, taken)
		if next == 0 {
			return nil, true
		}
		if _, ok := e.g.nodes[next]; !ok {
			return nil, false
		}
		p.off = next
		return p, false
	}
	// lift appends the taken edge first, the fall-through second.
	if takenOK && fallOK {
		q := p.clone()
		s1, d1 := follow(p, 0, true)
		s2, d2 := follow(q, 1, false)
		if s1 != nil {
			succs = append(succs, s1)
		}
		if s2 != nil {
			succs = append(succs, s2)
		}
		return succs, d1 || d2
	}
	var s *wpath
	if takenOK {
		s, done = follow(p, 0, true)
	} else {
		s, done = follow(p, 1, false)
	}
	if s != nil {
		succs = append(succs, s)
	}
	return succs, done
}

// runWalk drives paths from offset 0 to completion, returning every
// completed path's own-slot writes.
func (e *certEnv) runWalk(slotVals []aval, fork bool) [][]aval {
	start := &wpath{off: 0, st: topState(), mem: map[uint32]aval{}}
	paths := []*wpath{start}
	var results [][]aval
	forks := 0
	for len(paths) > 0 {
		p := paths[len(paths)-1]
		paths = paths[:len(paths)-1]
		succs, done := e.step(p, slotVals, fork)
		if done {
			results = append(results, p.writes)
		}
		if len(succs) > 1 {
			forks++
			if forks > walkMaxForks {
				e.report("cert-termination", p.off, "fork walk exceeded %d forks", walkMaxForks)
				return results
			}
		}
		paths = append(paths, succs...)
	}
	return results
}

// forkWalk runs obligation 2: one iteration from arbitrary registers
// and arbitrary slot contents.
func (e *certEnv) forkWalk() {
	slotVals := make([]aval, e.cert.N)
	for i := range slotVals {
		slotVals[i] = avTop()
	}
	results := e.runWalk(slotVals, true)
	for _, writes := range results {
		if len(writes) > 1 {
			e.report("cert-extraction", -1, "iteration writes the node's slot %d times (at most one guarded store allowed)", len(writes))
		}
	}
}

// extractMoves runs obligation 3: singleton walks over every canonical
// triple, yielding the node's move table.
func (e *certEnv) extractMoves(nodeIdx int) map[uint64]move {
	n := e.node
	c := e.cert
	selfDom := c.Domains[n.Slot]
	leftDom := []uint16{0}
	if n.Left >= 0 {
		leftDom = c.Domains[n.Left]
	}
	rightDom := []uint16{0}
	if n.Right >= 0 {
		rightDom = c.Domains[n.Right]
	}
	sameSide := n.Left >= 0 && n.Left == n.Right

	out := make(map[uint64]move, len(selfDom)*len(leftDom)*len(rightDom))
	for _, self := range selfDom {
		for _, l := range leftDom {
			for _, r := range rightDom {
				if sameSide && r != l {
					continue // one shared neighbour slot: l and r coincide
				}
				rr := r
				if sameSide {
					rr = l
				}
				slotVals := make([]aval, c.N)
				for i := range slotVals {
					slotVals[i] = avTop()
				}
				slotVals[n.Slot] = avConst(self)
				if n.Left >= 0 {
					slotVals[n.Left] = avConst(l)
				}
				if n.Right >= 0 {
					slotVals[n.Right] = avConst(rr)
				}
				results := e.runWalk(slotVals, false)
				if len(results) != 1 {
					e.report("cert-extraction", -1,
						"triple (self=%d,l=%d,r=%d) yielded %d completed paths, want exactly 1", self, l, rr, len(results))
					continue
				}
				var mv move
				if len(results[0]) == 1 {
					v, ok := results[0][0].constVal()
					if !ok {
						e.report("cert-extraction", -1,
							"triple (self=%d,l=%d,r=%d) writes a non-constant value", self, l, rr)
						continue
					}
					mv = move{write: true, value: v}
				} else if len(results[0]) > 1 {
					e.report("cert-extraction", -1,
						"triple (self=%d,l=%d,r=%d) writes the slot %d times", self, l, rr, len(results[0]))
					continue
				}
				if c.Moves != nil {
					wantW, wantV := c.Moves(nodeIdx, self, l, rr)
					if wantW != mv.write || (wantW && wantV != mv.value) {
						e.report("cert-extraction", -1,
							"triple (self=%d,l=%d,r=%d): extracted move (write=%v value=%d) differs from declared (write=%v value=%d)",
							self, l, rr, mv.write, mv.value, wantW, wantV)
					}
				}
				out[moveKey(self, l, rr)] = mv
			}
		}
	}
	return out
}

// rankProduct runs obligation 4 over the extracted relation.
func rankProduct(c *RingCert, moves []map[uint64]move, res *CertResult, report func(string, string, int, string, ...any)) {
	// Enumerate the product space in mixed radix over the domains.
	type stateID = int
	radix := make([]int, c.N)
	for i, d := range c.Domains {
		radix[i] = len(d)
	}
	decode := func(id stateID, x []uint16) {
		for i := 0; i < c.N; i++ {
			x[i] = c.Domains[i][id%radix[i]]
			id /= radix[i]
		}
	}
	encode := func(x []uint16) stateID {
		id := 0
		for i := c.N - 1; i >= 0; i-- {
			k := 0
			for j, v := range c.Domains[i] {
				if v == x[i] {
					k = j
					break
				}
			}
			id = id*radix[i] + k
		}
		return id
	}

	nodeArgs := func(i int, x []uint16) (self, l, r uint16) {
		n := &c.Nodes[i]
		self = x[n.Slot]
		if n.Left >= 0 {
			l = x[n.Left]
		}
		if n.Right >= 0 {
			r = x[n.Right]
		}
		return
	}
	succs := func(x []uint16, out []stateID) []stateID {
		out = out[:0]
		for i := 0; i < c.N; i++ {
			self, l, r := nodeArgs(i, x)
			mv, ok := moves[i][moveKey(self, l, r)]
			if !ok || !mv.write {
				continue
			}
			old := x[c.Nodes[i].Slot]
			x[c.Nodes[i].Slot] = mv.value
			out = append(out, encode(x))
			x[c.Nodes[i].Slot] = old
		}
		return out
	}

	total := res.States
	x := make([]uint16, c.N)
	y := make([]uint16, c.N)
	var scratch []stateID

	// Pass 1: closure, strict variant decrease, illegal deadlock.
	violations := 0
	const maxViolations = 8 // enough to debug, bounded output
	for id := 0; id < total && violations < maxViolations; id++ {
		decode(id, x)
		legal := c.Legal(x)
		scratch = succs(x, scratch)
		if legal {
			for _, sid := range scratch {
				decode(sid, y)
				if !c.Legal(y) {
					report(c.Name, "cert-closure", -1, "legal state %v steps to illegal %v", x, y)
					violations++
				}
			}
			continue
		}
		if len(scratch) == 0 {
			report(c.Name, "cert-ranking", -1, "illegal state %v is deadlocked (no privileged node)", x)
			violations++
			continue
		}
		vx := c.Variant(x)
		for _, sid := range scratch {
			decode(sid, y)
			if vy := c.Variant(y); vy >= vx {
				report(c.Name, "cert-ranking", -1, "variant does not decrease: %v (rank %d) steps to %v (rank %d)", x, vx, y, vy)
				violations++
			}
		}
	}
	if violations > 0 {
		return
	}

	// Pass 2: exact longest illegal path by DP. The variant check just
	// proved the illegal subgraph acyclic, so the memoized DFS
	// terminates; the cycle guard below is belt and braces against a
	// Variant that lied.
	const (
		dUnknown = -1
		dOnStack = -2
	)
	d := make([]int, total)
	for i := range d {
		d[i] = dUnknown
	}
	var stack []stateID
	visit := func(root stateID) bool {
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			decode(id, x)
			if d[id] >= 0 {
				stack = stack[:len(stack)-1]
				continue
			}
			if c.Legal(x) {
				d[id] = 0
				stack = stack[:len(stack)-1]
				continue
			}
			if d[id] == dUnknown {
				d[id] = dOnStack
				pushed := false
				scratch = succs(x, scratch)
				for _, sid := range scratch {
					if d[sid] == dOnStack {
						report(c.Name, "cert-ranking", -1, "illegal cycle through state %v", x)
						return false
					}
					if d[sid] == dUnknown {
						stack = append(stack, sid)
						pushed = true
					}
				}
				if pushed {
					continue
				}
			}
			// All successors resolved.
			worst := 0
			scratch = succs(x, scratch)
			for _, sid := range scratch {
				if d[sid] > worst {
					worst = d[sid]
				}
			}
			d[id] = 1 + worst
			stack = stack[:len(stack)-1]
		}
		return true
	}
	rank := 0
	for id := 0; id < total; id++ {
		if d[id] == dUnknown && !visit(id) {
			return
		}
		if d[id] > rank {
			rank = d[id]
		}
	}
	res.RankBound = rank
	res.Bound = rank + c.N
}
