package imglint

import (
	"ssos/internal/isa"
)

// Abstract interpretation over the lifted CFG, used to prove the
// no-ROM-targeting-stores invariant (and, through the shared transfer
// function, to drive the ranking-certificate walker in cert.go). PR 5
// used a flat constant domain; this is the interval/set domain of
// interval.go, which tracks bounded-but-not-constant values — the shape
// every guest normalization sequence produces from an arbitrary word.
//
// The analysis is sound for the rom-store check's purpose: a store is
// reported only when the *entire provable* target window of the store
// intersects a ROM range. Unknown segments never produce findings;
// narrower value abstractions only shrink the provable window, so the
// domain upgrade can retire false positives but never invent one.

// absState is the abstract register file, plus one instruction of
// cmp-operand tracking for conditional-branch refinement: cmpL/cmpR
// remember which general register each cmp operand was read from (-1
// when it was not a plain register), so the out-edges of an immediately
// following jcc can narrow that register. Any other instruction clears
// the tracking — in every guest source the cmp directly precedes its
// jcc, and clearing keeps the state soundly conservative elsewhere.
type absState struct {
	regs  [isa.NumRegs]aval
	sregs [isa.NumSRegs]aval

	cmpValid   bool
	cmpL, cmpR int8
	cmpLV      aval
	cmpRV      aval
}

// topState is the any-state entry abstraction.
func topState() absState {
	var s absState
	for i := range s.regs {
		s.regs[i] = avTop()
	}
	for i := range s.sregs {
		s.sregs[i] = avTop()
	}
	return s
}

func (s absState) eq(o absState) bool {
	for i := range s.regs {
		if !s.regs[i].eq(o.regs[i]) {
			return false
		}
	}
	for i := range s.sregs {
		if !s.sregs[i].eq(o.sregs[i]) {
			return false
		}
	}
	if s.cmpValid != o.cmpValid {
		return false
	}
	if s.cmpValid {
		if s.cmpL != o.cmpL || s.cmpR != o.cmpR ||
			!s.cmpLV.eq(o.cmpLV) || !s.cmpRV.eq(o.cmpRV) {
			return false
		}
	}
	return true
}

// joinState joins element-wise; cmp tracking survives only when both
// sides carry the identical comparison.
func (s absState) joinState(o absState, widen bool) absState {
	var out absState
	for i := range s.regs {
		if widen {
			out.regs[i] = s.regs[i].widen(o.regs[i])
		} else {
			out.regs[i] = s.regs[i].join(o.regs[i])
		}
	}
	for i := range s.sregs {
		if widen {
			out.sregs[i] = s.sregs[i].widen(o.sregs[i])
		} else {
			out.sregs[i] = s.sregs[i].join(o.sregs[i])
		}
	}
	if s.cmpValid && o.cmpValid && s.cmpL == o.cmpL && s.cmpR == o.cmpR {
		out.cmpValid = true
		out.cmpL, out.cmpR = s.cmpL, s.cmpR
		out.cmpLV = s.cmpLV.join(o.cmpLV)
		out.cmpRV = s.cmpRV.join(o.cmpRV)
	}
	return out
}

func (s *absState) getR(r uint8) aval {
	if int(r) < len(s.regs) {
		return s.regs[r]
	}
	return avTop()
}

func (s *absState) setR(r uint8, v aval) {
	if int(r) < len(s.regs) {
		s.regs[r] = v
		// A write to a tracked cmp operand invalidates the tracking.
		if s.cmpValid && (int8(r) == s.cmpL || int8(r) == s.cmpR) {
			s.cmpValid = false
		}
	}
}

func (s *absState) getS(r uint8) aval {
	if int(r) < len(s.sregs) {
		return s.sregs[r]
	}
	return avTop()
}

func (s *absState) setS(r uint8, v aval) {
	if int(r) < len(s.sregs) {
		s.sregs[r] = v
	}
}

// transfer applies one instruction to the abstract register state.
// Memory is not tracked here (loads produce top): the global fixpoint
// must stay sound for arbitrary images whose stores it cannot resolve.
// The certificate walker layers word-tracked memory on top (cert.go).
func transfer(in isa.Inst, s absState) absState {
	clearCmp := true
	binop := func(r uint8, rhs aval, f func(a, b aval) aval) {
		s.setR(r, f(s.getR(r), rhs))
	}

	switch in.Op {
	case isa.OpNop, isa.OpCld, isa.OpStd, isa.OpSti, isa.OpCli,
		isa.OpOutI, isa.OpOutDx, isa.OpWPSet,
		isa.OpJmp, isa.OpJmpFar, isa.OpJe, isa.OpJne, isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
		// No register effect. Conditional jumps preserve cmp tracking so
		// edge refinement (refineEdge) can use it, and nop preserves it
		// because slot padding places nop runs between a cmp and its jcc
		// (nop does not touch the flags).
		switch in.Op {
		case isa.OpNop, isa.OpJe, isa.OpJne, isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
			clearCmp = false
		}
	case isa.OpCmpRR:
		s.cmpValid = true
		s.cmpL, s.cmpR = int8(in.R1), int8(in.R2)
		s.cmpLV, s.cmpRV = s.getR(in.R1), s.getR(in.R2)
		clearCmp = false
	case isa.OpCmpRI:
		s.cmpValid = true
		s.cmpL, s.cmpR = int8(in.R1), -1
		s.cmpLV, s.cmpRV = s.getR(in.R1), avConst(in.Imm)
		clearCmp = false
	case isa.OpCmpRM:
		s.cmpValid = true
		s.cmpL, s.cmpR = int8(in.R1), -1
		s.cmpLV, s.cmpRV = s.getR(in.R1), avTop()
		clearCmp = false
	case isa.OpMovRI:
		s.setR(in.R1, avConst(in.Imm))
	case isa.OpMovRR:
		s.setR(in.R1, s.getR(in.R2))
	case isa.OpMovSR:
		s.setS(in.R1, s.getR(in.R2))
	case isa.OpMovRS:
		s.setR(in.R1, s.getS(in.R2))
	case isa.OpMovRM, isa.OpAddRM, isa.OpPopR, isa.OpInI, isa.OpInDx:
		switch in.Op {
		case isa.OpInI, isa.OpInDx:
			s.setR(uint8(isa.AX), avTop())
		default:
			s.setR(in.R1, avTop())
		}
	case isa.OpMovSM, isa.OpPopS:
		s.setS(in.R1, avTop())
	case isa.OpMovR8I, isa.OpMovR8R8:
		// A byte-half write invalidates the containing word register.
		if r8 := isa.Reg8(in.R1); r8.Valid() {
			parent, _ := r8.Parent()
			s.setR(uint8(parent), avTop())
		}
	case isa.OpMulR8:
		s.setR(uint8(isa.AX), avTop())
	case isa.OpAddRI:
		binop(in.R1, avConst(in.Imm), avAdd)
	case isa.OpSubRI:
		binop(in.R1, avConst(in.Imm), avSub)
	case isa.OpAndRI:
		binop(in.R1, avConst(in.Imm), avAnd)
	case isa.OpOrRI:
		binop(in.R1, avConst(in.Imm), avOr)
	case isa.OpShlRI:
		s.setR(in.R1, avShl(s.getR(in.R1), in.Imm))
	case isa.OpShrRI:
		s.setR(in.R1, avShr(s.getR(in.R1), in.Imm))
	case isa.OpAddRR:
		binop(in.R1, s.getR(in.R2), avAdd)
	case isa.OpSubRR:
		binop(in.R1, s.getR(in.R2), avSub)
	case isa.OpAndRR:
		binop(in.R1, s.getR(in.R2), avAnd)
	case isa.OpOrRR:
		binop(in.R1, s.getR(in.R2), avOr)
	case isa.OpXorRR:
		if in.R1 == in.R2 {
			s.setR(in.R1, avConst(0))
		} else {
			binop(in.R1, s.getR(in.R2), avXor)
		}
	case isa.OpIncR:
		binop(in.R1, avConst(1), avAdd)
	case isa.OpDecR:
		binop(in.R1, avConst(1), avSub)
	case isa.OpLea:
		base := avConst(in.Mem.Disp)
		if r, ok := in.Mem.Base.Reg(); ok {
			base = avAdd(base, s.getR(uint8(r)))
		}
		s.setR(in.R1, base)
	case isa.OpMovsb, isa.OpLodsb:
		// Pointer step with unknown direction flag: unknown.
		s.setR(uint8(isa.SI), avTop())
		if in.Op == isa.OpMovsb {
			s.setR(uint8(isa.DI), avTop())
		} else {
			s.setR(uint8(isa.AX), avTop())
		}
	case isa.OpStosb:
		s.setR(uint8(isa.DI), avTop())
	case isa.OpRepMovsb:
		s.setR(uint8(isa.SI), avTop())
		s.setR(uint8(isa.DI), avTop())
		s.setR(uint8(isa.CX), avConst(0))
	case isa.OpInt:
		// A software-interrupt handler may clobber anything.
		return topState()
	case isa.OpCall:
		s.setR(uint8(isa.SP), avTop())
	case isa.OpPushR, isa.OpPushI, isa.OpPushS, isa.OpPushf, isa.OpPopf:
		s.setR(uint8(isa.SP), avTop())
	}
	if clearCmp {
		s.cmpValid = false
	}
	return s
}

// jccRelation maps a conditional-jump opcode to the relation that holds
// on its taken edge (unsigned comparisons, matching the machine's
// flags).
func jccRelation(op isa.Op) (rel string, ok bool) {
	switch op {
	case isa.OpJe:
		return "eq", true
	case isa.OpJne:
		return "ne", true
	case isa.OpJb:
		return "b", true
	case isa.OpJbe:
		return "be", true
	case isa.OpJa:
		return "a", true
	case isa.OpJae:
		return "ae", true
	}
	return "", false
}

// negateRel returns the relation holding on the fall-through edge.
func negateRel(rel string) string {
	switch rel {
	case "eq":
		return "ne"
	case "ne":
		return "eq"
	case "b":
		return "ae"
	case "ae":
		return "b"
	case "be":
		return "a"
	case "a":
		return "be"
	}
	return rel
}

// refineEdge narrows the state flowing along one out-edge of a
// conditional jump, using the tracked cmp operands. taken selects the
// jump-taken edge (the relation holds) vs the fall-through (its
// negation holds).
func refineEdge(s absState, op isa.Op, taken bool) absState {
	rel, ok := jccRelation(op)
	if !ok || !s.cmpValid {
		return s
	}
	if !taken {
		rel = negateRel(rel)
	}
	if s.cmpL >= 0 {
		s.regs[s.cmpL] = refine(s.cmpLV, s.cmpRV, rel)
	}
	if s.cmpR >= 0 {
		s.regs[s.cmpR] = refine(s.cmpRV, s.cmpLV, negateSides(rel))
	}
	s.cmpValid = false
	return s
}

// negateSides converts `a rel b` into the relation `b rel' a`.
func negateSides(rel string) string {
	switch rel {
	case "b":
		return "a"
	case "a":
		return "b"
	case "be":
		return "ae"
	case "ae":
		return "be"
	}
	return rel // eq and ne are symmetric
}

// widenAfter is the per-offset join budget of the fixpoint: past this
// many state updates at one offset, joins switch to widening so the
// tall interval lattice cannot produce long ascending chains.
const widenAfter = 8

// fixpoint computes per-offset input states by forward propagation to a
// fixed point, refining conditional-branch edges.
func fixpoint(g *graph) map[int]absState {
	in := map[int]absState{}
	seen := map[int]bool{}
	updates := map[int]int{}
	var work []int
	for _, e := range g.entries {
		if _, ok := g.nodes[e]; !ok {
			continue
		}
		in[e] = topState() // any machine state at entry
		seen[e] = true
		work = append(work, e)
	}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		n := g.nodes[off]
		out := transfer(n.inst, in[off])
		_, conditional := jccRelation(n.inst.Op)
		for si, succ := range n.succs {
			if _, ok := g.nodes[succ]; !ok {
				continue
			}
			edge := out
			if conditional {
				// lift appends the taken edge first, the fall-through
				// second (cfg.go).
				edge = refineEdge(in[off], n.inst.Op, si == 0)
			}
			var next absState
			if seen[succ] {
				next = in[succ].joinState(edge, updates[succ] > widenAfter)
			} else {
				next = edge
			}
			if !seen[succ] || !next.eq(in[succ]) {
				in[succ] = next
				seen[succ] = true
				updates[succ]++
				work = append(work, succ)
			}
		}
	}
	return in
}

// checkStores runs the abstract interpretation and reports every store
// whose entire provable target window intersects a ROM range.
func checkStores(img *Image, g *graph, report func(string, int, string, ...any)) {
	states := fixpoint(g)
	for _, off := range g.order {
		n := g.nodes[off]
		s, ok := states[off]
		if !ok {
			continue
		}
		lo, hi, known := storeTarget(n.inst, &s)
		if !known {
			continue
		}
		for _, r := range img.ROM {
			if lo < r.End && r.Start < hi {
				report("rom-store", off, "store provably targets ROM %s [%05x..%05x)", r.Name, r.Start, r.End)
				break
			}
		}
	}
}

// storeTarget returns the linear byte range a store instruction may
// write, when the abstract state pins the segment down. A bounded
// offset narrows the window; an unbounded one widens it to the
// segment's full 64 KiB window — still a proof, since real-mode offsets
// cannot leave it.
func storeTarget(in isa.Inst, s *absState) (lo, hi uint32, known bool) {
	segWindow := func(seg aval) (uint32, uint32, bool) {
		sv, ok := seg.constVal()
		if !ok {
			return 0, 0, false
		}
		base := uint32(sv) << 4
		return base, base + 0x10000, true
	}
	memTarget := func(m isa.MemOp, width uint32) (uint32, uint32, bool) {
		seg := s.getS(uint8(m.Seg))
		sv, ok := seg.constVal()
		if !ok {
			return 0, 0, false
		}
		off := avConst(m.Disp)
		if r, rok := m.Base.Reg(); rok {
			off = avAdd(off, s.getR(uint8(r)))
		}
		if off.isTop() {
			return segWindow(seg)
		}
		olo, ohi := off.bounds()
		base := uint32(sv) << 4
		return base + uint32(olo), base + uint32(ohi) + width, true
	}

	switch in.Op {
	case isa.OpMovMR, isa.OpMovMI, isa.OpMovMS:
		return memTarget(in.Mem, 2)
	case isa.OpStosb:
		seg := s.getS(uint8(isa.ES))
		sv, ok := seg.constVal()
		if !ok {
			return 0, 0, false
		}
		di := s.getR(uint8(isa.DI))
		if di.isTop() {
			return segWindow(seg)
		}
		dlo, dhi := di.bounds()
		base := uint32(sv) << 4
		return base + uint32(dlo), base + uint32(dhi) + 1, true
	case isa.OpMovsb, isa.OpRepMovsb:
		return segWindow(s.getS(uint8(isa.ES)))
	}
	return 0, 0, false
}
