package imglint

import (
	"ssos/internal/isa"
)

// Constant propagation over the lifted CFG, used to prove the
// no-ROM-targeting-stores invariant. The abstract domain is per-
// register "known constant or unknown" (a flat lattice); the transfer
// function mirrors the subset of the ISA the guest sources use to
// establish segments (mov reg,imm / mov sreg,reg / arithmetic on
// constants). The analysis is sound for the check's purpose: a store is
// reported only when the segment (and, when needed, the offset) of its
// target is *provably* a constant that lands in ROM. Unknown values
// never produce findings.

// val is one abstract register value.
type val struct {
	known bool
	v     uint16
}

// absState is the abstract register file.
type absState struct {
	regs  [isa.NumRegs]val
	sregs [isa.NumSRegs]val
}

// meet joins two states element-wise: values survive only where both
// sides agree.
func (s absState) meet(o absState) absState {
	var out absState
	for i := range s.regs {
		if s.regs[i].known && o.regs[i].known && s.regs[i].v == o.regs[i].v {
			out.regs[i] = s.regs[i]
		}
	}
	for i := range s.sregs {
		if s.sregs[i].known && o.sregs[i].known && s.sregs[i].v == o.sregs[i].v {
			out.sregs[i] = s.sregs[i]
		}
	}
	return out
}

func (s absState) eq(o absState) bool { return s == o }

// transfer applies one instruction to the abstract state.
func transfer(in isa.Inst, s absState) absState {
	setR := func(r uint8, v val) {
		if int(r) < len(s.regs) {
			s.regs[r] = v
		}
	}
	setS := func(r uint8, v val) {
		if int(r) < len(s.sregs) {
			s.sregs[r] = v
		}
	}
	getR := func(r uint8) val {
		if int(r) < len(s.regs) {
			return s.regs[r]
		}
		return val{}
	}
	getS := func(r uint8) val {
		if int(r) < len(s.sregs) {
			return s.sregs[r]
		}
		return val{}
	}
	binop := func(r uint8, rhs val, f func(a, b uint16) uint16) {
		a := getR(r)
		if a.known && rhs.known {
			setR(r, val{true, f(a.v, rhs.v)})
		} else {
			setR(r, val{})
		}
	}

	switch in.Op {
	case isa.OpMovRI:
		setR(in.R1, val{true, in.Imm})
	case isa.OpMovRR:
		setR(in.R1, getR(in.R2))
	case isa.OpMovSR:
		setS(in.R1, getR(in.R2))
	case isa.OpMovRS:
		setR(in.R1, getS(in.R2))
	case isa.OpMovRM, isa.OpMovSM, isa.OpAddRM, isa.OpPopR, isa.OpPopS, isa.OpInI, isa.OpInDx:
		// Loads and pops: destination unknown.
		switch in.Op {
		case isa.OpMovSM, isa.OpPopS:
			setS(in.R1, val{})
		case isa.OpInI, isa.OpInDx:
			setR(uint8(isa.AX), val{})
		default:
			setR(in.R1, val{})
		}
	case isa.OpMovR8I, isa.OpMovR8R8:
		// A byte-half write invalidates the containing word register.
		if r8 := isa.Reg8(in.R1); r8.Valid() {
			parent, _ := r8.Parent()
			setR(uint8(parent), val{})
		}
	case isa.OpMulR8:
		setR(uint8(isa.AX), val{})
	case isa.OpAddRI:
		binop(in.R1, val{true, in.Imm}, func(a, b uint16) uint16 { return a + b })
	case isa.OpSubRI:
		binop(in.R1, val{true, in.Imm}, func(a, b uint16) uint16 { return a - b })
	case isa.OpAndRI:
		binop(in.R1, val{true, in.Imm}, func(a, b uint16) uint16 { return a & b })
	case isa.OpOrRI:
		binop(in.R1, val{true, in.Imm}, func(a, b uint16) uint16 { return a | b })
	case isa.OpShlRI:
		binop(in.R1, val{true, in.Imm}, func(a, b uint16) uint16 { return a << (b & 15) })
	case isa.OpShrRI:
		binop(in.R1, val{true, in.Imm}, func(a, b uint16) uint16 { return a >> (b & 15) })
	case isa.OpAddRR:
		binop(in.R1, getR(in.R2), func(a, b uint16) uint16 { return a + b })
	case isa.OpSubRR:
		binop(in.R1, getR(in.R2), func(a, b uint16) uint16 { return a - b })
	case isa.OpAndRR:
		binop(in.R1, getR(in.R2), func(a, b uint16) uint16 { return a & b })
	case isa.OpOrRR:
		binop(in.R1, getR(in.R2), func(a, b uint16) uint16 { return a | b })
	case isa.OpXorRR:
		if in.R1 == in.R2 {
			setR(in.R1, val{true, 0})
		} else {
			binop(in.R1, getR(in.R2), func(a, b uint16) uint16 { return a ^ b })
		}
	case isa.OpIncR:
		binop(in.R1, val{true, 1}, func(a, b uint16) uint16 { return a + b })
	case isa.OpDecR:
		binop(in.R1, val{true, 1}, func(a, b uint16) uint16 { return a - b })
	case isa.OpLea:
		base := val{true, in.Mem.Disp}
		if r, ok := in.Mem.Base.Reg(); ok {
			b := getR(uint8(r))
			if !b.known {
				base = val{}
			} else {
				base = val{true, base.v + b.v}
			}
		}
		setR(in.R1, base)
	case isa.OpMovsb, isa.OpLodsb:
		setR(uint8(isa.SI), advance(getR(uint8(isa.SI))))
		if in.Op == isa.OpMovsb {
			setR(uint8(isa.DI), advance(getR(uint8(isa.DI))))
		} else {
			setR(uint8(isa.AX), val{})
		}
	case isa.OpStosb:
		setR(uint8(isa.DI), advance(getR(uint8(isa.DI))))
	case isa.OpRepMovsb:
		setR(uint8(isa.SI), val{})
		setR(uint8(isa.DI), val{})
		setR(uint8(isa.CX), val{true, 0})
	case isa.OpInt:
		// A software-interrupt handler may clobber anything.
		return absState{}
	case isa.OpCall:
		setR(uint8(isa.SP), val{})
	case isa.OpPushR, isa.OpPushI, isa.OpPushS, isa.OpPushf, isa.OpPopf:
		setR(uint8(isa.SP), val{})
	}
	return s
}

// advance models a string op's pointer step with unknown direction
// flag: the register stays unknown (DF may be either way from an
// arbitrary configuration).
func advance(v val) val { return val{} }

// fixpoint computes per-offset input states by forward propagation to a
// fixed point.
func fixpoint(g *graph) map[int]absState {
	in := map[int]absState{}
	seen := map[int]bool{}
	var work []int
	for _, e := range g.entries {
		if _, ok := g.nodes[e]; !ok {
			continue
		}
		in[e] = absState{} // all unknown at entry
		seen[e] = true
		work = append(work, e)
	}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		n := g.nodes[off]
		out := transfer(n.inst, in[off])
		for _, s := range n.succs {
			if _, ok := g.nodes[s]; !ok {
				continue
			}
			var next absState
			if seen[s] {
				next = in[s].meet(out)
			} else {
				next = out
			}
			if !seen[s] || !next.eq(in[s]) {
				in[s] = next
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// checkStores runs the constant propagation and reports every store
// whose target provably intersects a ROM range.
func checkStores(img *Image, g *graph, report func(string, int, string, ...any)) {
	states := fixpoint(g)
	for _, off := range g.order {
		n := g.nodes[off]
		s, ok := states[off]
		if !ok {
			continue
		}
		lo, hi, known := storeTarget(n.inst, s)
		if !known {
			continue
		}
		for _, r := range img.ROM {
			if lo < r.End && r.Start < hi {
				report("rom-store", off, "store provably targets ROM %s [%05x..%05x)", r.Name, r.Start, r.End)
				break
			}
		}
	}
}

// storeTarget returns the linear byte range a store instruction writes,
// when the abstract state pins it down. For a known segment with an
// unknown offset the range widens to the segment's full 64 KiB window —
// still a proof, since real-mode offsets cannot leave it.
func storeTarget(in isa.Inst, s absState) (lo, hi uint32, known bool) {
	segWindow := func(seg val) (uint32, uint32, bool) {
		if !seg.known {
			return 0, 0, false
		}
		base := uint32(seg.v) << 4
		return base, base + 0x10000, true
	}
	memTarget := func(m isa.MemOp, width uint32) (uint32, uint32, bool) {
		seg := s.sregs[m.Seg]
		if !seg.known {
			return 0, 0, false
		}
		off := val{true, m.Disp}
		if r, ok := m.Base.Reg(); ok {
			b := s.regs[r]
			if !b.known {
				return segWindow(seg)
			}
			off = val{true, off.v + b.v}
		}
		base := uint32(seg.v)<<4 + uint32(off.v)
		return base, base + width, true
	}

	switch in.Op {
	case isa.OpMovMR, isa.OpMovMI, isa.OpMovMS:
		return memTarget(in.Mem, 2)
	case isa.OpStosb:
		seg := s.sregs[isa.ES]
		di := s.regs[isa.DI]
		if seg.known && di.known {
			base := uint32(seg.v)<<4 + uint32(di.v)
			return base, base + 1, true
		}
		return segWindow(seg)
	case isa.OpMovsb, isa.OpRepMovsb:
		return segWindow(s.sregs[isa.ES])
	}
	return 0, 0, false
}
