// Package imglint is a static verifier for assembled guest ROM images.
//
// The paper's Section 5 designs rest on properties that are *static*
// facts about the bytes in ROM: every unused ROM byte is part of a
// self-synchronizing `jmp start` fill (§5.1), primitive processes are
// loop-free straight-line code (§5.1), padded code keeps one
// instruction per 16-byte slot so any masked ip is an instruction
// start (§5.2), and the scheduler confines each process's cs to the
// ROM-resident processLimits table (Figure 5). The simulator exercises
// these dynamically; imglint proves them by lifting the image into a
// control-flow graph with internal/isa's decoder and checking each
// invariant from every declared entry offset — the "ideal
// stabilization" stance: a configuration that cannot be illegal needs
// no convergence argument.
//
// imglint never executes anything and depends only on internal/isa, so
// every layer above (guest builders, tests, cmd/ssos-lint,
// cmd/ssos-verify) can lint the exact bytes it is about to install as
// ROM. Check never panics on arbitrary input and its verdicts are
// deterministic: the same Image yields the same findings in the same
// order.
package imglint

import (
	"fmt"
	"sort"

	"ssos/internal/isa"
)

// Entry is a declared legitimate execution entry offset: a hardwired
// vector target (NMI, boot, exception) or a process start.
type Entry struct {
	Name string
	Off  uint16
}

// Table is an expected data table embedded in the image (e.g. the
// scheduler's processLimits): Want words, little-endian, at Off.
type Table struct {
	Name string
	Off  uint16
	Want []uint16
}

// Range is a linear address range [Start, End).
type Range struct {
	Name  string
	Start uint32
	End   uint32
}

// Image is one ROM image together with the invariants it must satisfy.
// The zero value of each policy field disables the corresponding check,
// so callers opt in to exactly the contract a builder promises.
type Image struct {
	// Name labels findings.
	Name string
	// Bytes is the image contents.
	Bytes []byte
	// Seg is the segment the image is based at (linear = Seg<<4).
	Seg uint16
	// Entries are the offsets execution may legitimately begin at.
	// Every entry is lifted into the CFG; undecodable or escaping
	// paths are findings.
	Entries []Entry

	// CodeEnd is the first offset past real code. The CFG must stay
	// inside [0, CodeEnd); jump targets at or past it are findings.
	// 0 means len(Bytes).
	CodeEnd int

	// CheckFill requires every byte of [CodeEnd, FillEnd) to belong to
	// the self-synchronizing fill: decoding from ANY fill offset must
	// reach a `jmp FillTarget` within the region (§5.1 "add a jmp
	// command ... in every unused rom location"). FillEnd 0 means
	// len(Bytes).
	CheckFill  bool
	FillEnd    int
	FillTarget uint16

	// SlotPadded asserts §5.2 slot discipline: CodeEnd is a multiple
	// of isa.SlotSize, every slot boundary in [0, CodeEnd) starts a
	// valid instruction that fits its slot, and every CFG jump target
	// is slot-aligned — together the closure property that makes the
	// scheduler's ip masking always resume at an instruction start.
	SlotPadded bool

	// StraightLine asserts §5.1 process restrictions: no backward
	// control transfer except `jmp FillTarget`, and none of the
	// forbidden instruction classes (stack ops, call/ret, loop, hlt,
	// iret, int).
	StraightLine bool

	// Tables are embedded data tables checked word-for-word.
	Tables []Table

	// CSAllowed lists the code segments far control transfers may
	// target (far jumps, and constant cs words pushed for iret). Empty
	// disables the check.
	CSAllowed []uint16

	// ROM lists linear ROM ranges; any store the constant-propagation
	// pass can prove targets one of them is a finding (ROM is
	// incorruptible by contract — a guest store aimed at it is a bug,
	// not a fault).
	ROM []Range
}

// Finding is one invariant violation, anchored at an image offset
// (-1 when the finding is not offset-specific).
type Finding struct {
	Image  string `json:"image"`
	Check  string `json:"check"`
	Offset int    `json:"offset"`
	Msg    string `json:"msg"`
}

func (f Finding) String() string {
	if f.Offset >= 0 {
		return fmt.Sprintf("%s+%#04x: %s: %s", f.Image, f.Offset, f.Check, f.Msg)
	}
	return fmt.Sprintf("%s: %s: %s", f.Image, f.Check, f.Msg)
}

// codeEnd resolves the effective code boundary.
func (img *Image) codeEnd() int {
	if img.CodeEnd > 0 {
		return img.CodeEnd
	}
	return len(img.Bytes)
}

// fillEnd resolves the effective fill boundary.
func (img *Image) fillEnd() int {
	if img.FillEnd > 0 {
		return img.FillEnd
	}
	return len(img.Bytes)
}

// Check verifies every enabled invariant and returns the findings
// sorted by (check, offset). It never panics: arbitrary bytes and
// inconsistent specs yield findings, not crashes.
func Check(img Image) []Finding {
	var fs []Finding
	report := func(check string, off int, format string, args ...any) {
		fs = append(fs, Finding{
			Image:  img.Name,
			Check:  check,
			Offset: off,
			Msg:    fmt.Sprintf(format, args...),
		})
	}

	if len(img.Bytes) == 0 {
		report("spec", -1, "image is empty")
		return fs
	}
	ce := img.codeEnd()
	if ce > len(img.Bytes) {
		report("spec", -1, "CodeEnd %#x exceeds image size %#x", ce, len(img.Bytes))
		ce = len(img.Bytes)
	}
	fe := img.fillEnd()
	if fe > len(img.Bytes) {
		report("spec", -1, "FillEnd %#x exceeds image size %#x", fe, len(img.Bytes))
		fe = len(img.Bytes)
	}
	for _, e := range img.Entries {
		if int(e.Off) >= ce {
			report("entry", int(e.Off), "entry %q outside code region [0, %#x)", e.Name, ce)
		}
	}

	if img.CheckFill && fe > ce {
		checkFill(&img, ce, fe, report)
	}
	if img.SlotPadded {
		checkSlots(&img, ce, report)
	}
	for _, t := range img.Tables {
		checkTable(&img, t, report)
	}

	g := lift(&img, ce, report)
	if img.StraightLine {
		checkStraightLine(&img, g, report)
	}
	if img.SlotPadded {
		checkSlotTargets(&img, g, report)
	}
	if len(img.CSAllowed) > 0 {
		checkCS(&img, g, report)
	}
	if len(img.ROM) > 0 {
		checkStores(&img, g, report)
	}

	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Check != fs[j].Check {
			return fs[i].Check < fs[j].Check
		}
		if fs[i].Offset != fs[j].Offset {
			return fs[i].Offset < fs[j].Offset
		}
		return fs[i].Msg < fs[j].Msg
	})
	return fs
}

// checkFill proves Theorem 5.1's premise for [ce, fe): a decode walk
// entering the fill at any byte reaches `jmp FillTarget` within the
// region. The only tolerated escape is the final jmp's operand tail —
// trailing zero (nop) bytes that slide past an image whose fill runs
// to the very end; when the fill is followed by more image (a data
// section), no escape is legal.
func checkFill(img *Image, ce, fe int, report func(string, int, string, ...any)) {
	for off := ce; off < fe; off++ {
		pos := off
		for {
			if pos >= fe {
				// Walked past the fill without completing a jmp. The
				// final jmp's two operand bytes are the one inherent
				// escape of the 3-byte pattern (FillRegion documents
				// it); anything wider is a coverage hole.
				if fe-off <= 2 && allZero(img.Bytes[off:fe]) {
					break
				}
				report("fill-coverage", off, "decode walk escapes the fill region at %#x without reaching jmp %#x", pos, img.FillTarget)
				break
			}
			b := img.Bytes[pos]
			if b == byte(isa.OpNop) {
				pos++
				continue
			}
			if b != byte(isa.OpJmp) {
				report("fill-coverage", off, "fill byte %#02x at %#x is neither nop nor jmp", b, pos)
				break
			}
			if pos+2 >= fe {
				report("fill-coverage", off, "truncated jmp at %#x", pos)
				break
			}
			target := uint16(img.Bytes[pos+1]) | uint16(img.Bytes[pos+2])<<8
			if target != img.FillTarget {
				report("fill-coverage", off, "fill jmp at %#x targets %#x, want %#x", pos, target, img.FillTarget)
			}
			break
		}
	}
}

// checkSlots proves the §5.2 mask-closure property: CodeEnd is
// slot-aligned and every slot boundary in [0, CodeEnd) starts a valid
// instruction that fits inside its slot, so `(ip+15) & ^15` always
// resumes at an instruction start.
func checkSlots(img *Image, ce int, report func(string, int, string, ...any)) {
	if ce%isa.SlotSize != 0 {
		report("slot-align", ce, "code end %#x is not a multiple of the %d-byte slot size", ce, isa.SlotSize)
	}
	for off := 0; off+isa.SlotSize <= ce; off += isa.SlotSize {
		_, size, ok := isa.Decode(img.Bytes[off:ce])
		if !ok {
			report("slot-align", off, "slot boundary does not decode to a valid instruction")
			continue
		}
		if size > isa.SlotSize {
			report("slot-align", off, "instruction of %d bytes overflows its %d-byte slot", size, isa.SlotSize)
		}
	}
}

// checkTable verifies an embedded data table word-for-word.
func checkTable(img *Image, t Table, report func(string, int, string, ...any)) {
	for i, want := range t.Want {
		off := int(t.Off) + 2*i
		if off+1 >= len(img.Bytes) {
			report("table-content", off, "table %q entry %d extends past the image", t.Name, i)
			return
		}
		got := uint16(img.Bytes[off]) | uint16(img.Bytes[off+1])<<8
		if got != want {
			report("table-content", off, "table %q entry %d is %#x, want %#x", t.Name, i, got, want)
		}
	}
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
