package imglint

import (
	"sort"

	"ssos/internal/isa"
)

// node is one decoded instruction in the lifted CFG.
type node struct {
	inst isa.Inst
	size int
	// succs are intra-image successor offsets in decode order.
	succs []int
	// pred is the unique fall-through predecessor, or -1. It lets the
	// iret check walk back through the pushes that built the frame.
	pred int
}

// graph is the control-flow graph lifted from an image's entries.
type graph struct {
	nodes map[int]*node
	// order is the visited offsets in ascending order, for
	// deterministic iteration.
	order []int
	// entries are the lift roots.
	entries []int
}

// lift decodes the image from every declared entry, following jumps and
// fall-throughs, and reports undecodable instructions, out-of-code jump
// targets and fall-through past the code boundary. Reachability is
// computed over [0, ce) only: the fill and data regions have their own
// checks.
func lift(img *Image, ce int, report func(string, int, string, ...any)) *graph {
	g := &graph{nodes: map[int]*node{}}
	var work []int
	seen := map[int]bool{}
	push := func(off int) {
		if !seen[off] {
			seen[off] = true
			work = append(work, off)
		}
	}
	for _, e := range img.Entries {
		if int(e.Off) < ce {
			push(int(e.Off))
			g.entries = append(g.entries, int(e.Off))
		}
	}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		in, size, ok := isa.Decode(img.Bytes[off:ce])
		if !ok {
			report("reachability", off, "reachable offset does not decode to a valid instruction (byte %#02x)", img.Bytes[off])
			continue
		}
		n := &node{inst: in, size: size, pred: -1}
		g.nodes[off] = n

		jump := func(target uint16) {
			if int(target) >= ce {
				report("reachability", off, "jump target %#x outside the code region [0, %#x)", target, ce)
				return
			}
			n.succs = append(n.succs, int(target))
			push(int(target))
		}
		fall := func() {
			next := off + size
			if next >= ce {
				report("reachability", off, "execution falls through the code boundary %#x", ce)
				return
			}
			n.succs = append(n.succs, next)
			push(next)
		}

		switch in.Op {
		case isa.OpJmp:
			jump(in.Imm)
		case isa.OpJe, isa.OpJne, isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae, isa.OpLoop:
			jump(in.Imm)
			fall()
		case isa.OpCall:
			jump(in.Imm)
			fall()
		case isa.OpJmpFar:
			// Far transfer: intra-image only when it targets this
			// image's own segment.
			if in.Imm == img.Seg {
				jump(in.Imm2)
			}
		case isa.OpIret, isa.OpRet:
			// Terminal: the continuation comes from a stack frame the
			// static image does not determine.
		default:
			fall()
		}
	}

	for off := range g.nodes {
		g.order = append(g.order, off)
	}
	sort.Ints(g.order)
	// Record unique fall-through predecessors (offset order makes the
	// result deterministic; a second fall-through predecessor clears
	// the link).
	for _, off := range g.order {
		n := g.nodes[off]
		if isJump(n.inst.Op) {
			continue
		}
		next := off + n.size
		if m, ok := g.nodes[next]; ok {
			if m.pred == -1 {
				m.pred = off
			} else {
				m.pred = -2 // ambiguous
			}
		}
	}
	return g
}

// isJump reports whether op transfers control away from the next
// instruction unconditionally.
func isJump(op isa.Op) bool {
	return op == isa.OpJmp || op == isa.OpJmpFar
}

// checkStraightLine enforces the §5.1 process restrictions over the
// CFG: only forward control transfers (the sole exception is the final
// `jmp FillTarget` closing the chain), and none of the instruction
// classes the paper forbids for primitive processes.
func checkStraightLine(img *Image, g *graph, report func(string, int, string, ...any)) {
	for _, off := range g.order {
		n := g.nodes[off]
		switch n.inst.Op {
		case isa.OpHlt, isa.OpCall, isa.OpRet, isa.OpLoop, isa.OpIret, isa.OpInt,
			isa.OpPushR, isa.OpPushI, isa.OpPushS, isa.OpPushf,
			isa.OpPopR, isa.OpPopS, isa.OpPopf:
			report("loop-freedom", off, "straight-line process uses forbidden instruction %q", n.inst.Op.Mnemonic())
		}
		for _, s := range n.succs {
			if s <= off && s != int(img.FillTarget) {
				report("loop-freedom", off, "backward edge to %#x (only `jmp %#x` may go back)", s, img.FillTarget)
			}
		}
	}
}

// checkSlotTargets requires every explicit jump target in a slot-padded
// image to be slot-aligned, so the scheduler's ip masking can never
// construct an ip the program itself would not reach.
func checkSlotTargets(img *Image, g *graph, report func(string, int, string, ...any)) {
	for _, off := range g.order {
		n := g.nodes[off]
		switch n.inst.Op {
		case isa.OpJmp, isa.OpJe, isa.OpJne, isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae, isa.OpLoop, isa.OpCall:
			if n.inst.Imm%isa.SlotSize != 0 {
				report("slot-align", off, "jump target %#x is not slot-aligned", n.inst.Imm)
			}
		}
	}
}

// checkCS verifies cs confinement: far jumps must target an allowed
// segment, and an iret whose frame was built from constant pushes must
// push an allowed cs (the Figure-1 `push flags/cs/ip; iret` launch).
func checkCS(img *Image, g *graph, report func(string, int, string, ...any)) {
	allowed := func(seg uint16) bool {
		if seg == img.Seg {
			return true
		}
		for _, s := range img.CSAllowed {
			if s == seg {
				return true
			}
		}
		return false
	}
	for _, off := range g.order {
		n := g.nodes[off]
		switch n.inst.Op {
		case isa.OpJmpFar:
			if !allowed(n.inst.Imm) {
				report("cs-confinement", off, "far jump to segment %#x not in the allowed set", n.inst.Imm)
			}
		case isa.OpIret:
			// Walk back through unique fall-through predecessors
			// collecting the last three constant pushes; the middle
			// one is the cs the iret will load.
			var pushes []uint16
			cur := off
			for steps := 0; steps < 16 && len(pushes) < 3; steps++ {
				p := g.nodes[cur].pred
				if p < 0 {
					break
				}
				pn := g.nodes[p]
				if pn.inst.Op == isa.OpPushI {
					// Walking backward, pushes accumulate in reverse:
					// ip first, then cs, then flags.
					pushes = append(pushes, pn.inst.Imm)
				}
				cur = p
			}
			if len(pushes) >= 2 && !allowed(pushes[1]) {
				report("cs-confinement", off, "iret frame pushes cs %#x not in the allowed set", pushes[1])
			}
		}
	}
}
