package imglint

// The abstract value domain of the imglint interpreter: a three-tier
// lattice over 16-bit words, replacing PR 5's flat constant domain.
//
//	top               — any word
//	range [lo, hi]    — any word in a contiguous interval
//	set {v1, ... vk}  — an explicit sorted set, k <= setCap
//
// Sets keep the precision the ranking-certificate checker needs: the
// guest normalization sequences are masking ops (`and ax, 15`,
// `and ax, 2; or ax, 1`) whose images are small *non-contiguous* value
// sets, which intervals cannot represent (Ghosh's parity-anchored
// domains are {1,3} and {0,2}). Ranges keep the rom-store check's
// segment-window reasoning cheap when a value is bounded but not
// enumerable. All operations are sound over-approximations: the
// concretization of the result contains every word an execution could
// produce from words in the operands' concretizations.

// setCap bounds explicit-set size; larger results round up to a range
// (their hull) or top. 32 covers the full K-state domain (K=16) with
// room for joins.
const setCap = 32

// aval kinds.
const (
	aTop uint8 = iota
	aSet
	aRange
)

// aval is one abstract 16-bit value.
type aval struct {
	kind   uint8
	lo, hi uint16   // aRange bounds, inclusive
	set    []uint16 // aSet members, sorted ascending, 1 <= len <= setCap
}

// avTop is the unknown value.
func avTop() aval { return aval{kind: aTop} }

// avConst is the singleton abstraction of v.
func avConst(v uint16) aval { return aval{kind: aSet, set: []uint16{v}} }

// avSet builds a set value from sorted-or-not members, deduplicating.
// Empty input or overflow rounds to the hull range (top for empty).
func avSet(vs []uint16) aval {
	if len(vs) == 0 {
		return avTop()
	}
	sorted := append([]uint16(nil), vs...)
	insertionSort(sorted)
	w := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[w-1] {
			sorted[w] = v
			w++
		}
	}
	sorted = sorted[:w]
	if len(sorted) > setCap {
		return avRange(sorted[0], sorted[len(sorted)-1])
	}
	return aval{kind: aSet, set: sorted}
}

// avRange builds the interval [lo, hi]; an inverted pair rounds to top
// (the domain has no wraparound intervals).
func avRange(lo, hi uint16) aval {
	if lo > hi {
		return avTop()
	}
	if lo == hi {
		return avConst(lo)
	}
	return aval{kind: aRange, lo: lo, hi: hi}
}

// insertionSort keeps the domain free of sort-package allocations; sets
// are tiny.
func insertionSort(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// isTop reports whether v carries no information.
func (v aval) isTop() bool { return v.kind == aTop }

// constVal reports the single concrete value when v is a singleton.
func (v aval) constVal() (uint16, bool) {
	if v.kind == aSet && len(v.set) == 1 {
		return v.set[0], true
	}
	return 0, false
}

// bounds returns the inclusive concretization bounds (the full word
// range for top).
func (v aval) bounds() (lo, hi uint16) {
	switch v.kind {
	case aSet:
		return v.set[0], v.set[len(v.set)-1]
	case aRange:
		return v.lo, v.hi
	}
	return 0, 0xFFFF
}

// contains reports whether w is in v's concretization.
func (v aval) contains(w uint16) bool {
	switch v.kind {
	case aSet:
		for _, x := range v.set {
			if x == w {
				return true
			}
			if x > w {
				return false
			}
		}
		return false
	case aRange:
		return v.lo <= w && w <= v.hi
	}
	return true
}

// subsetOfWords reports whether every concrete value of v is in the
// given sorted word set. Top and ranges wider than the set answer
// false.
func (v aval) subsetOfWords(words []uint16) bool {
	switch v.kind {
	case aSet:
		for _, x := range v.set {
			if !wordIn(words, x) {
				return false
			}
		}
		return true
	case aRange:
		if int(v.hi)-int(v.lo) >= len(words) {
			return false
		}
		for w := uint32(v.lo); w <= uint32(v.hi); w++ {
			if !wordIn(words, uint16(w)) {
				return false
			}
		}
		return true
	}
	return false
}

func wordIn(sorted []uint16, w uint16) bool {
	for _, x := range sorted {
		if x == w {
			return true
		}
		if x > w {
			return false
		}
	}
	return false
}

// eq reports structural equality (used for fixpoint termination).
func (v aval) eq(o aval) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case aSet:
		if len(v.set) != len(o.set) {
			return false
		}
		for i := range v.set {
			if v.set[i] != o.set[i] {
				return false
			}
		}
		return true
	case aRange:
		return v.lo == o.lo && v.hi == o.hi
	}
	return true
}

// join is the lattice join: the result's concretization contains both
// operands'. Set-set joins stay sets while small; everything else
// rounds to the bounding hull or top.
func (v aval) join(o aval) aval {
	if v.isTop() || o.isTop() {
		return avTop()
	}
	if v.kind == aSet && o.kind == aSet {
		if len(v.set)+len(o.set) <= setCap {
			merged := make([]uint16, 0, len(v.set)+len(o.set))
			merged = append(merged, v.set...)
			merged = append(merged, o.set...)
			return avSet(merged)
		}
	}
	vlo, vhi := v.bounds()
	olo, ohi := o.bounds()
	return avRange(min16(vlo, olo), max16(vhi, ohi))
}

// widen is join with forced coarsening, guaranteeing a finite ascending
// chain: any growth collapses at least to the hull range, and a growing
// range jumps straight to top. Used by the fixpoint after the per-offset
// join budget is spent.
func (v aval) widen(o aval) aval {
	j := v.join(o)
	if j.eq(v) {
		return v
	}
	if j.kind == aSet {
		lo, hi := j.bounds()
		return avRange(lo, hi)
	}
	return avTop()
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}

// avBinop applies a concrete binary op pairwise when both operands are
// small sets, falling back to kindFallback (which may inspect bounds).
func avBinop(a, b aval, f func(x, y uint16) uint16, fallback func(a, b aval) aval) aval {
	if a.kind == aSet && b.kind == aSet && len(a.set)*len(b.set) <= setCap*2 {
		out := make([]uint16, 0, len(a.set)*len(b.set))
		for _, x := range a.set {
			for _, y := range b.set {
				out = append(out, f(x, y))
			}
		}
		return avSet(out)
	}
	return fallback(a, b)
}

// avAdd abstracts 16-bit addition (wrapping).
func avAdd(a, b aval) aval {
	return avBinop(a, b, func(x, y uint16) uint16 { return x + y }, func(a, b aval) aval {
		alo, ahi := a.bounds()
		blo, bhi := b.bounds()
		// Sound only when the concrete sums cannot wrap.
		if uint32(ahi)+uint32(bhi) <= 0xFFFF {
			return avRange(alo+blo, ahi+bhi)
		}
		return avTop()
	})
}

// avSub abstracts 16-bit subtraction (wrapping).
func avSub(a, b aval) aval {
	return avBinop(a, b, func(x, y uint16) uint16 { return x - y }, func(a, b aval) aval {
		alo, ahi := a.bounds()
		blo, bhi := b.bounds()
		// Sound only when no concrete difference can borrow.
		if alo >= bhi {
			return avRange(alo-bhi, ahi-blo)
		}
		return avTop()
	})
}

// avAnd abstracts bitwise and. Masking an arbitrary word with a
// constant yields the full masked range — the op that turns top into a
// bounded domain, which is exactly what the guest normalization
// sequences rely on.
func avAnd(a, b aval) aval {
	return avBinop(a, b, func(x, y uint16) uint16 { return x & y }, func(a, b aval) aval {
		if m, ok := b.constVal(); ok {
			return maskImage(m)
		}
		if m, ok := a.constVal(); ok {
			return maskImage(m)
		}
		_, ahi := a.bounds()
		_, bhi := b.bounds()
		return avRange(0, min16(ahi, bhi))
	})
}

// maskImage is the image of `x & m` over arbitrary x: the set of
// submasks of m when that set is small enough (exact even for sparse
// masks like 0b10, whose image {0, 2} no interval can express), else
// the hull [0, m].
func maskImage(m uint16) aval {
	bits := 0
	for v := m; v != 0; v &= v - 1 {
		bits++
	}
	if bits > 5 { // 2^5 = setCap submasks
		return avRange(0, m)
	}
	subs := make([]uint16, 0, 1<<bits)
	// Standard submask enumeration: s = (s-1)&m walks every submask.
	s := m
	for {
		subs = append(subs, s)
		if s == 0 {
			break
		}
		s = (s - 1) & m
	}
	return avSet(subs)
}

// avOr abstracts bitwise or. x|y is bounded by the all-ones fill of
// both operands' upper bounds.
func avOr(a, b aval) aval {
	return avBinop(a, b, func(x, y uint16) uint16 { return x | y }, func(a, b aval) aval {
		alo, ahi := a.bounds()
		blo, bhi := b.bounds()
		return avRange(max16(alo, blo), fillBits(ahi)|fillBits(bhi))
	})
}

// avXor abstracts bitwise xor.
func avXor(a, b aval) aval {
	return avBinop(a, b, func(x, y uint16) uint16 { return x ^ y }, func(a, b aval) aval {
		_, ahi := a.bounds()
		_, bhi := b.bounds()
		return avRange(0, fillBits(ahi)|fillBits(bhi))
	})
}

// fillBits returns the all-ones mask covering v (0 -> 0).
func fillBits(v uint16) uint16 {
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	return v
}

// avShl abstracts shl by an immediate (count masked to 0..15 as the
// machine does).
func avShl(a aval, count uint16) aval {
	c := count & 15
	return avBinop(a, avConst(c), func(x, y uint16) uint16 { return x << y }, func(a, _ aval) aval {
		_, ahi := a.bounds()
		if uint32(ahi)<<c <= 0xFFFF {
			alo, _ := a.bounds()
			return avRange(alo<<c, ahi<<c)
		}
		return avTop()
	})
}

// avShr abstracts shr by an immediate.
func avShr(a aval, count uint16) aval {
	c := count & 15
	return avBinop(a, avConst(c), func(x, y uint16) uint16 { return x >> y }, func(a, _ aval) aval {
		alo, ahi := a.bounds()
		return avRange(alo>>c, ahi>>c)
	})
}

// Branch refinement: given the abstract operands of a cmp and the
// branch direction taken, return refined operand values. rel names the
// relation that HOLDS on the chosen edge ("eq", "ne", "b", "ae", "be",
// "a" — unsigned, as the jcc family tests).

// refine returns a's refinement under `a rel b`. It is sound: the
// result contains every concrete x in a for which some y in b satisfies
// x rel y.
func refine(a, b aval, rel string) aval {
	if a.isTop() && b.isTop() {
		return a
	}
	blo, bhi := b.bounds()
	switch rel {
	case "eq":
		// x must equal some member of b.
		if b.kind == aSet {
			if a.kind == aSet {
				var out []uint16
				for _, x := range a.set {
					if b.contains(x) {
						out = append(out, x)
					}
				}
				return avSetOrBottom(out, a)
			}
			var out []uint16
			for _, y := range b.set {
				if a.contains(y) {
					out = append(out, y)
				}
			}
			return avSetOrBottom(out, a)
		}
		return clip(a, blo, bhi)
	case "ne":
		// Only a singleton b removes anything representable.
		if bv, ok := b.constVal(); ok && a.kind == aSet {
			var out []uint16
			for _, x := range a.set {
				if x != bv {
					out = append(out, x)
				}
			}
			return avSetOrBottom(out, a)
		}
		return a
	case "b": // x < some y
		if bhi == 0 {
			return a
		}
		return clip(a, 0, bhi-1)
	case "be": // x <= some y
		return clip(a, 0, bhi)
	case "a": // x > some y
		if blo == 0xFFFF {
			return a
		}
		return clip(a, blo+1, 0xFFFF)
	case "ae": // x >= some y
		return clip(a, blo, 0xFFFF)
	}
	return a
}

// clip intersects a with [lo, hi].
func clip(a aval, lo, hi uint16) aval {
	switch a.kind {
	case aSet:
		var out []uint16
		for _, x := range a.set {
			if lo <= x && x <= hi {
				out = append(out, x)
			}
		}
		return avSetOrBottom(out, a)
	case aRange:
		return avRange(max16(a.lo, lo), min16(a.hi, hi))
	}
	return avRange(lo, hi)
}

// avSetOrBottom returns the refined set, or the unrefined value when
// the set came out empty (an empty refinement means the edge is
// infeasible; callers that can prune edges detect that separately via
// feasible, and callers that cannot must stay sound).
func avSetOrBottom(out []uint16, orig aval) aval {
	if len(out) == 0 {
		return orig
	}
	return avSet(out)
}

// feasible reports whether `a rel b` can hold for some concrete pair.
// Used by the certificate walker to decide conditional branches: with
// singleton operands exactly one of rel / negation is feasible.
func feasible(a, b aval, rel string) bool {
	alo, ahi := a.bounds()
	blo, bhi := b.bounds()
	switch rel {
	case "eq":
		if a.kind == aSet && b.kind == aSet {
			for _, x := range a.set {
				if b.contains(x) {
					return true
				}
			}
			return false
		}
		return alo <= bhi && blo <= ahi
	case "ne":
		av, aok := a.constVal()
		bv, bok := b.constVal()
		if aok && bok {
			return av != bv
		}
		return true
	case "b":
		return alo < bhi
	case "be":
		return alo <= bhi
	case "a":
		return ahi > blo
	case "ae":
		return ahi >= blo
	}
	return true
}
