package imglint_test

import (
	"strings"
	"testing"

	"ssos/internal/guest"
	"ssos/internal/imglint"
	"ssos/internal/isa"
)

// certByName builds the full certificate catalog and returns one spec.
func certByName(t *testing.T, name string) guest.RingCertSpec {
	t.Helper()
	specs, err := guest.ConvergenceCerts()
	if err != nil {
		t.Fatalf("ConvergenceCerts: %v", err)
	}
	for _, s := range specs {
		if s.Cert.Name == name {
			return s
		}
	}
	t.Fatalf("no certificate named %q", name)
	return guest.RingCertSpec{}
}

// TestConvergenceCertsProve: every catalog certificate proves, and the
// ranking-mode ones carry a finite steps-to-legal bound.
func TestConvergenceCertsProve(t *testing.T) {
	specs, err := guest.ConvergenceCerts()
	if err != nil {
		t.Fatalf("ConvergenceCerts: %v", err)
	}
	if len(specs) < 18 {
		t.Fatalf("only %d certificates in the catalog, want >= 18", len(specs))
	}
	modes := map[string]int{}
	for _, spec := range specs {
		r := imglint.CheckRingCert(spec.Cert)
		if !r.Proved() {
			t.Errorf("%s: not proved:", r.Name)
			for _, f := range r.Findings {
				t.Errorf("  %s", f)
			}
			continue
		}
		modes[r.Mode]++
		if r.Mode == "ranking" && r.Bound < r.N {
			t.Errorf("%s: bound %d below the mid-entry grace %d", r.Name, r.Bound, r.N)
		}
	}
	if modes["ranking"] < 12 {
		t.Errorf("only %d ranking-mode certificates, want >= 12 (got %v)", modes["ranking"], modes)
	}
}

// TestCertDeterministic: the checker's verdict is byte-stable across
// runs on the same certificate.
func TestCertDeterministic(t *testing.T) {
	spec := certByName(t, "mbox-dijkstra3")
	a := imglint.CheckRingCert(spec.Cert)
	b := imglint.CheckRingCert(certByName(t, "mbox-dijkstra3").Cert)
	if a.Bound != b.Bound || a.RankBound != b.RankBound || a.States != b.States || len(a.Findings) != len(b.Findings) {
		t.Fatalf("verdict not deterministic: %+v vs %+v", a, b)
	}
}

// TestCertTamperedImageFails: planting a forbidden instruction in the
// certified bytes (hlt at the iteration head) breaks the graph
// obligations — the certificate must not prove.
func TestCertTamperedImageFails(t *testing.T) {
	spec := certByName(t, "mbox-dijkstra3")
	bytes := append([]byte(nil), spec.Cert.Nodes[0].Image.Bytes...)
	bytes[0] = byte(isa.OpHlt)
	spec.Cert.Nodes[0].Image.Bytes = bytes
	r := imglint.CheckRingCert(spec.Cert)
	if r.Proved() {
		t.Fatal("tampered image (hlt at head) still proves")
	}
	found := false
	for _, f := range r.Findings {
		if f.Check == "cert-termination" && strings.Contains(f.Msg, "forbidden instruction") {
			found = true
		}
	}
	if !found {
		t.Errorf("no cert-termination/forbidden-instruction finding in %v", r.Findings)
	}
}

// TestCertWrongMovesFails: a declared move table that disagrees with
// the shipped bytes is caught by the extraction cross-check — the
// declared protocol cannot silently drift from the ROM.
func TestCertWrongMovesFails(t *testing.T) {
	spec := certByName(t, "mbox-dijkstra3")
	orig := spec.Cert.Moves
	spec.Cert.Moves = func(node int, self, left, right uint16) (bool, uint16) {
		w, v := orig(node, self, left, right)
		if node == 1 && w {
			return true, (v + 1) % 3 // deliberately wrong successor value
		}
		return w, v
	}
	r := imglint.CheckRingCert(spec.Cert)
	if r.Proved() {
		t.Fatal("certificate with a wrong declared move table still proves")
	}
	found := false
	for _, f := range r.Findings {
		if f.Check == "cert-extraction" && strings.Contains(f.Msg, "differs from declared") {
			found = true
		}
	}
	if !found {
		t.Errorf("no cert-extraction mismatch finding in %v", r.Findings)
	}
}

// TestCertBrokenVariantFails: a variant that never strictly decreases
// (constant zero) must fail the ranking pass on any system with
// illegal states.
func TestCertBrokenVariantFails(t *testing.T) {
	spec := certByName(t, "mbox-dijkstra3-n4")
	spec.Cert.Variant = func(x []uint16) int { return 0 }
	r := imglint.CheckRingCert(spec.Cert)
	if r.Proved() {
		t.Fatal("constant variant still proves on a system with illegal states")
	}
	found := false
	for _, f := range r.Findings {
		if f.Check == "cert-ranking" {
			found = true
		}
	}
	if !found {
		t.Errorf("no cert-ranking finding in %v", r.Findings)
	}
}

// TestCertConfinementCatchesForeignStore: shrinking a node's declared
// data window turns its own in-window stores into confinement
// violations — the write-confinement obligation is live.
func TestCertConfinementCatchesForeignStore(t *testing.T) {
	spec := certByName(t, "mbox-dijkstra3")
	spec.Cert.Nodes[0].DataHi = spec.Cert.Nodes[0].DataLo // empty window
	r := imglint.CheckRingCert(spec.Cert)
	if r.Proved() {
		t.Fatal("empty data window still proves")
	}
	found := false
	for _, f := range r.Findings {
		if f.Check == "cert-confinement" {
			found = true
		}
	}
	if !found {
		t.Errorf("no cert-confinement finding in %v", r.Findings)
	}
}
