package imglint

import (
	"math/rand"
	"testing"
)

// sample returns a few concrete witnesses of an abstract value (for
// top, a spread of the whole space).
func sample(v aval, r *rand.Rand) []uint16 {
	switch v.kind {
	case aTop:
		return []uint16{0, 1, uint16(r.Uint32()), 0x7FFF, 0xFFFF}
	case aSet:
		return v.set
	default:
		out := []uint16{v.lo, v.hi}
		if v.hi > v.lo {
			out = append(out, v.lo+uint16(r.Uint32())%(v.hi-v.lo+1))
		}
		return out
	}
}

// randAval draws a random abstract value of any kind.
func randAval(r *rand.Rand) aval {
	switch r.Intn(4) {
	case 0:
		return avTop()
	case 1:
		return avConst(uint16(r.Uint32()))
	case 2:
		n := 1 + r.Intn(6)
		vs := make([]uint16, n)
		for i := range vs {
			vs[i] = uint16(r.Uint32() % 64)
		}
		return avSet(vs)
	default:
		a, b := uint16(r.Uint32()%256), uint16(r.Uint32()%256)
		if a > b {
			a, b = b, a
		}
		return avRange(a, b)
	}
}

// TestAvalBinopSoundness: for every abstract operator, the abstraction
// of any concrete result pair is contained in the abstract result —
// the local soundness condition the certificate prover rests on.
func TestAvalBinopSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ops := []struct {
		name string
		abs  func(a, b aval) aval
		conc func(x, y uint16) uint16
	}{
		{"add", avAdd, func(x, y uint16) uint16 { return x + y }},
		{"sub", avSub, func(x, y uint16) uint16 { return x - y }},
		{"and", avAnd, func(x, y uint16) uint16 { return x & y }},
		{"or", avOr, func(x, y uint16) uint16 { return x | y }},
		{"xor", avXor, func(x, y uint16) uint16 { return x ^ y }},
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randAval(r), randAval(r)
		for _, op := range ops {
			res := op.abs(a, b)
			for _, x := range sample(a, r) {
				for _, y := range sample(b, r) {
					if got := op.conc(x, y); !res.contains(got) {
						t.Fatalf("%s: %v op %v = %v does not contain %d (from %d, %d)",
							op.name, a, b, res, got, x, y)
					}
				}
			}
		}
		count := uint16(r.Uint32() % 17)
		shl, shr := avShl(a, count), avShr(a, count)
		for _, x := range sample(a, r) {
			if got := x << (count & 15); !shl.contains(got) {
				t.Fatalf("shl %v by %d = %v misses %d", a, count, shl, got)
			}
			if got := x >> (count & 15); !shr.contains(got) {
				t.Fatalf("shr %v by %d = %v misses %d", a, count, shr, got)
			}
		}
	}
}

// TestAvalJoinWiden: join is an upper bound of both sides; widen is an
// upper bound of join and reaches a fixpoint (no infinite ascending
// chain under repeated widening).
func TestAvalJoinWiden(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a, b := randAval(r), randAval(r)
		j := a.join(b)
		for _, x := range append(sample(a, r), sample(b, r)...) {
			if !j.contains(x) {
				t.Fatalf("join(%v, %v) = %v misses %d", a, b, j, x)
			}
		}
		w := a.widen(b)
		for _, x := range append(sample(a, r), sample(b, r)...) {
			if !w.contains(x) {
				t.Fatalf("widen(%v, %v) = %v misses %d", a, b, w, x)
			}
		}
		// Chain termination: widening the widened value with anything
		// larger stabilizes within a handful of steps.
		cur := a
		for i := 0; i < 40; i++ {
			next := cur.widen(randAval(r))
			if next.eq(cur.join(next) /* next is an upper bound */) && cur.eq(next) {
				break
			}
			cur = next
			if i == 39 && !cur.isTop() {
				// Widening must have hit top (or a fixpoint caught above)
				// long before 40 iterations.
				t.Fatalf("widening chain did not stabilize: %v", cur)
			}
		}
	}
}

// TestMaskImage: masking with a small-popcount constant yields the
// exact submask set — the precision the Ghosh parity domains need.
func TestMaskImage(t *testing.T) {
	img := maskImage(2)
	for _, want := range []uint16{0, 2} {
		if !img.contains(want) {
			t.Fatalf("maskImage(2) = %v misses %d", img, want)
		}
	}
	if img.contains(1) || img.contains(3) {
		t.Fatalf("maskImage(2) = %v is not exact", img)
	}
	// and reg,3 then or reg,1 — the Ghosh owner-0 normalizer — must
	// land exactly in {1,3}.
	norm := avOr(avAnd(avTop(), avConst(3)), avConst(1))
	for _, want := range []uint16{1, 3} {
		if !norm.contains(want) {
			t.Fatalf("owner-0 normalizer image %v misses %d", norm, want)
		}
	}
	if norm.contains(0) || norm.contains(2) {
		t.Fatalf("owner-0 normalizer image %v is not exact", norm)
	}
	// Wide masks fall back to a range.
	wide := maskImage(0x7FFF)
	if wide.kind != aRange || wide.lo != 0 || wide.hi != 0x7FFF {
		t.Fatalf("maskImage(0x7FFF) = %v, want range [0, 0x7FFF]", wide)
	}
}

// TestRefineSoundAndPrecise: refine(a, b, rel) keeps every witness of a
// that can satisfy the relation against some witness of b, and feasible
// agrees with concrete satisfiability.
func TestRefineSoundAndPrecise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rels := []string{"eq", "ne", "b", "be", "a", "ae"}
	holds := func(rel string, x, y uint16) bool {
		switch rel {
		case "eq":
			return x == y
		case "ne":
			return x != y
		case "b":
			return x < y
		case "be":
			return x <= y
		case "a":
			return x > y
		default:
			return x >= y
		}
	}
	for trial := 0; trial < 4000; trial++ {
		a, b := randAval(r), randAval(r)
		rel := rels[r.Intn(len(rels))]
		ref := refine(a, b, rel)
		anyPair := false
		for _, x := range sample(a, r) {
			for _, y := range sample(b, r) {
				if holds(rel, x, y) {
					anyPair = true
					if !ref.contains(x) {
						t.Fatalf("refine(%v, %v, %s) = %v dropped witness %d (against %d)",
							a, b, rel, ref, x, y)
					}
				}
			}
		}
		if anyPair && !feasible(a, b, rel) {
			t.Fatalf("feasible(%v, %v, %s) = false but a concrete pair satisfies it", a, b, rel)
		}
	}
}
