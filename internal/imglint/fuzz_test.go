package imglint_test

import (
	"reflect"
	"testing"

	"ssos/internal/imglint"
)

// FuzzImageLint feeds arbitrary byte images through every check with
// an adversarial spec: Check must never panic and must return the same
// verdict for the same input.
func FuzzImageLint(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint16(0), uint16(0))
	f.Add([]byte{0x40, 0x00, 0x00}, uint16(0), uint16(3), uint16(0))
	f.Add([]byte{0xFF, 0x00, 0x90, 0x40}, uint16(2), uint16(1), uint16(0x2000))
	f.Add(make([]byte, 64), uint16(64), uint16(16), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, img []byte, codeEnd, entry, cs uint16) {
		spec := imglint.Image{
			Name:         "fuzz",
			Bytes:        img,
			Seg:          0xF000,
			Entries:      []imglint.Entry{{Name: "e", Off: entry}},
			CodeEnd:      int(codeEnd),
			CheckFill:    true,
			FillTarget:   0,
			SlotPadded:   true,
			StraightLine: true,
			Tables:       []imglint.Table{{Name: "t", Off: entry, Want: []uint16{cs}}},
			CSAllowed:    []uint16{cs},
			ROM:          []imglint.Range{{Name: "rom", Start: 0xF0000, End: 0x100000}},
		}
		first := imglint.Check(spec)
		if again := imglint.Check(spec); !reflect.DeepEqual(first, again) {
			t.Fatalf("verdict not deterministic:\n%v\nvs\n%v", first, again)
		}
	})
}
