package imglint_test

import (
	"reflect"
	"testing"

	"ssos/internal/guest"
	"ssos/internal/imglint"
	"ssos/internal/isa"
)

// mailboxSeedImages returns the assembled mailbox ring node images —
// real certified bytes, the highest-value seeds for both fuzzers since
// every interesting code shape (normalizers, guards, beat footer,
// slot padding) appears in them.
func mailboxSeedImages(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	for _, v := range guest.RingVariants() {
		set, err := guest.BuildMailboxProcesses(v)
		if err != nil {
			f.Fatalf("BuildMailboxProcesses(%v): %v", v, err)
		}
		for i := 0; i < guest.MailboxNodes; i++ {
			out = append(out, set.Images[i])
		}
	}
	return out
}

// FuzzImageLint feeds arbitrary byte images through every check with
// an adversarial spec: Check must never panic and must return the same
// verdict for the same input.
func FuzzImageLint(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint16(0), uint16(0))
	f.Add([]byte{0x40, 0x00, 0x00}, uint16(0), uint16(3), uint16(0))
	f.Add([]byte{0xFF, 0x00, 0x90, 0x40}, uint16(2), uint16(1), uint16(0x2000))
	f.Add(make([]byte, 64), uint16(64), uint16(16), uint16(0xFFFF))
	// The certified mailbox ring images, plus crafted near-misses
	// (tampered head, truncated tail) kept as regression counterexamples
	// for the certificate checker's lifted-CFG path.
	for _, img := range mailboxSeedImages(f) {
		f.Add(img, uint16(len(img)), uint16(0), uint16(0xA000))
		tampered := append([]byte(nil), img...)
		tampered[0] = byte(isa.OpHlt)
		f.Add(tampered, uint16(len(img)), uint16(0), uint16(0xA000))
		f.Add(img[:len(img)/2], uint16(len(img)), uint16(16), uint16(0xA000))
	}
	f.Fuzz(func(t *testing.T, img []byte, codeEnd, entry, cs uint16) {
		spec := imglint.Image{
			Name:         "fuzz",
			Bytes:        img,
			Seg:          0xF000,
			Entries:      []imglint.Entry{{Name: "e", Off: entry}},
			CodeEnd:      int(codeEnd),
			CheckFill:    true,
			FillTarget:   0,
			SlotPadded:   true,
			StraightLine: true,
			Tables:       []imglint.Table{{Name: "t", Off: entry, Want: []uint16{cs}}},
			CSAllowed:    []uint16{cs},
			ROM:          []imglint.Range{{Name: "rom", Start: 0xF0000, End: 0x100000}},
		}
		first := imglint.Check(spec)
		if again := imglint.Check(spec); !reflect.DeepEqual(first, again) {
			t.Fatalf("verdict not deterministic:\n%v\nvs\n%v", first, again)
		}
	})
}

// FuzzRingCert swaps arbitrary bytes into one node of the smallest
// catalog certificate and re-runs the prover: CheckRingCert must never
// panic, must stay deterministic, and whenever it proves, the bound
// must equal the ranked bound plus the mid-entry grace — i.e. a proof
// is always a real ranking proof, never a degenerate verdict. (Byte
// mutations may still legitimately prove: the extraction is semantic,
// and e.g. truncating trailing padding leaves the step loop intact.)
// Tampered and truncated catalog images ride in the seed corpus as
// kept counterexamples.
func FuzzRingCert(f *testing.F) {
	specs, err := guest.ConvergenceCerts()
	if err != nil {
		f.Fatalf("ConvergenceCerts: %v", err)
	}
	var base *guest.RingCertSpec
	for i := range specs {
		if specs[i].Cert.Name == "mbox-dijkstra3-n2" {
			base = &specs[i]
		}
	}
	if base == nil {
		f.Fatal("no mbox-dijkstra3-n2 certificate in the catalog")
	}
	for i, node := range base.Cert.Nodes {
		f.Add(uint8(i), node.Image.Bytes)
		tampered := append([]byte(nil), node.Image.Bytes...)
		tampered[0] = byte(isa.OpHlt)
		f.Add(uint8(i), tampered)
		f.Add(uint8(i), node.Image.Bytes[:len(node.Image.Bytes)/2])
		f.Add(uint8(i), []byte{})
	}
	f.Fuzz(func(t *testing.T, idx uint8, img []byte) {
		i := int(idx) % len(base.Cert.Nodes)
		cert := base.Cert
		cert.Nodes = append([]imglint.RingNode(nil), base.Cert.Nodes...)
		cert.Nodes[i].Image.Bytes = img
		first := imglint.CheckRingCert(cert)
		again := imglint.CheckRingCert(cert)
		if first.Proved() != again.Proved() || first.Bound != again.Bound ||
			first.RankBound != again.RankBound || len(first.Findings) != len(again.Findings) {
			t.Fatalf("verdict not deterministic: %+v vs %+v", first, again)
		}
		if first.Proved() {
			if first.Mode != "ranking" {
				t.Fatalf("proved in mode %q, want ranking (n=%d fits the cap)", first.Mode, first.N)
			}
			if first.Bound != first.RankBound+first.N || first.RankBound < 0 {
				t.Fatalf("degenerate proof: bound %d, rank %d, n %d", first.Bound, first.RankBound, first.N)
			}
		}
	})
}
