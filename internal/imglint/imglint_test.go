package imglint_test

import (
	"reflect"
	"testing"

	"ssos/internal/imglint"
	"ssos/internal/isa"
)

// enc concatenates the encodings of a synthetic instruction sequence.
func enc(ins ...isa.Inst) []byte {
	var b []byte
	for _, in := range ins {
		b = in.Encode(b)
	}
	return b
}

func findings(img imglint.Image, check string) []imglint.Finding {
	var out []imglint.Finding
	for _, f := range imglint.Check(img) {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// jmp0Fill appends 3-byte jmp-0 patterns laid backward from size, the
// FillRegion layout.
func jmp0Fill(code []byte, size int) []byte {
	img := make([]byte, size)
	copy(img, code)
	for pos := size - 3; pos >= len(code); pos -= 3 {
		img[pos] = byte(isa.OpJmp)
	}
	return img
}

func TestCleanImagePasses(t *testing.T) {
	code := enc(
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.AX), Imm: 0x6000},
		isa.Inst{Op: isa.OpMovSR, R1: uint8(isa.DS), R2: uint8(isa.AX)},
		isa.Inst{Op: isa.OpIncR, R1: uint8(isa.AX)},
		isa.Inst{Op: isa.OpJmp, Imm: 0},
	)
	img := imglint.Image{
		Name:         "clean",
		Bytes:        jmp0Fill(code, 64),
		Seg:          0xF000,
		Entries:      []imglint.Entry{{Name: "start", Off: 0}},
		CodeEnd:      len(code),
		CheckFill:    true,
		FillTarget:   0,
		StraightLine: true,
		ROM:          []imglint.Range{{Name: "rom", Start: 0xF0000, End: 0x100000}},
	}
	if fs := imglint.Check(img); len(fs) != 0 {
		t.Fatalf("clean image has findings: %v", fs)
	}
}

func TestFillCoverageFlagsForeignByte(t *testing.T) {
	code := enc(isa.Inst{Op: isa.OpJmp, Imm: 0})
	img := jmp0Fill(code, 30)
	img[10] = 0xFF // not an opcode, certainly not nop/jmp
	spec := imglint.Image{
		Name: "fill", Bytes: img, Entries: []imglint.Entry{{Off: 0}},
		CodeEnd: len(code), CheckFill: true, FillTarget: 0,
	}
	fs := findings(spec, "fill-coverage")
	if len(fs) == 0 {
		t.Fatal("foreign fill byte not flagged")
	}
	// Walks entering at the preceding nops are flagged too; the
	// corrupted byte itself must be among the named offsets.
	var hit bool
	for _, f := range fs {
		if f.Offset == 10 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("corrupted offset 0x0a not named: %v", fs)
	}
}

func TestFillCoverageFlagsWrongTarget(t *testing.T) {
	code := enc(isa.Inst{Op: isa.OpJmp, Imm: 0})
	img := jmp0Fill(code, 30)
	// Redirect one fill jmp: operand bytes follow the opcode.
	img[len(img)-2] = 0x34
	spec := imglint.Image{
		Name: "fill", Bytes: img, Entries: []imglint.Entry{{Off: 0}},
		CodeEnd: len(code), CheckFill: true, FillTarget: 0,
	}
	if len(findings(spec, "fill-coverage")) == 0 {
		t.Fatal("retargeted fill jmp not flagged")
	}
}

func TestSlotAlignFlagsMisalignedCode(t *testing.T) {
	// Three 4-byte movs: code end 12 is not a slot multiple.
	code := enc(
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.AX), Imm: 1},
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.BX), Imm: 2},
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.CX), Imm: 3},
	)
	spec := imglint.Image{
		Name: "slots", Bytes: code, Entries: []imglint.Entry{{Off: 0}},
		SlotPadded: true,
	}
	if len(findings(spec, "slot-align")) == 0 {
		t.Fatal("misaligned code end not flagged")
	}
}

func TestSlotAlignFlagsUnalignedJumpTarget(t *testing.T) {
	// One slot: mov (4 bytes) + jmp 4 (unaligned target) + nops.
	code := make([]byte, 16)
	copy(code, enc(
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.AX), Imm: 1},
		isa.Inst{Op: isa.OpJmp, Imm: 4},
	))
	spec := imglint.Image{
		Name: "slots", Bytes: code, Entries: []imglint.Entry{{Off: 0}},
		SlotPadded: true,
	}
	var hit bool
	for _, f := range findings(spec, "slot-align") {
		if f.Offset == 4 {
			hit = true
		}
	}
	if !hit {
		t.Fatal("unaligned jump target not flagged")
	}
}

func TestLoopFreedomFlagsBackwardEdgeAndForbiddenOps(t *testing.T) {
	// inc; jmp 4 (back to the inc, not to FillTarget 0); hlt.
	code := enc(
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.AX), Imm: 1}, // 0..3
		isa.Inst{Op: isa.OpIncR, R1: uint8(isa.AX)},          // 4..5
		isa.Inst{Op: isa.OpJe, Imm: 4},                       // 6..8: backward edge
		isa.Inst{Op: isa.OpHlt},                              // 9: forbidden
		isa.Inst{Op: isa.OpJmp, Imm: 0},                      // 10..12
	)
	spec := imglint.Image{
		Name: "straight", Bytes: code, Entries: []imglint.Entry{{Off: 0}},
		StraightLine: true, FillTarget: 0,
	}
	fs := findings(spec, "loop-freedom")
	var backward, forbidden bool
	for _, f := range fs {
		if f.Offset == 6 {
			backward = true
		}
		if f.Offset == 9 {
			forbidden = true
		}
	}
	if !backward {
		t.Errorf("backward conditional edge not flagged: %v", fs)
	}
	if !forbidden {
		t.Errorf("hlt in straight-line code not flagged: %v", fs)
	}
}

func TestReachabilityFlagsUndecodableEntryAndEscapingJump(t *testing.T) {
	code := enc(isa.Inst{Op: isa.OpJmp, Imm: 0x200}) // target beyond code
	code = append(code, 0xFF)                        // undecodable
	spec := imglint.Image{
		Name:  "reach",
		Bytes: code,
		Entries: []imglint.Entry{
			{Name: "a", Off: 0},
			{Name: "b", Off: 3},
		},
	}
	fs := findings(spec, "reachability")
	if len(fs) != 2 {
		t.Fatalf("want 2 reachability findings (escaping jump, undecodable), got %v", fs)
	}
}

func TestTableContentFlagsWrongWord(t *testing.T) {
	code := enc(isa.Inst{Op: isa.OpJmp, Imm: 0})
	img := append(code, 0x00, 0x50, 0x00, 0x51) // table: 0x5000, 0x5100
	spec := imglint.Image{
		Name: "table", Bytes: img, Entries: []imglint.Entry{{Off: 0}},
		CodeEnd: len(code),
		Tables: []imglint.Table{
			{Name: "limits", Off: uint16(len(code)), Want: []uint16{0x5000, 0x5200}},
		},
	}
	fs := findings(spec, "table-content")
	if len(fs) != 1 {
		t.Fatalf("want 1 table finding, got %v", fs)
	}
	if fs[0].Offset != len(code)+2 {
		t.Errorf("finding at %#x, want %#x", fs[0].Offset, len(code)+2)
	}
}

func TestCSConfinementFlagsFarJumpAndIretFrame(t *testing.T) {
	code := enc(
		isa.Inst{Op: isa.OpJmpFar, Imm: 0x7777, Imm2: 0}, // far jump to foreign seg
	)
	spec := imglint.Image{
		Name: "cs", Bytes: code, Entries: []imglint.Entry{{Off: 0}},
		CSAllowed: []uint16{0x2000},
	}
	if len(findings(spec, "cs-confinement")) == 0 {
		t.Fatal("foreign far jump not flagged")
	}

	frame := enc(
		isa.Inst{Op: isa.OpPushI, Imm: 0x02},   // flags
		isa.Inst{Op: isa.OpPushI, Imm: 0x7777}, // cs: not allowed
		isa.Inst{Op: isa.OpPushI, Imm: 0x00},   // ip
		isa.Inst{Op: isa.OpIret},
	)
	spec = imglint.Image{
		Name: "cs", Bytes: frame, Entries: []imglint.Entry{{Off: 0}},
		CSAllowed: []uint16{0x2000},
	}
	if len(findings(spec, "cs-confinement")) == 0 {
		t.Fatal("iret frame pushing foreign cs not flagged")
	}

	// The same frame with an allowed cs is clean.
	frame = enc(
		isa.Inst{Op: isa.OpPushI, Imm: 0x02},
		isa.Inst{Op: isa.OpPushI, Imm: 0x2000},
		isa.Inst{Op: isa.OpPushI, Imm: 0x00},
		isa.Inst{Op: isa.OpIret},
	)
	spec.Bytes = frame
	if fs := findings(spec, "cs-confinement"); len(fs) != 0 {
		t.Fatalf("allowed iret frame flagged: %v", fs)
	}
}

func TestROMStoreFlagsProvableStore(t *testing.T) {
	// mov ax, 0xE000; mov ds, ax; mov word [5], 1 — a store the constant
	// propagation can prove lands at linear 0xE0005, inside ROM.
	code := enc(
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.AX), Imm: 0xE000},
		isa.Inst{Op: isa.OpMovSR, R1: uint8(isa.DS), R2: uint8(isa.AX)},
		isa.Inst{Op: isa.OpMovMI, Mem: isa.MemOp{Seg: isa.DS, Disp: 5}, Imm: 1},
		isa.Inst{Op: isa.OpHlt},
	)
	spec := imglint.Image{
		Name: "store", Bytes: code, Entries: []imglint.Entry{{Off: 0}},
		ROM: []imglint.Range{{Name: "os-image", Start: 0xE0000, End: 0xE0E40}},
	}
	fs := findings(spec, "rom-store")
	if len(fs) != 1 {
		t.Fatalf("want 1 rom-store finding, got %v", fs)
	}

	// The same store with an unknown segment is not provable: no finding.
	code = enc(
		isa.Inst{Op: isa.OpMovMI, Mem: isa.MemOp{Seg: isa.DS, Disp: 5}, Imm: 1},
		isa.Inst{Op: isa.OpHlt},
	)
	spec.Bytes = code
	if fs := findings(spec, "rom-store"); len(fs) != 0 {
		t.Fatalf("unprovable store flagged: %v", fs)
	}
}

func TestROMStoreSurvivesJoin(t *testing.T) {
	// Two paths set ds to the same ROM segment; the store after the join
	// is still provable.
	code := enc(
		isa.Inst{Op: isa.OpMovRI, R1: uint8(isa.AX), Imm: 0xE000},       // 0..3
		isa.Inst{Op: isa.OpJe, Imm: 8},                                  // 4..6
		isa.Inst{Op: isa.OpNop},                                         // 7
		isa.Inst{Op: isa.OpMovSR, R1: uint8(isa.DS), R2: uint8(isa.AX)}, // 8..10 join
		isa.Inst{Op: isa.OpMovMI, Mem: isa.MemOp{Seg: isa.DS, Disp: 0}, Imm: 1},
		isa.Inst{Op: isa.OpHlt},
	)
	spec := imglint.Image{
		Name: "join", Bytes: code, Entries: []imglint.Entry{{Off: 0}},
		ROM: []imglint.Range{{Name: "rom", Start: 0xE0000, End: 0xF0000}},
	}
	if len(findings(spec, "rom-store")) == 0 {
		t.Fatal("store after equal-constant join not flagged")
	}
}

func TestEntryOutsideCodeFlagged(t *testing.T) {
	code := enc(isa.Inst{Op: isa.OpHlt})
	spec := imglint.Image{
		Name: "entry", Bytes: code,
		Entries: []imglint.Entry{{Name: "bad", Off: 40}},
	}
	if len(findings(spec, "entry")) == 0 {
		t.Fatal("out-of-code entry not flagged")
	}
}

func TestEmptyAndInconsistentSpecs(t *testing.T) {
	if fs := imglint.Check(imglint.Image{Name: "empty"}); len(fs) != 1 || fs[0].Check != "spec" {
		t.Fatalf("empty image: got %v", fs)
	}
	spec := imglint.Image{
		Name: "bounds", Bytes: []byte{byte(isa.OpHlt)},
		CodeEnd: 99, FillEnd: 99, CheckFill: true,
		Entries: []imglint.Entry{{Off: 0}},
	}
	if fs := findings(spec, "spec"); len(fs) != 2 {
		t.Fatalf("out-of-range CodeEnd/FillEnd: got %v", imglint.Check(spec))
	}
}

func TestVerdictsDeterministic(t *testing.T) {
	code := enc(
		isa.Inst{Op: isa.OpJmp, Imm: 0x300},
		isa.Inst{Op: isa.OpHlt},
	)
	img := jmp0Fill(code, 40)
	img[20] = 0xEE
	spec := imglint.Image{
		Name: "det", Bytes: img,
		Entries:      []imglint.Entry{{Off: 0}, {Off: 4}},
		CodeEnd:      len(code),
		CheckFill:    true,
		StraightLine: true,
		SlotPadded:   true,
		CSAllowed:    []uint16{1},
		ROM:          []imglint.Range{{Start: 0, End: 0x100000}},
	}
	first := imglint.Check(spec)
	for i := 0; i < 10; i++ {
		if again := imglint.Check(spec); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, first, again)
		}
	}
	if len(first) == 0 {
		t.Fatal("expected findings from the deliberately broken spec")
	}
}

func TestFindingString(t *testing.T) {
	f := imglint.Finding{Image: "img", Check: "fill-coverage", Offset: 0x123, Msg: "boom"}
	if got, want := f.String(), "img+0x0123: fill-coverage: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	f.Offset = -1
	if got, want := f.String(), "img: fill-coverage: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
