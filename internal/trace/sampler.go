package trace

import (
	"fmt"
	"strings"

	"ssos/internal/machine"
)

// Range is a named linear-address range used for program-counter
// accounting (e.g. one per scheduled process).
type Range struct {
	Name  string
	Start uint32 // inclusive
	End   uint32 // exclusive
}

// Contains reports whether addr falls in the range.
func (r Range) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// PCSampler counts, per instruction executed, which address range the
// program counter was in. It implements the paper's fairness criterion
// observably: "for every process there are infinite number of
// configurations in which the program counter contains an address of
// one of the process' instructions".
type PCSampler struct {
	Ranges []Range
	Counts []uint64
	Other  uint64 // instructions outside every range
	Total  uint64
}

// NewPCSampler builds a sampler over the given ranges.
func NewPCSampler(ranges ...Range) *PCSampler {
	return &PCSampler{Ranges: ranges, Counts: make([]uint64, len(ranges))}
}

// Observe accounts one executed instruction at the given machine state.
func (s *PCSampler) Observe(m *machine.Machine, ev machine.Event) {
	if ev != machine.EventInstr {
		return
	}
	addr := m.CPU.PC().Linear()
	s.Total++
	for i, r := range s.Ranges {
		if r.Contains(addr) {
			s.Counts[i]++
			return
		}
	}
	s.Other++
}

// Share returns the fraction of instructions executed inside range i.
func (s *PCSampler) Share(i int) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Counts[i]) / float64(s.Total)
}

// MinShare returns the smallest per-range share (the starvation
// indicator: fairness requires it to be bounded away from zero).
func (s *PCSampler) MinShare() float64 {
	min := 1.0
	for i := range s.Ranges {
		if sh := s.Share(i); sh < min {
			min = sh
		}
	}
	return min
}

// Reset clears all counts.
func (s *PCSampler) Reset() {
	for i := range s.Counts {
		s.Counts[i] = 0
	}
	s.Other = 0
	s.Total = 0
}

func (s *PCSampler) String() string {
	var b strings.Builder
	for i, r := range s.Ranges {
		fmt.Fprintf(&b, "%s=%.3f ", r.Name, s.Share(i))
	}
	fmt.Fprintf(&b, "other=%.3f", float64(s.Other)/float64(max64(s.Total, 1)))
	return b.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// EventCounter tallies step events, usable as an AfterStep hook
// together with other observers via Multi.
type EventCounter struct {
	Counts [6]uint64
}

// Observe accounts one event.
func (c *EventCounter) Observe(_ *machine.Machine, ev machine.Event) {
	if int(ev) < len(c.Counts) {
		c.Counts[ev]++
	}
}

// Multi fans one AfterStep hook out to several observers.
func Multi(obs ...func(*machine.Machine, machine.Event)) func(*machine.Machine, machine.Event) {
	return func(m *machine.Machine, ev machine.Event) {
		for _, o := range obs {
			o(m, ev)
		}
	}
}
