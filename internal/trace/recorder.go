package trace

import (
	"fmt"
	"strings"

	"ssos/internal/isa"
	"ssos/internal/machine"
)

// RecordedStep is one entry of the execution recorder: where the
// processor was and what kind of step it performed.
type RecordedStep struct {
	Step  uint64
	CS    uint16
	IP    uint16
	Event machine.Event
	// Bytes holds the first bytes at cs:ip before the step, enough to
	// disassemble the instruction that was about to execute.
	Bytes [isa.MaxInstrSize]byte
}

// Text disassembles the recorded instruction (or names the event for
// non-instruction steps).
func (r RecordedStep) Text() string {
	switch r.Event {
	case machine.EventInstr, machine.EventException:
		in, _, ok := isa.Decode(r.Bytes[:])
		suffix := ""
		if r.Event == machine.EventException {
			suffix = "  ; -> exception"
		}
		if !ok {
			return fmt.Sprintf("db 0x%02x%s", r.Bytes[0], suffix)
		}
		return in.String() + suffix
	default:
		return "<" + r.Event.String() + ">"
	}
}

func (r RecordedStep) String() string {
	return fmt.Sprintf("%10d  %04x:%04x  %s", r.Step, r.CS, r.IP, r.Text())
}

// Recorder keeps a ring of the most recent machine steps with enough
// context to disassemble them — a flight recorder for debugging guest
// code and post-mortem analysis of fault-injection runs.
type Recorder struct {
	ring []RecordedStep
	next int
	full bool
	// pending captures the pre-step program counter; Machine hooks run
	// after the step, so the recorder snapshots before via BeforeStep.
	m *machine.Machine
}

// NewRecorder returns a recorder retaining the last n steps.
func NewRecorder(m *machine.Machine, n int) *Recorder {
	if n <= 0 {
		n = 64
	}
	return &Recorder{ring: make([]RecordedStep, n), m: m}
}

// Observe records one step; use it as (part of) the machine's
// AfterStep hook. The program counter it records is the post-step one
// for control transfers, so Observe additionally snapshots the next
// instruction's bytes — in practice the stream reads naturally as
// "what executed next".
func (r *Recorder) Observe(m *machine.Machine, ev machine.Event) {
	e := RecordedStep{
		Step:  m.Stats.Steps,
		CS:    m.CPU.S[isa.CS],
		IP:    m.CPU.IP,
		Event: ev,
	}
	for i := range e.Bytes {
		e.Bytes[i] = m.Bus.LoadByte(m.Linear(isa.CS, m.CPU.IP+uint16(i)))
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
}

// Last returns the retained steps, oldest first.
func (r *Recorder) Last() []RecordedStep {
	if !r.full {
		out := make([]RecordedStep, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]RecordedStep, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dump renders the retained steps as a printable listing.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Last() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
