// Package trace implements execution monitoring for stabilization
// experiments: legal-execution specifications over guest output
// (heartbeats), convergence measurement, and program-counter sampling
// for fairness accounting.
//
// The paper defines a *legal execution* as one where the OS "carries
// its job exactly according to the operating system specifications",
// and a *weak legal execution* as an infinite concatenation of
// non-empty prefixes of legal executions (allowing repeated restarts).
// Our guest OSes emit a monotonically incrementing heartbeat on an
// output port as their observable specification; HeartbeatSpec encodes
// both legality notions over that stream:
//
//   - strict legality: each heartbeat is the successor of the previous
//     one, with bounded gaps between beats;
//   - weak legality: additionally, the stream may restart from the
//     initial value at any time (the paper's Theorem 3.4 system).
package trace

import (
	"fmt"

	"ssos/internal/dev"
)

// Violation is one departure from the specification.
type Violation struct {
	Step   uint64 // machine step at which the violation was observed
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d: %s", v.Step, v.Reason)
}

// HeartbeatSpec is the legal-execution specification for the guest
// heartbeat stream.
type HeartbeatSpec struct {
	// Start is the first value a freshly started guest emits.
	Start uint16
	// MaxGap is the largest allowed step distance between consecutive
	// heartbeats (and from the last heartbeat to "now"). It encodes
	// "the OS is actually running", not just "it was running once".
	MaxGap uint64
	// AllowRestart accepts a reset to Start at any point (weak
	// legality, the paper's reinstall-and-restart designs).
	AllowRestart bool
}

// Violations returns every specification violation in the write
// stream, including a liveness violation if the stream has gone silent
// before now.
func (s HeartbeatSpec) Violations(writes []dev.PortWrite, now uint64) []Violation {
	var out []Violation
	for i := 1; i < len(writes); i++ {
		prev, cur := writes[i-1], writes[i]
		// A restart beat is legal regardless of the preceding gap: the
		// silent reinstall period belongs to the weak legal execution
		// (a new legal prefix begins with it).
		if s.AllowRestart && cur.Value == s.Start {
			continue
		}
		if cur.Step-prev.Step > s.MaxGap {
			out = append(out, Violation{cur.Step, fmt.Sprintf(
				"heartbeat gap %d exceeds %d", cur.Step-prev.Step, s.MaxGap)})
		}
		if cur.Value == prev.Value+1 {
			continue
		}
		out = append(out, Violation{cur.Step, fmt.Sprintf(
			"heartbeat %#x does not follow %#x", cur.Value, prev.Value)})
	}
	if len(writes) == 0 {
		if now > s.MaxGap {
			out = append(out, Violation{now, "no heartbeat ever observed"})
		}
		return out
	}
	if last := writes[len(writes)-1]; now-last.Step > s.MaxGap {
		out = append(out, Violation{now, fmt.Sprintf(
			"silent for %d steps (max %d)", now-last.Step, s.MaxGap)})
	}
	return out
}

// LegalSuffixStart returns the index of the first write of the maximal
// legal suffix of the stream: every write from that index onward obeys
// the spec, and no write from that index onward was itself a violation
// (a beat that broke succession — e.g. a corrupted value — is excluded
// from the suffix even if the transition out of it looks like a legal
// restart). Returns 0 for an entirely legal stream and len(writes) if
// the final write is itself a violation. Liveness against "now" is not
// considered; combine with Violations for that.
func (s HeartbeatSpec) LegalSuffixStart(writes []dev.PortWrite) int {
	start := 0
	for i := 1; i < len(writes); i++ {
		prev, cur := writes[i-1], writes[i]
		legal := (cur.Value == prev.Value+1 && cur.Step-prev.Step <= s.MaxGap) ||
			(s.AllowRestart && cur.Value == s.Start)
		if !legal {
			start = i + 1
		}
	}
	return start
}

// RecoveredAfter reports whether the stream contains, after faultStep,
// a run of at least confirm consecutive legal heartbeats extending to
// the end of the stream, and if so the step of the first heartbeat of
// that run. This is the experiments' convergence detector: the system
// has stabilized when its observable behaviour is legal from some
// point onward.
func (s HeartbeatSpec) RecoveredAfter(writes []dev.PortWrite, faultStep uint64, confirm int) (uint64, bool) {
	// The recovery point is the start of the maximal legal suffix, or
	// the first heartbeat after the fault if the fault did not disturb
	// legality at all.
	idx := s.LegalSuffixStart(writes)
	for idx < len(writes) && writes[idx].Step < faultStep {
		idx++
	}
	if len(writes)-idx < confirm {
		return 0, false
	}
	return writes[idx].Step, true
}
