package trace

import (
	"strings"
	"testing"

	"ssos/internal/dev"
	"ssos/internal/isa"
	"ssos/internal/machine"
	"ssos/internal/mem"
)

func beats(pairs ...uint64) []dev.PortWrite {
	var out []dev.PortWrite
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, dev.PortWrite{Step: pairs[i], Value: uint16(pairs[i+1])})
	}
	return out
}

func TestViolationsCleanStream(t *testing.T) {
	spec := HeartbeatSpec{Start: 1, MaxGap: 100}
	w := beats(10, 1, 50, 2, 90, 3)
	if v := spec.Violations(w, 100); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestViolationsDetectSkipAndGapAndSilence(t *testing.T) {
	spec := HeartbeatSpec{Start: 1, MaxGap: 100}
	w := beats(10, 1, 50, 3) // skipped 2
	if v := spec.Violations(w, 60); len(v) != 1 {
		t.Fatalf("skip: %v", v)
	}
	w = beats(10, 1, 200, 2) // gap
	if v := spec.Violations(w, 210); len(v) != 1 {
		t.Fatalf("gap: %v", v)
	}
	w = beats(10, 1, 50, 2)
	if v := spec.Violations(w, 500); len(v) != 1 {
		t.Fatalf("silence: %v", v)
	}
	if v := spec.Violations(nil, 1000); len(v) != 1 {
		t.Fatalf("never beat: %v", v)
	}
	if v := spec.Violations(nil, 50); len(v) != 0 {
		t.Fatalf("early silence should be fine: %v", v)
	}
}

func TestRestartLegalityOnlyWhenAllowed(t *testing.T) {
	w := beats(10, 1, 20, 2, 30, 3, 40, 1, 50, 2)
	strict := HeartbeatSpec{Start: 1, MaxGap: 100}
	weak := HeartbeatSpec{Start: 1, MaxGap: 100, AllowRestart: true}
	if v := strict.Violations(w, 60); len(v) != 1 {
		t.Fatalf("strict should flag restart: %v", v)
	}
	if v := weak.Violations(w, 60); len(v) != 0 {
		t.Fatalf("weak should accept restart: %v", v)
	}
}

func TestLegalSuffixStart(t *testing.T) {
	spec := HeartbeatSpec{Start: 1, MaxGap: 100}
	// Illegal jump into index 1: the corrupted beat itself (index 1) is
	// excluded from the legal suffix.
	w := beats(10, 1, 20, 7, 30, 8, 40, 9)
	if got := spec.LegalSuffixStart(w); got != 2 {
		t.Fatalf("suffix start = %d", got)
	}
	// Violation at the last write: no legal suffix at all.
	w = beats(10, 1, 20, 2, 30, 9)
	if got := spec.LegalSuffixStart(w); got != 3 {
		t.Fatalf("suffix start after trailing violation = %d", got)
	}
	if got := spec.LegalSuffixStart(nil); got != 0 {
		t.Fatalf("empty suffix start = %d", got)
	}
	w = beats(10, 1, 20, 2)
	if got := spec.LegalSuffixStart(w); got != 0 {
		t.Fatalf("clean suffix start = %d", got)
	}
}

func TestRecoveredAfter(t *testing.T) {
	spec := HeartbeatSpec{Start: 1, MaxGap: 100, AllowRestart: true}
	// Fault at step 100 garbles one beat; restart at 150 then legal.
	w := beats(10, 1, 20, 2, 110, 0x7777, 150, 1, 160, 2, 170, 3)
	step, ok := spec.RecoveredAfter(w, 100, 3)
	if !ok || step != 150 {
		t.Fatalf("recovered = %d, %v", step, ok)
	}
	// Not enough confirmation beats.
	if _, ok := spec.RecoveredAfter(w, 100, 10); ok {
		t.Fatal("should need 10 confirm beats")
	}
	// Fault did not disturb the stream at all: recovery at first beat
	// after the fault.
	w = beats(10, 1, 20, 2, 30, 3, 40, 4)
	step, ok = spec.RecoveredAfter(w, 25, 2)
	if !ok || step != 30 {
		t.Fatalf("undisturbed recovery = %d, %v", step, ok)
	}
}

func TestPCSampler(t *testing.T) {
	bus := mem.NewBus()
	// Two nops at 0x1000, then jmp 0.
	code := []byte{byte(isa.OpNop), byte(isa.OpNop), byte(isa.OpJmp), 0, 0}
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	s := NewPCSampler(
		Range{Name: "first", Start: 0x1000, End: 0x1001},
		Range{Name: "rest", Start: 0x1001, End: 0x1010},
	)
	counter := &EventCounter{}
	m.AfterStep = Multi(s.Observe, counter.Observe)
	m.Run(30)
	if s.Total != 30 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.Counts[0] == 0 || s.Counts[1] == 0 || s.Other != 0 {
		t.Fatalf("sampler: %v", s)
	}
	if s.MinShare() <= 0 {
		t.Fatalf("min share = %f", s.MinShare())
	}
	if counter.Counts[machine.EventInstr] != 30 {
		t.Fatalf("counter: %v", counter.Counts)
	}
	s.Reset()
	if s.Total != 0 || s.Counts[0] != 0 {
		t.Fatal("reset failed")
	}
}

func TestPCSamplerOther(t *testing.T) {
	bus := mem.NewBus()
	bus.Poke(0x1000, byte(isa.OpJmp)) // jmp 0 loop
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	s := NewPCSampler(Range{Name: "elsewhere", Start: 0x9000, End: 0x9100})
	m.AfterStep = s.Observe
	m.Run(5)
	if s.Other != 5 || s.Share(0) != 0 {
		t.Fatalf("other accounting: %v", s)
	}
}

func TestRecorderRing(t *testing.T) {
	bus := mem.NewBus()
	code := []byte{
		byte(isa.OpMovRI), 0, 0x42, 0x00,
		byte(isa.OpIncR), 0,
		byte(isa.OpJmp), 0x04, 0x00,
	}
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	r := NewRecorder(m, 4)
	m.AfterStep = r.Observe
	m.Run(10)
	last := r.Last()
	if len(last) != 4 {
		t.Fatalf("ring length %d", len(last))
	}
	for i := 1; i < len(last); i++ {
		if last[i].Step != last[i-1].Step+1 {
			t.Fatalf("steps not consecutive: %v", last)
		}
	}
	dump := r.Dump()
	if !strings.Contains(dump, "inc ax") && !strings.Contains(dump, "jmp") {
		t.Fatalf("dump lacks disassembly:\n%s", dump)
	}
}

func TestRecorderBeforeFull(t *testing.T) {
	bus := mem.NewBus()
	bus.Poke(0x1000, byte(isa.OpNop))
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	r := NewRecorder(m, 100)
	m.AfterStep = r.Observe
	m.Run(3)
	if got := len(r.Last()); got != 3 {
		t.Fatalf("partial ring length %d", got)
	}
	// Zero capacity defaults sanely.
	if r2 := NewRecorder(m, 0); len(r2.ring) == 0 {
		t.Fatal("default capacity")
	}
}

func TestRecordedStepText(t *testing.T) {
	var e RecordedStep
	e.Event = machine.EventNMI
	if e.Text() != "<nmi>" {
		t.Fatalf("event text: %q", e.Text())
	}
	e.Event = machine.EventInstr
	e.Bytes[0] = 0xFF
	if !strings.Contains(e.Text(), "db 0xff") {
		t.Fatalf("junk text: %q", e.Text())
	}
	e.Event = machine.EventException
	if !strings.Contains(e.Text(), "exception") {
		t.Fatalf("exception text: %q", e.Text())
	}
}

// Ring wrap-around, exactly: with depth d and n > d recorded steps, the
// retained window must be precisely the last d step numbers, oldest
// first — no off-by-one at the wrap seam.
func TestRecorderWrapExactSteps(t *testing.T) {
	bus := mem.NewBus()
	bus.Poke(0x1000, byte(isa.OpJmp)) // jmp 0 loop
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	r := NewRecorder(m, 4)
	m.AfterStep = r.Observe
	m.Run(7) // 7 > 4: the ring has wrapped, discarding the first 3
	last := r.Last()
	if len(last) != 4 {
		t.Fatalf("ring length %d", len(last))
	}
	end := m.Stats.Steps
	for i, e := range last {
		if want := end - 3 + uint64(i); e.Step != want {
			t.Fatalf("retained[%d].Step = %d, want %d (window %d..%d)", i, e.Step, want, end-3, end)
		}
	}
	// One more step must slide the window by exactly one.
	m.Run(1)
	if got := r.Last()[0].Step; got != end-2 {
		t.Fatalf("window did not slide: oldest = %d, want %d", got, end-2)
	}
}

// Range boundaries: Start is inclusive, End is exclusive.
func TestRangeBoundaries(t *testing.T) {
	r := Range{Name: "r", Start: 0x1000, End: 0x1010}
	cases := []struct {
		addr uint32
		in   bool
	}{
		{0x0FFF, false}, // one below start
		{0x1000, true},  // start itself
		{0x100F, true},  // last interior address
		{0x1010, false}, // end itself
		{0x1011, false}, // one past end
	}
	for _, c := range cases {
		if got := r.Contains(c.addr); got != c.in {
			t.Errorf("Contains(%#x) = %v, want %v", c.addr, got, c.in)
		}
	}
}

// The same boundaries, observed through a running machine: adjacent
// one-byte ranges split a nop straddle-free, so an instruction at an
// End address must be charged to the next range, never to the one it
// bounds.
func TestPCSamplerBoundaryAttribution(t *testing.T) {
	bus := mem.NewBus()
	bus.Poke(0x1000, byte(isa.OpNop)) // executes at 0x1000
	bus.Poke(0x1001, byte(isa.OpNop)) // executes at 0x1001
	bus.Poke(0x1002, byte(isa.OpJmp)) // back to 0
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	s := NewPCSampler(
		Range{Name: "a", Start: 0x1000, End: 0x1001},
		Range{Name: "b", Start: 0x1001, End: 0x1002},
	)
	m.AfterStep = s.Observe
	m.Run(9) // three full loop iterations
	if s.Counts[0] != 3 || s.Counts[1] != 3 {
		t.Fatalf("boundary attribution: a=%d b=%d other=%d", s.Counts[0], s.Counts[1], s.Other)
	}
	if s.Other != 3 { // the jmp at 0x1002 lies in neither range
		t.Fatalf("jmp accounting: other=%d", s.Other)
	}
}
