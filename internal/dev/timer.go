package dev

import "ssos/internal/machine"

// Timer raises a maskable interrupt with a fixed IDT vector every
// Period ticks. Like the watchdog it is self-stabilizing: a corrupted
// counter is clamped, so the next interrupt arrives within one period.
type Timer struct {
	Period  uint32
	Counter uint32
	Vec     uint8
	Fires   uint64
}

// NewTimer returns a timer interrupting through vector vec every period
// ticks.
func NewTimer(period uint32, vec uint8) *Timer {
	if period == 0 {
		period = 1
	}
	return &Timer{Period: period, Counter: period - 1, Vec: vec}
}

// Tick advances the countdown, raising the IRQ at zero.
func (t *Timer) Tick(m *machine.Machine) {
	if t.Period == 0 {
		t.Period = 1
	}
	if t.Counter >= t.Period {
		t.Counter = t.Period - 1
	}
	if t.Counter == 0 {
		t.Fires++
		m.RaiseIRQ(t.Vec)
		t.Counter = t.Period - 1
		return
	}
	t.Counter--
}
