package dev

// PortWrite is one value written by the guest to an output port,
// stamped with the machine step at which it happened.
type PortWrite struct {
	Step  uint64
	Value uint16
}

// Console is an output-port device that records everything the guest
// writes. Guests use it for heartbeats and telemetry; monitors inspect
// the recorded stream to decide whether the system behaves according to
// its specification.
type Console struct {
	// Clock supplies the current step stamp; wire it to the machine's
	// step counter. A nil clock stamps zero.
	Clock func() uint64
	// Max bounds the number of retained writes; older writes are
	// dropped. Zero means unlimited.
	Max int
	// OnWrite, when non-nil, is invoked for every write after it is
	// recorded. The observability layer hooks here to derive events
	// from guest output (heartbeats, repair reports).
	OnWrite func(step uint64, v uint16)

	writes  []PortWrite
	total   uint64
	dropped uint64
}

// NewConsole returns a console stamping writes with clock and keeping
// at most maxWrites entries (0 = unlimited).
func NewConsole(clock func() uint64, maxWrites int) *Console {
	return &Console{Clock: clock, Max: maxWrites}
}

// In reads as zero: the console is write-only.
func (c *Console) In(uint16) uint16 { return 0 }

// Out records the written value.
func (c *Console) Out(_ uint16, v uint16) {
	var step uint64
	if c.Clock != nil {
		step = c.Clock()
	}
	c.writes = append(c.writes, PortWrite{Step: step, Value: v})
	c.total++
	if c.Max > 0 && len(c.writes) > c.Max {
		drop := len(c.writes) - c.Max
		c.writes = append(c.writes[:0], c.writes[drop:]...)
		c.dropped += uint64(drop)
	}
	if c.OnWrite != nil {
		c.OnWrite(step, v)
	}
}

// Writes returns the retained writes in order.
func (c *Console) Writes() []PortWrite {
	out := make([]PortWrite, len(c.writes))
	copy(out, c.writes)
	return out
}

// Total returns the number of writes ever made (including dropped).
func (c *Console) Total() uint64 { return c.total }

// Dropped returns how many old writes were discarded due to Max.
func (c *Console) Dropped() uint64 { return c.dropped }

// Reset discards all recorded writes and counters.
func (c *Console) Reset() {
	c.writes = c.writes[:0]
	c.total = 0
	c.dropped = 0
}

// Last returns the most recent write, if any.
func (c *Console) Last() (PortWrite, bool) {
	if len(c.writes) == 0 {
		return PortWrite{}, false
	}
	return c.writes[len(c.writes)-1], true
}
