package dev

// PortWrite is one value written by the guest to an output port,
// stamped with the machine step at which it happened.
type PortWrite struct {
	Step  uint64
	Value uint16
}

// consoleChunk is the allocation unit of the unbounded console log.
// Appending into fixed-capacity chunks keeps the per-write cost O(1)
// with no large re-copies: a growing flat slice would move the whole
// history on every growth step, which profiles as the dominant cost of
// long fault-free runs.
const consoleChunk = 1 << 12

// Console is an output-port device that records everything the guest
// writes. Guests use it for heartbeats and telemetry; monitors inspect
// the recorded stream to decide whether the system behaves according to
// its specification.
type Console struct {
	// Clock supplies the current step stamp; wire it to the machine's
	// step counter. A nil clock stamps zero.
	Clock func() uint64
	// Max bounds the number of retained writes; older writes are
	// dropped. Zero means unlimited.
	Max int
	// OnWrite, when non-nil, is invoked for every write after it is
	// recorded. The observability layer hooks here to derive events
	// from guest output (heartbeats, repair reports).
	OnWrite func(step uint64, v uint16)

	// Max == 0: chunked append-only log.
	chunks [][]PortWrite
	// Max > 0: fixed-size ring holding the newest Max writes; start
	// indexes the oldest entry once the ring is full.
	ring  []PortWrite
	start int

	total   uint64
	dropped uint64
}

// NewConsole returns a console stamping writes with clock and keeping
// at most maxWrites entries (0 = unlimited).
func NewConsole(clock func() uint64, maxWrites int) *Console {
	return &Console{Clock: clock, Max: maxWrites}
}

// In reads as zero: the console is write-only.
func (c *Console) In(uint16) uint16 { return 0 }

// Out records the written value.
func (c *Console) Out(_ uint16, v uint16) {
	var step uint64
	if c.Clock != nil {
		step = c.Clock()
	}
	w := PortWrite{Step: step, Value: v}
	if c.Max > 0 {
		if len(c.ring) < c.Max {
			c.ring = append(c.ring, w)
		} else {
			c.ring[c.start] = w
			c.start++
			if c.start == len(c.ring) {
				c.start = 0
			}
			c.dropped++
		}
	} else {
		n := len(c.chunks) - 1
		if n < 0 || len(c.chunks[n]) == cap(c.chunks[n]) {
			c.chunks = append(c.chunks, make([]PortWrite, 0, consoleChunk))
			n++
		}
		c.chunks[n] = append(c.chunks[n], w)
	}
	c.total++
	if c.OnWrite != nil {
		c.OnWrite(step, v)
	}
}

// retained returns the number of writes currently held.
func (c *Console) retained() int {
	if c.Max > 0 {
		return len(c.ring)
	}
	n := 0
	for _, ch := range c.chunks {
		n += len(ch)
	}
	return n
}

// Writes returns the retained writes in order.
func (c *Console) Writes() []PortWrite {
	out := make([]PortWrite, 0, c.retained())
	if c.Max > 0 {
		out = append(out, c.ring[c.start:]...)
		out = append(out, c.ring[:c.start]...)
		return out
	}
	for _, ch := range c.chunks {
		out = append(out, ch...)
	}
	return out
}

// Total returns the number of writes ever made (including dropped).
func (c *Console) Total() uint64 { return c.total }

// Dropped returns how many old writes were discarded due to Max.
func (c *Console) Dropped() uint64 { return c.dropped }

// Reset discards all recorded writes and counters.
func (c *Console) Reset() {
	c.chunks = nil
	c.ring = nil
	c.start = 0
	c.total = 0
	c.dropped = 0
}

// Last returns the most recent write, if any.
func (c *Console) Last() (PortWrite, bool) {
	if c.Max > 0 {
		if len(c.ring) == 0 {
			return PortWrite{}, false
		}
		i := c.start - 1
		if i < 0 {
			i = len(c.ring) - 1
		}
		return c.ring[i], true
	}
	n := len(c.chunks) - 1
	if n < 0 {
		return PortWrite{}, false
	}
	ch := c.chunks[n]
	return ch[len(ch)-1], true
}
