// Package dev implements the peripheral devices of the simulated
// system: the self-stabilizing watchdog the paper adds to the hardware,
// a console/heartbeat output port and a periodic timer.
package dev

import "ssos/internal/machine"

// WatchdogTarget selects which processor pin the watchdog drives.
type WatchdogTarget uint8

const (
	// TargetNMI pulses the non-maskable-interrupt pin (the paper's
	// default wiring, used by all tailored designs).
	TargetNMI WatchdogTarget = iota
	// TargetReset pulses the reset pin (an option for the first two
	// schemes, Section 2: "it may trigger the reset pin instead").
	TargetReset
)

// Watchdog is the paper's self-stabilizing watchdog: a countdown
// register with a maximal value equal to the desired interval. From ANY
// state (including a fault-corrupted counter) a signal is triggered
// within the interval, and no premature signal is triggered thereafter:
// the counter is clamped to the register's maximal value on every tick,
// so a corrupted out-of-range value behaves like the maximal value.
type Watchdog struct {
	// Period is the desired interval in clock ticks between signals.
	Period uint32
	// Counter is the countdown register. Exported so fault injectors
	// can corrupt it; corruption is harmless by design.
	Counter uint32
	// Target selects the pin to pulse.
	Target WatchdogTarget
	// Fires counts signals since creation.
	Fires uint64
}

// NewWatchdog returns a watchdog that fires every period ticks,
// starting one full period from now.
func NewWatchdog(period uint32, target WatchdogTarget) *Watchdog {
	if period == 0 {
		period = 1
	}
	return &Watchdog{Period: period, Counter: period - 1, Target: target}
}

// Tick advances the countdown; at zero it pulses the target pin and
// reloads.
func (w *Watchdog) Tick(m *machine.Machine) {
	if w.Period == 0 {
		w.Period = 1
	}
	if w.Counter >= w.Period {
		// The physical register cannot hold more than the maximal
		// value; a corrupted simulation state converges here.
		w.Counter = w.Period - 1
	}
	if w.Counter == 0 {
		w.Fires++
		switch w.Target {
		case TargetNMI:
			m.RaiseNMI()
		case TargetReset:
			m.RaiseReset()
		}
		w.Counter = w.Period - 1
		return
	}
	w.Counter--
}
