package dev

import (
	"testing"
	"testing/quick"

	"ssos/internal/isa"
	"ssos/internal/machine"
	"ssos/internal/mem"
)

func idleMachine() *machine.Machine {
	bus := mem.NewBus()
	// hlt at the reset vector keeps the CPU idle while devices tick.
	bus.Poke(0x1000, byte(isa.OpHlt))
	return machine.New(bus, machine.Options{
		ResetVector:        machine.SegOff{Seg: 0x0100, Off: 0},
		NMICounter:         true,
		HardwiredNMIVector: true,
		NMIVector:          machine.SegOff{Seg: 0x0100, Off: 0},
	})
}

func TestWatchdogFiresEveryPeriod(t *testing.T) {
	m := idleMachine()
	w := NewWatchdog(10, TargetNMI)
	m.AddTicker(w)
	m.Run(100)
	if w.Fires != 10 {
		t.Fatalf("fires = %d, want 10", w.Fires)
	}
	if m.Stats.NMIs == 0 {
		t.Fatal("watchdog NMIs were not delivered")
	}
}

func TestWatchdogResetTarget(t *testing.T) {
	m := idleMachine()
	w := NewWatchdog(5, TargetReset)
	m.AddTicker(w)
	m.Run(20)
	if m.Stats.Resets != 4 {
		t.Fatalf("resets = %d, want 4", m.Stats.Resets)
	}
}

func TestWatchdogSelfStabilizes(t *testing.T) {
	// Property (paper Section 2): starting from ANY counter state a
	// signal is triggered within the desired interval, and never two
	// signals closer than the interval thereafter.
	f := func(counter uint32, periodSeed uint16) bool {
		period := uint32(periodSeed%64) + 2
		m := idleMachine()
		w := NewWatchdog(period, TargetNMI)
		w.Counter = counter // corruption
		m.AddTicker(w)
		var fireSteps []uint64
		for i := 0; i < int(period)*3; i++ {
			before := w.Fires
			m.Step()
			if w.Fires > before {
				fireSteps = append(fireSteps, m.Stats.Steps)
			}
		}
		if len(fireSteps) == 0 || fireSteps[0] > uint64(period) {
			return false // must fire within one period from any state
		}
		for i := 1; i < len(fireSteps); i++ {
			if fireSteps[i]-fireSteps[i-1] != uint64(period) {
				return false // no premature signals thereafter
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWatchdogZeroPeriodClamped(t *testing.T) {
	m := idleMachine()
	w := &Watchdog{Period: 0}
	m.AddTicker(w)
	m.Run(3) // must not divide by zero or stall
	if w.Fires == 0 {
		t.Fatal("degenerate watchdog never fired")
	}
}

func TestConsoleRecordsStampedWrites(t *testing.T) {
	var step uint64
	c := NewConsole(func() uint64 { return step }, 0)
	step = 5
	c.Out(0x10, 0xAA)
	step = 9
	c.Out(0x10, 0xBB)
	w := c.Writes()
	if len(w) != 2 || w[0] != (PortWrite{5, 0xAA}) || w[1] != (PortWrite{9, 0xBB}) {
		t.Fatalf("writes: %v", w)
	}
	if c.In(0x10) != 0 {
		t.Fatal("console reads should be 0")
	}
	last, ok := c.Last()
	if !ok || last.Value != 0xBB {
		t.Fatalf("last: %v %v", last, ok)
	}
}

func TestConsoleRingLimit(t *testing.T) {
	c := NewConsole(nil, 3)
	for i := 0; i < 10; i++ {
		c.Out(0, uint16(i))
	}
	w := c.Writes()
	if len(w) != 3 || w[0].Value != 7 || w[2].Value != 9 {
		t.Fatalf("ring: %v", w)
	}
	if c.Total() != 10 || c.Dropped() != 7 {
		t.Fatalf("total=%d dropped=%d", c.Total(), c.Dropped())
	}
	c.Reset()
	if _, ok := c.Last(); ok || c.Total() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestConsoleOnMachine(t *testing.T) {
	bus := mem.NewBus()
	code := []byte{
		byte(isa.OpMovRI), 0, 0x42, 0x00, // mov ax, 0x42
		byte(isa.OpOutI), 0x10, // out 0x10, ax
		byte(isa.OpHlt),
	}
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	c := NewConsole(func() uint64 { return m.Stats.Steps }, 0)
	m.MapPort(0x10, c)
	m.Run(3)
	w := c.Writes()
	if len(w) != 1 || w[0].Value != 0x42 || w[0].Step != 2 {
		t.Fatalf("writes: %v", w)
	}
}

func TestTimerRaisesIRQ(t *testing.T) {
	bus := mem.NewBus()
	// Main loop: sti; jmp 0 — interruptible forever. Handler: iret.
	code := []byte{
		byte(isa.OpSti),
		byte(isa.OpJmp), 0x00, 0x00,
	}
	for i, b := range code {
		bus.Poke(0x1000+uint32(i), b)
	}
	handler := []byte{byte(isa.OpIret)}
	for i, b := range handler {
		bus.Poke(0x1100+uint32(i), b)
	}
	m := machine.New(bus, machine.Options{
		ResetVector: machine.SegOff{Seg: 0x0100, Off: 0},
		FixedIDTR:   true,
	})
	m.SetIDTEntry(machine.VecTimer, machine.SegOff{Seg: 0x0100, Off: 0x100})
	tm := NewTimer(7, machine.VecTimer)
	m.AddTicker(tm)
	m.Run(100)
	if tm.Fires < 10 {
		t.Fatalf("timer fires = %d", tm.Fires)
	}
	if m.Stats.IRQs == 0 {
		t.Fatal("no IRQs delivered")
	}
}

func TestTimerSelfStabilizes(t *testing.T) {
	f := func(counter uint32) bool {
		tm := NewTimer(16, machine.VecTimer)
		tm.Counter = counter
		m := idleMachine()
		m.AddTicker(tm)
		for i := 0; i < 16; i++ {
			m.Step()
		}
		return tm.Fires >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCheckpointerSnapshotRestore(t *testing.T) {
	bus := mem.NewBus()
	bus.Poke(0x1000, byte(isa.OpHlt))
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	r := mem.Region{Name: "data", Start: 0x5000, Size: 16}
	c := NewCheckpointer(bus, r, 10)
	m.AddTicker(c)

	// Before any snapshot, restore is a no-op and In reports 0.
	if c.In(0) != 0 {
		t.Fatal("has snapshot before first period")
	}
	bus.Poke(0x5000, 0xAA)
	c.Out(0, CheckpointCmdRestore)
	if bus.Peek(0x5000) != 0xAA {
		t.Fatal("restore without snapshot modified memory")
	}

	m.Run(10) // first periodic snapshot captures 0xAA
	if c.Snapshots == 0 || c.In(0) != 1 {
		t.Fatalf("snapshots=%d", c.Snapshots)
	}
	bus.Poke(0x5000, 0xBB) // corruption after snapshot
	c.Out(0, CheckpointCmdRestore)
	if bus.Peek(0x5000) != 0xAA {
		t.Fatalf("restore: %#x", bus.Peek(0x5000))
	}
	if c.Restores != 1 {
		t.Fatalf("restores=%d", c.Restores)
	}

	// Forced snapshot captures current (possibly corrupt) state — the
	// non-stabilization hazard.
	bus.Poke(0x5000, 0xCC)
	c.Out(0, CheckpointCmdSnapshot)
	bus.Poke(0x5000, 0x11)
	c.Out(0, CheckpointCmdRestore)
	if bus.Peek(0x5000) != 0xCC {
		t.Fatalf("forced snapshot not honoured: %#x", bus.Peek(0x5000))
	}
}

func TestCheckpointerCounterClamped(t *testing.T) {
	bus := mem.NewBus()
	bus.Poke(0x1000, byte(isa.OpHlt))
	m := machine.New(bus, machine.Options{ResetVector: machine.SegOff{Seg: 0x0100, Off: 0}})
	c := NewCheckpointer(bus, mem.Region{Start: 0x5000, Size: 4}, 8)
	c.Counter = 0xFFFFFFFF // corrupted
	m.AddTicker(c)
	m.Run(9)
	if c.Snapshots == 0 {
		t.Fatal("clamped counter never reached a snapshot")
	}
}

func TestSilenceWatchdogFiresOnlyWhenSilent(t *testing.T) {
	m := idleMachine()
	c := NewConsole(nil, 0)
	w := NewSilenceWatchdog(c, 10)
	m.AddTicker(w)
	// Keep the port busy: no fires.
	for i := 0; i < 50; i++ {
		w.Out(0x10, uint16(i))
		m.Step()
	}
	if w.Fires != 0 {
		t.Fatalf("fired despite activity: %d", w.Fires)
	}
	if c.Total() != 50 {
		t.Fatalf("inner console writes: %d", c.Total())
	}
	// Go silent: fires within the limit, then keeps firing every limit.
	m.Run(10)
	if w.Fires != 1 {
		t.Fatalf("fires after silence = %d", w.Fires)
	}
	m.Run(10)
	if w.Fires != 2 {
		t.Fatalf("fires = %d", w.Fires)
	}
}

func TestSilenceWatchdogSelfStabilizes(t *testing.T) {
	f := func(counter uint32) bool {
		m := idleMachine()
		w := NewSilenceWatchdog(nil, 16)
		w.Counter = counter
		m.AddTicker(w)
		m.Run(16)
		return w.Fires >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Degenerate limit clamps.
	w := NewSilenceWatchdog(nil, 0)
	if w.SilenceLimit != 1 {
		t.Fatal("zero limit not clamped")
	}
	if w.In(0) != 0 {
		t.Fatal("nil inner In")
	}
	w.Out(0, 1) // nil inner must not panic
}
