package dev

import (
	"ssos/internal/machine"
	"ssos/internal/mem"
)

// Checkpointer models the stable-storage checkpointing used by the
// systems the paper's related-work section points at (Windows XP
// restore points, EROS/KeyKOS checkpointing): a hardware-assisted
// snapshot of a memory region taken periodically, restorable on
// command through an I/O port.
//
// The device is deliberately generous to the checkpointing approach:
// snapshots and restores are instantaneous and the snapshot store is
// as incorruptible as ROM. Even so, the approach is not
// self-stabilizing — a corruption that survives until the next
// snapshot is faithfully checkpointed and then faithfully restored,
// forever (experiment E9). That is the paper's point: "none of the
// above suggest a design for an operating system that can withstand
// any combination of transient-faults".
type Checkpointer struct {
	// Region is the memory range snapshotted and restored.
	Region mem.Region
	// Period is the interval in ticks between snapshots.
	Period uint32
	// Counter is the countdown register (clamped like the watchdog's).
	Counter uint32

	// Snapshots and Restores count device operations.
	Snapshots uint64
	Restores  uint64

	shadow  []byte
	hasSnap bool
	bus     *mem.Bus
}

// Checkpointer I/O commands (written to the device port).
const (
	// CheckpointCmdRestore rolls the region back to the last snapshot.
	CheckpointCmdRestore = 1
	// CheckpointCmdSnapshot forces an immediate snapshot.
	CheckpointCmdSnapshot = 2
)

// NewCheckpointer returns a checkpointer for the region, snapshotting
// every period ticks.
func NewCheckpointer(bus *mem.Bus, region mem.Region, period uint32) *Checkpointer {
	if period == 0 {
		period = 1
	}
	return &Checkpointer{
		Region:  region,
		Period:  period,
		Counter: period - 1,
		bus:     bus,
	}
}

// Tick advances the snapshot countdown.
func (c *Checkpointer) Tick(*machine.Machine) {
	if c.Period == 0 {
		c.Period = 1
	}
	if c.Counter >= c.Period {
		c.Counter = c.Period - 1
	}
	if c.Counter == 0 {
		c.snapshot()
		c.Counter = c.Period - 1
		return
	}
	c.Counter--
}

func (c *Checkpointer) snapshot() {
	if c.shadow == nil {
		c.shadow = make([]byte, c.Region.Size)
	}
	for i := uint32(0); i < c.Region.Size; i++ {
		c.shadow[i] = c.bus.Peek(c.Region.Start + i)
	}
	c.hasSnap = true
	c.Snapshots++
}

// restore rolls the region back to the last snapshot (no-op until the
// first snapshot exists).
func (c *Checkpointer) restore() {
	if !c.hasSnap {
		return
	}
	for i := uint32(0); i < c.Region.Size; i++ {
		c.bus.PokeRAM(c.Region.Start+i, c.shadow[i])
	}
	c.Restores++
}

// In reports whether a snapshot exists (1) or not (0).
func (c *Checkpointer) In(uint16) uint16 {
	if c.hasSnap {
		return 1
	}
	return 0
}

// Out executes a device command.
func (c *Checkpointer) Out(_ uint16, v uint16) {
	switch v {
	case CheckpointCmdRestore:
		c.restore()
	case CheckpointCmdSnapshot:
		c.snapshot()
	}
}
