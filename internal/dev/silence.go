package dev

import "ssos/internal/machine"

// SilenceWatchdog is the "smart" watchdog comparator: instead of firing
// periodically like the paper's watchdog, it observes an output port
// and pulses the NMI pin only when the guest has been silent for
// SilenceLimit ticks — the adaptive heartbeat-monitor design used by
// real-world supervision daemons (cf. the paper's related-work
// monitoring layers for Linux/Windows).
//
// It avoids the periodic restart tax entirely, and it is itself
// self-stabilizing as a device (the countdown clamps). But the SYSTEM
// it supervises is not: a fault can leave the guest a zombie — looping
// illegally while still emitting port writes — and the silence detector
// then never fires (experiment E12). Detecting "output exists" is not
// detecting "output is legal"; the paper's content-blind periodic
// reinstall and its predicate-checking monitor both dominate this
// design under the self-stabilization bar.
type SilenceWatchdog struct {
	// SilenceLimit is the number of ticks without port activity after
	// which the NMI fires.
	SilenceLimit uint32
	// Counter counts down from SilenceLimit; any port write reloads
	// it. Clamped each tick, so corruption is harmless.
	Counter uint32
	// Fires counts NMI pulses.
	Fires uint64

	inner machine.PortDevice
}

// NewSilenceWatchdog wraps inner (which keeps receiving every port
// access) and fires the NMI after limit ticks without a write.
func NewSilenceWatchdog(inner machine.PortDevice, limit uint32) *SilenceWatchdog {
	if limit == 0 {
		limit = 1
	}
	return &SilenceWatchdog{SilenceLimit: limit, Counter: limit - 1, inner: inner}
}

// In forwards to the wrapped device.
func (w *SilenceWatchdog) In(port uint16) uint16 {
	if w.inner != nil {
		return w.inner.In(port)
	}
	return 0
}

// Out records activity and forwards to the wrapped device.
func (w *SilenceWatchdog) Out(port uint16, v uint16) {
	w.Counter = w.SilenceLimit - 1
	if w.inner != nil {
		w.inner.Out(port, v)
	}
}

// Tick advances the silence countdown, pulsing NMI at zero.
func (w *SilenceWatchdog) Tick(m *machine.Machine) {
	if w.SilenceLimit == 0 {
		w.SilenceLimit = 1
	}
	if w.Counter >= w.SilenceLimit {
		w.Counter = w.SilenceLimit - 1
	}
	if w.Counter == 0 {
		w.Fires++
		m.RaiseNMI()
		w.Counter = w.SilenceLimit - 1
		return
	}
	w.Counter--
}
