package core

import (
	"ssos/internal/guest"
	"ssos/internal/model"
)

// Mailbox-workload observation: every predicate here reads the machine
// through the abstraction function α the refinement tests use — each
// raw mailbox word is projected onto its owner's value domain by
// model.Protocol.Norm, exactly the projection the guest node applies in
// assembly before acting on the word. Arbitrary RAM corruption can park
// any bytes in a slot; α maps them to the value the protocol will
// behave as if it read.

// MailboxProtocol returns the abstract protocol of the configured
// mailbox workload (ok=false for other workloads).
func (s *System) MailboxProtocol() (model.Protocol, bool) {
	return MailboxProtocolFor(s.Cfg.Workload)
}

// MailboxProtocolFor maps a mailbox workload to its abstract protocol.
func MailboxProtocolFor(w Workload) (model.Protocol, bool) {
	v, ok := w.MailboxVariant()
	if !ok {
		return model.Protocol{}, false
	}
	switch v {
	case guest.VariantDijkstra3:
		return model.Dijkstra3Protocol(), true
	case guest.VariantGhosh4:
		return model.Ghosh4Protocol(), true
	default:
		return model.KStateProtocol(guest.MailboxK), true
	}
}

// MailboxNodes returns the configured ring size: RingNodes for a
// one-node-per-replica build, guest.MailboxNodes for the single-machine
// ring.
func (s *System) MailboxNodes() int {
	if s.Cfg.RingNodes != 0 {
		return s.Cfg.RingNodes
	}
	return guest.MailboxNodes
}

// MailboxSlot returns the raw word in ring slot i of this machine's
// mailbox region.
func (s *System) MailboxSlot(i int) uint16 {
	return s.M.Bus.LoadWord(guest.MailboxAddr(i))
}

// MailboxRing returns α of the machine's mailbox region: every slot
// word projected onto its owner's domain.
func (s *System) MailboxRing() model.RingState {
	p, ok := s.MailboxProtocol()
	if !ok {
		return model.RingState{}
	}
	n := s.MailboxNodes()
	var x model.RingState
	for i := 0; i < n; i++ {
		x[i] = p.Norm(i, n, s.MailboxSlot(i))
	}
	return x
}

// MailboxPrivileges returns the privileges held in the current abstract
// configuration, one entry per held guard. Legal configurations have
// exactly one. On a one-node-per-replica machine this evaluates the
// local copy of the ring; the cluster assembles the authoritative
// configuration from the slot owners.
func (s *System) MailboxPrivileges() []int {
	p, ok := s.MailboxProtocol()
	if !ok {
		return nil
	}
	return p.Privileges(s.MailboxRing(), s.MailboxNodes())
}

// MailboxConverged runs the system for up to horizon steps (sampling
// every sampleEvery steps) and reports whether the mailbox ring held
// the exactly-one-privilege invariant at `window` consecutive samples,
// returning the step at which the sustained window began — the
// mailbox twin of RingConverged.
func (s *System) MailboxConverged(horizon, sampleEvery, window int) (uint64, bool) {
	if sampleEvery <= 0 {
		sampleEvery = 500
	}
	good := 0
	var since uint64
	for ran := 0; ran < horizon; ran += sampleEvery {
		s.Run(sampleEvery)
		if len(s.MailboxPrivileges()) == 1 {
			if good == 0 {
				since = s.Steps()
			}
			good++
			if good >= window {
				return since, true
			}
		} else {
			good = 0
		}
	}
	return 0, false
}
