package core

import (
	"fmt"

	"ssos/internal/dev"
	"ssos/internal/guest"
	"ssos/internal/machine"
	"ssos/internal/mem"
)

// newKernelSystem builds the guest-OS-based systems: baseline,
// approach 1 (reinstall / continue) and approach 2 (monitor).
func newKernelSystem(cfg Config) (*System, error) {
	if err := buildAll(); err != nil {
		return nil, err
	}

	padded := cfg.PaddedKernel
	if cfg.Approach == ApproachMonitor {
		padded = true // the monitor masks the resume ip to slot starts
	}
	kernel := buildCache.kernelPlain
	if padded {
		kernel = buildCache.kernelPadded
	}
	if cfg.TickfulKernel {
		switch cfg.Approach {
		case ApproachBaseline, ApproachReinstall, ApproachAdaptive:
		default:
			return nil, fmt.Errorf("core: the tickful kernel supports baseline, reinstall and adaptive, not %v", cfg.Approach)
		}
		if padded {
			return nil, fmt.Errorf("core: the tickful kernel has no padded variant")
		}
		kernel = buildCache.kernelTickful
	}

	var handler *guest.Handler
	switch cfg.Approach {
	case ApproachBaseline, ApproachReinstall, ApproachAdaptive:
		handler = buildCache.reinstall
	case ApproachContinue:
		handler = buildCache.cont
	case ApproachMonitor:
		handler = buildCache.monitor
	case ApproachCheckpoint:
		handler = buildCache.checkpoint
	default:
		return nil, fmt.Errorf("core: %v is not a kernel system", cfg.Approach)
	}

	bus, err := busWithROMs(
		romSpec{"os-image", uint32(guest.OSROMSeg) << 4, kernel.Image()},
		romSpec{"stabilizer", uint32(guest.HandlerROMSeg) << 4, handler.Prog.Code},
	)
	if err != nil {
		return nil, err
	}

	if cfg.NMICounterMax == 0 {
		// The longest handler path copies the full image byte by byte.
		cfg.NMICounterMax = guest.ImageSize + DefaultNMISlack
	}
	if cfg.WatchdogPeriod == 0 {
		cfg.WatchdogPeriod = DefaultWatchdogPeriod
	}
	cfg.PaddedKernel = padded

	opts := machine.Options{
		NMICounter:         !cfg.DisableNMICounter,
		NMICounterMax:      cfg.NMICounterMax,
		HardwiredNMIVector: true,
		NMIVector:          handler.NMIEntry(),
		FixedIDTR:          true,
		ExceptionPolicy:    machine.ExceptionVector,
		ExceptionVector:    handler.ExcEntry(),
		ResetVector:        handler.BootEntry(),
	}
	if cfg.Approach == ApproachBaseline {
		// A conventional system: exceptions crash the machine.
		opts.ExceptionPolicy = machine.ExceptionHalt
	}
	if cfg.StockVectoring {
		// Stock plumbing: everything vectors through a RAM IDT via a
		// writable IDTR (the paper's introduction hazard).
		opts.HardwiredNMIVector = false
		opts.FixedIDTR = false
		if opts.ExceptionPolicy == machine.ExceptionVector {
			opts.ExceptionPolicy = machine.ExceptionIDT
		}
	}

	m := machine.New(bus, opts)
	if cfg.StockVectoring {
		// Initialize the IDT at base 0 as the BIOS would. It lives in
		// RAM: transient faults can corrupt both it and the IDTR.
		m.SetIDTEntry(machine.VecNMI, handler.NMIEntry())
		m.SetIDTEntry(machine.VecInvalidOpcode, handler.ExcEntry())
		m.SetIDTEntry(machine.VecGP, handler.ExcEntry())
	}
	sys := &System{M: m, Cfg: cfg, Kernel: kernel}
	if cfg.Approach == ApproachAdaptive {
		// The silence watchdog observes the heartbeat port itself,
		// wrapping the recording console; the watchdog period plays
		// the role of the silence limit.
		console := dev.NewConsole(func() uint64 { return m.Stats.Steps }, cfg.ConsoleCap)
		sys.Heartbeat = console
		sys.Silence = dev.NewSilenceWatchdog(console, cfg.WatchdogPeriod)
		m.MapPort(guest.PortHeartbeat, sys.Silence)
		m.AddTicker(sys.Silence)
	} else {
		sys.Heartbeat = attachConsole(m, guest.PortHeartbeat, cfg.ConsoleCap)
	}
	if cfg.Approach == ApproachMonitor {
		sys.Repairs = attachConsole(m, guest.PortRepair, cfg.ConsoleCap)
	}
	if cfg.Approach != ApproachBaseline && cfg.Approach != ApproachAdaptive {
		sys.Watchdog = dev.NewWatchdog(cfg.WatchdogPeriod, cfg.WatchdogTarget)
		m.AddTicker(sys.Watchdog)
	}
	if cfg.TickfulKernel {
		if cfg.TimerPeriod == 0 {
			cfg.TimerPeriod = DefaultTimerPeriod
			sys.Cfg.TimerPeriod = cfg.TimerPeriod
		}
		sys.Timer = dev.NewTimer(cfg.TimerPeriod, machine.VecTimer)
		m.AddTicker(sys.Timer)
	}
	if cfg.Approach == ApproachCheckpoint {
		if cfg.CheckpointPeriod == 0 {
			// Two thirds of the watchdog period, deliberately not a
			// divisor of it: snapshot and rollback instants interleave
			// instead of coinciding, so some rollbacks find a pre-fault
			// snapshot. (An aligned schedule would snapshot the
			// corruption in the same tick the rollback fires.)
			cfg.CheckpointPeriod = cfg.WatchdogPeriod * 2 / 3
			sys.Cfg.CheckpointPeriod = cfg.CheckpointPeriod
		}
		sys.Checkpoint = dev.NewCheckpointer(bus, mem.Region{
			Name:  "os-checkpoint",
			Start: uint32(guest.OSSeg) << 4,
			Size:  guest.ImageSize,
		}, cfg.CheckpointPeriod)
		m.AddTicker(sys.Checkpoint)
		m.MapPort(guest.PortCheckpoint, sys.Checkpoint)
	}
	return sys, nil
}
