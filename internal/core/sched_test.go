package core

import (
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/isa"
	"ssos/internal/mem"
	"ssos/internal/trace"
)

// procRecoveredAfter reports whether process i's beat stream contains a
// confirmed legal suffix that begins at or after faultStep — beats from
// before the fault never count toward recovery.
func procRecoveredAfter(s *System, i int, faultStep uint64, confirm int) bool {
	_, ok := s.ProcSpec(i).RecoveredAfter(s.ProcBeats[i].Writes(), faultStep, confirm)
	return ok
}

func TestSchedulerRunsAllProcesses(t *testing.T) {
	s := MustNew(Config{Approach: ApproachScheduler})
	s.Run(400000)
	for i := 0; i < guest.NumProcs; i++ {
		n := len(s.ProcBeats[i].Writes())
		if n < 3 {
			t.Fatalf("process %d beat only %d times", i, n)
		}
		if !procRecoveredAfter(s, i, 0, 3) {
			t.Fatalf("process %d stream not legal: %v", i, s.ProcBeats[i].Writes())
		}
	}
	if s.M.Stats.NMIs < 100 {
		t.Fatalf("scheduler barely ran: %d NMIs", s.M.Stats.NMIs)
	}
}

func TestSchedulerFairness(t *testing.T) {
	s := MustNew(Config{Approach: ApproachScheduler})
	var ranges []trace.Range
	for i := 0; i < guest.NumProcs; i++ {
		base := uint32(guest.ProcCodeSeg(i)) << 4
		ranges = append(ranges, trace.Range{
			Name:  "proc",
			Start: base,
			End:   base + guest.ProcRegionSize,
		})
	}
	sampler := trace.NewPCSampler(ranges...)
	s.M.AfterStep = sampler.Observe
	s.Run(500000)
	// Lemma 5.3: every process executes infinitely often; with a
	// round-robin quantum each should get a near-equal share of the
	// machine (the scheduler itself costs ~67 instructions per switch).
	if min := sampler.MinShare(); min < 0.15 {
		t.Fatalf("starvation: %v", sampler)
	}
}

func TestSchedulerFairnessWithUnequalProcessLengths(t *testing.T) {
	// The Section 5.2 motivation: "a process with a thousand sequential
	// machine code lines will not cause a delay in executing a process
	// with only ten machine code lines". Process 2's loop makes its
	// iteration ~40x longer than process 0's; beats per unit time
	// differ, but machine share must not.
	s := MustNew(Config{Approach: ApproachScheduler})
	r0 := uint32(guest.ProcCodeSeg(0)) << 4
	r2 := uint32(guest.ProcCodeSeg(2)) << 4
	sampler := trace.NewPCSampler(
		trace.Range{Name: "p0", Start: r0, End: r0 + guest.ProcRegionSize},
		trace.Range{Name: "p2", Start: r2, End: r2 + guest.ProcRegionSize},
	)
	s.M.AfterStep = sampler.Observe
	s.Run(500000)
	s0, s2 := sampler.Share(0), sampler.Share(1)
	if s0 < 0.15 || s2 < 0.15 {
		t.Fatalf("share lost: p0=%.3f p2=%.3f", s0, s2)
	}
	ratio := s0 / s2
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("quantum fairness broken: p0=%.3f p2=%.3f", s0, s2)
	}
}

func TestSchedulerRecoversFromIndexCorruption(t *testing.T) {
	s := MustNew(Config{Approach: ApproachScheduler})
	s.Run(100000)
	// Any bit pattern is a legal index after masking (lg N bits).
	s.M.Bus.PokeRAM(guest.ProcessIndexAddr(), 0xFF)
	s.M.Bus.PokeRAM(guest.ProcessIndexAddr()+1, 0xFF)
	faultStep := s.Steps()
	s.Run(300000)
	for i := 0; i < guest.NumProcs; i++ {
		if !procRecoveredAfter(s, i, faultStep, 3) {
			t.Fatalf("process %d did not recover from index corruption", i)
		}
	}
}

func TestSchedulerPinsCorruptedCS(t *testing.T) {
	s := MustNew(Config{Approach: ApproachScheduler})
	s.Run(100000)
	// Corrupt process 1's saved cs; the Figure 5 validation must pin
	// it back to the fixed value within one scheduling round.
	rec := guest.ProcRecordAddr(1)
	s.M.Bus.PokeRAM(rec+2, 0x34)
	s.M.Bus.PokeRAM(rec+3, 0x12)
	faultStep := s.Steps()
	s.Run(int(s.Cfg.WatchdogPeriod) * (guest.NumProcs + 2))
	// After a full round the record holds the fixed cs again (saved
	// from the validated running value).
	if got := s.M.Bus.LoadWord(rec + 2); got != guest.ProcCodeSeg(1) {
		t.Fatalf("cs not pinned: %#x", got)
	}
	s.Run(200000)
	if !procRecoveredAfter(s, 1, faultStep, 3) {
		t.Fatal("process 1 did not resume legal beats")
	}
}

func TestSchedulerRecoversFromTableBlast(t *testing.T) {
	s := MustNew(Config{Approach: ApproachScheduler})
	s.Run(100000)
	inj := fault.NewInjector(s.M, 7)
	inj.RandomizeRegion(mem.Region{
		Name:  "process-table",
		Start: uint32(guest.SchedSeg) << 4,
		Size:  guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize,
	})
	faultStep := s.Steps()
	s.Run(2400000)
	for i := 0; i < guest.NumProcs; i++ {
		if !procRecoveredAfter(s, i, faultStep, 3) {
			t.Fatalf("process %d did not recover from table blast", i)
		}
	}
}

func TestRefresherRestoresCorruptedWorkerCode(t *testing.T) {
	s := MustNew(Config{Approach: ApproachScheduler})
	s.Run(100000)
	inj := fault.NewInjector(s.M, 8)
	// Destroy worker 0's code region in RAM.
	inj.RandomizeRegion(mem.Region{
		Name:  "proc0-code",
		Start: uint32(guest.ProcCodeSeg(0)) << 4,
		Size:  guest.ProcRegionSize,
	})
	faultStep := s.Steps()
	s.Run(900000)
	w := s.ProcBeats[0].Writes()
	if _, ok := s.ProcSpec(0).RecoveredAfter(w, faultStep, 3); !ok {
		t.Fatalf("process 0 did not recover after code blast (beats=%d)", len(w))
	}
	// The region must match the ROM image again.
	romBase := uint32(guest.ProcROMSeg(0)) << 4
	ramBase := uint32(guest.ProcCodeSeg(0)) << 4
	for off := uint32(0); off < guest.ProcRegionSize; off++ {
		if s.M.Bus.Peek(ramBase+off) != s.M.Bus.Peek(romBase+off) {
			t.Fatalf("code byte %#x not refreshed", off)
		}
	}
}

func TestSchedulerFromArbitraryConfiguration(t *testing.T) {
	// Theorem 5.5 under the harshest start: all RAM and the whole CPU
	// randomized. The bare Figures 2-5 scheduler has an ABSORBING
	// counterexample here — a poisoned record (ax = the scheduler's
	// data segment, resume mid-slot at a mov ds,ax) aliases a process
	// onto the scheduler's own state; the process then redirects its
	// own save every quantum and its record is never healed. This is
	// the "mixture of data space" caveat the paper itself concedes in
	// Section 5.2. We therefore assert the realistic split: the bare
	// scheduler converges on most seeds, and the memory-protection
	// extension (which faults the aliased stores) converges on all.
	const seeds = 5
	bareOK := 0
	for seed := int64(0); seed < seeds; seed++ {
		s := MustNew(Config{Approach: ApproachScheduler})
		inj := fault.NewInjector(s.M, 300+seed)
		inj.BlastRAM()
		inj.BlastCPU()
		s.Run(2500000)
		ok := true
		for i := 0; i < guest.NumProcs; i++ {
			if !procRecoveredAfter(s, i, 0, 3) {
				ok = false
			}
		}
		if ok {
			bareOK++
		} else {
			t.Logf("bare scheduler seed %d: absorbed into the aliasing cycle (expected occasionally)", seed)
		}
	}
	if bareOK < seeds/2+1 {
		t.Fatalf("bare scheduler converged on only %d/%d seeds", bareOK, seeds)
	}
	for seed := int64(0); seed < seeds; seed++ {
		s := MustNew(Config{Approach: ApproachScheduler, ProtectMemory: true})
		inj := fault.NewInjector(s.M, 300+seed)
		inj.BlastRAM()
		inj.BlastCPU()
		s.Run(2500000)
		for i := 0; i < guest.NumProcs; i++ {
			if !procRecoveredAfter(s, i, 0, 3) {
				t.Fatalf("protected scheduler seed %d: process %d did not converge (beats=%d)",
					seed, i, len(s.ProcBeats[i].Writes()))
			}
		}
	}
}

func TestSchedulerDSValidationExtension(t *testing.T) {
	s := MustNew(Config{Approach: ApproachScheduler, ValidateDS: true})
	s.Run(100000)
	rec := guest.ProcRecordAddr(2)
	s.M.Bus.PokeRAM(rec+8, 0x77) // corrupt saved ds
	s.M.Bus.PokeRAM(rec+9, 0x77)
	s.Run(int(s.Cfg.WatchdogPeriod) * (guest.NumProcs + 2))
	if got := s.M.Bus.LoadWord(rec + 8); got != guest.ProcDataSeg(2) {
		t.Fatalf("ds not pinned by extension: %#x", got)
	}
}

func TestSchedulerSurvivesHaltLatch(t *testing.T) {
	// hlt (whether from a fault latch or a misdecoded byte) is woken by
	// the next watchdog NMI — the tailored system has no unrecoverable
	// halt, unlike the interrupt-free primitive chain.
	s := MustNew(Config{Approach: ApproachScheduler})
	s.Run(100000)
	s.M.CPU.Halted = true
	faultStep := s.Steps()
	s.Run(300000)
	for i := 0; i < guest.NumProcs; i++ {
		if !procRecoveredAfter(s, i, faultStep, 3) {
			t.Fatalf("process %d did not survive halt latch", i)
		}
	}
}

func TestPrimitiveRunsAllProcesses(t *testing.T) {
	s := MustNew(Config{Approach: ApproachPrimitive})
	s.Run(50000)
	for i := 0; i < guest.PrimitiveNumProcs; i++ {
		w := s.ProcBeats[i].Writes()
		if len(w) < 100 {
			t.Fatalf("process %d beat %d times", i, len(w))
		}
		spec := trace.HeartbeatSpec{Start: 1, MaxGap: 1000, AllowRestart: true}
		if v := spec.Violations(w, s.Steps()); len(v) != 0 {
			t.Fatalf("process %d violations: %v", i, v)
		}
	}
}

// primitiveInstructionStarts returns every offset the paper's 5.1 model
// allows the program counter to hold: instruction starts within the
// process chain plus all fill offsets that stay inside the region.
func primitiveInstructionStarts(p *guest.Primitive) []uint16 {
	var starts []uint16
	off := 0
	for off < int(p.CodeEnd) {
		starts = append(starts, uint16(off))
		_, size, ok := isa.Decode(p.Image[off:])
		if !ok {
			break
		}
		off += size
	}
	for f := int(p.CodeEnd); f < len(p.Image)-2; f++ {
		starts = append(starts, uint16(f))
	}
	return starts
}

func TestPrimitiveStabilizesFromEveryInstructionStart(t *testing.T) {
	// Theorem 5.1: from any program counter value (the 5.1 model
	// assumes the pc holds an instruction start), every process is
	// executed infinitely often and stabilizes.
	base := MustNew(Config{Approach: ApproachPrimitive})
	starts := primitiveInstructionStarts(base.Prim)
	if len(starts) < 100 {
		t.Fatalf("suspiciously few instruction starts: %d", len(starts))
	}
	for _, off := range starts {
		s := MustNew(Config{Approach: ApproachPrimitive})
		s.Run(1000)
		s.M.CPU.IP = off // transient pc fault
		faultStep := s.Steps()
		s.Run(3000)
		for i := 0; i < guest.PrimitiveNumProcs; i++ {
			if !procRecoveredAfter(s, i, faultStep, 3) {
				t.Fatalf("offset %#x: process %d did not stabilize", off, i)
			}
		}
	}
}

func TestPrimitiveRawByteCorruptionMostlyRecovers(t *testing.T) {
	// Outside the 5.1 model: a pc pointing mid-instruction can decode
	// operand bytes as code. Most offsets still recover (junk decodes
	// raise exceptions that restart the chain); a halt byte inside an
	// operand is unrecoverable without interrupts — exactly the
	// variable-instruction-length hazard Section 5.2's padding solves.
	s0 := MustNew(Config{Approach: ApproachPrimitive})
	recovered, total := 0, 0
	for off := 0; off < int(s0.Prim.CodeEnd); off++ {
		s := MustNew(Config{Approach: ApproachPrimitive})
		s.Run(1000)
		s.M.CPU.IP = uint16(off)
		faultStep := s.Steps()
		s.Run(3000)
		ok := true
		for i := 0; i < guest.PrimitiveNumProcs; i++ {
			if !procRecoveredAfter(s, i, faultStep, 3) {
				ok = false
			}
		}
		total++
		if ok {
			recovered++
		}
	}
	if recovered < total*3/4 {
		t.Fatalf("only %d/%d raw offsets recovered", recovered, total)
	}
	t.Logf("raw-byte sweep: %d/%d offsets recovered", recovered, total)
}

func TestSchedulerQuantumChangesSwitchRate(t *testing.T) {
	fast := MustNew(Config{Approach: ApproachScheduler, WatchdogPeriod: 300})
	slow := MustNew(Config{Approach: ApproachScheduler, WatchdogPeriod: 3000})
	fast.Run(200000)
	slow.Run(200000)
	if fast.M.Stats.NMIs <= slow.M.Stats.NMIs*5 {
		t.Fatalf("quantum had no effect: fast=%d slow=%d", fast.M.Stats.NMIs, slow.M.Stats.NMIs)
	}
}

func TestProtectedSchedulerRunsNormally(t *testing.T) {
	// The protection extension must not disturb legal operation: all
	// processes (including the ROM refresher, exempt as supervisor)
	// keep running, and the refresher can still rewrite worker code.
	s := MustNew(Config{Approach: ApproachScheduler, ProtectMemory: true})
	s.Run(400000)
	for i := 0; i < guest.NumProcs; i++ {
		if !procRecoveredAfter(s, i, 0, 3) {
			t.Fatalf("process %d not running under protection (beats=%d, exc=%d)",
				i, len(s.ProcBeats[i].Writes()), s.M.Stats.Exceptions)
		}
	}
	// Refresher still restores corrupted worker code.
	inj := fault.NewInjector(s.M, 12)
	inj.RandomizeRegion(mem.Region{Name: "p0",
		Start: uint32(guest.ProcCodeSeg(0)) << 4, Size: guest.ProcRegionSize})
	faultStep := s.Steps()
	s.Run(900000)
	if !procRecoveredAfter(s, 0, faultStep, 3) {
		t.Fatal("refresher blocked by protection")
	}
}

func TestProtectionConfinesStrayWrites(t *testing.T) {
	// Force the exact hazard the paper leaves to programmer discipline:
	// worker 1 about to store through a ds pointing at worker 2's data.
	// With the protection extension the store faults and worker 2's
	// data survives; without it, worker 2 gets scribbled.
	run := func(protect bool) (victimChanged bool) {
		s := MustNew(Config{Approach: ApproachScheduler, ProtectMemory: protect})
		s.Run(100000)
		victim := guest.RingXAddr(2) // worker 2's counter word (offset 0)
		before := s.M.Bus.LoadWord(victim)
		// Drop the CPU right at worker 1's counter-store slot
		// (slot 4: mov [0], ax) with a corrupted ds.
		s.M.CPU.S[isa.CS] = guest.ProcCodeSeg(1)
		s.M.CPU.IP = 4 * 16
		s.M.CPU.S[isa.DS] = guest.ProcDataSeg(2) // stray!
		s.M.CPU.R[isa.AX] = 0x5A5A
		if protect {
			s.M.CPU.WP = guest.ProcDataSeg(1)
			s.M.CPU.Flags = s.M.CPU.Flags.With(isa.FlagWP)
		} else {
			s.M.CPU.Flags = s.M.CPU.Flags.Without(isa.FlagWP)
		}
		s.M.Step()
		return s.M.Bus.LoadWord(victim) != before
	}
	if run(false) != true {
		t.Fatal("without protection the stray write should land")
	}
	if run(true) {
		t.Fatal("protection failed to confine the stray write")
	}
}
