package core

import (
	"fmt"

	"ssos/internal/dev"
	"ssos/internal/guest"
	"ssos/internal/machine"
)

// newSchedulerSystem builds the Section 5.2 tailored system: the
// Figures 2-5 scheduler in ROM, worker processes in RAM (pristine
// images in ROM), the ROM-resident refresher process, and a watchdog
// supplying the scheduling quantum on the NMI pin.
func newSchedulerSystem(cfg Config) (*System, error) {
	if err := buildAll(); err != nil {
		return nil, err
	}
	sched := buildCache.sched
	if cfg.ValidateDS {
		sched = buildCache.schedDS
	}
	if cfg.ProtectMemory {
		sched = buildCache.schedProt
	}
	procs := buildCache.procs
	if cfg.Workload == WorkloadTokenRing {
		procs = buildCache.ringProcs
	}
	if v, ok := cfg.Workload.MailboxVariant(); ok {
		if cfg.ProtectMemory {
			// The protection extension confines each process's stores to
			// its own 4 KiB window; mailbox nodes write a shared region
			// outside every window by design.
			return nil, fmt.Errorf("core: mailbox workload %v is incompatible with ProtectMemory", v)
		}
		if cfg.RingNodes != 0 {
			set, err := mailboxNodeSet(v, cfg.RingNode, cfg.RingNodes)
			if err != nil {
				return nil, err
			}
			procs = set
		} else {
			procs = buildCache.mboxProcs[v]
		}
	}

	roms := []romSpec{
		{"scheduler", uint32(guest.HandlerROMSeg) << 4, sched.Prog.Code},
	}
	for i := 0; i < guest.NumProcs; i++ {
		roms = append(roms, romSpec{
			name:  "proc-image",
			start: uint32(guest.ProcROMSeg(i)) << 4,
			data:  procs.Images[i],
		})
	}
	bus, err := busWithROMs(roms...)
	if err != nil {
		return nil, err
	}
	// Preload the worker code regions in RAM, as a manufacturer would;
	// the refresher maintains them from then on.
	for i := 0; i < guest.RefresherIndex; i++ {
		base := uint32(guest.ProcCodeSeg(i)) << 4
		for off, b := range procs.Images[i] {
			bus.Poke(base+uint32(off), b)
		}
	}

	if cfg.WatchdogPeriod == 0 {
		cfg.WatchdogPeriod = DefaultQuantum
	}
	if cfg.NMICounterMax == 0 {
		// The scheduler runs 67-ish instructions; leave generous slack.
		cfg.NMICounterMax = DefaultNMISlack
	}

	m := machine.New(bus, machine.Options{
		NMICounter:         !cfg.DisableNMICounter,
		NMICounterMax:      cfg.NMICounterMax,
		HardwiredNMIVector: true,
		NMIVector:          sched.NMIEntry(),
		FixedIDTR:          true,
		ExceptionPolicy:    machine.ExceptionVector,
		ExceptionVector:    sched.ExcEntry(),
		ResetVector:        sched.BootEntry(),
		MemoryProtection:   cfg.ProtectMemory,
	})
	sys := &System{M: m, Cfg: cfg, Sched: sched, Procs: procs}
	for i := 0; i < guest.NumProcs; i++ {
		sys.ProcBeats = append(sys.ProcBeats,
			attachConsole(m, uint16(guest.PortProc0+i), cfg.ConsoleCap))
	}
	sys.Watchdog = dev.NewWatchdog(cfg.WatchdogPeriod, cfg.WatchdogTarget)
	m.AddTicker(sys.Watchdog)
	return sys, nil
}

// newPrimitiveSystem builds the Section 5.1 tailored system: loop-free
// processes chained in ROM, no interrupts, exceptions restarting the
// chain.
func newPrimitiveSystem(cfg Config) (*System, error) {
	if err := buildAll(); err != nil {
		return nil, err
	}
	prim := buildCache.prim
	bus, err := busWithROMs(
		romSpec{"primitive", uint32(guest.HandlerROMSeg) << 4, prim.Image},
	)
	if err != nil {
		return nil, err
	}
	entry := machine.SegOff{Seg: guest.HandlerROMSeg, Off: 0}
	m := machine.New(bus, machine.Options{
		NMICounter:         !cfg.DisableNMICounter,
		NMICounterMax:      DefaultNMISlack,
		HardwiredNMIVector: true,
		NMIVector:          entry,
		FixedIDTR:          true,
		ExceptionPolicy:    machine.ExceptionVector,
		ExceptionVector:    entry,
		ResetVector:        entry,
	})
	sys := &System{M: m, Cfg: cfg, Prim: prim}
	for i := 0; i < guest.PrimitiveNumProcs; i++ {
		sys.ProcBeats = append(sys.ProcBeats,
			attachConsole(m, uint16(guest.PortProc0+i), cfg.ConsoleCap))
	}
	return sys, nil
}
