package core_test

import (
	"fmt"

	"ssos/internal/asm"
	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

// Example_reinstall builds the paper's approach-1 system, destroys the
// OS in RAM, and shows the watchdog/reinstall procedure bringing it
// back — the Bochs experiment as three statements.
func Example_reinstall() {
	sys := core.MustNew(core.Config{Approach: core.ApproachReinstall})
	sys.Run(100000)

	inj := fault.NewInjector(sys.M, 42)
	inj.RandomizeRegion(mem.Region{
		Name:  "os",
		Start: uint32(guest.OSSeg) << 4,
		Size:  guest.ImageSize,
	})
	faultStep := sys.Steps()
	sys.Run(200000)

	_, recovered := sys.Spec().RecoveredAfter(sys.Heartbeat.Writes(), faultStep, 10)
	fmt.Println("recovered:", recovered)
	// Output: recovered: true
}

// Example_monitor shows approach 2 repairing a broken consistency
// predicate in place, reporting the repair on the repair port.
func Example_monitor() {
	sys := core.MustNew(core.Config{Approach: core.ApproachMonitor})
	sys.Run(100000)

	// A transient fault flips the canary word.
	sys.M.Bus.PokeRAM(uint32(guest.OSSeg)<<4+guest.VarCanary, 0x00)
	sys.Run(2 * int(sys.Cfg.WatchdogPeriod))

	for _, r := range sys.Repairs.Writes() {
		if r.Value == guest.RepairCanary {
			fmt.Println("monitor repaired the canary")
			break
		}
	}
	// Output: monitor repaired the canary
}

// ExampleNewCustom wraps a user-assembled guest in the Figure 1
// stabilizer: the library's extension point.
func ExampleNewCustom() {
	prog, err := asm.Assemble(`
OS_SEG equ 0x2000
start:
	mov ax, OS_SEG
	mov ds, ax
loop_top:
	mov ax, [0x100]
	inc ax
	mov [0x100], ax
	out 0x50, ax
	jmp loop_top
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	img := make([]byte, 0x110)
	copy(img, prog.Code)

	sys, err := core.NewCustom(core.CustomConfig{Image: img, HeartbeatPort: 0x50})
	if err != nil {
		fmt.Println(err)
		return
	}
	sys.Run(50000)
	fmt.Println("guest alive:", sys.Heartbeat.Total() > 1000)
	// Output: guest alive: true
}

// Example_tokenRing runs Dijkstra's ring above the self-stabilizing
// scheduler and reports the mutual-exclusion invariant.
func Example_tokenRing() {
	sys := core.MustNew(core.Config{
		Approach: core.ApproachScheduler,
		Workload: core.WorkloadTokenRing,
	})
	if _, ok := sys.RingConverged(2000000, 500, 50); ok {
		fmt.Println("exactly one privilege circulates")
	}
	// Output: exactly one privilege circulates
}
