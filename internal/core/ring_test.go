package core

import (
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

func newRing(t *testing.T) *System {
	t.Helper()
	return MustNew(Config{Approach: ApproachScheduler, Workload: WorkloadTokenRing})
}

func TestRingTokenCirculates(t *testing.T) {
	s := newRing(t)
	since, ok := s.RingConverged(2000000, 500, 100)
	if !ok {
		t.Fatalf("ring never converged; privileges=%v x=[%d %d %d]",
			s.RingPrivileges(), s.RingX(0), s.RingX(1), s.RingX(2))
	}
	t.Logf("converged at step %d", since)
	// All members keep making moves after convergence.
	before := make([]uint64, guest.RingMembers)
	for i := range before {
		before[i] = s.ProcBeats[i].Total()
	}
	s.Run(500000)
	for i := 0; i < guest.RingMembers; i++ {
		if s.ProcBeats[i].Total() <= before[i] {
			t.Fatalf("member %d stopped moving", i)
		}
	}
}

func TestRingStabilizesFromArbitraryTokenValues(t *testing.T) {
	// Dijkstra's theorem on our substrate: any initial x values
	// converge to a single circulating privilege.
	s := newRing(t)
	s.Run(200000)
	// Adversarial x assignment: all distinct → many privileges.
	for i := 0; i < guest.RingMembers; i++ {
		addr := guest.RingXAddr(i)
		s.M.Bus.PokeRAM(addr, byte(37*i+11))
		s.M.Bus.PokeRAM(addr+1, byte(i))
	}
	if _, ok := s.RingConverged(3000000, 500, 100); !ok {
		t.Fatalf("ring did not re-converge; privileges=%v", s.RingPrivileges())
	}
}

func TestRingSurvivesSchedulerFaults(t *testing.T) {
	// The composition claim, end to end: corrupt the OS layer (process
	// table AND the ring variables); the scheduler stabilizes first,
	// then the application stabilizes above it.
	s := newRing(t)
	s.Run(200000)
	inj := fault.NewInjector(s.M, 5)
	inj.RandomizeRegion(mem.Region{
		Name:  "table",
		Start: uint32(guest.SchedSeg) << 4,
		Size:  guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize,
	})
	for i := 0; i < guest.RingMembers; i++ {
		inj.CorruptByteIn(mem.Region{Name: "x", Start: guest.RingXAddr(i), Size: 2})
	}
	if _, ok := s.RingConverged(4000000, 500, 100); !ok {
		t.Fatalf("composition failed; privileges=%v", s.RingPrivileges())
	}
}

func TestRingPrivilegeAccounting(t *testing.T) {
	s := newRing(t)
	// Force a known configuration (machine not yet run past boot).
	set := func(i int, v uint16) {
		addr := guest.RingXAddr(i)
		s.M.Bus.PokeRAM(addr, byte(v))
		s.M.Bus.PokeRAM(addr+1, byte(v>>8))
	}
	set(0, 3)
	set(1, 3)
	set(2, 3)
	// x0==x2 → root privileged only.
	p := s.RingPrivileges()
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("privileges: %v", p)
	}
	set(1, 4) // member1 differs from member0 AND member2 differs from member1
	p = s.RingPrivileges()
	if len(p) != 3 {
		t.Fatalf("privileges: %v", p)
	}
}
