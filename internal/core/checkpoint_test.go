package core

import (
	"bytes"
	"testing"

	"ssos/internal/guest"
)

// nopOutHeartbeat overwrites the kernel's `out HEARTBEAT_PORT, ax`
// instruction in RAM with nops: a silent code corruption that stops
// the observable behaviour without raising any exception. Returns
// false if the pattern was not found.
func nopOutHeartbeat(s *System) bool {
	pattern := []byte{0x70, guest.PortHeartbeat} // out imm8 encoding
	code := s.Kernel.Prog.Code
	idx := bytes.Index(code, pattern)
	if idx < 0 {
		return false
	}
	base := uint32(guest.OSSeg) << 4
	s.M.Bus.PokeRAM(base+uint32(idx), 0x00)
	s.M.Bus.PokeRAM(base+uint32(idx)+1, 0x00)
	return true
}

func TestCheckpointSystemBootsAndRollsBack(t *testing.T) {
	s := MustNew(Config{Approach: ApproachCheckpoint})
	s.Run(200000)
	if s.Heartbeat.Total() < 100 {
		t.Fatalf("beats: %d", s.Heartbeat.Total())
	}
	if s.Checkpoint.Snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
	if s.Checkpoint.Restores == 0 {
		t.Fatal("no rollbacks performed")
	}
	if s.Cfg.CheckpointPeriod != s.Cfg.WatchdogPeriod*2/3 {
		t.Fatalf("default checkpoint period: %d", s.Cfg.CheckpointPeriod)
	}
}

func TestCheckpointRecoversFaultBeforeSnapshot(t *testing.T) {
	// A fault whose rollback arrives before the next snapshot is
	// recovered: the restored snapshot predates the corruption.
	s := MustNew(Config{Approach: ApproachCheckpoint})
	s.Run(100000)
	// Snapshots land every 20000 (at 20k, 40k, ...); watchdog at 30k
	// multiples. Fault at 101000: next watchdog 120000, next snapshot
	// 120000 — tick order runs the watchdog first and the CPU performs
	// the restore a few steps after the snapshot... choose a phase
	// where the rollback (120000) precedes the snapshot (140000? no).
	// Simplest deterministic approach: snapshot NOW via the device,
	// then corrupt, then force rollback via the device, mirroring a
	// lucky phase.
	s.Checkpoint.Out(guest.PortCheckpoint, 2) // snapshot (clean)
	if !nopOutHeartbeat(s) {
		t.Fatal("heartbeat out instruction not found")
	}
	s.Checkpoint.Out(guest.PortCheckpoint, 1) // rollback
	faultStep := s.Steps()
	s.Run(300000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10); !ok {
		t.Fatal("rollback to a clean snapshot should recover")
	}
}

func TestCheckpointCannotRecoverSnapshottedCorruption(t *testing.T) {
	// The E9 headline (and the paper's related-work point): corruption
	// that survives until a snapshot is checkpointed and then restored
	// forever. The same fault is fully recovered by approaches 1 and 2.
	s := MustNew(Config{Approach: ApproachCheckpoint})
	s.Run(100000)
	if !nopOutHeartbeat(s) {
		t.Fatal("heartbeat out instruction not found")
	}
	s.Checkpoint.Out(guest.PortCheckpoint, 2) // corruption gets checkpointed
	faultStep := s.Steps()
	s.Run(600000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10); ok {
		t.Fatal("checkpointing recovered a snapshotted corruption?!")
	}

	for _, a := range []Approach{ApproachReinstall, ApproachMonitor} {
		s2 := MustNew(Config{Approach: a})
		s2.Run(100000)
		if !nopOutHeartbeat(s2) {
			t.Fatal("heartbeat out instruction not found")
		}
		fs := s2.Steps()
		s2.Run(600000)
		if _, ok := s2.Spec().RecoveredAfter(s2.Heartbeat.Writes(), fs, 10); !ok {
			t.Fatalf("%v should recover the same fault (it reinstalls from ROM)", a)
		}
	}
}

func TestCheckpointRollbackRewindsCounter(t *testing.T) {
	// Rollback semantics: the heartbeat counter rewinds to its
	// snapshot value — work since the snapshot is lost (unlike the
	// monitor, which preserves it).
	s := MustNew(Config{Approach: ApproachCheckpoint, ConsoleCap: 100000})
	s.Run(400000)
	w := s.Heartbeat.Writes()
	rewinds := 0
	for i := 1; i < len(w); i++ {
		if w[i].Value < w[i-1].Value && w[i].Value != guest.HeartbeatStart {
			rewinds++
		}
	}
	if rewinds == 0 {
		t.Fatal("no rollback rewinds observed")
	}
}
