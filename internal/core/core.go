// Package core is the library's public surface: it assembles complete
// self-stabilizing systems — simulated machine, ROM-resident
// stabilizer, guest OS, watchdog and instrumentation — for each of the
// paper's designs, plus the baselines they are measured against.
//
// The three designs of the paper, in its own terms:
//
//   - Approach 1 (Section 3), ApproachReinstall: periodically reinstall
//     the whole OS from ROM and restart it. Weakly self-stabilizing
//     (Theorem 3.4). ApproachContinue is the section's second option
//     (refresh the executable, continue where interrupted), which the
//     paper notes is NOT fully self-stabilizing.
//   - Approach 2 (Section 4), ApproachMonitor: refresh only the
//     executable portion, check consistency predicates over the soft
//     state, repair exactly what is broken, resume at the interrupted
//     address when it is valid. Self-stabilizing and state-preserving.
//   - Approach 3 (Section 5), ApproachPrimitive (5.1) and
//     ApproachScheduler (5.2): operating systems tailored to be
//     self-stabilizing — a loop-free ROM process chain, and the
//     NMI-driven process-table scheduler of Figures 2-5.
//
// ApproachBaseline is a conventional system: installed once at boot,
// no watchdog, exceptions crash. It demonstrates the paper's premise
// that ordinary systems do not recover from transient faults.
package core

import (
	"fmt"

	"ssos/internal/dev"
	"ssos/internal/guest"
	"ssos/internal/machine"
	"ssos/internal/mem"
	"ssos/internal/trace"
)

// Approach selects the stabilization design a System is built with.
type Approach uint8

// Approaches, ordered as in the paper.
const (
	// ApproachBaseline is a conventional, non-stabilizing system.
	ApproachBaseline Approach = iota
	// ApproachReinstall is the paper's Section 3 periodic full
	// reinstall and restart (Figure 1).
	ApproachReinstall
	// ApproachContinue is Section 3's re-install-and-continue variant.
	ApproachContinue
	// ApproachMonitor is Section 4: executable refresh plus predicate
	// monitoring and repair.
	ApproachMonitor
	// ApproachPrimitive is Section 5.1's loop-free ROM process chain.
	ApproachPrimitive
	// ApproachScheduler is Section 5.2's self-stabilizing scheduler
	// (Figures 2-5).
	ApproachScheduler
	// ApproachAdaptive is a second related-work comparator: the
	// Figure 1 reinstall handler driven by a SILENCE-triggered
	// watchdog (an adaptive heartbeat monitor) instead of the paper's
	// periodic one. It has no restart tax when the guest is healthy,
	// but it is not self-stabilizing: a zombie that keeps emitting
	// illegal output never looks silent (experiment E12).
	ApproachAdaptive
	// ApproachCheckpoint is the related-work comparator the paper's
	// introduction dismisses: periodic checkpointing with rollback on
	// the watchdog signal (cf. Windows XP restore, EROS/KeyKOS). It is
	// implemented on the most generous terms (instantaneous,
	// incorruptible snapshots) and still fails to self-stabilize:
	// corruption that survives one snapshot period is checkpointed and
	// restored forever (experiment E9).
	ApproachCheckpoint
)

var approachNames = map[Approach]string{
	ApproachBaseline:   "baseline",
	ApproachReinstall:  "reinstall",
	ApproachContinue:   "continue",
	ApproachMonitor:    "monitor",
	ApproachPrimitive:  "primitive",
	ApproachScheduler:  "scheduler",
	ApproachAdaptive:   "adaptive",
	ApproachCheckpoint: "checkpoint",
}

func (a Approach) String() string {
	if s, ok := approachNames[a]; ok {
		return s
	}
	return fmt.Sprintf("approach(%d)", uint8(a))
}

// Config parameterizes system construction. The zero value of every
// field selects a sensible default for the chosen approach.
type Config struct {
	// Approach selects the design.
	Approach Approach
	// WatchdogPeriod is the interval in clock ticks between watchdog
	// signals (the reinstall period for approaches 1-2, the scheduling
	// quantum for the scheduler). Default: DefaultWatchdogPeriod, or
	// DefaultQuantum for the scheduler.
	WatchdogPeriod uint32
	// WatchdogTarget selects the pin the watchdog drives (NMI default;
	// reset is the Section 2 alternative for approach 1).
	WatchdogTarget dev.WatchdogTarget
	// DisableNMICounter reverts to stock-Pentium NMI latching,
	// reproducing the hazard the paper's proposed hardware removes.
	DisableNMICounter bool
	// NMICounterMax overrides the NMI counter reload value. It must
	// exceed the NMI handler's execution length; the default leaves
	// comfortable slack. Deliberately undersized values reproduce the
	// handler-preemption livelock (ablation experiment).
	NMICounterMax uint16
	// ValidateDS compiles the scheduler's ds-validation extension in.
	ValidateDS bool
	// TickfulKernel runs the interrupt-driven guest variant: the kernel
	// sleeps with hlt and heartbeats from a timer ISR through an IDT
	// it programs in RAM at boot. Supported by the baseline, reinstall
	// and adaptive approaches. Adds the silent IDT-corruption fault
	// class (experiment E13).
	TickfulKernel bool
	// TimerPeriod is the tickful kernel's timer interval in steps
	// (default DefaultTimerPeriod).
	TimerPeriod uint32
	// StockVectoring reverts to fully stock interrupt plumbing for the
	// kernel systems: NMIs and exceptions vector through an interrupt
	// descriptor table in RAM addressed by a writable IDTR — the
	// paper's introduction hazard ("a transient fault that causes a
	// value change of this register may disable the entire interrupt
	// capability"). The boot code initializes the IDT; faults may then
	// corrupt it or the register.
	StockVectoring bool
	// ProtectMemory enables the memory-protection extension for the
	// scheduler system: the machine enforces per-process 4 KiB store
	// windows and the scheduler programs them on every switch. An
	// extension beyond the paper (its real-mode setting has no
	// protection); the isolation tests measure what it buys.
	ProtectMemory bool
	// ConsoleCap bounds retained port writes per console (0 = all).
	ConsoleCap int
	// PaddedKernel assembles the guest OS in 16-byte instruction
	// slots. Forced on for ApproachMonitor (its resume check needs
	// it); default off elsewhere.
	PaddedKernel bool
	// CheckpointPeriod is the snapshot interval for ApproachCheckpoint
	// (default: half the watchdog period, so a rollback usually finds
	// a recent snapshot).
	CheckpointPeriod uint32
	// Workload selects what the scheduler system runs (ignored by the
	// other approaches).
	Workload Workload
	// RingNode and RingNodes deploy a mailbox ring workload as one node
	// per machine: the system runs ring node RingNode of a
	// RingNodes-sized ring in scheduler slot 0 (counter workers fill
	// the other slots), with the neighbour mailbox slots relayed in
	// from outside — internal/cluster's relay shim. Both zero (the
	// default) runs the full guest.MailboxNodes-node ring on this one
	// machine. Ignored by non-mailbox workloads.
	RingNode  int
	RingNodes int
}

// Workload selects the process set of the Section 5.2 scheduler system.
type Workload uint8

const (
	// WorkloadCounters is the default worker set: two counters, one
	// loop-heavy worker and the ROM refresher.
	WorkloadCounters Workload = iota
	// WorkloadTokenRing runs Dijkstra's K-state token ring as the
	// worker processes — the paper's composition argument (a
	// self-stabilizing application above the self-stabilizing OS) —
	// with members reading each other's data segments directly.
	WorkloadTokenRing
	// WorkloadMailboxKState runs the K-state ring in mailbox form:
	// nodes share only the dedicated mailbox RAM region, which is what
	// makes the ring distributable across a cluster (guest.RingVariant
	// VariantKState).
	WorkloadMailboxKState
	// WorkloadMailboxDijkstra3 runs Dijkstra's bidirectional 3-state
	// ring through the mailbox.
	WorkloadMailboxDijkstra3
	// WorkloadMailboxGhosh4 runs Ghosh's 4-state chain through the
	// mailbox.
	WorkloadMailboxGhosh4
)

func (w Workload) String() string {
	switch w {
	case WorkloadCounters:
		return "counters"
	case WorkloadTokenRing:
		return "ring"
	}
	if v, ok := w.MailboxVariant(); ok {
		return "mbox-" + v.String()
	}
	return fmt.Sprintf("workload(%d)", uint8(w))
}

// MailboxVariant maps a mailbox workload to its guest ring variant.
func (w Workload) MailboxVariant() (guest.RingVariant, bool) {
	switch w {
	case WorkloadMailboxKState:
		return guest.VariantKState, true
	case WorkloadMailboxDijkstra3:
		return guest.VariantDijkstra3, true
	case WorkloadMailboxGhosh4:
		return guest.VariantGhosh4, true
	}
	return 0, false
}

// MailboxWorkload maps a guest ring variant to its workload.
func MailboxWorkload(v guest.RingVariant) Workload {
	switch v {
	case guest.VariantDijkstra3:
		return WorkloadMailboxDijkstra3
	case guest.VariantGhosh4:
		return WorkloadMailboxGhosh4
	default:
		return WorkloadMailboxKState
	}
}

// Default timing parameters.
const (
	// DefaultWatchdogPeriod is the reinstall period for approaches 1-2:
	// several times the full handler length, so the guest gets most of
	// the machine.
	DefaultWatchdogPeriod = 30000
	// DefaultQuantum is the scheduler's default time slice.
	DefaultQuantum = 600
	// DefaultNMISlack is added to the handler length for the NMI
	// counter reload value.
	DefaultNMISlack = 256
	// DefaultTimerPeriod is the tickful kernel's timer interval.
	DefaultTimerPeriod = 97
)

// System is one fully wired simulated system.
type System struct {
	// M is the machine; step it directly or via Run.
	M *machine.Machine
	// Cfg echoes the construction parameters after defaulting.
	Cfg Config
	// Watchdog is the watchdog device, nil for baseline/primitive.
	Watchdog *dev.Watchdog
	// Heartbeat records the guest OS heartbeat stream (kernel-based
	// approaches; nil for approach 3 systems).
	Heartbeat *dev.Console
	// Repairs records approach-2 repair reports (nil otherwise).
	Repairs *dev.Console
	// ProcBeats records per-process heartbeats (approach 3 systems).
	ProcBeats []*dev.Console
	// Kernel is the assembled guest OS (kernel-based approaches).
	Kernel *guest.Kernel
	// Sched is the assembled scheduler (ApproachScheduler).
	Sched *guest.Scheduler
	// Procs are the scheduled process images (ApproachScheduler).
	Procs *guest.ProcSet
	// Prim is the primitive-scheduler ROM (ApproachPrimitive).
	Prim *guest.Primitive
	// Checkpoint is the snapshot/rollback device (ApproachCheckpoint).
	Checkpoint *dev.Checkpointer
	// Silence is the adaptive silence-triggered watchdog
	// (ApproachAdaptive).
	Silence *dev.SilenceWatchdog
	// Timer drives the tickful kernel (nil otherwise).
	Timer *dev.Timer
}

// New builds a system for the given configuration.
func New(cfg Config) (*System, error) {
	switch cfg.Approach {
	case ApproachBaseline, ApproachReinstall, ApproachContinue, ApproachMonitor,
		ApproachCheckpoint, ApproachAdaptive:
		return newKernelSystem(cfg)
	case ApproachPrimitive:
		return newPrimitiveSystem(cfg)
	case ApproachScheduler:
		return newSchedulerSystem(cfg)
	}
	return nil, fmt.Errorf("core: unknown approach %v", cfg.Approach)
}

// MustNew is New, panicking on configuration errors.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Run advances the system n steps.
func (s *System) Run(n int) { s.M.Run(n) }

// Steps returns the machine step counter.
func (s *System) Steps() uint64 { return s.M.Stats.Steps }

// Spec returns the legal-execution specification matching the system's
// approach: weak legality (restarts allowed) for baseline and approach
// 1 variants, strict legality for approach 2.
func (s *System) Spec() trace.HeartbeatSpec {
	return trace.HeartbeatSpec{
		Start:        guest.HeartbeatStart,
		MaxGap:       s.maxGap(),
		AllowRestart: s.Cfg.Approach != ApproachMonitor,
	}
}

// maxGap bounds the legal distance between heartbeats: the beat
// interval plus one full handler run (during which the guest is
// paused), with slack.
func (s *System) maxGap() uint64 {
	beat := uint64(2000)
	if s.Kernel != nil && s.Kernel.Padded {
		beat *= 16
	}
	handler := uint64(guest.ImageSize + 512)
	return beat + 2*handler
}

// ProcSpec returns the per-process heartbeat specification for
// approach 3 systems (process beats restart from 1 whenever the
// process's counter is clobbered or its code region is refreshed
// mid-update, so weak legality applies).
func (s *System) ProcSpec(i int) trace.HeartbeatSpec {
	// A process beats once per scheduling round in the worst case;
	// the refresher's round includes a 4 KiB copy.
	return trace.HeartbeatSpec{
		Start:        1,
		MaxGap:       400000,
		AllowRestart: true,
	}
}

// busWithROMs creates the memory bus with the fault-on-ROM-store
// policy the tailored designs rely on (anomalous stores become
// exceptions that the stabilizer handles).
func busWithROMs(roms ...romSpec) (*mem.Bus, error) {
	bus := mem.NewBus()
	bus.SetROMWritePolicy(mem.ROMWriteFault)
	for _, r := range roms {
		if _, err := bus.AddROM(r.name, r.start, r.data); err != nil {
			return nil, err
		}
	}
	return bus, nil
}

type romSpec struct {
	name  string
	start uint32
	data  []byte
}

// attachConsole maps a fresh recording console at the given port.
func attachConsole(m *machine.Machine, port uint16, cap int) *dev.Console {
	c := dev.NewConsole(func() uint64 { return m.Stats.Steps }, cap)
	m.MapPort(port, c)
	return c
}
