package core

import (
	"fmt"
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/machine"
	"ssos/internal/mem"
	"ssos/internal/model"
)

// readObs extracts α of the machine's observable mailbox words: every
// slot projected onto its owner's domain and every parked register word
// projected onto the watched neighbour's domain. The projection is
// sound because the guest re-normalizes each register right after
// reloading it for the guarded write — the guard only ever sees the
// projected value, whatever raw bits are parked.
func readObs(s *System, p model.Protocol, n int) model.MailboxState {
	var st model.MailboxState
	for i := 0; i < n; i++ {
		st.X[i] = p.Norm(i, n, s.MailboxSlot(i))
		l, r := (i+n-1)%n, (i+1)%n
		if p.UsesLeft(i, n) {
			st.RegL[i] = p.Norm(l, n, s.M.Bus.LoadWord(guest.MailboxRegLAddr(i)))
		}
		if p.UsesRight(i, n) {
			st.RegR[i] = p.Norm(r, n, s.M.Bus.LoadWord(guest.MailboxRegRAddr(i)))
		}
	}
	return st
}

// refinementChecker verifies, step by step, that the machine's
// observable mailbox trace is a stuttering refinement of the abstract
// protocol's step relation (model.Protocol.ObsSuccessors, split into
// its two action kinds):
//
//   - A guarded write to slot i must be exactly the move the protocol
//     allows from the CURRENT observable words. This is an exact check:
//     only node i writes slot i and its own registers, so none of the
//     guard's inputs can change between the guest's reload and store.
//   - A register store by node i must carry the projection of some
//     value the watched neighbour slot has held since i's previous
//     observable action. The slack is necessary, not a test weakness:
//     the load and the park-store are separate instructions, and a
//     quantum boundary between them lets the neighbour move first —
//     the read/write-atomicity delay the model's register words exist
//     to represent.
//
// Steps with no observable change (the overwhelming majority: scheduler
// bookkeeping, beat counters, the other approaches' machinery) are
// stutters and ignored.
type refinementChecker struct {
	t     *testing.T
	s     *System
	p     model.Protocol
	n     int
	prev  model.MailboxState
	seenL []map[uint8]bool // Norm(X[l]) values since node i's last action
	seenR []map[uint8]bool
	fly   []bool // node may have a pre-fault action in flight
	moves int    // observable actions checked
	bad   int
}

func newRefinementChecker(t *testing.T, s *System, p model.Protocol, n int) *refinementChecker {
	c := &refinementChecker{t: t, s: s, p: p, n: n,
		seenL: make([]map[uint8]bool, n), seenR: make([]map[uint8]bool, n),
		fly: make([]bool, n)}
	c.prev = readObs(s, p, n)
	for i := 0; i < n; i++ {
		c.reset(i, c.prev)
	}
	return c
}

// rebase re-reads the observable state, clears the in-flight load sets
// and grants every node one unchecked action — called right after a
// fault injection. The grace is sound, not slack: a fault landing
// between a node's neighbour load (or register reload) and the
// corresponding store leaves pre-fault values in CPU registers that α
// cannot observe, so the node's first post-fault store belongs to the
// faulted configuration, exactly like the arbitrary parked words the
// model's "any initial state" already covers. Every action after that
// first one is fully checked.
func (c *refinementChecker) rebase() {
	c.prev = readObs(c.s, c.p, c.n)
	for i := 0; i < c.n; i++ {
		c.reset(i, c.prev)
		c.fly[i] = true
	}
}

func (c *refinementChecker) reset(i int, st model.MailboxState) {
	l, r := (i+c.n-1)%c.n, (i+1)%c.n
	c.seenL[i] = map[uint8]bool{st.X[l]: true}
	c.seenR[i] = map[uint8]bool{st.X[r]: true}
}

func (c *refinementChecker) fail(format string, args ...interface{}) {
	c.bad++
	if c.bad <= 5 {
		c.t.Errorf(format, args...)
	}
}

func (c *refinementChecker) observe(_ *machine.Machine, _ machine.Event) {
	cur := readObs(c.s, c.p, c.n)
	if cur == c.prev {
		return
	}
	step := c.s.Steps()
	changes := 0
	for i := 0; i < c.n; i++ {
		if cur.X[i] != c.prev.X[i] {
			changes++
			c.moves++
			if c.fly[i] {
				c.fly[i] = false
			} else {
				g := c.p.Guards(i, c.n, c.prev.X[i], c.prev.RegL[i], c.prev.RegR[i])
				if len(g) == 0 {
					c.fail("step %d: node %d wrote %d with no privilege held (state %v)",
						step, i, cur.X[i], c.prev)
				} else if cur.X[i] != g[0] {
					c.fail("step %d: node %d wrote %d, protocol move is %d (state %v)",
						step, i, cur.X[i], g[0], c.prev)
				}
			}
			c.reset(i, cur)
			// The write is visible to the neighbours watching slot i.
			for j := 0; j < c.n; j++ {
				if (j+c.n-1)%c.n == i {
					c.seenL[j][cur.X[i]] = true
				}
				if (j+1)%c.n == i {
					c.seenR[j][cur.X[i]] = true
				}
			}
		}
		if cur.RegL[i] != c.prev.RegL[i] {
			changes++
			c.moves++
			if c.fly[i] {
				c.fly[i] = false
			} else if !c.seenL[i][cur.RegL[i]] {
				c.fail("step %d: node %d parked left read %d, neighbour slot never held it (seen %v)",
					step, i, cur.RegL[i], c.seenL[i])
			}
			c.reset(i, cur)
		}
		if cur.RegR[i] != c.prev.RegR[i] {
			changes++
			c.moves++
			if c.fly[i] {
				c.fly[i] = false
			} else if !c.seenR[i][cur.RegR[i]] {
				c.fail("step %d: node %d parked right read %d, neighbour slot never held it (seen %v)",
					step, i, cur.RegR[i], c.seenR[i])
			}
			c.reset(i, cur)
		}
	}
	if changes > 1 {
		c.fail("step %d: %d observable words changed in one machine step", step, changes)
	}
	// Legality verdicts agree between the machine helper and the model
	// on every observable transition.
	machineLegal := len(c.s.MailboxPrivileges()) == 1
	modelLegal := len(c.p.Privileges(cur.X, c.n)) == 1
	if machineLegal != modelLegal {
		c.fail("step %d: legality disagreement machine=%v model=%v state=%v",
			step, machineLegal, modelLegal, cur.X)
	}
	c.prev = cur
}

func TestMailboxTraceRefinesModel(t *testing.T) {
	for _, w := range mailboxWorkloads() {
		w := w
		t.Run(fmt.Sprint(w), func(t *testing.T) {
			s := newMailbox(t, w)
			p, ok := MailboxProtocolFor(w)
			if !ok {
				t.Fatal("no protocol")
			}
			n := guest.MailboxNodes
			c := newRefinementChecker(t, s, p, n)
			s.M.AfterStep = c.observe

			// Legal segment: from boot through convergence and beyond.
			s.Run(400000)

			// Illegal segment: scramble the algorithm layer and check the
			// refinement holds through the entire recovery too — the
			// abstract relation covers every configuration, not just
			// legal ones.
			inj := fault.NewInjector(s.M, 13)
			inj.RandomizeRegion(mailboxRegion())
			for i := 0; i < n; i++ {
				inj.RandomizeRegion(mem.Region{Name: "regs",
					Start: guest.MailboxRegLAddr(i), Size: 4})
			}
			c.rebase()
			s.Run(400000)

			if c.moves < 100 {
				t.Fatalf("trace too quiet: only %d observable actions", c.moves)
			}
			if c.bad > 0 {
				t.Fatalf("%d refinement violations", c.bad)
			}
			t.Logf("checked %d observable actions", c.moves)
		})
	}
}
