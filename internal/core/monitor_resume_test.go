package core

import (
	"testing"

	"ssos/internal/guest"
)

func TestResumeRepairFires(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	s.Run(100000)
	s.Run(5000)         // move away from the period boundary
	s.M.CPU.IP = 0x5000 // beyond kernel code, within OS segment
	s.Run(int(s.Cfg.WatchdogPeriod) * 2)
	found := false
	for _, r := range s.Repairs.Writes() {
		t.Logf("repair: step=%d code=%#x", r.Step, r.Value)
		if r.Value == guest.RepairResume {
			found = true
		}
	}
	if !found {
		t.Fatal("RepairResume never reported")
	}
}
