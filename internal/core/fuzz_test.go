package core

import (
	"sync"
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

// layeredWorst returns the protocol's exact worst-case move count to a
// legal configuration under composite atomicity (model fixpoint),
// computed once per variant. The fuzz bound derives from it: the
// scheduler gives every node one quantum per round, each quantum runs
// many protocol iterations, so `worst` moves complete within `worst`
// scheduler rounds once the OS layer is stable.
var layeredWorst = func() func(v guest.RingVariant) int {
	var once sync.Once
	worst := map[guest.RingVariant]int{}
	return func(v guest.RingVariant) int {
		once.Do(func() {
			for _, vv := range guest.RingVariants() {
				p, _ := MailboxProtocolFor(MailboxWorkload(vv))
				w, err := p.System(guest.MailboxNodes).Verify(1 << 20)
				if err != nil {
					panic(err)
				}
				worst[vv] = w
			}
		})
		return worst[v]
	}
}()

// FuzzLayeredConvergence throws fuzz-chosen bytes at every mutable
// layer of a mailbox token-ring system — the shared slot words, the
// nodes' parked register words, the scheduler's process table — plus a
// seeded CPU blast, and requires the layered stack to stabilize within
// a bound derived from the model: the OS layer's worst observed
// recovery tail plus one scheduler round per worst-case protocol move
// (with slack for the near-composite interleaving). After the sustained
// legal window the invariant must hold at every further sample and the
// token must visit every node — mutual exclusion is never violated
// after stabilization, and circulation resumes.
func FuzzLayeredConvergence(f *testing.F) {
	f.Add(int64(1), uint8(0), []byte{0x00})
	f.Add(int64(7), uint8(1), []byte{0xFF, 0x13, 0x37})
	f.Add(int64(42), uint8(2), []byte{0xA5, 0x00, 0x5A, 0xC3, 0x21, 0x04, 0x7F, 0x80})
	f.Fuzz(func(t *testing.T, seed int64, variantSel uint8, blob []byte) {
		variants := guest.RingVariants()
		v := variants[int(variantSel)%len(variants)]
		s := MustNew(Config{Approach: ApproachScheduler, Workload: MailboxWorkload(v)})
		s.Run(100000)

		// Deterministically pour the fuzz bytes over the layers.
		if len(blob) == 0 {
			blob = []byte{0}
		}
		at := 0
		next := func() byte { b := blob[at%len(blob)]; at++; return b }
		pour := func(r mem.Region) {
			for off := uint32(0); off < r.Size; off++ {
				s.M.Bus.PokeRAM(r.Start+off, next())
			}
		}
		pour(mailboxRegion())
		for i := 0; i < guest.MailboxNodes; i++ {
			pour(mem.Region{Name: "regs", Start: guest.MailboxRegLAddr(i), Size: 4})
		}
		pour(mem.Region{Name: "table", Start: uint32(guest.SchedSeg) << 4,
			Size: guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize})
		inj := fault.NewInjector(s.M, seed)
		inj.BlastCPU()

		// Let the OS layer's worst internal transient drain first: a
		// table blast can hand the ROM refresher's rep movsb a random
		// cx/si/di, and the resulting scribble (up to 64 KiB, one byte
		// per refresher tick — see E7's horizon note) can cross the
		// mailbox region long after the ring first looks legal. Only
		// after that tail is the remaining convergence purely the
		// protocol's.
		s.Run(2500000)

		// Model-derived bound: one scheduler round per worst-case
		// protocol move, with slack for the near-composite
		// interleaving, plus the sustained sample window.
		round := guest.NumProcs * DefaultQuantum
		bound := (layeredWorst(v)+guest.MailboxNodes)*round*8 + 50000
		if _, ok := s.MailboxConverged(bound, 500, 100); !ok {
			t.Fatalf("%v did not stabilize within %d steps; privileges=%v ring=%v",
				v, bound, s.MailboxPrivileges(), s.MailboxRing())
		}

		// After stabilization: closure (never more or fewer than one
		// privilege again) and liveness (the token visits every node).
		holders := map[int]bool{}
		for k := 0; k < 600; k++ {
			s.Run(500)
			p := s.MailboxPrivileges()
			if len(p) != 1 {
				t.Fatalf("%v mutual exclusion violated after stabilization: privileges=%v ring=%v",
					v, p, s.MailboxRing())
			}
			holders[p[0]] = true
		}
		if len(holders) != guest.MailboxNodes {
			t.Fatalf("%v token circulation did not resume: visited %v", v, holders)
		}
	})
}
