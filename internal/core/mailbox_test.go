package core

import (
	"fmt"
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

func mailboxWorkloads() []Workload {
	return []Workload{WorkloadMailboxKState, WorkloadMailboxDijkstra3, WorkloadMailboxGhosh4}
}

func newMailbox(t *testing.T, w Workload) *System {
	t.Helper()
	return MustNew(Config{Approach: ApproachScheduler, Workload: w})
}

// mailboxRegion is the shared slot region of the single-machine ring.
func mailboxRegion() mem.Region {
	return mem.Region{
		Name:  "mailbox",
		Start: guest.MailboxAddr(0),
		Size:  uint32(2 * guest.MailboxNodes),
	}
}

func TestMailboxTokenCirculates(t *testing.T) {
	for _, w := range mailboxWorkloads() {
		w := w
		t.Run(fmt.Sprint(w), func(t *testing.T) {
			s := newMailbox(t, w)
			since, ok := s.MailboxConverged(3000000, 500, 100)
			if !ok {
				t.Fatalf("%v never converged; privileges=%v ring=%v",
					w, s.MailboxPrivileges(), s.MailboxRing())
			}
			t.Logf("converged at step %d", since)
			before := make([]uint64, guest.MailboxNodes)
			for i := range before {
				before[i] = s.ProcBeats[i].Total()
			}
			// The token must actually circulate: while staying legal,
			// the privilege visits every node.
			holders := map[int]bool{}
			for k := 0; k < 1000; k++ {
				s.Run(500)
				p := s.MailboxPrivileges()
				if len(p) != 1 {
					t.Fatalf("legality lost after convergence: privileges=%v ring=%v", p, s.MailboxRing())
				}
				holders[p[0]] = true
			}
			if len(holders) != guest.MailboxNodes {
				t.Fatalf("token froze: privilege only visited %v", holders)
			}
			for i := 0; i < guest.MailboxNodes; i++ {
				if s.ProcBeats[i].Total() <= before[i] {
					t.Fatalf("node %d stopped moving", i)
				}
			}
		})
	}
}

func TestMailboxStabilizesFromArbitraryState(t *testing.T) {
	// The layered claim on the mailbox substrate: arbitrary slot words
	// AND arbitrary parked register words converge back to a single
	// circulating privilege.
	for _, w := range mailboxWorkloads() {
		w := w
		t.Run(fmt.Sprint(w), func(t *testing.T) {
			s := newMailbox(t, w)
			s.Run(200000)
			inj := fault.NewInjector(s.M, 7)
			inj.RandomizeRegion(mailboxRegion())
			for i := 0; i < guest.MailboxNodes; i++ {
				inj.RandomizeRegion(mem.Region{Name: "regs", Start: guest.MailboxRegLAddr(i), Size: 4})
			}
			if _, ok := s.MailboxConverged(3000000, 500, 100); !ok {
				t.Fatalf("%v did not re-converge; privileges=%v ring=%v",
					w, s.MailboxPrivileges(), s.MailboxRing())
			}
		})
	}
}

func TestMailboxSurvivesSchedulerFaults(t *testing.T) {
	// Joint arbitrary state: corrupt the OS layer's process table and
	// the application layer's slots and registers in the same blow; the
	// scheduler stabilizes first, then the ring above it.
	for _, w := range mailboxWorkloads() {
		w := w
		t.Run(fmt.Sprint(w), func(t *testing.T) {
			s := newMailbox(t, w)
			s.Run(200000)
			inj := fault.NewInjector(s.M, 11)
			inj.RandomizeRegion(mem.Region{
				Name:  "table",
				Start: uint32(guest.SchedSeg) << 4,
				Size:  guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize,
			})
			inj.RandomizeRegion(mailboxRegion())
			inj.BlastCPU()
			if _, ok := s.MailboxConverged(4000000, 500, 100); !ok {
				t.Fatalf("%v composition failed; privileges=%v ring=%v",
					w, s.MailboxPrivileges(), s.MailboxRing())
			}
		})
	}
}

func TestMailboxNodeSystemRuns(t *testing.T) {
	// One-node-per-replica build: slot 0 runs a single ring node whose
	// neighbours never move (no relay here) — the node must keep
	// beating regardless, and the worker slots stay the standard set.
	for _, w := range mailboxWorkloads() {
		for node := 0; node < 3; node++ {
			s := MustNew(Config{
				Approach: ApproachScheduler, Workload: w,
				RingNode: node, RingNodes: 3,
			})
			s.Run(600000)
			for i := 0; i < guest.NumProcs; i++ {
				if s.ProcBeats[i].Total() == 0 {
					t.Fatalf("%v node %d: process %d never beat", w, node, i)
				}
			}
			if got := s.MailboxNodes(); got != 3 {
				t.Fatalf("MailboxNodes = %d, want 3", got)
			}
		}
	}
}

func TestMailboxProtectIncompatible(t *testing.T) {
	_, err := New(Config{Approach: ApproachScheduler, Workload: WorkloadMailboxKState, ProtectMemory: true})
	if err == nil {
		t.Fatal("mailbox workload with ProtectMemory built without error")
	}
}
