package core

import (
	"sync"

	"ssos/internal/guest"
)

// Assembled guest programs are immutable, so experiment loops that
// build thousands of systems share one assembly of each component.
var buildCache struct {
	once sync.Once
	err  error

	kernelPlain   *guest.Kernel
	kernelPadded  *guest.Kernel
	kernelTickful *guest.Kernel
	reinstall     *guest.Handler
	cont          *guest.Handler
	monitor       *guest.Handler
	checkpoint    *guest.Handler
	sched         *guest.Scheduler
	schedDS       *guest.Scheduler
	schedProt     *guest.Scheduler
	procs         *guest.ProcSet
	ringProcs     *guest.ProcSet
	mboxProcs     map[guest.RingVariant]*guest.ProcSet
	prim          *guest.Primitive
}

// nodeSetCache shares the per-(variant, node, ring-size) cluster
// process sets across replica builds; unlike the fixed sets above they
// are assembled on demand.
var nodeSetCache struct {
	mu sync.Mutex
	m  map[nodeSetKey]*guest.ProcSet
}

type nodeSetKey struct {
	v       guest.RingVariant
	node, n int
}

// mailboxNodeSet returns the cached one-node-per-replica process set.
func mailboxNodeSet(v guest.RingVariant, node, n int) (*guest.ProcSet, error) {
	nodeSetCache.mu.Lock()
	defer nodeSetCache.mu.Unlock()
	key := nodeSetKey{v, node, n}
	if set, ok := nodeSetCache.m[key]; ok {
		return set, nil
	}
	set, err := guest.BuildNodeProcesses(v, node, n)
	if err != nil {
		return nil, err
	}
	if nodeSetCache.m == nil {
		nodeSetCache.m = make(map[nodeSetKey]*guest.ProcSet)
	}
	nodeSetCache.m[key] = set
	return set, nil
}

func buildAll() error {
	buildCache.once.Do(func() {
		c := &buildCache
		set := func(err error) {
			if c.err == nil && err != nil {
				c.err = err
			}
		}
		var err error
		c.kernelPlain, err = guest.BuildKernel(false)
		set(err)
		c.kernelPadded, err = guest.BuildKernel(true)
		set(err)
		c.kernelTickful, err = guest.BuildTickfulKernel()
		set(err)
		c.reinstall, err = guest.BuildReinstallHandler()
		set(err)
		c.cont, err = guest.BuildContinueHandler()
		set(err)
		if c.kernelPadded != nil {
			c.monitor, err = guest.BuildMonitorHandler(c.kernelPadded)
			set(err)
		}
		c.checkpoint, err = guest.BuildCheckpointHandler()
		set(err)
		c.sched, err = guest.BuildScheduler(false)
		set(err)
		c.schedDS, err = guest.BuildScheduler(true)
		set(err)
		c.schedProt, err = guest.BuildSchedulerOpts(guest.SchedOptions{ValidateDS: true, Protect: true})
		set(err)
		c.procs, err = guest.BuildProcesses()
		set(err)
		c.ringProcs, err = guest.BuildRingProcesses()
		set(err)
		c.mboxProcs = make(map[guest.RingVariant]*guest.ProcSet)
		for _, v := range guest.RingVariants() {
			c.mboxProcs[v], err = guest.BuildMailboxProcesses(v)
			set(err)
		}
		c.prim, err = guest.BuildPrimitive()
		set(err)
	})
	return buildCache.err
}
