package core

import "ssos/internal/guest"

// RingX returns the current x variable of token-ring member i, read
// directly from the member's data segment.
func (s *System) RingX(i int) uint16 {
	return s.M.Bus.LoadWord(guest.RingXAddr(i))
}

// RingPrivileges returns the indices of the ring members that are
// privileged in the current configuration: the root (member 0) when
// its x equals the last member's, any other member when its x differs
// from its predecessor's. Dijkstra's legal executions are exactly
// those in which this list always has length one.
func (s *System) RingPrivileges() []int {
	var out []int
	if s.RingX(0) == s.RingX(guest.RingMembers-1) {
		out = append(out, 0)
	}
	for i := 1; i < guest.RingMembers; i++ {
		if s.RingX(i) != s.RingX(i-1) {
			out = append(out, i)
		}
	}
	return out
}

// RingConverged reports whether the token ring holds the
// exactly-one-privilege invariant at every sample over the next
// horizon steps (sampled every sampleEvery steps), returning the step
// at which the sustained window began.
func (s *System) RingConverged(horizon, sampleEvery, window int) (uint64, bool) {
	if sampleEvery <= 0 {
		sampleEvery = 500
	}
	good := 0
	var since uint64
	for ran := 0; ran < horizon; ran += sampleEvery {
		s.Run(sampleEvery)
		if len(s.RingPrivileges()) == 1 {
			if good == 0 {
				since = s.Steps()
			}
			good++
			if good >= window {
				return since, true
			}
		} else {
			good = 0
		}
	}
	return 0, false
}
