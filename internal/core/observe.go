package core

import (
	"ssos/internal/guest"
	"ssos/internal/obs"
)

// ObsConfirm is the number of consecutive legal heartbeats the
// observability layer requires before declaring legality regained —
// the same confirmation depth cmd/ssos-run's post-hoc report uses.
const ObsConfirm = 10

// Instrument attaches the observability layer to the system: machine
// events (NMI, IRQ, exception, reset) flow from the nil-checked probe
// pointer on the machine, and the system layer derives the
// stabilization events the paper's mechanisms correspond to —
// reinstall start/completion for the Section-3 handlers, predicate
// evaluation and repair for the Section-4 monitor, and
// legality-regained when the heartbeat stream re-satisfies the
// approach's legal-execution specification after an injected fault.
//
// Instrument must be called before the run whose events are wanted;
// calling it replaces any previous instrumentation. An uninstrumented
// system carries a nil probe and pays no observation cost; passing a
// nil sink uninstalls any previous instrumentation and restores that
// state.
func (s *System) Instrument(sink obs.Probe) {
	if sink == nil {
		s.M.Probe = nil
		if s.Heartbeat != nil {
			s.Heartbeat.OnWrite = nil
		}
		if s.Repairs != nil {
			s.Repairs.OnWrite = nil
		}
		for _, c := range s.ProcBeats {
			c.OnWrite = nil
		}
		return
	}
	p := &sysProbe{sys: s, sink: sink}
	s.M.Probe = p
	if s.Heartbeat != nil {
		spec := s.Spec()
		p.legal = &obs.LegalityTracker{
			Start:        spec.Start,
			MaxGap:       spec.MaxGap,
			AllowRestart: spec.AllowRestart,
			Confirm:      ObsConfirm,
			// Legality confirmations route through the sysProbe rather
			// than the sink directly, so they are stamped with the fault
			// id of the episode they close — and close it.
			Sink: p,
		}
		s.Heartbeat.OnWrite = p.onHeartbeat
	}
	if s.Repairs != nil {
		s.Repairs.OnWrite = p.onRepair
	}
	if _, ok := s.Cfg.Workload.MailboxVariant(); ok && len(s.ProcBeats) > 0 {
		// Mailbox ring workloads: legality is a state predicate (exactly
		// one privilege under α), sampled at every node beat so token
		// recovery appears in the event stream like heartbeat legality
		// does for the kernel approaches.
		p.ring = &obs.PredicateTracker{Confirm: ObsConfirm, Sink: p}
		nodes := 1 // one-node-per-replica build: slot 0 is the node
		if s.Cfg.RingNodes == 0 {
			nodes = guest.MailboxNodes
		}
		for i := 0; i < nodes && i < len(s.ProcBeats); i++ {
			s.ProcBeats[i].OnWrite = p.onRingBeat
		}
	}
}

// sysProbe sits between the machine's raw event stream and the sink,
// adding the derived stabilization events. It relies on what each
// approach's handler actually does (see internal/guest):
//
//   - reinstall/continue/adaptive: every NMI or vectored exception
//     enters the Figure-1 handler, which reinstalls the OS image from
//     ROM — reinstall-started. The next guest heartbeat confirms the
//     restart took — reinstall-completed.
//   - monitor: every NMI runs the Section-4 monitor (executable
//     refresh + predicate evaluation) — predicate-eval; its exception
//     path falls back to a full reinstall — reinstall-started. Each
//     repair-port write reports one predicate that failed and was
//     repaired — predicate-failed + predicate-repaired.
//   - watchdog-to-reset variants: the reset boots through the ROM
//     installer — reinstall-started.
type sysProbe struct {
	sys   *System
	sink  obs.Probe
	legal *obs.LegalityTracker
	ring  *obs.PredicateTracker
	// pending is set between a reinstall entering its handler and the
	// guest's next observable output.
	pending bool
	// lastFault is the id of the fault whose recovery is in progress:
	// set by the injection event, cleared by the legality confirmation.
	// Every event observed in between — machine interrupts and the
	// derived stabilizer events alike — is stamped with it, which is
	// what lets the obs episode reconstructor fold the stream causally.
	lastFault uint64
}

// emit forwards one event to the sink, tolerating a nil sink (a
// sysProbe is only installed with a non-nil sink, but the probe
// contract everywhere else in the repo is "nil-checked before call"
// and the derived-event fan-out below should not be the one exception).
func (p *sysProbe) emit(e obs.Event) {
	if p.sink == nil {
		return
	}
	p.sink.Emit(e)
}

// derive builds one derived stabilizer event, stamped with the fault
// id of the recovery in progress (zero outside any episode — e.g. the
// periodic watchdog NMIs of an undisturbed run).
func (p *sysProbe) derive(step uint64, t obs.Type) obs.Event {
	e := obs.Ev(step, t)
	e.FaultID = p.lastFault
	return e
}

// Emit receives machine-level events (and fault-injection events, which
// the injector routes through the machine probe; and the legality
// tracker's confirmations), stamps them with the in-progress fault id,
// forwards them, and appends the derived stabilizer events.
func (p *sysProbe) Emit(e obs.Event) {
	if e.Type == obs.TypeFaultInjected {
		p.lastFault = e.FaultID
	} else if e.FaultID == 0 {
		e.FaultID = p.lastFault
	}
	p.emit(e)
	a := p.sys.Cfg.Approach
	switch e.Type {
	case obs.TypeNMI:
		switch a {
		case ApproachReinstall, ApproachContinue, ApproachAdaptive:
			p.emit(p.derive(e.Step, obs.TypeReinstallStarted))
			p.pending = true
		case ApproachMonitor:
			p.emit(p.derive(e.Step, obs.TypePredicateEval))
		}
	case obs.TypeException, obs.TypeReset:
		switch a {
		case ApproachMonitor:
			// An exception (or watchdog reset) under the monitor is the
			// failure of the one consistency condition in-place repair
			// cannot restore — the OS code itself is no longer runnable —
			// so the monitor falls back to a full reinstall. Report the
			// implicit predicate failure ahead of the reinstall; Code
			// carries the exception vector.
			fail := p.derive(e.Step, obs.TypePredicateFailed)
			fail.Code = e.Code
			p.emit(fail)
			p.emit(p.derive(e.Step, obs.TypeReinstallStarted))
			p.pending = true
		case ApproachReinstall, ApproachContinue, ApproachAdaptive:
			p.emit(p.derive(e.Step, obs.TypeReinstallStarted))
			p.pending = true
		}
	case obs.TypeFaultInjected:
		if p.legal != nil {
			p.legal.OnFault(e.Step)
		}
		if p.ring != nil {
			p.ring.OnFault(e.Step)
		}
	case obs.TypeLegalityRegained:
		// The episode this confirmation closes is over; later events
		// are outside any episode until the next injection.
		p.lastFault = 0
	}
}

func (p *sysProbe) onHeartbeat(step uint64, v uint16) {
	if p.pending {
		p.pending = false
		p.emit(p.derive(step, obs.TypeReinstallCompleted))
	}
	if p.legal != nil {
		p.legal.OnBeat(step, v)
	}
}

func (p *sysProbe) onRingBeat(step uint64, v uint16) {
	p.ring.OnSample(step, len(p.sys.MailboxPrivileges()) == 1)
}

func (p *sysProbe) onRepair(step uint64, v uint16) {
	fail := p.derive(step, obs.TypePredicateFailed)
	fail.Code = uint64(v)
	p.emit(fail)
	rep := p.derive(step, obs.TypePredicateRepaired)
	rep.Code = uint64(v)
	p.emit(rep)
}

// ExportMetrics records the system's machine counters into the
// registry (counts the event stream cannot reconstruct, because
// instrumentation may attach after boot).
func (s *System) ExportMetrics(m *obs.Metrics) {
	m.Add("machine.steps", s.M.Stats.Steps)
	m.Add("machine.instrs", s.M.Stats.Instrs)
	m.Add("machine.halt_ticks", s.M.Stats.HaltTicks)
	// Superblock-engine telemetry: how much of the run retired through
	// blocks and how often validation bailed to the interpreter. All
	// zero when the engine is disabled.
	m.Add("machine.blocks", s.M.Stats.Blocks)
	m.Add("machine.block_instrs", s.M.Stats.BlockInstrs)
	m.Add("machine.block_bails", s.M.Stats.BlockBails)
	if s.Watchdog != nil {
		m.Add("watchdog.fires", s.Watchdog.Fires)
	}
	if s.Heartbeat != nil {
		m.Add("guest.heartbeats", s.Heartbeat.Total())
	}
	if s.Repairs != nil {
		m.Add("guest.repair_reports", s.Repairs.Total())
	}
	if s.Checkpoint != nil {
		m.Add("checkpoint.snapshots", s.Checkpoint.Snapshots)
		m.Add("checkpoint.restores", s.Checkpoint.Restores)
	}
}
