package core

import (
	"fmt"

	"ssos/internal/dev"
	"ssos/internal/guest"
	"ssos/internal/machine"
)

// CustomConfig describes a user-supplied guest to protect with the
// approach-1 stabilizer. This is the library's extension point: write
// any guest OS in the repository's assembly (see internal/asm), render
// it to a flat image, and NewCustom wraps it in the full Figure 1
// machinery — pristine image in ROM, watchdog on the NMI pin,
// exception-vectored reinstall.
//
// The stabilizer places no requirements on the guest beyond the
// memory map: the image is installed at guest.OSSeg offset 0, execution
// (re)starts at its first byte with ss:sp = StackSeg:StackInit, and the
// image must leave the stabilizer's regions alone. A guest that is
// itself self-stabilizing (re-establishes its segments, masks its
// indices) turns the weakly-stabilizing wrapper into a usable system,
// exactly as the paper prescribes.
type CustomConfig struct {
	// Image is the guest image, installed at guest.OSSeg. Must be
	// non-empty and at most 64 KiB.
	Image []byte
	// WatchdogPeriod is the reinstall period (default
	// DefaultWatchdogPeriod).
	WatchdogPeriod uint32
	// NMICounterMax must exceed the reinstall length; defaults to
	// len(Image) plus slack.
	NMICounterMax uint16
	// HeartbeatPort, when non-zero, attaches a recording console so the
	// guest's output can be observed through System.Heartbeat.
	HeartbeatPort uint16
	// ConsoleCap bounds retained console writes (0 = unlimited).
	ConsoleCap int
	// DisableNMICounter reverts to stock NMI latching.
	DisableNMICounter bool
}

// NewCustom builds an approach-1 (reinstall & restart) system around a
// user-supplied guest image.
func NewCustom(cc CustomConfig) (*System, error) {
	if len(cc.Image) == 0 {
		return nil, fmt.Errorf("core: custom image is empty")
	}
	if len(cc.Image) > 0x10000 {
		return nil, fmt.Errorf("core: custom image %d bytes exceeds 64 KiB", len(cc.Image))
	}
	handler, err := guest.BuildReinstallHandlerSized(len(cc.Image))
	if err != nil {
		return nil, err
	}
	bus, err := busWithROMs(
		romSpec{"os-image", uint32(guest.OSROMSeg) << 4, cc.Image},
		romSpec{"stabilizer", uint32(guest.HandlerROMSeg) << 4, handler.Prog.Code},
	)
	if err != nil {
		return nil, err
	}

	cfg := Config{
		Approach:          ApproachReinstall,
		WatchdogPeriod:    cc.WatchdogPeriod,
		NMICounterMax:     cc.NMICounterMax,
		DisableNMICounter: cc.DisableNMICounter,
		ConsoleCap:        cc.ConsoleCap,
	}
	if cfg.WatchdogPeriod == 0 {
		cfg.WatchdogPeriod = DefaultWatchdogPeriod
	}
	if cfg.NMICounterMax == 0 {
		cfg.NMICounterMax = uint16(min(len(cc.Image)+DefaultNMISlack, 0xFFFF))
	}

	m := machine.New(bus, machine.Options{
		NMICounter:         !cc.DisableNMICounter,
		NMICounterMax:      cfg.NMICounterMax,
		HardwiredNMIVector: true,
		NMIVector:          handler.NMIEntry(),
		FixedIDTR:          true,
		ExceptionPolicy:    machine.ExceptionVector,
		ExceptionVector:    handler.ExcEntry(),
		ResetVector:        handler.BootEntry(),
	})
	sys := &System{M: m, Cfg: cfg}
	if cc.HeartbeatPort != 0 {
		sys.Heartbeat = attachConsole(m, cc.HeartbeatPort, cc.ConsoleCap)
	}
	sys.Watchdog = dev.NewWatchdog(cfg.WatchdogPeriod, cfg.WatchdogTarget)
	m.AddTicker(sys.Watchdog)
	return sys, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
