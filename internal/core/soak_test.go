package core

import (
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
)

// TestSoakAllStabilizingApproaches runs every stabilizing design for
// millions of steps under a sustained random fault process and checks
// the one property that matters: whatever the faults did, the system
// is back in (weakly) legal operation shortly after they stop.
func TestSoakAllStabilizingApproaches(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		stormSteps = 2000000
		faultRate  = 2e-5
		calmSteps  = 600000
	)
	approaches := []Config{
		{Approach: ApproachReinstall},
		{Approach: ApproachMonitor},
		{Approach: ApproachAdaptive},
	}
	for _, cfg := range approaches {
		cfg := cfg
		t.Run(cfg.Approach.String(), func(t *testing.T) {
			s := MustNew(cfg)
			inj := fault.NewInjector(s.M, 2026)
			detach := inj.Rate(faultRate)
			s.Run(stormSteps)
			detach()
			stormEnd := s.Steps()
			s.Run(calmSteps)
			if s.M.Stats.Steps != stormSteps+calmSteps {
				t.Fatalf("step accounting: %d", s.M.Stats.Steps)
			}
			if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), stormEnd, 20); !ok {
				// The adaptive comparator is ALLOWED to die on zombie-
				// shaped faults; the paper's designs are not.
				if cfg.Approach == ApproachAdaptive {
					t.Logf("adaptive comparator did not recover (expected for zombie-shaped faults)")
					return
				}
				t.Fatalf("%v not legal after the storm (%d faults, %d beats)",
					cfg.Approach, len(inj.Log), s.Heartbeat.Total())
			}
			t.Logf("%v: %d faults over %d steps, legal again after the storm",
				cfg.Approach, len(inj.Log), stormSteps)
		})
	}
}

// TestSoakScheduler is the approach-3 soak: the protected scheduler
// with the token-ring workload under a long fault storm, converging to
// exactly-one-privilege after the storm ends.
func TestSoakScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := MustNew(Config{
		Approach:      ApproachScheduler,
		Workload:      WorkloadTokenRing,
		ProtectMemory: true,
	})
	inj := fault.NewInjector(s.M, 7)
	detach := inj.Rate(1e-5)
	s.Run(2000000)
	detach()
	if _, ok := s.RingConverged(4000000, 500, 200); !ok {
		t.Fatalf("ring did not re-converge after the storm (privileges=%v)", s.RingPrivileges())
	}
	for i := 0; i < guest.NumProcs; i++ {
		if s.ProcBeats[i].Total() == 0 {
			t.Fatalf("process %d never ran", i)
		}
	}
}
