package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
	"ssos/internal/obs"
)

// The differential harness for the predecoded instruction cache: a
// cache-enabled and a cache-disabled machine are driven in lockstep —
// same guest, same randomized initial configuration, same injected
// faults at the same steps — and must agree on every observable at
// every step. This is the soundness argument for the fast path made
// executable: from ANY initial configuration, under active fault
// injection, serving a cached decode must be bit-identical to
// re-decoding from memory.

// diffPair is one lockstep pair of systems.
type diffPair struct {
	fast, slow *System
	colF, colS *obs.Collector
}

func newDiffPair(t *testing.T, ap Approach) *diffPair {
	t.Helper()
	p := &diffPair{
		fast: MustNew(Config{Approach: ap}),
		slow: MustNew(Config{Approach: ap}),
		colF: obs.NewCollector(),
		colS: obs.NewCollector(),
	}
	p.slow.M.SetDecodeCache(false)
	p.fast.Instrument(p.colF)
	p.slow.Instrument(p.colS)
	return p
}

// pokeBoth writes the same byte to the same address on both buses.
func (p *diffPair) pokeBoth(addr uint32, v byte) {
	p.fast.M.Bus.PokeRAM(addr, v)
	p.slow.M.Bus.PokeRAM(addr, v)
}

// injectSame applies one identical random fault to both machines. The
// menu mirrors the fault package's corruption classes but is applied
// symmetrically, which a per-machine Injector cannot do.
func (p *diffPair) injectSame(rng *rand.Rand) {
	mf, ms := p.fast.M, p.slow.M
	switch rng.Intn(8) {
	case 0: // RAM bit flip — the classic transient fault
		a := uint32(rng.Intn(mem.AddrSpace))
		v := p.fast.M.Bus.Peek(a) ^ (1 << uint(rng.Intn(8)))
		p.pokeBoth(a, v)
	case 1: // burst of byte corruptions
		for i := 0; i < 16; i++ {
			p.pokeBoth(uint32(rng.Intn(mem.AddrSpace)), byte(rng.Intn(256)))
		}
	case 2:
		v := uint16(rng.Intn(1 << 16))
		mf.CPU.IP, ms.CPU.IP = v, v
	case 3:
		r := isa.SReg(rng.Intn(int(isa.NumSRegs)))
		v := uint16(rng.Intn(1 << 16))
		mf.CPU.S[r], ms.CPU.S[r] = v, v
	case 4:
		v := isa.Flags(rng.Intn(1 << 16))
		mf.CPU.Flags, ms.CPU.Flags = v, v
	case 5:
		v := uint16(rng.Intn(1 << 16))
		mf.CPU.NMICounter, ms.CPU.NMICounter = v, v
	case 6:
		mf.RaiseNMI()
		ms.RaiseNMI()
	case 7:
		v := rng.Intn(2) == 0
		mf.CPU.Halted, ms.CPU.Halted = v, v
	}
}

// compare asserts that every observable of the pair is identical.
func (p *diffPair) compare(t *testing.T, tag string) {
	t.Helper()
	if p.fast.M.CPU != p.slow.M.CPU {
		t.Fatalf("%s: CPU diverged:\n cached: %+v\nuncached: %+v", tag, p.fast.M.CPU, p.slow.M.CPU)
	}
	if p.fast.M.Stats != p.slow.M.Stats {
		t.Fatalf("%s: stats diverged:\n cached: %v\nuncached: %v", tag, p.fast.M.Stats, p.slow.M.Stats)
	}
	if !bytes.Equal(p.fast.M.Bus.Snapshot(), p.slow.M.Bus.Snapshot()) {
		t.Fatalf("%s: memory images diverged", tag)
	}
	if !reflect.DeepEqual(p.colF.Events(), p.colS.Events()) {
		t.Fatalf("%s: observability event streams diverged (%d vs %d events)",
			tag, len(p.colF.Events()), len(p.colS.Events()))
	}
	if p.fast.Heartbeat != nil {
		wf, ws := p.fast.Heartbeat.Writes(), p.slow.Heartbeat.Writes()
		if !reflect.DeepEqual(wf, ws) {
			t.Fatalf("%s: heartbeat streams diverged (%d vs %d writes)", tag, len(wf), len(ws))
		}
	}
}

// TestDecodeCacheDifferential runs cached and uncached machines in
// lockstep under continuous fault injection, for every transferable
// kernel approach, from both the clean boot state and fully randomized
// RAM + CPU configurations.
func TestDecodeCacheDifferential(t *testing.T) {
	steps := 40000
	trials := 4
	if testing.Short() {
		steps, trials = 8000, 2
	}
	for _, ap := range []Approach{ApproachBaseline, ApproachReinstall, ApproachMonitor} {
		for trial := 0; trial < trials; trial++ {
			p := newDiffPair(t, ap)
			rng := rand.New(rand.NewSource(int64(9000 + 100*int(ap) + trial)))

			if trial%2 == 1 {
				// Any-state start: identical random soup in every RAM
				// byte (PokeRAM skips ROM on both alike) and a random
				// CPU configuration.
				for a := 0; a < mem.AddrSpace; a++ {
					p.pokeBoth(uint32(a), byte(rng.Intn(256)))
				}
				cpu := p.fast.M.CPU
				for i := range cpu.R {
					cpu.R[i] = uint16(rng.Intn(1 << 16))
				}
				for i := range cpu.S {
					cpu.S[i] = uint16(rng.Intn(1 << 16))
				}
				cpu.IP = uint16(rng.Intn(1 << 16))
				cpu.Flags = isa.Flags(rng.Intn(1 << 16))
				cpu.NMICounter = uint16(rng.Intn(1 << 16))
				p.fast.M.CPU, p.slow.M.CPU = cpu, cpu
			}

			for i := 0; i < steps; i++ {
				if rng.Intn(101) == 0 {
					p.injectSame(rng)
				}
				evF, evS := p.fast.M.Step(), p.slow.M.Step()
				if evF != evS {
					t.Fatalf("approach %v trial %d step %d: event diverged: cached=%v uncached=%v",
						ap, trial, i, evF, evS)
				}
			}
			p.compare(t, ap.String()+"/final")
		}
	}
}

// diffTriple is one lockstep triple of systems: full engine stack
// (decode cache + superblocks), predecode only, reference interpreter.
type diffTriple struct {
	sys [3]*System
	col [3]*obs.Collector
}

var tripleLabels = [3]string{"superblock", "predecode", "interp"}

func newDiffTriple(t *testing.T, ap Approach) *diffTriple {
	t.Helper()
	p := &diffTriple{}
	for i := range p.sys {
		p.sys[i] = MustNew(Config{Approach: ap})
		p.col[i] = obs.NewCollector()
		p.sys[i].Instrument(p.col[i])
	}
	p.sys[1].M.SetSuperblocks(false)
	p.sys[2].M.SetDecodeCache(false)
	return p
}

func (p *diffTriple) each(f func(s *System)) {
	for _, s := range p.sys {
		f(s)
	}
}

// compare asserts that every observable of the triple is identical.
// Stats compare through Arch(): block counters are engine telemetry.
func (p *diffTriple) compare(t *testing.T, tag string) {
	t.Helper()
	ref := p.sys[2]
	for i := 0; i < 2; i++ {
		lbl := tripleLabels[i]
		if p.sys[i].M.CPU != ref.M.CPU {
			t.Fatalf("%s: %s CPU diverged:\n%s: %+v\ninterp: %+v",
				tag, lbl, lbl, p.sys[i].M.CPU, ref.M.CPU)
		}
		if p.sys[i].M.Stats.Arch() != ref.M.Stats.Arch() {
			t.Fatalf("%s: %s stats diverged:\n%s: %v\ninterp: %v",
				tag, lbl, lbl, p.sys[i].M.Stats, ref.M.Stats)
		}
		if !bytes.Equal(p.sys[i].M.Bus.Snapshot(), ref.M.Bus.Snapshot()) {
			t.Fatalf("%s: %s memory image diverged", tag, lbl)
		}
		if !reflect.DeepEqual(p.col[i].Events(), p.col[2].Events()) {
			t.Fatalf("%s: %s observability event stream diverged (%d vs %d events)",
				tag, lbl, len(p.col[i].Events()), len(p.col[2].Events()))
		}
		if ref.Heartbeat != nil {
			if !reflect.DeepEqual(p.sys[i].Heartbeat.Writes(), ref.Heartbeat.Writes()) {
				t.Fatalf("%s: %s heartbeat stream diverged", tag, lbl)
			}
		}
	}
}

// TestSuperblockDifferentialRunBatches drives the three engines through
// real guest kernels via Run in uneven batches — the only path that
// exercises the batched loop, turbo lane and block chaining — with
// identical faults injected at batch boundaries, from both the clean
// boot state and fully randomized RAM + CPU configurations. The
// two-way Step-driven suite above remains as-is; this one covers what
// Step cannot reach.
func TestSuperblockDifferentialRunBatches(t *testing.T) {
	batches, trials := 600, 4
	if testing.Short() {
		batches, trials = 150, 2
	}
	for _, ap := range []Approach{ApproachBaseline, ApproachReinstall, ApproachMonitor} {
		for trial := 0; trial < trials; trial++ {
			p := newDiffTriple(t, ap)
			rng := rand.New(rand.NewSource(int64(31000 + 100*int(ap) + trial)))

			if trial%2 == 1 {
				// Any-state start, identical across the triple.
				for a := 0; a < mem.AddrSpace; a++ {
					v := byte(rng.Intn(256))
					p.each(func(s *System) { s.M.Bus.PokeRAM(uint32(a), v) })
				}
				cpu := p.sys[0].M.CPU
				for i := range cpu.R {
					cpu.R[i] = uint16(rng.Intn(1 << 16))
				}
				for i := range cpu.S {
					cpu.S[i] = uint16(rng.Intn(1 << 16))
				}
				cpu.IP = uint16(rng.Intn(1 << 16))
				cpu.Flags = isa.Flags(rng.Intn(1 << 16))
				cpu.NMICounter = uint16(rng.Intn(1 << 16))
				p.each(func(s *System) { s.M.CPU = cpu })
			}

			for b := 0; b < batches; b++ {
				if rng.Intn(5) == 0 {
					switch rng.Intn(7) {
					case 0:
						a := uint32(rng.Intn(mem.AddrSpace))
						v := p.sys[0].M.Bus.Peek(a) ^ (1 << uint(rng.Intn(8)))
						p.each(func(s *System) { s.M.Bus.PokeRAM(a, v) })
					case 1: // land on the live code stream
						a := (uint32(p.sys[0].M.CPU.S[isa.CS])<<4 +
							uint32(p.sys[0].M.CPU.IP) + uint32(rng.Intn(16))) & mem.AddrMask
						v := byte(rng.Intn(256))
						p.each(func(s *System) { s.M.Bus.PokeRAM(a, v) })
					case 2:
						v := uint16(rng.Intn(1 << 16))
						p.each(func(s *System) { s.M.CPU.IP = v })
					case 3:
						r := isa.SReg(rng.Intn(int(isa.NumSRegs)))
						v := uint16(rng.Intn(1 << 16))
						p.each(func(s *System) { s.M.CPU.S[r] = v })
					case 4:
						v := isa.Flags(rng.Intn(1 << 16))
						p.each(func(s *System) { s.M.CPU.Flags = v })
					case 5:
						p.each(func(s *System) { s.M.RaiseNMI() })
					case 6:
						v := rng.Intn(2) == 0
						p.each(func(s *System) { s.M.CPU.Halted = v })
					}
				}
				n := rng.Intn(197) + 1
				p.each(func(s *System) { s.M.Run(n) })
				// Cheap per-batch agreement; full compare at trial end.
				if p.sys[0].M.CPU != p.sys[2].M.CPU || p.sys[1].M.CPU != p.sys[2].M.CPU {
					p.compare(t, "batch")
				}
			}
			p.compare(t, ap.String()+"/final")
		}
	}
}

// TestDecodeCacheDifferentialSelfModifying pins the hardest staleness
// case deliberately rather than probabilistically: the guest's own
// stores land on top of upcoming instructions (a store to cs:ip+k),
// so a stale cache entry would execute the overwritten instruction.
func TestDecodeCacheDifferentialSelfModifying(t *testing.T) {
	p := newDiffPair(t, ApproachBaseline)
	rng := rand.New(rand.NewSource(4242))
	code := uint32(0x0100) << 4 // default kernel image segment
	for i := 0; i < 30000; i++ {
		if i%7 == 0 {
			// Overwrite a byte right around the current instruction
			// stream of the cached machine.
			lin := (uint32(p.fast.M.CPU.S[isa.CS])<<4 + uint32(p.fast.M.CPU.IP) + uint32(rng.Intn(8))) & mem.AddrMask
			p.pokeBoth(lin, byte(rng.Intn(256)))
		}
		if i%13 == 0 {
			p.pokeBoth(code+uint32(rng.Intn(256)), byte(rng.Intn(256)))
		}
		evF, evS := p.fast.M.Step(), p.slow.M.Step()
		if evF != evS {
			t.Fatalf("step %d: event diverged: cached=%v uncached=%v", i, evF, evS)
		}
	}
	p.compare(t, "self-modifying/final")
}
