package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ssos/internal/isa"
	"ssos/internal/mem"
	"ssos/internal/obs"
)

// The differential harness for the predecoded instruction cache: a
// cache-enabled and a cache-disabled machine are driven in lockstep —
// same guest, same randomized initial configuration, same injected
// faults at the same steps — and must agree on every observable at
// every step. This is the soundness argument for the fast path made
// executable: from ANY initial configuration, under active fault
// injection, serving a cached decode must be bit-identical to
// re-decoding from memory.

// diffPair is one lockstep pair of systems.
type diffPair struct {
	fast, slow *System
	colF, colS *obs.Collector
}

func newDiffPair(t *testing.T, ap Approach) *diffPair {
	t.Helper()
	p := &diffPair{
		fast: MustNew(Config{Approach: ap}),
		slow: MustNew(Config{Approach: ap}),
		colF: obs.NewCollector(),
		colS: obs.NewCollector(),
	}
	p.slow.M.SetDecodeCache(false)
	p.fast.Instrument(p.colF)
	p.slow.Instrument(p.colS)
	return p
}

// pokeBoth writes the same byte to the same address on both buses.
func (p *diffPair) pokeBoth(addr uint32, v byte) {
	p.fast.M.Bus.PokeRAM(addr, v)
	p.slow.M.Bus.PokeRAM(addr, v)
}

// injectSame applies one identical random fault to both machines. The
// menu mirrors the fault package's corruption classes but is applied
// symmetrically, which a per-machine Injector cannot do.
func (p *diffPair) injectSame(rng *rand.Rand) {
	mf, ms := p.fast.M, p.slow.M
	switch rng.Intn(8) {
	case 0: // RAM bit flip — the classic transient fault
		a := uint32(rng.Intn(mem.AddrSpace))
		v := p.fast.M.Bus.Peek(a) ^ (1 << uint(rng.Intn(8)))
		p.pokeBoth(a, v)
	case 1: // burst of byte corruptions
		for i := 0; i < 16; i++ {
			p.pokeBoth(uint32(rng.Intn(mem.AddrSpace)), byte(rng.Intn(256)))
		}
	case 2:
		v := uint16(rng.Intn(1 << 16))
		mf.CPU.IP, ms.CPU.IP = v, v
	case 3:
		r := isa.SReg(rng.Intn(int(isa.NumSRegs)))
		v := uint16(rng.Intn(1 << 16))
		mf.CPU.S[r], ms.CPU.S[r] = v, v
	case 4:
		v := isa.Flags(rng.Intn(1 << 16))
		mf.CPU.Flags, ms.CPU.Flags = v, v
	case 5:
		v := uint16(rng.Intn(1 << 16))
		mf.CPU.NMICounter, ms.CPU.NMICounter = v, v
	case 6:
		mf.RaiseNMI()
		ms.RaiseNMI()
	case 7:
		v := rng.Intn(2) == 0
		mf.CPU.Halted, ms.CPU.Halted = v, v
	}
}

// compare asserts that every observable of the pair is identical.
func (p *diffPair) compare(t *testing.T, tag string) {
	t.Helper()
	if p.fast.M.CPU != p.slow.M.CPU {
		t.Fatalf("%s: CPU diverged:\n cached: %+v\nuncached: %+v", tag, p.fast.M.CPU, p.slow.M.CPU)
	}
	if p.fast.M.Stats != p.slow.M.Stats {
		t.Fatalf("%s: stats diverged:\n cached: %v\nuncached: %v", tag, p.fast.M.Stats, p.slow.M.Stats)
	}
	if !bytes.Equal(p.fast.M.Bus.Snapshot(), p.slow.M.Bus.Snapshot()) {
		t.Fatalf("%s: memory images diverged", tag)
	}
	if !reflect.DeepEqual(p.colF.Events(), p.colS.Events()) {
		t.Fatalf("%s: observability event streams diverged (%d vs %d events)",
			tag, len(p.colF.Events()), len(p.colS.Events()))
	}
	if p.fast.Heartbeat != nil {
		wf, ws := p.fast.Heartbeat.Writes(), p.slow.Heartbeat.Writes()
		if !reflect.DeepEqual(wf, ws) {
			t.Fatalf("%s: heartbeat streams diverged (%d vs %d writes)", tag, len(wf), len(ws))
		}
	}
}

// TestDecodeCacheDifferential runs cached and uncached machines in
// lockstep under continuous fault injection, for every transferable
// kernel approach, from both the clean boot state and fully randomized
// RAM + CPU configurations.
func TestDecodeCacheDifferential(t *testing.T) {
	steps := 40000
	trials := 4
	if testing.Short() {
		steps, trials = 8000, 2
	}
	for _, ap := range []Approach{ApproachBaseline, ApproachReinstall, ApproachMonitor} {
		for trial := 0; trial < trials; trial++ {
			p := newDiffPair(t, ap)
			rng := rand.New(rand.NewSource(int64(9000 + 100*int(ap) + trial)))

			if trial%2 == 1 {
				// Any-state start: identical random soup in every RAM
				// byte (PokeRAM skips ROM on both alike) and a random
				// CPU configuration.
				for a := 0; a < mem.AddrSpace; a++ {
					p.pokeBoth(uint32(a), byte(rng.Intn(256)))
				}
				cpu := p.fast.M.CPU
				for i := range cpu.R {
					cpu.R[i] = uint16(rng.Intn(1 << 16))
				}
				for i := range cpu.S {
					cpu.S[i] = uint16(rng.Intn(1 << 16))
				}
				cpu.IP = uint16(rng.Intn(1 << 16))
				cpu.Flags = isa.Flags(rng.Intn(1 << 16))
				cpu.NMICounter = uint16(rng.Intn(1 << 16))
				p.fast.M.CPU, p.slow.M.CPU = cpu, cpu
			}

			for i := 0; i < steps; i++ {
				if rng.Intn(101) == 0 {
					p.injectSame(rng)
				}
				evF, evS := p.fast.M.Step(), p.slow.M.Step()
				if evF != evS {
					t.Fatalf("approach %v trial %d step %d: event diverged: cached=%v uncached=%v",
						ap, trial, i, evF, evS)
				}
			}
			p.compare(t, ap.String()+"/final")
		}
	}
}

// TestDecodeCacheDifferentialSelfModifying pins the hardest staleness
// case deliberately rather than probabilistically: the guest's own
// stores land on top of upcoming instructions (a store to cs:ip+k),
// so a stale cache entry would execute the overwritten instruction.
func TestDecodeCacheDifferentialSelfModifying(t *testing.T) {
	p := newDiffPair(t, ApproachBaseline)
	rng := rand.New(rand.NewSource(4242))
	code := uint32(0x0100) << 4 // default kernel image segment
	for i := 0; i < 30000; i++ {
		if i%7 == 0 {
			// Overwrite a byte right around the current instruction
			// stream of the cached machine.
			lin := (uint32(p.fast.M.CPU.S[isa.CS])<<4 + uint32(p.fast.M.CPU.IP) + uint32(rng.Intn(8))) & mem.AddrMask
			p.pokeBoth(lin, byte(rng.Intn(256)))
		}
		if i%13 == 0 {
			p.pokeBoth(code+uint32(rng.Intn(256)), byte(rng.Intn(256)))
		}
		evF, evS := p.fast.M.Step(), p.slow.M.Step()
		if evF != evS {
			t.Fatalf("step %d: event diverged: cached=%v uncached=%v", i, evF, evS)
		}
	}
	p.compare(t, "self-modifying/final")
}
