package core

import (
	"testing"

	"ssos/internal/asm"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
	"ssos/internal/trace"
)

// customGuestSource is a user-style guest: a Fibonacci pinger that
// re-establishes its segments every iteration (the self-stabilization
// obligation) and beats a sequence counter to a port.
const customGuestSource = `
OS_SEG    equ 0x2000
STACK_SEG equ 0x3000
PING_PORT equ 0x40
SEQ       equ 0x200
FIB_A     equ 0x202
FIB_B     equ 0x204

start:
	mov ax, OS_SEG
	mov ds, ax
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, 0x0806
	mov word [SEQ], 0
	mov word [FIB_A], 0
	mov word [FIB_B], 1
loop_top:
	mov ax, OS_SEG
	mov ds, ax
	; fib step
	mov ax, [FIB_A]
	add ax, [FIB_B]
	mov bx, [FIB_B]
	mov [FIB_A], bx
	mov [FIB_B], ax
	; heartbeat
	mov ax, [SEQ]
	inc ax
	mov [SEQ], ax
	out PING_PORT, ax
	jmp loop_top
`

func buildCustomGuest(t *testing.T) []byte {
	t.Helper()
	p, err := asm.Assemble(customGuestSource)
	if err != nil {
		t.Fatal(err)
	}
	// Round the image up to cover the data area the guest uses.
	img := make([]byte, 0x220)
	copy(img, p.Code)
	return img
}

func TestCustomGuestRunsAndRecovers(t *testing.T) {
	img := buildCustomGuest(t)
	s, err := NewCustom(CustomConfig{Image: img, HeartbeatPort: 0x40})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100000)
	spec := trace.HeartbeatSpec{Start: 1, MaxGap: 5000, AllowRestart: true}
	w := s.Heartbeat.Writes()
	if len(w) < 1000 {
		t.Fatalf("beats: %d", len(w))
	}
	if v := spec.Violations(w, s.Steps()); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}

	// Destroy the custom guest; Figure 1 restores it.
	inj := fault.NewInjector(s.M, 9)
	inj.RandomizeRegion(mem.Region{Name: "guest", Start: uint32(guest.OSSeg) << 4, Size: uint32(len(img))})
	inj.BlastCPU()
	faultStep := s.Steps()
	s.Run(200000)
	if _, ok := spec.RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10); !ok {
		t.Fatal("custom guest did not recover")
	}
}

func TestCustomConfigValidation(t *testing.T) {
	if _, err := NewCustom(CustomConfig{}); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := NewCustom(CustomConfig{Image: make([]byte, 0x10001)}); err == nil {
		t.Error("oversized image accepted")
	}
	// No heartbeat port: system still works, Heartbeat nil.
	s, err := NewCustom(CustomConfig{Image: buildCustomGuest(t)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Heartbeat != nil {
		t.Error("unexpected console")
	}
	s.Run(1000)
}

func TestCustomDefaultsApplied(t *testing.T) {
	img := buildCustomGuest(t)
	s, err := NewCustom(CustomConfig{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.WatchdogPeriod != DefaultWatchdogPeriod {
		t.Errorf("period: %d", s.Cfg.WatchdogPeriod)
	}
	if int(s.Cfg.NMICounterMax) != len(img)+DefaultNMISlack {
		t.Errorf("nmi max: %d", s.Cfg.NMICounterMax)
	}
}
