package core

import (
	"testing"

	"ssos/internal/dev"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/machine"
	"ssos/internal/mem"
	"ssos/internal/trace"
)

// osRAMRegion is the guest OS image region in RAM.
func osRAMRegion() mem.Region {
	return mem.Region{Name: "os-ram", Start: uint32(guest.OSSeg) << 4, Size: guest.ImageSize}
}

func TestReinstallSystemBootsAndBeats(t *testing.T) {
	s := MustNew(Config{Approach: ApproachReinstall})
	s.Run(200000)
	w := s.Heartbeat.Writes()
	if len(w) < 100 {
		t.Fatalf("only %d heartbeats", len(w))
	}
	if v := s.Spec().Violations(w, s.Steps()); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	// The watchdog reinstalls periodically: restarts must appear.
	restarts := 0
	for _, pw := range w {
		if pw.Value == guest.HeartbeatStart {
			restarts++
		}
	}
	if restarts < 2 {
		t.Fatalf("expected periodic restarts, saw %d", restarts)
	}
}

func TestReinstallRecoversFromRAMBlast(t *testing.T) {
	s := MustNew(Config{Approach: ApproachReinstall})
	s.Run(50000)
	inj := fault.NewInjector(s.M, 1)
	inj.RandomizeRegion(osRAMRegion()) // destroy the whole OS in RAM
	faultStep := s.Steps()
	s.Run(300000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 20); !ok {
		t.Fatalf("no recovery after RAM blast; last writes: %v", tail(s))
	}
}

func TestReinstallRecoversFromCPUBlast(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := MustNew(Config{Approach: ApproachReinstall})
		s.Run(20000)
		inj := fault.NewInjector(s.M, seed)
		inj.BlastCPU()
		faultStep := s.Steps()
		s.Run(400000)
		if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 20); !ok {
			t.Fatalf("seed %d: no recovery after CPU blast", seed)
		}
	}
}

func TestReinstallFromArbitraryConfiguration(t *testing.T) {
	// Theorem 3.4: every execution (from ANY configuration) has a
	// weakly legal suffix.
	for seed := int64(0); seed < 10; seed++ {
		s := MustNew(Config{Approach: ApproachReinstall})
		inj := fault.NewInjector(s.M, 100+seed)
		inj.BlastRAM()
		inj.BlastCPU()
		s.Run(500000)
		if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), 0, 20); !ok {
			t.Fatalf("seed %d: no convergence from arbitrary configuration", seed)
		}
	}
}

func TestBaselineDiesFromFaults(t *testing.T) {
	s := MustNew(Config{Approach: ApproachBaseline})
	s.Run(20000)
	if len(s.Heartbeat.Writes()) == 0 {
		t.Fatal("baseline never ran at all")
	}
	inj := fault.NewInjector(s.M, 2)
	inj.RandomizeRegion(osRAMRegion())
	before := s.Heartbeat.Total()
	s.Run(300000)
	// The corrupted OS must not resume legal operation: either it
	// crashed (few/no further beats) or its stream is illegal.
	w := s.Heartbeat.Writes()
	if s.Heartbeat.Total()-before > 10 {
		spec := s.Spec()
		if _, ok := spec.RecoveredAfter(w, 20000, 20); ok {
			t.Fatal("baseline recovered without a stabilizer?")
		}
	}
}

func TestStockNMILatchPreventsRecovery(t *testing.T) {
	// The paper's motivating hazard: without the NMI-counter hardware,
	// a state with the in-NMI latch set masks the watchdog forever.
	s := MustNew(Config{Approach: ApproachReinstall, DisableNMICounter: true})
	s.Run(20000)
	inj := fault.NewInjector(s.M, 3)
	inj.SetInNMI()
	inj.CorruptIP() // send the guest into the weeds
	inj.CorruptSegment()
	faultStep := s.Steps()
	s.Run(300000)
	if s.M.Stats.NMIs > uint64(faultStep)/uint64(s.Cfg.WatchdogPeriod)+2 {
		t.Fatalf("NMIs kept being delivered despite the stuck latch")
	}
	// With the counter hardware the same scenario recovers.
	s2 := MustNew(Config{Approach: ApproachReinstall})
	s2.Run(20000)
	inj2 := fault.NewInjector(s2.M, 3)
	inj2.SetInNMI() // ignored by counter hardware
	inj2.CorruptIP()
	inj2.CorruptSegment()
	fs2 := s2.Steps()
	s2.Run(300000)
	if _, ok := s2.Spec().RecoveredAfter(s2.Heartbeat.Writes(), fs2, 20); !ok {
		t.Fatal("counter hardware failed to recover")
	}
}

func TestContinuePreservesStateAcrossRefresh(t *testing.T) {
	s := MustNew(Config{Approach: ApproachContinue})
	s.Run(300000)
	w := s.Heartbeat.Writes()
	if len(w) < 100 {
		t.Fatalf("only %d heartbeats", len(w))
	}
	// Strict spec: the handler must not reset the counter.
	strict := trace.HeartbeatSpec{Start: guest.HeartbeatStart, MaxGap: s.Spec().MaxGap}
	if v := strict.Violations(w, s.Steps()); len(v) != 0 {
		t.Fatalf("continue variant restarted or glitched: %v", v)
	}
	if s.M.Stats.NMIs < 5 {
		t.Fatalf("watchdog barely fired: %d", s.M.Stats.NMIs)
	}
}

func TestContinueRecoversCodeCorruption(t *testing.T) {
	s := MustNew(Config{Approach: ApproachContinue})
	s.Run(50000)
	inj := fault.NewInjector(s.M, 4)
	// Corrupt a swath of the OS *code* only.
	for i := 0; i < 64; i++ {
		inj.CorruptByteIn(mem.Region{Name: "os-code", Start: uint32(guest.OSSeg) << 4, Size: uint32(guest.DataOff)})
	}
	faultStep := s.Steps()
	s.Run(300000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 20); !ok {
		t.Fatal("continue variant did not recover code corruption")
	}
}

func TestMonitorStrictLegality(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	s.Run(600000)
	w := s.Heartbeat.Writes()
	if len(w) < 50 {
		t.Fatalf("only %d heartbeats", len(w))
	}
	if v := s.Spec().Violations(w, s.Steps()); len(v) != 0 {
		t.Fatalf("monitor system violated strict legality: %v", v)
	}
	if s.M.Stats.NMIs < 10 {
		t.Fatalf("watchdog barely fired: %d", s.M.Stats.NMIs)
	}
	// No repairs should have been needed in a fault-free run.
	if n := s.Repairs.Total(); n != 0 {
		t.Fatalf("spurious repairs: %d (%v)", n, s.Repairs.Writes())
	}
}

func TestMonitorRepairsCanary(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	s.Run(100000)
	addr := uint32(guest.OSSeg)<<4 + guest.VarCanary
	s.M.Bus.PokeRAM(addr, 0x00)
	s.M.Bus.PokeRAM(addr+1, 0x00)
	s.Run(2 * int(s.Cfg.WatchdogPeriod))
	if got := s.M.Bus.LoadWord(addr); got != guest.CanaryValue {
		t.Fatalf("canary not repaired: %#x", got)
	}
	found := false
	for _, r := range s.Repairs.Writes() {
		if r.Value == guest.RepairCanary {
			found = true
		}
	}
	if !found {
		t.Fatalf("no canary repair reported: %v", s.Repairs.Writes())
	}
}

func TestMonitorRepairsChecksum(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	s.Run(100000)
	addr := uint32(guest.OSSeg)<<4 + guest.VarTaskRuns
	s.M.Bus.PokeRAM(addr, 0xAA) // clobber a run counter
	s.M.Bus.PokeRAM(addr+1, 0x55)
	s.Run(2 * int(s.Cfg.WatchdogPeriod))
	found := false
	for _, r := range s.Repairs.Writes() {
		if r.Value == guest.RepairChecksum {
			found = true
		}
	}
	if !found {
		t.Fatalf("no checksum repair reported: %v", s.Repairs.Writes())
	}
	// Invariant restored.
	word := func(off uint32) uint16 { return s.M.Bus.LoadWord(uint32(guest.OSSeg)<<4 + off) }
	var sum uint16
	for i := uint32(0); i < guest.NumTasks; i++ {
		sum += word(guest.VarTaskRuns + 2*i)
	}
	if d := sum - word(guest.VarChecksum); d != 0 && d != 1 {
		t.Fatalf("invariant still broken: sum=%d chk=%d", sum, word(guest.VarChecksum))
	}
}

func TestMonitorValidatesResumeAddress(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	s.Run(100000)
	inj := fault.NewInjector(s.M, 5)
	inj.CorruptIP() // likely outside the kernel code
	inj.CorruptSegment()
	faultStep := s.Steps()
	s.Run(600000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 20); !ok {
		t.Fatal("monitor did not recover from pc corruption")
	}
}

func TestMonitorPreservesCounterAcrossCodeFault(t *testing.T) {
	// The headline advantage over approach 1: a code-only fault is
	// repaired WITHOUT losing the heartbeat counter.
	s := MustNew(Config{Approach: ApproachMonitor})
	s.Run(200000)
	inj := fault.NewInjector(s.M, 6)
	for i := 0; i < 32; i++ {
		inj.CorruptByteIn(mem.Region{Name: "os-code", Start: uint32(guest.OSSeg) << 4, Size: uint32(s.Kernel.CodeLen())})
	}
	faultStep := s.Steps()
	s.Run(600000)
	w := s.Heartbeat.Writes()
	step, ok := s.Spec().RecoveredAfter(w, faultStep, 20)
	if !ok {
		t.Fatal("monitor did not recover code corruption")
	}
	// Strict spec — AllowRestart is false — so recovery without a
	// counter reset is already proven by RecoveredAfter. Double-check
	// the counter kept growing past its pre-fault value.
	var preFault uint16
	for _, pw := range w {
		if pw.Step < faultStep {
			preFault = pw.Value
		}
	}
	last := w[len(w)-1]
	if last.Value <= preFault {
		t.Fatalf("counter regressed: pre-fault %d, final %d (recovered at %d)", preFault, last.Value, step)
	}
}

func TestMonitorFromArbitraryConfiguration(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := MustNew(Config{Approach: ApproachMonitor})
		inj := fault.NewInjector(s.M, 200+seed)
		inj.BlastRAM()
		inj.BlastCPU()
		s.Run(1500000)
		if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), 0, 20); !ok {
			t.Fatalf("seed %d: monitor did not converge from arbitrary configuration", seed)
		}
	}
}

func tail(s *System) []trace.Violation {
	return s.Spec().Violations(s.Heartbeat.Writes(), s.Steps())
}

func TestMonitorRepairsQueueIndices(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	s.Run(100000)
	// Corrupt the tail beyond what the kernel's own masking sees
	// quickly (the monitor reports it first).
	addr := uint32(guest.OSSeg)<<4 + guest.VarQTail
	s.M.Bus.PokeRAM(addr, 0xFF)
	s.M.Bus.PokeRAM(addr+1, 0x7F)
	s.Run(2 * int(s.Cfg.WatchdogPeriod))
	found := false
	for _, r := range s.Repairs.Writes() {
		if r.Value == guest.RepairQueue {
			found = true
		}
	}
	if !found {
		// The kernel itself may have healed the index before the next
		// monitor pass (both are legal recoveries); the index must be
		// in range either way.
		t.Logf("no monitor repair report; kernel healed it first")
	}
	if got := s.M.Bus.LoadWord(addr); got >= guest.QueueCap {
		t.Fatalf("queue tail not repaired: %d", got)
	}
}

func TestAdaptiveSystemNoRestartTax(t *testing.T) {
	s := MustNew(Config{Approach: ApproachAdaptive})
	s.Run(300000)
	w := s.Heartbeat.Writes()
	if len(w) < 1000 {
		t.Fatalf("beats: %d", len(w))
	}
	// No periodic restarts: the stream is STRICTLY legal (the adaptive
	// watchdog never fires while the guest is healthy).
	strict := trace.HeartbeatSpec{Start: guest.HeartbeatStart, MaxGap: s.Spec().MaxGap}
	if v := strict.Violations(w, s.Steps()); len(v) != 0 {
		t.Fatalf("adaptive system restarted: %v", v)
	}
	if s.Silence.Fires != 0 {
		t.Fatalf("watchdog fired %d times on a healthy guest", s.Silence.Fires)
	}
	// A latched halt is silence: recovery within one limit + handler.
	s.M.CPU.Halted = true
	faultStep := s.Steps()
	s.Run(2*int(s.Cfg.WatchdogPeriod) + 100000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10); !ok {
		t.Fatal("adaptive watchdog did not recover a silent fault")
	}
	if s.Silence.Fires == 0 {
		t.Fatal("silence watchdog never fired")
	}
}

func TestResetPinWatchdogVariant(t *testing.T) {
	// Section 2: "in the first two schemes ... it may trigger the reset
	// pin instead". A reset boots through the Figure 1 installer, so
	// the system stays weakly self-stabilizing.
	s := MustNew(Config{Approach: ApproachReinstall, WatchdogTarget: dev.TargetReset})
	s.Run(200000)
	if s.M.Stats.Resets < 5 {
		t.Fatalf("resets: %d", s.M.Stats.Resets)
	}
	if v := s.Spec().Violations(s.Heartbeat.Writes(), s.Steps()); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	// Recovery from a blast works through the reset path too.
	inj := fault.NewInjector(s.M, 13)
	inj.RandomizeRegion(osRAMRegion())
	inj.BlastCPU()
	faultStep := s.Steps()
	s.Run(300000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10); !ok {
		t.Fatal("reset-pin variant did not recover")
	}
}

func TestStockVectoringWorksUntilIDTRCorrupted(t *testing.T) {
	// The paper's introduction hazard: with a RAM IDT and writable
	// IDTR, the system operates — until a single register fault
	// disables the entire interrupt capability.
	s := MustNew(Config{Approach: ApproachReinstall, StockVectoring: true})
	s.Run(200000)
	if v := s.Spec().Violations(s.Heartbeat.Writes(), s.Steps()); len(v) != 0 {
		t.Fatalf("stock vectoring should work fault-free: %v", v)
	}
	if s.M.Stats.NMIs < 5 {
		t.Fatalf("NMIs: %d", s.M.Stats.NMIs)
	}
	// Corrupt the IDTR: vectoring now reads garbage vectors from
	// whatever the register points at.
	s.M.CPU.IDTR = 0x40000 // points at the scheduler-RAM area: zeros
	s.M.CPU.Halted = true  // a silent fault only the watchdog can fix
	s.Run(400000)
	// The NMI "handler" is now segment 0 offset 0 (zeros in RAM decode
	// as nops) — the machine wanders instead of reinstalling. With the
	// hardwired vector the same fault recovers (cf. E1).
	w := s.Heartbeat.Writes()
	if _, ok := s.Spec().RecoveredAfter(w, 200000, 10); ok {
		t.Skip("machine wandered back to legality by luck; hazard demo inconclusive for this layout")
	}
}

func TestHardwiredVectorSurvivesIDTRCorruption(t *testing.T) {
	s := MustNew(Config{Approach: ApproachReinstall})
	s.Run(100000)
	s.M.CPU.IDTR = 0x40000 // ignored: FixedIDTR + hardwired NMI vector
	s.M.CPU.Halted = true
	faultStep := s.Steps()
	s.Run(300000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10); !ok {
		t.Fatal("hardwired vectoring should shrug off idtr corruption")
	}
}

func TestTickfulKernelBeatsFromISR(t *testing.T) {
	s := MustNew(Config{Approach: ApproachReinstall, TickfulKernel: true})
	s.Run(300000)
	w := s.Heartbeat.Writes()
	if len(w) < 1000 {
		t.Fatalf("beats: %d", len(w))
	}
	if v := s.Spec().Violations(w, s.Steps()); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if s.M.Stats.IRQs < 1000 {
		t.Fatalf("IRQs delivered: %d", s.M.Stats.IRQs)
	}
	if s.M.Stats.HaltTicks == 0 {
		t.Fatal("the kernel never slept")
	}
	// Beat cadence tracks the timer period.
	gap := w[len(w)-1].Step - w[len(w)-2].Step
	if gap != uint64(s.Cfg.TimerPeriod) {
		t.Fatalf("beat gap %d, want timer period %d", gap, s.Cfg.TimerPeriod)
	}
}

func TestTickfulIDTCorruptionIsSilentButRecovered(t *testing.T) {
	// Corrupting the timer's IDT entry stops all wakeups without any
	// exception — a silent fault. The watchdog reinstall recovers it
	// because the restarted init code reprograms the IDT.
	s := MustNew(Config{Approach: ApproachReinstall, TickfulKernel: true})
	s.Run(100000)
	s.M.Bus.PokeRAM(guest.TimerVecAddr, 0xFF)
	s.M.Bus.PokeRAM(guest.TimerVecAddr+2, 0xFF)
	faultStep := s.Steps()
	s.Run(200000)
	if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10); !ok {
		t.Fatal("reinstall did not recover the IDT corruption")
	}

	// The baseline dies from the same fault: no exceptions, no NMIs,
	// just eternal sleep.
	b := MustNew(Config{Approach: ApproachBaseline, TickfulKernel: true})
	b.Run(100000)
	b.M.Bus.PokeRAM(guest.TimerVecAddr, 0xFF)
	b.M.Bus.PokeRAM(guest.TimerVecAddr+2, 0xFF)
	before := b.Heartbeat.Total()
	b.Run(300000)
	if b.Heartbeat.Total() > before+3 {
		t.Fatalf("baseline kept beating after IDT corruption: %d -> %d", before, b.Heartbeat.Total())
	}
}

func TestTickfulIFCorruptionRecovered(t *testing.T) {
	// Clearing IF while the kernel sleeps is the classic cli;hlt
	// deadlock: the sti that would heal it never runs, because the
	// wake-up depends on the very interrupt the fault masked. No
	// exception fires — a perfectly silent fault — so recovery comes
	// from the watchdog NMI (which wakes hlt unconditionally) and the
	// reinstall-restart. This is exactly why the paper insists the
	// recovery trigger must be NON-maskable.
	s := MustNew(Config{Approach: ApproachReinstall, TickfulKernel: true})
	s.Run(100000)
	if !s.M.CPU.Halted {
		s.M.RunUntil(1000, func(m *machine.Machine) bool { return m.CPU.Halted })
	}
	s.M.CPU.Flags = 0 // clears IF while asleep
	faultStep := s.Steps()
	s.Run(200000)
	step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 10)
	if !ok {
		t.Fatal("no recovery")
	}
	if step-faultStep > uint64(s.Cfg.WatchdogPeriod)+10000 {
		t.Fatalf("recovery took %d steps, beyond one watchdog period", step-faultStep)
	}
	t.Logf("slept through masked IF for %d steps until the NMI reinstall", step-faultStep)
}

func TestTickfulRejectsUnsupportedApproaches(t *testing.T) {
	if _, err := New(Config{Approach: ApproachMonitor, TickfulKernel: true}); err == nil {
		t.Error("monitor+tickful accepted")
	}
	if _, err := New(Config{Approach: ApproachReinstall, TickfulKernel: true, PaddedKernel: true}); err == nil {
		t.Error("padded tickful accepted")
	}
}
