package core

import (
	"bytes"
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
	"ssos/internal/obs"
)

func firstIndex(evs []obs.Event, t obs.Type) int {
	for i, e := range evs {
		if e.Type == t {
			return i
		}
	}
	return -1
}

// The acceptance scenario of the observability layer: monitor system,
// OS image blasted, the event stream must tell the stabilization story
// in causal order — fault injected, predicates failed and were
// repaired, legality regained — and the metrics must report
// steps-to-legal.
func TestInstrumentMonitorOSBlast(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	col := obs.NewCollector()
	s.Instrument(col)

	s.Run(100000)
	inj := fault.NewInjector(s.M, 1)
	inj.RandomizeRegion(mem.Region{Name: "os", Start: uint32(guest.OSSeg) << 4, Size: guest.ImageSize})
	s.Run(400000)

	evs := col.Events()
	fi := firstIndex(evs, obs.TypeFaultInjected)
	pf := firstIndex(evs, obs.TypePredicateFailed)
	lr := firstIndex(evs, obs.TypeLegalityRegained)
	// The remedy is either an in-place repair or a fallback reinstall,
	// depending on whether the blast left the OS code runnable.
	rem := firstIndex(evs, obs.TypePredicateRepaired)
	if ri := firstIndex(evs, obs.TypeReinstallCompleted); rem < 0 || (ri >= 0 && ri < rem) {
		rem = ri
	}
	if fi < 0 || pf < 0 || rem < 0 || lr < 0 {
		t.Fatalf("missing stages: fault=%d failed=%d remedy=%d regained=%d", fi, pf, rem, lr)
	}
	if !(fi < pf && pf <= rem && rem < lr) {
		t.Fatalf("stages out of order: fault=%d failed=%d remedy=%d regained=%d", fi, pf, rem, lr)
	}
	if firstIndex(evs, obs.TypePredicateEval) < 0 {
		t.Fatal("no predicate-eval events despite watchdog NMIs")
	}

	m := col.Metrics
	if m.Counter("machine.nmis") == 0 || m.Counter("stabilizer.predicate_failures") == 0 {
		t.Fatalf("counters empty: nmis=%d failures=%d", m.Counter("machine.nmis"), m.Counter("stabilizer.predicate_failures"))
	}
	stl := m.Samples("stabilization.steps_to_legal")
	if len(stl) != 1 {
		t.Fatalf("steps_to_legal samples: %v", stl)
	}
	// The regained event's payload must match the post-hoc detector.
	faultStep := inj.Log[0].Step
	step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, ObsConfirm)
	if !ok {
		t.Fatal("post-hoc detector says not recovered")
	}
	if stl[0] != step-faultStep {
		t.Fatalf("steps_to_legal %d != post-hoc %d", stl[0], step-faultStep)
	}
}

// Approach 1: every watchdog NMI reinstalls; the stream must pair each
// reinstall-started with a reinstall-completed at the next heartbeat.
func TestInstrumentReinstallPairs(t *testing.T) {
	s := MustNew(Config{Approach: ApproachReinstall})
	col := obs.NewCollector()
	s.Instrument(col)
	s.Run(200000)

	evs := col.Events()
	var started, completed int
	pending := false
	for _, e := range evs {
		switch e.Type {
		case obs.TypeReinstallStarted:
			started++
			pending = true
		case obs.TypeReinstallCompleted:
			completed++
			if !pending {
				t.Fatal("completion without a start")
			}
			pending = false
		}
	}
	if started == 0 || completed == 0 {
		t.Fatalf("no reinstall events: started=%d completed=%d", started, completed)
	}
	if completed > started {
		t.Fatalf("more completions than starts: %d > %d", completed, started)
	}
	if n := col.Metrics.Counter("stabilizer.reinstalls"); n != uint64(completed) {
		t.Fatalf("reinstall counter %d != %d completions", n, completed)
	}
}

// A fixed seed must yield a byte-identical event log, run after run.
func TestInstrumentDeterministicEventLog(t *testing.T) {
	run := func() []byte {
		s := MustNew(Config{Approach: ApproachMonitor})
		col := obs.NewCollector()
		s.Instrument(col)
		s.Run(50000)
		inj := fault.NewInjector(s.M, 7)
		inj.BlastCPU()
		s.Run(200000)
		var b bytes.Buffer
		if err := col.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		s.ExportMetrics(col.Metrics)
		j, err := col.Metrics.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return append(b.Bytes(), j...)
	}
	first := run()
	if !bytes.Equal(first, run()) {
		t.Fatal("instrumented run not deterministic")
	}
	if len(first) == 0 {
		t.Fatal("empty log")
	}
}

// An uninstrumented system must behave identically to an instrumented
// one (observation is passive): same heartbeat stream, same stats.
func TestInstrumentIsPassive(t *testing.T) {
	plain := MustNew(Config{Approach: ApproachReinstall})
	plain.Run(150000)

	obsd := MustNew(Config{Approach: ApproachReinstall})
	obsd.Instrument(obs.NewCollector())
	obsd.Run(150000)

	if plain.M.Stats != obsd.M.Stats {
		t.Fatalf("stats diverged:\nplain %v\nobs   %v", plain.M.Stats, obsd.M.Stats)
	}
	pw, ow := plain.Heartbeat.Writes(), obsd.Heartbeat.Writes()
	if len(pw) != len(ow) {
		t.Fatalf("heartbeat streams diverged: %d vs %d writes", len(pw), len(ow))
	}
	for i := range pw {
		if pw[i] != ow[i] {
			t.Fatalf("write %d diverged: %v vs %v", i, pw[i], ow[i])
		}
	}
}
