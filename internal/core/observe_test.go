package core

import (
	"bytes"
	"testing"

	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
	"ssos/internal/obs"
)

func firstIndex(evs []obs.Event, t obs.Type) int {
	for i, e := range evs {
		if e.Type == t {
			return i
		}
	}
	return -1
}

// The acceptance scenario of the observability layer: monitor system,
// OS image blasted, the event stream must tell the stabilization story
// in causal order — fault injected, predicates failed and were
// repaired, legality regained — and the metrics must report
// steps-to-legal.
func TestInstrumentMonitorOSBlast(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	col := obs.NewCollector()
	s.Instrument(col)

	s.Run(100000)
	inj := fault.NewInjector(s.M, 1)
	inj.RandomizeRegion(mem.Region{Name: "os", Start: uint32(guest.OSSeg) << 4, Size: guest.ImageSize})
	s.Run(400000)

	evs := col.Events()
	fi := firstIndex(evs, obs.TypeFaultInjected)
	pf := firstIndex(evs, obs.TypePredicateFailed)
	lr := firstIndex(evs, obs.TypeLegalityRegained)
	// The remedy is either an in-place repair or a fallback reinstall,
	// depending on whether the blast left the OS code runnable.
	rem := firstIndex(evs, obs.TypePredicateRepaired)
	if ri := firstIndex(evs, obs.TypeReinstallCompleted); rem < 0 || (ri >= 0 && ri < rem) {
		rem = ri
	}
	if fi < 0 || pf < 0 || rem < 0 || lr < 0 {
		t.Fatalf("missing stages: fault=%d failed=%d remedy=%d regained=%d", fi, pf, rem, lr)
	}
	if !(fi < pf && pf <= rem && rem < lr) {
		t.Fatalf("stages out of order: fault=%d failed=%d remedy=%d regained=%d", fi, pf, rem, lr)
	}
	if firstIndex(evs, obs.TypePredicateEval) < 0 {
		t.Fatal("no predicate-eval events despite watchdog NMIs")
	}

	m := col.Metrics
	if m.Counter("machine.nmis") == 0 || m.Counter("stabilizer.predicate_failures") == 0 {
		t.Fatalf("counters empty: nmis=%d failures=%d", m.Counter("machine.nmis"), m.Counter("stabilizer.predicate_failures"))
	}
	stl := m.Samples("stabilization.steps_to_legal")
	if len(stl) != 1 {
		t.Fatalf("steps_to_legal samples: %v", stl)
	}
	// The regained event's payload must match the post-hoc detector.
	faultStep := inj.Log[0].Step
	step, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, ObsConfirm)
	if !ok {
		t.Fatal("post-hoc detector says not recovered")
	}
	if stl[0] != step-faultStep {
		t.Fatalf("steps_to_legal %d != post-hoc %d", stl[0], step-faultStep)
	}
}

// Approach 1: every watchdog NMI reinstalls; the stream must pair each
// reinstall-started with a reinstall-completed at the next heartbeat.
func TestInstrumentReinstallPairs(t *testing.T) {
	s := MustNew(Config{Approach: ApproachReinstall})
	col := obs.NewCollector()
	s.Instrument(col)
	s.Run(200000)

	evs := col.Events()
	var started, completed int
	pending := false
	for _, e := range evs {
		switch e.Type {
		case obs.TypeReinstallStarted:
			started++
			pending = true
		case obs.TypeReinstallCompleted:
			completed++
			if !pending {
				t.Fatal("completion without a start")
			}
			pending = false
		}
	}
	if started == 0 || completed == 0 {
		t.Fatalf("no reinstall events: started=%d completed=%d", started, completed)
	}
	if completed > started {
		t.Fatalf("more completions than starts: %d > %d", completed, started)
	}
	if n := col.Metrics.Counter("stabilizer.reinstalls"); n != uint64(completed) {
		t.Fatalf("reinstall counter %d != %d completions", n, completed)
	}
}

// A fixed seed must yield a byte-identical event log, run after run.
func TestInstrumentDeterministicEventLog(t *testing.T) {
	run := func() []byte {
		s := MustNew(Config{Approach: ApproachMonitor})
		col := obs.NewCollector()
		s.Instrument(col)
		s.Run(50000)
		inj := fault.NewInjector(s.M, 7)
		inj.BlastCPU()
		s.Run(200000)
		var b bytes.Buffer
		if err := col.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		s.ExportMetrics(col.Metrics)
		j, err := col.Metrics.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return append(b.Bytes(), j...)
	}
	first := run()
	if !bytes.Equal(first, run()) {
		t.Fatal("instrumented run not deterministic")
	}
	if len(first) == 0 {
		t.Fatal("empty log")
	}
}

// An uninstrumented system must behave identically to an instrumented
// one (observation is passive): same heartbeat stream, same stats.
func TestInstrumentIsPassive(t *testing.T) {
	plain := MustNew(Config{Approach: ApproachReinstall})
	plain.Run(150000)

	obsd := MustNew(Config{Approach: ApproachReinstall})
	obsd.Instrument(obs.NewCollector())
	obsd.Run(150000)

	if plain.M.Stats != obsd.M.Stats {
		t.Fatalf("stats diverged:\nplain %v\nobs   %v", plain.M.Stats, obsd.M.Stats)
	}
	pw, ow := plain.Heartbeat.Writes(), obsd.Heartbeat.Writes()
	if len(pw) != len(ow) {
		t.Fatalf("heartbeat streams diverged: %d vs %d writes", len(pw), len(ow))
	}
	for i := range pw {
		if pw[i] != ow[i] {
			t.Fatalf("write %d diverged: %v vs %v", i, pw[i], ow[i])
		}
	}
}

// Fault-id threading, end to end: every event emitted between an
// injection and its legality re-confirmation carries the fault's
// injector ordinal, the confirmation clears it, and events before the
// injection (or after confirmation, absent a new fault) stay untagged.
// This is the invariant the episode reconstructor keys on.
func TestInstrumentThreadsFaultIDs(t *testing.T) {
	s := MustNew(Config{Approach: ApproachMonitor})
	col := obs.NewCollector()
	s.Instrument(col)

	s.Run(100000)
	inj := fault.NewInjector(s.M, 1)
	inj.RandomizeRegion(mem.Region{Name: "os", Start: uint32(guest.OSSeg) << 4, Size: guest.ImageSize})
	s.Run(400000)

	evs := col.Events()
	fi := firstIndex(evs, obs.TypeFaultInjected)
	lr := firstIndex(evs, obs.TypeLegalityRegained)
	if fi < 0 || lr < 0 {
		t.Fatalf("missing stages: fault=%d regained=%d", fi, lr)
	}
	for i, e := range evs[:fi] {
		if e.FaultID != 0 {
			t.Fatalf("pre-fault event %d (%s) tagged with fault %d", i, e.Type, e.FaultID)
		}
	}
	if evs[fi].FaultID != 1 {
		t.Fatalf("injection event fault id %d, want 1", evs[fi].FaultID)
	}
	for i := fi; i <= lr; i++ {
		if evs[i].FaultID != 1 {
			t.Fatalf("in-episode event %d (%s at step %d) untagged", i, evs[i].Type, evs[i].Step)
		}
	}
	for i := lr + 1; i < len(evs); i++ {
		if evs[i].FaultID != 0 {
			t.Fatalf("post-confirmation event %d (%s) still tagged with fault %d", i, evs[i].Type, evs[i].FaultID)
		}
	}

	// The fold over this real stream yields exactly one resolved episode.
	eps := obs.FoldEpisodes(evs)
	if len(eps) != 1 || !eps[0].Resolved || eps[0].Resolution != obs.ResolutionLegality {
		t.Fatalf("episodes from real stream: %+v", eps)
	}
	if eps[0].FaultID != 1 || eps[0].FaultClass != "ram-region" {
		t.Fatalf("episode identity: %+v", eps[0])
	}
	if len(eps[0].Spans) == 0 {
		t.Fatal("episode has no spans")
	}
}

// Same seed, same trace: the exported Chrome trace_event document is
// byte-identical across runs (the CLI-level cmp in CI re-checks this
// through cmd/ssos-run's -trace-spans-out).
func TestTraceSpansDeterministic(t *testing.T) {
	run := func() []byte {
		s := MustNew(Config{Approach: ApproachMonitor})
		col := obs.NewCollector()
		s.Instrument(col)
		s.Run(50000)
		inj := fault.NewInjector(s.M, 7)
		inj.BlastCPU()
		s.Run(200000)
		return obs.AppendTrace(nil, obs.FoldEpisodes(col.Events()), s.Steps())
	}
	first := run()
	if !bytes.Equal(first, run()) {
		t.Fatal("trace export not deterministic across same-seed runs")
	}
	if !bytes.Contains(first, []byte(`"cat":"episode"`)) {
		t.Fatalf("trace has no episode events: %s", first)
	}
}
